package repro

import (
	"testing"

	"repro/internal/biquad"
	"repro/internal/core"
	"repro/internal/wave"
)

// spicePinFaults is the BenchmarkFaultTableSpice fault set — the
// "FaultTableSpice-shaped work" the trial-engine pin runs on.
func spicePinFaults() []biquad.Fault {
	return []biquad.Fault{
		{Kind: biquad.FaultParametric, Target: biquad.TargetR, Frac: 0.10},
		{Kind: biquad.FaultOpen, Target: biquad.TargetRQ},
		{Kind: biquad.FaultShort, Target: biquad.TargetC},
	}
}

// TestSpiceTrialEnginePinnedSpeedup pins the trial-template engine's
// performance contract, in the style of TestBatchedEnginePinnedSpeedup:
// SPICE trial throughput — perturb the golden netlist, run the settling
// + capture transient, observe the output — on the FaultTableSpice
// fault set must be at least 3x the rebuild-per-trial path
// (SpiceConfig.Rebuild, the pre-template behavior). The timed unit is
// the campaign's per-trial SPICE work; signature extraction is shared
// verbatim by both paths and pinned bit-identical end to end by
// TestSpiceTemplateCampaignBitIdentity, so it is excluded here to keep
// the pin measuring the engine under test. The template side serves the
// block through SpiceOutputBatch (the cross-trial batched engine, lanes
// interleaved through the fused solve kernel); the rebuild side pays
// netlist elaboration, restamped transients and fresh buffers per
// trial, exactly as every SPICE campaign did before trial templates.
// The pin tolerates machine noise by taking the best of three rounds;
// the companion bit-identity tests (spice TestCircuitTemplateMatchesRebuild
// and TestRunTrialsBatchMatchesRunTrial, biquad
// TestOutputScratchMatchesOutput and TestSpiceOutputBatchMatchesOutput,
// testbench TestSpiceTemplateCampaignBitIdentity) guarantee the speed
// never costs a single bit.
func TestSpiceTrialEnginePinnedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing pin skipped in -short mode (race CI distorts timing)")
	}
	tmplSys, err := core.DefaultSpice()
	if err != nil {
		t.Fatal(err)
	}
	tmplRoot := tmplSys.CUT.(*biquad.SpiceCUT)
	rbldRoot, err := biquad.NewSpiceCUTFromParams(tmplSys.Golden(), biquad.SpiceConfig{Rebuild: true})
	if err != nil {
		t.Fatal(err)
	}
	stim := tmplSys.Stimulus

	// Four repetitions of the fault set per op keep the batch lanes
	// occupied past the initial fill, like a real fault-table block.
	const reps = 4
	faults := spicePinFaults()
	perturb := func(root *biquad.SpiceCUT) ([]*biquad.SpiceCUT, error) {
		cuts := make([]*biquad.SpiceCUT, 0, reps*len(faults))
		for r := 0; r < reps; r++ {
			for i := range faults {
				c, err := root.Perturb(biquad.Deviation{Fault: &faults[i]})
				if err != nil {
					return nil, err
				}
				cuts = append(cuts, c.(*biquad.SpiceCUT))
			}
		}
		return cuts, nil
	}
	var sink float64
	var batch biquad.SpiceTrialBatch
	tmplOp := func() error {
		cuts, err := perturb(tmplRoot)
		if err != nil {
			return err
		}
		return biquad.SpiceOutputBatch(cuts, stim, biquad.OutputLP, &batch,
			func(i int, w wave.Waveform) error {
				sink += w.Eval(0)
				return nil
			})
	}
	rbldOp := func() error {
		cuts, err := perturb(rbldRoot)
		if err != nil {
			return err
		}
		for _, c := range cuts {
			w, err := c.Output(stim, biquad.OutputLP)
			if err != nil {
				return err
			}
			sink += w.Eval(0)
		}
		return nil
	}
	// Warm both paths outside the timed region (tick caches, workspace
	// pools, lane templates) and surface any setup error early.
	if err := tmplOp(); err != nil {
		t.Fatal(err)
	}
	if err := rbldOp(); err != nil {
		t.Fatal(err)
	}

	// Errors surface through opErr: testing.Benchmark runs the closure on
	// a separate goroutine, where t.Fatal must not be called.
	var opErr error
	best := 0.0
	for round := 0; round < 3 && best < 3; round++ {
		rt := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N && opErr == nil; i++ {
				opErr = tmplOp()
			}
		})
		rr := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N && opErr == nil; i++ {
				opErr = rbldOp()
			}
		})
		if opErr != nil {
			t.Fatal(opErr)
		}
		if ratio := float64(rr.NsPerOp()) / float64(rt.NsPerOp()); ratio > best {
			best = ratio
		}
	}
	t.Logf("FaultTableSpice trials: batched trial templates are %.1fx the rebuild-per-trial path", best)
	if best < 3 {
		t.Fatalf("trial-template engine only %.2fx the rebuild path, pinned at >= 3x", best)
	}
	_ = sink
}
