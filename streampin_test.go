package repro

import (
	"context"
	"encoding/binary"
	"math"
	"runtime"
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/testbench"
)

// trivialTrial and sumRed isolate the engine overhead: with no trial
// work, the timing is dominated by what the engine itself does per trial
// (result-slot writes, atomic progress ticks, chunk bookkeeping).
func trivialTrial(i int) (float64, error) { return float64(i & 1), nil }

func sumRed() campaign.Reducer[float64, float64] {
	return campaign.Reducer[float64, float64]{
		Fold:  func(a float64, _ int, v float64) float64 { return a + v },
		Merge: func(a, b float64) float64 { return a + b },
	}
}

// TestReducePinnedThroughput pins the streaming engine's hot-path win
// over the materializing engine, in the style of the batched-signature
// and SPICE fast-path pins: on a million trivial trials, Reduce must be
// at least 1.5x faster than Run — it writes no result slots and ticks
// progress per chunk, not per trial. Measured headroom is ~4x, so the
// pin tolerates machine noise; best-of-three keeps it robust on loaded
// CI.
func TestReducePinnedThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("timing pin skipped in -short mode (race CI distorts timing)")
	}
	ctx := context.Background()
	const n = 1_000_000
	var opErr error
	best := 0.0
	for round := 0; round < 3 && best < 1.5; round++ {
		rr := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N && opErr == nil; i++ {
				_, opErr = campaign.Reduce(ctx, campaign.Engine{Workers: 1}, n, sumRed(), trivialTrial)
			}
		})
		rn := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N && opErr == nil; i++ {
				_, opErr = campaign.Run(ctx, campaign.Engine{Workers: 1}, n, trivialTrial)
			}
		})
		if opErr != nil {
			t.Fatal(opErr)
		}
		if ratio := float64(rn.NsPerOp()) / float64(rr.NsPerOp()); ratio > best {
			best = ratio
		}
	}
	t.Logf("Reduce is %.1fx the materializing Run on the trivial-trial hot path", best)
	if best < 1.5 {
		t.Fatalf("Reduce only %.2fx Run, pinned at >= 1.5x", best)
	}
}

// TestCheckpointOverheadPinned pins the durable fabric's checkpoint tax:
// at the default cadence (one serialized accumulator every 65536
// trials), a span reduction with a checkpoint sink must cost less than
// 5% over the same reduction with no sink — the knob that makes
// durability free enough to leave on for every sharded campaign.
// Trivial trials are the worst case for the pin: any real campaign's
// per-trial work only shrinks the relative overhead. Best-of-three
// against machine noise, in the TestReducePinnedThroughput style.
func TestCheckpointOverheadPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("timing pin skipped in -short mode (race CI distorts timing)")
	}
	ctx := context.Background()
	span := campaign.Span{Lo: 0, Hi: 1_000_000}
	sink := func(acc float64, through int) error {
		var buf [16]byte
		binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(acc))
		binary.LittleEndian.PutUint64(buf[8:], uint64(through))
		return nil
	}
	var opErr error
	best := math.Inf(1)
	for round := 0; round < 3 && best >= 1.05; round++ {
		off := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N && opErr == nil; i++ {
				_, opErr = campaign.ReduceSpan(ctx, campaign.Engine{Workers: 1}, span, nil, nil, sumRed(), trivialTrial)
			}
		})
		on := testing.Benchmark(func(b *testing.B) {
			e := campaign.Engine{Workers: 1, Checkpoint: campaign.DefaultCheckpoint}
			for i := 0; i < b.N && opErr == nil; i++ {
				_, opErr = campaign.ReduceSpan(ctx, e, span, nil, sink, sumRed(), trivialTrial)
			}
		})
		if opErr != nil {
			t.Fatal(opErr)
		}
		if ratio := float64(on.NsPerOp()) / float64(off.NsPerOp()); ratio < best {
			best = ratio
		}
	}
	t.Logf("checkpointing at the default cadence costs %.2f%% over the bare span reduction", (best-1)*100)
	if best >= 1.05 {
		t.Fatalf("checkpoint overhead %.1f%% at the default cadence, pinned at < 5%%", (best-1)*100)
	}
}

// TestYieldCampaignFlatHeap runs the full yield campaign — spec decode,
// registry dispatch, streaming reduction, Wilson intervals — to
// completion at 10k and at 40k dies and requires the peak live heap to
// stay flat: the pre-refactor implementation held an O(n) stream
// pre-pass plus O(n) verdict slots for the whole run, which grows by
// megabytes over this span; the streamed campaign retains only
// accumulators. (The 10k-vs-1M version of this measurement runs on the
// engine itself in campaign.TestReduceFlatMemoryAt10kVs1M, where trials
// are free; here every die pays for a real signature extraction, so the
// span is chosen to keep the suite fast. A true 1M-die spec is
// exercised end-to-end, with cancellation, by the testbench and serve
// cancellation tests.) The reduced scan resolution only cheapens the
// per-die physics; the campaign plumbing is exactly the production
// path.
func TestYieldCampaignFlatHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second campaign skipped in -short mode")
	}
	peakLive := func(n int) uint64 {
		sys := core.Default()
		sys.ScanN = 64
		thr := 0.03
		var mu sync.Mutex
		var peak uint64
		_, err := testbench.Run(context.Background(), testbench.Spec{
			Campaign: "yield",
			Seed:     1,
			Params:   testbench.YieldParams{N: n, ComponentSigma: 0.02, Tol: 0.05, Threshold: &thr},
		},
			testbench.WithSystem(sys),
			testbench.WithProgress(func(done, total int) {
				// Chunk-granular: a dozen samples per run. GC first so the
				// reading is live heap, not garbage awaiting collection.
				runtime.GC()
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				mu.Lock()
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
				mu.Unlock()
			}))
		if err != nil {
			t.Fatal(err)
		}
		return peak
	}
	small := peakLive(10_000)
	big := peakLive(40_000)
	t.Logf("peak live heap: %d B at 10k dies, %d B at 40k dies", small, big)
	if big > small+4<<20 {
		t.Fatalf("peak heap grew %d B over 4x the dies — campaign memory scales with trials", big-small)
	}
}
