// noise_detect reproduces the paper's noise experiment: with white
// measurement noise of 3σ = 0.015 V on both monitored signals, natural
// frequency deviations as small as 1% remain detectable.
//
// Run with: go run ./examples/noise_detect
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/testbench"
)

func main() {
	sys := core.Default()
	const sigma = 0.005 // 3σ = 0.015 V, the paper's condition

	fmt.Printf("measurement noise: sigma = %.3f V (3σ = %.3f V)\n\n", sigma, 3*sigma)
	res, err := testbench.RunNoiseDetection(sys, sigma,
		[]float64{0.005, 0.01, 0.02, 0.05, 0.10}, 25, 25, 2024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())
	fmt.Println("\npaper claim: deviations as low as 1% in f0 are detected under this noise.")
	if len(res.Detect) >= 2 && res.Detect[1] > res.FalseRate {
		fmt.Printf("reproduced: 1%% detection rate %.2f exceeds false-alarm rate %.2f\n",
			res.Detect[1], res.FalseRate)
	} else {
		fmt.Println("NOT reproduced under the current configuration — inspect the noise floor.")
	}
}
