// Quickstart: build the paper's reference system, capture the digital
// signature of a CUT with a +10% natural-frequency deviation, and make a
// pass/fail decision with a ±5% tolerance specification.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ndf"
)

func main() {
	// The reference system: multitone stimulus into a 10 kHz low-pass
	// Biquad, observed by the six Table I monitors, captured with a
	// 10 MHz clock and 16-bit dwell counter.
	sys := core.Default()

	// Calibrate the acceptance threshold so that CUTs within ±5% of the
	// nominal f0 pass (the Fig. 8 PASS band construction).
	decision, err := sys.CalibrateFromTolerance(0.05, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("acceptance threshold: NDF <= %.4f\n\n", decision.Threshold)

	// Test three CUTs: golden, a +3% marginal device, and the paper's
	// +10% example.
	for _, shift := range []float64{0, 0.03, 0.10} {
		cut, err := sys.Shifted(shift)
		if err != nil {
			log.Fatal(err)
		}
		result, err := sys.Test(cut, decision, 0, nil)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "PASS"
		if !result.Pass {
			verdict = "FAIL"
		}
		fmt.Printf("CUT f0 %+5.1f%%: NDF = %.4f -> %s\n", shift*100, result.NDF, verdict)
	}

	// Show the captured signature of the +10% CUT the way the paper
	// writes it (Eq. 1).
	deviated, err := sys.Shifted(0.10)
	if err != nil {
		log.Fatal(err)
	}
	sig, err := sys.CapturedSignature(deviated, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n+10%% signature, %d zone intervals over %.0f µs:\n",
		sig.NumZones(), sig.Period*1e6)
	for _, e := range sig.Entries {
		fmt.Printf("  zone %s  for %7.2f µs\n", sys.Bank.FormatCode(e.Code), e.Dur*1e6)
	}

	golden, err := sys.GoldenSignature()
	if err != nil {
		log.Fatal(err)
	}
	v, err := ndf.NDF(sig, golden)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nNDF = %.4f (paper reports 0.1021 for this experiment)\n", v)
}
