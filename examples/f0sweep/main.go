// f0sweep regenerates the paper's Fig. 8: the normalized discrepancy
// factor as a function of the deviation in the Biquad's natural
// frequency, with PASS/FAIL acceptance bands, and prints an ASCII plot.
//
// Run with: go run ./examples/f0sweep
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/testbench"
)

func main() {
	sys := core.Default()
	fig, err := testbench.RunFig8(sys, 0.20, 41, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fig.Render())

	// ASCII rendition of the V-shaped acceptance curve.
	fmt.Println("\nNDF")
	maxNDF := 0.0
	for _, v := range fig.NDFs {
		if v > maxNDF {
			maxNDF = v
		}
	}
	const width = 60
	for i := range fig.Devs {
		bar := int(fig.NDFs[i] / maxNDF * width)
		band := "PASS"
		if fig.NDFs[i] > fig.Threshold {
			band = "FAIL"
		}
		fmt.Printf("%+5.1f%% |%-*s| %.4f %s\n",
			fig.Devs[i]*100, width, strings.Repeat("#", bar), fig.NDFs[i], band)
	}
	fmt.Printf("\nthreshold %.4f set at the ±%.0f%% tolerance edges\n",
		fig.Threshold, fig.Tolerance*100)
	fmt.Println("paper reference: NDF grows ~linearly and ~symmetrically; 0.1021 at +10%")
}
