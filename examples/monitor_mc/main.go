// monitor_mc regenerates the Fig. 4 study: the six Table I control
// curves traced from the monitor model, cross-checked at transistor level
// with the MNA simulator, plus a Monte Carlo process/mismatch envelope —
// the paper's validation that measured boundaries lie in the predicted
// Monte Carlo range.
//
// Run with: go run ./examples/monitor_mc
package main

import (
	"fmt"
	"log"
	"math"
	"runtime"

	"repro/internal/monitor"
	"repro/internal/testbench"
)

func main() {
	// Nominal boundary traces of all six Table I configurations.
	fig, err := testbench.RunFig4(21)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table I control curves (analytic current-balance model):")
	for i, pts := range fig.Curves {
		fmt.Printf("  curve %d (%s): %d boundary points", i+1, fig.Names[i], len(pts))
		if len(pts) > 0 {
			fmt.Printf(", e.g. (%.2f, %.2f) ... (%.2f, %.2f)",
				pts[0].X, pts[0].Y, pts[len(pts)-1].X, pts[len(pts)-1].Y)
		}
		fmt.Println()
	}

	// Transistor-level cross-check of the curve-3 arc: the Fig. 2
	// netlist (8 MOSFETs, solved by Newton-Raphson MNA) must place the
	// boundary where the design equations say.
	cfg := monitor.TableI()[2]
	sm, err := monitor.NewSpice(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	am := monitor.MustAnalytic(cfg)
	fmt.Println("\ncurve 3 boundary: analytic vs transistor-level MNA:")
	for _, x := range []float64{0.25, 0.40, 0.55} {
		ya, okA := am.BoundaryY(x, 0, 1)
		ys, okS := sm.BoundaryY(x, 0, 1)
		if !okA || !okS {
			fmt.Printf("  x = %.2f: no crossing\n", x)
			continue
		}
		fmt.Printf("  x = %.2f: analytic y = %.4f, spice y = %.4f (|Δ| = %.4f)\n",
			x, ya, ys, math.Abs(ya-ys))
	}

	// Monte Carlo envelope (process corners + Pelgrom mismatch). The 300
	// dies fan out across the campaign worker pool — all CPUs here, but
	// any worker count (RunFig4MCWorkers) renders the identical envelope,
	// because every die draws from its own index-derived random stream.
	env, err := testbench.RunFig4MCWorkers(2, 300, 15, 7, runtime.NumCPU())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMC envelope over 300 dies (%d workers):\n", runtime.NumCPU())
	fmt.Print(env.Render())
	serial, err := testbench.RunFig4MCWorkers(2, 300, 15, 7, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-worker rerun identical: %v\n", serial.Render() == env.Render())

	// Area accounting from the published layout numbers.
	est := monitor.EstimateArea(cfg)
	fmt.Printf("\narea model: core %.2f µm², with output stage %.2f µm² (published: %.2f / %.2f)\n",
		est.CoreUm2, est.TotalUm2, monitor.RefCoreAreaUm2, monitor.RefTotalAreaUm2)
}
