// monitor_mc regenerates the Fig. 4 study on the declarative campaign
// API: the six Table I control curves traced from the monitor model,
// cross-checked at transistor level with the MNA simulator, plus a Monte
// Carlo process/mismatch envelope — the paper's validation that measured
// boundaries lie in the predicted Monte Carlo range.
//
// Every experiment here is one testbench.Spec resolved through the
// campaign registry with Run(ctx, spec) — the same specs mcmon -campaign
// takes on the command line and mcserved accepts as JSON over HTTP.
//
// Run with: go run ./examples/monitor_mc
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"runtime"
	"sync/atomic"

	"repro/internal/monitor"
	"repro/internal/testbench"
)

func main() {
	ctx := context.Background()

	// Nominal boundary traces of all six Table I configurations, as a
	// registry campaign.
	res, err := testbench.Run(ctx, testbench.Spec{
		Campaign: "fig4",
		Params:   testbench.Fig4Params{Points: 21},
	})
	if err != nil {
		log.Fatal(err)
	}
	fig := res.Payload.(*testbench.Fig4)
	fmt.Println("Table I control curves (analytic current-balance model):")
	for i, pts := range fig.Curves {
		fmt.Printf("  curve %d (%s): %d boundary points", i+1, fig.Names[i], len(pts))
		if len(pts) > 0 {
			fmt.Printf(", e.g. (%.2f, %.2f) ... (%.2f, %.2f)",
				pts[0].X, pts[0].Y, pts[len(pts)-1].X, pts[len(pts)-1].Y)
		}
		fmt.Println()
	}

	// Transistor-level cross-check of the curve-3 arc: the Fig. 2
	// netlist (8 MOSFETs, solved by Newton-Raphson MNA) must place the
	// boundary where the design equations say.
	cfg := monitor.TableI()[2]
	sm, err := monitor.NewSpice(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	am := monitor.MustAnalytic(cfg)
	fmt.Println("\ncurve 3 boundary: analytic vs transistor-level MNA:")
	for _, x := range []float64{0.25, 0.40, 0.55} {
		ya, okA := am.BoundaryY(x, 0, 1)
		ys, okS := sm.BoundaryY(x, 0, 1)
		if !okA || !okS {
			fmt.Printf("  x = %.2f: no crossing\n", x)
			continue
		}
		fmt.Printf("  x = %.2f: analytic y = %.4f, spice y = %.4f (|Δ| = %.4f)\n",
			x, ya, ys, math.Abs(ya-ys))
	}

	// Monte Carlo envelope (process corners + Pelgrom mismatch) with live
	// progress. The 300 dies fan out across the campaign worker pool —
	// all CPUs here, but any worker bound in the spec renders the
	// identical envelope, because every die draws from its own
	// index-derived random stream.
	spec := testbench.Spec{
		Campaign: "fig4mc",
		Seed:     7,
		Workers:  runtime.NumCPU(),
		Params:   testbench.Fig4MCParams{Monitor: 2, Dies: 300, Cols: 15},
	}
	var lastPct atomic.Int64 // progress callbacks arrive concurrently from the workers
	envRes, err := testbench.Run(ctx, spec, testbench.WithProgress(func(done, total int) {
		pct := int64(100 * done / total)
		if last := lastPct.Load(); pct >= last+25 && lastPct.CompareAndSwap(last, pct) {
			fmt.Printf("  ... %d/%d dies\n", done, total)
		}
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMC envelope over 300 dies (%d workers, %v):\n",
		envRes.Workers, envRes.Elapsed.Round(1e6))
	fmt.Print(envRes.Text)

	// Re-run the same spec single-worker: the campaign engine's
	// bit-reproducibility contract says the rendering cannot change.
	spec.Workers = 1
	serial, err := testbench.Run(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-worker rerun identical: %v\n", serial.Text == envRes.Text)

	// Area accounting from the published layout numbers.
	est := monitor.EstimateArea(cfg)
	fmt.Printf("\narea model: core %.2f µm², with output stage %.2f µm² (published: %.2f / %.2f)\n",
		est.CoreUm2, est.TotalUm2, monitor.RefCoreAreaUm2, monitor.RefTotalAreaUm2)
}
