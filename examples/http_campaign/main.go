// http_campaign demonstrates the campaign-as-a-service path end to end,
// in one process: it mounts the mcserved HTTP engine on an ephemeral
// port, discovers the campaign catalogue over the wire, submits a
// declarative spec as JSON, follows the job's streamed progress, decodes
// the typed result envelope, and finally shows mid-flight cancellation —
// the same five calls a dashboard or a test-floor controller would make
// against a long-running mcserved.
//
// Run with: go run ./examples/http_campaign
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/serve"
	"repro/internal/testbench"
)

func main() {
	// The same engine cmd/mcserved wraps, on a test listener.
	engine := serve.New(context.Background())
	defer engine.Close()
	ts := httptest.NewServer(engine.Handler())
	defer ts.Close()
	fmt.Printf("campaign service on %s\n", ts.URL)

	// 1. Discover the catalogue: names, param schemas, defaults — all
	// reflected straight out of the registry.
	var infos []testbench.Info
	mustGetJSON(ts.URL+"/v1/campaigns", &infos)
	fmt.Printf("\ncatalogue: %d campaigns, e.g.:\n", len(infos))
	for _, info := range infos {
		if info.Name == "fig4mc" || info.Name == "yield" {
			fmt.Printf("  %-8s %s\n", info.Name, info.Summary)
			for _, p := range info.Params {
				def, _ := json.Marshal(p.Default)
				fmt.Printf("      %-16s %-10s default %s\n", p.Name, p.Type, def)
			}
		}
	}

	// 2. Submit a spec. This is literally the JSON a curl command or a
	// remote controller would POST.
	spec := `{"campaign":"fig4mc","seed":7,"workers":4,"params":{"monitor":2,"dies":200,"cols":13}}`
	fmt.Printf("\nPOST /v1/campaigns\n  %s\n", spec)
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	var job serve.JobStatus
	mustDecode(resp, &job)
	fmt.Printf("accepted as %s (state %s)\n", job.ID, job.State)

	// 3. Stream progress over the SSE endpoint until the job finishes.
	fmt.Printf("\nGET /v1/jobs/%s/events\n", job.ID)
	events, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		log.Fatal(err)
	}
	var final serve.JobStatus
	scanner := bufio.NewScanner(events.Body)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &final); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  event: state=%s progress=%d/%d\n",
			final.State, final.Progress.Done, final.Progress.Total)
	}
	_ = events.Body.Close() // stream drained to the terminal frame above

	// 4. The terminal frame carries the uniform Result envelope; decode
	// it back into the typed payload through the registry.
	if final.State != serve.StateDone || final.Result == nil {
		log.Fatalf("job ended %q: %s", final.State, final.Error)
	}
	raw, err := json.Marshal(final.Result)
	if err != nil {
		log.Fatal(err)
	}
	res, err := testbench.DecodeResult(raw)
	if err != nil {
		log.Fatal(err)
	}
	env := res.Payload.(*testbench.Fig4MC)
	fmt.Printf("\nresult decoded as %T (elapsed %v, workers %d):\n",
		env, res.Elapsed.Round(time.Millisecond), res.Workers)
	fmt.Printf("  nominal boundary inside the 95%% envelope at %.0f%% of columns\n",
		100*env.NominalInsideEnvelope())

	// 5. Cancellation: submit a deliberately huge yield campaign and
	// abort it mid-flight through the API.
	big := `{"campaign":"yield","seed":3,"params":{"n":1000000,"threshold":0.03}}`
	resp, err = http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(big))
	if err != nil {
		log.Fatal(err)
	}
	mustDecode(resp, &job)
	fmt.Printf("\nsubmitted a 1M-die yield campaign as %s; cancelling it...\n", job.ID)
	for {
		var cur serve.JobStatus
		mustGetJSON(ts.URL+"/v1/jobs/"+job.ID, &cur)
		if cur.Progress.Done > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err = http.Post(ts.URL+"/v1/jobs/"+job.ID+"/cancel", "application/json", nil)
	if err != nil {
		log.Fatal(err)
	}
	_ = resp.Body.Close() // cancel ack carries no body worth keeping
	for {
		var cur serve.JobStatus
		mustGetJSON(ts.URL+"/v1/jobs/"+job.ID, &cur)
		if cur.State != serve.StateRunning {
			fmt.Printf("job %s ended %q after %d of %d dies\n",
				job.ID, cur.State, cur.Progress.Done, cur.Progress.Total)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func mustGetJSON(url string, into any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	mustDecode(resp, into)
}

func mustDecode(resp *http.Response, into any) {
	defer func() { _ = resp.Body.Close() }() // body fully consumed by Decode
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		log.Fatal(err)
	}
}
