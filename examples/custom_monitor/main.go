// custom_monitor walks the designer workflow of Section V ("zone
// boundaries can be adjusted by changing the biasing voltages and/or the
// aspect ratio of the input transistors"): given a *different* CUT — a
// higher-Q Biquad whose Lissajous occupies another part of the plane —
// synthesize a custom monitor bank with the design helpers, verify its
// zone partition, and check it out-discriminates the stock Table I bank
// for that CUT.
//
// Run with: go run ./examples/custom_monitor
package main

import (
	"fmt"
	"log"

	"repro/internal/biquad"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/wave"
	"repro/internal/zone"
)

func main() {
	// A different CUT: Q = 2.0 resonant low-pass at 12 kHz with a
	// two-tone stimulus that hugs the resonance.
	stim, err := wave.NewMultitone(0.5, 6e3, []int{1, 2},
		[]float64{0.18, 0.10}, []float64{0, 0.7})
	if err != nil {
		log.Fatal(err)
	}
	golden := biquad.Params{F0: 12e3, Q: 2.0, Gain: 0.5}
	cut, err := biquad.NewAnalyticCUT(golden)
	if err != nil {
		log.Fatal(err)
	}

	// Probe where this CUT's Lissajous lives.
	f, err := biquad.New(golden)
	if err != nil {
		log.Fatal(err)
	}
	out := f.SteadyState(stim)
	curveLo, curveHi := out.PeakToPeak()
	fmt.Printf("custom CUT: f0 %.0f Hz Q %.1f gain %.1f, output swings [%.2f, %.2f] V\n",
		golden.F0, golden.Q, golden.Gain, curveLo, curveHi)

	// Design a bank for that occupancy: arcs anchored across the
	// output range plus a diagonal and a segment at the output median.
	base := monitor.TableI()[2]
	var cfgs []monitor.Config
	for _, p := range []float64{0.3, 0.42, 0.54} {
		cfg, err := monitor.DesignArc(p, 1800, base)
		if err != nil {
			log.Fatal(err)
		}
		cfgs = append(cfgs, cfg)
	}
	seg, err := monitor.DesignSegment(0.45, 0.25, 3000, base)
	if err != nil {
		log.Fatal(err)
	}
	cfgs = append(cfgs, seg)
	arc, err := monitor.FitArcBias(0.35, 0.62, 1800, base)
	if err != nil {
		log.Fatal(err)
	}
	cfgs = append(cfgs, arc)
	diag := monitor.TableI()[5]
	cfgs = append(cfgs, diag)

	ms := make([]monitor.Monitor, len(cfgs))
	for i, cfg := range cfgs {
		ms[i] = monitor.MustAnalytic(cfg)
	}
	customBank := monitor.NewBank(ms...)

	// Inspect the partition.
	zm, err := zone.Build(customBank, 0, 1, 101)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom bank partitions the plane into %d zones (%d Gray violations)\n",
		zm.NumZones(), len(zm.GrayViolations()))

	// Compare sensitivity for this CUT: custom bank vs stock Table I.
	cap := core.Default().Capture
	customSys, err := core.NewSystem(stim, cut, customBank, cap)
	if err != nil {
		log.Fatal(err)
	}
	stockSys, err := core.NewSystem(stim, cut, monitor.NewAnalyticTableI(), cap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nNDF sensitivity for the custom CUT:")
	fmt.Println("dev%    custom   stock-TableI")
	for _, d := range []float64{-0.10, -0.05, -0.02, 0.02, 0.05, 0.10} {
		cv, err := customSys.NDFOfShift(d)
		if err != nil {
			log.Fatal(err)
		}
		sv, err := stockSys.NDFOfShift(d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%+5.1f   %.4f   %.4f\n", d*100, cv, sv)
	}
	fmt.Println("\nthe helpers let a test engineer re-target the monitor bank to any")
	fmt.Println("CUT by anchoring boundaries where its Lissajous actually travels.")
}
