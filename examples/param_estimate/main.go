// param_estimate demonstrates the multi-parameter generalization the
// paper points to (ref [14]): by observing the Biquad's low-pass AND
// band-pass outputs with the same monitor bank, the pair of digital
// signatures carries enough information to jointly estimate the natural
// frequency AND the quality factor of the CUT by regression on dwell
// features — turning the go/no-go signature test into a parameter
// measurement.
//
// Run with: go run ./examples/param_estimate
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/signature"
	"repro/internal/stat"
)

func main() {
	lpSys := core.Default()
	bpSys, err := core.NewSystem(lpSys.Stimulus, lpSys.CUT, lpSys.Bank, lpSys.Capture)
	if err != nil {
		log.Fatal(err)
	}
	bpSys.Observe = core.ObserveBP

	// sigPair derives the deviated CUT once and captures both
	// observations of it.
	sigPair := func(df, dq float64) (*signature.Signature, *signature.Signature) {
		cut, err := lpSys.Deviated(core.Deviation{F0Shift: df, QShift: dq})
		if err != nil {
			log.Fatal(err)
		}
		sl, err := lpSys.ExactSignature(cut)
		if err != nil {
			log.Fatal(err)
		}
		sb, err := bpSys.ExactSignature(cut)
		if err != nil {
			log.Fatal(err)
		}
		return sl, sb
	}

	// Training grid: f0 and Q deviations on a 5x5 lattice.
	devGrid := []float64{-0.10, -0.05, 0, 0.05, 0.10}
	var lpSigs, bpSigs []*signature.Signature
	var f0Labels, qLabels []float64
	for _, df := range devGrid {
		for _, dq := range devGrid {
			sl, sb := sigPair(df, dq)
			lpSigs = append(lpSigs, sl)
			bpSigs = append(bpSigs, sb)
			f0Labels = append(f0Labels, df)
			qLabels = append(qLabels, dq)
		}
	}

	// Features: concatenated dwell fractions of both observations.
	lpFeat := baseline.NewFeatures(lpSigs...)
	bpFeat := baseline.NewFeatures(bpSigs...)
	featVec := func(sl, sb *signature.Signature) []float64 {
		v := lpFeat.Vector(sl)
		return append(v, bpFeat.Vector(sb)[1:]...) // drop duplicate intercept
	}
	var X [][]float64
	for i := range lpSigs {
		X = append(X, featVec(lpSigs[i], bpSigs[i]))
	}
	betaF0, err := stat.MultiFit(X, f0Labels)
	if err != nil {
		log.Fatal(err)
	}
	betaQ, err := stat.MultiFit(X, qLabels)
	if err != nil {
		log.Fatal(err)
	}
	predict := func(beta, x []float64) float64 {
		s := 0.0
		for i := range beta {
			s += beta[i] * x[i]
		}
		return s
	}

	// Held-out CUTs off the training lattice.
	fmt.Println("held-out joint estimation (true vs predicted):")
	fmt.Println("  f0 dev      Q dev     ->  f0^ dev     Q^ dev")
	var f0Err, qErr []float64
	for _, tc := range [][2]float64{
		{0.07, -0.03}, {-0.04, 0.08}, {0.02, 0.02}, {-0.08, -0.06}, {0.09, 0.04},
	} {
		sl, sb := sigPair(tc[0], tc[1])
		x := featVec(sl, sb)
		pf, pq := predict(betaF0, x), predict(betaQ, x)
		fmt.Printf("  %+7.2f%%   %+7.2f%%  ->  %+7.2f%%   %+7.2f%%\n",
			tc[0]*100, tc[1]*100, pf*100, pq*100)
		f0Err = append(f0Err, pf-tc[0])
		qErr = append(qErr, pq-tc[1])
	}
	rms := func(e []float64) float64 {
		s := 0.0
		for _, v := range e {
			s += v * v
		}
		return math.Sqrt(s / float64(len(e)))
	}
	fmt.Printf("\nheld-out RMSE: f0 %.2f%%, Q %.2f%% (of nominal)\n",
		100*rms(f0Err), 100*rms(qErr))
	fmt.Println("single-output signature tests only answer pass/fail; the dual")
	fmt.Println("observation separates which parameter moved and by how much.")
}
