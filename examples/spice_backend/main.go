// spice_backend demonstrates the pluggable CUT layer: the same paper
// experiment — calibrate a ±5% band, test deviated and faulty devices —
// runs once on the closed-form analytic model and once on the SPICE
// netlist engine (a Tow-Thomas opamp-RC circuit integrated by the
// transient solver's linear fast path). The two backends agree to within
// the integrator's accuracy budget, so campaigns can pick either: the
// analytic model for speed, the netlist for component-level fidelity.
//
// Run with: go run ./examples/spice_backend
package main

import (
	"fmt"
	"log"

	"repro/internal/biquad"
	"repro/internal/core"
)

func main() {
	analytic := core.Default()
	spiced, err := core.DefaultSpice()
	if err != nil {
		log.Fatal(err)
	}

	for _, sys := range []*core.System{analytic, spiced} {
		fmt.Printf("backend: %s\n", sys.CUT.Describe())
		dec, err := sys.CalibrateFromTolerance(0.05, 9)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  calibrated threshold: NDF <= %.4f\n", dec.Threshold)
		for _, shift := range []float64{0, 0.03, 0.10} {
			cut, err := sys.Shifted(shift)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sys.Test(cut, dec, 0, nil)
			if err != nil {
				log.Fatal(err)
			}
			verdict := "PASS"
			if !res.Pass {
				verdict = "FAIL"
			}
			fmt.Printf("  f0 %+5.1f%%: NDF = %.4f -> %s\n", shift*100, res.NDF, verdict)
		}
		// A component-level defect the way only the realization can
		// express it: the damping resistor opens.
		fault := biquad.Fault{Kind: biquad.FaultOpen, Target: biquad.TargetRQ}
		faulty, err := sys.Deviated(core.Deviation{Fault: &fault})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Test(faulty, dec, 0, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: NDF = %.4f -> detected=%v\n\n", fault, res.NDF, !res.Pass)
	}
}
