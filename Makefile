# CI entry points. `make ci` is the gate: vet, build, and the race-tested
# short suite. The short mode guard keeps internal/testbench's long
# Monte-Carlo campaigns out of the race run; `make test` runs them all.

GO ?= go

.PHONY: ci vet build test race bench

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Full suite, including the long Monte-Carlo campaigns.
test:
	$(GO) test ./...

# Race-tested subset: -short skips the long campaigns so the ~10x race
# overhead stays within CI budget while still exercising every
# parallelized runner.
race:
	$(GO) test -race -short ./...

# Paper-vs-measured benchmark table (one pass per artifact).
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
