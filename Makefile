# CI entry points. `make ci` is the gate, ordered cheapest-first so the
# fastest check that can fail, fails first: format check, then the
# static-analysis gate (`lint` = go vet + the in-repo mclint suite —
# before any compile/test work because a determinism or cancellation
# violation invalidates everything downstream), then build, the
# race-tested short suite, a one-iteration benchmark smoke pass over the
# transient/campaign benchmarks (catches perf-path regressions that only
# show up when the solver actually runs), an mcserved smoke run that
# boots the HTTP campaign service and drives one small campaign through
# its own API, and a fabric smoke run that shards a campaign across two
# HTTP workers and checks the merged result against the single-node
# run. `make test` runs the full suite including the long Monte-Carlo
# campaigns.

GO ?= go
GOFMT ?= gofmt

# Perf trajectory snapshot number: bump per PR (or override with
# `make bench-json BENCH_N=7`) so BENCH_<N>.json files accumulate and
# bench-diff always compares the two most recent.
BENCH_N ?= 10
BENCH_PREV = $(shell expr $(BENCH_N) - 1)

.PHONY: ci fmt vet lint lint-json build test race bench bench-json bench-smoke bench-diff fuzz-smoke serve-smoke fabric-smoke load load-smoke

ci: fmt lint build race bench-smoke serve-smoke fabric-smoke load-smoke

# gofmt gate: fail with the offending file list when any file is unformatted.
fmt:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Static-analysis gate: go vet plus mclint, the in-repo suite enforcing
# the engine's determinism (detrand, maporder), cancellation (ctxflow),
# hot-path allocation (hotalloc) and error-handling (errdrop) contracts.
# Zero unsuppressed findings or the build fails; see cmd/mclint and
# README "Static analysis" for the directive escape hatch.
lint: vet
	$(GO) run ./cmd/mclint

# Machine-readable findings for the CI artifact: always exits 0 via the
# trailing guard (the blocking gate is `lint`), so the artifact uploads
# even when findings exist.
lint-json:
	$(GO) run ./cmd/mclint -json > mclint.json || true

build:
	$(GO) build ./...

# Full suite, including the long Monte-Carlo campaigns.
test:
	$(GO) test ./...

# Race-tested subset: -short skips the long campaigns so the ~10x race
# overhead stays within CI budget while still exercising every
# parallelized runner.
race:
	$(GO) test -race -short ./...

# Paper-vs-measured benchmark table (one pass per artifact).
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Perf trajectory snapshot: the full benchmark suite in `go test -json`
# event form (benchstat reads it directly: `benchstat BENCH_$(BENCH_N).json`,
# and cmd/benchdiff compares two snapshots without external tools).
# BENCH_N bumps per PR so the trajectory accumulates.
bench-json:
	$(GO) test -bench=. -benchtime=1x -run=^$$ -json . > BENCH_$(BENCH_N).json

# Benchstat-style regression report between the two most recent
# snapshots, implemented in-repo (cmd/benchdiff, stdlib only) so CI needs
# no extra tooling. Fails on a >30% ns/op regression in the pinned
# hot-path benchmarks (SPICE linear transient, batched signature engine,
# streaming reduction); everything else is report-only. The CI workflow
# runs it as a non-blocking report step — single-iteration snapshots are
# noisy, so only humans act on it.
bench-diff:
	$(GO) run ./cmd/benchdiff -old BENCH_$(BENCH_PREV).json -new BENCH_$(BENCH_N).json

# Smoke gate: single-iteration run of the SPICE transient, the
# SPICE-campaign (rebuild, template and batched trial engines), the
# batched-signature-engine, the streaming-reduction, the
# registry-dispatch, the streaming-statistics and the
# checkpoint-cadence benchmarks (fast path, Newton baseline, CUT
# output, trial templates, fault table, batched vs scalar capture,
# Reduce vs Run, spec dispatch, sketch push, streamed null calibration,
# span reduction with/without a checkpoint sink) — proves the hot paths
# still execute end to end.
bench-smoke:
	$(GO) test -bench='TransientTowThomas|SpiceCUT|SpiceTrialEngine|FaultTableSpice|SignatureCapture|AveragedNDF|BankClassify|RegistryDispatch|CampaignReduce1M|CampaignRun1M|QuantileSketchPush|NoiseNullCalibration|CheckpointOverhead' -benchtime=1x -run=^$$ .

# Short-budget fuzz pass over the SPICE netlist parser, the signature
# binary decoder, the trial-template mutation engine, the streaming
# statistics codecs, the fabric job-log replay and the shard accumulator
# codecs (seed corpora are checked in under testdata/fuzz). Each target
# gets 10s — enough to exercise the mutator on every seed class without
# blowing the CI budget. `go test -fuzz` accepts one target per
# invocation, hence the per-target runs.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz='^FuzzParseValue$$' -fuzztime=10s ./internal/spice
	$(GO) test -run=^$$ -fuzz='^FuzzParse$$' -fuzztime=10s ./internal/spice
	$(GO) test -run=^$$ -fuzz='^FuzzTemplateMutation$$' -fuzztime=10s ./internal/spice
	$(GO) test -run=^$$ -fuzz='^FuzzUnmarshalBinary$$' -fuzztime=10s ./internal/signature
	$(GO) test -run=^$$ -fuzz='^FuzzQuantileSketchUnmarshal$$' -fuzztime=10s ./internal/stat
	$(GO) test -run=^$$ -fuzz='^FuzzStreamingHistogramUnmarshal$$' -fuzztime=10s ./internal/stat
	$(GO) test -run=^$$ -fuzz='^FuzzJobLogReplay$$' -fuzztime=10s ./internal/fabric
	$(GO) test -run=^$$ -fuzz='^FuzzShardBlobUnmarshal$$' -fuzztime=10s ./internal/testbench

# HTTP service smoke: boot mcserved on an ephemeral port and run one
# small campaign through its own API (list, submit, poll, result).
serve-smoke:
	$(GO) run ./cmd/mcserved -smoke

# Distributed-fabric smoke: coordinator + two in-process HTTP workers
# run a sharded yield campaign with one deliberately dropped lease; the
# merged result must be bit-identical to the single-node run and the
# dropped shard must be re-leased after its TTL.
fabric-smoke:
	$(GO) run ./cmd/mcserved -fabric-smoke

# Load gate: replay the deterministic mixed workload through an
# in-process mcserved, write the throughput/latency report, and fail on
# a regression against the checked-in baseline (throughput floor 1/4x,
# latency quantile ceiling 4x — wide enough for machine variation, tight
# enough to catch a blocking instrument or accidental O(n^2) route; see
# cmd/mcload). LOAD_BASELINE.json regenerates with
# `go run ./cmd/mcload -baseline LOAD_BASELINE.json -update-baseline`.
load:
	$(GO) run ./cmd/mcload -jobs 40 -concurrency 4 -seed 1 \
		-baseline LOAD_BASELINE.json -report load_report.json

# Short load profile for the CI gate: same workload, fewer jobs.
load-smoke:
	$(GO) run ./cmd/mcload -jobs 12 -concurrency 4 -seed 1 \
		-baseline LOAD_BASELINE.json -report load_report.json
