package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

// TestBatchedEnginePinnedSpeedup pins the batched signature engine's
// performance contract, in the style of the SPICE transient fast-path
// pin (BenchmarkTransientTowThomasLinear vs the Newton baseline): the
// batched SignatureCapture and AveragedNDF paths must be at least 5×
// faster than the retained scalar baseline on the Tow-Thomas default
// system. Measured headroom is ~10×, so the pin tolerates machine noise;
// it still takes the best of three rounds to stay robust on loaded CI.
// The companion bit-identity tests (core.TestBatched*, testbench
// Test*ScalarVsBatched) guarantee the speed never costs a single bit.
func TestBatchedEnginePinnedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing pin skipped in -short mode (race CI distorts timing)")
	}
	batched := core.Default()
	scalar := core.Default()
	scalar.Scalar = true
	cb, err := batched.Shifted(0.10)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := scalar.Shifted(0.10)
	if err != nil {
		t.Fatal(err)
	}
	scB, scS := core.NewTrialScratch(), core.NewTrialScratch()
	// Warm every cache (zone LUT, stimulus grids, golden signature)
	// outside the timed region.
	if _, err := batched.AveragedNDFScratch(cb, 0.005, rng.New(1), 1, scB); err != nil {
		t.Fatal(err)
	}
	if _, err := scalar.AveragedNDFScratch(cs, 0.005, rng.New(1), 1, scS); err != nil {
		t.Fatal(err)
	}

	// The measured ops report errors through opErr rather than t.Fatal:
	// testing.Benchmark runs its closure on a separate goroutine, where
	// t.Fatal must not be called.
	var opErr error
	speedup := func(name string, batchedOp, scalarOp func() error) {
		best := 0.0
		for round := 0; round < 3 && best < 5; round++ {
			rb := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N && opErr == nil; i++ {
					opErr = batchedOp()
				}
			})
			rs := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N && opErr == nil; i++ {
					opErr = scalarOp()
				}
			})
			if opErr != nil {
				t.Fatalf("%s: %v", name, opErr)
			}
			if ratio := float64(rs.NsPerOp()) / float64(rb.NsPerOp()); ratio > best {
				best = ratio
			}
		}
		t.Logf("%s: batched is %.1fx the scalar baseline", name, best)
		if best < 5 {
			t.Fatalf("%s: batched engine only %.2fx the scalar baseline, pinned at >= 5x", name, best)
		}
	}

	speedup("SignatureCapture",
		func() error {
			_, err := batched.CapturedSignatureScratch(cb, 0, nil, scB)
			return err
		},
		func() error {
			_, err := scalar.CapturedSignatureScratch(cs, 0, nil, scS)
			return err
		})

	srcB, srcS := rng.New(9), rng.New(9)
	speedup("AveragedNDF",
		func() error {
			_, err := batched.AveragedNDFScratch(cb, 0.005, srcB.Split(0), 4, scB)
			return err
		},
		func() error {
			_, err := scalar.AveragedNDFScratch(cs, 0.005, srcS.Split(0), 4, scS)
			return err
		})
}
