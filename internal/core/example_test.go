package core_test

import (
	"fmt"

	"repro/internal/core"
)

// The complete paper flow in five lines: build the reference system,
// calibrate the ±5% acceptance band, and test a +10% f0 CUT.
func ExampleSystem_Test() {
	sys := core.Default()
	decision, err := sys.CalibrateFromTolerance(0.05, 9)
	if err != nil {
		fmt.Println(err)
		return
	}
	cut, err := sys.Shifted(0.10)
	if err != nil {
		fmt.Println(err)
		return
	}
	result, err := sys.Test(cut, decision, 0, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("pass = %v\n", result.Pass)
	// Output:
	// pass = false
}

// One point of the Fig. 8 curve: the exact NDF of a deviated CUT.
func ExampleSystem_NDFOfShift() {
	sys := core.Default()
	v, err := sys.NDFOfShift(0.10)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("NDF(+10%%) = %.4f (paper: 0.1021)\n", v)
	// Output:
	// NDF(+10%) = 0.1261 (paper: 0.1021)
}
