package core

import (
	"math"
	"testing"

	"repro/internal/biquad"
	"repro/internal/monitor"
	"repro/internal/ndf"
	"repro/internal/rng"
	"repro/internal/signature"
	"repro/internal/wave"
)

func TestDefaultSystemBasics(t *testing.T) {
	s := Default()
	if math.Abs(s.Period()-200e-6) > 1e-12 {
		t.Fatalf("period = %v, want 200 µs", s.Period())
	}
	if s.Bank.Size() != 6 {
		t.Fatalf("bank size = %d, want 6", s.Bank.Size())
	}
}

func TestNewSystemValidation(t *testing.T) {
	s := Default()
	if _, err := NewSystem(nil, s.CUT, s.Bank, s.Capture); err == nil {
		t.Fatal("nil stimulus accepted")
	}
	if _, err := NewSystem(s.Stimulus, nil, s.Bank, s.Capture); err == nil {
		t.Fatal("nil CUT accepted")
	}
	if _, err := NewSystem(s.Stimulus, s.CUT, nil, s.Capture); err == nil {
		t.Fatal("nil bank accepted")
	}
	if _, err := NewSystem(s.Stimulus, s.CUT, s.Bank, signature.CaptureConfig{}); err == nil {
		t.Fatal("invalid capture accepted")
	}
	if _, err := NewSystem(s.Stimulus, s.CUT, s.Bank, s.Capture); err != nil {
		t.Fatalf("valid system rejected: %v", err)
	}
}

func TestGoldenSignatureCached(t *testing.T) {
	s := Default()
	a, err := s.GoldenSignature()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.GoldenSignature()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("golden signature not cached")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGoldenNDFIsZero(t *testing.T) {
	s := Default()
	v, err := s.NDFOfShift(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("NDF of golden vs golden = %v, want 0", v)
	}
}

func TestHeadlineNDFPlus10(t *testing.T) {
	s := Default()
	v, err := s.NDFOfShift(0.10)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: NDF = 0.1021 for the +10% shift. Our simulated substrate
	// must land in the same band.
	if v < 0.05 || v > 0.2 {
		t.Fatalf("NDF(+10%%) = %v, want ~0.1 (paper: 0.1021)", v)
	}
}

func TestSweepShape(t *testing.T) {
	s := Default()
	devs := []float64{-0.2, -0.1, -0.05, 0, 0.05, 0.1, 0.2}
	ndfs, err := s.SweepF0(devs)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 8 shape: zero at origin, increasing with |dev|, roughly
	// symmetric (within a factor 2 between ±|dev|).
	if ndfs[3] != 0 {
		t.Fatalf("NDF(0) = %v", ndfs[3])
	}
	for i := 0; i < 3; i++ {
		if ndfs[i] <= ndfs[i+1] && !(i == 2 && ndfs[i] <= ndfs[3]) {
			// left side must decrease toward 0
			if !(ndfs[i] > ndfs[i+1]) {
				t.Fatalf("left branch not decreasing: %v", ndfs)
			}
		}
	}
	for i := 4; i < len(ndfs)-1; i++ {
		if ndfs[i] >= ndfs[i+1] {
			t.Fatalf("right branch not increasing: %v", ndfs)
		}
	}
	for i := 0; i < 3; i++ {
		l, r := ndfs[2-i], ndfs[4+i]
		if l > 2.5*r || r > 2.5*l {
			t.Fatalf("asymmetry beyond paper's 'quite symmetric': %v vs %v", l, r)
		}
	}
}

func TestCapturedMatchesExactNoiseless(t *testing.T) {
	s := Default()
	cut, err := s.Shifted(0.10)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := s.ExactSignature(cut)
	if err != nil {
		t.Fatal(err)
	}
	capd, err := s.CapturedSignature(cut, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := s.GoldenSignature()
	ve, err := ndf.NDF(exact, g)
	if err != nil {
		t.Fatal(err)
	}
	vc, err := ndf.NDF(capd, g)
	if err != nil {
		t.Fatal(err)
	}
	// Clock quantization error bound: one tick per transition.
	if math.Abs(ve-vc) > 0.01 {
		t.Fatalf("captured NDF %v deviates from exact %v", vc, ve)
	}
}

func TestNoiseRaisesFloorButKeepsOrder(t *testing.T) {
	s := Default()
	sigma := 0.005 // 3σ = 0.015 V, the paper's noise experiment
	g, _ := s.GoldenSignature()
	nullSig, err := s.CapturedSignature(s.CUT, sigma, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	nullNDF, err := ndf.NDF(nullSig, g)
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := s.Shifted(0.05)
	if err != nil {
		t.Fatal(err)
	}
	devSig, err := s.CapturedSignature(shifted, sigma, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	devNDF, err := ndf.NDF(devSig, g)
	if err != nil {
		t.Fatal(err)
	}
	if nullNDF <= 0 {
		t.Fatal("noise should produce a nonzero NDF floor")
	}
	if devNDF <= nullNDF {
		t.Fatalf("5%% deviation (NDF %v) not above noise floor (%v)", devNDF, nullNDF)
	}
}

func TestCalibrateAndTest(t *testing.T) {
	s := Default()
	dec, err := s.CalibrateFromTolerance(0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Threshold <= 0 {
		t.Fatalf("threshold = %v", dec.Threshold)
	}
	// A golden CUT passes; a +15% CUT fails.
	good, err := s.Test(s.CUT, dec, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !good.Pass {
		t.Fatalf("golden CUT rejected: NDF %v vs threshold %v", good.NDF, dec.Threshold)
	}
	shifted, err := s.Shifted(0.15)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := s.Test(shifted, dec, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Pass {
		t.Fatalf("+15%% CUT accepted: NDF %v vs threshold %v", bad.NDF, dec.Threshold)
	}
}

func TestLissajousAccessor(t *testing.T) {
	s := Default()
	c, err := s.Lissajous(s.CUT)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.CommonPeriod()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-s.Period()) > 1e-12 {
		t.Fatalf("curve period %v != system period %v", p, s.Period())
	}
	if _, err := s.Deviated(Deviation{F0Shift: -1}); err == nil {
		t.Fatal("invalid deviation accepted")
	}
}

func TestCustomBankSystem(t *testing.T) {
	// A one-monitor bank still works end to end.
	s := Default()
	single := monitor.NewBank(monitor.MustAnalytic(monitor.TableI()[2]))
	sys, err := NewSystem(s.Stimulus, s.CUT, single, s.Capture)
	if err != nil {
		t.Fatal(err)
	}
	v, err := sys.NDFOfShift(0.10)
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.NDFOfShift(0.10)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 || v >= full {
		t.Fatalf("single-monitor NDF %v should be positive and below full bank %v", v, full)
	}
}

func TestStimulusWithinRails(t *testing.T) {
	s := Default()
	lo, hi := s.Stimulus.PeakToPeak()
	if lo < 0 || hi > 1 {
		t.Fatalf("stimulus range [%v,%v] leaves the monitor's unit square", lo, hi)
	}
	f, err := biquad.New(s.Golden())
	if err != nil {
		t.Fatal(err)
	}
	out := f.SteadyState(s.Stimulus)
	rec := wave.SamplePeriods(out, 1, 4000)
	for _, v := range rec.V {
		if v < 0 || v > 1 {
			t.Fatalf("filter output %v leaves unit square", v)
		}
	}
}
