package core

import (
	"context"
	"testing"

	"repro/internal/campaign"
	"repro/internal/monitor"
	"repro/internal/rng"
	"repro/internal/signature"
)

func equalSigs(t *testing.T, name string, a, b *signature.Signature) {
	t.Helper()
	if a.Period != b.Period {
		t.Fatalf("%s: period %v vs %v", name, a.Period, b.Period)
	}
	if len(a.Entries) != len(b.Entries) {
		t.Fatalf("%s: %d entries vs %d", name, len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			t.Fatalf("%s: entry %d %v vs %v", name, i, a.Entries[i], b.Entries[i])
		}
	}
}

// scalarTwin returns a fresh default system running the retained scalar
// pipeline — the reference the batched engine must match bit for bit.
func scalarTwin() *System {
	s := Default()
	s.Scalar = true
	return s
}

// TestBatchedExactSignatureBitIdentical: the LUT-classified scan grid
// plus bisection must reproduce the scalar exact extraction, for the
// golden CUT and for shifted ones, on both observations.
func TestBatchedExactSignatureBitIdentical(t *testing.T) {
	for _, obs := range []Observation{ObserveLP, ObserveBP} {
		batched, scalar := Default(), scalarTwin()
		batched.Observe, scalar.Observe = obs, obs
		for _, shift := range []float64{0, 0.10, -0.07} {
			cb, err := batched.Shifted(shift)
			if err != nil {
				t.Fatal(err)
			}
			cs, err := scalar.Shifted(shift)
			if err != nil {
				t.Fatal(err)
			}
			sb, err := batched.ExactSignature(cb)
			if err != nil {
				t.Fatal(err)
			}
			ss, err := scalar.ExactSignature(cs)
			if err != nil {
				t.Fatal(err)
			}
			equalSigs(t, obs.String(), sb, ss)
		}
	}
}

// TestBatchedCaptureBitIdentical: noiseless and noisy clocked captures
// must match the scalar pipeline exactly — same RNG substream, same
// draws, same codes, same entries.
func TestBatchedCaptureBitIdentical(t *testing.T) {
	batched, scalar := Default(), scalarTwin()
	cb, err := batched.Shifted(0.10)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := scalar.Shifted(0.10)
	if err != nil {
		t.Fatal(err)
	}
	// Noiseless.
	sb, err := batched.CapturedSignature(cb, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := scalar.CapturedSignature(cs, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	equalSigs(t, "noiseless", sb, ss)
	// Noisy, same substream on both paths.
	for seed := uint64(1); seed <= 4; seed++ {
		sb, err := batched.CapturedSignature(cb, 0.005, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		ss, err := scalar.CapturedSignature(cs, 0.005, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		equalSigs(t, "noisy", sb, ss)
	}
	// Scratch-backed capture equals the one-shot capture.
	sc := NewTrialScratch()
	for seed := uint64(1); seed <= 3; seed++ {
		warm, err := batched.CapturedSignatureScratch(cb, 0.005, rng.New(seed), sc)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := batched.CapturedSignature(cb, 0.005, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		equalSigs(t, "scratch", warm, fresh)
	}
}

// TestClassifyGridMatchesScalarClassifier: the exported batch classifier
// must reproduce the scalar closure's codes, noise draws included.
func TestClassifyGridMatchesScalarClassifier(t *testing.T) {
	sys := Default()
	cut, err := sys.Shifted(0.05)
	if err != nil {
		t.Fatal(err)
	}
	ts := make([]float64, 700)
	for i := range ts {
		ts[i] = sys.Period() * float64(i) / float64(len(ts))
	}
	for _, sigma := range []float64{0, 0.005} {
		codes := make([]monitor.Code, len(ts))
		if err := sys.ClassifyGrid(cut, sigma, rng.New(42), ts, codes); err != nil {
			t.Fatal(err)
		}
		cls, err := sys.Classifier(cut, sigma, rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		for i, tt := range ts {
			if want := cls(tt); codes[i] != want {
				t.Fatalf("sigma %g sample %d: batch %06b, scalar %06b", sigma, i, codes[i], want)
			}
		}
	}
}

// TestBatchedAveragedNDFBitIdentical: the averaged campaign measurement
// must agree with the scalar engine at any worker count, and the
// scratch-carrying serial form must agree with both.
func TestBatchedAveragedNDFBitIdentical(t *testing.T) {
	batched, scalar := Default(), scalarTwin()
	cb, err := batched.Shifted(0.02)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := scalar.Shifted(0.02)
	if err != nil {
		t.Fatal(err)
	}
	const periods = 4
	want, err := scalar.AveragedNDFCtx(context.Background(), cs, 0.005, rng.New(9), periods, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 7} {
		got, err := batched.AveragedNDFCtx(context.Background(), cb, 0.005, rng.New(9), periods, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers %d: batched %v, scalar %v", workers, got, want)
		}
	}
	got, err := batched.AveragedNDFScratch(cb, 0.005, rng.New(9), periods, NewTrialScratch())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("scratch form: %v, want %v", got, want)
	}
}

// TestBatchedSweepF0BitIdentical: the Fig. 8 sweep must be identical on
// both engines and at any worker count.
func TestBatchedSweepF0BitIdentical(t *testing.T) {
	batched, scalar := Default(), scalarTwin()
	shifts := []float64{-0.15, -0.05, 0, 0.03, 0.12}
	want, err := scalar.SweepF0Ctx(context.Background(), shifts, campaign.Engine{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		got, err := batched.SweepF0Ctx(context.Background(), shifts, campaign.Engine{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers %d, shift %g: batched %v, scalar %v",
					workers, shifts[i], got[i], want[i])
			}
		}
	}
}

// TestTrialScratchIsolation: a scratch reused across different CUTs must
// never leak one trial's state into the next.
func TestTrialScratchIsolation(t *testing.T) {
	sys := Default()
	sc := NewTrialScratch()
	shifts := []float64{0.10, -0.08, 0.01, 0.10}
	for _, shift := range shifts {
		cut, err := sys.Shifted(shift)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := sys.CapturedSignatureScratch(cut, 0, nil, sc)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := sys.CapturedSignature(cut, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		equalSigs(t, "scratch isolation", warm, fresh)
	}
}
