package core

import (
	"math"
	"testing"
)

func bpSystem(t *testing.T) *System {
	t.Helper()
	s := Default()
	sys, err := NewSystem(s.Stimulus, s.CUT, s.Bank, s.Capture)
	if err != nil {
		t.Fatal(err)
	}
	sys.Observe = ObserveBP
	return sys
}

func TestObservationString(t *testing.T) {
	if ObserveLP.String() != "low-pass" || ObserveBP.String() != "band-pass" {
		t.Fatal("Observation.String wrong")
	}
}

func TestBPObservationStaysInSquare(t *testing.T) {
	sys := bpSystem(t)
	c, err := sys.Lissajous(sys.CUT)
	if err != nil {
		t.Fatal(err)
	}
	minX, maxX, minY, maxY, err := c.BoundingBox(4000)
	if err != nil {
		t.Fatal(err)
	}
	if minX < 0 || maxX > 1 || minY < 0 || maxY > 1 {
		t.Fatalf("BP Lissajous leaves unit square: [%v,%v]x[%v,%v]", minX, maxX, minY, maxY)
	}
	// Re-bias: the BP output is centred at 0.5.
	if mid := (minY + maxY) / 2; math.Abs(mid-0.5) > 0.1 {
		t.Fatalf("BP output mid-level = %v, want ~0.5", mid)
	}
}

func TestBPGoldenSignatureDiffersFromLP(t *testing.T) {
	lp := Default()
	bp := bpSystem(t)
	glp, err := lp.GoldenSignature()
	if err != nil {
		t.Fatal(err)
	}
	gbp, err := bp.GoldenSignature()
	if err != nil {
		t.Fatal(err)
	}
	if glp.NumZones() == gbp.NumZones() {
		same := true
		for i := range glp.Entries {
			if glp.Entries[i].Code != gbp.Entries[i].Code {
				same = false
				break
			}
		}
		if same {
			t.Fatal("BP and LP observations produced identical signatures")
		}
	}
	if err := gbp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBPSeesQDeviation(t *testing.T) {
	bp := bpSystem(t)
	v, err := bp.NDFOfDeviation(Deviation{QShift: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Fatal("BP observation blind to +20% Q")
	}
}

func TestNDFOfDeviationMatchesShiftHelper(t *testing.T) {
	s := Default()
	a, err := s.NDFOfShift(0.07)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.NDFOfDeviation(Deviation{F0Shift: 0.07})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("NDFOfShift %v != NDFOfDeviation %v", a, b)
	}
}

func TestEffectiveNoiseSigma(t *testing.T) {
	eff := EffectiveNoiseSigma(0.005)
	want := 0.005 * math.Sqrt(MonitorBandHz/NoiseBandHz)
	if math.Abs(eff-want) > 1e-15 {
		t.Fatalf("EffectiveNoiseSigma = %v, want %v", eff, want)
	}
	if eff >= 0.005 {
		t.Fatal("band-limiting must attenuate")
	}
}

func TestAveragedNDFReducesVariance(t *testing.T) {
	// Not a statistical test of variance (slow); just the contract:
	// periods < 1 is clamped and the result is finite and positive
	// under noise.
	s := Default()
	v, err := s.AveragedNDF(s.CUT, 0.005, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With a nil noise stream sigma is ignored -> exact capture of the
	// golden vs golden exact signature: NDF is the pure quantization
	// residue, small but possibly nonzero.
	if v < 0 || v > 0.02 {
		t.Fatalf("noiseless averaged NDF = %v", v)
	}
}
