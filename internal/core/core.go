// Package core is the public face of the reproduction: it wires the
// paper's full test path — multitone stimulus, Biquad CUT, X-Y zoning
// monitor bank, asynchronous signature capture, and NDF-based decision —
// into one System that examples, tools and benchmarks share.
//
// The circuit under test is pluggable: System is written against the
// CUT backend interface, with two implementations — the closed-form
// analytic Tow-Thomas model (biquad.AnalyticCUT) and the SPICE-transient
// netlist engine (biquad.SpiceCUT) — so every campaign, sweep and CLI
// runs on either.
//
// The zero-configuration entry point is Default(), which reproduces the
// paper's experiment: a {5, 10, 15} kHz multitone around 0.5 V into a
// low-pass Biquad (f0 = 10 kHz, Q = 0.9), observed by the six Table I
// monitors, captured with a 10 MHz clock and 16-bit counter over the
// 200 µs Lissajous period. DefaultSpice() is the same system on the
// SPICE backend.
package core

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/biquad"
	"repro/internal/campaign"
	"repro/internal/lissajous"
	"repro/internal/monitor"
	"repro/internal/ndf"
	"repro/internal/rng"
	"repro/internal/signature"
	"repro/internal/wave"
)

// CUT is the pluggable circuit-under-test backend every campaign is
// parameterized over; see biquad.CUT for the contract and the two
// shipped implementations (analytic model and SPICE netlist engine).
type CUT = biquad.CUT

// Deviation re-exports the perturbation description campaigns hand to
// CUT.Perturb.
type Deviation = biquad.Deviation

// Observation selects which CUT output the monitor composes with the
// stimulus. The paper observes the low-pass output; the band-pass
// observation is the ref [14]-style generalization this repository adds
// for Q verification.
type Observation int

// Observation modes.
const (
	// ObserveLP composes x = stimulus, y = low-pass output (the paper).
	ObserveLP Observation = iota
	// ObserveBP composes x = stimulus, y = band-pass output re-biased to
	// mid-rail (Q-verification extension).
	ObserveBP
)

// String implements fmt.Stringer.
func (o Observation) String() string {
	if o == ObserveBP {
		return "band-pass"
	}
	return "low-pass"
}

// output maps the observation onto the CUT backend's output selector.
func (o Observation) output() biquad.Output {
	if o == ObserveBP {
		return biquad.OutputBP
	}
	return biquad.OutputLP
}

// System bundles the test setup. Create with Default, DefaultSpice or
// NewSystem and treat as immutable afterwards; methods are safe for
// concurrent use.
type System struct {
	Stimulus *wave.Multitone
	// CUT is the golden circuit-under-test backend; deviated and faulty
	// devices are derived from it with Deviated/Shifted (CUT.Perturb).
	CUT     CUT
	Bank    *monitor.Bank
	Capture signature.CaptureConfig
	// ScanN is the scan resolution for exact signature extraction
	// (samples per period before bisection refinement).
	ScanN int
	// Observe selects the monitored CUT output (default: low-pass).
	// Set before first use; the golden signature is cached per system.
	Observe Observation
	// Scalar disables the batched tick-grid signature engine and runs
	// the retained per-tick scalar pipeline — the reference baseline the
	// batched engine is benchmarked and regression-tested against.
	// Results are bit-identical either way (the zone LUT only answers
	// where it can prove the scalar result). Set before first use.
	Scalar bool

	goldenOnce sync.Once
	goldenSig  *signature.Signature
	goldenErr  error

	// Cached sample grids of the (immutable) stimulus: the capture's
	// master-clock tick grid and the exact-extraction scan grid. Built
	// once per system and shared read-only across trials and workers.
	tickGrid gridCache
	scanGrid gridCache
}

// gridCache lazily holds a time grid and the stimulus samples on it.
type gridCache struct {
	once   sync.Once
	ts, xs []float64
	err    error
}

// ticks returns the master-clock tick grid (t_k = k/ClockHz over one
// period) and the stimulus samples on it, computing both once.
func (s *System) ticks() (ts, xs []float64, err error) {
	g := &s.tickGrid
	g.once.Do(func() {
		n, err := s.Capture.Ticks(s.Period())
		if err != nil {
			g.err = err
			return
		}
		tick := 1 / s.Capture.ClockHz
		g.ts = make([]float64, n)
		for k := range g.ts {
			g.ts[k] = float64(k) * tick
		}
		g.xs = make([]float64, n)
		wave.EvalInto(s.Stimulus, g.ts, g.xs)
	})
	return g.ts, g.xs, g.err
}

// scans returns the exact-extraction scan grid (t_i = T·i/ScanN,
// i = 0 … ScanN) and the stimulus samples on it, computing both once.
func (s *System) scans() (ts, xs []float64, err error) {
	g := &s.scanGrid
	g.once.Do(func() {
		if s.ScanN < 2 {
			g.err = fmt.Errorf("signature: need at least 2 scan points")
			return
		}
		T := s.Period()
		g.ts = make([]float64, s.ScanN+1)
		for i := range g.ts {
			g.ts[i] = T * float64(i) / float64(s.ScanN)
		}
		g.xs = make([]float64, len(g.ts))
		wave.EvalInto(s.Stimulus, g.ts, g.xs)
	})
	return g.ts, g.xs, g.err
}

// TrialScratch bundles the per-worker reusable buffers of the batched
// signature engine: perturbed sample grids plus the capture scratch
// (raw entries, canonical entries, per-tick codes). One scratch per
// campaign worker; not safe for concurrent use.
type TrialScratch struct {
	capture signature.CaptureBuffer
	xs, ys  []float64
	// spice carries the SPICE backend's per-worker trial state: a
	// compiled circuit template plus the transient sample buffer, so a
	// worker's trials skip netlist elaboration and solver setup entirely.
	// Backends without a template path never touch it.
	spice biquad.SpiceTrialScratch
}

// NewTrialScratch returns an empty scratch; buffers grow on first use.
func NewTrialScratch() *TrialScratch { return &TrialScratch{} }

// growXs returns the x-sample scratch resized to n (contents undefined).
func (sc *TrialScratch) growXs(n int) []float64 {
	if cap(sc.xs) < n {
		sc.xs = make([]float64, n)
	}
	sc.xs = sc.xs[:n]
	return sc.xs
}

// growYs returns the y-sample scratch resized to n (contents undefined).
func (sc *TrialScratch) growYs(n int) []float64 {
	if cap(sc.ys) < n {
		sc.ys = make([]float64, n)
	}
	sc.ys = sc.ys[:n]
	return sc.ys
}

// goldenParams is the paper's reference CUT.
var goldenParams = biquad.Params{F0: 10e3, Q: 0.9, Gain: 1}

// defaultStimulus builds the paper's multitone.
func defaultStimulus() *wave.Multitone {
	stim, err := wave.NewMultitone(0.5, 5e3, []int{1, 2, 3},
		[]float64{0.22, 0.13, 0.08}, []float64{0, 0, 0})
	if err != nil {
		panic(err) // static construction cannot fail
	}
	return stim
}

// Default returns the paper's reference system on the analytic backend.
func Default() *System {
	cut, err := biquad.NewAnalyticCUT(goldenParams)
	if err != nil {
		panic(err) // static construction cannot fail
	}
	return &System{
		Stimulus: defaultStimulus(),
		CUT:      cut,
		Bank:     monitor.NewAnalyticTableI(),
		Capture:  signature.DefaultCapture(),
		ScanN:    8192,
	}
}

// DefaultSpice returns the paper's reference system with the golden CUT
// realized as a Tow-Thomas netlist simulated by the SPICE engine.
func DefaultSpice() (*System, error) {
	cut, err := biquad.NewSpiceCUTFromParams(goldenParams, biquad.SpiceConfig{})
	if err != nil {
		return nil, err
	}
	s := Default()
	s.CUT = cut
	return s, nil
}

// Backends lists the registered CUT backend names, in the order the
// -backend flags and campaign specs document them. The empty spec value
// resolves to the first entry.
func Backends() []string { return []string{"analytic", "spice"} }

// SystemForBackend returns the paper's reference system on the named
// CUT backend ("analytic" or "spice") — the shared resolver behind the
// CLIs' -backend flags and the campaign registry's spec field.
func SystemForBackend(name string) (*System, error) {
	switch name {
	case "analytic":
		return Default(), nil
	case "spice":
		return DefaultSpice()
	default:
		return nil, fmt.Errorf("core: unknown CUT backend %q (want %s)", name, strings.Join(Backends(), " or "))
	}
}

// NewSystem builds a custom system, validating the pieces.
func NewSystem(stim *wave.Multitone, cut CUT, bank *monitor.Bank, cap signature.CaptureConfig) (*System, error) {
	if stim == nil || stim.Period() <= 0 {
		return nil, fmt.Errorf("core: stimulus must be a periodic multitone")
	}
	if cut == nil {
		return nil, fmt.Errorf("core: CUT backend must not be nil")
	}
	if err := cut.Params().Validate(); err != nil {
		return nil, err
	}
	if bank == nil || bank.Size() == 0 {
		return nil, fmt.Errorf("core: monitor bank must not be empty")
	}
	if err := cap.Validate(); err != nil {
		return nil, err
	}
	return &System{Stimulus: stim, CUT: cut, Bank: bank, Capture: cap, ScanN: 8192}, nil
}

// Golden returns the behavioural parameters of the golden CUT.
func (s *System) Golden() biquad.Params { return s.CUT.Params() }

// Deviated returns the golden CUT with the given deviation applied.
func (s *System) Deviated(d Deviation) (CUT, error) { return s.CUT.Perturb(d) }

// Shifted returns the golden CUT with a fractional f0 shift — the
// deviation class the paper sweeps.
func (s *System) Shifted(shift float64) (CUT, error) {
	return s.CUT.Perturb(Deviation{F0Shift: shift})
}

// Period returns the Lissajous period T.
func (s *System) Period() float64 { return s.Stimulus.Period() }

// output resolves the observed output waveform of a CUT.
func (s *System) output(c CUT) (wave.Waveform, error) {
	return c.Output(s.Stimulus, s.Observe.output())
}

// trialOutputter is the optional CUT capability behind the batched trial
// engine: backends that can serve an observation through a per-worker
// trial scratch (the SPICE backend's compiled circuit template) run at
// template speed inside campaign loops, with bit-identical samples.
type trialOutputter interface {
	OutputScratch(stim *wave.Multitone, out biquad.Output, sc *biquad.SpiceTrialScratch) (wave.Waveform, error)
}

// outputScratch is output with an optional per-worker trial scratch.
// The returned waveform may alias the scratch's buffers and is valid
// only until the scratch's next trial — exactly the lifetime the
// signature paths need (they consume the waveform before returning).
func (s *System) outputScratch(c CUT, sc *TrialScratch) (wave.Waveform, error) {
	if sc != nil {
		if to, ok := c.(trialOutputter); ok {
			return to.OutputScratch(s.Stimulus, s.Observe.output(), &sc.spice)
		}
	}
	return s.output(c)
}

// Lissajous returns the X-Y composition for a CUT (x = stimulus,
// y = observed output).
func (s *System) Lissajous(c CUT) (lissajous.Curve, error) {
	out, err := s.output(c)
	if err != nil {
		return lissajous.Curve{}, err
	}
	return lissajous.New(s.Stimulus, out)
}

// Band-limiting of the measurement noise. The paper's experiment adds
// "high frequency white noise ... with a 3σ spread of 0.015 V" to the
// signals; noise above the monitor's input bandwidth is averaged away by
// the differential pair, so the capture only sees the in-band fraction.
// With the noise spread specified over NoiseBandHz and the monitor
// front-end passing MonitorBandHz, the effective per-sample sigma is
// sigma·√(MonitorBandHz/NoiseBandHz). DESIGN.md records this
// substitution; the noise_detect example reproduces the paper's
// "deviations as low as 1% are detected" with these defaults.
const (
	// NoiseBandHz is the bandwidth over which the injected noise's sigma
	// is specified (it is "high frequency" relative to the monitor).
	NoiseBandHz = 100e6
	// MonitorBandHz is the monitor front-end bandwidth.
	MonitorBandHz = 10e6
)

// EffectiveNoiseSigma returns the in-band noise the capture sees for a
// given wideband noise spread.
func EffectiveNoiseSigma(sigma float64) float64 {
	return sigma * math.Sqrt(MonitorBandHz/NoiseBandHz)
}

// Classifier returns the instantaneous zone-code function for a CUT.
// A non-nil noise stream adds band-limited Gaussian measurement noise to
// both observed signals at every evaluation; sigma is the wideband spread
// (the paper's 3σ = 0.015 V experiment uses sigma = 0.005) and the
// monitor sees EffectiveNoiseSigma(sigma) of it.
func (s *System) Classifier(c CUT, sigma float64, noise *rng.Stream) (signature.Classifier, error) {
	out, err := s.output(c)
	if err != nil {
		return nil, err
	}
	if sigma <= 0 || noise == nil {
		return func(t float64) monitor.Code {
			return s.Bank.Classify(s.Stimulus.Eval(t), out.Eval(t))
		}, nil
	}
	eff := EffectiveNoiseSigma(sigma)
	return func(t float64) monitor.Code {
		x := s.Stimulus.Eval(t) + noise.Gauss(0, eff)
		y := out.Eval(t) + noise.Gauss(0, eff)
		return s.Bank.Classify(x, y)
	}, nil
}

// ClassifyGrid is the batch variant of Classifier: it fills codes[i]
// with the zone code of CUT c at time ts[i]. Outputs are evaluated
// through the waveform batch API and codes come from the bank's
// certified zone LUT, but the result is bit-identical to calling the
// scalar Classifier at the same times in order — measurement noise
// (sigma > 0 with a non-nil stream) is drawn in sample order, x before
// y, exactly as the scalar closure draws it.
func (s *System) ClassifyGrid(c CUT, sigma float64, noise *rng.Stream, ts []float64, codes []monitor.Code) error {
	if len(ts) != len(codes) {
		return fmt.Errorf("core: ClassifyGrid needs len(ts) == len(codes)")
	}
	out, err := s.output(c)
	if err != nil {
		return err
	}
	sc := NewTrialScratch()
	xs := sc.growXs(len(ts))
	wave.EvalInto(s.Stimulus, ts, xs)
	ys := sc.growYs(len(ts))
	wave.EvalInto(out, ts, ys)
	if sigma > 0 && noise != nil {
		eff := EffectiveNoiseSigma(sigma)
		for k := range xs {
			xs[k] += noise.Gauss(0, eff)
			ys[k] += noise.Gauss(0, eff)
		}
	}
	s.Bank.ClassifyBatch(xs, ys, codes)
	return nil
}

// ExactSignature computes the ideal (unquantized, noiseless) signature
// of a CUT.
func (s *System) ExactSignature(c CUT) (*signature.Signature, error) {
	return s.exactSignature(c, nil)
}

// exactSignature is ExactSignature with optional per-worker scratch. The
// batched path classifies the scan grid through the zone LUT and only
// bisects the bracketed transitions with the exact classifier, so the
// result is bit-identical to the scalar scan.
func (s *System) exactSignature(c CUT, sc *TrialScratch) (*signature.Signature, error) {
	if s.Scalar {
		out, err := s.output(c)
		if err != nil {
			return nil, err
		}
		cls := func(t float64) monitor.Code {
			return s.Bank.Classify(s.Stimulus.Eval(t), out.Eval(t))
		}
		return signature.Exact(cls, s.Period(), s.ScanN, 0)
	}
	out, err := s.outputScratch(c, sc)
	if err != nil {
		return nil, err
	}
	cls := func(t float64) monitor.Code {
		return s.Bank.Classify(s.Stimulus.Eval(t), out.Eval(t))
	}
	ts, xs, err := s.scans()
	if err != nil {
		return nil, err
	}
	if sc == nil {
		sc = NewTrialScratch()
	}
	ys := sc.growYs(len(ts))
	wave.EvalInto(out, ts, ys)
	codes := sc.capture.Codes(len(ts))
	s.Bank.ClassifyBatch(xs, ys, codes)
	return signature.ExactFromCodes(codes, cls, s.Period(), 0)
}

// CapturedSignature runs the Fig. 5 clocked capture for a CUT,
// optionally with measurement noise. The caller owns the result.
func (s *System) CapturedSignature(c CUT, sigma float64, noise *rng.Stream) (*signature.Signature, error) {
	return s.capturedSignature(c, sigma, noise, nil)
}

// CapturedSignatureScratch is CapturedSignature with caller-owned
// per-worker scratch for Monte-Carlo trial loops. The returned signature
// is backed by the scratch and is only valid until the scratch's next
// capture — consume it (e.g. compute its NDF) before the next trial.
func (s *System) CapturedSignatureScratch(c CUT, sigma float64, noise *rng.Stream, sc *TrialScratch) (*signature.Signature, error) {
	return s.capturedSignature(c, sigma, noise, sc)
}

// capturedSignature implements the capture paths: the batched tick-grid
// engine (cached stimulus grid, batch output evaluation, zone-LUT
// classification, codes-slice capture) or — when s.Scalar is set — the
// per-tick scalar pipeline. Both produce bit-identical signatures; a nil
// sc degrades to one-shot scratch with a caller-owned result.
func (s *System) capturedSignature(c CUT, sigma float64, noise *rng.Stream, sc *TrialScratch) (*signature.Signature, error) {
	if s.Scalar {
		cls, err := s.Classifier(c, sigma, noise)
		if err != nil {
			return nil, err
		}
		var buf *signature.CaptureBuffer
		if sc != nil {
			buf = &sc.capture
		}
		return signature.CaptureCanonical(cls, s.Period(), s.Capture, buf)
	}
	out, err := s.outputScratch(c, sc)
	if err != nil {
		return nil, err
	}
	ts, xs, err := s.ticks()
	if err != nil {
		return nil, err
	}
	var buf *signature.CaptureBuffer
	if sc == nil {
		sc = NewTrialScratch()
	} else {
		buf = &sc.capture
	}
	n := len(ts)
	ys := sc.growYs(n)
	wave.EvalInto(out, ts, ys)
	xv := xs
	if sigma > 0 && noise != nil {
		eff := EffectiveNoiseSigma(sigma)
		xv = sc.growXs(n)
		for k := 0; k < n; k++ {
			xv[k] = xs[k] + noise.Gauss(0, eff)
			ys[k] += noise.Gauss(0, eff)
		}
	}
	codes := sc.capture.Codes(n)
	s.Bank.ClassifyBatch(xv, ys, codes)
	return signature.CaptureCanonicalCodes(codes, s.Period(), s.Capture, buf)
}

// GoldenSignature returns the (cached) exact signature of the golden CUT.
func (s *System) GoldenSignature() (*signature.Signature, error) {
	s.goldenOnce.Do(func() {
		s.goldenSig, s.goldenErr = s.ExactSignature(s.CUT)
	})
	return s.goldenSig, s.goldenErr
}

// NDFOf returns the exact NDF of an arbitrary CUT against the golden
// signature — the general entry point the Q-verification and
// component-fault experiments use.
func (s *System) NDFOf(c CUT) (float64, error) {
	return s.NDFOfScratch(c, nil)
}

// NDFOfScratch is NDFOf with per-worker scratch for campaign fan-out
// (fault tables, yield populations); a nil scratch degrades to one-shot
// buffers. Scratch never affects the result.
func (s *System) NDFOfScratch(c CUT, sc *TrialScratch) (float64, error) {
	g, err := s.GoldenSignature()
	if err != nil {
		return 0, err
	}
	obs, err := s.exactSignature(c, sc)
	if err != nil {
		return 0, err
	}
	return ndf.NDF(obs, g)
}

// NDFOfDeviation perturbs the golden CUT and returns its exact NDF.
func (s *System) NDFOfDeviation(d Deviation) (float64, error) {
	c, err := s.Deviated(d)
	if err != nil {
		return 0, err
	}
	return s.NDFOf(c)
}

// NDFOfShift returns the exact NDF of a CUT whose natural frequency is
// shifted by the given fraction — one point of the Fig. 8 curve.
func (s *System) NDFOfShift(shift float64) (float64, error) {
	return s.NDFOfDeviation(Deviation{F0Shift: shift})
}

// legacyCtx is the single audited root context behind the ctx-less
// legacy wrappers (SweepF0, AveragedNDF, CalibrateFromTolerance, …):
// they run to completion by design. New code accepts a caller context
// and uses the Ctx variants — mclint's ctxflow analyzer flags any other
// Background context in the library.
func legacyCtx() context.Context {
	return context.Background() //mclint:ctxflow single audited root for the ctx-less legacy wrappers; new code accepts a caller ctx
}

// SweepF0 evaluates NDFOfShift over a deviation grid (the Fig. 8 sweep)
// in parallel across all CPUs; the output order matches shifts and the
// result is deterministic.
func (s *System) SweepF0(shifts []float64) ([]float64, error) {
	return s.SweepF0Ctx(legacyCtx(), shifts, campaign.Engine{})
}

// SweepF0Ctx is SweepF0 under an explicit context and campaign engine
// (worker bound, progress). Cancelling ctx aborts the sweep within one
// trial's latency; the result is identical at any worker count.
func (s *System) SweepF0Ctx(ctx context.Context, shifts []float64, eng campaign.Engine) ([]float64, error) {
	// The golden signature must be materialized before fan-out so the
	// sync.Once does not serialize the workers.
	if _, err := s.GoldenSignature(); err != nil {
		return nil, err
	}
	return campaign.RunScratch(ctx, eng, len(shifts),
		NewTrialScratch,
		func(i int, sc *TrialScratch) (float64, error) {
			c, err := s.Shifted(shifts[i])
			if err != nil {
				return 0, fmt.Errorf("core: sweep point %g: %w", shifts[i], err)
			}
			v, err := s.NDFOfScratch(c, sc)
			if err != nil {
				return 0, fmt.Errorf("core: sweep point %g: %w", shifts[i], err)
			}
			return v, nil
		})
}

// AveragedNDF captures the CUT over several consecutive Lissajous
// periods and averages the per-period NDF against the golden signature.
// Under measurement noise the per-period NDF carries a noise-floor mean
// plus sampling variance; averaging K periods shrinks the variance by
// ~1/√K, which is how a production tester makes small deviations (the
// paper's 1% claim) separable from the floor without changing hardware —
// it simply observes the CUT longer.
// Each period is an independent capture: period k draws its noise from
// the substream noise.Split(k), so the periods fan out across the
// campaign pool and the average is deterministic at any worker count.
func (s *System) AveragedNDF(c CUT, sigma float64, noise *rng.Stream, periods int) (float64, error) {
	return s.AveragedNDFCtx(legacyCtx(), c, sigma, noise, periods, 0)
}

// AveragedNDFCtx is AveragedNDF under an explicit context and worker-pool
// bound (0 = all CPUs). Campaign runners that already fan trials out pass
// 1 so the outer pool alone owns the parallelism (or, better, carry a
// per-worker scratch and call AveragedNDFScratch).
func (s *System) AveragedNDFCtx(ctx context.Context, c CUT, sigma float64, noise *rng.Stream, periods, workers int) (float64, error) {
	return s.averagedNDF(ctx, c, sigma, noise, periods, workers, nil)
}

// AveragedNDFScratch is AveragedNDF running the periods serially with
// caller-owned scratch — the form campaign runners use inside their own
// worker pools, so every trial a worker executes reuses one set of
// buffers. Scratch never affects the result.
func (s *System) AveragedNDFScratch(c CUT, sigma float64, noise *rng.Stream, periods int, sc *TrialScratch) (float64, error) {
	return s.averagedNDF(legacyCtx(), c, sigma, noise, periods, 1, sc)
}

// averagedNDF implements the AveragedNDF variants. In the batched engine
// the clean output tick samples are evaluated once per call and shared
// read-only by every period's capture (each period only adds its own
// noise draws on top), which is where most of the per-period work of the
// scalar pipeline went.
func (s *System) averagedNDF(ctx context.Context, c CUT, sigma float64, noise *rng.Stream, periods, workers int, sc *TrialScratch) (float64, error) {
	if periods < 1 {
		periods = 1
	}
	g, err := s.GoldenSignature()
	if err != nil {
		return 0, err
	}
	// Materialize the observed output once before fan-out: backends with
	// an expensive Output (the SPICE transient) compute it here instead
	// of inside every period's capture. With caller-owned scratch the
	// periods run serially on this worker, so the scratch-backed waveform
	// stays valid for all of them.
	out, err := s.outputScratch(c, sc)
	if err != nil {
		return 0, err
	}
	// Split advances the caller's stream — derive the per-period streams
	// serially before fan-out.
	streams := make([]*rng.Stream, periods)
	if noise != nil {
		for k := range streams {
			streams[k] = noise.Split(uint64(k))
		}
	}
	newScratch := NewTrialScratch
	if sc != nil {
		// Caller-owned scratch: the periods must run on one worker.
		workers = 1
		newScratch = func() *TrialScratch { return sc }
	}
	var trial func(k int, sc *TrialScratch) (float64, error)
	if s.Scalar {
		trial = func(k int, sc *TrialScratch) (float64, error) {
			obs, err := s.capturedSignature(c, sigma, streams[k], sc)
			if err != nil {
				return 0, err
			}
			return ndf.NDF(obs, g)
		}
	} else {
		ts, xs, err := s.ticks()
		if err != nil {
			return 0, err
		}
		ybase := make([]float64, len(ts))
		wave.EvalInto(out, ts, ybase)
		eff := EffectiveNoiseSigma(sigma)
		trial = func(k int, sc *TrialScratch) (float64, error) {
			xv, yv := xs, ybase
			if sigma > 0 && streams[k] != nil {
				src := streams[k]
				n := len(ts)
				xv, yv = sc.growXs(n), sc.growYs(n)
				for i := 0; i < n; i++ {
					xv[i] = xs[i] + src.Gauss(0, eff)
					yv[i] = ybase[i] + src.Gauss(0, eff)
				}
			}
			codes := sc.capture.Codes(len(xv))
			s.Bank.ClassifyBatch(xv, yv, codes)
			obs, err := signature.CaptureCanonicalCodes(codes, s.Period(), s.Capture, &sc.capture)
			if err != nil {
				return 0, err
			}
			return ndf.NDF(obs, g)
		}
	}
	vals, err := campaign.RunScratch(ctx, campaign.Engine{Workers: workers}, periods, newScratch, trial)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(periods), nil
}

// TestResult is the outcome of one production test.
type TestResult struct {
	NDF  float64
	Pass bool
}

// Test captures a CUT (with optional noise) and applies the decision.
func (s *System) Test(c CUT, dec ndf.Decision, sigma float64, noise *rng.Stream) (TestResult, error) {
	g, err := s.GoldenSignature()
	if err != nil {
		return TestResult{}, err
	}
	obs, err := s.CapturedSignature(c, sigma, noise)
	if err != nil {
		return TestResult{}, err
	}
	v, err := ndf.NDF(obs, g)
	if err != nil {
		return TestResult{}, err
	}
	return TestResult{NDF: v, Pass: dec.Pass(v)}, nil
}

// CalibrateFromTolerance sweeps the deviation grid and places the
// acceptance threshold at the NDF of the tolerance edges — the Fig. 8
// PASS/FAIL band construction.
func (s *System) CalibrateFromTolerance(tol float64, gridPoints int) (ndf.Decision, error) {
	return s.CalibrateFromToleranceCtx(legacyCtx(), tol, gridPoints, campaign.Engine{})
}

// CalibrateFromToleranceCtx is CalibrateFromTolerance under an explicit
// context and campaign engine; the calibration sweep is cancellable and
// bit-identical at any worker count.
func (s *System) CalibrateFromToleranceCtx(ctx context.Context, tol float64, gridPoints int, eng campaign.Engine) (ndf.Decision, error) {
	if gridPoints < 3 {
		gridPoints = 9
	}
	devs := make([]float64, gridPoints)
	for i := range devs {
		devs[i] = -tol*2 + 4*tol*float64(i)/float64(gridPoints-1)
	}
	ndfs, err := s.SweepF0Ctx(ctx, devs, eng)
	if err != nil {
		return ndf.Decision{}, err
	}
	return ndf.CalibrateThreshold(devs, ndfs, tol)
}
