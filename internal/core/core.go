// Package core is the public face of the reproduction: it wires the
// paper's full test path — multitone stimulus, Biquad CUT, X-Y zoning
// monitor bank, asynchronous signature capture, and NDF-based decision —
// into one System that examples, tools and benchmarks share.
//
// The circuit under test is pluggable: System is written against the
// CUT backend interface, with two implementations — the closed-form
// analytic Tow-Thomas model (biquad.AnalyticCUT) and the SPICE-transient
// netlist engine (biquad.SpiceCUT) — so every campaign, sweep and CLI
// runs on either.
//
// The zero-configuration entry point is Default(), which reproduces the
// paper's experiment: a {5, 10, 15} kHz multitone around 0.5 V into a
// low-pass Biquad (f0 = 10 kHz, Q = 0.9), observed by the six Table I
// monitors, captured with a 10 MHz clock and 16-bit counter over the
// 200 µs Lissajous period. DefaultSpice() is the same system on the
// SPICE backend.
package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/biquad"
	"repro/internal/campaign"
	"repro/internal/lissajous"
	"repro/internal/monitor"
	"repro/internal/ndf"
	"repro/internal/rng"
	"repro/internal/signature"
	"repro/internal/wave"
)

// CUT is the pluggable circuit-under-test backend every campaign is
// parameterized over; see biquad.CUT for the contract and the two
// shipped implementations (analytic model and SPICE netlist engine).
type CUT = biquad.CUT

// Deviation re-exports the perturbation description campaigns hand to
// CUT.Perturb.
type Deviation = biquad.Deviation

// Observation selects which CUT output the monitor composes with the
// stimulus. The paper observes the low-pass output; the band-pass
// observation is the ref [14]-style generalization this repository adds
// for Q verification.
type Observation int

// Observation modes.
const (
	// ObserveLP composes x = stimulus, y = low-pass output (the paper).
	ObserveLP Observation = iota
	// ObserveBP composes x = stimulus, y = band-pass output re-biased to
	// mid-rail (Q-verification extension).
	ObserveBP
)

// String implements fmt.Stringer.
func (o Observation) String() string {
	if o == ObserveBP {
		return "band-pass"
	}
	return "low-pass"
}

// output maps the observation onto the CUT backend's output selector.
func (o Observation) output() biquad.Output {
	if o == ObserveBP {
		return biquad.OutputBP
	}
	return biquad.OutputLP
}

// System bundles the test setup. Create with Default, DefaultSpice or
// NewSystem and treat as immutable afterwards; methods are safe for
// concurrent use.
type System struct {
	Stimulus *wave.Multitone
	// CUT is the golden circuit-under-test backend; deviated and faulty
	// devices are derived from it with Deviated/Shifted (CUT.Perturb).
	CUT     CUT
	Bank    *monitor.Bank
	Capture signature.CaptureConfig
	// ScanN is the scan resolution for exact signature extraction
	// (samples per period before bisection refinement).
	ScanN int
	// Observe selects the monitored CUT output (default: low-pass).
	// Set before first use; the golden signature is cached per system.
	Observe Observation

	goldenOnce sync.Once
	goldenSig  *signature.Signature
	goldenErr  error
}

// goldenParams is the paper's reference CUT.
var goldenParams = biquad.Params{F0: 10e3, Q: 0.9, Gain: 1}

// defaultStimulus builds the paper's multitone.
func defaultStimulus() *wave.Multitone {
	stim, err := wave.NewMultitone(0.5, 5e3, []int{1, 2, 3},
		[]float64{0.22, 0.13, 0.08}, []float64{0, 0, 0})
	if err != nil {
		panic(err) // static construction cannot fail
	}
	return stim
}

// Default returns the paper's reference system on the analytic backend.
func Default() *System {
	cut, err := biquad.NewAnalyticCUT(goldenParams)
	if err != nil {
		panic(err) // static construction cannot fail
	}
	return &System{
		Stimulus: defaultStimulus(),
		CUT:      cut,
		Bank:     monitor.NewAnalyticTableI(),
		Capture:  signature.DefaultCapture(),
		ScanN:    8192,
	}
}

// DefaultSpice returns the paper's reference system with the golden CUT
// realized as a Tow-Thomas netlist simulated by the SPICE engine.
func DefaultSpice() (*System, error) {
	cut, err := biquad.NewSpiceCUTFromParams(goldenParams, biquad.SpiceConfig{})
	if err != nil {
		return nil, err
	}
	s := Default()
	s.CUT = cut
	return s, nil
}

// SystemForBackend returns the paper's reference system on the named
// CUT backend ("analytic" or "spice") — the shared resolver behind the
// CLIs' -backend flags.
func SystemForBackend(name string) (*System, error) {
	switch name {
	case "analytic":
		return Default(), nil
	case "spice":
		return DefaultSpice()
	default:
		return nil, fmt.Errorf("core: unknown CUT backend %q (want analytic or spice)", name)
	}
}

// NewSystem builds a custom system, validating the pieces.
func NewSystem(stim *wave.Multitone, cut CUT, bank *monitor.Bank, cap signature.CaptureConfig) (*System, error) {
	if stim == nil || stim.Period() <= 0 {
		return nil, fmt.Errorf("core: stimulus must be a periodic multitone")
	}
	if cut == nil {
		return nil, fmt.Errorf("core: CUT backend must not be nil")
	}
	if err := cut.Params().Validate(); err != nil {
		return nil, err
	}
	if bank == nil || bank.Size() == 0 {
		return nil, fmt.Errorf("core: monitor bank must not be empty")
	}
	if err := cap.Validate(); err != nil {
		return nil, err
	}
	return &System{Stimulus: stim, CUT: cut, Bank: bank, Capture: cap, ScanN: 8192}, nil
}

// Golden returns the behavioural parameters of the golden CUT.
func (s *System) Golden() biquad.Params { return s.CUT.Params() }

// Deviated returns the golden CUT with the given deviation applied.
func (s *System) Deviated(d Deviation) (CUT, error) { return s.CUT.Perturb(d) }

// Shifted returns the golden CUT with a fractional f0 shift — the
// deviation class the paper sweeps.
func (s *System) Shifted(shift float64) (CUT, error) {
	return s.CUT.Perturb(Deviation{F0Shift: shift})
}

// Period returns the Lissajous period T.
func (s *System) Period() float64 { return s.Stimulus.Period() }

// output resolves the observed output waveform of a CUT.
func (s *System) output(c CUT) (wave.Waveform, error) {
	return c.Output(s.Stimulus, s.Observe.output())
}

// Lissajous returns the X-Y composition for a CUT (x = stimulus,
// y = observed output).
func (s *System) Lissajous(c CUT) (lissajous.Curve, error) {
	out, err := s.output(c)
	if err != nil {
		return lissajous.Curve{}, err
	}
	return lissajous.New(s.Stimulus, out)
}

// Band-limiting of the measurement noise. The paper's experiment adds
// "high frequency white noise ... with a 3σ spread of 0.015 V" to the
// signals; noise above the monitor's input bandwidth is averaged away by
// the differential pair, so the capture only sees the in-band fraction.
// With the noise spread specified over NoiseBandHz and the monitor
// front-end passing MonitorBandHz, the effective per-sample sigma is
// sigma·√(MonitorBandHz/NoiseBandHz). DESIGN.md records this
// substitution; the noise_detect example reproduces the paper's
// "deviations as low as 1% are detected" with these defaults.
const (
	// NoiseBandHz is the bandwidth over which the injected noise's sigma
	// is specified (it is "high frequency" relative to the monitor).
	NoiseBandHz = 100e6
	// MonitorBandHz is the monitor front-end bandwidth.
	MonitorBandHz = 10e6
)

// EffectiveNoiseSigma returns the in-band noise the capture sees for a
// given wideband noise spread.
func EffectiveNoiseSigma(sigma float64) float64 {
	return sigma * math.Sqrt(MonitorBandHz/NoiseBandHz)
}

// Classifier returns the instantaneous zone-code function for a CUT.
// A non-nil noise stream adds band-limited Gaussian measurement noise to
// both observed signals at every evaluation; sigma is the wideband spread
// (the paper's 3σ = 0.015 V experiment uses sigma = 0.005) and the
// monitor sees EffectiveNoiseSigma(sigma) of it.
func (s *System) Classifier(c CUT, sigma float64, noise *rng.Stream) (signature.Classifier, error) {
	out, err := s.output(c)
	if err != nil {
		return nil, err
	}
	if sigma <= 0 || noise == nil {
		return func(t float64) monitor.Code {
			return s.Bank.Classify(s.Stimulus.Eval(t), out.Eval(t))
		}, nil
	}
	eff := EffectiveNoiseSigma(sigma)
	return func(t float64) monitor.Code {
		x := s.Stimulus.Eval(t) + noise.Gauss(0, eff)
		y := out.Eval(t) + noise.Gauss(0, eff)
		return s.Bank.Classify(x, y)
	}, nil
}

// ExactSignature computes the ideal (unquantized, noiseless) signature
// of a CUT.
func (s *System) ExactSignature(c CUT) (*signature.Signature, error) {
	cls, err := s.Classifier(c, 0, nil)
	if err != nil {
		return nil, err
	}
	return signature.Exact(cls, s.Period(), s.ScanN, 0)
}

// CapturedSignature runs the Fig. 5 clocked capture for a CUT,
// optionally with measurement noise.
func (s *System) CapturedSignature(c CUT, sigma float64, noise *rng.Stream) (*signature.Signature, error) {
	return s.capturedSignature(c, sigma, noise, nil)
}

// capturedSignature is CapturedSignature with reusable capture scratch
// for Monte-Carlo trial loops (one buffer per campaign worker).
func (s *System) capturedSignature(c CUT, sigma float64, noise *rng.Stream, buf *signature.CaptureBuffer) (*signature.Signature, error) {
	cls, err := s.Classifier(c, sigma, noise)
	if err != nil {
		return nil, err
	}
	return signature.CaptureCanonical(cls, s.Period(), s.Capture, buf)
}

// GoldenSignature returns the (cached) exact signature of the golden CUT.
func (s *System) GoldenSignature() (*signature.Signature, error) {
	s.goldenOnce.Do(func() {
		s.goldenSig, s.goldenErr = s.ExactSignature(s.CUT)
	})
	return s.goldenSig, s.goldenErr
}

// NDFOf returns the exact NDF of an arbitrary CUT against the golden
// signature — the general entry point the Q-verification and
// component-fault experiments use.
func (s *System) NDFOf(c CUT) (float64, error) {
	g, err := s.GoldenSignature()
	if err != nil {
		return 0, err
	}
	obs, err := s.ExactSignature(c)
	if err != nil {
		return 0, err
	}
	return ndf.NDF(obs, g)
}

// NDFOfDeviation perturbs the golden CUT and returns its exact NDF.
func (s *System) NDFOfDeviation(d Deviation) (float64, error) {
	c, err := s.Deviated(d)
	if err != nil {
		return 0, err
	}
	return s.NDFOf(c)
}

// NDFOfShift returns the exact NDF of a CUT whose natural frequency is
// shifted by the given fraction — one point of the Fig. 8 curve.
func (s *System) NDFOfShift(shift float64) (float64, error) {
	return s.NDFOfDeviation(Deviation{F0Shift: shift})
}

// SweepF0 evaluates NDFOfShift over a deviation grid (the Fig. 8 sweep)
// in parallel across all CPUs; the output order matches shifts and the
// result is deterministic.
func (s *System) SweepF0(shifts []float64) ([]float64, error) {
	return s.SweepF0Workers(shifts, 0)
}

// SweepF0Workers is SweepF0 with an explicit worker-pool bound
// (0 = all CPUs). The result is identical at any worker count.
func (s *System) SweepF0Workers(shifts []float64, workers int) ([]float64, error) {
	// The golden signature must be materialized before fan-out so the
	// sync.Once does not serialize the workers.
	if _, err := s.GoldenSignature(); err != nil {
		return nil, err
	}
	return campaign.Run(campaign.Engine{Workers: workers}, len(shifts),
		func(i int) (float64, error) {
			v, err := s.NDFOfShift(shifts[i])
			if err != nil {
				return 0, fmt.Errorf("core: sweep point %g: %w", shifts[i], err)
			}
			return v, nil
		})
}

// AveragedNDF captures the CUT over several consecutive Lissajous
// periods and averages the per-period NDF against the golden signature.
// Under measurement noise the per-period NDF carries a noise-floor mean
// plus sampling variance; averaging K periods shrinks the variance by
// ~1/√K, which is how a production tester makes small deviations (the
// paper's 1% claim) separable from the floor without changing hardware —
// it simply observes the CUT longer.
// Each period is an independent capture: period k draws its noise from
// the substream noise.Split(k), so the periods fan out across the
// campaign pool and the average is deterministic at any worker count.
func (s *System) AveragedNDF(c CUT, sigma float64, noise *rng.Stream, periods int) (float64, error) {
	return s.AveragedNDFWorkers(c, sigma, noise, periods, 0)
}

// AveragedNDFWorkers is AveragedNDF with an explicit worker-pool bound
// (0 = all CPUs). Campaign runners that already fan trials out pass 1 so
// the outer pool alone owns the parallelism.
func (s *System) AveragedNDFWorkers(c CUT, sigma float64, noise *rng.Stream, periods, workers int) (float64, error) {
	if periods < 1 {
		periods = 1
	}
	g, err := s.GoldenSignature()
	if err != nil {
		return 0, err
	}
	// Materialize the observed output once before fan-out: backends with
	// an expensive Output (the SPICE transient) compute it here instead
	// of inside every period's capture.
	if _, err := s.output(c); err != nil {
		return 0, err
	}
	// Split advances the caller's stream — derive the per-period streams
	// serially before fan-out.
	streams := make([]*rng.Stream, periods)
	if noise != nil {
		for k := range streams {
			streams[k] = noise.Split(uint64(k))
		}
	}
	vals, err := campaign.RunScratch(campaign.Engine{Workers: workers}, periods,
		func() *signature.CaptureBuffer { return &signature.CaptureBuffer{} },
		func(k int, buf *signature.CaptureBuffer) (float64, error) {
			obs, err := s.capturedSignature(c, sigma, streams[k], buf)
			if err != nil {
				return 0, err
			}
			return ndf.NDF(obs, g)
		})
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(periods), nil
}

// TestResult is the outcome of one production test.
type TestResult struct {
	NDF  float64
	Pass bool
}

// Test captures a CUT (with optional noise) and applies the decision.
func (s *System) Test(c CUT, dec ndf.Decision, sigma float64, noise *rng.Stream) (TestResult, error) {
	g, err := s.GoldenSignature()
	if err != nil {
		return TestResult{}, err
	}
	obs, err := s.CapturedSignature(c, sigma, noise)
	if err != nil {
		return TestResult{}, err
	}
	v, err := ndf.NDF(obs, g)
	if err != nil {
		return TestResult{}, err
	}
	return TestResult{NDF: v, Pass: dec.Pass(v)}, nil
}

// CalibrateFromTolerance sweeps the deviation grid and places the
// acceptance threshold at the NDF of the tolerance edges — the Fig. 8
// PASS/FAIL band construction.
func (s *System) CalibrateFromTolerance(tol float64, gridPoints int) (ndf.Decision, error) {
	if gridPoints < 3 {
		gridPoints = 9
	}
	devs := make([]float64, gridPoints)
	for i := range devs {
		devs[i] = -tol*2 + 4*tol*float64(i)/float64(gridPoints-1)
	}
	ndfs, err := s.SweepF0(devs)
	if err != nil {
		return ndf.Decision{}, err
	}
	return ndf.CalibrateThreshold(devs, ndfs, tol)
}
