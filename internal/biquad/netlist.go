package biquad

import (
	"fmt"
	"math/cmplx"

	"repro/internal/spice"
)

// opampGain is the open-loop gain of the ideal opamps (VCVS) used in the
// circuit-level realization. Large enough that closed-loop error is
// negligible, small enough to keep the MNA system well-conditioned.
const opampGain = 1e7

// TowThomasNodes names the observable nodes of the realized filter.
type TowThomasNodes struct {
	In string // stimulus input
	LP string // low-pass output (the paper's monitored y(t))
	BP string // band-pass output (used by the Q-verification extension)
}

// Netlist realizes the Tow-Thomas biquad as an opamp-RC circuit for the
// internal/spice engine:
//
//	A1 (lossy integrator): RG from in, RQ damping, C feedback, R from A3
//	A2 (integrator):       R from A1, C feedback   -> LP output
//	A3 (unity inverter):   R from A2, R feedback
//
// With equal integrator R and C the transfer functions are
//
//	V(lp)/V(in) =  (R/RG) · ω0² / (s² + (ω0/Q)s + ω0²),  ω0 = 1/(RC), Q = RQ/R
//	V(bp)/V(in) = −s·RC · V(lp)/V(in)
//
// matching Components.Params exactly; tests verify this equivalence via
// AC and transient analysis. Opamps are ideal VCVS stages.
func (c Components) Netlist() (*spice.Circuit, TowThomasNodes, error) {
	if err := c.Validate(); err != nil {
		return nil, TowThomasNodes{}, err
	}
	ckt := spice.New()
	in := ckt.Node("in")
	n1 := ckt.Node("n1")
	o1 := ckt.Node("bp") // band-pass at the first integrator output
	n2 := ckt.Node("n2")
	o2 := ckt.Node("lp") // low-pass at the second integrator output
	n3 := ckt.Node("n3")
	o3 := ckt.Node("o3")

	ckt.Add(spice.NewVSource("VIN", in, spice.Ground, 0))

	// A1: summing lossy integrator.
	ckt.Add(spice.NewVCVS("EA1", o1, spice.Ground, spice.Ground, n1, opampGain))
	ckt.Add(spice.NewResistor("RG", in, n1, c.RG))
	ckt.Add(spice.NewResistor("RQ", o1, n1, c.RQ))
	ckt.Add(spice.NewCapacitor("C1", o1, n1, c.C))
	ckt.Add(spice.NewResistor("RF", o3, n1, c.R))

	// A2: integrator.
	ckt.Add(spice.NewVCVS("EA2", o2, spice.Ground, spice.Ground, n2, opampGain))
	ckt.Add(spice.NewResistor("R12", o1, n2, c.R))
	ckt.Add(spice.NewCapacitor("C2", o2, n2, c.C))

	// A3: unity inverter closing the loop.
	ckt.Add(spice.NewVCVS("EA3", o3, spice.Ground, spice.Ground, n3, opampGain))
	ckt.Add(spice.NewResistor("R23", o2, n3, c.R))
	ckt.Add(spice.NewResistor("R33", o3, n3, c.R))

	return ckt, TowThomasNodes{In: "in", LP: "lp", BP: "bp"}, nil
}

// CircuitResponse runs an AC analysis of the realized circuit and
// returns |V(node)/V(in)| at the given frequencies — the measured
// counterpart of Filter.Magnitude.
func (c Components) CircuitResponse(node string, freqs []float64) ([]float64, error) {
	ckt, nodes, err := c.Netlist()
	if err != nil {
		return nil, err
	}
	switch node {
	case nodes.LP, nodes.BP:
	default:
		return nil, fmt.Errorf("biquad: node %q is not an output (want %q or %q)", node, nodes.LP, nodes.BP)
	}
	res, err := spice.AC(ckt, spice.Options{}, "VIN", freqs)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(freqs))
	for k := range freqs {
		v, err := res.Voltage(node, k)
		if err != nil {
			return nil, err
		}
		out[k] = cmplx.Abs(v)
	}
	return out, nil
}
