package biquad

import (
	"fmt"
	"strings"

	"repro/internal/wave"
)

// Output selects which filter output a CUT backend exposes to the
// monitor: the paper observes the low-pass output; the band-pass output
// is the Q-verification extension's observation.
type Output int

// Output selectors.
const (
	OutputLP Output = iota
	OutputBP
)

// BPRebias is the mid-rail level the band-pass observation is re-biased
// to (the band-pass path blocks the stimulus DC, so hardware inserts an
// AC-coupled level shift in front of the monitor).
const BPRebias = 0.5

// DefaultCapacitorF is the integrator capacitor every campaign's
// Tow-Thomas realization is designed around (1 nF).
const DefaultCapacitorF = 1e-9

// Deviation describes a perturbation of a CUT. Behavioural shifts move
// the (f0, Q, gain) triple fractionally; component drifts and faults act
// on the Tow-Thomas realization, the way a physical defect would. A zero
// Deviation is the identity.
type Deviation struct {
	// Fractional behavioural shifts: F0Shift = +0.10 is the paper's
	// "+10% shift in f0".
	F0Shift, QShift, GainShift float64
	// Fractional component drifts of the Tow-Thomas realization
	// (tolerance sampling in the yield study draws these per die).
	RDrift, RQDrift, RGDrift, CDrift float64
	// Fault, when non-nil, is injected into the realization before the
	// drifts are applied.
	Fault *Fault
}

// componentLevel reports whether the deviation touches the realization
// (as opposed to pure behavioural-parameter shifts).
func (d Deviation) componentLevel() bool {
	return d.Fault != nil || d.RDrift != 0 || d.RQDrift != 0 || d.RGDrift != 0 || d.CDrift != 0
}

// behavioural reports whether any (f0, Q, gain) shift is present.
func (d Deviation) behavioural() bool {
	return d.F0Shift != 0 || d.QShift != 0 || d.GainShift != 0
}

// String implements fmt.Stringer, composing every present deviation
// class so mixed deviations are described in full.
func (d Deviation) String() string {
	var parts []string
	if d.Fault != nil {
		parts = append(parts, d.Fault.String())
	}
	if d.RDrift != 0 || d.RQDrift != 0 || d.RGDrift != 0 || d.CDrift != 0 {
		parts = append(parts, fmt.Sprintf("drift(R%+.2g%% RQ%+.2g%% RG%+.2g%% C%+.2g%%)",
			d.RDrift*100, d.RQDrift*100, d.RGDrift*100, d.CDrift*100))
	}
	if d.behavioural() || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("shift(f0%+.2g%% Q%+.2g%% G%+.2g%%)",
			d.F0Shift*100, d.QShift*100, d.GainShift*100))
	}
	return strings.Join(parts, "+")
}

// apply resolves the deviation against a component realization and its
// behavioural parameters, returning the perturbed pair. Component-level
// changes go through the realization (fault first, then drifts) and the
// behavioural parameters are re-derived from it; behavioural shifts are
// then applied on top and, when present, the realization is redesigned
// around the (possibly drifted) capacitor so the pair stays consistent.
func (d Deviation) apply(p Params, comps Components) (Params, Components, error) {
	if d.componentLevel() {
		if d.Fault != nil {
			comps = d.Fault.Apply(comps)
		}
		comps.R *= 1 + d.RDrift
		comps.RQ *= 1 + d.RQDrift
		comps.RG *= 1 + d.RGDrift
		comps.C *= 1 + d.CDrift
		var err error
		p, err = comps.Params()
		if err != nil {
			return Params{}, Components{}, err
		}
	}
	p.F0 *= 1 + d.F0Shift
	p.Q *= 1 + d.QShift
	p.Gain *= 1 + d.GainShift
	if err := p.Validate(); err != nil {
		return Params{}, Components{}, err
	}
	if d.behavioural() {
		var err error
		comps, err = DesignTowThomas(p, comps.C)
		if err != nil {
			return Params{}, Components{}, err
		}
	}
	return p, comps, nil
}

// CUT is a circuit-under-test backend: something that can produce the
// observed steady-state output waveform for a periodic stimulus, spawn
// perturbed copies of itself, and describe itself. The campaign layer
// (sweeps, fault tables, yield and noise studies) is written against
// this interface, so every experiment runs unchanged on the analytic
// Tow-Thomas model or on the SPICE netlist engine.
//
// Implementations must be safe for concurrent use after construction:
// campaign workers share the golden CUT and call Output concurrently.
type CUT interface {
	// Output returns the steady-state periodic output observed at the
	// selected node for the given stimulus.
	Output(stim *wave.Multitone, out Output) (wave.Waveform, error)
	// Perturb returns an independent CUT with the deviation applied on
	// top of this one.
	Perturb(dev Deviation) (CUT, error)
	// Params returns the behavioural (f0, Q, gain) description of the
	// CUT (for SPICE-level backends, derived from the design equations
	// of the realization).
	Params() Params
	// Describe returns a short human-readable backend description.
	Describe() string
}

// AnalyticCUT is the closed-form backend: outputs come from the exact
// s-domain transfer function (SteadyState/SteadyStateBP). It carries a
// Tow-Thomas realization alongside the behavioural parameters so
// component-level deviations (faults, tolerance drifts) land exactly
// where a defect would.
type AnalyticCUT struct {
	p     Params
	comps Components
}

// NewAnalyticCUT builds the analytic backend for the given behavioural
// parameters, realizing them with the default 1 nF capacitor.
func NewAnalyticCUT(p Params) (*AnalyticCUT, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	comps, err := DesignTowThomas(p, DefaultCapacitorF)
	if err != nil {
		return nil, err
	}
	return &AnalyticCUT{p: p, comps: comps}, nil
}

// Output implements CUT with the exact steady-state response.
func (a *AnalyticCUT) Output(stim *wave.Multitone, out Output) (wave.Waveform, error) {
	f, err := New(a.p)
	if err != nil {
		return nil, err
	}
	if out == OutputBP {
		return f.SteadyStateBP(stim, BPRebias), nil
	}
	return f.SteadyState(stim), nil
}

// Perturb implements CUT.
func (a *AnalyticCUT) Perturb(dev Deviation) (CUT, error) {
	p, comps, err := dev.apply(a.p, a.comps)
	if err != nil {
		return nil, err
	}
	return &AnalyticCUT{p: p, comps: comps}, nil
}

// Params implements CUT.
func (a *AnalyticCUT) Params() Params { return a.p }

// Components returns the Tow-Thomas realization backing component-level
// perturbations.
func (a *AnalyticCUT) Components() Components { return a.comps }

// Describe implements CUT.
func (a *AnalyticCUT) Describe() string {
	return fmt.Sprintf("analytic Tow-Thomas biquad (f0=%.4g Hz, Q=%.3g, gain=%.3g)",
		a.p.F0, a.p.Q, a.p.Gain)
}
