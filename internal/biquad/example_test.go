package biquad_test

import (
	"fmt"

	"repro/internal/biquad"
)

// Synthesize the Tow-Thomas components for the paper's Biquad and read
// the behavioural parameters back.
func ExampleDesignTowThomas() {
	comps, err := biquad.DesignTowThomas(biquad.Params{F0: 10e3, Q: 0.9, Gain: 1}, 1e-9)
	if err != nil {
		fmt.Println(err)
		return
	}
	p, _ := comps.Params()
	fmt.Printf("f0 = %.0f Hz, Q = %.2f, R = %.0f ohm\n", p.F0, p.Q, comps.R)
	// Output:
	// f0 = 10000 Hz, Q = 0.90, R = 15915 ohm
}

// Inject the paper's +10% natural-frequency deviation as a capacitor
// drift and observe the behavioural effect.
func ExampleFault_Apply() {
	comps, _ := biquad.DesignTowThomas(biquad.Params{F0: 10e3, Q: 0.9, Gain: 1}, 1e-9)
	faulty := biquad.Fault{
		Kind:   biquad.FaultParametric,
		Target: biquad.TargetC,
		Frac:   -1.0 / 11, // C low by 9.09% -> f0 up 10%
	}.Apply(comps)
	p, _ := faulty.Params()
	fmt.Printf("faulty f0 = %.0f Hz\n", p.F0)
	// Output:
	// faulty f0 = 11000 Hz
}
