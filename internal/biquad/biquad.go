// Package biquad models the paper's circuit under test: a second-order
// low-pass ("Biquad") filter. It provides
//
//   - the s-domain transfer function and exact steady-state response to
//     multitone stimuli (how the golden and deviated Lissajous curves of
//     Fig. 1/6 are generated),
//   - a Tow-Thomas RC realization mapping component values to (f0, Q,
//     gain) so parametric and catastrophic component faults can be
//     injected the way a defect would move them, and
//   - a RK4 time-domain integrator used to validate the analytic path
//     and to support non-sinusoidal stimuli.
package biquad

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/wave"
)

// Params are the behavioural parameters of the low-pass biquad
//
//	H(s) = Gain · ω0² / (s² + (ω0/Q)·s + ω0²).
type Params struct {
	F0   float64 // natural frequency, Hz
	Q    float64 // quality factor
	Gain float64 // DC gain (positive; the Tow-Thomas inversion is absorbed)
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.F0 <= 0 {
		return fmt.Errorf("biquad: F0 = %g Hz must be positive", p.F0)
	}
	if p.Q <= 0 {
		return fmt.Errorf("biquad: Q = %g must be positive", p.Q)
	}
	if p.Gain <= 0 {
		return fmt.Errorf("biquad: gain = %g must be positive", p.Gain)
	}
	return nil
}

// WithF0Shift returns parameters with the natural frequency shifted by
// the given fraction (e.g. +0.10 for the paper's "+10% shift in f0").
func (p Params) WithF0Shift(frac float64) Params {
	out := p
	out.F0 = p.F0 * (1 + frac)
	return out
}

// Filter is an immutable biquad instance.
type Filter struct {
	p  Params
	w0 float64
}

// New creates a filter from behavioural parameters.
func New(p Params) (*Filter, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Filter{p: p, w0: 2 * math.Pi * p.F0}, nil
}

// Params returns the filter parameters.
func (f *Filter) Params() Params { return f.p }

// Response returns H(j·2π·freq).
func (f *Filter) Response(freq float64) complex128 {
	s := complex(0, 2*math.Pi*freq)
	w0 := complex(f.w0, 0)
	num := complex(f.p.Gain, 0) * w0 * w0
	den := s*s + s*w0/complex(f.p.Q, 0) + w0*w0
	return num / den
}

// Magnitude returns |H(j·2π·freq)|.
func (f *Filter) Magnitude(freq float64) float64 { return cmplx.Abs(f.Response(freq)) }

// ResponseBP returns the band-pass transfer function of the same
// Tow-Thomas realization (the first integrator output),
//
//	H_BP(s) = Gain · (ω0/Q)·s / (s² + (ω0/Q)·s + ω0²),
//
// normalized so |H_BP(jω0)| = Gain. The Q-verification extension
// observes this output because Q deviations move the band-pass peak
// directly while barely changing the low-pass passband.
func (f *Filter) ResponseBP(freq float64) complex128 {
	s := complex(0, 2*math.Pi*freq)
	w0 := complex(f.w0, 0)
	q := complex(f.p.Q, 0)
	num := complex(f.p.Gain, 0) * (w0 / q) * s
	den := s*s + s*w0/q + w0*w0
	return num / den
}

// MagnitudeBP returns |H_BP(j·2π·freq)|.
func (f *Filter) MagnitudeBP(freq float64) float64 { return cmplx.Abs(f.ResponseBP(freq)) }

// SteadyStateBP is the band-pass counterpart of SteadyState. The DC
// offset of the stimulus is blocked (H_BP(0) = 0), so the output is
// re-biased to the given level — in hardware an AC-coupled level shift
// in front of the monitor.
func (f *Filter) SteadyStateBP(in *wave.Multitone, rebias float64) *wave.Multitone {
	out := &wave.Multitone{Offset: rebias}
	for _, t := range in.Tones {
		h := f.ResponseBP(t.Freq)
		out.Tones = append(out.Tones, wave.Tone{
			Amp:   t.Amp * cmplx.Abs(h),
			Freq:  t.Freq,
			Phase: t.Phase + cmplx.Phase(h),
		})
	}
	return withPeriodOf(out, in)
}

// Phase returns arg H(j·2π·freq) in radians.
func (f *Filter) Phase(freq float64) float64 { return cmplx.Phase(f.Response(freq)) }

// CutoffMinus3dB returns the -3 dB frequency (relative to DC gain),
// found numerically; for Q = 1/√2 it coincides with F0.
func (f *Filter) CutoffMinus3dB() float64 {
	target := f.p.Gain / math.Sqrt2
	lo, hi := f.p.F0/100, f.p.F0*100
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi)
		if f.Magnitude(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}

// SteadyState returns the exact steady-state output of the filter for a
// multitone input: DC scaled by H(0) = Gain, each tone scaled by |H| and
// shifted by arg H. This is the Lissajous y(t) generator.
func (f *Filter) SteadyState(in *wave.Multitone) *wave.Multitone {
	out := &wave.Multitone{Offset: in.Offset * f.p.Gain}
	for _, t := range in.Tones {
		h := f.Response(t.Freq)
		out.Tones = append(out.Tones, wave.Tone{
			Amp:   t.Amp * cmplx.Abs(h),
			Freq:  t.Freq,
			Phase: t.Phase + cmplx.Phase(h),
		})
	}
	// The output shares the input's periodicity.
	return withPeriodOf(out, in)
}

// withPeriodOf copies the unexported period from src; both waveforms have
// identical tone frequencies so this is exact.
func withPeriodOf(dst, src *wave.Multitone) *wave.Multitone {
	// Rebuild through the constructor to keep the invariant honest:
	// recover fundamental and harmonic structure from src.
	p := src.Period()
	if p <= 0 {
		return dst
	}
	f0 := 1 / p
	harmonics := make([]int, len(dst.Tones))
	amps := make([]float64, len(dst.Tones))
	phases := make([]float64, len(dst.Tones))
	for i, t := range dst.Tones {
		harmonics[i] = int(math.Round(t.Freq / f0))
		amps[i] = t.Amp
		phases[i] = t.Phase
	}
	out, err := wave.NewMultitone(dst.Offset, f0, harmonics, amps, phases)
	if err != nil {
		// Unreachable for well-formed inputs; keep dst as a fallback.
		return dst
	}
	return out
}

// Transient integrates the filter ODE
//
//	v' = w,   w' = Gain·ω0²·u(t) − ω0²·v − (ω0/Q)·w
//
// with classic RK4 at fixed step dt over [0, dur], starting from rest.
// It returns the sampled output v(t) on the same grid as wave.Sample.
func (f *Filter) Transient(u wave.Waveform, dur, dt float64) wave.Record {
	n := int(math.Round(dur / dt))
	if n < 1 {
		n = 1
	}
	rec := wave.Record{
		T:  make([]float64, n),
		V:  make([]float64, n),
		Fs: 1 / dt,
	}
	w0 := f.w0
	w02 := w0 * w0
	damp := w0 / f.p.Q
	g := f.p.Gain
	deriv := func(t, v, w float64) (dv, dw float64) {
		return w, g*w02*u.Eval(t) - w02*v - damp*w
	}
	v, w := 0.0, 0.0
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		rec.T[i] = t
		rec.V[i] = v
		k1v, k1w := deriv(t, v, w)
		k2v, k2w := deriv(t+dt/2, v+dt/2*k1v, w+dt/2*k1w)
		k3v, k3w := deriv(t+dt/2, v+dt/2*k2v, w+dt/2*k2w)
		k4v, k4w := deriv(t+dt, v+dt*k3v, w+dt*k3w)
		v += dt / 6 * (k1v + 2*k2v + 2*k3v + k4v)
		w += dt / 6 * (k1w + 2*k2w + 2*k3w + k4w)
	}
	return rec
}

// SettlingPeriods estimates how many stimulus periods are needed before
// the transient term decays below frac (e.g. 0.01) of its initial size,
// for stimuli with period T: the envelope decays as exp(−ω0·t/(2Q)).
func (f *Filter) SettlingPeriods(period, frac float64) int {
	if frac <= 0 || frac >= 1 {
		frac = 0.01
	}
	tau := 2 * f.p.Q / f.w0
	t := -tau * math.Log(frac)
	return int(math.Ceil(t / period))
}
