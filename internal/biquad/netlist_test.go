package biquad

import (
	"math"
	"testing"

	"repro/internal/spice"
	"repro/internal/wave"
)

func paperComponents(t *testing.T) Components {
	t.Helper()
	comps, err := DesignTowThomas(Params{F0: 10e3, Q: 0.9, Gain: 1}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	return comps
}

func TestNetlistBuilds(t *testing.T) {
	comps := paperComponents(t)
	ckt, nodes, err := comps.Netlist()
	if err != nil {
		t.Fatal(err)
	}
	if nodes.LP != "lp" || nodes.BP != "bp" || nodes.In != "in" {
		t.Fatalf("node names: %+v", nodes)
	}
	if ckt.FindElement("VIN") == nil || ckt.FindElement("EA3") == nil {
		t.Fatal("netlist incomplete")
	}
	if _, _, err := (Components{}).Netlist(); err == nil {
		t.Fatal("invalid components accepted")
	}
}

func TestCircuitLPMatchesBehaviouralTF(t *testing.T) {
	comps := paperComponents(t)
	f, err := New(Params{F0: 10e3, Q: 0.9, Gain: 1})
	if err != nil {
		t.Fatal(err)
	}
	freqs := []float64{100, 1e3, 5e3, 10e3, 15e3, 30e3, 100e3}
	mags, err := comps.CircuitResponse("lp", freqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, fr := range freqs {
		want := f.Magnitude(fr)
		if math.Abs(mags[i]-want) > 1e-3*want+1e-6 {
			t.Fatalf("|H_LP(%g)| circuit %v vs behavioural %v", fr, mags[i], want)
		}
	}
}

func TestCircuitBPMatchesTheory(t *testing.T) {
	comps := paperComponents(t)
	// |H_BP(s)| = ω·RC · |H_LP(s)|; at f0 that equals Q·Gain = 0.9.
	mags, err := comps.CircuitResponse("bp", []float64{10e3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mags[0]-0.9) > 1e-3 {
		t.Fatalf("|H_BP(f0)| = %v, want 0.9", mags[0])
	}
}

func TestCircuitResponseValidation(t *testing.T) {
	comps := paperComponents(t)
	if _, err := comps.CircuitResponse("nosuch", []float64{1e3}); err == nil {
		t.Fatal("bad node accepted")
	}
}

func TestCircuitTransientMatchesODE(t *testing.T) {
	// Drive the realized circuit with one tone and compare the settled
	// LP output against the behavioural RK4 integration.
	comps := paperComponents(t)
	ckt, nodes, err := comps.Netlist()
	if err != nil {
		t.Fatal(err)
	}
	stim := wave.Sine{Amp: 0.2, Freq: 8e3}
	vin := ckt.FindElement("VIN").(*spice.VSource)
	*vin = *spice.NewVSourceWave("VIN", ckt.Node("in"), spice.Ground, stim)
	dur := 1.5e-3 // several settling time constants
	steps := 6000
	res, err := spice.Transient(ckt, spice.Options{Trapezoid: true}, dur, steps)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := res.VoltageSeries(nodes.LP)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(Params{F0: 10e3, Q: 0.9, Gain: 1})
	if err != nil {
		t.Fatal(err)
	}
	ode := f.Transient(stim, dur, dur/float64(steps))
	// Compare the final 20% of both records (steady state), allowing a
	// small tolerance for the different integrators.
	start := int(0.8 * float64(steps))
	worst := 0.0
	for i := start; i < steps; i++ {
		d := math.Abs(lp[i] - ode.V[i])
		if d > worst {
			worst = d
		}
	}
	if worst > 5e-3 {
		t.Fatalf("circuit vs ODE steady-state mismatch %v", worst)
	}
}

func TestFaultyCircuitShiftsCutoff(t *testing.T) {
	comps := paperComponents(t)
	faulty := Fault{Kind: FaultParametric, Target: TargetC, Frac: -1.0 / 11}.Apply(comps)
	// The faulty circuit's |H| at 14 kHz should exceed the nominal one
	// (f0 moved up to 11 kHz).
	freqs := []float64{14e3}
	nom, err := comps.CircuitResponse("lp", freqs)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := faulty.CircuitResponse("lp", freqs)
	if err != nil {
		t.Fatal(err)
	}
	if bad[0] <= nom[0] {
		t.Fatalf("f0-up fault should raise |H(14k)|: %v vs %v", bad[0], nom[0])
	}
}
