package biquad

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/wave"
)

// mustFilter is the test-side replacement for the removed MustNew: the
// library only exposes the error-returning constructor.
func mustFilter(t *testing.T, p Params) *Filter {
	t.Helper()
	f, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func paperFilter(t *testing.T) *Filter {
	return mustFilter(t, Params{F0: 10e3, Q: 0.9, Gain: 1})
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{F0: 0, Q: 1, Gain: 1},
		{F0: 1, Q: 0, Gain: 1},
		{F0: 1, Q: 1, Gain: 0},
		{F0: -5, Q: 1, Gain: 1},
	}
	for _, p := range bad {
		if _, err := New(p); err == nil {
			t.Fatalf("params %+v accepted", p)
		}
	}
}

func TestDCResponse(t *testing.T) {
	f := paperFilter(t)
	if g := f.Magnitude(0); math.Abs(g-1) > 1e-12 {
		t.Fatalf("|H(0)| = %v, want 1", g)
	}
	if p := f.Phase(0); math.Abs(p) > 1e-12 {
		t.Fatalf("arg H(0) = %v, want 0", p)
	}
}

func TestResponseAtF0(t *testing.T) {
	f := paperFilter(t)
	// At s = jω0 the denominator is jω0²/Q, so |H| = Q·Gain and the
	// phase is -90°.
	if g := f.Magnitude(10e3); math.Abs(g-0.9) > 1e-9 {
		t.Fatalf("|H(f0)| = %v, want Q = 0.9", g)
	}
	if p := f.Phase(10e3); math.Abs(p+math.Pi/2) > 1e-9 {
		t.Fatalf("arg H(f0) = %v, want -π/2", p)
	}
}

func TestHighFrequencyRolloff(t *testing.T) {
	f := paperFilter(t)
	// Two decades above f0 the roll-off is -40 dB/dec: |H| ≈ (f0/f)².
	g := f.Magnitude(1e6)
	want := math.Pow(10e3/1e6, 2)
	if math.Abs(g-want) > 0.02*want {
		t.Fatalf("|H(100·f0)| = %v, want ~%v", g, want)
	}
}

func TestF0ShiftScalesResponse(t *testing.T) {
	f := paperFilter(t)
	fShift := mustFilter(t, f.Params().WithF0Shift(0.10))
	if math.Abs(fShift.Params().F0-11e3) > 1e-9 {
		t.Fatalf("shifted F0 = %v, want 11 kHz", fShift.Params().F0)
	}
	// Frequency scaling: H_shifted(1.1·f) == H(f).
	for _, freq := range []float64{1e3, 5e3, 10e3, 20e3} {
		a := f.Response(freq)
		b := fShift.Response(1.1 * freq)
		if d := cmplxAbs(a - b); d > 1e-9 {
			t.Fatalf("scaling property violated at %v Hz: |Δ| = %v", freq, d)
		}
	}
}

func cmplxAbs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}

func TestCutoffButterworthCase(t *testing.T) {
	// Q = 1/sqrt2 (Butterworth): -3 dB point equals F0.
	f := mustFilter(t, Params{F0: 10e3, Q: 1 / math.Sqrt2, Gain: 1})
	if fc := f.CutoffMinus3dB(); math.Abs(fc-10e3) > 5 {
		t.Fatalf("Butterworth cutoff = %v, want 10 kHz", fc)
	}
}

func paperStimulus(t *testing.T) *wave.Multitone {
	t.Helper()
	m, err := wave.NewMultitone(0.5, 5e3, []int{1, 2, 3},
		[]float64{0.22, 0.13, 0.08}, []float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSteadyStateMatchesResponse(t *testing.T) {
	f := paperFilter(t)
	in := paperStimulus(t)
	out := f.SteadyState(in)
	if math.Abs(out.Offset-0.5) > 1e-12 {
		t.Fatalf("output offset = %v, want 0.5 (unity DC gain)", out.Offset)
	}
	if out.Period() != in.Period() {
		t.Fatalf("period changed: %v -> %v", in.Period(), out.Period())
	}
	for i, tone := range out.Tones {
		wantAmp := in.Tones[i].Amp * f.Magnitude(tone.Freq)
		if math.Abs(tone.Amp-wantAmp) > 1e-12 {
			t.Fatalf("tone %d amp = %v, want %v", i, tone.Amp, wantAmp)
		}
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	f := paperFilter(t)
	in := paperStimulus(t)
	ss := f.SteadyState(in)
	period := in.Period()
	settle := f.SettlingPeriods(period, 1e-4)
	dur := period * float64(settle+1)
	dt := period / 2000
	rec := f.Transient(in, dur, dt)
	// Compare the last period against the analytic steady state.
	start := len(rec.T) - 2000
	worst := 0.0
	for i := start; i < len(rec.T); i++ {
		d := math.Abs(rec.V[i] - ss.Eval(rec.T[i]))
		if d > worst {
			worst = d
		}
	}
	if worst > 2e-4 {
		t.Fatalf("transient vs steady state worst error = %v", worst)
	}
}

func TestTransientStepDCGain(t *testing.T) {
	f := mustFilter(t, Params{F0: 1e3, Q: 0.7, Gain: 2.5})
	rec := f.Transient(wave.DC(1), 20e-3, 1e-6)
	final := rec.V[len(rec.V)-1]
	if math.Abs(final-2.5) > 1e-3 {
		t.Fatalf("step response settles to %v, want 2.5", final)
	}
}

func TestSettlingPeriods(t *testing.T) {
	f := paperFilter(t)
	n := f.SettlingPeriods(200e-6, 0.01)
	if n < 1 || n > 20 {
		t.Fatalf("settling periods = %d, implausible", n)
	}
	// Tighter tolerance needs more periods.
	if f.SettlingPeriods(200e-6, 1e-5) <= n {
		t.Fatal("tighter tolerance should need more settling")
	}
	// Bad frac falls back to 1%.
	if f.SettlingPeriods(200e-6, 0) != n {
		t.Fatal("frac fallback broken")
	}
}

func TestTowThomasRoundTrip(t *testing.T) {
	p := Params{F0: 10e3, Q: 0.9, Gain: 1}
	comps, err := DesignTowThomas(p, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	back, err := comps.Params()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(back.F0-p.F0) > 1e-6*p.F0 ||
		math.Abs(back.Q-p.Q) > 1e-9 ||
		math.Abs(back.Gain-p.Gain) > 1e-9 {
		t.Fatalf("round trip %+v -> %+v", p, back)
	}
}

func TestTowThomasValidation(t *testing.T) {
	if _, err := DesignTowThomas(Params{F0: 1e3, Q: 1, Gain: 1}, 0); err == nil {
		t.Fatal("zero capacitor accepted")
	}
	if _, err := (Components{R: 0, RQ: 1, RG: 1, C: 1}).Params(); err == nil {
		t.Fatal("zero R accepted")
	}
}

func TestParametricFaultMovesF0(t *testing.T) {
	comps, _ := DesignTowThomas(Params{F0: 10e3, Q: 0.9, Gain: 1}, 1e-9)
	// +10% R: f0 drops by 1/1.1, Q drops (RQ/R), gain rises (R/RG).
	faulty := Fault{Kind: FaultParametric, Target: TargetR, Frac: 0.10}.Apply(comps)
	p, err := faulty.Params()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.F0-10e3/1.1) > 1 {
		t.Fatalf("faulty F0 = %v, want %v", p.F0, 10e3/1.1)
	}
	// -9.09% C gives the same f0 shift without touching Q or gain.
	cFault := Fault{Kind: FaultParametric, Target: TargetC, Frac: -1.0 / 11}.Apply(comps)
	pc, _ := cFault.Params()
	if math.Abs(pc.F0-11e3) > 1 {
		t.Fatalf("C-fault F0 = %v, want 11 kHz", pc.F0)
	}
	if math.Abs(pc.Q-0.9) > 1e-9 || math.Abs(pc.Gain-1) > 1e-9 {
		t.Fatalf("C fault leaked into Q/gain: %+v", pc)
	}
}

func TestCatastrophicFaults(t *testing.T) {
	comps, _ := DesignTowThomas(Params{F0: 10e3, Q: 0.9, Gain: 1}, 1e-9)
	open := Fault{Kind: FaultOpen, Target: TargetRQ}.Apply(comps)
	p, err := open.Params()
	if err != nil {
		t.Fatal(err)
	}
	if p.Q < 1e5 {
		t.Fatalf("open RQ should explode Q, got %v", p.Q)
	}
	short := Fault{Kind: FaultShort, Target: TargetC}.Apply(comps)
	ps, err := short.Params()
	if err != nil {
		t.Fatal(err)
	}
	if ps.F0 > 1 {
		t.Fatalf("shorted C should collapse f0, got %v", ps.F0)
	}
	if s := (Fault{Kind: FaultOpen, Target: TargetRQ}).String(); s != "open(RQ)" {
		t.Fatalf("fault string = %q", s)
	}
	if s := (Fault{Kind: FaultParametric, Target: TargetC, Frac: 0.05}).String(); s != "C+5.0%" {
		t.Fatalf("fault string = %q", s)
	}
}

// Property: |H| is maximal near/below f0 for modest Q and monotonically
// decreasing far above f0.
func TestRolloffMonotoneProperty(t *testing.T) {
	prop := func(qRaw, f0Raw uint8) bool {
		q := 0.5 + float64(qRaw)/255*1.5 // [0.5, 2]
		f0 := 1e3 * (1 + float64(f0Raw)/255*99)
		f, err := New(Params{F0: f0, Q: q, Gain: 1})
		if err != nil {
			return false
		}
		prev := math.Inf(1)
		for mult := 2.0; mult < 100; mult *= 1.5 {
			g := f.Magnitude(f0 * mult)
			if g >= prev {
				return false
			}
			prev = g
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: steady-state output amplitude of any tone never exceeds
// Gain·Q·input (resonant peak bound for Q >= 1/sqrt2) nor input·Gain·1.16.
func TestSteadyStateBoundProperty(t *testing.T) {
	f := paperFilter(t)
	prop := func(h uint8) bool {
		harm := 1 + int(h%6)
		in, err := wave.NewMultitone(0.5, 2e3, []int{harm}, []float64{0.1}, []float64{0})
		if err != nil {
			return false
		}
		out := f.SteadyState(in)
		peak := f.Params().Gain * math.Max(1, f.Params().Q) * 0.1 * 1.16
		return out.Tones[0].Amp <= peak
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBandpassResponse(t *testing.T) {
	f := paperFilter(t)
	// |H_BP(f0)| = Gain = 1 by normalization; phase at f0 is 0.
	if g := f.MagnitudeBP(10e3); math.Abs(g-1) > 1e-9 {
		t.Fatalf("|H_BP(f0)| = %v, want 1", g)
	}
	h := f.ResponseBP(10e3)
	if math.Abs(cmplxAbs(h-complex(1, 0))) > 1e-9 {
		t.Fatalf("H_BP(f0) = %v, want 1+0i", h)
	}
	// Band-pass: vanishes at DC and rolls off at high frequency.
	if f.MagnitudeBP(1) > 1e-3 {
		t.Fatal("BP response at ~DC should vanish")
	}
	if f.MagnitudeBP(1e6) > 0.02 {
		t.Fatal("BP response far above f0 should vanish")
	}
}

func TestSteadyStateBP(t *testing.T) {
	f := paperFilter(t)
	in := paperStimulus(t)
	out := f.SteadyStateBP(in, 0.5)
	if out.Offset != 0.5 {
		t.Fatalf("rebias = %v, want 0.5", out.Offset)
	}
	if out.Period() != in.Period() {
		t.Fatal("period changed")
	}
	for i, tone := range out.Tones {
		want := in.Tones[i].Amp * f.MagnitudeBP(tone.Freq)
		if math.Abs(tone.Amp-want) > 1e-12 {
			t.Fatalf("tone %d amp = %v, want %v", i, tone.Amp, want)
		}
	}
}

func TestFaultStringAll(t *testing.T) {
	for _, c := range []struct {
		f    Fault
		want string
	}{
		{Fault{Kind: FaultOpen, Target: TargetR}, "open(R)"},
		{Fault{Kind: FaultShort, Target: TargetRG}, "short(RG)"},
		{Fault{Kind: FaultParametric, Target: TargetRQ, Frac: -0.1}, "RQ-10.0%"},
	} {
		if got := c.f.String(); got != c.want {
			t.Fatalf("String = %q, want %q", got, c.want)
		}
	}
	if TargetR.String() != "R" || TargetC.String() != "C" {
		t.Fatal("target names wrong")
	}
}
