package biquad

import (
	"fmt"
	"math"
)

// Components holds the element values of a simplified Tow-Thomas
// realization of the low-pass biquad (equal integrator time constants):
//
//	f0   = 1 / (2π·R·C)
//	Q    = RQ / R
//	Gain = R / RG
//
// This is the standard design-equation form used when both integrator
// resistors and capacitors are drawn equal; it lets faults be injected at
// component level (a resistor drift moves f0 and gain together, exactly
// as a physical defect would).
type Components struct {
	R  float64 // integrator resistor, Ω
	RQ float64 // damping resistor, Ω
	RG float64 // input (gain) resistor, Ω
	C  float64 // integrator capacitor, F
}

// Validate checks component sanity.
func (c Components) Validate() error {
	for _, v := range []struct {
		name string
		val  float64
	}{{"R", c.R}, {"RQ", c.RQ}, {"RG", c.RG}, {"C", c.C}} {
		if v.val <= 0 || math.IsInf(v.val, 0) || math.IsNaN(v.val) {
			return fmt.Errorf("biquad: component %s = %g must be positive and finite", v.name, v.val)
		}
	}
	return nil
}

// Params derives the behavioural parameters from component values.
func (c Components) Params() (Params, error) {
	if err := c.Validate(); err != nil {
		return Params{}, err
	}
	return Params{
		F0:   1 / (2 * math.Pi * c.R * c.C),
		Q:    c.RQ / c.R,
		Gain: c.R / c.RG,
	}, nil
}

// DesignTowThomas synthesizes component values realizing the given
// behavioural parameters with the chosen capacitor value.
func DesignTowThomas(p Params, c float64) (Components, error) {
	if err := p.Validate(); err != nil {
		return Components{}, err
	}
	if c <= 0 {
		return Components{}, fmt.Errorf("biquad: capacitor %g must be positive", c)
	}
	r := 1 / (2 * math.Pi * p.F0 * c)
	return Components{R: r, RQ: p.Q * r, RG: r / p.Gain, C: c}, nil
}

// FaultKind enumerates injectable defects.
type FaultKind int

// Supported fault classes: parametric drift of one component, and the
// two classic catastrophic defects.
const (
	// FaultParametric scales a component by (1 + Frac).
	FaultParametric FaultKind = iota
	// FaultOpen models an open component (resistance -> openFactor×,
	// capacitance -> 1/openFactor×).
	FaultOpen
	// FaultShort models a shorted component (resistance -> 1/openFactor×,
	// capacitance -> openFactor×).
	FaultShort
)

// Target selects the component a fault applies to.
type Target int

// Fault targets.
const (
	TargetR Target = iota
	TargetRQ
	TargetRG
	TargetC
)

// String implements fmt.Stringer.
func (t Target) String() string {
	switch t {
	case TargetR:
		return "R"
	case TargetRQ:
		return "RQ"
	case TargetRG:
		return "RG"
	default:
		return "C"
	}
}

// openFactor is the impedance ratio used to approximate catastrophic
// defects while keeping the behavioural model well-defined.
const openFactor = 1e6

// Fault is a component-level defect.
type Fault struct {
	Kind   FaultKind
	Target Target
	Frac   float64 // parametric drift fraction, used by FaultParametric
}

// Apply returns the component set with the fault injected.
func (f Fault) Apply(c Components) Components {
	scale := 1.0
	switch f.Kind {
	case FaultParametric:
		scale = 1 + f.Frac
	case FaultOpen:
		scale = openFactor
	case FaultShort:
		scale = 1 / openFactor
	}
	out := c
	switch f.Target {
	case TargetR:
		out.R *= scale
	case TargetRQ:
		out.RQ *= scale
	case TargetRG:
		out.RG *= scale
	case TargetC:
		// An open capacitor loses capacitance; a short gains it. The
		// parametric case scales directly.
		switch f.Kind {
		case FaultOpen:
			out.C /= openFactor
		case FaultShort:
			out.C *= openFactor
		default:
			out.C *= scale
		}
	}
	return out
}

// String implements fmt.Stringer.
func (f Fault) String() string {
	switch f.Kind {
	case FaultOpen:
		return fmt.Sprintf("open(%s)", f.Target)
	case FaultShort:
		return fmt.Sprintf("short(%s)", f.Target)
	default:
		return fmt.Sprintf("%s%+.1f%%", f.Target, f.Frac*100)
	}
}
