package biquad

import (
	"fmt"
	"sync"

	"repro/internal/spice"
	"repro/internal/wave"
)

// SpiceConfig tunes the SPICE-transient CUT backend. The zero value uses
// the documented defaults.
type SpiceConfig struct {
	// StepsPerPeriod is the transient resolution of the captured
	// steady-state period (default 2048 — interpolation error orders of
	// magnitude below the capture quantization).
	StepsPerPeriod int
	// SettleFrac is the residual transient fraction the pre-capture
	// settling aims for (default 1e-3).
	SettleFrac float64
	// MaxSettlePeriods caps the settling time (default 16). Catastrophic
	// faults can push Q — and with it the exact settling time — beyond
	// any practical bound; a capped settle mirrors a real tester's
	// finite soak and still exposes the fault to the signature.
	MaxSettlePeriods int
	// Rebuild forces the rebuild-per-trial transient path even when the
	// caller offers a trial scratch to OutputScratch. It is the reference
	// configuration: the template-vs-rebuild bit-identity tests and the
	// speedup pin run one campaign with Rebuild set and one without and
	// require byte-equal results.
	Rebuild bool
	// Options passes through to the solver. Trapezoidal integration is
	// forced on (second-order accuracy) unless ForceNewton-style
	// debugging options are set by tests.
	Options spice.Options
}

func (c SpiceConfig) withDefaults() SpiceConfig {
	if c.StepsPerPeriod == 0 {
		c.StepsPerPeriod = 2048
	}
	if c.SettleFrac == 0 {
		c.SettleFrac = 1e-3
	}
	if c.MaxSettlePeriods == 0 {
		c.MaxSettlePeriods = 16
	}
	c.Options.Trapezoid = true
	return c
}

// SpiceCUT is the circuit-level backend: the Tow-Thomas realization is
// elaborated into an opamp-RC netlist (Components.Netlist) and the
// observed output is produced by a transient analysis — settle periods
// to decay the start-up transient, then one steady-state period sampled
// into a periodic waveform. Because the netlist is MOSFET-free the
// TransientSolver's linear fast path applies: one LU factorization per
// run, one solve per step.
//
// All CUTs perturbed from one root share a workspace pool, so campaign
// fan-out reuses the solver matrices across trials regardless of which
// worker runs which trial (the buffers are cleared per run, so pool
// reuse can never affect results). The computed output is cached per
// observation: concurrent campaign workers asking for the same CUT's
// output run the transient once.
type SpiceCUT struct {
	comps Components
	cfg   SpiceConfig
	pool  *sync.Pool // of *spice.Workspace, shared across the Perturb family
	// ticks is the family-wide stimulus tick cache for the trial-template
	// path (OutputScratch). Worker scratches are short-lived — campaigns
	// rebuild them per invocation — so the cache lives here, with the
	// family, and each settling class's stimulus grid is evaluated once
	// per process rather than once per worker per campaign.
	ticks *spice.TickCache

	mu   sync.Mutex
	outs map[outputKey]*wave.Sampled
	// lru orders the cached keys least-recently-used first; Output evicts
	// only the front entry when the cache fills, so a stimulus sweep
	// cycling past maxOutputCache keys cannot flush entries that are
	// still hot (the golden observation every trial compares against).
	lru []outputKey
}

// outputKey identifies one computed output: the observation and the
// stimulus *instance*. Keying on the stimulus pointer (not just its
// period) keeps the cache correct when one CUT is asked about different
// stimuli — e.g. the stimulus-optimization study sweeps phase variants
// that all share the Lissajous period. Campaigns share one stimulus
// object, so they still hit the cache.
type outputKey struct {
	out  Output
	stim *wave.Multitone
}

// NewSpiceCUT builds the SPICE backend from an explicit realization.
func NewSpiceCUT(comps Components, cfg SpiceConfig) (*SpiceCUT, error) {
	if err := comps.Validate(); err != nil {
		return nil, err
	}
	return &SpiceCUT{
		comps: comps,
		cfg:   cfg.withDefaults(),
		pool:  &sync.Pool{New: func() any { return spice.NewWorkspace() }},
		ticks: spice.NewTickCache(),
		outs:  map[outputKey]*wave.Sampled{},
	}, nil
}

// NewSpiceCUTFromParams designs a Tow-Thomas realization for the given
// behavioural parameters (default 1 nF capacitor) and wraps it in the
// SPICE backend.
func NewSpiceCUTFromParams(p Params, cfg SpiceConfig) (*SpiceCUT, error) {
	comps, err := DesignTowThomas(p, DefaultCapacitorF)
	if err != nil {
		return nil, err
	}
	return NewSpiceCUT(comps, cfg)
}

// Params implements CUT via the Tow-Thomas design equations.
func (s *SpiceCUT) Params() Params {
	p, err := s.comps.Params()
	if err != nil {
		// Construction validated the components; unreachable.
		return Params{}
	}
	return p
}

// Components returns the realization the netlist is built from.
func (s *SpiceCUT) Components() Components { return s.comps }

// Describe implements CUT.
func (s *SpiceCUT) Describe() string {
	p := s.Params()
	return fmt.Sprintf("SPICE Tow-Thomas netlist (R=%.4g RQ=%.4g RG=%.4g C=%.4g; f0=%.4g Hz, Q=%.3g, gain=%.3g)",
		s.comps.R, s.comps.RQ, s.comps.RG, s.comps.C, p.F0, p.Q, p.Gain)
}

// Perturb implements CUT. Every deviation — behavioural or component
// level — lands in the realization, so the perturbed netlist is exactly
// what the deviation describes. The workspace pool is inherited.
func (s *SpiceCUT) Perturb(dev Deviation) (CUT, error) {
	p := s.Params()
	_, comps, err := dev.apply(p, s.comps)
	if err != nil {
		return nil, err
	}
	if err := comps.Validate(); err != nil {
		return nil, err
	}
	return &SpiceCUT{
		comps: comps,
		cfg:   s.cfg,
		pool:  s.pool,
		ticks: s.ticks,
		outs:  map[outputKey]*wave.Sampled{},
	}, nil
}

// Output implements CUT by transient simulation of the netlist. The
// band-pass node carries −Q·H_BP of the analytic normalization, so it is
// scaled by −1/Q and re-biased to mid-rail — the AC-coupled level shift
// the analytic backend models with SteadyStateBP.
func (s *SpiceCUT) Output(stim *wave.Multitone, out Output) (wave.Waveform, error) {
	T := stim.Period()
	if T <= 0 {
		return nil, fmt.Errorf("biquad: SPICE CUT needs a periodic stimulus")
	}
	key := outputKey{out: out, stim: stim}
	s.mu.Lock()
	defer s.mu.Unlock()
	if w, ok := s.outs[key]; ok {
		s.touch(key)
		return w, nil
	}
	w, err := s.simulate(stim, out, T)
	if err != nil {
		return nil, err
	}
	// Bound the cache: campaigns reuse one stimulus object, so a handful
	// of entries covers every real hit pattern. A stimulus *sweep* (one
	// fresh Multitone per trial against a long-lived golden CUT) would
	// otherwise grow the map without bound and without hits. Evict only
	// the least-recently-used entry: the sweep's one-shot keys churn
	// through that slot while the repeatedly-hit entries stay cached.
	if len(s.outs) >= maxOutputCache {
		delete(s.outs, s.lru[0])
		copy(s.lru, s.lru[1:])
		s.lru = s.lru[:len(s.lru)-1]
	}
	s.outs[key] = w
	s.lru = append(s.lru, key)
	return w, nil
}

// touch moves key to the most-recently-used end of the eviction order.
// Callers hold s.mu.
func (s *SpiceCUT) touch(key outputKey) {
	for i, k := range s.lru {
		if k == key {
			copy(s.lru[i:], s.lru[i+1:])
			s.lru[len(s.lru)-1] = key
			return
		}
	}
}

// maxOutputCache bounds the per-CUT output cache (entries are one
// StepsPerPeriod-sample waveform each).
const maxOutputCache = 8

// simulate runs the settling + capture transient for one observation.
func (s *SpiceCUT) simulate(stim *wave.Multitone, out Output, T float64) (*wave.Sampled, error) {
	p, err := s.comps.Params()
	if err != nil {
		return nil, err
	}
	f, err := New(p)
	if err != nil {
		return nil, err
	}
	settle := f.SettlingPeriods(T, s.cfg.SettleFrac)
	if settle < 1 {
		settle = 1
	}
	if settle > s.cfg.MaxSettlePeriods {
		settle = s.cfg.MaxSettlePeriods
	}
	ckt, nodes, err := s.comps.Netlist()
	if err != nil {
		return nil, err
	}
	vin, ok := ckt.FindElement("VIN").(*spice.VSource)
	if !ok {
		return nil, fmt.Errorf("biquad: netlist has no VIN source")
	}
	vin.SetWaveform(stim)
	nodeName := nodes.LP
	if out == OutputBP {
		nodeName = nodes.BP
	}
	node := ckt.Node(nodeName)

	ws := s.pool.Get().(*spice.Workspace)
	defer s.pool.Put(ws)
	ts := spice.NewTransientSolverWS(ckt, s.cfg.Options, ws)

	n := s.cfg.StepsPerPeriod
	steps := (settle + 1) * n
	start := settle * n
	samples := make([]float64, n)
	err = ts.Run(T*float64(settle+1), steps, func(k int, t float64, sol *spice.Solution) {
		if k >= start && k < start+n {
			samples[k-start] = sol.VoltageAt(node)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("biquad: SPICE CUT transient: %w", err)
	}
	if out == OutputBP {
		for i := range samples {
			samples[i] = BPRebias - samples[i]/p.Q
		}
	}
	return wave.NewSampled(samples, T)
}
