package biquad

import (
	"math"
	"strings"
	"testing"

	"repro/internal/wave"
)

func paperCUT(t *testing.T) *AnalyticCUT {
	t.Helper()
	c, err := NewAnalyticCUT(Params{F0: 10e3, Q: 0.9, Gain: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func cutStimulus(t *testing.T) *wave.Multitone {
	t.Helper()
	m, err := wave.NewMultitone(0.5, 5e3, []int{1, 2, 3},
		[]float64{0.22, 0.13, 0.08}, []float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAnalyticCUTPerturbBehavioural(t *testing.T) {
	cut := paperCUT(t)
	d, err := cut.Perturb(Deviation{F0Shift: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	// Must match the historical WithF0Shift arithmetic bit for bit.
	if want := cut.Params().WithF0Shift(0.10).F0; d.Params().F0 != want {
		t.Fatalf("F0 after shift = %v, want %v", d.Params().F0, want)
	}
	if d.Params().Q != cut.Params().Q || d.Params().Gain != cut.Params().Gain {
		t.Fatal("pure f0 shift moved Q or gain")
	}
	multi, err := cut.Perturb(Deviation{F0Shift: 0.05, QShift: -0.1, GainShift: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	p := multi.Params()
	if math.Abs(p.Q-0.9*0.9) > 1e-15 || math.Abs(p.Gain-1.02) > 1e-15 {
		t.Fatalf("multi-parameter shift wrong: %+v", p)
	}
	if _, err := cut.Perturb(Deviation{F0Shift: -1}); err == nil {
		t.Fatal("invalid deviation accepted")
	}
}

func TestAnalyticCUTPerturbComponentLevel(t *testing.T) {
	cut := paperCUT(t)
	// A parametric R fault and the equivalent component drift must agree.
	f := Fault{Kind: FaultParametric, Target: TargetR, Frac: 0.10}
	viaFault, err := cut.Perturb(Deviation{Fault: &f})
	if err != nil {
		t.Fatal(err)
	}
	viaDrift, err := cut.Perturb(Deviation{RDrift: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if viaFault.Params() != viaDrift.Params() {
		t.Fatalf("fault %+v vs drift %+v diverge", viaFault.Params(), viaDrift.Params())
	}
	// R drift moves f0 down and gain up, leaves Q (RQ/R shifts... Q = RQ/R).
	p := viaDrift.Params()
	if !(p.F0 < cut.Params().F0 && p.Gain > cut.Params().Gain) {
		t.Fatalf("R drift moved parameters the wrong way: %+v", p)
	}
	// The historical campaign arithmetic: drift the designed components
	// directly and re-derive.
	comps := cut.Components()
	comps.R *= 1.10
	want, err := comps.Params()
	if err != nil {
		t.Fatal(err)
	}
	if p != want {
		t.Fatalf("component drift params %+v, want %+v", p, want)
	}
}

func TestCUTDescribe(t *testing.T) {
	cut := paperCUT(t)
	if !strings.Contains(cut.Describe(), "analytic") {
		t.Fatalf("describe: %s", cut.Describe())
	}
	sp, err := NewSpiceCUTFromParams(cut.Params(), SpiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sp.Describe(), "SPICE") {
		t.Fatalf("describe: %s", sp.Describe())
	}
	if d := sp.Params().F0 - cut.Params().F0; math.Abs(d) > 1e-9 {
		t.Fatalf("backends disagree on golden f0 by %v", d)
	}
}

// TestSpiceCUTOutputMatchesAnalytic cross-validates the two backends at
// waveform level: the SPICE transient steady state must track the exact
// closed-form output within the integrator's accuracy budget, for both
// observations.
func TestSpiceCUTOutputMatchesAnalytic(t *testing.T) {
	stim := cutStimulus(t)
	ana := paperCUT(t)
	sp, err := NewSpiceCUTFromParams(ana.Params(), SpiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range []Output{OutputLP, OutputBP} {
		wa, err := ana.Output(stim, out)
		if err != nil {
			t.Fatal(err)
		}
		ws, err := sp.Output(stim, out)
		if err != nil {
			t.Fatal(err)
		}
		if ws.Period() != stim.Period() {
			t.Fatalf("SPICE output period %v != stimulus %v", ws.Period(), stim.Period())
		}
		worst := 0.0
		T := stim.Period()
		for i := 0; i < 4000; i++ {
			tt := T * float64(i) / 4000
			if d := math.Abs(wa.Eval(tt) - ws.Eval(tt)); d > worst {
				worst = d
			}
		}
		if worst > 2e-3 {
			t.Fatalf("output %v: worst SPICE-vs-analytic waveform error %v V", out, worst)
		}
	}
}

// TestSpiceCUTOutputCached pins the concurrency contract: repeated
// Output calls return the same cached waveform.
func TestSpiceCUTOutputCached(t *testing.T) {
	stim := cutStimulus(t)
	sp, err := NewSpiceCUTFromParams(Params{F0: 10e3, Q: 0.9, Gain: 1}, SpiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := sp.Output(stim, OutputLP)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sp.Output(stim, OutputLP)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Output not cached")
	}
}

// TestSpiceCUTCacheIsPerStimulus guards against stale cache hits when
// one CUT is asked about two different stimuli that share a period (the
// stimulus-optimization study does exactly this with phase variants).
func TestSpiceCUTCacheIsPerStimulus(t *testing.T) {
	base := cutStimulus(t)
	shifted, err := wave.NewMultitone(0.5, 5e3, []int{1, 2, 3},
		[]float64{0.22, 0.13, 0.08}, []float64{0, 1.0, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSpiceCUTFromParams(Params{F0: 10e3, Q: 0.9, Gain: 1}, SpiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	wa, err := sp.Output(base, OutputLP)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := sp.Output(shifted, OutputLP)
	if err != nil {
		t.Fatal(err)
	}
	if wa == wb {
		t.Fatal("same cached waveform returned for two different stimuli")
	}
	// The two responses genuinely differ (phases moved the waveform).
	diff := 0.0
	for i := 0; i < 200; i++ {
		tt := base.Period() * float64(i) / 200
		if d := math.Abs(wa.Eval(tt) - wb.Eval(tt)); d > diff {
			diff = d
		}
	}
	if diff < 1e-3 {
		t.Fatalf("responses to different stimuli suspiciously close (max diff %v)", diff)
	}
}

// TestSpiceCUTFaultedStillSimulates exercises the catastrophic corners
// of the netlist backend: opens and shorts must still produce a finite
// periodic waveform (the campaign depends on it).
func TestSpiceCUTFaultedStillSimulates(t *testing.T) {
	if testing.Short() {
		t.Skip("catastrophic-fault transients are slower")
	}
	stim := cutStimulus(t)
	root, err := NewSpiceCUTFromParams(Params{F0: 10e3, Q: 0.9, Gain: 1}, SpiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Fault{
		{Kind: FaultOpen, Target: TargetRQ},
		{Kind: FaultShort, Target: TargetR},
		{Kind: FaultOpen, Target: TargetC},
		{Kind: FaultShort, Target: TargetRG},
	} {
		f := f
		cut, err := root.Perturb(Deviation{Fault: &f})
		if err != nil {
			t.Fatalf("fault %s: %v", f, err)
		}
		w, err := cut.Output(stim, OutputLP)
		if err != nil {
			t.Fatalf("fault %s: %v", f, err)
		}
		for i := 0; i < 100; i++ {
			v := w.Eval(stim.Period() * float64(i) / 100)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("fault %s: non-finite output %v", f, v)
			}
		}
	}
}

// TestCircuitResponseMatchesAnalyticAcrossBand is the AC-side
// cross-validation: |H| of the realized netlist must track the analytic
// transfer function over a log-spaced grid spanning the band, for both
// the low-pass and band-pass outputs. (The band-pass node carries
// −Q·H_BP of the analytic normalization.)
func TestCircuitResponseMatchesAnalyticAcrossBand(t *testing.T) {
	p := Params{F0: 10e3, Q: 0.9, Gain: 1}
	comps, err := DesignTowThomas(p, DefaultCapacitorF)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	var freqs []float64
	for fr := 100.0; fr <= 1e6; fr *= math.Pow(10, 0.25) {
		freqs = append(freqs, fr)
	}
	lp, err := comps.CircuitResponse("lp", freqs)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := comps.CircuitResponse("bp", freqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, fr := range freqs {
		wantLP := f.Magnitude(fr)
		if d := math.Abs(lp[i] - wantLP); d > 1e-3*wantLP+1e-9 {
			t.Fatalf("LP |H| at %v Hz: circuit %v vs analytic %v", fr, lp[i], wantLP)
		}
		wantBP := p.Q * f.MagnitudeBP(fr)
		if d := math.Abs(bp[i] - wantBP); d > 1e-3*wantBP+1e-9 {
			t.Fatalf("BP |H| at %v Hz: circuit %v vs analytic %v", fr, bp[i], wantBP)
		}
	}
}
