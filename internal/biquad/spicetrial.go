package biquad

import (
	"fmt"
	"math"

	"repro/internal/spice"
	"repro/internal/wave"
)

// SpiceTrialScratch carries a per-worker spice.CircuitTemplate plus the
// sample buffer one SPICE trial needs. A campaign worker owns one
// scratch and threads it through every OutputScratch call: the first
// call elaborates the Tow-Thomas netlist, compiles the template and
// sizes the buffers; every later trial only refreshes element values
// and reruns — no parse, no restamp layout, no allocation. Results are
// bit-identical to SpiceCUT.Output (the tests pin this), so routing
// through a scratch is purely a speed decision.
//
// The returned waveform aliases the scratch sample buffer and is valid
// only until the next OutputScratch call on the same scratch — exactly
// the lifetime of one trial, matching how core.TrialScratch hands its
// capture buffers to the signature layer. Like those buffers, a scratch
// is not safe for concurrent use.
type SpiceTrialScratch struct {
	cfg     SpiceConfig
	tmpl    *spice.CircuitTemplate
	lp, bp  spice.NodeID
	samples []float64
	out     wave.Sampled

	// Per-prepared-trial state consumed by finishTrial.
	p   Params
	T   float64
	obs Output
	cur []float64
}

// ensure (re)builds the compiled template when the scratch is fresh or
// the CUT's configuration changed. The netlist values are refreshed per
// trial, so the template itself only depends on the topology and cfg.
func (sc *SpiceTrialScratch) ensure(s *SpiceCUT) error {
	if sc.tmpl != nil && sc.cfg == s.cfg {
		return nil
	}
	ckt, nodes, err := s.comps.Netlist()
	if err != nil {
		return err
	}
	tmpl, err := spice.NewCircuitTemplate(ckt, s.cfg.Options)
	if err != nil {
		return err
	}
	sc.tmpl = tmpl
	sc.lp = ckt.Node(nodes.LP)
	sc.bp = ckt.Node(nodes.BP)
	sc.cfg = s.cfg
	return nil
}

// refresh points the template's elements at this CUT's realization. The
// element names follow Components.Netlist: RG/RQ are the designed
// resistors, RF/R12/R23/R33 all carry the common R, and both
// integrator capacitors carry C.
func (sc *SpiceTrialScratch) refresh(comps Components) error {
	t := sc.tmpl
	if err := t.SetResistance("RG", comps.RG); err != nil {
		return err
	}
	if err := t.SetResistance("RQ", comps.RQ); err != nil {
		return err
	}
	for _, name := range [...]string{"RF", "R12", "R23", "R33"} {
		if err := t.SetResistance(name, comps.R); err != nil {
			return err
		}
	}
	if err := t.SetCapacitance("C1", comps.C); err != nil {
		return err
	}
	return t.SetCapacitance("C2", comps.C)
}

// settlingPeriods is New(p).SettlingPeriods(period, frac) without the
// Filter allocation — expression-for-expression identical so the
// template path settles for exactly as many periods as the rebuild
// path.
func settlingPeriods(p Params, period, frac float64) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if frac <= 0 || frac >= 1 {
		frac = 0.01
	}
	w0 := 2 * math.Pi * p.F0
	tau := 2 * p.Q / w0
	t := -tau * math.Log(frac)
	return int(math.Ceil(t / period)), nil
}

// OutputScratch is Output served through a reusable trial scratch: the
// scratch's compiled circuit template is refreshed to this CUT's
// component values and rerun, skipping netlist elaboration, solver
// construction and the per-CUT output cache. Samples are bit-identical
// to Output at any worker count. With a nil scratch — or a config with
// Rebuild set — it falls back to Output.
func (s *SpiceCUT) OutputScratch(stim *wave.Multitone, out Output, sc *SpiceTrialScratch) (wave.Waveform, error) {
	if sc == nil || s.cfg.Rebuild {
		return s.Output(stim, out)
	}
	tr, err := s.prepareTrial(stim, out, sc)
	if err != nil {
		return nil, err
	}
	if err := sc.tmpl.RunTrial(tr); err != nil {
		return nil, fmt.Errorf("biquad: SPICE CUT transient: %w", err)
	}
	return sc.finishTrial()
}

// prepareTrial readies sc's template for one trial of this CUT — ensure
// the compiled template, refresh element values and stimulus, size the
// sample window — and returns the trial spec. finishTrial consumes the
// state it leaves in sc.
func (s *SpiceCUT) prepareTrial(stim *wave.Multitone, out Output, sc *SpiceTrialScratch) (spice.Trial, error) {
	T := stim.Period()
	if T <= 0 {
		return spice.Trial{}, fmt.Errorf("biquad: SPICE CUT needs a periodic stimulus")
	}
	if err := sc.ensure(s); err != nil {
		return spice.Trial{}, err
	}
	// Serve tick tables from the family-wide cache: the scratch (and its
	// template) dies with the campaign invocation, the tick grids do not.
	sc.tmpl.ShareTickCache(s.ticks)
	p, err := s.comps.Params()
	if err != nil {
		return spice.Trial{}, err
	}
	settle, err := settlingPeriods(p, T, s.cfg.SettleFrac)
	if err != nil {
		return spice.Trial{}, err
	}
	if settle < 1 {
		settle = 1
	}
	if settle > s.cfg.MaxSettlePeriods {
		settle = s.cfg.MaxSettlePeriods
	}
	if err := sc.refresh(s.comps); err != nil {
		return spice.Trial{}, err
	}
	if err := sc.tmpl.SetVSourceWaveform("VIN", stim); err != nil {
		return spice.Trial{}, err
	}
	node := sc.lp
	if out == OutputBP {
		node = sc.bp
	}
	n := s.cfg.StepsPerPeriod
	if cap(sc.samples) < n {
		sc.samples = make([]float64, n)
	}
	sc.p, sc.T, sc.obs = p, T, out
	sc.cur = sc.samples[:n]
	settleSteps := settle * n
	return spice.Trial{
		Dur:    T * float64(settle+1),
		Steps:  settleSteps + n,
		Record: node,
		Start:  settleSteps,
		Out:    sc.cur,
	}, nil
}

// SpiceTrialBatch is the lane pool of the batched trial engine: up to
// spice/num.BatchLanes trials in flight, each on its own scratch, run
// in lockstep through the fused solve kernel. Reuse one batch across
// OutputBatch calls to keep the lanes' templates warm.
type SpiceTrialBatch struct {
	lanes []SpiceTrialScratch
	ts    []*spice.CircuitTemplate
}

// OutputBatch streams one observation per CUT through a pool of trial
// lanes — the cross-trial batched transient engine. Trials run
// interleaved (several independent per-step solve chains in flight, see
// spice.RunTrialsBatch), so a block of trials clears in well under the
// sequential per-trial time, while every trial still executes exactly
// the rebuild path's floating-point sequence: emitted waveforms are
// bit-identical to cuts[i].Output(stim, out).
//
// emit(i, w) is called once per CUT, in completion order (not index
// order); w aliases lane scratch and is valid only inside the call.
// The CUTs must share one configuration — a mixed or Rebuild-configured
// block, or a nil batch, falls back to the sequential scratch path.
func SpiceOutputBatch(cuts []*SpiceCUT, stim *wave.Multitone, out Output, sb *SpiceTrialBatch, emit func(i int, w wave.Waveform) error) error {
	if len(cuts) == 0 {
		return nil
	}
	sequential := sb == nil || cuts[0].cfg.Rebuild
	for _, c := range cuts {
		if c.cfg != cuts[0].cfg {
			sequential = true
		}
	}
	if sequential {
		var sc SpiceTrialScratch
		for i, c := range cuts {
			psc := &sc
			if c.cfg.Rebuild {
				psc = nil
			}
			w, err := c.OutputScratch(stim, out, psc)
			if err != nil {
				return err
			}
			if err := emit(i, w); err != nil {
				return err
			}
		}
		return nil
	}
	lanes := spice.BatchLanes
	if lanes > len(cuts) {
		lanes = len(cuts)
	}
	for len(sb.lanes) < lanes {
		sb.lanes = append(sb.lanes, SpiceTrialScratch{})
	}
	// Warm every lane's template against the first CUT (they all share
	// the netlist topology and config) so the template pointers exist
	// before the batch starts; per-trial prepare only refreshes values.
	sb.ts = sb.ts[:0]
	for l := 0; l < lanes; l++ {
		if err := sb.lanes[l].ensure(cuts[0]); err != nil {
			return err
		}
		sb.ts = append(sb.ts, sb.lanes[l].tmpl)
	}
	return spice.RunTrialsBatch(sb.ts, len(cuts),
		func(i, lane int) (spice.Trial, error) {
			return cuts[i].prepareTrial(stim, out, &sb.lanes[lane])
		},
		func(i, lane int) error {
			w, err := sb.lanes[lane].finishTrial()
			if err != nil {
				return err
			}
			return emit(i, w)
		})
}

// finishTrial turns the samples a completed trial left in sc into the
// observed waveform (the BP node carries −Q·H_BP, rescaled and rebiased
// exactly as Output does).
func (sc *SpiceTrialScratch) finishTrial() (wave.Waveform, error) {
	samples := sc.cur
	if sc.obs == OutputBP {
		for i := range samples {
			samples[i] = BPRebias - samples[i]/sc.p.Q
		}
	}
	if err := sc.out.Reuse(samples, sc.T); err != nil {
		return nil, err
	}
	return &sc.out, nil
}
