package biquad

import (
	"errors"
	"math"
	"testing"

	"repro/internal/wave"
)

// trialConfig keeps the scratch tests fast: fewer steps per period than
// the default, everything else stock.
func trialConfig() SpiceConfig {
	return SpiceConfig{StepsPerPeriod: 256}
}

// TestOutputScratchMatchesOutput pins the scratch path's core contract:
// for golden, parametric and catastrophic CUTs, both observations, the
// template-served waveform is bit-identical to the rebuild-per-trial
// Output — one scratch reused across all trials, like a campaign worker.
func TestOutputScratchMatchesOutput(t *testing.T) {
	stim := cutStimulus(t)
	root, err := NewSpiceCUTFromParams(Params{F0: 10e3, Q: 0.9, Gain: 1}, trialConfig())
	if err != nil {
		t.Fatal(err)
	}
	openRQ := Fault{Kind: FaultOpen, Target: TargetRQ}
	shortC := Fault{Kind: FaultShort, Target: TargetC}
	devs := []Deviation{
		{}, // golden
		{RDrift: 0.10},
		{F0Shift: 0.05, QShift: -0.1},
		{Fault: &openRQ}, // pushes Q and the settle count to the cap
		{Fault: &shortC},
	}
	var sc SpiceTrialScratch
	T := stim.Period()
	for di, dev := range devs {
		cut, err := root.Perturb(dev)
		if err != nil {
			t.Fatalf("dev %d: %v", di, err)
		}
		sp := cut.(*SpiceCUT)
		for _, out := range []Output{OutputLP, OutputBP} {
			want, err := sp.Output(stim, out)
			if err != nil {
				t.Fatalf("dev %d out %v: rebuild: %v", di, out, err)
			}
			got, err := sp.OutputScratch(stim, out, &sc)
			if err != nil {
				t.Fatalf("dev %d out %v: scratch: %v", di, out, err)
			}
			if got.Period() != want.Period() {
				t.Fatalf("dev %d out %v: period %v != %v", di, out, got.Period(), want.Period())
			}
			for i := 0; i < 1024; i++ {
				tt := T * float64(i) / 1024
				if g, w := got.Eval(tt), want.Eval(tt); g != w {
					t.Fatalf("dev %d out %v: t=%v: scratch %v, rebuild %v", di, out, tt, g, w)
				}
			}
		}
	}
}

// TestOutputScratchNilAndRebuildFallBack checks both fallbacks: a nil
// scratch and a Rebuild-configured CUT must route to Output (observable
// through its cache returning the identical waveform pointer).
func TestOutputScratchNilAndRebuildFallBack(t *testing.T) {
	stim := cutStimulus(t)
	sp, err := NewSpiceCUTFromParams(Params{F0: 10e3, Q: 0.9, Gain: 1}, trialConfig())
	if err != nil {
		t.Fatal(err)
	}
	cached, err := sp.Output(stim, OutputLP)
	if err != nil {
		t.Fatal(err)
	}
	viaNil, err := sp.OutputScratch(stim, OutputLP, nil)
	if err != nil {
		t.Fatal(err)
	}
	if viaNil != cached {
		t.Fatal("nil scratch did not fall back to the cached Output")
	}
	cfg := trialConfig()
	cfg.Rebuild = true
	spr, err := NewSpiceCUTFromParams(Params{F0: 10e3, Q: 0.9, Gain: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sc SpiceTrialScratch
	a, err := spr.OutputScratch(stim, OutputLP, &sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spr.Output(stim, OutputLP)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Rebuild config did not fall back to Output")
	}
	if sc.tmpl != nil {
		t.Fatal("Rebuild fallback still compiled a template")
	}
}

// TestSpiceCUTCacheEvictionKeepsHotEntries pins the cache-eviction fix:
// a stimulus sweep cycling fresh Multitone instances past the cache
// capacity must not flush the golden observation that every trial
// re-reads — only least-recently-used one-shot entries may go.
func TestSpiceCUTCacheEvictionKeepsHotEntries(t *testing.T) {
	golden := cutStimulus(t)
	sp, err := NewSpiceCUTFromParams(Params{F0: 10e3, Q: 0.9, Gain: 1}, trialConfig())
	if err != nil {
		t.Fatal(err)
	}
	hot, err := sp.Output(golden, OutputLP)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*maxOutputCache; i++ {
		variant, err := wave.NewMultitone(0.5, 5e3, []int{1, 2, 3},
			[]float64{0.22, 0.13, 0.08}, []float64{0, 0.1 * float64(i+1), 2.0})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sp.Output(variant, OutputLP); err != nil {
			t.Fatal(err)
		}
		again, err := sp.Output(golden, OutputLP)
		if err != nil {
			t.Fatal(err)
		}
		if again != hot {
			t.Fatalf("sweep variant %d evicted the hot golden entry", i)
		}
	}
	if len(sp.outs) > maxOutputCache || len(sp.outs) != len(sp.lru) {
		t.Fatalf("cache bound broken: %d entries, %d lru keys", len(sp.outs), len(sp.lru))
	}
}

// TestOutputScratchWarmAllocationFree extends the spice-level zero-alloc
// pin up through the biquad layer: a warm scratch trial — template
// compiled, buffers sized, tick tables cached — must not allocate.
func TestOutputScratchWarmAllocationFree(t *testing.T) {
	stim := cutStimulus(t)
	sp, err := NewSpiceCUTFromParams(Params{F0: 10e3, Q: 0.9, Gain: 1}, trialConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sc SpiceTrialScratch
	if _, err := sp.OutputScratch(stim, OutputLP, &sc); err != nil {
		t.Fatal(err)
	}
	var trialErr error
	allocs := testing.AllocsPerRun(10, func() {
		w, err := sp.OutputScratch(stim, OutputLP, &sc)
		if err != nil {
			trialErr = err
		}
		if math.IsNaN(w.Eval(0)) {
			trialErr = errors.New("NaN sample from warm trial")
		}
	})
	if trialErr != nil {
		t.Fatal(trialErr)
	}
	if allocs != 0 {
		t.Fatalf("warm OutputScratch allocates %.1f times per run, want 0", allocs)
	}
}

// TestSpiceOutputBatchMatchesOutput pins the batched trial engine at
// the biquad layer: a block of deviated CUTs — golden, parametric,
// catastrophic, more trials than lanes so refill and the tail path both
// run — streamed through SpiceOutputBatch must emit exactly one
// waveform per CUT, each bit-identical to that CUT's rebuild Output,
// for both observations.
func TestSpiceOutputBatchMatchesOutput(t *testing.T) {
	stim := cutStimulus(t)
	root, err := NewSpiceCUTFromParams(Params{F0: 10e3, Q: 0.9, Gain: 1}, trialConfig())
	if err != nil {
		t.Fatal(err)
	}
	openRQ := Fault{Kind: FaultOpen, Target: TargetRQ}
	shortC := Fault{Kind: FaultShort, Target: TargetC}
	devs := []Deviation{
		{},
		{RDrift: 0.10},
		{F0Shift: 0.05, QShift: -0.1},
		{Fault: &openRQ},
		{Fault: &shortC},
		{RDrift: -0.08},
		{CDrift: 0.12},
	}
	cuts := make([]*SpiceCUT, len(devs))
	for i, dev := range devs {
		c, err := root.Perturb(dev)
		if err != nil {
			t.Fatalf("dev %d: %v", i, err)
		}
		cuts[i] = c.(*SpiceCUT)
	}
	var sb SpiceTrialBatch
	T := stim.Period()
	for _, out := range []Output{OutputLP, OutputBP} {
		emitted := make([]bool, len(cuts))
		err := SpiceOutputBatch(cuts, stim, out, &sb, func(i int, w wave.Waveform) error {
			if emitted[i] {
				t.Fatalf("out %v: CUT %d emitted twice", out, i)
			}
			emitted[i] = true
			want, err := cuts[i].Output(stim, out)
			if err != nil {
				return err
			}
			if w.Period() != want.Period() {
				t.Fatalf("out %v cut %d: period %v != %v", out, i, w.Period(), want.Period())
			}
			for k := 0; k < 1024; k++ {
				tt := T * float64(k) / 1024
				if g, r := w.Eval(tt), want.Eval(tt); g != r {
					t.Fatalf("out %v cut %d: t=%v: batch %v, rebuild %v", out, i, tt, g, r)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range emitted {
			if !e {
				t.Fatalf("out %v: CUT %d never emitted", out, i)
			}
		}
	}
}

// TestSpiceOutputBatchFallsBackSequential checks the sequential routes:
// a nil batch and a Rebuild-configured block must still emit one
// waveform per CUT (through OutputScratch / Output), and an emit error
// must stop the block.
func TestSpiceOutputBatchFallsBackSequential(t *testing.T) {
	stim := cutStimulus(t)
	sp, err := NewSpiceCUTFromParams(Params{F0: 10e3, Q: 0.9, Gain: 1}, trialConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := trialConfig()
	cfg.Rebuild = true
	spr, err := NewSpiceCUTFromParams(Params{F0: 10e3, Q: 0.9, Gain: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, block := range map[string][]*SpiceCUT{
		"nil batch": {sp, sp},
		"rebuild":   {spr, spr},
	} {
		var sb *SpiceTrialBatch
		if name == "rebuild" {
			sb = new(SpiceTrialBatch)
		}
		count := 0
		err := SpiceOutputBatch(block, stim, OutputLP, sb, func(i int, w wave.Waveform) error {
			count++
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if count != len(block) {
			t.Fatalf("%s: emitted %d of %d", name, count, len(block))
		}
	}
	if err := SpiceOutputBatch(nil, stim, OutputLP, nil, nil); err != nil {
		t.Fatalf("empty block: %v", err)
	}
	wantErr := errors.New("stop")
	err = SpiceOutputBatch([]*SpiceCUT{sp, sp}, stim, OutputLP, nil,
		func(i int, w wave.Waveform) error { return wantErr })
	if err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("emit error not propagated: %v", err)
	}
}
