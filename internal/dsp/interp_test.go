package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinearInterpExactAtKnots(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []float64{5, 7, 4}
	for i := range xs {
		if got := LinearInterp(xs, ys, xs[i]); got != ys[i] {
			t.Fatalf("interp at knot %d = %v, want %v", i, got, ys[i])
		}
	}
}

func TestLinearInterpMidpoint(t *testing.T) {
	xs := []float64{0, 2}
	ys := []float64{0, 10}
	if got := LinearInterp(xs, ys, 1); math.Abs(got-5) > 1e-12 {
		t.Fatalf("midpoint = %v, want 5", got)
	}
}

func TestLinearInterpExtrapolates(t *testing.T) {
	xs := []float64{0, 1}
	ys := []float64{0, 2}
	if got := LinearInterp(xs, ys, 2); math.Abs(got-4) > 1e-12 {
		t.Fatalf("extrapolation = %v, want 4", got)
	}
	if got := LinearInterp(xs, ys, -1); math.Abs(got+2) > 1e-12 {
		t.Fatalf("extrapolation = %v, want -2", got)
	}
}

func TestLinearInterpSinglePoint(t *testing.T) {
	if got := LinearInterp([]float64{1}, []float64{9}, 123); got != 9 {
		t.Fatalf("single knot = %v, want 9", got)
	}
}

func TestSplineInterpolatesKnots(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0, 1, 0, -1, 0}
	s, err := NewSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got := s.Eval(xs[i]); math.Abs(got-ys[i]) > 1e-10 {
			t.Fatalf("spline at knot %d = %v, want %v", i, got, ys[i])
		}
	}
}

func TestSplineApproximatesSine(t *testing.T) {
	var xs, ys []float64
	for i := 0; i <= 40; i++ {
		x := float64(i) / 40 * 2 * math.Pi
		xs = append(xs, x)
		ys = append(ys, math.Sin(x))
	}
	s, err := NewSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.05; x < 2*math.Pi; x += 0.037 {
		if err := math.Abs(s.Eval(x) - math.Sin(x)); err > 2e-4 {
			t.Fatalf("spline error %v at x=%v", err, x)
		}
	}
}

func TestSplineRejectsBadKnots(t *testing.T) {
	if _, err := NewSpline([]float64{0, 0, 1}, []float64{1, 2, 3}); err != ErrNotMonotone {
		t.Fatalf("err = %v, want ErrNotMonotone", err)
	}
	if _, err := NewSpline([]float64{0}, []float64{1}); err == nil {
		t.Fatal("expected error for single knot")
	}
}

func TestSplineTwoKnotsIsLinear(t *testing.T) {
	s, err := NewSpline([]float64{0, 2}, []float64{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Eval(1); math.Abs(got-2) > 1e-12 {
		t.Fatalf("two-knot spline at 1 = %v, want 2", got)
	}
}

func TestResample(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []float64{0, 2, 4}
	ox, oy := Resample(xs, ys, 5)
	if len(ox) != 5 || ox[0] != 0 || ox[4] != 2 {
		t.Fatalf("resample grid wrong: %v", ox)
	}
	for i := range ox {
		if math.Abs(oy[i]-2*ox[i]) > 1e-12 {
			t.Fatalf("resample value[%d] = %v, want %v", i, oy[i], 2*ox[i])
		}
	}
}

func TestTrapzUniform(t *testing.T) {
	// Integral of x over [0,1] with 101 samples = 0.5.
	n := 101
	y := make([]float64, n)
	for i := range y {
		y[i] = float64(i) / float64(n-1)
	}
	got := TrapzUniform(y, 1.0/float64(n-1))
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("TrapzUniform = %v, want 0.5", got)
	}
}

func TestTrapzNonUniform(t *testing.T) {
	xs := []float64{0, 0.5, 2}
	ys := []float64{0, 0.5, 2} // y = x
	if got := Trapz(xs, ys); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Trapz = %v, want 2", got)
	}
}

func TestSimpson(t *testing.T) {
	got := Simpson(math.Sin, 0, math.Pi, 100)
	if math.Abs(got-2) > 1e-7 {
		t.Fatalf("Simpson(sin, 0, pi) = %v, want 2", got)
	}
	// Odd n should be fixed up internally.
	got = Simpson(func(x float64) float64 { return x * x }, 0, 1, 3)
	if math.Abs(got-1.0/3.0) > 1e-9 {
		t.Fatalf("Simpson(x^2) = %v, want 1/3", got)
	}
}

func TestWindows(t *testing.T) {
	h := Hann(8)
	if h[0] > 1e-12 || h[7] > 1e-12 {
		t.Fatalf("Hann endpoints not ~0: %v %v", h[0], h[7])
	}
	b := Blackman(9)
	if math.Abs(b[4]-1) > 1e-9 {
		t.Fatalf("Blackman center = %v, want 1", b[4])
	}
	if Hann(1)[0] != 1 || Blackman(1)[0] != 1 {
		t.Fatal("degenerate single-point windows must be 1")
	}
	w := ApplyWindow([]float64{2, 2, 2, 2, 2, 2, 2, 2}, h)
	if w[0] != 0 {
		t.Fatal("ApplyWindow failed")
	}
}

func TestRMS(t *testing.T) {
	if got := RMS([]float64{3, 3, 3}); math.Abs(got-3) > 1e-12 {
		t.Fatalf("RMS = %v, want 3", got)
	}
	if RMS(nil) != 0 {
		t.Fatal("RMS(nil) should be 0")
	}
}

// Property: spline evaluation stays within a modest multiple of the knot
// range for interior evaluation (no wild oscillations on random data).
func TestSplineBoundedProperty(t *testing.T) {
	prop := func(raw [6]int8) bool {
		xs := []float64{0, 1, 2, 3, 4, 5}
		ys := make([]float64, 6)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			ys[i] = float64(v)
			lo = math.Min(lo, ys[i])
			hi = math.Max(hi, ys[i])
		}
		s, err := NewSpline(xs, ys)
		if err != nil {
			return false
		}
		span := hi - lo + 1
		for x := 0.0; x <= 5; x += 0.1 {
			v := s.Eval(x)
			if v < lo-2*span || v > hi+2*span {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
