package dsp

import "math"

// TrapzUniform integrates samples y taken at uniform spacing dx using the
// trapezoidal rule.
func TrapzUniform(y []float64, dx float64) float64 {
	n := len(y)
	if n < 2 {
		return 0
	}
	s := 0.5 * (y[0] + y[n-1])
	for _, v := range y[1 : n-1] {
		s += v
	}
	return s * dx
}

// Trapz integrates y(x) sampled at (possibly non-uniform) points xs.
func Trapz(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("dsp: Trapz length mismatch")
	}
	s := 0.0
	for i := 1; i < len(xs); i++ {
		s += 0.5 * (ys[i] + ys[i-1]) * (xs[i] - xs[i-1])
	}
	return s
}

// Simpson integrates f over [a, b] with n (even, >= 2) intervals using
// composite Simpson's rule.
func Simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n < 2 {
		n = 2
	}
	if n%2 != 0 {
		n++
	}
	h := (b - a) / float64(n)
	s := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			s += 4 * f(x)
		} else {
			s += 2 * f(x)
		}
	}
	return s * h / 3
}

// Window functions for spectral analysis.

// Hann returns the n-point Hann window.
func Hann(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// Blackman returns the n-point Blackman window.
func Blackman(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		t := 2 * math.Pi * float64(i) / float64(n-1)
		w[i] = 0.42 - 0.5*math.Cos(t) + 0.08*math.Cos(2*t)
	}
	return w
}

// ApplyWindow multiplies x by window w element-wise, returning a new slice.
func ApplyWindow(x, w []float64) []float64 {
	if len(x) != len(w) {
		panic("dsp: ApplyWindow length mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] * w[i]
	}
	return out
}

// RMS returns the root-mean-square of x.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s / float64(len(x)))
}
