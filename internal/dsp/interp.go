package dsp

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNotMonotone is returned when interpolation knots are not strictly
// increasing.
var ErrNotMonotone = errors.New("dsp: knots must be strictly increasing")

// LinearInterp evaluates piecewise-linear interpolation of (xs, ys) at x.
// Outside the knot range the nearest segment is extrapolated.
func LinearInterp(xs, ys []float64, x float64) float64 {
	n := len(xs)
	if n == 0 || n != len(ys) {
		panic("dsp: LinearInterp bad input")
	}
	if n == 1 {
		return ys[0]
	}
	i := sort.SearchFloat64s(xs, x)
	if i <= 0 {
		i = 1
	}
	if i >= n {
		i = n - 1
	}
	x0, x1 := xs[i-1], xs[i]
	y0, y1 := ys[i-1], ys[i]
	if x1 == x0 {
		return y0
	}
	return y0 + (y1-y0)*(x-x0)/(x1-x0)
}

// Spline is a natural cubic spline through a set of knots.
type Spline struct {
	xs, ys []float64
	m      []float64 // second derivatives at knots
}

// NewSpline builds a natural cubic spline. xs must be strictly increasing
// and len(xs) == len(ys) >= 2.
func NewSpline(xs, ys []float64) (*Spline, error) {
	n := len(xs)
	if n < 2 || n != len(ys) {
		return nil, fmt.Errorf("dsp: spline needs >=2 matched knots, got %d/%d", len(xs), len(ys))
	}
	for i := 1; i < n; i++ {
		if xs[i] <= xs[i-1] {
			return nil, ErrNotMonotone
		}
	}
	s := &Spline{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
		m:  make([]float64, n),
	}
	// Tridiagonal solve (Thomas algorithm) for natural boundary conditions.
	if n > 2 {
		a := make([]float64, n) // sub-diagonal
		b := make([]float64, n) // diagonal
		c := make([]float64, n) // super-diagonal
		d := make([]float64, n) // rhs
		for i := 1; i < n-1; i++ {
			h0 := xs[i] - xs[i-1]
			h1 := xs[i+1] - xs[i]
			a[i] = h0
			b[i] = 2 * (h0 + h1)
			c[i] = h1
			d[i] = 6 * ((ys[i+1]-ys[i])/h1 - (ys[i]-ys[i-1])/h0)
		}
		// Forward sweep over interior unknowns m[1..n-2].
		for i := 2; i < n-1; i++ {
			w := a[i] / b[i-1]
			b[i] -= w * c[i-1]
			d[i] -= w * d[i-1]
		}
		for i := n - 2; i >= 1; i-- {
			s.m[i] = (d[i] - c[i]*s.m[i+1]) / b[i]
		}
	}
	return s, nil
}

// Eval evaluates the spline at x (clamped extrapolation: outside the knot
// range the boundary cubic segment is extended).
func (s *Spline) Eval(x float64) float64 {
	n := len(s.xs)
	i := sort.SearchFloat64s(s.xs, x)
	if i <= 0 {
		i = 1
	}
	if i >= n {
		i = n - 1
	}
	h := s.xs[i] - s.xs[i-1]
	t := (x - s.xs[i-1]) / h
	a := s.m[i-1] * h * h / 6
	b := s.m[i] * h * h / 6
	return (1-t)*s.ys[i-1] + t*s.ys[i] +
		(1-t)*((1-t)*(1-t)-1)*a + t*(t*t-1)*b
}

// Resample evaluates a function sampled on xs/ys at n uniformly spaced
// points spanning [xs[0], xs[len-1]] using linear interpolation.
func Resample(xs, ys []float64, n int) (outX, outY []float64) {
	if n < 2 {
		panic("dsp: Resample needs n >= 2")
	}
	outX = make([]float64, n)
	outY = make([]float64, n)
	lo, hi := xs[0], xs[len(xs)-1]
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		outX[i] = x
		outY[i] = LinearInterp(xs, ys, x)
	}
	return outX, outY
}
