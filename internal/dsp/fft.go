// Package dsp is the signal-processing substrate: FFT, spectra, windows,
// interpolation, and numerical integration. The paper's workflow is
// MATLAB-shaped (repro note: Go has no DSP standard library), so the
// pieces the experiments need are implemented here from scratch on
// complex128/float64 slices.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the in-place-free discrete Fourier transform of x.
// Power-of-two lengths use an iterative radix-2 Cooley-Tukey; all other
// lengths use Bluestein's algorithm so callers never need to pad.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		out := append([]complex128(nil), x...)
		radix2(out, false)
		return out
	}
	return bluestein(x, false)
}

// IFFT computes the inverse DFT (including the 1/n normalization).
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	var out []complex128
	if n&(n-1) == 0 {
		out = append([]complex128(nil), x...)
		radix2(out, true)
	} else {
		out = bluestein(x, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// radix2 runs an iterative bit-reversal Cooley-Tukey FFT in place.
// len(x) must be a power of two.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	if n == 1 {
		return
	}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Rect(1, step)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution, which is
// evaluated with power-of-two FFTs.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w[k] = exp(sign*i*pi*k^2/n)
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k*k may overflow for huge n; modulo 2n keeps the angle exact.
		kk := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Rect(1, sign*math.Pi*float64(kk)/float64(n))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	scale := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * scale * chirp[k]
	}
	return out
}

// FFTReal transforms a real signal, returning the full complex spectrum.
func FFTReal(x []float64) []complex128 {
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	return FFT(cx)
}

// Spectrum holds a one-sided amplitude/phase spectrum of a real signal.
type Spectrum struct {
	Freq  []float64 // bin frequencies in Hz
	Amp   []float64 // single-sided amplitude (volts for a voltage signal)
	Phase []float64 // radians
}

// AmplitudeSpectrum returns the single-sided spectrum of real samples x
// taken at sample rate fs. DC and (for even n) Nyquist bins are not
// doubled.
func AmplitudeSpectrum(x []float64, fs float64) Spectrum {
	n := len(x)
	if n == 0 {
		return Spectrum{}
	}
	X := FFTReal(x)
	half := n/2 + 1
	sp := Spectrum{
		Freq:  make([]float64, half),
		Amp:   make([]float64, half),
		Phase: make([]float64, half),
	}
	for k := 0; k < half; k++ {
		sp.Freq[k] = float64(k) * fs / float64(n)
		mag := cmplx.Abs(X[k]) / float64(n)
		if k != 0 && !(n%2 == 0 && k == n/2) {
			mag *= 2
		}
		sp.Amp[k] = mag
		sp.Phase[k] = cmplx.Phase(X[k])
	}
	return sp
}

// DominantBin returns the index of the largest non-DC amplitude bin.
func (s Spectrum) DominantBin() int {
	best, bestAmp := 1, 0.0
	for k := 1; k < len(s.Amp); k++ {
		if s.Amp[k] > bestAmp {
			best, bestAmp = k, s.Amp[k]
		}
	}
	return best
}

// Goertzel evaluates the DFT of real samples x (sample rate fs) at a
// single frequency f using the Goertzel recurrence — the cheap way to
// measure one tone's complex amplitude without a full FFT, used by the
// spectral alternate-test baseline. The result is normalized like a
// single-sided spectrum bin: |result| is the tone's amplitude when f
// lands on a coherent bin.
func Goertzel(x []float64, fs, f float64) complex128 {
	n := len(x)
	if n == 0 {
		return 0
	}
	w := 2 * math.Pi * f / fs
	cw, sw := math.Cos(w), math.Sin(w)
	coeff := 2 * cw
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	re := s1*cw - s2
	im := s1 * sw
	scale := 2 / float64(n)
	if f == 0 {
		scale = 1 / float64(n)
	}
	return complex(re*scale, im*scale)
}

// THD returns the total harmonic distortion (ratio, not dB) of the signal
// assuming fundamental at bin f0Bin: sqrt(sum harmonics^2)/fundamental.
func (s Spectrum) THD(f0Bin, nHarm int) (float64, error) {
	if f0Bin <= 0 || f0Bin >= len(s.Amp) {
		return 0, fmt.Errorf("dsp: fundamental bin %d out of range", f0Bin)
	}
	fund := s.Amp[f0Bin]
	if fund == 0 {
		return 0, fmt.Errorf("dsp: zero fundamental")
	}
	sum := 0.0
	for h := 2; h <= nHarm; h++ {
		k := f0Bin * h
		if k >= len(s.Amp) {
			break
		}
		sum += s.Amp[k] * s.Amp[k]
	}
	return math.Sqrt(sum) / fund, nil
}
