package dsp

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestGoertzelSingleTone(t *testing.T) {
	fs := 10000.0
	n := 1000
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / fs
		x[i] = 0.3 + 0.7*math.Sin(2*math.Pi*500*ti+0.4)
	}
	g := Goertzel(x, fs, 500)
	if math.Abs(cmplx.Abs(g)-0.7) > 1e-9 {
		t.Fatalf("|Goertzel(500)| = %v, want 0.7", cmplx.Abs(g))
	}
	dc := Goertzel(x, fs, 0)
	if math.Abs(cmplx.Abs(dc)-0.3) > 1e-9 {
		t.Fatalf("|Goertzel(0)| = %v, want 0.3", cmplx.Abs(dc))
	}
	// A bin with no energy.
	off := Goertzel(x, fs, 1300)
	if cmplx.Abs(off) > 1e-9 {
		t.Fatalf("empty bin amplitude = %v", cmplx.Abs(off))
	}
}

func TestGoertzelMatchesSpectrum(t *testing.T) {
	fs := 8000.0
	n := 800
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / fs
		x[i] = 0.5*math.Sin(2*math.Pi*100*ti) + 0.25*math.Sin(2*math.Pi*300*ti+1.1)
	}
	sp := AmplitudeSpectrum(x, fs)
	for _, f := range []float64{100, 300} {
		bin := int(math.Round(f * float64(n) / fs))
		g := cmplx.Abs(Goertzel(x, fs, f))
		if math.Abs(g-sp.Amp[bin]) > 1e-9 {
			t.Fatalf("Goertzel(%v) = %v vs spectrum %v", f, g, sp.Amp[bin])
		}
	}
}

func TestGoertzelEmpty(t *testing.T) {
	if Goertzel(nil, 1000, 100) != 0 {
		t.Fatal("empty input should give 0")
	}
}
