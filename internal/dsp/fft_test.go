package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// naiveDFT is the O(n^2) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			s += x[t] * cmplx.Rect(1, ang)
		}
		out[k] = s
	}
	return out
}

func complexClose(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestFFTMatchesNaivePow2(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.Norm(), r.Norm())
		}
		if !complexClose(FFT(x), naiveDFT(x), 1e-8*float64(n)) {
			t.Fatalf("FFT disagrees with naive DFT at n=%d", n)
		}
	}
}

func TestFFTMatchesNaiveNonPow2(t *testing.T) {
	r := rng.New(2)
	for _, n := range []int{3, 5, 6, 7, 12, 100, 135} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.Norm(), r.Norm())
		}
		if !complexClose(FFT(x), naiveDFT(x), 1e-7*float64(n)) {
			t.Fatalf("Bluestein FFT disagrees with naive DFT at n=%d", n)
		}
	}
}

func TestIFFTInverts(t *testing.T) {
	r := rng.New(3)
	for _, n := range []int{8, 15, 64, 100} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.Norm(), r.Norm())
		}
		back := IFFT(FFT(x))
		if !complexClose(back, x, 1e-9*float64(n)) {
			t.Fatalf("IFFT(FFT(x)) != x for n=%d", n)
		}
	}
}

func TestFFTEmpty(t *testing.T) {
	if out := FFT(nil); out != nil {
		t.Fatal("FFT(nil) should be nil")
	}
	if out := IFFT(nil); out != nil {
		t.Fatal("IFFT(nil) should be nil")
	}
}

func TestFFTImpulse(t *testing.T) {
	// DFT of a unit impulse is all ones.
	x := make([]complex128, 16)
	x[0] = 1
	X := FFT(x)
	for k, v := range X {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse spectrum bin %d = %v, want 1", k, v)
		}
	}
}

func TestAmplitudeSpectrumSingleTone(t *testing.T) {
	fs := 1000.0
	n := 1000
	f := 50.0
	amp := 0.7
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.2 + amp*math.Sin(2*math.Pi*f*float64(i)/fs)
	}
	sp := AmplitudeSpectrum(x, fs)
	// DC bin.
	if math.Abs(sp.Amp[0]-0.2) > 1e-9 {
		t.Fatalf("DC amplitude = %v, want 0.2", sp.Amp[0])
	}
	// Tone bin: 50 Hz -> bin 50 with 1 Hz resolution.
	if math.Abs(sp.Amp[50]-amp) > 1e-9 {
		t.Fatalf("tone amplitude = %v, want %v", sp.Amp[50], amp)
	}
	if sp.DominantBin() != 50 {
		t.Fatalf("DominantBin = %d, want 50", sp.DominantBin())
	}
	if math.Abs(sp.Freq[50]-50) > 1e-9 {
		t.Fatalf("Freq[50] = %v, want 50", sp.Freq[50])
	}
}

func TestTHD(t *testing.T) {
	fs := 1000.0
	n := 1000
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / fs
		x[i] = math.Sin(2*math.Pi*10*ti) + 0.1*math.Sin(2*math.Pi*20*ti)
	}
	sp := AmplitudeSpectrum(x, fs)
	thd, err := sp.THD(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(thd-0.1) > 1e-6 {
		t.Fatalf("THD = %v, want 0.1", thd)
	}
	if _, err := sp.THD(0, 3); err == nil {
		t.Fatal("THD should reject bin 0")
	}
}

// Property: Parseval's theorem, sum |x|^2 == (1/n) sum |X|^2.
func TestParsevalProperty(t *testing.T) {
	prop := func(seed uint64, odd bool) bool {
		r := rng.New(seed)
		n := 64
		if odd {
			n = 63
		}
		x := make([]complex128, n)
		var te float64
		for i := range x {
			x[i] = complex(r.Norm(), r.Norm())
			te += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		X := FFT(x)
		var fe float64
		for _, v := range X {
			fe += real(v)*real(v) + imag(v)*imag(v)
		}
		fe /= float64(n)
		return math.Abs(te-fe) < 1e-7*(1+te)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: FFT is linear.
func TestFFTLinearityProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		n := 32
		a := make([]complex128, n)
		b := make([]complex128, n)
		sum := make([]complex128, n)
		for i := range a {
			a[i] = complex(r.Norm(), 0)
			b[i] = complex(r.Norm(), 0)
			sum[i] = 2*a[i] + 3*b[i]
		}
		A, B, S := FFT(a), FFT(b), FFT(sum)
		for i := range S {
			if cmplx.Abs(S[i]-(2*A[i]+3*B[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
