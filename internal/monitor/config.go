// Package monitor implements the paper's digital-signature monitor: a
// four-input current comparator (Fig. 2) whose current-balance locus
// divides the X-Y plane of two observed signals with a nonlinear boundary.
//
// Two models of the same circuit are provided and cross-checked in tests:
//
//   - Analytic: the zone boundary is the locus where the summed
//     saturation currents of the left branch (M1, M2) equal those of the
//     right branch (M3, M4). This captures the design equations of
//     Section III.B and is fast enough for signature generation.
//   - Spice: the full Fig. 2 netlist (pseudo-differential pair, pMOS
//     diode loads M5/M8 with cross-coupled feedback M6/M7) solved with
//     the internal/spice MNA engine and digitized by comparing the two
//     output nodes. This substitutes for the fabricated 65 nm monitor.
//
// The six Table I input configurations are provided as constructors, and
// a Bank combines monitors into the n-bit zone code of Fig. 6.
package monitor

import (
	"fmt"

	"repro/internal/mos"
)

// InputKind says what drives one of the four monitor inputs.
type InputKind int

// Input drive options (Table I: each V_i is the X signal, the Y signal,
// or a DC bias).
const (
	DriveDC InputKind = iota
	DriveX
	DriveY
)

// String implements fmt.Stringer.
func (k InputKind) String() string {
	switch k {
	case DriveX:
		return "X axis"
	case DriveY:
		return "Y axis"
	default:
		return "DC"
	}
}

// Input describes the drive of one monitor input transistor.
type Input struct {
	Kind InputKind
	DC   float64 // bias voltage when Kind == DriveDC
}

// Voltage resolves the input voltage at plane point (x, y).
func (in Input) Voltage(x, y float64) float64 {
	switch in.Kind {
	case DriveX:
		return x
	case DriveY:
		return y
	default:
		return in.DC
	}
}

// X returns an Input driven by the monitored x(t) signal.
func X() Input { return Input{Kind: DriveX} }

// Y returns an Input driven by the monitored y(t) signal.
func Y() Input { return Input{Kind: DriveY} }

// Bias returns an Input parked at the DC voltage v.
func Bias(v float64) Input { return Input{Kind: DriveDC, DC: v} }

// Config is one monitor instance: four input transistor widths (nm) and
// the four input drives, per Table I. L is shared (180 nm in the paper).
type Config struct {
	Name     string
	WidthsNm [4]float64 // M1..M4 widths in nm
	LengthNm float64    // shared channel length in nm
	Inputs   [4]Input   // V1..V4 drives
	NMOS     mos.Params // input device flavour
	PMOS     mos.Params // load device flavour (spice model only)
	VDD      float64    // supply voltage (spice model only)
	LoadWNm  float64    // pMOS load width (spice model only)
	// RefX, RefY locate a point inside the zone that must code as "0"
	// (the paper's "region containing the origin"). A point slightly off
	// (0,0) is used so the 45° line of curve 6, which passes through the
	// origin, still has a well-defined origin side.
	RefX, RefY float64
}

// Validate checks configuration sanity.
func (c Config) Validate() error {
	for i, w := range c.WidthsNm {
		if w <= 0 {
			return fmt.Errorf("monitor %s: M%d width must be positive, got %g", c.Name, i+1, w)
		}
	}
	if c.LengthNm <= 0 {
		return fmt.Errorf("monitor %s: length must be positive", c.Name)
	}
	if c.VDD <= 0 {
		return fmt.Errorf("monitor %s: VDD must be positive", c.Name)
	}
	return nil
}

// Devices instantiates the four input transistors.
func (c Config) Devices() [4]mos.Device {
	var out [4]mos.Device
	for i := range out {
		out[i] = mos.NewDevice(fmt.Sprintf("%s.M%d", c.Name, i+1), c.WidthsNm[i], c.LengthNm, c.NMOS)
	}
	return out
}

// baseConfig fills the technology-dependent defaults shared by Table I.
func baseConfig(name string) Config {
	return Config{
		Name:     name,
		LengthNm: 180,
		NMOS:     mos.Default65nmNMOS(),
		PMOS:     mos.Default65nmPMOS(),
		VDD:      1.2,
		LoadWNm:  2000,
		RefX:     0.02,
		RefY:     0.0,
	}
}

// TableI returns the six monitor configurations of the paper's TABLE I:
//
//	#  M1    M2    M3    M4     V1      V2      V3      V4
//	1  3000  600   600   3000   Y       0.2     X       0.6
//	2  3000  600   600   3000   0.6     Y       0.2     X
//	3  1800  1800  1800  1800   Y       X       0.55    0.55
//	4  1800  1800  1800  1800   Y       X       0.3     0.3
//	5  1800  1800  1800  1800   Y       X       0.75    0.75
//	6  1800  1800  1800  1800   Y       0       X       0
//
// Curves 1-2 are positive-slope segments, 3-5 negative-slope nonlinear
// arcs through (V_DC, V_DC), and 6 the 45° line.
func TableI() []Config {
	mk := func(i int, w [4]float64, in [4]Input) Config {
		c := baseConfig(fmt.Sprintf("mon%d", i))
		c.WidthsNm = w
		c.Inputs = in
		return c
	}
	return []Config{
		mk(1, [4]float64{3000, 600, 600, 3000}, [4]Input{Y(), Bias(0.2), X(), Bias(0.6)}),
		mk(2, [4]float64{3000, 600, 600, 3000}, [4]Input{Bias(0.6), Y(), Bias(0.2), X()}),
		mk(3, [4]float64{1800, 1800, 1800, 1800}, [4]Input{Y(), X(), Bias(0.55), Bias(0.55)}),
		mk(4, [4]float64{1800, 1800, 1800, 1800}, [4]Input{Y(), X(), Bias(0.3), Bias(0.3)}),
		mk(5, [4]float64{1800, 1800, 1800, 1800}, [4]Input{Y(), X(), Bias(0.75), Bias(0.75)}),
		mk(6, [4]float64{1800, 1800, 1800, 1800}, [4]Input{Y(), Bias(0), X(), Bias(0)}),
	}
}

// Monitor digitizes one bit of the zone code at a plane location:
// 0 on the side of the boundary containing the configured reference
// ("origin") point, 1 on the other side.
type Monitor interface {
	// Bit returns the zone-code bit at (x, y).
	Bit(x, y float64) int
	// Config returns the monitor's configuration.
	Config() Config
}
