package monitor_test

import (
	"fmt"

	"repro/internal/monitor"
)

// The six Table I monitors classify any plane point into a 6-bit zone
// code; the region containing the origin codes as all zeros.
func ExampleBank_Classify() {
	bank := monitor.NewAnalyticTableI()
	fmt.Println(bank.FormatCode(bank.Classify(0.02, 0.0)))
	fmt.Println(bank.FormatCode(bank.Classify(0.45, 0.62)))
	// Output:
	// 000000 (0)
	// 101101 (45)
}

// Boundaries are designed by anchoring them where the CUT's Lissajous
// travels (Section V: bias voltages and aspect ratios set the curve).
func ExampleDesignArc() {
	cfg, err := monitor.DesignArc(0.55, 1800, monitor.TableI()[2])
	if err != nil {
		fmt.Println(err)
		return
	}
	m := monitor.MustAnalytic(cfg)
	y, _ := m.BoundaryY(0.55, 0, 1)
	fmt.Printf("arc through (0.55, %.2f)\n", y)
	// Output:
	// arc through (0.55, 0.55)
}

func ExampleEstimateArea() {
	est := monitor.EstimateArea(monitor.TableI()[0])
	fmt.Printf("core %.2f um2, total %.2f um2\n", est.CoreUm2, est.TotalUm2)
	// Output:
	// core 53.54 um2, total 116.10 um2
}
