package monitor

import (
	"fmt"
	"math"

	"repro/internal/num"
)

// This file implements the design procedure Section V alludes to:
// "Zone boundaries can be adjusted by changing the biasing voltages
// and/or the aspect ratio of the input transistors." Given a geometric
// target, these helpers synthesize a Table-I-style configuration.

// DesignArc synthesizes a symmetric negative-slope arc (Table I rows
// 3-5 topology: V1 = Y, V2 = X, V3 = V4 = bias, equal widths) passing
// through the point (p, p) on the diagonal: the bias simply equals p,
// since the balance I(y) + I(x) = 2·I(bias) is exact there.
func DesignArc(p float64, widthNm float64, base Config) (Config, error) {
	if p <= 0 || p >= base.VDD {
		return Config{}, fmt.Errorf("monitor: arc anchor %g outside (0, VDD)", p)
	}
	if widthNm <= 0 {
		return Config{}, fmt.Errorf("monitor: width must be positive")
	}
	cfg := base
	cfg.Name = fmt.Sprintf("arc@%.2f", p)
	cfg.WidthsNm = [4]float64{widthNm, widthNm, widthNm, widthNm}
	cfg.Inputs = [4]Input{Y(), X(), Bias(p), Bias(p)}
	return cfg, nil
}

// DesignSegment synthesizes a positive-slope segment (Table I row 1
// topology: V1 = Y heavy device, V2 = low bias, V3 = X light device,
// V4 = anchor bias) whose left end sits at height yLeft (the boundary
// level for x below threshold) and whose slope is set by the width
// ratio: along the boundary, I_w1(y) = I_w3(x) + I_w1(yLeft), so
// dy/dx → √(w3/w1) deep in strong inversion.
//
// yLeft must be above threshold; slopeRatio = w3/w1 in (0, 1].
func DesignSegment(yLeft, slopeRatio, w1Nm float64, base Config) (Config, error) {
	if slopeRatio <= 0 || slopeRatio > 1 {
		return Config{}, fmt.Errorf("monitor: slope ratio %g outside (0,1]", slopeRatio)
	}
	if w1Nm <= 0 {
		return Config{}, fmt.Errorf("monitor: width must be positive")
	}
	if yLeft <= base.NMOS.VTH0 || yLeft >= base.VDD {
		return Config{}, fmt.Errorf("monitor: left level %g must be in (VTH, VDD)", yLeft)
	}
	cfg := base
	cfg.Name = fmt.Sprintf("seg@%.2f", yLeft)
	w3 := slopeRatio * w1Nm
	cfg.WidthsNm = [4]float64{w1Nm, math.Max(200, w3/5), w3, w1Nm}
	// V2 parked below threshold so it contributes ~nothing; V4 anchors
	// the level: I_w1(yLeft) = I_w1(V4) when x is off -> V4 = yLeft.
	cfg.Inputs = [4]Input{Y(), Bias(0.2 * base.NMOS.VTH0), X(), Bias(yLeft)}
	return cfg, nil
}

// FitArcBias finds the bias voltage whose arc passes through an
// arbitrary target point (x0, y0) (not necessarily on the diagonal):
// solve I(x0) + I(y0) = 2·I(b) for b by bisection.
func FitArcBias(x0, y0, widthNm float64, base Config) (Config, error) {
	if widthNm <= 0 {
		return Config{}, fmt.Errorf("monitor: width must be positive")
	}
	probe := baseProbe(widthNm, base)
	target := probe.IDSat(x0) + probe.IDSat(y0)
	b, err := num.Bisect(func(v float64) float64 {
		return 2*probe.IDSat(v) - target
	}, 0, base.VDD, 1e-12)
	if err != nil {
		return Config{}, fmt.Errorf("monitor: no bias reaches target point (%g, %g): %w", x0, y0, err)
	}
	cfg := base
	cfg.Name = fmt.Sprintf("arc@(%.2f,%.2f)", x0, y0)
	cfg.WidthsNm = [4]float64{widthNm, widthNm, widthNm, widthNm}
	cfg.Inputs = [4]Input{Y(), X(), Bias(b), Bias(b)}
	return cfg, nil
}

func baseProbe(widthNm float64, base Config) interface{ IDSat(float64) float64 } {
	d := base
	d.WidthsNm = [4]float64{widthNm, widthNm, widthNm, widthNm}
	return d.Devices()[0]
}
