package monitor

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// TestClassifyBatchMatchesScalarRandom is the LUT certification property
// test: on random points — inside the grid, outside [0,1), and far out of
// range — ClassifyBatch must equal per-point Classify bit for bit.
func TestClassifyBatchMatchesScalarRandom(t *testing.T) {
	bank := NewAnalyticTableI()
	src := rng.New(11)
	const n = 20000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		switch i % 4 {
		case 0, 1: // in-grid points, where the LUT answers
			xs[i] = src.Float64()
			ys[i] = src.Float64()
		case 2: // straddle the grid edges
			xs[i] = -0.1 + 1.2*src.Float64()
			ys[i] = -0.1 + 1.2*src.Float64()
		default: // far outside the observed square
			xs[i] = -2 + 4*src.Float64()
			ys[i] = -2 + 4*src.Float64()
		}
	}
	codes := make([]Code, n)
	bank.ClassifyBatch(xs, ys, codes)
	for i := range xs {
		if want := bank.Classify(xs[i], ys[i]); codes[i] != want {
			t.Fatalf("point %d (%.6f, %.6f): batch %06b, scalar %06b",
				i, xs[i], ys[i], codes[i], want)
		}
	}
}

// TestClassifyBatchBoundaryAndEdgePoints stresses the hard cases: points
// exactly on monitor boundaries (where the balance is ~0 and the cell
// must have been left uncertified), exactly on LUT cell edges (i/256),
// and the corners of the grid.
func TestClassifyBatchBoundaryAndEdgePoints(t *testing.T) {
	bank := NewAnalyticTableI()
	var xs, ys []float64
	// Monitor-boundary points: bisected boundary crossings of every curve.
	for _, m := range bank.Monitors() {
		a := m.(*Analytic)
		for _, x := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			if y, ok := a.BoundaryY(x, 0, 1); ok {
				xs = append(xs, x)
				ys = append(ys, y)
			}
		}
	}
	// Cell-edge and grid-corner points.
	for _, i := range []int{0, 1, 127, 128, 255, 256} {
		v := float64(i) / 256
		xs = append(xs, v, v, 0.5)
		ys = append(ys, v, 0.5, v)
	}
	// Exactly 1.0 (outside the half-open grid) and negative zero.
	xs = append(xs, 1.0, math.Copysign(0, -1))
	ys = append(ys, 1.0, 0.5)
	codes := make([]Code, len(xs))
	bank.ClassifyBatch(xs, ys, codes)
	for i := range xs {
		if want := bank.Classify(xs[i], ys[i]); codes[i] != want {
			t.Fatalf("hard point %d (%v, %v): batch %06b, scalar %06b",
				i, xs[i], ys[i], codes[i], want)
		}
	}
}

// stubMonitor is a non-analytic monitor: banks containing one must skip
// the LUT and classify through the scalar path.
type stubMonitor struct{ cfg Config }

func (s stubMonitor) Bit(x, y float64) int {
	if x+y > 1 {
		return 1
	}
	return 0
}
func (s stubMonitor) Config() Config { return s.cfg }

func TestClassifyBatchFallsBackWithoutCertifiableBank(t *testing.T) {
	cfgs := TableI()
	bank := NewBank(MustAnalytic(cfgs[0]), stubMonitor{cfg: cfgs[1]})
	if enabled, _ := bank.BatchInfo(); enabled {
		t.Fatal("bank with a non-analytic monitor must not enable the LUT")
	}
	src := rng.New(3)
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i], ys[i] = src.Float64(), src.Float64()
	}
	codes := make([]Code, len(xs))
	bank.ClassifyBatch(xs, ys, codes)
	for i := range xs {
		if want := bank.Classify(xs[i], ys[i]); codes[i] != want {
			t.Fatalf("fallback point %d mismatch", i)
		}
	}
}

// TestLUTEnabledForTableI pins that the paper's bank actually certifies:
// the batched engine's speedup relies on most cells answering by lookup.
func TestLUTEnabledForTableI(t *testing.T) {
	enabled, frac := NewAnalyticTableI().BatchInfo()
	if !enabled {
		t.Fatal("Table I bank must build a certified zone LUT")
	}
	if frac < 0.90 {
		t.Fatalf("certified fraction %.3f, want >= 0.90 (boundary cells only)", frac)
	}
}

// TestLUTMonotonePrecondition: a drive pattern mixing one axis across
// both branches breaks the per-axis monotonicity the certification rests
// on, so such a bank must refuse the LUT.
func TestLUTMonotonePrecondition(t *testing.T) {
	cfg := baseConfig("mixed")
	cfg.WidthsNm = [4]float64{1800, 1800, 1800, 1800}
	cfg.Inputs = [4]Input{X(), Y(), X(), Bias(0.5)} // X drives M1 (left) and M3 (right)
	bank := NewBank(MustAnalytic(cfg))
	if enabled, _ := bank.BatchInfo(); enabled {
		t.Fatal("mixed-branch drive must not certify")
	}
	// The scalar fallback still classifies correctly.
	src := rng.New(9)
	for i := 0; i < 200; i++ {
		x, y := src.Float64(), src.Float64()
		codes := make([]Code, 1)
		bank.ClassifyBatch([]float64{x}, []float64{y}, codes)
		if codes[0] != bank.Classify(x, y) {
			t.Fatalf("fallback mismatch at (%v, %v)", x, y)
		}
	}
}

// Allocation pins: the scalar classifier and the warmed batch classifier
// must not allocate in steady state — campaign workers call them millions
// of times per trial batch.
func TestClassifyAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	bank := NewAnalyticTableI()
	if a := testing.AllocsPerRun(1000, func() {
		bank.Classify(0.4, 0.6)
	}); a != 0 {
		t.Fatalf("Classify allocates %.1f per call, want 0", a)
	}
	src := rng.New(5)
	xs := make([]float64, 256)
	ys := make([]float64, 256)
	for i := range xs {
		xs[i], ys[i] = src.Float64(), src.Float64()
	}
	codes := make([]Code, len(xs))
	bank.ClassifyBatch(xs, ys, codes) // build the LUT outside the measurement
	if a := testing.AllocsPerRun(200, func() {
		bank.ClassifyBatch(xs, ys, codes)
	}); a != 0 {
		t.Fatalf("warm ClassifyBatch allocates %.1f per call, want 0", a)
	}
}

func TestClassifyBatchLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	NewAnalyticTableI().ClassifyBatch(make([]float64, 3), make([]float64, 3), make([]Code, 2))
}
