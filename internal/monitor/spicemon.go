package monitor

import (
	"fmt"

	"repro/internal/mos"
	"repro/internal/spice"
)

// Spice is the transistor-level model of the Fig. 2 monitor. Each Bit
// evaluation builds the input bias, solves the nonlinear DC operating
// point of the full eight-transistor circuit, and compares the two output
// nodes — exactly what the fabricated monitor's high-gain output stage
// does. It is orders of magnitude slower than Analytic and exists to
// validate it and to regenerate the "experimental" curves of Fig. 4.
//
// With an output stage (NewSpiceWithOutputStage) the comparison is done
// in silicon too: a differential-to-single-ended VCVS followed by two
// CMOS inverters squares the analog difference up to a rail-to-rail
// digital level, matching the paper's "high gain output stage to
// digitalize the differential output" (total area 116.1 µm²).
type Spice struct {
	cfg     Config
	ckt     *spice.Circuit
	vx      [4]*spice.VSource
	refBit  int
	prevSol *spice.Solution
	// ws keeps the MNA matrix, RHS and LU buffers alive between Bit
	// evaluations — a boundary trace solves the same circuit thousands
	// of times, and without reuse every solve re-allocates the solver.
	ws       *spice.Workspace
	digital  bool // true when the inverter output stage is present
	outDNode string
}

// NewSpice builds the transistor-level monitor core. Optionally,
// perturbed input devices (Monte Carlo) can be supplied; pass nil for
// nominal.
func NewSpice(cfg Config, devs *[4]mos.Device) (*Spice, error) {
	return newSpice(cfg, devs, false)
}

// NewSpiceWithOutputStage builds the monitor including the digitizing
// output stage; Bit then thresholds a rail-to-rail node instead of
// comparing the two analog outputs.
func NewSpiceWithOutputStage(cfg Config, devs *[4]mos.Device) (*Spice, error) {
	return newSpice(cfg, devs, true)
}

func newSpice(cfg Config, devs *[4]mos.Device, outputStage bool) (*Spice, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Spice{cfg: cfg, digital: outputStage, ws: spice.NewWorkspace()}
	m.ckt = spice.New()
	c := m.ckt
	vdd := c.Node("vdd")
	out1 := c.Node("out1")
	out2 := c.Node("out2")
	c.Add(spice.NewVSource("VDD", vdd, spice.Ground, cfg.VDD))

	inputDevs := cfg.Devices()
	if devs != nil {
		inputDevs = *devs
	}
	// Input gates driven by dedicated sources so Bit can rebias quickly.
	drains := [4]spice.NodeID{out1, out1, out2, out2}
	for i := 0; i < 4; i++ {
		g := c.Node(fmt.Sprintf("g%d", i+1))
		m.vx[i] = spice.NewVSource(fmt.Sprintf("V%d", i+1), g, spice.Ground, 0)
		c.Add(m.vx[i])
		c.Add(spice.NewMOSFET(fmt.Sprintf("M%d", i+1), drains[i], g, spice.Ground, inputDevs[i]))
	}
	// Loads: M5/M8 diode-connected, M6/M7 cross-coupled feedback
	// ("equal sized transistors M5 and M8 are used as active loads, while
	// equal sized transistors M6 and M7 perform the required feedback to
	// improve the gain of the stage"). The feedback pair is drawn at 80%
	// of the diode pair so the positive-feedback loop gain stays below
	// one: the stage gets the published gain boost without turning into a
	// bistable latch, which would add hysteresis to the zone boundary.
	load := func(name string, wNm float64) mos.Device {
		return mos.NewDevice(name, wNm, cfg.LengthNm, cfg.PMOS)
	}
	c.Add(spice.NewMOSFET("M5", out1, out1, vdd, load("M5", cfg.LoadWNm)))
	c.Add(spice.NewMOSFET("M6", out1, out2, vdd, load("M6", 0.8*cfg.LoadWNm)))
	c.Add(spice.NewMOSFET("M7", out2, out1, vdd, load("M7", 0.8*cfg.LoadWNm)))
	c.Add(spice.NewMOSFET("M8", out2, out2, vdd, load("M8", cfg.LoadWNm)))

	if outputStage {
		// Differential-to-single-ended gain stage biased to mid-rail,
		// then two CMOS inverters to square the level up.
		amp := c.Node("amp")
		mid := c.Node("mid")
		inv1 := c.Node("inv1")
		outd := c.Node("outd")
		c.Add(spice.NewVSource("VMID", mid, spice.Ground, cfg.VDD/2))
		c.Add(spice.NewVCVS("EAMP", amp, mid, out2, out1, 40))
		// Clamp the VCVS drive into the inverter with a series resistor
		// so the first inverter input stays a real node.
		c.Add(spice.NewResistor("RAMP", amp, inv1, 1e3))
		inverter := func(name string, in, out spice.NodeID) {
			c.Add(spice.NewMOSFET(name+"p", out, in, vdd,
				mos.NewDevice(name+"p", 2*cfg.LoadWNm, cfg.LengthNm, cfg.PMOS)))
			c.Add(spice.NewMOSFET(name+"n", out, in, spice.Ground,
				mos.NewDevice(name+"n", cfg.LoadWNm, cfg.LengthNm, cfg.NMOS)))
		}
		// The first inverter input is inv1 (through RAMP), its output
		// drives the second inverter producing the digital node.
		innode := c.Node("q1")
		inverter("MI1", inv1, innode)
		inverter("MI2", innode, outd)
		m.outDNode = "outd"
	}

	ref, err := m.rawBit(cfg.RefX, cfg.RefY)
	if err != nil {
		return nil, fmt.Errorf("monitor %s: reference solve: %w", cfg.Name, err)
	}
	m.refBit = ref
	return m, nil
}

// rawBit solves the DC point at (x, y) and returns 1 when out2 > out1
// (right branch starved, left branch sinking more current). With the
// output stage present the rail-to-rail digital node is thresholded at
// VDD/2 instead.
func (m *Spice) rawBit(x, y float64) (int, error) {
	for i := 0; i < 4; i++ {
		m.vx[i].SetDC(m.cfg.Inputs[i].Voltage(x, y))
	}
	sol, err := spice.DCOperatingPointWS(m.ckt, spice.Options{}, m.prevSol, m.ws)
	if err != nil {
		return 0, err
	}
	m.prevSol = sol
	if m.digital {
		vd, err := sol.Voltage(m.outDNode)
		if err != nil {
			return 0, err
		}
		if vd > m.cfg.VDD/2 {
			return 1, nil
		}
		return 0, nil
	}
	v1, _ := sol.Voltage("out1")
	v2, _ := sol.Voltage("out2")
	if v2 > v1 {
		return 1, nil
	}
	return 0, nil
}

// Bit implements Monitor. Convergence failures are not expected for this
// topology; if one occurs the reference side is returned (fail-safe "0")
// and BitErr can be used instead when the caller wants the error.
func (m *Spice) Bit(x, y float64) int {
	b, err := m.BitErr(x, y)
	if err != nil {
		return 0
	}
	return b
}

// BitErr is Bit with explicit error reporting.
func (m *Spice) BitErr(x, y float64) (int, error) {
	raw, err := m.rawBit(x, y)
	if err != nil {
		return 0, err
	}
	if raw == m.refBit {
		return 0, nil
	}
	return 1, nil
}

// Config implements Monitor.
func (m *Spice) Config() Config { return m.cfg }

// OutputVoltages solves the DC point and returns (out1, out2), exposing
// the analog comparison the output stage digitizes.
func (m *Spice) OutputVoltages(x, y float64) (v1, v2 float64, err error) {
	for i := 0; i < 4; i++ {
		m.vx[i].SetDC(m.cfg.Inputs[i].Voltage(x, y))
	}
	sol, err := spice.DCOperatingPointWS(m.ckt, spice.Options{}, m.prevSol, m.ws)
	if err != nil {
		return 0, 0, err
	}
	m.prevSol = sol
	v1, _ = sol.Voltage("out1")
	v2, _ = sol.Voltage("out2")
	return v1, v2, nil
}

// BoundaryY locates the bit transition along the y direction at fixed x
// by binary search; ok is false when no transition exists in [yLo, yHi].
func (m *Spice) BoundaryY(x, yLo, yHi float64) (float64, bool) {
	return m.boundary(func(v float64) (int, error) { return m.BitErr(x, v) }, yLo, yHi)
}

// BoundaryX locates the bit transition along the x direction at fixed y —
// needed for near-vertical curve segments (Table I row 2).
func (m *Spice) BoundaryX(y, xLo, xHi float64) (float64, bool) {
	return m.boundary(func(v float64) (int, error) { return m.BitErr(v, y) }, xLo, xHi)
}

func (m *Spice) boundary(bit func(float64) (int, error), lo, hi float64) (float64, bool) {
	bLo, err := bit(lo)
	if err != nil {
		return 0, false
	}
	bHi, err := bit(hi)
	if err != nil || bLo == bHi {
		return 0, false
	}
	for i := 0; i < 30; i++ {
		mid := 0.5 * (lo + hi)
		bm, err := bit(mid)
		if err != nil {
			return 0, false
		}
		if bm == bLo {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), true
}
