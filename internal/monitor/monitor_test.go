package monitor

import (
	"math"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/mos"
	"repro/internal/rng"
)

func TestTableIStructure(t *testing.T) {
	cfgs := TableI()
	if len(cfgs) != 6 {
		t.Fatalf("TableI has %d configs, want 6", len(cfgs))
	}
	// Row 1: widths 3000/600/600/3000, V1=Y, V2=0.2, V3=X, V4=0.6.
	c1 := cfgs[0]
	if c1.WidthsNm != [4]float64{3000, 600, 600, 3000} {
		t.Fatalf("row 1 widths = %v", c1.WidthsNm)
	}
	if c1.Inputs[0].Kind != DriveY || c1.Inputs[2].Kind != DriveX {
		t.Fatal("row 1 drive kinds wrong")
	}
	if c1.Inputs[1].DC != 0.2 || c1.Inputs[3].DC != 0.6 {
		t.Fatal("row 1 biases wrong")
	}
	// Rows 3-5 symmetric widths.
	for i := 2; i <= 5; i++ {
		if cfgs[i].WidthsNm != [4]float64{1800, 1800, 1800, 1800} {
			t.Fatalf("row %d widths = %v", i+1, cfgs[i].WidthsNm)
		}
	}
	for i, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Fatalf("config %d invalid: %v", i+1, err)
		}
		if c.LengthNm != 180 {
			t.Fatalf("config %d length = %v, want 180", i+1, c.LengthNm)
		}
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	c := TableI()[0]
	c.WidthsNm[2] = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero width accepted")
	}
	c = TableI()[0]
	c.VDD = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero VDD accepted")
	}
}

func TestInputKindString(t *testing.T) {
	if X().Kind.String() != "X axis" || Y().Kind.String() != "Y axis" || Bias(1).Kind.String() != "DC" {
		t.Fatal("InputKind.String wrong")
	}
	if Bias(0.3).Voltage(0.9, 0.8) != 0.3 {
		t.Fatal("DC input should ignore plane point")
	}
	if X().Voltage(0.9, 0.8) != 0.9 || Y().Voltage(0.9, 0.8) != 0.8 {
		t.Fatal("axis inputs resolve wrong")
	}
}

func TestCurve6IsDiagonal(t *testing.T) {
	m := MustAnalytic(TableI()[5])
	// Above threshold the symmetric configuration must put the boundary
	// on y = x.
	for _, x := range []float64{0.5, 0.6, 0.8, 1.0} {
		y, ok := m.BoundaryY(x, 0, 1)
		if !ok {
			t.Fatalf("no boundary at x=%v", x)
		}
		if math.Abs(y-x) > 1e-6 {
			t.Fatalf("curve 6 at x=%v gives y=%v, want y=x", x, y)
		}
	}
	if m.Bit(0.9, 0.1) != 0 {
		t.Fatal("below-diagonal must be origin side (0)")
	}
	if m.Bit(0.1, 0.9) != 1 {
		t.Fatal("above-diagonal must be 1")
	}
}

func TestCurves3to5PassThroughBiasPoint(t *testing.T) {
	cfgs := TableI()
	for i, bias := range map[int]float64{2: 0.55, 3: 0.3, 4: 0.75} {
		m := MustAnalytic(cfgs[i])
		if b := m.Balance(bias, bias); math.Abs(b) > 1e-12 {
			t.Fatalf("curve %d balance at (%v,%v) = %v, want 0", i+1, bias, bias, b)
		}
	}
}

func TestCurves3to5NegativeSlope(t *testing.T) {
	for _, idx := range []int{2, 4} { // curves 3 and 5
		m := MustAnalytic(TableI()[idx])
		var prev float64
		first := true
		for x := 0.2; x <= 0.9; x += 0.05 {
			y, ok := m.BoundaryY(x, 0, 1)
			if !ok {
				continue
			}
			if !first && y > prev+1e-9 {
				t.Fatalf("curve %d not monotonically decreasing at x=%v", idx+1, x)
			}
			prev, first = y, false
		}
		if first {
			t.Fatalf("curve %d never crossed the unit square", idx+1)
		}
	}
}

func TestCurve1PositiveSlopeAboveCurve2(t *testing.T) {
	m1 := MustAnalytic(TableI()[0])
	m2 := MustAnalytic(TableI()[1])
	// Curve 1: for x below threshold the left branch must balance the
	// fixed right side at y ≈ the level where I(M1,y) = I(M4,0.6):
	// widths are equal so y -> 0.6.
	y0, ok := m1.BoundaryY(0.05, 0, 1)
	if !ok {
		t.Fatal("curve 1 missing at x=0.05")
	}
	if math.Abs(y0-0.6) > 0.02 {
		t.Fatalf("curve 1 left end y=%v, want ~0.6", y0)
	}
	// Positive slope: y rises with x.
	y1, ok1 := m1.BoundaryY(0.95, 0, 1)
	if !ok1 || y1 <= y0 {
		t.Fatalf("curve 1 slope not positive: y(0.05)=%v y(0.95)=%v", y0, y1)
	}
	// Curve 2 is the mirrored segment: it crosses lower-right (large x,
	// smaller y). At its left end the crossing should sit near x ≈ 0.6
	// at y below threshold.
	x0, ok := m2.BoundaryX(0.05, 0, 1)
	if !ok {
		t.Fatal("curve 2 missing at y=0.05")
	}
	if math.Abs(x0-0.6) > 0.02 {
		t.Fatalf("curve 2 bottom end x=%v, want ~0.6", x0)
	}
}

func TestReferencePointCodesZero(t *testing.T) {
	for i, cfg := range TableI() {
		m := MustAnalytic(cfg)
		if m.Bit(cfg.RefX, cfg.RefY) != 0 {
			t.Fatalf("monitor %d reference point not in zone 0", i+1)
		}
	}
}

func TestBankClassify(t *testing.T) {
	b := NewAnalyticTableI()
	if b.Size() != 6 {
		t.Fatalf("bank size = %d", b.Size())
	}
	// Origin region must be code 0 (paper: all monitors deliver "0" for
	// the region containing the origin).
	if c := b.Classify(0.02, 0.0); c != 0 {
		t.Fatalf("origin zone code = %s, want all zeros", b.FormatCode(c))
	}
	// Far corner (1, 1) lies beyond curves 1,3,4,6 at least; its code
	// must be nonzero and stable.
	c := b.Classify(1, 1)
	if c == 0 {
		t.Fatal("far corner coded as origin zone")
	}
}

func TestCodeOps(t *testing.T) {
	var a, b Code = 0b000100, 0b000101
	if d := a.HammingDistance(b); d != 1 {
		t.Fatalf("Hamming = %d, want 1", d)
	}
	if d := Code(0).HammingDistance(0b111111); d != 6 {
		t.Fatalf("Hamming = %d, want 6", d)
	}
	if a.Bit(2) != 1 || a.Bit(0) != 0 {
		t.Fatal("Bit extraction wrong")
	}
	if s := a.StringN(6); s != "001000" {
		t.Fatalf("StringN = %q", s)
	}
}

func TestFormatCodeMatchesPaperConvention(t *testing.T) {
	b := NewAnalyticTableI()
	// Monitor 1 = MSB. Code with only monitor 1 set -> "100000 (32)".
	if s := b.FormatCode(Code(1)); s != "100000 (32)" {
		t.Fatalf("FormatCode = %q, want \"100000 (32)\"", s)
	}
	if s := b.FormatCode(Code(0b100000)); s != "000001 (1)" {
		t.Fatalf("FormatCode = %q, want \"000001 (1)\"", s)
	}
	if d := b.Decimal(Code(0b000011)); d != 48 {
		t.Fatalf("Decimal = %d, want 48", d)
	}
}

func TestGrayPropertyAlongPaths(t *testing.T) {
	// Moving along a fine path, the zone code changes by 1 bit at a time
	// except when two boundaries are crossed within one step (rare).
	b := NewAnalyticTableI()
	steps := 600
	multi := 0
	transitions := 0
	for i := 0; i < steps; i++ {
		t0 := float64(i) / float64(steps)
		t1 := float64(i+1) / float64(steps)
		// Diagonal-ish path that crosses many zones.
		x0, y0 := t0, 0.3+0.55*t0
		x1, y1 := t1, 0.3+0.55*t1
		c0, c1 := b.Classify(x0, y0), b.Classify(x1, y1)
		if c0 != c1 {
			transitions++
			if c0.HammingDistance(c1) > 1 {
				multi++
			}
		}
	}
	if transitions < 3 {
		t.Fatalf("path crossed only %d boundaries; test path is wrong", transitions)
	}
	if multi > transitions/3 {
		t.Fatalf("%d of %d transitions changed >1 bit; zones not Gray-adjacent", multi, transitions)
	}
}

func TestWithDevicesShiftsBoundary(t *testing.T) {
	a := MustAnalytic(TableI()[2])
	devs := a.Devices()
	for i := range devs {
		devs[i].P.VTH0 += 0.05 // common shift moves the arc outward
	}
	p := a.WithDevices(devs)
	y0, ok0 := a.BoundaryY(0.4, 0, 1)
	y1, ok1 := p.BoundaryY(0.4, 0, 1)
	if !ok0 || !ok1 {
		t.Fatal("boundary lost after perturbation")
	}
	if math.Abs(y0-y1) < 1e-4 {
		t.Fatal("VTH shift did not move the boundary")
	}
}

func TestMCEnvelopeSpread(t *testing.T) {
	b := NewAnalyticTableI()
	xs, ys := b.MCEnvelope(2, mos.Default65nmVariation(), 11, 40, 21)
	if len(xs) != 21 {
		t.Fatalf("cols = %d", len(xs))
	}
	// Columns crossing the arc should show nonzero spread.
	found := false
	for i := range xs {
		if len(ys[i]) >= 30 {
			lo, hi := ys[i][0], ys[i][0]
			for _, v := range ys[i] {
				lo, hi = math.Min(lo, v), math.Max(hi, v)
			}
			if hi-lo > 1e-4 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("Monte Carlo produced no boundary spread")
	}
}

func TestAreaModelMatchesPublishedReference(t *testing.T) {
	est := EstimateArea(TableI()[0])
	if math.Abs(est.CoreUm2-RefCoreAreaUm2) > 1e-9 {
		t.Fatalf("reference core area = %v, want %v", est.CoreUm2, RefCoreAreaUm2)
	}
	if math.Abs(est.TotalUm2-RefTotalAreaUm2) > 1e-9 {
		t.Fatalf("reference total area = %v, want %v", est.TotalUm2, RefTotalAreaUm2)
	}
	// Table I rows all share a 7200 nm total input width, so their core
	// areas coincide; a genuinely smaller design must shrink the core.
	small := TableI()[2]
	small.WidthsNm = [4]float64{600, 600, 600, 600}
	estSmall := EstimateArea(small)
	if estSmall.CoreUm2 >= est.CoreUm2 {
		t.Fatalf("small core %v should be below reference core %v", estSmall.CoreUm2, est.CoreUm2)
	}
	ba := BankArea(NewAnalyticTableI())
	if ba < 6*80 || ba > 6*120 {
		t.Fatalf("bank area = %v µm², outside plausible range", ba)
	}
}

func TestSpiceMonitorAgreesWithAnalyticFarFromBoundary(t *testing.T) {
	for _, idx := range []int{2, 5} { // curve 3 (arc) and curve 6 (diagonal)
		cfg := TableI()[idx]
		sm, err := NewSpice(cfg, nil)
		if err != nil {
			t.Fatalf("monitor %d: %v", idx+1, err)
		}
		am := MustAnalytic(cfg)
		pts := []Point{{0.15, 0.15}, {0.9, 0.9}, {0.85, 0.2}, {0.2, 0.85}}
		for _, p := range pts {
			// Skip points near the analytic boundary (|balance| small).
			if math.Abs(am.Balance(p.X, p.Y)) < 20e-6 {
				continue
			}
			ab := am.Bit(p.X, p.Y)
			sb, err := sm.BitErr(p.X, p.Y)
			if err != nil {
				t.Fatalf("monitor %d at %+v: %v", idx+1, p, err)
			}
			if ab != sb {
				t.Fatalf("monitor %d at %+v: analytic=%d spice=%d", idx+1, p, ab, sb)
			}
		}
	}
}

func TestSpiceBoundaryNearAnalytic(t *testing.T) {
	cfg := TableI()[2] // curve 3 arc
	sm, err := NewSpice(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	am := MustAnalytic(cfg)
	for _, x := range []float64{0.3, 0.5} {
		ya, okA := am.BoundaryY(x, 0, 1)
		ys, okS := sm.BoundaryY(x, 0, 1)
		if !okA || !okS {
			t.Fatalf("boundary missing at x=%v (analytic %v, spice %v)", x, okA, okS)
		}
		if math.Abs(ya-ys) > 0.08 {
			t.Fatalf("x=%v: analytic y=%v vs spice y=%v differ too much", x, ya, ys)
		}
	}
}

func TestSpiceOutputVoltagesSwap(t *testing.T) {
	cfg := TableI()[5] // diagonal
	sm, err := NewSpice(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	v1a, v2a, err := sm.OutputVoltages(0.9, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	v1b, v2b, err := sm.OutputVoltages(0.2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// Swapping x and y mirrors the differential comparison.
	if (v2a > v1a) == (v2b > v1b) {
		t.Fatalf("differential output did not flip: (%v,%v) then (%v,%v)", v1a, v2a, v1b, v2b)
	}
}

// Property: analytic Bit is a deterministic two-coloring — recomputing at
// the same point always matches, and the boundary found by BoundaryY
// separates bits.
func TestBoundarySeparatesBitsProperty(t *testing.T) {
	m := MustAnalytic(TableI()[2])
	prop := func(xRaw uint8) bool {
		x := 0.1 + 0.8*float64(xRaw)/255
		y, ok := m.BoundaryY(x, 0, 1)
		if !ok {
			return true // no boundary in this column
		}
		below := m.Bit(x, math.Max(0, y-0.02))
		above := m.Bit(x, math.Min(1, y+0.02))
		return below != above
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMCEnvelopeDeterministicAcrossParallelism(t *testing.T) {
	b := NewAnalyticTableI()
	run := func(procs int) [][]float64 {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		_, ys := b.MCEnvelope(2, mos.Default65nmVariation(), 77, 24, 11)
		return ys
	}
	a := run(1)
	c := run(8)
	for i := range a {
		if len(a[i]) != len(c[i]) {
			t.Fatalf("column %d length differs across parallelism", i)
		}
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				t.Fatalf("column %d entry %d differs: %v vs %v", i, j, a[i][j], c[i][j])
			}
		}
	}
}

func TestSpiceOutputStageDigitalLevels(t *testing.T) {
	cfg := TableI()[2]
	dm, err := NewSpiceWithOutputStage(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Far from the boundary the digital node sits near a rail and the
	// bit matches the analog-comparison monitor.
	am, err := NewSpice(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Point{{0.15, 0.15}, {0.9, 0.9}, {0.8, 0.2}} {
		db, err := dm.BitErr(p.X, p.Y)
		if err != nil {
			t.Fatalf("digital monitor at %+v: %v", p, err)
		}
		ab, err := am.BitErr(p.X, p.Y)
		if err != nil {
			t.Fatal(err)
		}
		if db != ab {
			t.Fatalf("digital (%d) and analog (%d) bits differ at %+v", db, ab, p)
		}
	}
}

func TestSpiceOutputStageRailToRail(t *testing.T) {
	cfg := TableI()[5] // diagonal
	dm, err := NewSpiceWithOutputStage(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Drive a point well off the boundary and check the digital node is
	// within 10% of a rail.
	if _, err := dm.BitErr(0.9, 0.2); err != nil {
		t.Fatal(err)
	}
	vd, err := dm.prevSol.Voltage("outd")
	if err != nil {
		t.Fatal(err)
	}
	if vd > 0.12 && vd < 1.08 {
		t.Fatalf("digital node %v not rail-to-rail", vd)
	}
}

func TestTraceBoundaryCoversCurve(t *testing.T) {
	a := MustAnalytic(TableI()[2])
	pts := a.TraceBoundary(0, 1, 31)
	if len(pts) < 10 {
		t.Fatalf("trace has only %d points", len(pts))
	}
	for _, p := range pts {
		if b := a.Balance(p.X, p.Y); math.Abs(b) > 1e-9 {
			t.Fatalf("trace point (%v,%v) off boundary: balance %v", p.X, p.Y, b)
		}
	}
	// Near-vertical curve 2 must still be traced via the row scan.
	p2 := MustAnalytic(TableI()[1]).TraceBoundary(0, 1, 31)
	if len(p2) < 5 {
		t.Fatalf("curve 2 trace has only %d points", len(p2))
	}
}

func TestBankPerturbed(t *testing.T) {
	b := NewAnalyticTableI()
	die := mos.Default65nmVariation().SampleDie(rng.New(5))
	pb := b.Perturbed(die)
	if pb.Size() != b.Size() {
		t.Fatal("perturbed bank changed size")
	}
	// Classification near a boundary should differ somewhere on a grid.
	diff := 0
	for x := 0.05; x < 1; x += 0.1 {
		for y := 0.05; y < 1; y += 0.1 {
			if b.Classify(x, y) != pb.Classify(x, y) {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("Monte Carlo perturbation changed nothing on a 10x10 grid")
	}
	if diff > 50 {
		t.Fatalf("perturbation changed %d/100 cells — implausibly large", diff)
	}
}

func TestStuckMonitor(t *testing.T) {
	base := MustAnalytic(TableI()[2])
	st, err := NewStuck(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bit(0.02, 0) != 1 || st.Bit(0.9, 0.9) != 1 {
		t.Fatal("stuck output moved")
	}
	if st.Config().Name != base.Config().Name {
		t.Fatal("config not passed through")
	}
	if _, err := NewStuck(base, 2); err == nil {
		t.Fatal("bad stuck value accepted")
	}
	b := NewAnalyticTableI()
	if _, err := b.WithStuckMonitor(99, 0); err == nil {
		t.Fatal("bad index accepted")
	}
	sb, err := b.WithStuckMonitor(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Bit 2 of every classification is forced to 1.
	if sb.Classify(0.02, 0.0).Bit(2) != 1 {
		t.Fatal("stuck bank did not force the bit")
	}
}

func TestSpiceMonitorInterface(t *testing.T) {
	cfg := TableI()[5]
	sm, err := NewSpice(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The Monitor interface path (Bit without error) and Config.
	if sm.Config().Name != cfg.Name {
		t.Fatal("config accessor wrong")
	}
	if b := sm.Bit(0.9, 0.2); b != 0 {
		t.Fatalf("below-diagonal spice bit = %d, want 0", b)
	}
	// BoundaryX on the diagonal: at y=0.7 the crossing is x≈0.7.
	x, ok := sm.BoundaryX(0.7, 0, 1)
	if !ok || math.Abs(x-0.7) > 0.05 {
		t.Fatalf("spice BoundaryX = %v (ok=%v), want ~0.7", x, ok)
	}
}

func TestNewSpiceTableI(t *testing.T) {
	b, err := NewSpiceTableI()
	if err != nil {
		t.Fatal(err)
	}
	if b.Size() != 6 {
		t.Fatalf("spice bank size = %d", b.Size())
	}
	if c := b.Classify(0.02, 0.0); c != 0 {
		t.Fatalf("spice bank origin code = %06b", c)
	}
}
