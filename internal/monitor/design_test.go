package monitor

import (
	"math"
	"testing"
	"testing/quick"
)

func base() Config { return TableI()[2] }

func TestDesignArcAnchorsOnDiagonal(t *testing.T) {
	for _, p := range []float64{0.3, 0.5, 0.75} {
		cfg, err := DesignArc(p, 1800, base())
		if err != nil {
			t.Fatal(err)
		}
		m := MustAnalytic(cfg)
		if b := m.Balance(p, p); math.Abs(b) > 1e-15 {
			t.Fatalf("arc(%v) balance at anchor = %v", p, b)
		}
	}
}

func TestDesignArcMatchesTableIRow(t *testing.T) {
	// DesignArc(0.55) must reproduce Table I row 3's boundary.
	cfg, err := DesignArc(0.55, 1800, base())
	if err != nil {
		t.Fatal(err)
	}
	ours := MustAnalytic(cfg)
	ref := MustAnalytic(TableI()[2])
	for _, x := range []float64{0.3, 0.45, 0.6} {
		y1, ok1 := ours.BoundaryY(x, 0, 1)
		y2, ok2 := ref.BoundaryY(x, 0, 1)
		if ok1 != ok2 {
			t.Fatalf("crossing disagreement at x=%v", x)
		}
		if ok1 && math.Abs(y1-y2) > 1e-9 {
			t.Fatalf("designed arc differs from Table I row 3 at x=%v: %v vs %v", x, y1, y2)
		}
	}
}

func TestDesignArcValidation(t *testing.T) {
	if _, err := DesignArc(0, 1800, base()); err == nil {
		t.Fatal("zero anchor accepted")
	}
	if _, err := DesignArc(2, 1800, base()); err == nil {
		t.Fatal("anchor above VDD accepted")
	}
	if _, err := DesignArc(0.5, 0, base()); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestDesignSegmentLevelAndSlope(t *testing.T) {
	cfg, err := DesignSegment(0.6, 0.2, 3000, base())
	if err != nil {
		t.Fatal(err)
	}
	m := MustAnalytic(cfg)
	// Left end: for x deep below threshold the boundary sits at yLeft.
	y0, ok := m.BoundaryY(0.05, 0, 1)
	if !ok {
		t.Fatal("no boundary at x=0.05")
	}
	if math.Abs(y0-0.6) > 0.02 {
		t.Fatalf("left level = %v, want 0.6", y0)
	}
	// Positive slope.
	y1, ok := m.BoundaryY(0.95, 0, 1)
	if !ok || y1 <= y0 {
		t.Fatalf("slope not positive: %v -> %v", y0, y1)
	}
	// Smaller slope ratio gives a flatter segment.
	flat, err := DesignSegment(0.6, 0.05, 3000, base())
	if err != nil {
		t.Fatal(err)
	}
	fy1, ok := MustAnalytic(flat).BoundaryY(0.95, 0, 1)
	if !ok {
		t.Fatal("flat segment lost crossing")
	}
	if fy1 >= y1 {
		t.Fatalf("slope ratio did not flatten: %v vs %v", fy1, y1)
	}
}

func TestDesignSegmentValidation(t *testing.T) {
	if _, err := DesignSegment(0.6, 0, 3000, base()); err == nil {
		t.Fatal("zero slope ratio accepted")
	}
	if _, err := DesignSegment(0.6, 2, 3000, base()); err == nil {
		t.Fatal("slope ratio above 1 accepted")
	}
	if _, err := DesignSegment(0.2, 0.5, 3000, base()); err == nil {
		t.Fatal("sub-threshold level accepted")
	}
	if _, err := DesignSegment(0.6, 0.5, 0, base()); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestFitArcBiasHitsTarget(t *testing.T) {
	cfg, err := FitArcBias(0.3, 0.7, 1800, base())
	if err != nil {
		t.Fatal(err)
	}
	m := MustAnalytic(cfg)
	if b := m.Balance(0.3, 0.7); math.Abs(b) > 1e-12 {
		t.Fatalf("designed arc misses target: balance %v", b)
	}
	// The boundary truly passes through (0.3, 0.7).
	y, ok := m.BoundaryY(0.3, 0, 1)
	if !ok || math.Abs(y-0.7) > 1e-6 {
		t.Fatalf("boundary at x=0.3 is y=%v (ok=%v), want 0.7", y, ok)
	}
}

func TestFitArcBiasValidation(t *testing.T) {
	if _, err := FitArcBias(0.3, 0.7, 0, base()); err == nil {
		t.Fatal("zero width accepted")
	}
}

// Property: FitArcBias hits any target point in the open square.
func TestFitArcBiasProperty(t *testing.T) {
	prop := func(xr, yr uint8) bool {
		x0 := 0.1 + 0.8*float64(xr)/255
		y0 := 0.1 + 0.8*float64(yr)/255
		cfg, err := FitArcBias(x0, y0, 1800, base())
		if err != nil {
			return false
		}
		m, err := NewAnalytic(cfg)
		if err != nil {
			return false
		}
		return math.Abs(m.Balance(x0, y0)) < 1e-10
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
