package monitor

import (
	"math"

	"repro/internal/mos"
)

// Analytic is the design-equation model of the monitor: the boundary is
// the locus where the left-branch saturation current sum equals the
// right-branch sum,
//
//	I(M1,V1) + I(M2,V2) = I(M3,V3) + I(M4,V4),
//
// with I the EKV-smoothed square law of internal/mos. The differential
// load keeps both summing nodes near the same potential in the fabricated
// circuit, so ignoring V_DS effects here reproduces the published curve
// family; tests cross-check against the transistor-level Spice model.
type Analytic struct {
	cfg     Config
	devs    [4]mos.Device
	refSign int
}

// NewAnalytic builds the analytic monitor model from a configuration.
func NewAnalytic(cfg Config) (*Analytic, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Analytic{cfg: cfg, devs: cfg.Devices()}
	a.refSign = signum(a.Balance(cfg.RefX, cfg.RefY))
	if a.refSign == 0 {
		// Reference sits exactly on the boundary; nudge deterministically.
		a.refSign = signum(a.Balance(cfg.RefX+1e-3, cfg.RefY))
		if a.refSign == 0 {
			a.refSign = 1
		}
	}
	return a, nil
}

// MustAnalytic is NewAnalytic that panics on configuration errors; it is
// used with the known-good TableI configurations.
func MustAnalytic(cfg Config) *Analytic {
	a, err := NewAnalytic(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Balance returns I_left − I_right at plane point (x, y). The zone
// boundary is Balance == 0.
func (a *Analytic) Balance(x, y float64) float64 {
	var v [4]float64
	for i := range v {
		v[i] = a.cfg.Inputs[i].Voltage(x, y)
	}
	left := a.devs[0].IDSat(v[0]) + a.devs[1].IDSat(v[1])
	right := a.devs[2].IDSat(v[2]) + a.devs[3].IDSat(v[3])
	return left - right
}

// Bit implements Monitor.
func (a *Analytic) Bit(x, y float64) int {
	if signum(a.Balance(x, y)) == a.refSign {
		return 0
	}
	return 1
}

// Config implements Monitor.
func (a *Analytic) Config() Config { return a.cfg }

// WithDevices returns a copy of the monitor using the provided (e.g.
// Monte Carlo perturbed) input devices. The reference side is re-derived
// because variation can move the boundary.
func (a *Analytic) WithDevices(devs [4]mos.Device) *Analytic {
	out := &Analytic{cfg: a.cfg, devs: devs}
	out.refSign = signum(out.Balance(a.cfg.RefX, a.cfg.RefY))
	if out.refSign == 0 {
		out.refSign = 1
	}
	return out
}

// Devices returns the monitor's input devices.
func (a *Analytic) Devices() [4]mos.Device { return a.devs }

func signum(v float64) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// BoundaryY solves the boundary crossing y for a fixed x by bisection on
// the balance function over [yLo, yHi]. ok is false when the boundary
// does not cross that segment.
func (a *Analytic) BoundaryY(x, yLo, yHi float64) (y float64, ok bool) {
	f := func(y float64) float64 { return a.Balance(x, y) }
	flo, fhi := f(yLo), f(yHi)
	if flo == 0 {
		return yLo, true
	}
	if fhi == 0 {
		return yHi, true
	}
	if (flo > 0) == (fhi > 0) {
		return 0, false
	}
	lo, hi := yLo, yHi
	for i := 0; i < 80; i++ {
		mid := 0.5 * (lo + hi)
		fm := f(mid)
		if fm == 0 || hi-lo < 1e-12 {
			return mid, true
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), true
}

// BoundaryX is BoundaryY with the roles of the axes exchanged (needed for
// near-horizontal curve segments).
func (a *Analytic) BoundaryX(y, xLo, xHi float64) (x float64, ok bool) {
	f := func(x float64) float64 { return a.Balance(x, y) }
	flo, fhi := f(xLo), f(xHi)
	if flo == 0 {
		return xLo, true
	}
	if fhi == 0 {
		return xHi, true
	}
	if (flo > 0) == (fhi > 0) {
		return 0, false
	}
	lo, hi := xLo, xHi
	for i := 0; i < 80; i++ {
		mid := 0.5 * (lo + hi)
		fm := f(mid)
		if fm == 0 || hi-lo < 1e-12 {
			return mid, true
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), true
}

// Point is a location in the monitored X-Y plane.
type Point struct{ X, Y float64 }

// TraceBoundary samples the monitor's zone boundary inside the square
// [lo,hi]² by scanning x columns and, for curve segments that run nearly
// vertical, y rows. Points are deduplicated to a resolution of eps.
func (a *Analytic) TraceBoundary(lo, hi float64, n int) []Point {
	if n < 2 {
		n = 2
	}
	var pts []Point
	step := (hi - lo) / float64(n-1)
	for i := 0; i < n; i++ {
		x := lo + float64(i)*step
		if y, ok := a.BoundaryY(x, lo, hi); ok {
			pts = append(pts, Point{x, y})
		}
	}
	for i := 0; i < n; i++ {
		y := lo + float64(i)*step
		if x, ok := a.BoundaryX(y, lo, hi); ok {
			pts = append(pts, Point{x, y})
		}
	}
	return dedupe(pts, step/4)
}

func dedupe(pts []Point, eps float64) []Point {
	var out []Point
	for _, p := range pts {
		dup := false
		for _, q := range out {
			if math.Abs(p.X-q.X) < eps && math.Abs(p.Y-q.Y) < eps {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p)
		}
	}
	return out
}
