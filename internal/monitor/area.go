package monitor

// Published layout figures for the fabricated monitor (Section III.A):
// the current-comparator core occupies 53.54 µm² (11.64 µm × 4.6 µm) and
// the complete monitor including the high-gain output stage 116.1 µm² in
// STMicroelectronics 65 nm CMOS.
const (
	// RefCoreAreaUm2 is the published comparator-core area.
	RefCoreAreaUm2 = 53.54
	// RefCoreWidthUm and RefCoreHeightUm are the published core extents.
	RefCoreWidthUm  = 11.64
	RefCoreHeightUm = 4.6
	// RefTotalAreaUm2 is the published per-monitor area with the output
	// stage included.
	RefTotalAreaUm2 = 116.1
)

// refGateAreaUm2 is the summed input+load gate area of the reference
// (Table I row 1) design the published layout implements: inputs
// 3000+600+600+3000 nm and four 2000 nm loads, all at L = 180 nm.
const refGateAreaUm2 = (3.0+0.6+0.6+3.0)*0.18 + 4*2.0*0.18

// AreaEstimate models layout area for a monitor configuration by scaling
// the published reference area with total gate area. Only the active-area
// dependent part (60% of the core, an empirical layout split covering
// devices, guard rings and matching dummies) scales; routing and the
// output stage are fixed. This is a documentation-grade cost model used
// by the hardware-cost ablation, not a layout tool.
type AreaEstimate struct {
	CoreUm2   float64
	OutputUm2 float64
	TotalUm2  float64
}

// EstimateArea returns the area model for a configuration.
func EstimateArea(cfg Config) AreaEstimate {
	gate := 0.0
	for _, d := range cfg.Devices() {
		gate += d.GateAreaUm2()
	}
	gate += 4 * (cfg.LoadWNm * 1e-3) * (cfg.LengthNm * 1e-3)
	const activeFrac = 0.6
	core := RefCoreAreaUm2 * (1 - activeFrac + activeFrac*gate/refGateAreaUm2)
	out := RefTotalAreaUm2 - RefCoreAreaUm2
	return AreaEstimate{CoreUm2: core, OutputUm2: out, TotalUm2: core + out}
}

// BankArea sums the area estimates of all monitors in a bank.
func BankArea(b *Bank) float64 {
	total := 0.0
	for _, m := range b.Monitors() {
		total += EstimateArea(m.Config()).TotalUm2
	}
	return total
}
