package monitor

import "fmt"

// Stuck wraps a monitor with a stuck-at output fault — a defect in the
// test circuitry itself (comparator latch-up, broken output stage). The
// self-test question it enables: does the golden-signature comparison
// notice when the *monitor*, not the CUT, is broken?
type Stuck struct {
	Base Monitor
	At   int // 0 or 1
}

// NewStuck wraps base with a stuck-at-v fault.
func NewStuck(base Monitor, v int) (*Stuck, error) {
	if v != 0 && v != 1 {
		return nil, fmt.Errorf("monitor: stuck-at value %d must be 0 or 1", v)
	}
	return &Stuck{Base: base, At: v}, nil
}

// Bit implements Monitor: the output never moves.
func (s *Stuck) Bit(x, y float64) int { return s.At }

// Config implements Monitor.
func (s *Stuck) Config() Config { return s.Base.Config() }

// WithStuckMonitor returns a copy of the bank with monitor index mi
// replaced by a stuck-at-v version.
func (b *Bank) WithStuckMonitor(mi, v int) (*Bank, error) {
	if mi < 0 || mi >= len(b.monitors) {
		return nil, fmt.Errorf("monitor: index %d out of range", mi)
	}
	st, err := NewStuck(b.monitors[mi], v)
	if err != nil {
		return nil, err
	}
	out := make([]Monitor, len(b.monitors))
	copy(out, b.monitors)
	out[mi] = st
	return NewBank(out...), nil
}
