//go:build !race

package monitor

// raceEnabled lets allocation-pin tests skip under the race detector,
// whose instrumentation distorts allocation accounting.
const raceEnabled = false
