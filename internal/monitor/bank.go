package monitor

import (
	"context"
	"fmt"
	"math"

	"repro/internal/campaign"
	"repro/internal/mos"
)

// Code is an n-bit zone code. Monitor i (0-based) contributes bit i; the
// paper prints codes MSB-first with monitor 1 as the MSB, which String
// reproduces.
type Code uint32

// Bit returns bit i of the code.
func (c Code) Bit(i int) int { return int(c>>uint(i)) & 1 }

// HammingDistance returns the number of differing bits between two codes.
func (c Code) HammingDistance(o Code) int {
	x := uint32(c ^ o)
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// StringN renders the code as the paper does: n bits, monitor 1 first
// (MSB), e.g. Code 0b000100 with n=6 -> "001000"… see Bank.FormatCode for
// the bank-ordered rendering.
func (c Code) StringN(n int) string {
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		// monitor 1 (bit 0) printed first.
		b[i] = byte('0' + c.Bit(i))
	}
	return string(b)
}

// Bank is an ordered set of monitors producing a zone code per (x, y).
// Classify answers one point exactly; ClassifyBatch answers sample grids
// through the certified zone LUT (see lut.go) with bit-identical results.
type Bank struct {
	monitors []Monitor
	lutState
}

// NewBank creates a bank from monitors; order fixes bit positions.
func NewBank(ms ...Monitor) *Bank {
	return &Bank{monitors: ms}
}

// NewAnalyticTableI builds the paper's 6-monitor bank with the analytic
// model — the default signature-generation front end.
func NewAnalyticTableI() *Bank {
	cfgs := TableI()
	ms := make([]Monitor, len(cfgs))
	for i, c := range cfgs {
		ms[i] = MustAnalytic(c)
	}
	return NewBank(ms...)
}

// NewSpiceTableI builds the Table I bank at transistor level: every zone
// bit comes from a Newton-Raphson DC solution of the Fig. 2 netlist.
// Roughly three orders of magnitude slower than the analytic bank; used
// by integration tests and the hardware cross-check example.
func NewSpiceTableI() (*Bank, error) {
	cfgs := TableI()
	ms := make([]Monitor, len(cfgs))
	for i, c := range cfgs {
		m, err := NewSpice(c, nil)
		if err != nil {
			return nil, err
		}
		ms[i] = m
	}
	return NewBank(ms...), nil
}

// Size returns the number of monitors (code bits).
func (b *Bank) Size() int { return len(b.monitors) }

// Monitors returns the ordered monitors.
func (b *Bank) Monitors() []Monitor { return b.monitors }

// Classify returns the zone code at (x, y).
//
//mclint:hotpath
func (b *Bank) Classify(x, y float64) Code {
	var c Code
	for i, m := range b.monitors {
		if m.Bit(x, y) == 1 {
			c |= 1 << uint(i)
		}
	}
	return c
}

// FormatCode renders a code with monitor 1 as the most significant
// printed bit followed by its decimal value, matching Fig. 6 labels like
// "011100 (28)".
func (b *Bank) FormatCode(c Code) string {
	n := len(b.monitors)
	bits := make([]byte, n)
	dec := 0
	for i := 0; i < n; i++ {
		bit := c.Bit(i)
		bits[i] = byte('0' + bit)
		dec = dec<<1 | bit
	}
	return fmt.Sprintf("%s (%d)", string(bits), dec)
}

// Decimal returns the MSB-first decimal value used in the paper's labels.
func (b *Bank) Decimal(c Code) int {
	dec := 0
	for i := 0; i < len(b.monitors); i++ {
		dec = dec<<1 | c.Bit(i)
	}
	return dec
}

// Perturbed returns a new bank with every analytic monitor's input
// devices re-sampled from the given die (process + mismatch Monte Carlo).
// Non-analytic monitors are passed through unchanged.
func (b *Bank) Perturbed(die *mos.Die) *Bank {
	out := make([]Monitor, len(b.monitors))
	for i, m := range b.monitors {
		if a, ok := m.(*Analytic); ok {
			devs := a.Devices()
			for j := range devs {
				devs[j] = die.Perturb(devs[j])
			}
			out[i] = a.WithDevices(devs)
		} else {
			out[i] = m
		}
	}
	return NewBank(out...)
}

// MCEnvelope traces the zone boundary of monitor index mi across nDies
// Monte Carlo samples and returns, for each x column, the set of boundary
// y values found (suitable for quantile envelopes), in die order.
// Columns with no boundary crossing in a sample are skipped for that
// sample.
//
// Dies stream through the campaign reduction engine: each worker folds
// its chunk of dies into per-column slices that are merged in die order,
// and every die derives its random stream inside the worker as a pure
// function of (seed, die index) — no serial stream pre-pass, no O(dies)
// result slots, and a result that is bit-identical regardless of
// scheduling or worker count.
func (b *Bank) MCEnvelope(mi int, variation mos.Variation, seed uint64, nDies, nCols int) (xs []float64, ys [][]float64) {
	//mclint:ctxflow ctx-less legacy wrapper; MCEnvelopeCtx carries caller cancellation for everything else
	xs, ys, err := b.MCEnvelopeCtx(context.Background(), mi, variation, seed, nDies, nCols, campaign.Engine{})
	if err != nil {
		panic(err) // a background context never cancels; trials are error-free
	}
	return xs, ys
}

// MCEnvelopeCtx is MCEnvelope under an explicit context and campaign
// engine (worker bound, chunk size, progress). The only error it can
// return is the context's, once cancellation stops the die fan-out.
func (b *Bank) MCEnvelopeCtx(ctx context.Context, mi int, variation mos.Variation, seed uint64, nDies, nCols int, eng campaign.Engine) (xs []float64, ys [][]float64, err error) {
	a, ok := b.monitors[mi].(*Analytic)
	if !ok {
		panic("monitor: MCEnvelope requires an analytic monitor")
	}
	xs = make([]float64, nCols)
	for i := range xs {
		xs[i] = float64(i) / float64(nCols-1)
	}
	eng.Seed = seed
	// The reduction is the checkpointable envelope fold (envelope.go):
	// per-column boundary values appended in die order, chunks
	// concatenated column-wise, so the merged envelope matches a serial
	// run bit for bit.
	ys, err = campaign.Reduce(ctx, eng, nDies,
		envelopeReducer(nCols).Reducer,
		func(d int) ([]float64, error) {
			die := variation.SampleDie(eng.Stream(d))
			devs := a.Devices()
			for j := range devs {
				devs[j] = die.Perturb(devs[j])
			}
			pm := a.WithDevices(devs)
			col := make([]float64, nCols)
			for i, x := range xs {
				if y, ok := pm.BoundaryY(x, 0, 1); ok {
					col[i] = y
				} else {
					col[i] = math.NaN()
				}
			}
			return col, nil
		})
	if err != nil {
		return nil, nil, err
	}
	return xs, ys, nil
}
