package monitor

import "sync"

// The batched classifier: Bank.ClassifyBatch answers per-point zone
// codes from a precomputed grid — the certified zone LUT — and falls
// back to the exact scalar Classify wherever the table cannot *prove*
// the answer, so the batch API is bit-identical to the scalar one,
// point for point.
//
// # Certification argument
//
// Each analytic monitor's bit is the sign of its balance function
// Balance(x, y) = Σ_left IDSat(V_i) − Σ_right IDSat(V_i), where every
// input voltage V_i is x, y, or a DC constant. IDSat is nondecreasing in
// V_GS (it is 0.5·β·v_eff² with v_eff a nonnegative, nondecreasing
// softplus), so whenever all the inputs a given axis drives sit in one
// branch — true for every Table I configuration — Balance is monotone in
// x and monotone in y. A function monotone in each variable separately
// attains its extrema over an axis-aligned cell at the cell's corners;
// therefore, if the four corner balances of a cell share a strict sign,
// that sign — and hence the monitor's bit — holds over the entire closed
// cell. A cell where every monitor is sign-constant classifies to a
// single provable code.
//
// Two guards keep the proof airtight in floating point:
//
//   - corners must clear a margin (lutMarginA) far below any physical
//     monitor current but far above the ~1e-19 A discontinuity of the
//     softplus's numeric range switch, so the monotonicity argument
//     survives the implementation's branch boundaries;
//   - the grid spans [0,1)² with a power-of-two cell count, so the cell
//     index int(x·lutCells) is computed exactly (multiplication by a
//     power of two is exact in binary64) and a point can never be
//     attributed to a cell that does not contain it.
//
// Cells that straddle a boundary, touch the margin, or lie outside the
// grid fall back to the exact Balance evaluation. Banks that are not
// certifiable at all — a transistor-level Spice monitor in the bank, or
// a drive pattern that mixes one axis across both branches — skip the
// LUT and classify every point with the scalar path.

const (
	// lutCells is the zone LUT resolution per axis. Power of two, so the
	// cell index arithmetic below is exact.
	lutCells = 256
	// lutMarginA is the corner-balance magnitude (in amperes) below which
	// a cell is left uncertified. Monitor branch currents are on the µA
	// scale; the softplus range-switch discontinuity is below 1e-18 A.
	lutMarginA = 1e-15
)

// zoneLUT is one bank's certified classification grid over [0,1)².
type zoneLUT struct {
	n     int
	code  []Code // cell code, row-major [y][x], valid when known
	known []bool // cell certified: every monitor sign-constant with margin
}

// lookup returns the certified code of the cell containing (x, y).
// ok is false outside the grid or in an uncertified cell.
func (l *zoneLUT) lookup(x, y float64) (Code, bool) {
	if !(x >= 0 && x < 1 && y >= 0 && y < 1) {
		return 0, false // outside the grid (or NaN): exact fallback
	}
	i := int(x * float64(l.n))
	j := int(y * float64(l.n))
	idx := j*l.n + i
	if !l.known[idx] {
		return 0, false
	}
	return l.code[idx], true
}

// lutMonotone reports whether this monitor's balance is monotone in each
// plane axis: every input a given axis drives must sit in a single
// branch (left M1/M2 or right M3/M4). With IDSat nondecreasing in V_GS
// this makes Balance monotone in x and in y, which is what lets corner
// signs certify a whole cell. All six Table I configurations qualify.
func (a *Analytic) lutMonotone() bool {
	for _, kind := range []InputKind{DriveX, DriveY} {
		left, right := false, false
		for i, in := range a.cfg.Inputs {
			if in.Kind != kind {
				continue
			}
			if i < 2 {
				left = true
			} else {
				right = true
			}
		}
		if left && right {
			return false
		}
	}
	return true
}

// buildLUT constructs the certified zone LUT, or returns nil when the
// bank is not certifiable (non-analytic monitors, or a drive pattern
// without per-axis monotonicity).
func (b *Bank) buildLUT() *zoneLUT {
	mons := make([]*Analytic, len(b.monitors))
	for i, m := range b.monitors {
		a, ok := m.(*Analytic)
		if !ok || !a.lutMonotone() {
			return nil
		}
		mons[i] = a
	}
	n := lutCells
	l := &zoneLUT{n: n, code: make([]Code, n*n), known: make([]bool, n*n)}
	for i := range l.known {
		l.known[i] = true
	}
	// Corner balances of one monitor at a time ((n+1)² grid nodes at the
	// exact cell-edge coordinates i/n), then per-cell sign certification.
	bal := make([]float64, (n+1)*(n+1))
	for mi, a := range mons {
		for j := 0; j <= n; j++ {
			y := float64(j) / float64(n)
			for i := 0; i <= n; i++ {
				bal[j*(n+1)+i] = a.Balance(float64(i)/float64(n), y)
			}
		}
		bit := Code(1) << uint(mi)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				idx := j*n + i
				if !l.known[idx] {
					continue
				}
				c00 := bal[j*(n+1)+i]
				c10 := bal[j*(n+1)+i+1]
				c01 := bal[(j+1)*(n+1)+i]
				c11 := bal[(j+1)*(n+1)+i+1]
				s := signumMargin(c00)
				if s == 0 || signumMargin(c10) != s || signumMargin(c01) != s || signumMargin(c11) != s {
					l.known[idx] = false
					continue
				}
				if s != a.refSign {
					l.code[idx] |= bit
				}
			}
		}
	}
	return l
}

// signumMargin is signum with the certification margin: balances inside
// ±lutMarginA count as boundary (0) and leave the cell uncertified.
func signumMargin(v float64) int {
	switch {
	case v > lutMarginA:
		return 1
	case v < -lutMarginA:
		return -1
	default:
		return 0
	}
}

// lut returns the bank's zone LUT, building it once on first use (nil
// when the bank is not certifiable). Safe for concurrent use.
func (b *Bank) lut() *zoneLUT {
	b.lutOnce.Do(func() { b.zlut = b.buildLUT() })
	return b.zlut
}

// ClassifyBatch classifies every (xs[i], ys[i]) pair into codes[i]. It
// is bit-identical to calling Classify point by point: certified LUT
// cells answer by table lookup, and boundary-straddling, out-of-range or
// otherwise unprovable points fall back to the exact scalar evaluation.
// Banks containing non-analytic monitors (e.g. the transistor-level
// Spice bank) classify every point through the scalar path.
//
// The three slices must have equal length. After the one-time LUT
// construction the call performs no allocations.
//
//mclint:hotpath
func (b *Bank) ClassifyBatch(xs, ys []float64, codes []Code) {
	if len(xs) != len(ys) || len(codes) != len(xs) {
		panic("monitor: ClassifyBatch needs equal-length xs, ys and codes")
	}
	l := b.lut()
	if l == nil {
		for i := range xs {
			codes[i] = b.Classify(xs[i], ys[i])
		}
		return
	}
	for i := range xs {
		if c, ok := l.lookup(xs[i], ys[i]); ok {
			codes[i] = c
		} else {
			codes[i] = b.Classify(xs[i], ys[i])
		}
	}
}

// BatchInfo reports whether ClassifyBatch runs on a certified zone LUT
// for this bank and, if so, the fraction of grid cells it certified
// (the rest fall back to the exact classifier).
func (b *Bank) BatchInfo() (lutEnabled bool, certifiedFrac float64) {
	l := b.lut()
	if l == nil {
		return false, 0
	}
	n := 0
	for _, k := range l.known {
		if k {
			n++
		}
	}
	return true, float64(n) / float64(len(l.known))
}

// lutState carries the lazily built zone LUT of a bank.
type lutState struct {
	lutOnce sync.Once
	zlut    *zoneLUT
}
