package monitor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/campaign"
)

// envelopeBlobMagic frames a serialized Monte-Carlo envelope
// accumulator so a job log can never replay another campaign's blob
// into an envelope merge.
var envelopeBlobMagic = [4]byte{'M', 'C', 'E', '1'}

// envelopeReducer is the checkpointable reduction behind MCEnvelopeCtx.
// The accumulator is the envelope itself: per-column boundary values in
// die order. Fold appends one die's crossings (skipping columns the die
// never crossed); Merge concatenates chunks column-wise — chunk order
// is die order, so the merged envelope matches a serial run bit for
// bit, and shard accumulators concatenate exactly like chunks.
//
// The blob is magic "MCE1", a uvarint column count, then per column a
// uvarint length and that many little-endian float64 bit patterns —
// exact and canonical, so a restored accumulator resumes bit-identical.
func envelopeReducer(nCols int) campaign.CheckpointReducer[[]float64, [][]float64] {
	return campaign.CheckpointReducer[[]float64, [][]float64]{
		Reducer: campaign.Reducer[[]float64, [][]float64]{
			New: func() [][]float64 { return make([][]float64, nCols) },
			Fold: func(acc [][]float64, _ int, col []float64) [][]float64 {
				for i, y := range col {
					if !math.IsNaN(y) {
						acc[i] = append(acc[i], y)
					}
				}
				return acc
			},
			Merge: func(into, next [][]float64) [][]float64 {
				for i := range into {
					into[i] = append(into[i], next[i]...)
				}
				return into
			},
		},
		Marshal: func(acc [][]float64) ([]byte, error) {
			buf := append(make([]byte, 0, 64), envelopeBlobMagic[:]...)
			buf = binary.AppendUvarint(buf, uint64(len(acc)))
			for _, col := range acc {
				buf = binary.AppendUvarint(buf, uint64(len(col)))
				for _, y := range col {
					buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(y))
				}
			}
			return buf, nil
		},
		Unmarshal: func(data []byte) ([][]float64, error) {
			if len(data) < 4 {
				return nil, errors.New("monitor: envelope blob: truncated magic")
			}
			if [4]byte(data[:4]) != envelopeBlobMagic {
				return nil, errors.New("monitor: envelope blob: bad magic")
			}
			rest := data[4:]
			cols, n := binary.Uvarint(rest)
			if n <= 0 || n != uvarintLen(cols) {
				return nil, errors.New("monitor: envelope blob: bad column count encoding")
			}
			rest = rest[n:]
			if cols != uint64(nCols) {
				return nil, fmt.Errorf("monitor: envelope blob: %d columns, want %d", cols, nCols)
			}
			acc := make([][]float64, nCols)
			for i := range acc {
				cnt, n := binary.Uvarint(rest)
				// Padded uvarints decode but break the canonical-bytes
				// contract; reject them like any other malformation.
				if n <= 0 || n != uvarintLen(cnt) {
					return nil, errors.New("monitor: envelope blob: bad column length encoding")
				}
				rest = rest[n:]
				if cnt > uint64(len(rest))/8 {
					return nil, fmt.Errorf("monitor: envelope blob: column %d claims %d values beyond the data", i, cnt)
				}
				if cnt == 0 {
					continue
				}
				col := make([]float64, cnt)
				for j := range col {
					y := math.Float64frombits(binary.LittleEndian.Uint64(rest))
					if math.IsNaN(y) {
						return nil, errors.New("monitor: envelope blob: NaN boundary value")
					}
					col[j] = y
					rest = rest[8:]
				}
				acc[i] = col
			}
			if len(rest) != 0 {
				return nil, fmt.Errorf("monitor: envelope blob: %d trailing bytes", len(rest))
			}
			return acc, nil
		},
	}
}

// uvarintLen is the length of v's minimal uvarint encoding; the decoder
// uses it to reject padded (non-canonical) encodings.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
