package monitor

import (
	"bytes"
	"testing"
)

func TestEnvelopeBlobRoundTrip(t *testing.T) {
	red := envelopeReducer(3)
	for _, acc := range [][][]float64{
		make([][]float64, 3),
		{{0.25, 0.5}, nil, {1.0}},
		{{-1.5, 2.25, 3.125}, {0}, {7.75, -0.0625}},
	} {
		blob, err := red.Marshal(acc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := red.Unmarshal(blob)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(acc) {
			t.Fatalf("round trip %d columns -> %d", len(acc), len(got))
		}
		for i := range got {
			if len(got[i]) != len(acc[i]) {
				t.Fatalf("column %d: %d values -> %d", i, len(acc[i]), len(got[i]))
			}
			for j := range got[i] {
				if got[i][j] != acc[i][j] {
					t.Fatalf("column %d value %d: %v -> %v", i, j, acc[i][j], got[i][j])
				}
			}
		}
		blob2, err := red.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatal("non-canonical envelope encoding")
		}
	}
}

func TestEnvelopeBlobRejectsMalformed(t *testing.T) {
	red := envelopeReducer(2)
	good, err := red.Marshal([][]float64{{1.5}, {2.5, 3.5}})
	if err != nil {
		t.Fatal(err)
	}
	wrongCols, err := envelopeReducer(3).Marshal(make([][]float64, 3))
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		nil,
		[]byte("MC"),
		[]byte("XXXX\x02"),
		[]byte("MCE1"),           // truncated column count
		[]byte("MCE1\x02\xff"),   // truncated column length varint
		[]byte("MCE1\x02\x09"),   // column claims values beyond the data
		good[:len(good)-1],       // truncated float
		append(good[:4:4], 0xff), // bad uvarint
		append(bytes.Clone(good), 0),
		wrongCols,
	}
	for i, data := range bad {
		if _, err := red.Unmarshal(data); err == nil {
			t.Errorf("case %d: malformed blob accepted", i)
		}
	}
}
