package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Metric family types, as exposed in the TYPE line and the JSON form.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Counter is a monotonically increasing integer count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//mclint:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//mclint:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down. The zero value
// reads 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
//
//mclint:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (negative deltas decrease the gauge).
//
//mclint:hotpath
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative-style buckets
// (one counter per upper bound, plus an implicit +Inf bucket) and
// tracks their sum. Buckets are fixed at registration so exposition
// never depends on the observed values.
type Histogram struct {
	bounds []float64 // ascending upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic(fmt.Sprintf("metrics: histogram buckets not ascending: %v", bounds))
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
//
//mclint:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts by linear interpolation inside the holding bucket — the same
// estimate a Prometheus histogram_quantile gives. The +Inf bucket
// clamps to the highest finite bound. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.bounds) { // +Inf bucket
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

// DefBuckets is the default latency bucket layout, in seconds — wide
// enough for sub-millisecond chunk folds and multi-second campaigns.
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// family is one registered metric family: a plain instrument or a
// one-label vec of children.
type family struct {
	name  string
	typ   string
	help  string
	unit  string
	label string // label name; "" for a plain (unlabeled) family

	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() float64
	histogram *Histogram
	buckets   []float64 // vec histograms stamp children from this

	mu   sync.Mutex
	kids map[string]any // label value -> *Counter | *Histogram
}

// child returns the vec child for a label value, creating it on first
// use.
func (f *family) child(value string) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if k, ok := f.kids[value]; ok {
		return k
	}
	var k any
	switch f.typ {
	case TypeCounter:
		k = &Counter{}
	case TypeHistogram:
		k = newHistogram(f.buckets)
	default:
		panic("metrics: vec of type " + f.typ)
	}
	f.kids[value] = k
	return k
}

// sortedKids snapshots the children in sorted label order.
func (f *family) sortedKids() ([]string, []any) {
	f.mu.Lock()
	defer f.mu.Unlock()
	keys := make([]string, 0, len(f.kids))
	for k := range f.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([]any, len(keys))
	for i, k := range keys {
		vals[i] = f.kids[k]
	}
	return keys, vals
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ f *family }

// With returns the counter for a label value, creating it on first
// use. Cache the result on hot paths.
func (v *CounterVec) With(value string) *Counter { return v.f.child(value).(*Counter) }

// HistogramVec is a histogram family keyed by one label.
type HistogramVec struct{ f *family }

// With returns the histogram for a label value, creating it on first
// use. Cache the result on hot paths.
func (v *HistogramVec) With(value string) *Histogram { return v.f.child(value).(*Histogram) }

// Registry holds metric families in registration order. Register
// everything at construction time; registration is not safe against
// concurrent scrapes and a duplicate or empty name panics (programmer
// error, caught by the first scrape test).
type Registry struct {
	mu    sync.Mutex
	fams  []*family
	names map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{names: map[string]bool{}} }

func (r *Registry) add(f *family) {
	if f.name == "" {
		panic("metrics: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[f.name] {
		panic("metrics: duplicate metric " + f.name)
	}
	r.names[f.name] = true
	r.fams = append(r.fams, f)
}

// Counter registers and returns a plain counter.
func (r *Registry) Counter(name, help, unit string) *Counter {
	c := &Counter{}
	r.add(&family{name: name, typ: TypeCounter, help: help, unit: unit, counter: c})
	return c
}

// CounterVec registers a counter family keyed by one label.
func (r *Registry) CounterVec(name, help, unit, label string) *CounterVec {
	f := &family{name: name, typ: TypeCounter, help: help, unit: unit, label: label, kids: map[string]any{}}
	r.add(f)
	return &CounterVec{f: f}
}

// Gauge registers and returns a plain gauge.
func (r *Registry) Gauge(name, help, unit string) *Gauge {
	g := &Gauge{}
	r.add(&family{name: name, typ: TypeGauge, help: help, unit: unit, gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// the hook for values derived from live state (e.g. the fabric's
// worker heartbeat age). fn must be safe to call concurrently.
func (r *Registry) GaugeFunc(name, help, unit string, fn func() float64) {
	r.add(&family{name: name, typ: TypeGauge, help: help, unit: unit, gaugeFn: fn})
}

// Histogram registers a plain fixed-bucket histogram; nil buckets
// selects DefBuckets.
func (r *Registry) Histogram(name, help, unit string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	h := newHistogram(buckets)
	r.add(&family{name: name, typ: TypeHistogram, help: help, unit: unit, histogram: h})
	return h
}

// HistogramVec registers a histogram family keyed by one label; nil
// buckets selects DefBuckets.
func (r *Registry) HistogramVec(name, help, unit, label string, buckets []float64) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := &family{name: name, typ: TypeHistogram, help: help, unit: unit, label: label,
		buckets: buckets, kids: map[string]any{}}
	r.add(f)
	return &HistogramVec{f: f}
}

// families snapshots the registration-ordered family list.
func (r *Registry) families() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, len(r.fams))
	copy(out, r.fams)
	return out
}
