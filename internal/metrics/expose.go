package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WriteProm renders the registry in Prometheus text exposition format
// (version 0.0.4): families in registration order, vec children in
// sorted label order, so two scrapes of identical state are
// byte-identical. The whole page is assembled in memory and written
// once; the write error is returned.
func (r *Registry) WriteProm(w io.Writer) error {
	var b bytes.Buffer
	for _, f := range r.families() {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, promEscapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		switch {
		case f.counter != nil:
			fmt.Fprintf(&b, "%s %d\n", f.name, f.counter.Value())
		case f.gauge != nil:
			fmt.Fprintf(&b, "%s %s\n", f.name, promFloat(f.gauge.Value()))
		case f.gaugeFn != nil:
			fmt.Fprintf(&b, "%s %s\n", f.name, promFloat(f.gaugeFn()))
		case f.histogram != nil:
			promHistogram(&b, f.name, "", "", f.histogram)
		default: // vec
			keys, kids := f.sortedKids()
			for i, key := range keys {
				switch k := kids[i].(type) {
				case *Counter:
					fmt.Fprintf(&b, "%s{%s=%q} %d\n", f.name, f.label, key, k.Value())
				case *Histogram:
					promHistogram(&b, f.name, f.label, key, k)
				}
			}
		}
	}
	_, err := w.Write(b.Bytes())
	return err
}

// promHistogram renders one histogram's cumulative buckets, sum and
// count; label/value add the vec dimension when non-empty.
func promHistogram(b *bytes.Buffer, name, label, value string, h *Histogram) {
	sep := func(le string) string {
		if label == "" {
			return fmt.Sprintf(`{le=%q}`, le)
		}
		return fmt.Sprintf(`{%s=%q,le=%q}`, label, value, le)
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = promFloat(h.bounds[i])
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, sep(le), cum)
	}
	plain := ""
	if label != "" {
		plain = fmt.Sprintf(`{%s=%q}`, label, value)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, plain, promFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, plain, cum)
}

// promFloat renders a float the way Prometheus expects.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promEscapeHelp escapes newlines and backslashes in HELP text.
func promEscapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// JSON exposition structures — the machine-friendly variant mcload
// consumes (bucket counts come cumulative, exactly as the text form).
type (
	// JSONSnapshot is the whole registry.
	JSONSnapshot struct {
		Families []JSONFamily `json:"families"`
	}
	// JSONFamily is one metric family.
	JSONFamily struct {
		Name    string       `json:"name"`
		Type    string       `json:"type"`
		Help    string       `json:"help"`
		Unit    string       `json:"unit,omitempty"`
		Label   string       `json:"label,omitempty"`
		Metrics []JSONMetric `json:"metrics"`
	}
	// JSONMetric is one sample (or histogram) of a family.
	JSONMetric struct {
		LabelValue string       `json:"label_value,omitempty"`
		Value      *float64     `json:"value,omitempty"`
		Buckets    []JSONBucket `json:"buckets,omitempty"`
		Sum        *float64     `json:"sum,omitempty"`
		Count      *uint64      `json:"count,omitempty"`
	}
	// JSONBucket is one cumulative histogram bucket.
	JSONBucket struct {
		LE    float64 `json:"le"` // +Inf encodes as the largest finite float
		Count uint64  `json:"count"`
	}
)

// Snapshot captures the registry's current state in its JSON form.
func (r *Registry) Snapshot() JSONSnapshot {
	snap := JSONSnapshot{Families: []JSONFamily{}}
	for _, f := range r.families() {
		jf := JSONFamily{Name: f.name, Type: f.typ, Help: f.help, Unit: f.unit, Label: f.label, Metrics: []JSONMetric{}}
		switch {
		case f.counter != nil:
			jf.Metrics = append(jf.Metrics, scalarMetric("", float64(f.counter.Value())))
		case f.gauge != nil:
			jf.Metrics = append(jf.Metrics, scalarMetric("", f.gauge.Value()))
		case f.gaugeFn != nil:
			jf.Metrics = append(jf.Metrics, scalarMetric("", f.gaugeFn()))
		case f.histogram != nil:
			jf.Metrics = append(jf.Metrics, histMetric("", f.histogram))
		default:
			keys, kids := f.sortedKids()
			for i, key := range keys {
				switch k := kids[i].(type) {
				case *Counter:
					jf.Metrics = append(jf.Metrics, scalarMetric(key, float64(k.Value())))
				case *Histogram:
					jf.Metrics = append(jf.Metrics, histMetric(key, k))
				}
			}
		}
		snap.Families = append(snap.Families, jf)
	}
	return snap
}

func scalarMetric(labelValue string, v float64) JSONMetric {
	return JSONMetric{LabelValue: labelValue, Value: &v}
}

func histMetric(labelValue string, h *Histogram) JSONMetric {
	m := JSONMetric{LabelValue: labelValue, Buckets: make([]JSONBucket, 0, len(h.counts))}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := math.MaxFloat64
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		m.Buckets = append(m.Buckets, JSONBucket{LE: le, Count: cum})
	}
	sum := h.Sum()
	m.Sum = &sum
	m.Count = &cum
	return m
}

// Find returns the named family from a snapshot, or false — the lookup
// mcload's before/after deltas use.
func (s JSONSnapshot) Find(name string) (JSONFamily, bool) {
	for _, f := range s.Families {
		if f.Name == name {
			return f, true
		}
	}
	return JSONFamily{}, false
}

// Total sums a family's scalar values across children — the counter
// delta helper.
func (f JSONFamily) Total() float64 {
	var t float64
	for _, m := range f.Metrics {
		if m.Value != nil {
			t += *m.Value
		}
	}
	return t
}

// WriteJSON renders the registry's JSON snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Handler serves the registry at GET /metrics: Prometheus text by
// default, the JSON variant with ?format=json. helpDoc, when non-empty,
// names the human catalogue (docs/METRICS.md) in a leading comment and
// the response headers so a scrape points back at its documentation.
func Handler(r *Registry, helpDoc string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", "GET")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if helpDoc != "" {
			w.Header().Set("X-Metrics-Reference", helpDoc)
		}
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w) // client hang-up mid-scrape has no handler
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if helpDoc != "" {
			_, _ = fmt.Fprintf(w, "# Metric reference: %s\n", helpDoc)
		}
		_ = r.WriteProm(w) // client hang-up mid-scrape has no handler
	})
}
