// Package metrics is the repository's stdlib-only instrumentation
// layer: counters, gauges, and fixed-bucket histograms collected in a
// Registry and exposed in Prometheus text exposition format or a JSON
// variant (see Handler and docs/METRICS.md for the catalogue).
//
// Contract:
//
//   - Determinism of exposition: families serialize in registration
//     order and labeled children in sorted label order, so two scrapes
//     of the same state are byte-identical and diffs between scrapes
//     are meaningful. Registration happens once, at construction, on a
//     deterministic code path (serve.New, fabric.NewMetrics) — never
//     lazily from request handlers.
//   - Hot-path cost: Counter.Inc/Add, Gauge.Set/Add and
//     Histogram.Observe are single atomic operations (a short CAS loop
//     for float accumulation) and allocation-free — they pass the
//     hotalloc analyzer and may be called from pinned loops. Vec
//     lookups (With) take a lock and may allocate on first use of a
//     label; resolve children once and cache them where it matters.
//   - Observation only: nothing in this package reads instrument
//     values back into computations. Metrics observe the engine but
//     can never affect campaign results, so enabling them preserves
//     the bit-identity guarantees of internal/campaign.
//
// The package deliberately implements only what the service needs: no
// label sets beyond one dimension, no summaries, no push — the scrape
// endpoint plus cmd/mcload's before/after delta is the whole
// consumption story.
package metrics
