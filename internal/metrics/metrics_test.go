package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// newTestRegistry builds a registry exercising every family kind.
func newTestRegistry() (*Registry, *Counter, *Gauge, *Histogram, *CounterVec, *HistogramVec) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Total operations.", "1")
	g := r.Gauge("test_inflight", "Operations in flight.", "1")
	h := r.Histogram("test_latency_seconds", "Operation latency.", "seconds", []float64{0.1, 1, 10})
	cv := r.CounterVec("test_requests_total", "Requests by route.", "1", "route")
	hv := r.HistogramVec("test_route_seconds", "Route latency.", "seconds", "route", []float64{0.5, 5})
	r.GaugeFunc("test_age_seconds", "Scrape-time computed age.", "seconds", func() float64 { return 42.5 })
	return r, c, g, h, cv, hv
}

func TestCounterGaugeHistogram(t *testing.T) {
	_, c, g, h, _, _ := newTestRegistry()
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	for _, v := range []float64{0.05, 0.5, 0.5, 2, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("histogram count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-103.05) > 1e-12 {
		t.Fatalf("histogram sum = %v, want 103.05", got)
	}
	// Buckets are cumulative: le=0.1 -> 1, le=1 -> 3, le=10 -> 4, +Inf -> 5.
	var b bytes.Buffer
	r2 := NewRegistry()
	h2 := r2.Histogram("h", "h", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 2, 100} {
		h2.Observe(v)
	}
	if err := r2.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`h_bucket{le="0.1"} 1`, `h_bucket{le="1"} 3`, `h_bucket{le="10"} 4`, `h_bucket{le="+Inf"} 5`,
		`h_count 5`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("prom output missing %q:\n%s", want, b.String())
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "h", "", []float64{1, 2, 4, 8})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// 100 observations uniform in (0, 4]: quantiles interpolate.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	if got := h.Quantile(0.5); math.Abs(got-2) > 0.2 {
		t.Fatalf("p50 = %v, want ~2", got)
	}
	if got := h.Quantile(1); got != 4 {
		t.Fatalf("p100 = %v, want 4 (holding bucket bound)", got)
	}
	// Values beyond the last bound clamp to it.
	h2 := NewRegistry().Histogram("h2", "h", "", []float64{1})
	h2.Observe(50)
	if got := h2.Quantile(0.99); got != 1 {
		t.Fatalf("overflow quantile = %v, want clamp to 1", got)
	}
}

func TestVecChildrenSortedAndStable(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("reqs", "r", "1", "route")
	cv.With("/z").Add(1)
	cv.With("/a").Add(2)
	cv.With("/m").Add(3)
	var b bytes.Buffer
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	ia, im, iz := strings.Index(out, `route="/a"`), strings.Index(out, `route="/m"`), strings.Index(out, `route="/z"`)
	if ia < 0 || im < 0 || iz < 0 || !(ia < im && im < iz) {
		t.Fatalf("vec children not in sorted label order:\n%s", out)
	}
	if cv.With("/a") != cv.With("/a") {
		t.Fatal("With returned different children for one label")
	}
}

// TestScrapeDeterminism pins the exposition contract: two scrapes of
// identical state are byte-identical, in both formats, with families in
// registration order.
func TestScrapeDeterminism(t *testing.T) {
	r, c, g, h, cv, hv := newTestRegistry()
	c.Add(7)
	g.Set(2)
	h.Observe(0.3)
	cv.With("/v1/jobs").Inc()
	cv.With("/metrics").Inc()
	hv.With("/v1/jobs").Observe(1.2)

	var a1, a2, j1, j2 bytes.Buffer
	if err := r.WriteProm(&a1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteProm(&a2); err != nil {
		t.Fatal(err)
	}
	if a1.String() != a2.String() {
		t.Fatalf("two text scrapes differ:\n%s\n----\n%s", a1.String(), a2.String())
	}
	if err := r.WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if j1.String() != j2.String() {
		t.Fatalf("two JSON scrapes differ")
	}
	// Families appear in registration order.
	order := []string{"test_ops_total", "test_inflight", "test_latency_seconds",
		"test_requests_total", "test_route_seconds", "test_age_seconds"}
	last := -1
	for _, name := range order {
		i := strings.Index(a1.String(), "# TYPE "+name+" ")
		if i < 0 {
			t.Fatalf("family %s missing from scrape", name)
		}
		if i < last {
			t.Fatalf("family %s out of registration order", name)
		}
		last = i
	}
	var snap JSONSnapshot
	if err := json.Unmarshal(j1.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	for i, name := range order {
		if snap.Families[i].Name != name {
			t.Fatalf("JSON family[%d] = %s, want %s", i, snap.Families[i].Name, name)
		}
	}
	if f, ok := snap.Find("test_ops_total"); !ok || f.Total() != 7 {
		t.Fatalf("Find/Total = %v, want 7", f.Total())
	}
}

func TestHandlerFormats(t *testing.T) {
	r, c, _, _, _, _ := newTestRegistry()
	c.Inc()
	h := Handler(r, "docs/METRICS.md")

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "test_ops_total 1") {
		t.Fatalf("text scrape: code %d body %q", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "docs/METRICS.md") {
		t.Fatal("text scrape does not reference docs/METRICS.md")
	}
	if got := rec.Header().Get("X-Metrics-Reference"); got != "docs/METRICS.md" {
		t.Fatalf("X-Metrics-Reference = %q", got)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	var snap JSONSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("JSON scrape undecodable: %v", err)
	}
	if _, ok := snap.Find("test_ops_total"); !ok {
		t.Fatal("JSON scrape missing test_ops_total")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST /metrics = %d, want 405", rec.Code)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "d", "1")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("dup", "d", "1")
}

// TestConcurrentUpdates runs every instrument under the race detector.
func TestConcurrentUpdates(t *testing.T) {
	r, c, g, h, cv, hv := newTestRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			route := "/r" + string(rune('a'+w%3))
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) * 0.001)
				cv.With(route).Inc()
				hv.With(route).Observe(0.2)
			}
		}(w)
	}
	scrapes := make(chan struct{})
	go func() {
		defer close(scrapes)
		for i := 0; i < 50; i++ {
			var b bytes.Buffer
			if err := r.WriteProm(&b); err != nil {
				t.Errorf("scrape under load: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-scrapes
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := g.Value(); got != 8000 {
		t.Fatalf("gauge = %v, want 8000", got)
	}
}

// TestHotPathAllocationFree pins the hotalloc contract at runtime: the
// increments campaign hot loops may touch allocate nothing.
func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "c", "1")
	g := r.Gauge("g", "g", "1")
	h := r.Histogram("h", "h", "s", nil)
	if n := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(3) }); n != 0 {
		t.Errorf("Counter Inc/Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(1); g.Add(0.5) }); n != 0 {
		t.Errorf("Gauge Set/Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.42) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op", n)
	}
}
