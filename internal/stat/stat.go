// Package stat provides the descriptive-statistics and regression substrate
// used by the Monte Carlo experiments, the detection analysis, and the
// alternate-test baseline. Everything is stdlib-only and deterministic.
package stat

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reducers that need at least one sample.
var ErrEmpty = errors.New("stat: empty sample")

// Mean returns the arithmetic mean of xs. It panics on empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance. For a single sample
// it returns 0.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		panic(ErrEmpty)
	}
	if n == 1 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the extrema of xs. It panics on empty input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type 7, the numpy default).
// xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	if q < 0 || q > 1 {
		panic("stat: quantile out of [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Correlation returns the Pearson correlation coefficient of paired samples.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stat: Correlation length mismatch")
	}
	if len(xs) < 2 {
		panic(ErrEmpty)
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	den := math.Sqrt(sxx * syy)
	if den == 0 {
		return 0
	}
	return sxy / den
}

// Summary bundles the usual descriptive statistics of one sample.
type Summary struct {
	N           int
	Mean, Std   float64
	Min, Max    float64
	Median      float64
	P05, P95    float64
	P2_5, P97_5 float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	lo, hi := MinMax(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    StdDev(xs),
		Min:    lo,
		Max:    hi,
		Median: Median(xs),
		P05:    Quantile(xs, 0.05),
		P95:    Quantile(xs, 0.95),
		P2_5:   Quantile(xs, 0.025),
		P97_5:  Quantile(xs, 0.975),
	}
}

// KolmogorovSmirnov returns the two-sample KS statistic D: the maximum
// distance between the empirical CDFs of a and b. Used by the noise
// experiments to show that null and deviated NDF distributions are
// statistically distinct.
func KolmogorovSmirnov(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic(ErrEmpty)
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	i, j := 0, 0
	d := 0.0
	for i < len(as) && j < len(bs) {
		var x float64
		if as[i] <= bs[j] {
			x = as[i]
		} else {
			x = bs[j]
		}
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}

// KSSignificant reports whether a two-sample KS statistic d exceeds the
// asymptotic critical value at significance alpha (supported: 0.05 and
// 0.01) for sample sizes n and m.
func KSSignificant(d float64, n, m int, alpha float64) bool {
	if n <= 0 || m <= 0 {
		panic(ErrEmpty)
	}
	var c float64
	switch {
	case alpha <= 0.01:
		c = 1.628
	default:
		c = 1.358
	}
	crit := c * math.Sqrt(float64(n+m)/(float64(n)*float64(m)))
	return d > crit
}

// Running accumulates streaming mean/variance via Welford's algorithm,
// avoiding storage of the full sample. The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Push adds one observation.
func (r *Running) Push(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// Merge folds another Running accumulator into r via the standard
// parallel-variance combination (Chan et al.), so per-chunk moment
// accumulators merged in stable index order give the same mean/variance
// at any worker count — the streaming campaigns' merge discipline. The
// combination is floating-point, so unlike the integer-count sketches
// it is only reproducible at a fixed chunk grouping (the same contract
// every float fold under campaign.Reduce already carries).
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	na, nb := float64(r.n), float64(o.n)
	n := na + nb
	delta := o.mean - r.mean
	r.mean += delta * nb / n
	r.m2 += o.m2 + delta*delta*na*nb/n
	r.n += o.n
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
}

// N returns the number of observations pushed so far.
func (r *Running) N() int { return r.n }

// Mean returns the running mean (0 before any observation).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased running variance (0 for n < 2).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the unbiased running standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation (0 before any observation).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 before any observation).
func (r *Running) Max() float64 { return r.max }
