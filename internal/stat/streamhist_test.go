package stat

import (
	"bytes"
	"math"
	"testing"
)

func streamHistSample(n int, seed uint64) []float64 {
	r := testRand(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 10*r.float() - 2 // spills below lo and above hi of [0, 5)
	}
	return xs
}

// TestStreamingHistogramMatchesHistogram pins the bit-identity claim
// the mcmon migration rests on: over the same range, the streamed
// histogram's bins, overflow counts, and ASCII rendering are identical
// to the materialize-then-bin Histogram.
func TestStreamingHistogramMatchesHistogram(t *testing.T) {
	xs := streamHistSample(5000, 21)
	old := NewHistogram(0, 5, 15)
	sh := NewStreamingHistogram(0, 5, 15)
	for _, x := range xs {
		old.Push(x)
		sh.Push(x)
	}
	if sh.Under() != uint64(old.Under) || sh.Over() != uint64(old.Over) || sh.N() != old.Total() {
		t.Fatalf("overflow counts drifted: under %d/%d over %d/%d n %d/%d",
			sh.Under(), old.Under, sh.Over(), old.Over, sh.N(), old.Total())
	}
	for i := 0; i < sh.Bins(); i++ {
		if sh.Count(i) != uint64(old.Counts[i]) {
			t.Fatalf("bin %d: %d vs %d", i, sh.Count(i), old.Counts[i])
		}
		if sh.BinCenter(i) != old.BinCenter(i) {
			t.Fatalf("bin %d center: %v vs %v", i, sh.BinCenter(i), old.BinCenter(i))
		}
	}
	if got, want := sh.ASCII(40), old.ASCII(40); got != want {
		t.Fatalf("ASCII rendering drifted:\n%s\nvs\n%s", got, want)
	}
}

func TestStreamingHistogramMergeMatchesSingleStream(t *testing.T) {
	xs := streamHistSample(2001, 33)
	whole := NewStreamingHistogram(0, 5, 32)
	for _, x := range xs {
		whole.Push(x)
	}
	want, err := whole.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for _, chunks := range []int{1, 4, 8} {
		merged := NewStreamingHistogram(0, 5, 32)
		size := (len(xs) + chunks - 1) / chunks
		for c := 0; c < chunks; c++ {
			part := NewStreamingHistogram(0, 5, 32)
			lo, hi := c*size, min((c+1)*size, len(xs))
			for _, x := range xs[lo:hi] {
				part.Push(x)
			}
			merged.Merge(part)
		}
		got, err := merged.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%d-chunk merge differs from single stream", chunks)
		}
	}
}

func TestStreamingHistogramMergeShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched shapes must panic")
		}
	}()
	NewStreamingHistogram(0, 1, 4).Merge(NewStreamingHistogram(0, 1, 8))
}

func TestStreamingHistogramQuantile(t *testing.T) {
	xs := streamHistSample(4000, 55)
	// Exact-covering range so no sample clamps to an edge.
	lo, hi := MinMax(xs)
	sh := NewStreamingHistogram(lo, hi+1e-9, 1<<12)
	for _, x := range xs {
		sh.Push(x)
	}
	halfBin := (sh.Hi() - sh.Lo()) / float64(sh.Bins()) / 2
	for _, q := range []float64{0.025, 0.25, 0.5, 0.75, 0.975} {
		got, err := sh.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		want := Quantile(xs, q)
		if math.Abs(got-want) > 2*halfBin {
			t.Fatalf("q %v: %v vs exact %v exceeds bin width", q, got, want)
		}
	}
	if _, err := sh.Quantile(-0.1); err == nil {
		t.Fatal("out-of-range quantile must fail")
	}
	empty := NewStreamingHistogram(0, 1, 4)
	if _, err := empty.Quantile(0.5); err == nil {
		t.Fatal("empty histogram quantile must fail")
	}
	nan := NewStreamingHistogram(0, 1, 4)
	nan.Push(0.5)
	nan.Push(math.NaN())
	if nan.Invalid() != 1 {
		t.Fatalf("invalid = %d, want 1", nan.Invalid())
	}
	if _, err := nan.Quantile(0.5); err == nil {
		t.Fatal("NaN-poisoned histogram quantile must fail")
	}
}

func TestStreamingHistogramResetReuse(t *testing.T) {
	sh := NewStreamingHistogram(0, 5, 16)
	for _, x := range streamHistSample(300, 77) {
		sh.Push(x)
	}
	sh.Reset()
	fresh := NewStreamingHistogram(0, 5, 16)
	for _, x := range streamHistSample(200, 78) {
		sh.Push(x)
		fresh.Push(x)
	}
	a, _ := sh.MarshalBinary()
	b, _ := fresh.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("reused histogram differs from a fresh one")
	}
}

func TestStreamingHistogramBinaryRoundTrip(t *testing.T) {
	sh := NewStreamingHistogram(-2, 8, 64)
	for _, x := range streamHistSample(1500, 91) {
		sh.Push(x)
	}
	data, err := sh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back StreamingHistogram
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	again, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("round trip is not canonical")
	}
}

func TestStreamingHistogramUnmarshalRejectsCorruption(t *testing.T) {
	sh := NewStreamingHistogram(0, 1, 8)
	sh.Push(0.25)
	sh.Push(0.75)
	good, _ := sh.MarshalBinary()
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE00000000000000000000"),
		"truncated": good[:len(good)-1],
		"trailing":  append(append([]byte{}, good...), 7),
	}
	// Flip hi below lo.
	badRange := append([]byte{}, good...)
	copy(badRange[12:20], badRange[4:12])
	cases["inverted range"] = badRange
	for name, data := range cases {
		var back StreamingHistogram
		if err := back.UnmarshalBinary(data); err == nil {
			t.Fatalf("%s: decode must fail", name)
		}
	}
}

func TestStreamingHistogramPushZeroAlloc(t *testing.T) {
	sh := NewStreamingHistogram(0, 5, 15)
	i := 0
	if avg := testing.AllocsPerRun(1000, func() {
		sh.Push(float64(i%60) * 0.1)
		i++
	}); avg != 0 {
		t.Fatalf("Push allocates %v per run, pinned at 0", avg)
	}
}
