package stat

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if v := Variance(xs); math.Abs(v-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", v, 32.0/7.0)
	}
}

func TestVarianceSingleSample(t *testing.T) {
	if v := Variance([]float64{3}); v != 0 {
		t.Fatalf("Variance of single sample = %v, want 0", v)
	}
}

func TestMeanPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty sample")
		}
	}()
	Mean(nil)
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v,%v want -1,7", lo, hi)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.3); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Quantile(0.3) = %v, want 3", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("Quantile mutated its input: %v", xs)
	}
}

func TestCorrelationPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if r := Correlation(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Fatalf("Correlation = %v, want 1", r)
	}
	neg := []float64{8, 6, 4, 2}
	if r := Correlation(xs, neg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("Correlation = %v, want -1", r)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Summarize(xs)
	if s.N != 10 || s.Min != 1 || s.Max != 10 {
		t.Fatalf("bad summary %+v", s)
	}
	if math.Abs(s.Mean-5.5) > 1e-12 || math.Abs(s.Median-5.5) > 1e-12 {
		t.Fatalf("mean/median wrong in %+v", s)
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	r := rng.New(17)
	xs := make([]float64, 500)
	var run Running
	for i := range xs {
		xs[i] = r.Gauss(3, 2)
		run.Push(xs[i])
	}
	if math.Abs(run.Mean()-Mean(xs)) > 1e-10 {
		t.Fatalf("running mean %v vs batch %v", run.Mean(), Mean(xs))
	}
	if math.Abs(run.Variance()-Variance(xs)) > 1e-8 {
		t.Fatalf("running var %v vs batch %v", run.Variance(), Variance(xs))
	}
	lo, hi := MinMax(xs)
	if run.Min() != lo || run.Max() != hi {
		t.Fatal("running extrema disagree with batch")
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	f, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Intercept-1) > 1e-12 || math.Abs(f.Slope-2) > 1e-12 {
		t.Fatalf("fit = %+v, want intercept 1 slope 2", f)
	}
	if math.Abs(f.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v, want 1", f.R2)
	}
	if y := f.Eval(10); math.Abs(y-21) > 1e-12 {
		t.Fatalf("Eval(10) = %v, want 21", y)
	}
}

func TestFitLineNoisy(t *testing.T) {
	r := rng.New(4)
	var xs, ys []float64
	for i := 0; i < 400; i++ {
		x := float64(i) / 40
		xs = append(xs, x)
		ys = append(ys, 2+0.5*x+r.Gauss(0, 0.05))
	}
	f, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-0.5) > 0.02 || math.Abs(f.Intercept-2) > 0.05 {
		t.Fatalf("noisy fit off: %+v", f)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if _, err := FitLine([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected error for zero x variance")
	}
}

func TestPolyFitQuadratic(t *testing.T) {
	xs := []float64{-2, -1, 0, 1, 2}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 - x + 2*x*x
	}
	c, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, -1, 2}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-9 {
			t.Fatalf("coef[%d] = %v, want %v", i, c[i], want[i])
		}
	}
	if y := PolyEval(c, 3); math.Abs(y-18) > 1e-8 {
		t.Fatalf("PolyEval(3) = %v, want 18", y)
	}
}

func TestPolyFitUnderdetermined(t *testing.T) {
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, 3); err == nil {
		t.Fatal("expected error for underdetermined fit")
	}
}

func TestMultiFitRecoversPlane(t *testing.T) {
	// y = 1 + 2a - 3b with intercept column.
	var X [][]float64
	var y []float64
	r := rng.New(9)
	for i := 0; i < 100; i++ {
		a, b := r.Float64(), r.Float64()
		X = append(X, []float64{1, a, b})
		y = append(y, 1+2*a-3*b)
	}
	beta, err := MultiFit(X, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, -3}
	for i := range want {
		if math.Abs(beta[i]-want[i]) > 1e-6 {
			t.Fatalf("beta = %v, want %v", beta, want)
		}
	}
}

func TestRMSE(t *testing.T) {
	if e := RMSE([]float64{1, 2}, []float64{1, 2}); e != 0 {
		t.Fatalf("RMSE of identical = %v, want 0", e)
	}
	if e := RMSE([]float64{0, 0}, []float64{3, 4}); math.Abs(e-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("RMSE = %v, want sqrt(12.5)", e)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Push(float64(i) + 0.5)
	}
	h.Push(-1)
	h.Push(11)
	for i, c := range h.Counts {
		if c != 1 {
			t.Fatalf("bin %d count = %d, want 1", i, c)
		}
	}
	if h.Under != 1 || h.Over != 1 || h.Total() != 12 {
		t.Fatalf("under/over/total = %d/%d/%d", h.Under, h.Over, h.Total())
	}
	if bc := h.BinCenter(0); math.Abs(bc-0.5) > 1e-12 {
		t.Fatalf("BinCenter(0) = %v, want 0.5", bc)
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 3, 3)
	h.Push(1.5)
	h.Push(1.2)
	h.Push(0.5)
	if m := h.Mode(); math.Abs(m-1.5) > 1e-12 {
		t.Fatalf("Mode = %v, want 1.5", m)
	}
	if s := h.ASCII(20); len(s) == 0 {
		t.Fatal("ASCII render empty")
	}
}

// Property: quantile is monotone in q and bounded by the extremes.
func TestQuantileMonotoneProperty(t *testing.T) {
	prop := func(raw [9]uint16) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		lo, hi := MinMax(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.1 {
			qq := math.Min(q, 1)
			v := Quantile(xs, qq)
			if v < prev-1e-9 || v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is translation invariant and scales quadratically.
func TestVarianceScalingProperty(t *testing.T) {
	prop := func(raw [8]int16, shiftRaw int16) bool {
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		shift := float64(shiftRaw)
		for i, v := range raw {
			xs[i] = float64(v)
			ys[i] = 2*xs[i] + shift
		}
		vx, vy := Variance(xs), Variance(ys)
		return math.Abs(vy-4*vx) <= 1e-6*(1+math.Abs(vx))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestKolmogorovSmirnovIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d := KolmogorovSmirnov(a, a); d != 0 {
		t.Fatalf("self KS = %v, want 0", d)
	}
}

func TestKolmogorovSmirnovDisjoint(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if d := KolmogorovSmirnov(a, b); math.Abs(d-1) > 1e-12 {
		t.Fatalf("disjoint KS = %v, want 1", d)
	}
}

func TestKolmogorovSmirnovHandCase(t *testing.T) {
	// a = {1,3}, b = {2,4}: after 1, F_a=0.5 F_b=0; after 2, 0.5/0.5;
	// after 3, 1/0.5; after 4, 1/1 -> D = 0.5.
	if d := KolmogorovSmirnov([]float64{1, 3}, []float64{2, 4}); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("KS = %v, want 0.5", d)
	}
}

func TestKSSignificance(t *testing.T) {
	r := rng.New(3)
	n := 400
	same1 := make([]float64, n)
	same2 := make([]float64, n)
	shifted := make([]float64, n)
	for i := 0; i < n; i++ {
		same1[i] = r.Norm()
		same2[i] = r.Norm()
		shifted[i] = r.Norm() + 0.5
	}
	dSame := KolmogorovSmirnov(same1, same2)
	if KSSignificant(dSame, n, n, 0.01) {
		t.Fatalf("identical distributions flagged significant (D=%v)", dSame)
	}
	dShift := KolmogorovSmirnov(same1, shifted)
	if !KSSignificant(dShift, n, n, 0.05) {
		t.Fatalf("0.5σ shift not detected (D=%v)", dShift)
	}
	// 0.05 critical value is lower than 0.01.
	if KSSignificant(0.09, n, n, 0.01) && !KSSignificant(0.09, n, n, 0.05) {
		t.Fatal("alpha ordering inverted")
	}
}

func TestRunningAccessors(t *testing.T) {
	var r Running
	if r.N() != 0 || r.StdDev() != 0 {
		t.Fatal("zero-value Running accessors wrong")
	}
	r.Push(2)
	r.Push(4)
	if r.N() != 2 {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.StdDev()-math.Sqrt2) > 1e-12 {
		t.Fatalf("StdDev = %v, want sqrt(2)", r.StdDev())
	}
}
