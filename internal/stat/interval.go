package stat

import "math"

// This file provides binomial proportion confidence intervals for the
// streaming campaign estimates (yield rate, fault coverage, detection
// rate): the Wilson score interval — the robust default for large n —
// and the exact Clopper-Pearson interval for the small-n tables where
// a normal approximation is not defensible. Everything is stdlib-only
// and deterministic, like the rest of the package.

// NormalQuantile returns the p-th quantile of the standard normal
// distribution (0 < p < 1), via the Acklam rational approximation
// refined by one Halley step — absolute error well below 1e-9 over the
// full open interval.
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		panic("stat: NormalQuantile needs 0 < p < 1")
	}
	// Acklam's coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement against the exact CDF.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// Wilson returns the Wilson score confidence interval for a binomial
// proportion: successes k out of n trials at the given confidence level
// (e.g. 0.95). It is well-behaved at k = 0 and k = n, where the naive
// Wald interval collapses. It panics if n <= 0, k is out of range, or
// confidence is not in (0, 1).
func Wilson(k, n int, confidence float64) (lo, hi float64) {
	checkProportion(k, n, confidence)
	z := NormalQuantile(1 - (1-confidence)/2)
	p := float64(k) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	center := (p + z*z/(2*nn)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn))
	lo, hi = math.Max(0, center-half), math.Min(1, center+half)
	// Pin the degenerate ends exactly: at k = 0 the interval starts at 0
	// (the center-half residue is pure rounding), dually at k = n.
	if k == 0 {
		lo = 0
	}
	if k == n {
		hi = 1
	}
	return lo, hi
}

// ClopperPearson returns the exact (conservative) Clopper-Pearson
// confidence interval for a binomial proportion: successes k out of n
// trials at the given confidence level. The bounds are Beta-distribution
// quantiles: lo = BetaQuantile(α/2; k, n-k+1), hi = BetaQuantile(1-α/2;
// k+1, n-k), with the conventional closed ends at k = 0 (lo = 0) and
// k = n (hi = 1).
func ClopperPearson(k, n int, confidence float64) (lo, hi float64) {
	checkProportion(k, n, confidence)
	alpha := 1 - confidence
	if k > 0 {
		lo = BetaQuantile(alpha/2, float64(k), float64(n-k+1))
	}
	if k < n {
		hi = BetaQuantile(1-alpha/2, float64(k+1), float64(n-k))
	} else {
		hi = 1
	}
	return lo, hi
}

// checkProportion validates the shared (k, n, confidence) arguments.
func checkProportion(k, n int, confidence float64) {
	if n <= 0 {
		panic(ErrEmpty)
	}
	if k < 0 || k > n {
		panic("stat: successes out of [0, n]")
	}
	if !(confidence > 0 && confidence < 1) {
		panic("stat: confidence out of (0, 1)")
	}
}

// RegularizedIncompleteBeta returns I_x(a, b), the CDF at x of the
// Beta(a, b) distribution, evaluated with the standard continued
// fraction (Lentz's method, as in Numerical Recipes' betai/betacf).
func RegularizedIncompleteBeta(x, a, b float64) float64 {
	if a <= 0 || b <= 0 {
		panic("stat: Beta needs a, b > 0")
	}
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lg1, _ := math.Lgamma(a + b)
	lg2, _ := math.Lgamma(a)
	lg3, _ := math.Lgamma(b)
	front := math.Exp(lg1 - lg2 - lg3 + a*math.Log(x) + b*math.Log(1-x))
	// The continued fraction converges fastest for x < (a+1)/(a+b+2);
	// use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) otherwise.
	if x < (a+1)/(a+b+2) {
		return front * betaCF(x, a, b) / a
	}
	return 1 - front*betaCF(1-x, b, a)/b
}

// betaCF evaluates the continued fraction of the incomplete beta
// function by the modified Lentz algorithm.
func betaCF(x, a, b float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-16
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		mf := float64(m)
		aa := mf * (b - mf) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + mf) * (qab + mf) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// BetaQuantile returns the p-th quantile of the Beta(a, b) distribution
// (the inverse of RegularizedIncompleteBeta in x), by bisection — ~60
// iterations pin the root to full float64 resolution, and monotonicity
// of the CDF makes the search unconditionally stable.
func BetaQuantile(p, a, b float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if mid == lo || mid == hi {
			break
		}
		if RegularizedIncompleteBeta(mid, a, b) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
