package stat

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"
)

// StreamingHistogram is the mergeable, single-pass counterpart of
// Histogram: a fixed-range equal-bin histogram whose entire state is
// integer counts, so Merge is exact, associative and commutative — the
// same discipline as QuantileSketch, and what lets per-chunk (or
// per-shard) histograms merged in stable index order reproduce the
// single-stream histogram bit for bit at any worker count. The binning
// rule matches Histogram exactly: samples in [Lo, Hi) land in
// int(bins*(x-Lo)/(Hi-Lo)) (clamped to the last bin), samples outside
// count in Under/Over, so a streamed histogram over the same range is
// bin-for-bin identical to the materialize-then-bin path it replaces.
type StreamingHistogram struct {
	lo, hi  float64
	counts  []uint64
	under   uint64
	over    uint64
	invalid uint64 // NaN pushes
	n       uint64
}

// NewStreamingHistogram creates a streaming histogram with bins equal
// bins over [lo, hi). It panics on a non-positive bin count, a
// non-finite range, or hi <= lo, matching NewHistogram's conventions.
func NewStreamingHistogram(lo, hi float64, bins int) *StreamingHistogram {
	if bins <= 0 || !(hi > lo) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		panic("stat: invalid streaming histogram parameters")
	}
	return &StreamingHistogram{lo: lo, hi: hi, counts: make([]uint64, bins)}
}

// Push records one sample. NaN is counted as invalid and surfaces in
// Quantile; everything else is one integer increment — the warm path is
// allocation-free.
//
//mclint:hotpath
func (h *StreamingHistogram) Push(x float64) {
	h.n++
	switch {
	case math.IsNaN(x):
		h.invalid++
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int(float64(len(h.counts)) * (x - h.lo) / (h.hi - h.lo))
		if i >= len(h.counts) {
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
}

// Lo and Hi return the histogram's range.
func (h *StreamingHistogram) Lo() float64 { return h.lo }
func (h *StreamingHistogram) Hi() float64 { return h.hi }

// Bins returns the number of bins.
func (h *StreamingHistogram) Bins() int { return len(h.counts) }

// Count returns the count of bin i.
func (h *StreamingHistogram) Count(i int) uint64 { return h.counts[i] }

// Under and Over return the out-of-range counts.
func (h *StreamingHistogram) Under() uint64 { return h.under }
func (h *StreamingHistogram) Over() uint64  { return h.over }

// Invalid returns the number of NaN samples pushed.
func (h *StreamingHistogram) Invalid() int { return int(h.invalid) }

// N returns the number of samples pushed (including out-of-range and
// invalid ones).
func (h *StreamingHistogram) N() int { return int(h.n) }

// BinCenter returns the midpoint of bin i.
func (h *StreamingHistogram) BinCenter(i int) float64 {
	w := (h.hi - h.lo) / float64(len(h.counts))
	return h.lo + (float64(i)+0.5)*w
}

// Reset empties the histogram in place, keeping range and bins — the
// pooled-accumulator hook, as on QuantileSketch.
func (h *StreamingHistogram) Reset() {
	clear(h.counts)
	h.under, h.over, h.invalid, h.n = 0, 0, 0, 0
}

// Merge folds other into h by exact integer addition. It panics when
// the two histograms do not share the same range and bin count — their
// bins are not comparable.
func (h *StreamingHistogram) Merge(other *StreamingHistogram) {
	if other.lo != h.lo || other.hi != h.hi || len(other.counts) != len(h.counts) {
		panic(fmt.Sprintf("stat: merging histograms of shape [%g,%g)/%d and [%g,%g)/%d",
			h.lo, h.hi, len(h.counts), other.lo, other.hi, len(other.counts)))
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.under += other.under
	h.over += other.over
	h.invalid += other.invalid
	h.n += other.n
}

// Quantile returns the q-th quantile (0 <= q <= 1) estimated from the
// binned distribution, mirroring the materialized Quantile's type-7
// semantics with each order statistic read from its bin center — so the
// result is within half a bin width of the exact quantile when no
// samples fell outside the range. Out-of-range order statistics clamp
// to the range edges; NaN samples make the quantile meaningless and
// return ErrInvalidSample.
func (h *StreamingHistogram) Quantile(q float64) (float64, error) {
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stat: quantile %g out of [0,1]", q)
	}
	if h.n == 0 {
		return 0, ErrEmpty
	}
	if h.invalid > 0 {
		return 0, fmt.Errorf("%w: %d of %d", ErrInvalidSample, h.invalid, h.n)
	}
	n := h.n
	if n == 1 {
		return h.rankValue(0), nil
	}
	pos := q * float64(n-1)
	k := uint64(pos)
	frac := pos - float64(k)
	lo := h.rankValue(k)
	if frac == 0 {
		return lo, nil
	}
	return lo*(1-frac) + h.rankValue(k+1)*frac, nil
}

// rankValue returns the representative value of the k-th smallest
// sample: its bin center, or a range edge for out-of-range samples.
func (h *StreamingHistogram) rankValue(k uint64) float64 {
	cum := h.under
	if k < cum {
		return h.lo
	}
	for i, c := range h.counts {
		cum += c
		if k < cum {
			return h.BinCenter(i)
		}
	}
	return h.hi
}

// ASCII renders the same fixed-width bar chart as Histogram.ASCII, one
// line per bin.
func (h *StreamingHistogram) ASCII(width int) string {
	if width <= 0 {
		width = 40
	}
	maxC := uint64(1)
	for _, c := range h.counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.counts {
		bar := strings.Repeat("#", int(c*uint64(width)/maxC))
		fmt.Fprintf(&b, "%10.4g | %-*s %d\n", h.BinCenter(i), width, bar, c)
	}
	return b.String()
}

// Binary encoding, mirroring the sketch's canonical sparse form:
//
//	magic "SHG1" | lo, hi float64 bits | bins uvarint | n, under,
//	over, invalid uvarint | pairs uvarint | (index delta uvarint,
//	count uvarint)*

var streamHistMagic = [4]byte{'S', 'H', 'G', '1'}

// maxStreamHistBins bounds the decoded bin count so arbitrary input
// cannot demand an absurd allocation. 1<<24 bins is far beyond any
// plotting or quantile use.
const maxStreamHistBins = 1 << 24

// MarshalBinary implements encoding.BinaryMarshaler.
func (h *StreamingHistogram) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 64)
	buf = append(buf, streamHistMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.lo))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.hi))
	buf = binary.AppendUvarint(buf, uint64(len(h.counts)))
	for _, v := range []uint64{h.n, h.under, h.over, h.invalid} {
		buf = binary.AppendUvarint(buf, v)
	}
	buf = appendSparse(buf, h.counts)
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, with the same
// validation contract as the sketch decoder: arbitrary bytes either
// decode into a fully consistent histogram or fail with a descriptive
// error — never a panic, never a silently inconsistent value.
func (h *StreamingHistogram) UnmarshalBinary(data []byte) error {
	r := &byteReader{data: data}
	var magic [4]byte
	if err := r.bytes(magic[:]); err != nil {
		return fmt.Errorf("stat: histogram decode: %w", err)
	}
	if magic != streamHistMagic {
		return errors.New("stat: histogram decode: bad magic")
	}
	loBits, err := r.uint64()
	if err != nil {
		return fmt.Errorf("stat: histogram decode: %w", err)
	}
	hiBits, err := r.uint64()
	if err != nil {
		return fmt.Errorf("stat: histogram decode: %w", err)
	}
	lo, hi := math.Float64frombits(loBits), math.Float64frombits(hiBits)
	if !(hi > lo) || math.IsInf(lo, 0) || math.IsInf(hi, 0) || math.IsNaN(lo) || math.IsNaN(hi) {
		return fmt.Errorf("stat: histogram decode: bad range [%g, %g)", lo, hi)
	}
	bins, err := r.uvarint()
	if err != nil {
		return fmt.Errorf("stat: histogram decode: %w", err)
	}
	if bins == 0 || bins > maxStreamHistBins {
		return fmt.Errorf("stat: histogram decode: %d bins out of [1, %d]", bins, maxStreamHistBins)
	}
	var hdr [4]uint64
	for i := range hdr {
		if hdr[i], err = r.uvarint(); err != nil {
			return fmt.Errorf("stat: histogram decode: %w", err)
		}
	}
	out := NewStreamingHistogram(lo, hi, int(bins))
	out.n, out.under, out.over, out.invalid = hdr[0], hdr[1], hdr[2], hdr[3]
	counts, binned, err := readSparseCounts(r, int(bins))
	if err != nil {
		return fmt.Errorf("stat: histogram decode: %w", err)
	}
	if counts != nil {
		out.counts = counts
	}
	if r.len() != 0 {
		return fmt.Errorf("stat: histogram decode: %d trailing bytes", r.len())
	}
	if total := binned + out.under + out.over + out.invalid; total != out.n {
		return fmt.Errorf("stat: histogram decode: counts sum to %d, header says %d", total, out.n)
	}
	*h = *out
	return nil
}
