package stat

import (
	"bytes"
	"testing"
)

// FuzzQuantileSketchUnmarshal: arbitrary bytes must never panic the
// sketch decoder, and anything it accepts must re-marshal canonically
// and answer quantiles without panicking — the contract that makes
// sketches safe to ship between shards.
func FuzzQuantileSketchUnmarshal(f *testing.F) {
	s := NewQuantileSketch(DefaultSketchPrecision)
	for _, x := range []float64{0.01, -3.5, 0, 1e-30, 1e25, 7.25} {
		s.Push(x)
	}
	good, _ := s.MarshalBinary()
	f.Add(good)
	empty, _ := NewQuantileSketch(1).MarshalBinary()
	f.Add(empty)
	f.Add([]byte{})
	f.Add([]byte("QSK1"))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		var sk QuantileSketch
		if err := sk.UnmarshalBinary(data); err != nil {
			return
		}
		back, err := sk.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted sketch failed to re-marshal: %v", err)
		}
		var sk2 QuantileSketch
		if err := sk2.UnmarshalBinary(back); err != nil {
			t.Fatalf("re-marshalled payload rejected: %v", err)
		}
		again, err := sk2.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, again) {
			t.Fatal("re-marshal is not canonical")
		}
		// Quantiles on any accepted sketch must not panic; errors
		// (empty, invalid-poisoned) are fine.
		for _, q := range []float64{0, 0.5, 1} {
			if v, err := sk.Quantile(q); err == nil && v != v {
				t.Fatalf("accepted sketch returned NaN quantile at q=%v", q)
			}
		}
		// Merging a decoded sketch with itself must hold the count
		// invariant the decoder enforces.
		sum := sk.N()
		sk.Merge(&sk2)
		if sk.N() != 2*sum {
			t.Fatalf("self-merge count %d, want %d", sk.N(), 2*sum)
		}
	})
}

// FuzzStreamingHistogramUnmarshal is the same contract for the
// histogram codec.
func FuzzStreamingHistogramUnmarshal(f *testing.F) {
	h := NewStreamingHistogram(-1, 2, 12)
	for _, x := range []float64{-5, -0.5, 0, 0.7, 1.9, 12} {
		h.Push(x)
	}
	good, _ := h.MarshalBinary()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("SHG1"))
	f.Add([]byte{9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		var hh StreamingHistogram
		if err := hh.UnmarshalBinary(data); err != nil {
			return
		}
		back, err := hh.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted histogram failed to re-marshal: %v", err)
		}
		var hh2 StreamingHistogram
		if err := hh2.UnmarshalBinary(back); err != nil {
			t.Fatalf("re-marshalled payload rejected: %v", err)
		}
		again, err := hh2.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, again) {
			t.Fatal("re-marshal is not canonical")
		}
		for _, q := range []float64{0, 0.5, 1} {
			if v, err := hh.Quantile(q); err == nil && v != v {
				t.Fatalf("accepted histogram returned NaN quantile at q=%v", q)
			}
		}
	})
}
