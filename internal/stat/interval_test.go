package stat

import (
	"math"
	"testing"
)

func TestNormalQuantile(t *testing.T) {
	// Reference values (R qnorm / Abramowitz & Stegun).
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.995, 2.5758293035489004},
		{0.9, 1.2815515655446004},
		{0.0001, -3.719016485455709},
		{0.9999, 3.719016485455709},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-8 {
			t.Fatalf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Round trip through the exact CDF.
	for _, p := range []float64{0.001, 0.01, 0.1, 0.3, 0.7, 0.99, 0.999} {
		x := NormalQuantile(p)
		back := 0.5 * math.Erfc(-x/math.Sqrt2)
		if math.Abs(back-p) > 1e-12 {
			t.Fatalf("CDF(Quantile(%v)) = %v", p, back)
		}
	}
}

func TestRegularizedIncompleteBeta(t *testing.T) {
	// I_x(1, b) = 1 - (1-x)^b and I_x(a, 1) = x^a exactly.
	for _, x := range []float64{0.1, 0.5, 0.9} {
		for _, b := range []float64{1, 2.5, 7} {
			if got, want := RegularizedIncompleteBeta(x, 1, b), 1-math.Pow(1-x, b); math.Abs(got-want) > 1e-12 {
				t.Fatalf("I_%v(1,%v) = %v, want %v", x, b, got, want)
			}
			if got, want := RegularizedIncompleteBeta(x, b, 1), math.Pow(x, b); math.Abs(got-want) > 1e-12 {
				t.Fatalf("I_%v(%v,1) = %v, want %v", x, b, got, want)
			}
		}
	}
	// Symmetry and midpoint of the symmetric Beta.
	if got := RegularizedIncompleteBeta(0.5, 3, 3); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("I_0.5(3,3) = %v", got)
	}
	// BetaQuantile inverts the CDF.
	for _, p := range []float64{0.025, 0.3, 0.975} {
		q := BetaQuantile(p, 4, 9)
		if got := RegularizedIncompleteBeta(q, 4, 9); math.Abs(got-p) > 1e-10 {
			t.Fatalf("I(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestWilsonInterval(t *testing.T) {
	// Reference: Wilson 95% for 8/10 (computed from the closed form with
	// z = 1.959964): [0.490162, 0.943317].
	lo, hi := Wilson(8, 10, 0.95)
	if math.Abs(lo-0.490162) > 1e-4 || math.Abs(hi-0.943317) > 1e-4 {
		t.Fatalf("Wilson(8,10) = [%v, %v]", lo, hi)
	}
	// Degenerate ends stay inside [0, 1] and are non-trivial.
	lo, hi = Wilson(0, 20, 0.95)
	if lo != 0 || hi <= 0 || hi > 0.25 {
		t.Fatalf("Wilson(0,20) = [%v, %v]", lo, hi)
	}
	lo, hi = Wilson(20, 20, 0.95)
	if hi != 1 || lo >= 1 || lo < 0.75 {
		t.Fatalf("Wilson(20,20) = [%v, %v]", lo, hi)
	}
	// The interval always contains the point estimate.
	for _, c := range []struct{ k, n int }{{1, 7}, {5, 9}, {499, 1000}} {
		lo, hi := Wilson(c.k, c.n, 0.99)
		p := float64(c.k) / float64(c.n)
		if p < lo || p > hi {
			t.Fatalf("Wilson(%d,%d) = [%v, %v] excludes %v", c.k, c.n, lo, hi, p)
		}
	}
}

func TestClopperPearsonInterval(t *testing.T) {
	// Reference: R binom.test(8, 10) 95% CI = [0.4439045, 0.9747893].
	lo, hi := ClopperPearson(8, 10, 0.95)
	if math.Abs(lo-0.4439045) > 1e-6 || math.Abs(hi-0.9747893) > 1e-6 {
		t.Fatalf("ClopperPearson(8,10) = [%v, %v]", lo, hi)
	}
	// Closed-form ends: k=0 upper = 1-(α/2)^(1/n); k=n lower = (α/2)^(1/n).
	lo, hi = ClopperPearson(0, 30, 0.95)
	if lo != 0 || math.Abs(hi-(1-math.Pow(0.025, 1.0/30))) > 1e-10 {
		t.Fatalf("ClopperPearson(0,30) = [%v, %v]", lo, hi)
	}
	lo, hi = ClopperPearson(30, 30, 0.95)
	if hi != 1 || math.Abs(lo-math.Pow(0.025, 1.0/30)) > 1e-10 {
		t.Fatalf("ClopperPearson(30,30) = [%v, %v]", lo, hi)
	}
	// Exactness: Clopper-Pearson is at least as wide as Wilson.
	for _, c := range []struct{ k, n int }{{2, 12}, {8, 10}, {50, 200}} {
		cpLo, cpHi := ClopperPearson(c.k, c.n, 0.95)
		wLo, wHi := Wilson(c.k, c.n, 0.95)
		if cpLo > wLo+1e-9 || cpHi < wHi-1e-9 {
			t.Fatalf("CP(%d,%d) = [%v, %v] narrower than Wilson [%v, %v]",
				c.k, c.n, cpLo, cpHi, wLo, wHi)
		}
	}
}

func TestProportionIntervalPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Wilson(1, 0, 0.95) },
		func() { Wilson(-1, 5, 0.95) },
		func() { Wilson(6, 5, 0.95) },
		func() { Wilson(2, 5, 1.0) },
		func() { ClopperPearson(2, 5, 0) },
		func() { NormalQuantile(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
