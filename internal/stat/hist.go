package stat

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-bin histogram over [Lo, Hi). Samples outside the
// range are counted in Under/Over.
type Histogram struct {
	Lo, Hi      float64
	Counts      []int
	Under, Over int
	total       int
}

// NewHistogram creates a histogram with n equal bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stat: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Push records one sample.
func (h *Histogram) Push(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of samples pushed (including out-of-range).
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Mode returns the center of the fullest bin.
func (h *Histogram) Mode() float64 {
	best, bestCount := 0, -1
	for i, c := range h.Counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	return h.BinCenter(best)
}

// ASCII renders a simple fixed-width bar chart, one line per bin — used by
// the CLI tools to show Monte Carlo spreads without plotting libraries.
func (h *Histogram) ASCII(width int) string {
	if width <= 0 {
		width = 40
	}
	maxC := 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*width/maxC)
		fmt.Fprintf(&b, "%10.4g | %-*s %d\n", h.BinCenter(i), width, bar, c)
	}
	return b.String()
}
