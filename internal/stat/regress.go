package stat

import (
	"fmt"
	"math"

	"repro/internal/num"
)

// LinearFit holds the result of a simple y = a + b*x least-squares fit.
type LinearFit struct {
	Intercept, Slope float64
	R2               float64
}

// FitLine performs ordinary least squares on paired samples.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stat: FitLine length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stat: FitLine degenerate x (zero variance)")
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 0.0
	if syy > 0 {
		r2 = (sxy * sxy) / (sxx * syy)
	}
	return LinearFit{Intercept: a, Slope: b, R2: r2}, nil
}

// Eval evaluates the fitted line at x.
func (f LinearFit) Eval(x float64) float64 { return f.Intercept + f.Slope*x }

// PolyFit fits ys ≈ c0 + c1*x + ... + c_deg*x^deg by solving the normal
// equations. Coefficients are returned lowest order first.
func PolyFit(xs, ys []float64, deg int) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("stat: PolyFit length mismatch")
	}
	if deg < 0 {
		return nil, fmt.Errorf("stat: negative degree")
	}
	n := deg + 1
	if len(xs) < n {
		return nil, fmt.Errorf("stat: PolyFit needs at least %d points, got %d", n, len(xs))
	}
	// Normal equations: (V^T V) c = V^T y with Vandermonde V.
	ata := num.NewMatrix(n, n)
	aty := make([]float64, n)
	// Accumulate sums of powers and moments.
	sums := make([]float64, 2*n-1)
	for i, x := range xs {
		p := 1.0
		for k := 0; k < 2*n-1; k++ {
			sums[k] += p
			if k < n {
				aty[k] += p * ys[i]
			}
			p *= x
		}
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			ata.Set(r, c, sums[r+c])
		}
	}
	return num.SolveSystem(ata, aty)
}

// PolyEval evaluates a polynomial with coefficients lowest order first.
func PolyEval(coef []float64, x float64) float64 {
	y := 0.0
	for i := len(coef) - 1; i >= 0; i-- {
		y = y*x + coef[i]
	}
	return y
}

// MultiFit solves the multivariate least-squares problem y ≈ X·beta where
// each row of X is one observation's feature vector (an intercept column
// must be included by the caller if desired). It returns beta. A small
// ridge term keeps underdetermined or collinear systems solvable (the
// minimum-norm solution), which dwell-histogram feature sets routinely
// need.
func MultiFit(X [][]float64, y []float64) ([]float64, error) {
	if len(X) == 0 {
		return nil, ErrEmpty
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("stat: MultiFit row mismatch %d vs %d", len(X), len(y))
	}
	p := len(X[0])
	ata := num.NewMatrix(p, p)
	aty := make([]float64, p)
	for i, row := range X {
		if len(row) != p {
			return nil, fmt.Errorf("stat: MultiFit ragged row %d", i)
		}
		for r := 0; r < p; r++ {
			aty[r] += row[r] * y[i]
			for c := r; c < p; c++ {
				ata.Add(r, c, row[r]*row[c])
			}
		}
	}
	// Symmetrize lower triangle.
	for r := 1; r < p; r++ {
		for c := 0; c < r; c++ {
			ata.Set(r, c, ata.At(c, r))
		}
	}
	// Ridge scaled to the Gram matrix keeps collinear and
	// underdetermined systems solvable without visibly biasing
	// well-posed fits.
	trace := 0.0
	for r := 0; r < p; r++ {
		trace += ata.At(r, r)
	}
	ridge := 1e-9*trace/float64(p) + 1e-12
	for r := 0; r < p; r++ {
		ata.Add(r, r, ridge)
	}
	return num.SolveSystem(ata, aty)
}

// RMSE returns the root mean squared error between predictions and truth.
func RMSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic("stat: RMSE length mismatch")
	}
	if len(pred) == 0 {
		panic(ErrEmpty)
	}
	s := 0.0
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}
