package stat

import (
	"bytes"
	"math"
	"sort"
	"testing"
)

// testRand is a tiny deterministic splitmix64 stream so the sketch
// tests never depend on global randomness (the same discipline the
// campaign engine enforces).
type testRand uint64

func (r *testRand) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a deterministic float64 in [0, 1).
func (r *testRand) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// sketchSample builds a deterministic mixed-sign heavy-tailed sample.
func sketchSample(n int, seed uint64) []float64 {
	r := testRand(seed)
	xs := make([]float64, n)
	for i := range xs {
		u := r.float()
		x := math.Exp(8*u - 4) // log-uniform over ~[0.018, 54]
		switch i % 7 {
		case 3:
			x = -x
		case 5:
			x = 0
		}
		xs[i] = x
	}
	return xs
}

func TestQuantileSketchWithinErrorBound(t *testing.T) {
	for _, prec := range []int{1, 4, DefaultSketchPrecision, 10} {
		xs := sketchSample(5000, 42)
		s := NewQuantileSketch(prec)
		for _, x := range xs {
			s.Push(x)
		}
		relErr := s.RelativeError()
		for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			got, err := s.Quantile(q)
			if err != nil {
				t.Fatalf("prec %d q %v: %v", prec, q, err)
			}
			want := Quantile(xs, q)
			// The interpolated estimate is a convex combination of two
			// bucket midpoints, each within relErr of its order
			// statistic, so the bound carries through.
			if math.Abs(got-want) > relErr*math.Abs(want)+1e-12 {
				t.Fatalf("prec %d q %v: sketch %v vs exact %v exceeds rel err %v",
					prec, q, got, want, relErr)
			}
		}
		// The extremes are exact, not merely within bounds.
		lo, hi := MinMax(xs)
		if got, _ := s.Quantile(0); got != lo {
			t.Fatalf("prec %d: Quantile(0) = %v, want exact min %v", prec, got, lo)
		}
		if got, _ := s.Quantile(1); got != hi {
			t.Fatalf("prec %d: Quantile(1) = %v, want exact max %v", prec, got, hi)
		}
	}
}

// TestQuantileSketchMergeMatchesSingleStream is the order-stability
// property the campaign merge contract rests on: per-chunk sketches
// merged in stable index order are bit-identical to the single-stream
// sketch, at every simulated worker count.
func TestQuantileSketchMergeMatchesSingleStream(t *testing.T) {
	xs := sketchSample(4097, 7)
	whole := NewQuantileSketch(DefaultSketchPrecision)
	for _, x := range xs {
		whole.Push(x)
	}
	wantBytes, err := whole.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for _, chunks := range []int{1, 4, 8} {
		parts := make([]*QuantileSketch, chunks)
		size := (len(xs) + chunks - 1) / chunks
		for c := range parts {
			parts[c] = NewQuantileSketch(DefaultSketchPrecision)
			lo, hi := c*size, min((c+1)*size, len(xs))
			for _, x := range xs[lo:hi] {
				parts[c].Push(x)
			}
		}
		merged := NewQuantileSketch(DefaultSketchPrecision)
		for _, p := range parts {
			merged.Merge(p)
		}
		got, err := merged.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantBytes) {
			t.Fatalf("%d-chunk merge differs from single-stream sketch", chunks)
		}
	}
}

// TestQuantileSketchMergeCommutes verifies the stronger property the
// integer-count design buys: merge order does not matter at all —
// shards can merge in any order and still agree bit for bit.
func TestQuantileSketchMergeCommutes(t *testing.T) {
	mk := func(seed uint64) *QuantileSketch {
		s := NewQuantileSketch(DefaultSketchPrecision)
		for _, x := range sketchSample(513, seed) {
			s.Push(x)
		}
		return s
	}
	ab := mk(1)
	ab.Merge(mk(2))
	ab.Merge(mk(3))
	cba := mk(3)
	cba.Merge(mk(2))
	cba.Merge(mk(1))
	a, _ := ab.MarshalBinary()
	b, _ := cba.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("merge is not commutative")
	}
}

func TestQuantileSketchInvalidObservations(t *testing.T) {
	s := NewQuantileSketch(DefaultSketchPrecision)
	s.Push(1)
	s.Push(math.NaN())
	s.Push(math.Inf(1))
	if s.Invalid() != 2 {
		t.Fatalf("invalid = %d, want 2", s.Invalid())
	}
	if _, err := s.Quantile(0.5); err == nil {
		t.Fatal("quantile of a NaN-poisoned sketch must fail")
	}
}

func TestQuantileSketchEdgeCases(t *testing.T) {
	s := NewQuantileSketch(DefaultSketchPrecision)
	if _, err := s.Quantile(0.5); err == nil {
		t.Fatal("empty sketch must fail")
	}
	if _, err := s.Quantile(1.5); err == nil {
		t.Fatal("out-of-range quantile must fail")
	}
	s.Push(3.25)
	for _, q := range []float64{0, 0.5, 1} {
		if v, err := s.Quantile(q); err != nil || v != 3.25 {
			t.Fatalf("single-sample quantile(%v) = %v, %v", q, v, err)
		}
	}
	// Out-of-octave-range magnitudes: clamped to the exact extrema.
	tiny := NewQuantileSketch(DefaultSketchPrecision)
	tiny.Push(1e-30)
	tiny.Push(1e-30)
	if v, _ := tiny.Quantile(0.5); v != 1e-30 {
		t.Fatalf("underflow-bucket quantile = %v, want exact 1e-30", v)
	}
	huge := NewQuantileSketch(DefaultSketchPrecision)
	huge.Push(1e25)
	huge.Push(1e25)
	if v, _ := huge.Quantile(0.5); v != 1e25 {
		t.Fatalf("overflow-bucket quantile = %v, want exact 1e25", v)
	}
	// A constant sample reads back exactly at every quantile (clamping).
	c := NewQuantileSketch(1)
	for i := 0; i < 100; i++ {
		c.Push(0.7351)
	}
	for _, q := range []float64{0, 0.3, 0.5, 0.99, 1} {
		if v, _ := c.Quantile(q); v != 0.7351 {
			t.Fatalf("constant-sample quantile(%v) = %v", q, v)
		}
	}
}

func TestQuantileSketchResetReuse(t *testing.T) {
	s := NewQuantileSketch(DefaultSketchPrecision)
	for _, x := range sketchSample(1000, 9) {
		s.Push(x)
	}
	s.Reset()
	if s.N() != 0 {
		t.Fatalf("N after reset = %d", s.N())
	}
	fresh := NewQuantileSketch(DefaultSketchPrecision)
	for _, x := range sketchSample(500, 11) {
		s.Push(x)
		fresh.Push(x)
	}
	a, _ := s.MarshalBinary()
	b, _ := fresh.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("reused sketch differs from a fresh one")
	}
}

func TestQuantileSketchPrecisionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched precisions must panic")
		}
	}()
	NewQuantileSketch(2).Merge(NewQuantileSketch(3))
}

func TestQuantileSketchBinaryRoundTrip(t *testing.T) {
	s := NewQuantileSketch(DefaultSketchPrecision)
	for _, x := range sketchSample(2000, 5) {
		s.Push(x)
	}
	s.Push(1e-30) // underflow
	s.Push(1e25)  // overflow
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back QuantileSketch
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	again, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("round trip is not canonical")
	}
	q1, _ := s.Quantile(0.9)
	q2, _ := back.Quantile(0.9)
	if q1 != q2 {
		t.Fatalf("round-tripped quantile %v != %v", q2, q1)
	}
}

func TestQuantileSketchUnmarshalRejectsCorruption(t *testing.T) {
	s := NewQuantileSketch(DefaultSketchPrecision)
	s.Push(1)
	s.Push(2)
	good, _ := s.MarshalBinary()
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE0000000000000000"),
		"truncated": good[:len(good)-1],
		"trailing":  append(append([]byte{}, good...), 0),
	}
	// Header count drift: bump n without matching buckets.
	drift := append([]byte{}, good...)
	drift[5]++ // n uvarint (small values are single bytes)
	cases["count drift"] = drift
	for name, data := range cases {
		var back QuantileSketch
		if err := back.UnmarshalBinary(data); err == nil {
			t.Fatalf("%s: decode must fail", name)
		}
	}
}

// TestQuantileSketchPushZeroAlloc pins the hot fold path: once both
// touched sign arrays exist, Push never allocates.
func TestQuantileSketchPushZeroAlloc(t *testing.T) {
	s := NewQuantileSketch(DefaultSketchPrecision)
	s.Push(1.5)  // touch positive side
	s.Push(-1.5) // touch negative side
	i := 0
	if avg := testing.AllocsPerRun(1000, func() {
		s.Push(float64(i%17) * 0.3)
		s.Push(-float64(i%5) * 1.7)
		i++
	}); avg != 0 {
		t.Fatalf("warm Push allocates %v per run, pinned at 0", avg)
	}
}

func TestRunningMergeMatchesWholeSample(t *testing.T) {
	xs := sketchSample(999, 13)
	var whole Running
	for _, x := range xs {
		whole.Push(x)
	}
	for _, chunks := range []int{1, 4, 8} {
		var merged Running
		size := (len(xs) + chunks - 1) / chunks
		for c := 0; c < chunks; c++ {
			var part Running
			lo, hi := c*size, min((c+1)*size, len(xs))
			for _, x := range xs[lo:hi] {
				part.Push(x)
			}
			merged.Merge(part)
		}
		if merged.N() != whole.N() || merged.Min() != whole.Min() || merged.Max() != whole.Max() {
			t.Fatalf("%d-chunk merge: n/min/max drifted", chunks)
		}
		if math.Abs(merged.Mean()-Mean(xs)) > 1e-12 {
			t.Fatalf("%d-chunk merge mean %v vs exact %v", chunks, merged.Mean(), Mean(xs))
		}
		if math.Abs(merged.Variance()-Variance(xs)) > 1e-9 {
			t.Fatalf("%d-chunk merge variance %v vs exact %v", chunks, merged.Variance(), Variance(xs))
		}
	}
}

// TestRunningMergeDeterministicAtFixedChunks pins bit-reproducibility
// of the float merge at a fixed chunk grouping: merging the same parts
// in the same order twice gives identical bits.
func TestRunningMergeDeterministicAtFixedChunks(t *testing.T) {
	xs := sketchSample(1000, 17)
	run := func() (float64, float64) {
		var m Running
		for c := 0; c < 4; c++ {
			var part Running
			for _, x := range xs[c*250 : (c+1)*250] {
				part.Push(x)
			}
			m.Merge(part)
		}
		return m.Mean(), m.Variance()
	}
	m1, v1 := run()
	m2, v2 := run()
	if m1 != m2 || v1 != v2 {
		t.Fatal("fixed-grouping merge is not bit-reproducible")
	}
}

// quantileExactReference cross-checks the sketch's rank semantics
// against a brute-force order-statistic walk at tiny n, where every
// rank boundary is exercised.
func TestQuantileSketchRankSemantics(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	s := NewQuantileSketch(MaxSketchPrecision)
	for _, x := range xs {
		s.Push(x)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		want := Quantile(xs, q)
		if math.Abs(got-want) > s.RelativeError()*want {
			t.Fatalf("q %v: %v vs %v", q, got, want)
		}
	}
}
