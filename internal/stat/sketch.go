package stat

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// This file implements the repository's mergeable quantile sketch — the
// streaming replacement for the "collect every sample, sort, take a
// quantile" pattern the noise campaigns' null calibration used to pay
// O(trials) memory for.
//
// The sketch is a fixed-precision value histogram in the DDSketch/HDR
// family: every finite sample is routed to a bucket addressed by its
// binary exponent (one octave per exponent) and a linear sub-bucket
// within the octave. With S = 2^prec sub-buckets per octave, a bucket
// midpoint is within relative error 1/(2S) = 2^-(prec+1) of every value
// the bucket holds, so any quantile read back from the sketch carries
// that same relative error bound. All state is integer counts plus exact
// running min/max, which makes Merge exact, associative and commutative:
// merging per-chunk sketches in stable index order (the campaign.Reduce
// contract) — or any other order — reproduces the single-stream sketch
// bit for bit at any worker count.
//
// Quantile(0) and Quantile(1) return the exact tracked min/max, so a
// max-quantile threshold calibration (the noise campaigns' case) is not
// merely within error bounds of the materializing path — it is equal.

const (
	// MinSketchPrecision and MaxSketchPrecision bound the prec argument
	// of NewQuantileSketch: sub-buckets per octave = 2^prec.
	MinSketchPrecision = 1
	MaxSketchPrecision = 12
	// DefaultSketchPrecision gives 64 sub-buckets per octave — relative
	// quantile error <= 2^-7 (~0.8%) at 64 KiB per touched sign, the
	// balance the noise calibrations default to.
	DefaultSketchPrecision = 6

	// sketchMinExp/sketchMaxExp bound the octave range: finite values
	// with binary exponent (math.Frexp convention) in [sketchMinExp,
	// sketchMaxExp) are bucketed; |x| below ~5.4e-20 or at/above ~9.2e18
	// fall into dedicated low/high overflow counters whose
	// representatives are the exact tracked extrema, so the relative
	// error bound holds on the indexed range and degrades gracefully
	// outside it.
	sketchMinExp  = -64
	sketchMaxExp  = 64
	sketchOctaves = sketchMaxExp - sketchMinExp
)

// QuantileSketch is a deterministic, mergeable, fixed-precision quantile
// sketch. The zero value is not ready to use; construct with
// NewQuantileSketch. Methods are not safe for concurrent use — the
// campaign engine gives every chunk (or worker) its own sketch and
// merges in stable order.
type QuantileSketch struct {
	prec int // sub-bucket bits per octave; S = 1 << prec

	// pos/neg hold per-bucket counts for positive/negative finite
	// values in the indexed octave range; each is allocated lazily on
	// the first push of that sign (never on the warm path).
	pos, neg []uint64
	// zero counts exact zeros; posLow/negLow count finite magnitudes
	// below the indexed range, posHigh/negHigh those at or above it.
	zero            uint64
	posLow, posHigh uint64
	negLow, negHigh uint64
	invalid         uint64 // NaN and ±Inf pushes
	n               uint64 // everything, including invalid
	min, max        float64
}

// NewQuantileSketch returns an empty sketch with 2^prec sub-buckets per
// octave (relative quantile error <= 2^-(prec+1) on the indexed range).
// It panics when prec is outside [MinSketchPrecision,
// MaxSketchPrecision], matching the package's constructor conventions.
func NewQuantileSketch(prec int) *QuantileSketch {
	if prec < MinSketchPrecision || prec > MaxSketchPrecision {
		panic(fmt.Sprintf("stat: sketch precision %d out of [%d, %d]", prec, MinSketchPrecision, MaxSketchPrecision))
	}
	return &QuantileSketch{prec: prec, min: math.Inf(1), max: math.Inf(-1)}
}

// Precision returns the sketch's precision (sub-bucket bits per octave).
func (s *QuantileSketch) Precision() int { return s.prec }

// RelativeError returns the documented worst-case relative error of a
// quantile read from the indexed value range: 2^-(prec+1).
func (s *QuantileSketch) RelativeError() float64 {
	return math.Ldexp(1, -(s.prec + 1))
}

// numBuckets returns the dense bucket count per sign.
func (s *QuantileSketch) numBuckets() int { return sketchOctaves << s.prec }

// bucketIndex maps a positive finite magnitude inside the indexed range
// to its dense bucket index. m = frac * 2^exp with frac in [0.5, 1);
// the octave is exp, the sub-bucket the linear position of frac.
func (s *QuantileSketch) bucketIndex(m float64) int {
	frac, exp := math.Frexp(m)
	sub := int(math.Ldexp(frac-0.5, s.prec+1)) // (2*frac - 1) * 2^prec
	if sub >= 1<<s.prec {                      // frac == nextafter(1, 0) rounding guard
		sub = 1<<s.prec - 1
	}
	return (exp-sketchMinExp)<<s.prec + sub
}

// bucketMid returns the representative (midpoint) value of dense bucket
// index b, the inverse of bucketIndex up to half a sub-bucket.
func (s *QuantileSketch) bucketMid(b int) float64 {
	exp := b>>s.prec + sketchMinExp
	sub := b & (1<<s.prec - 1)
	frac := 0.5 + math.Ldexp(float64(sub)+0.5, -(s.prec+1))
	return math.Ldexp(frac, exp)
}

// side returns the bucket slice for one sign, allocating it on first
// use; the warm path never reaches the allocation.
func (s *QuantileSketch) side(counts *[]uint64) []uint64 {
	if *counts == nil {
		*counts = make([]uint64, s.numBuckets())
	}
	return *counts
}

// Push adds one observation. NaN and ±Inf are counted as invalid and
// reported by Quantile — they never poison the bucketed distribution
// silently. The warm path (each sign's bucket array already touched) is
// allocation-free.
//
//mclint:hotpath
func (s *QuantileSketch) Push(x float64) {
	s.n++
	if math.IsNaN(x) || math.IsInf(x, 0) {
		s.invalid++
		return
	}
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	if x == 0 {
		s.zero++
		return
	}
	m := x
	counts := &s.pos
	low, high := &s.posLow, &s.posHigh
	if x < 0 {
		m = -x
		counts = &s.neg
		low, high = &s.negLow, &s.negHigh
	}
	_, exp := math.Frexp(m)
	switch {
	case exp < sketchMinExp:
		*low++
	case exp >= sketchMaxExp:
		*high++
	default:
		s.side(counts)[s.bucketIndex(m)]++
	}
}

// N returns the number of observations pushed (including invalid ones).
func (s *QuantileSketch) N() int { return int(s.n) }

// Invalid returns the number of NaN/±Inf observations pushed.
func (s *QuantileSketch) Invalid() int { return int(s.invalid) }

// Min returns the smallest finite observation; +Inf before any.
func (s *QuantileSketch) Min() float64 { return s.min }

// Max returns the largest finite observation; -Inf before any.
func (s *QuantileSketch) Max() float64 { return s.max }

// Reset empties the sketch in place, keeping the bucket arrays for
// reuse — the hook the pooled chunk accumulators of campaign reductions
// use to stay allocation-flat at any trial count.
func (s *QuantileSketch) Reset() {
	clear(s.pos)
	clear(s.neg)
	s.zero, s.posLow, s.posHigh, s.negLow, s.negHigh = 0, 0, 0, 0, 0
	s.invalid, s.n = 0, 0
	s.min, s.max = math.Inf(1), math.Inf(-1)
}

// Merge folds other into s. All sketch state is integer counts plus
// exact extrema, so the merge is exact, associative and commutative:
// per-chunk sketches merged in stable index order (or any order)
// reproduce the single-stream sketch bit for bit at any worker count.
// It panics when the two sketches were built at different precisions —
// their buckets are not comparable.
func (s *QuantileSketch) Merge(other *QuantileSketch) {
	if other.prec != s.prec {
		panic(fmt.Sprintf("stat: merging sketches of precision %d and %d", s.prec, other.prec))
	}
	if other.pos != nil {
		dst := s.side(&s.pos)
		for i, c := range other.pos {
			dst[i] += c
		}
	}
	if other.neg != nil {
		dst := s.side(&s.neg)
		for i, c := range other.neg {
			dst[i] += c
		}
	}
	s.zero += other.zero
	s.posLow += other.posLow
	s.posHigh += other.posHigh
	s.negLow += other.negLow
	s.negHigh += other.negHigh
	s.invalid += other.invalid
	s.n += other.n
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}

// ErrInvalidSample is returned by Quantile when the sketch holds NaN or
// ±Inf observations — a quantile of a poisoned sample is meaningless.
var ErrInvalidSample = errors.New("stat: sketch holds non-finite observations")

// Quantile returns the q-th quantile (0 <= q <= 1) of the sketched
// distribution. Semantics mirror Quantile on a materialized sample
// (type 7: linear interpolation between order statistics), with each
// order statistic read from its bucket midpoint — so the result is
// within relative error 2^-(prec+1) of the exact quantile for values in
// the indexed range, and Quantile(0)/Quantile(1) are the exact min/max.
// It returns ErrEmpty on an empty sketch and ErrInvalidSample when NaN
// or ±Inf observations were pushed.
func (s *QuantileSketch) Quantile(q float64) (float64, error) {
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stat: quantile %g out of [0,1]", q)
	}
	if s.n == 0 {
		return 0, ErrEmpty
	}
	if s.invalid > 0 {
		return 0, fmt.Errorf("%w: %d of %d", ErrInvalidSample, s.invalid, s.n)
	}
	n := s.n
	if n == 1 {
		return s.min, nil
	}
	pos := q * float64(n-1)
	k := uint64(pos)
	frac := pos - float64(k)
	lo := s.valueAtRank(k)
	if frac == 0 {
		return s.clamp(lo), nil
	}
	hi := s.valueAtRank(k + 1)
	return s.clamp(lo*(1-frac) + hi*frac), nil
}

// clamp bounds a bucket-midpoint estimate by the exact extrema.
func (s *QuantileSketch) clamp(v float64) float64 {
	if v < s.min {
		return s.min
	}
	if v > s.max {
		return s.max
	}
	return v
}

// valueAtRank returns the representative value of the k-th smallest
// observation (0-based) by scanning the bucket categories in ascending
// value order. Rank 0 and rank n-1 return the exact extrema.
func (s *QuantileSketch) valueAtRank(k uint64) float64 {
	if k == 0 {
		return s.min
	}
	if k >= s.n-1 {
		return s.max
	}
	var cum uint64
	step := func(c uint64) bool {
		cum += c
		return k < cum
	}
	// Most-negative first: magnitudes above the indexed range...
	if step(s.negHigh) {
		return s.min // exact: these are the most negative observations
	}
	// ...then negative buckets, descending magnitude.
	for i := len(s.neg) - 1; i >= 0; i-- {
		if s.neg[i] != 0 && step(s.neg[i]) {
			return -s.bucketMid(i)
		}
	}
	if step(s.negLow) {
		return -math.Ldexp(1, sketchMinExp-1) // |x| < 2^min: abs error < 2.8e-20
	}
	if step(s.zero) {
		return 0
	}
	if step(s.posLow) {
		return math.Ldexp(1, sketchMinExp-1)
	}
	for i := 0; i < len(s.pos); i++ {
		if s.pos[i] != 0 && step(s.pos[i]) {
			return s.bucketMid(i)
		}
	}
	return s.max // posHigh (or rounding residue): exact max is the top
}

// Binary encoding: a compact, sparse, canonical form for checkpointing
// and shard transport. Layout (little-endian, uvarint = binary.PutUvarint):
//
//	magic "QSK1" | prec byte | n, zero, posLow, posHigh, negLow,
//	negHigh, invalid uvarint | min, max float64 bits |
//	posPairs uvarint | (index delta uvarint, count uvarint)* |
//	negPairs uvarint | (index delta uvarint, count uvarint)*
//
// Bucket pairs are emitted in ascending index order with delta-coded
// indices and omit empty buckets, so the encoding is canonical: equal
// sketch contents marshal to equal bytes.

var sketchMagic = [4]byte{'Q', 'S', 'K', '1'}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *QuantileSketch) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 64)
	buf = append(buf, sketchMagic[:]...)
	buf = append(buf, byte(s.prec))
	for _, v := range []uint64{s.n, s.zero, s.posLow, s.posHigh, s.negLow, s.negHigh, s.invalid} {
		buf = binary.AppendUvarint(buf, v)
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.min))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.max))
	buf = appendSparse(buf, s.pos)
	buf = appendSparse(buf, s.neg)
	return buf, nil
}

// appendSparse emits the non-zero (delta-coded index, count) pairs of a
// dense count array, preceded by the pair count.
func appendSparse(buf []byte, counts []uint64) []byte {
	pairs := 0
	for _, c := range counts {
		if c != 0 {
			pairs++
		}
	}
	buf = binary.AppendUvarint(buf, uint64(pairs))
	prev := 0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(i-prev))
		buf = binary.AppendUvarint(buf, c)
		prev = i
	}
	return buf
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. It validates
// structure and consistency — precision range, bucket bounds, count
// totals, extremum sanity — so arbitrary bytes can never produce a
// sketch that later misbehaves (the same contract the signature decoder
// holds, and the one the fuzz target exercises).
func (s *QuantileSketch) UnmarshalBinary(data []byte) error {
	r := &byteReader{data: data}
	var magic [4]byte
	if err := r.bytes(magic[:]); err != nil {
		return fmt.Errorf("stat: sketch decode: %w", err)
	}
	if magic != sketchMagic {
		return errors.New("stat: sketch decode: bad magic")
	}
	precByte, err := r.byte()
	if err != nil {
		return fmt.Errorf("stat: sketch decode: %w", err)
	}
	prec := int(precByte)
	if prec < MinSketchPrecision || prec > MaxSketchPrecision {
		return fmt.Errorf("stat: sketch decode: precision %d out of [%d, %d]", prec, MinSketchPrecision, MaxSketchPrecision)
	}
	var hdr [7]uint64
	for i := range hdr {
		if hdr[i], err = r.uvarint(); err != nil {
			return fmt.Errorf("stat: sketch decode: %w", err)
		}
	}
	minBits, err := r.uint64()
	if err != nil {
		return fmt.Errorf("stat: sketch decode: %w", err)
	}
	maxBits, err := r.uint64()
	if err != nil {
		return fmt.Errorf("stat: sketch decode: %w", err)
	}
	out := NewQuantileSketch(prec)
	out.n, out.zero, out.posLow, out.posHigh, out.negLow, out.negHigh, out.invalid =
		hdr[0], hdr[1], hdr[2], hdr[3], hdr[4], hdr[5], hdr[6]
	out.min, out.max = math.Float64frombits(minBits), math.Float64frombits(maxBits)
	pos, posSum, err := readSparseCounts(r, out.numBuckets())
	if err != nil {
		return fmt.Errorf("stat: sketch decode: positive buckets: %w", err)
	}
	neg, negSum, err := readSparseCounts(r, out.numBuckets())
	if err != nil {
		return fmt.Errorf("stat: sketch decode: negative buckets: %w", err)
	}
	out.pos, out.neg = pos, neg
	bucketed := posSum + negSum
	if r.len() != 0 {
		return fmt.Errorf("stat: sketch decode: %d trailing bytes", r.len())
	}
	// Consistency: every observation is accounted for exactly once.
	total := bucketed + out.zero + out.posLow + out.posHigh + out.negLow + out.negHigh + out.invalid
	if total != out.n {
		return fmt.Errorf("stat: sketch decode: counts sum to %d, header says %d", total, out.n)
	}
	finite := out.n - out.invalid
	if finite == 0 {
		if !math.IsInf(out.min, 1) || !math.IsInf(out.max, -1) {
			return errors.New("stat: sketch decode: extrema set without finite observations")
		}
	} else {
		if math.IsNaN(out.min) || math.IsNaN(out.max) || math.IsInf(out.min, 0) || math.IsInf(out.max, 0) {
			return errors.New("stat: sketch decode: non-finite extrema")
		}
		if out.min > out.max {
			return fmt.Errorf("stat: sketch decode: min %g above max %g", out.min, out.max)
		}
	}
	*s = *out
	return nil
}

// readSparseCounts decodes one canonical sparse (delta-coded index,
// count) pair list into a dense array of the given size — allocated
// only when pairs exist — returning the array (nil when empty) and the
// summed counts. Shared by the sketch and histogram decoders.
func readSparseCounts(r *byteReader, size int) ([]uint64, uint64, error) {
	pairs, err := r.uvarint()
	if err != nil {
		return nil, 0, err
	}
	if pairs == 0 {
		return nil, 0, nil
	}
	if pairs > uint64(size) {
		return nil, 0, fmt.Errorf("%d pairs exceed %d buckets", pairs, size)
	}
	dst := make([]uint64, size)
	idx := -1
	var sum uint64
	for p := uint64(0); p < pairs; p++ {
		delta, err := r.uvarint()
		if err != nil {
			return nil, 0, err
		}
		count, err := r.uvarint()
		if err != nil {
			return nil, 0, err
		}
		if count == 0 {
			return nil, 0, errors.New("zero count pair breaks canonical form")
		}
		step := int(delta)
		if p == 0 {
			idx = step
		} else {
			if delta == 0 {
				return nil, 0, errors.New("duplicate bucket index")
			}
			if step < 0 {
				return nil, 0, errors.New("bucket index overflow")
			}
			idx += step
		}
		if idx < 0 || idx >= size {
			return nil, 0, fmt.Errorf("bucket index %d out of %d", idx, size)
		}
		next := sum + count
		if next < sum {
			return nil, 0, errors.New("count overflow")
		}
		sum = next
		dst[idx] = count
	}
	return dst, sum, nil
}

// byteReader is a minimal bounds-checked cursor over a byte slice —
// enough for the sketch and histogram decoders without pulling in
// bytes.Reader's error paths.
type byteReader struct {
	data []byte
	off  int
}

func (r *byteReader) len() int { return len(r.data) - r.off }

func (r *byteReader) byte() (byte, error) {
	if r.off >= len(r.data) {
		return 0, errors.New("truncated")
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *byteReader) bytes(dst []byte) error {
	if r.len() < len(dst) {
		return errors.New("truncated")
	}
	copy(dst, r.data[r.off:])
	r.off += len(dst)
	return nil
}

func (r *byteReader) uint64() (uint64, error) {
	if r.len() < 8 {
		return 0, errors.New("truncated")
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, errors.New("bad uvarint")
	}
	r.off += n
	return v, nil
}
