// Package lissajous composes two circuit signals into the X-Y plane
// trace the monitor observes — the oscilloscope-in-X-Y-mode picture of
// Section II. For rational frequency ratios the composition is periodic
// and the package computes the common period, samples the closed curve,
// and measures basic geometry used by tests and figures.
package lissajous

import (
	"fmt"
	"math"

	"repro/internal/wave"
)

// Curve is the composition (x(t), y(t)) of two waveforms.
type Curve struct {
	X, Y wave.Waveform
}

// New builds a curve and computes its common period. An error is
// returned when either waveform is aperiodic or when no small rational
// relation exists between the two periods (maximum denominator 64).
func New(x, y wave.Waveform) (Curve, error) {
	c := Curve{X: x, Y: y}
	if _, err := c.CommonPeriod(); err != nil {
		return Curve{}, err
	}
	return c, nil
}

// Eval returns the plane point at time t.
func (c Curve) Eval(t float64) (x, y float64) {
	return c.X.Eval(t), c.Y.Eval(t)
}

// CommonPeriod returns the smallest T that is an integer multiple of
// both waveform periods (within 1e-9 relative tolerance).
func (c Curve) CommonPeriod() (float64, error) {
	px, py := c.X.Period(), c.Y.Period()
	if px <= 0 || py <= 0 {
		return 0, fmt.Errorf("lissajous: both signals must be periodic (got %g, %g)", px, py)
	}
	if approxEq(px, py) {
		return math.Max(px, py), nil
	}
	// Find small m, n with m·px == n·py.
	for n := 1; n <= 64; n++ {
		m := float64(n) * py / px
		mr := math.Round(m)
		if mr >= 1 && math.Abs(m-mr) < 1e-9*m {
			return float64(n) * py, nil
		}
	}
	return 0, fmt.Errorf("lissajous: periods %g and %g have no small rational ratio", px, py)
}

func approxEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
}

// Point is a sampled plane location.
type Point struct{ X, Y float64 }

// Sample returns n points uniformly spaced in time over one common
// period (closed curve: the final point returns near the first).
func (c Curve) Sample(n int) ([]Point, error) {
	if n < 2 {
		return nil, fmt.Errorf("lissajous: need at least 2 samples")
	}
	T, err := c.CommonPeriod()
	if err != nil {
		return nil, err
	}
	pts := make([]Point, n)
	for i := range pts {
		t := T * float64(i) / float64(n)
		x, y := c.Eval(t)
		pts[i] = Point{x, y}
	}
	return pts, nil
}

// BoundingBox returns the extremes of the curve from n samples.
func (c Curve) BoundingBox(n int) (minX, maxX, minY, maxY float64, err error) {
	pts, err := c.Sample(n)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	minX, maxX = pts[0].X, pts[0].X
	minY, maxY = pts[0].Y, pts[0].Y
	for _, p := range pts[1:] {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	return minX, maxX, minY, maxY, nil
}

// ArcLength approximates the curve length over one period from n samples.
func (c Curve) ArcLength(n int) (float64, error) {
	pts, err := c.Sample(n)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for i := 1; i < len(pts); i++ {
		sum += math.Hypot(pts[i].X-pts[i-1].X, pts[i].Y-pts[i-1].Y)
	}
	// Close the loop.
	sum += math.Hypot(pts[0].X-pts[len(pts)-1].X, pts[0].Y-pts[len(pts)-1].Y)
	return sum, nil
}

// MaxDeviation returns the largest pointwise distance between two curves
// sampled at the same time instants — a scalar measure of how far a
// defective Lissajous strays from the golden one (Fig. 1).
func MaxDeviation(a, b Curve, n int) (float64, error) {
	Ta, err := a.CommonPeriod()
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for i := 0; i < n; i++ {
		t := Ta * float64(i) / float64(n)
		ax, ay := a.Eval(t)
		bx, by := b.Eval(t)
		if d := math.Hypot(ax-bx, ay-by); d > worst {
			worst = d
		}
	}
	return worst, nil
}
