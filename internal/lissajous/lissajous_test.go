package lissajous

import (
	"math"
	"testing"

	"repro/internal/biquad"
	"repro/internal/wave"
)

func TestCommonPeriodEqual(t *testing.T) {
	c, err := New(wave.Sine{Amp: 1, Freq: 100}, wave.Sine{Amp: 1, Freq: 100})
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.CommonPeriod()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.01) > 1e-15 {
		t.Fatalf("period = %v, want 0.01", p)
	}
}

func TestCommonPeriodRational(t *testing.T) {
	// 3:2 ratio -> common period = 2/f_x = 3/f_y.
	c, err := New(wave.Sine{Amp: 1, Freq: 300}, wave.Sine{Amp: 1, Freq: 200})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := c.CommonPeriod()
	if math.Abs(p-0.01) > 1e-12 {
		t.Fatalf("period = %v, want 0.01", p)
	}
}

func TestCommonPeriodRejectsAperiodic(t *testing.T) {
	if _, err := New(wave.DC(1), wave.Sine{Amp: 1, Freq: 100}); err == nil {
		t.Fatal("aperiodic x accepted")
	}
}

func TestCommonPeriodRejectsIrrational(t *testing.T) {
	if _, err := New(wave.Sine{Amp: 1, Freq: 100}, wave.Sine{Amp: 1, Freq: 100 * math.Pi}); err == nil {
		t.Fatal("irrational ratio accepted")
	}
}

func TestSampleClosedCurve(t *testing.T) {
	c, _ := New(wave.Sine{Amp: 1, Freq: 100}, wave.Sine{Amp: 1, Freq: 200})
	pts, err := c.Sample(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1000 {
		t.Fatalf("points = %d", len(pts))
	}
	// Closed: evaluating at t=0 and t=T gives the same point.
	x0, y0 := c.Eval(0)
	T, _ := c.CommonPeriod()
	x1, y1 := c.Eval(T)
	if math.Hypot(x1-x0, y1-y0) > 1e-9 {
		t.Fatal("curve not closed over common period")
	}
}

func TestSampleValidation(t *testing.T) {
	c, _ := New(wave.Sine{Amp: 1, Freq: 100}, wave.Sine{Amp: 1, Freq: 100})
	if _, err := c.Sample(1); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestBoundingBoxCircle(t *testing.T) {
	// Equal frequency, 90° phase -> circle of radius A.
	c, _ := New(
		wave.Sine{Amp: 0.4, Freq: 100, Offset: 0.5},
		wave.Sine{Amp: 0.4, Freq: 100, Offset: 0.5, Phase: math.Pi / 2},
	)
	minX, maxX, minY, maxY, err := c.BoundingBox(4096)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]float64{{minX, 0.1}, {maxX, 0.9}, {minY, 0.1}, {maxY, 0.9}} {
		if math.Abs(pair[0]-pair[1]) > 1e-3 {
			t.Fatalf("bbox %v, want %v", pair[0], pair[1])
		}
	}
}

func TestArcLengthCircle(t *testing.T) {
	c, _ := New(
		wave.Sine{Amp: 0.5, Freq: 100},
		wave.Sine{Amp: 0.5, Freq: 100, Phase: math.Pi / 2},
	)
	l, err := c.ArcLength(4096)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-math.Pi) > 1e-3 {
		t.Fatalf("circle circumference = %v, want π", l)
	}
}

// paperCurves builds the golden and +10% f0 Lissajous pair of Fig. 1.
func paperCurves(t *testing.T) (golden, defective Curve) {
	t.Helper()
	in, err := wave.NewMultitone(0.5, 5e3, []int{1, 2, 3},
		[]float64{0.22, 0.13, 0.08}, []float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	g, err := biquad.New(biquad.Params{F0: 10e3, Q: 0.9, Gain: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := biquad.New(g.Params().WithF0Shift(0.10))
	if err != nil {
		t.Fatal(err)
	}
	cg, err := New(in, g.SteadyState(in))
	if err != nil {
		t.Fatal(err)
	}
	cd, err := New(in, d.SteadyState(in))
	if err != nil {
		t.Fatal(err)
	}
	return cg, cd
}

func TestPaperLissajousPeriod(t *testing.T) {
	g, _ := paperCurves(t)
	p, err := g.CommonPeriod()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-200e-6) > 1e-12 {
		t.Fatalf("Lissajous period = %v, want 200 µs (Fig. 7 time axis)", p)
	}
}

func TestPaperLissajousStaysInUnitSquare(t *testing.T) {
	g, d := paperCurves(t)
	for _, c := range []Curve{g, d} {
		minX, maxX, minY, maxY, err := c.BoundingBox(4000)
		if err != nil {
			t.Fatal(err)
		}
		if minX < 0 || maxX > 1 || minY < 0 || maxY > 1 {
			t.Fatalf("curve leaves unit square: [%v,%v]x[%v,%v]", minX, maxX, minY, maxY)
		}
	}
}

func TestF0ShiftDeformsCurve(t *testing.T) {
	g, d := paperCurves(t)
	dev, err := MaxDeviation(g, d, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// A 10% f0 shift must move the trace visibly (Fig. 1) but not
	// unrecognizably.
	if dev < 0.01 || dev > 0.3 {
		t.Fatalf("max deviation = %v, outside plausible band", dev)
	}
	// Self-deviation is zero.
	self, _ := MaxDeviation(g, g, 500)
	if self != 0 {
		t.Fatalf("self deviation = %v", self)
	}
}
