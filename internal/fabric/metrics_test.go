package fabric

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

// snapshotTotal reads one family's summed scalar value from a registry.
func snapshotTotal(t *testing.T, reg *metrics.Registry, name string) float64 {
	t.Helper()
	f, ok := reg.Snapshot().Find(name)
	if !ok {
		t.Fatalf("family %s missing from registry", name)
	}
	return f.Total()
}

// Driving the Backend surface with an injected clock moves every
// coordinator instrument: grants, checkpoint bytes, TTL expiry with its
// requeue, shard completion, merge latency, and the scrape-time
// lease/staleness gauges.
func TestCoordinatorMetrics(t *testing.T) {
	clock := time.Unix(1000, 0)
	var mu sync.Mutex
	now := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock
	}
	advance := func(d time.Duration) {
		mu.Lock()
		clock = clock.Add(d)
		mu.Unlock()
	}
	reg := metrics.NewRegistry()
	c := newTestCoordinator(t, func(cfg *Config) {
		cfg.Now = now
		cfg.LeaseTTL = 10 * time.Second
		cfg.Metrics = NewMetrics(reg)
	})
	ctx := context.Background()
	spec := synthSpec(1000, 1, 100, 100)
	if err := c.Submit(ctx, "job", spec, 1); err != nil {
		t.Fatal(err)
	}

	ls1, ok, err := c.Lease(ctx, "w1")
	if err != nil || !ok {
		t.Fatalf("lease: ok=%v err=%v", ok, err)
	}
	if v := snapshotTotal(t, reg, "mcfabric_leases_granted_total"); v != 1 {
		t.Fatalf("leases_granted = %v after one grant", v)
	}
	if v := snapshotTotal(t, reg, "mcfabric_leases_active"); v != 1 {
		t.Fatalf("leases_active = %v with one lease held", v)
	}

	// A heartbeat with a checkpoint blob adds its bytes and resets the
	// staleness gauge.
	advance(5 * time.Second)
	if age := snapshotTotal(t, reg, "mcfabric_worker_heartbeat_age_seconds"); age != 5 {
		t.Fatalf("heartbeat age = %v, lease granted 5s ago", age)
	}
	blob := []byte("blob-300........")
	if err := c.Heartbeat(ctx, ls1, 300, blob); err != nil {
		t.Fatal(err)
	}
	if v := snapshotTotal(t, reg, "mcfabric_checkpoint_bytes_total"); v != float64(len(blob)) {
		t.Fatalf("checkpoint_bytes = %v, persisted %d", v, len(blob))
	}
	if age := snapshotTotal(t, reg, "mcfabric_worker_heartbeat_age_seconds"); age != 0 {
		t.Fatalf("heartbeat age = %v right after a heartbeat", age)
	}

	// Silence past the TTL expires and requeues the shard.
	advance(11 * time.Second)
	ls2, ok, err := c.Lease(ctx, "w2")
	if err != nil || !ok {
		t.Fatalf("requeued lease: ok=%v err=%v", ok, err)
	}
	if v := snapshotTotal(t, reg, "mcfabric_leases_expired_total"); v != 1 {
		t.Fatalf("leases_expired = %v after one expiry", v)
	}
	if v := snapshotTotal(t, reg, "mcfabric_leases_requeued_total"); v != 1 {
		t.Fatalf("leases_requeued = %v after one expiry", v)
	}
	if v := snapshotTotal(t, reg, "mcfabric_leases_granted_total"); v != 2 {
		t.Fatalf("leases_granted = %v after a re-grant", v)
	}

	// Completing the shard finishes the job and times the merge.
	run, err := synthCompile(ctx, ls2.Spec)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := run.Run(ctx, ls2.Span, ls2.Acc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Report(ctx, ls2, acc); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, "job"); err != nil {
		t.Fatal(err)
	}
	if v := snapshotTotal(t, reg, "mcfabric_shards_completed_total"); v != 1 {
		t.Fatalf("shards_completed = %v after one report", v)
	}
	f, ok2 := reg.Snapshot().Find("mcfabric_shard_merge_seconds")
	if !ok2 || len(f.Metrics) != 1 || f.Metrics[0].Count == nil || *f.Metrics[0].Count != 1 {
		t.Fatalf("shard_merge_seconds did not record the finalize merge: %+v", f)
	}
	if v := snapshotTotal(t, reg, "mcfabric_leases_active"); v != 0 {
		t.Fatalf("leases_active = %v after the job finished", v)
	}
	if age := snapshotTotal(t, reg, "mcfabric_worker_heartbeat_age_seconds"); age != 0 {
		t.Fatalf("heartbeat age = %v with no lease held", age)
	}
}
