package fabric

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/testbench"
)

// The synthetic campaign: cheap deterministic trials through the real
// span engine, with an accumulator that is exactly associative under
// Merge yet sensitive to trial order, duplication, and omission — a
// rolling polynomial hash over per-trial values. Any fabric bug that
// reorders, drops, replays, or double-counts a trial changes the hash.

type synthAcc struct {
	N int
	H uint64
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// pow31 computes 31^n mod 2^64, the shift that splices two hash runs:
// merge(a, b) = a.H * 31^b.N + b.H is associative because the hash is a
// polynomial evaluation.
func pow31(n int) uint64 {
	var out uint64 = 1
	var base uint64 = 31
	for ; n > 0; n >>= 1 {
		if n&1 == 1 {
			out *= base
		}
		base *= base
	}
	return out
}

func synthReducer() campaign.CheckpointReducer[uint64, synthAcc] {
	return campaign.CheckpointReducer[uint64, synthAcc]{
		Reducer: campaign.Reducer[uint64, synthAcc]{
			Fold: func(a synthAcc, _ int, v uint64) synthAcc {
				a.N++
				a.H = a.H*31 + v
				return a
			},
			Merge: func(into, next synthAcc) synthAcc {
				return synthAcc{N: into.N + next.N, H: into.H*pow31(next.N) + next.H}
			},
		},
		Marshal: func(a synthAcc) ([]byte, error) {
			out := make([]byte, 16)
			binary.LittleEndian.PutUint64(out, uint64(a.N))
			binary.LittleEndian.PutUint64(out[8:], a.H)
			return out, nil
		},
		Unmarshal: func(data []byte) (synthAcc, error) {
			if len(data) != 16 {
				return synthAcc{}, fmt.Errorf("synthetic blob is %d bytes, want 16", len(data))
			}
			return synthAcc{N: int(binary.LittleEndian.Uint64(data)), H: binary.LittleEndian.Uint64(data[8:])}, nil
		},
	}
}

// synthCompile is the CompileFunc tests inject: the trial count rides in
// the spec's params (surviving the job.json round trip), the seed and
// engine knobs in their usual spec fields. failAt >= 0 makes that trial
// index error, for the failure path.
func synthCompile(ctx context.Context, spec testbench.Spec) (*testbench.ShardRun, error) {
	params, ok := spec.Params.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("synthetic params %T", spec.Params)
	}
	n, ok := params["n"].(float64)
	if !ok || n < 1 {
		return nil, fmt.Errorf("synthetic trial count %v", params["n"])
	}
	failAt := -1
	if f, ok := params["fail_at"].(float64); ok {
		failAt = int(f)
	}
	red := synthReducer()
	seed := spec.Seed
	eng := campaign.Engine{Workers: spec.Workers, Seed: seed, Chunk: spec.Chunk, Checkpoint: spec.Checkpoint}
	return &testbench.ShardRun{
		Spec:   spec,
		Trials: int(n),
		Run: func(ctx context.Context, span campaign.Span, init []byte, sink testbench.CheckpointSink) ([]byte, error) {
			if span.Lo < 0 || span.Hi < span.Lo || span.Hi > int(n) {
				return nil, fmt.Errorf("span [%d, %d) outside the %d-trial campaign", span.Lo, span.Hi, int(n))
			}
			var initAcc *synthAcc
			if len(init) > 0 {
				a, err := red.Unmarshal(init)
				if err != nil {
					return nil, err
				}
				initAcc = &a
			}
			var ckpt campaign.CheckpointFunc[synthAcc]
			if sink != nil {
				ckpt = func(acc synthAcc, through int) error {
					blob, err := red.Marshal(acc)
					if err != nil {
						return err
					}
					return sink(blob, through)
				}
			}
			acc, err := campaign.ReduceSpan(ctx, eng, span, initAcc, ckpt, red.Reducer, func(i int) (uint64, error) {
				if i == failAt {
					return 0, fmt.Errorf("trial %d: injected failure", i)
				}
				return splitmix64(seed ^ uint64(i)), nil
			})
			if err != nil {
				return nil, err
			}
			return red.Marshal(acc)
		},
		Merge: func(into, next []byte) ([]byte, error) {
			a, err := red.Unmarshal(into)
			if err != nil {
				return nil, err
			}
			b, err := red.Unmarshal(next)
			if err != nil {
				return nil, err
			}
			return red.Marshal(red.Reducer.Merge(a, b))
		},
		Finalize: func(blob []byte) (*testbench.Result, error) {
			acc, err := red.Unmarshal(blob)
			if err != nil {
				return nil, err
			}
			return &testbench.Result{
				Spec:    spec,
				Payload: map[string]any{"n": acc.N, "hash": fmt.Sprintf("%016x", acc.H)},
			}, nil
		},
	}, nil
}

func synthSpec(n int, seed uint64, chunk, checkpoint int) testbench.Spec {
	return testbench.Spec{
		Campaign:   "synthetic",
		Seed:       seed,
		Chunk:      chunk,
		Checkpoint: checkpoint,
		Params:     map[string]any{"n": float64(n)},
	}
}

// synthBaseline runs the synthetic campaign uninterrupted on a single
// node and returns its payload JSON — the bits every fabric execution
// shape must reproduce.
func synthBaseline(t *testing.T, spec testbench.Spec) string {
	t.Helper()
	run, err := synthCompile(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := run.Run(context.Background(), campaign.Span{Lo: 0, Hi: run.Trials}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Finalize(blob)
	if err != nil {
		t.Fatal(err)
	}
	return payloadJSON(t, res)
}

func payloadJSON(t *testing.T, res *testbench.Result) string {
	t.Helper()
	data, err := json.Marshal(res.Payload)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func newTestCoordinator(t *testing.T, opts ...func(*Config)) *Coordinator {
	t.Helper()
	store := openTestStore(t)
	cfg := Config{Store: store, Compile: synthCompile}
	for _, opt := range opts {
		opt(&cfg)
	}
	c := NewCoordinator(cfg)
	t.Cleanup(func() {
		if err := c.Close(); err != nil {
			t.Error(err)
		}
	})
	return c
}

func runWorkers(ctx context.Context, t *testing.T, b Backend, n int) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &Worker{Backend: b, ID: fmt.Sprintf("w%d", i), Compile: synthCompile, Poll: time.Millisecond}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker %s: %v", w.ID, err)
			}
		}()
	}
	return &wg
}

func TestCoordinatorRunsJobToCompletion(t *testing.T) {
	spec := synthSpec(100_000, 42, 1024, 8192)
	want := synthBaseline(t, spec)
	c := newTestCoordinator(t)
	ctx := context.Background()
	if err := c.Submit(ctx, "job", spec, 4); err != nil {
		t.Fatal(err)
	}
	wctx, stop := context.WithCancel(ctx)
	defer stop()
	wg := runWorkers(wctx, t, c, 2)
	res, err := c.Wait(ctx, "job")
	stop()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := payloadJSON(t, res); got != want {
		t.Fatalf("sharded payload %s, single-node %s", got, want)
	}
	st, err := c.Status("job")
	if err != nil {
		t.Fatal(err)
	}
	if st.Phase != PhaseDone {
		t.Fatalf("phase %s after Wait", st.Phase)
	}
}

// ckptKiller wraps a Backend and cancels a context once a given number
// of checkpoints have been durably acknowledged — a deterministic
// mid-campaign kill.
type ckptKiller struct {
	Backend
	remaining atomic.Int64
	kill      context.CancelFunc
}

func (k *ckptKiller) Heartbeat(ctx context.Context, ls *Lease, through int, acc []byte) error {
	err := k.Backend.Heartbeat(ctx, ls, through, acc)
	if err == nil && len(acc) > 0 && k.remaining.Add(-1) == 0 {
		k.kill()
	}
	return err
}

// TestKillAndResumeBitIdentical is the fabric's core integration test:
// a million-trial campaign is killed after a handful of durable
// checkpoints, the store is reopened by a fresh coordinator, and the
// resumed run must finalize bit-identically to an uninterrupted
// single-node run — at several worker counts.
func TestKillAndResumeBitIdentical(t *testing.T) {
	spec := synthSpec(1_000_000, 0xfab, 4096, 16384)
	want := synthBaseline(t, spec)
	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := t.TempDir()
			store, err := OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			c1 := NewCoordinator(Config{Store: store, Compile: synthCompile})
			ctx := context.Background()
			if err := c1.Submit(ctx, "big", spec, 8); err != nil {
				t.Fatal(err)
			}

			// Phase 1: run workers through the killer backend; the whole
			// process "dies" (worker ctx cancelled) after 3 checkpoints.
			wctx, kill := context.WithCancel(ctx)
			killer := &ckptKiller{Backend: c1, kill: kill}
			killer.remaining.Store(3)
			wg := runWorkers(wctx, t, killer, workers)
			wg.Wait()
			kill()
			st, err := c1.Status("big")
			if err != nil {
				t.Fatal(err)
			}
			if st.Phase != PhaseRunning {
				t.Fatalf("job reached phase %s before the kill", st.Phase)
			}
			progressed := 0
			for _, sh := range st.Shards {
				if sh.Through > sh.Span.Lo {
					progressed++
				}
			}
			if progressed == 0 {
				t.Fatal("kill landed before any durable checkpoint")
			}
			if err := c1.Close(); err != nil {
				t.Fatal(err)
			}

			// Phase 2: a fresh coordinator process reopens the same store.
			store2, err := OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			c2 := NewCoordinator(Config{Store: store2, Compile: synthCompile})
			defer func() {
				if err := c2.Close(); err != nil {
					t.Error(err)
				}
			}()
			if err := c2.RecoverAll(ctx); err != nil {
				t.Fatal(err)
			}
			st2, err := c2.Status("big")
			if err != nil {
				t.Fatal(err)
			}
			resumed := 0
			for i, sh := range st2.Shards {
				if sh.Through != st.Shards[i].Through || sh.Done != st.Shards[i].Done {
					t.Fatalf("shard %d recovered at %d (done=%v), persisted %d (done=%v)",
						i, sh.Through, sh.Done, st.Shards[i].Through, st.Shards[i].Done)
				}
				if sh.Through > sh.Span.Lo && !sh.Done {
					resumed++
				}
			}
			if resumed == 0 && progressed > 0 {
				// All progressed shards completed pre-kill; resume still has
				// untouched shards to run, but log the weaker condition.
				t.Logf("every checkpointed shard had already completed before the kill")
			}

			wctx2, stop := context.WithCancel(ctx)
			defer stop()
			wg2 := runWorkers(wctx2, t, c2, workers)
			res, err := c2.Wait(ctx, "big")
			stop()
			wg2.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if got := payloadJSON(t, res); got != want {
				t.Fatalf("resumed payload %s, uninterrupted single-node %s", got, want)
			}
		})
	}
}

// TestRealYieldKillAndResume runs the same kill/resume shape through the
// real yield campaign (testbench.Sharder) and pins the resumed payload
// to the uninterrupted testbench.Run payload.
func TestRealYieldKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("real campaign: seconds of trial work")
	}
	spec := testbench.Spec{
		Campaign:   "yield",
		Seed:       11,
		Chunk:      64,
		Checkpoint: 64,
		Params:     map[string]any{"n": 384},
	}
	base, err := testbench.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want := payloadJSON(t, base)

	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewCoordinator(Config{Store: store})
	ctx := context.Background()
	if err := c1.Submit(ctx, "yield", spec, 2); err != nil {
		t.Fatal(err)
	}
	wctx, kill := context.WithCancel(ctx)
	killer := &ckptKiller{Backend: c1, kill: kill}
	killer.remaining.Store(1)
	w := &Worker{Backend: killer, ID: "w0", Poll: time.Millisecond}
	if err := w.Run(wctx); err != nil {
		t.Fatal(err)
	}
	kill()
	st, err := c1.Status("yield")
	if err != nil {
		t.Fatal(err)
	}
	if st.Phase != PhaseRunning {
		t.Fatalf("job reached phase %s before the kill", st.Phase)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCoordinator(Config{Store: store2})
	defer func() {
		if err := c2.Close(); err != nil {
			t.Error(err)
		}
	}()
	if err := c2.RecoverAll(ctx); err != nil {
		t.Fatal(err)
	}
	wctx2, stop := context.WithCancel(ctx)
	defer stop()
	w2 := &Worker{Backend: c2, ID: "w1", Poll: time.Millisecond}
	done := make(chan error, 1)
	go func() { done <- w2.Run(wctx2) }()
	res, err := c2.Wait(ctx, "yield")
	stop()
	if werr := <-done; werr != nil {
		t.Fatal(werr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if got := payloadJSON(t, res); got != want {
		t.Fatalf("resumed yield payload %s, want %s", got, want)
	}
}

// TestLeaseExpiryRequeues drives the Backend surface directly with an
// injected clock: an expired lease's shard is re-issued resuming from
// its last persisted checkpoint, and the stale token is refused.
func TestLeaseExpiryRequeues(t *testing.T) {
	clock := time.Unix(1000, 0)
	var mu sync.Mutex
	now := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock
	}
	advance := func(d time.Duration) {
		mu.Lock()
		clock = clock.Add(d)
		mu.Unlock()
	}
	c := newTestCoordinator(t, func(cfg *Config) {
		cfg.Now = now
		cfg.LeaseTTL = 10 * time.Second
	})
	ctx := context.Background()
	spec := synthSpec(1000, 1, 100, 100)
	if err := c.Submit(ctx, "job", spec, 1); err != nil {
		t.Fatal(err)
	}
	ls1, ok, err := c.Lease(ctx, "w1")
	if err != nil || !ok {
		t.Fatalf("first lease: ok=%v err=%v", ok, err)
	}
	// The shard is held: nobody else can lease it.
	if _, ok, err := c.Lease(ctx, "w2"); err != nil || ok {
		t.Fatalf("held shard re-leased: ok=%v err=%v", ok, err)
	}
	// w1 checkpoints partway, then goes silent.
	if err := c.Heartbeat(ctx, ls1, 300, []byte("blob-300........")); err != nil {
		t.Fatal(err)
	}
	advance(11 * time.Second)
	ls2, ok, err := c.Lease(ctx, "w2")
	if err != nil || !ok {
		t.Fatalf("expired shard not re-issued: ok=%v err=%v", ok, err)
	}
	if ls2.Shard != ls1.Shard || ls2.Through != 300 || string(ls2.Acc) != "blob-300........" {
		t.Fatalf("requeued lease %+v does not resume from the checkpoint", ls2)
	}
	if ls2.Token == ls1.Token {
		t.Fatal("requeued lease reuses the stale token")
	}
	// The stale holder's messages are refused with the stop signal.
	if err := c.Heartbeat(ctx, ls1, 400, []byte("late")); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("stale heartbeat: %v", err)
	}
	if err := c.Report(ctx, ls1, []byte("late")); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("stale report: %v", err)
	}
	// The new holder works fine.
	if err := c.Heartbeat(ctx, ls2, 500, []byte("blob-500........")); err != nil {
		t.Fatal(err)
	}
}

// TestCancelRevokesLeases pins the cancellation flow: Cancel moves the
// job terminal, in-flight heartbeats come back ErrLeaseRevoked (which a
// Worker turns into span-context cancellation), and Wait reports it.
func TestCancelRevokesLeases(t *testing.T) {
	c := newTestCoordinator(t)
	ctx := context.Background()
	if err := c.Submit(ctx, "job", synthSpec(1000, 2, 100, 100), 2); err != nil {
		t.Fatal(err)
	}
	ls, ok, err := c.Lease(ctx, "w1")
	if err != nil || !ok {
		t.Fatalf("lease: ok=%v err=%v", ok, err)
	}
	if err := c.Cancel("job"); err != nil {
		t.Fatal(err)
	}
	if err := c.Heartbeat(ctx, ls, 0, nil); !errors.Is(err, ErrLeaseRevoked) {
		t.Fatalf("heartbeat after cancel: %v", err)
	}
	if err := c.Report(ctx, ls, []byte("acc.............")); !errors.Is(err, ErrLeaseRevoked) {
		t.Fatalf("report after cancel: %v", err)
	}
	if _, ok, err := c.Lease(ctx, "w2"); err != nil || ok {
		t.Fatalf("cancelled job still leasing: ok=%v err=%v", ok, err)
	}
	if _, err := c.Wait(ctx, "job"); err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("Wait after cancel: %v", err)
	}
	if err := c.Cancel("job"); !errors.Is(err, ErrJobDone) {
		t.Fatalf("double cancel: %v", err)
	}
	// The cancellation is durable: a fresh coordinator sees it.
	c2 := NewCoordinator(Config{Store: storeOf(c), Compile: synthCompile})
	if err := c2.Resume(ctx, "job"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c2.Close(); err != nil {
			t.Error(err)
		}
	}()
	if _, err := c2.Wait(ctx, "job"); err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("Wait after recover: %v", err)
	}
}

// storeOf reaches the coordinator's store for reopen-style tests.
func storeOf(c *Coordinator) *Store { return c.store }

// TestWorkerAbandonsCancelledSpan runs a real Worker against a job that
// is cancelled mid-span and checks the worker notices through its
// heartbeat and stops without reporting.
func TestWorkerAbandonsCancelledSpan(t *testing.T) {
	c := newTestCoordinator(t)
	ctx := context.Background()
	// Tiny checkpoint cadence: the worker heartbeats on every chunk.
	if err := c.Submit(ctx, "job", synthSpec(2_000_000, 3, 256, 256), 1); err != nil {
		t.Fatal(err)
	}
	// Cancel the job after the first durable checkpoint arrives.
	cancelled := make(chan struct{})
	var once sync.Once
	b := &hookBackend{Backend: c, onCheckpoint: func() {
		once.Do(func() {
			if err := c.Cancel("job"); err != nil {
				t.Errorf("cancel: %v", err)
			}
			close(cancelled)
		})
	}}
	w := &Worker{Backend: b, ID: "w0", Compile: synthCompile, Poll: time.Millisecond}
	worked, err := w.RunOne(ctx)
	if err != nil {
		t.Fatalf("worker surfaced revocation as an error: %v", err)
	}
	if !worked {
		t.Fatal("worker found nothing to lease")
	}
	<-cancelled
	st, err := c.Status("job")
	if err != nil {
		t.Fatal(err)
	}
	if st.Phase != PhaseCancelled {
		t.Fatalf("phase %s after cancel", st.Phase)
	}
	for i, sh := range st.Shards {
		if sh.Done {
			t.Fatalf("shard %d reported done on a cancelled job", i)
		}
	}
}

type hookBackend struct {
	Backend
	onCheckpoint func()
}

func (h *hookBackend) Heartbeat(ctx context.Context, ls *Lease, through int, acc []byte) error {
	err := h.Backend.Heartbeat(ctx, ls, through, acc)
	if err == nil && len(acc) > 0 && h.onCheckpoint != nil {
		h.onCheckpoint()
	}
	return err
}

// TestShardFailureFailsJob pins the deterministic-failure path: one
// erroring trial fails the whole job, and Wait surfaces the message.
func TestShardFailureFailsJob(t *testing.T) {
	c := newTestCoordinator(t)
	ctx := context.Background()
	spec := synthSpec(1000, 4, 100, 100)
	spec.Params.(map[string]any)["fail_at"] = float64(650)
	if err := c.Submit(ctx, "job", spec, 2); err != nil {
		t.Fatal(err)
	}
	wctx, stop := context.WithCancel(ctx)
	defer stop()
	wg := runWorkers(wctx, t, c, 2)
	_, err := c.Wait(ctx, "job")
	stop()
	wg.Wait()
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("Wait after shard failure: %v", err)
	}
	st, statusErr := c.Status("job")
	if statusErr != nil {
		t.Fatal(statusErr)
	}
	if st.Phase != PhaseFailed || !strings.Contains(st.Failure, "injected failure") {
		t.Fatalf("durable phase %s failure %q", st.Phase, st.Failure)
	}
}

// TestResumeRejectsMismatchedSpec guards the recompile cross-check: a
// stored job whose spec now resolves to a different trial count must
// not silently resume.
func TestResumeRejectsMismatchedSpec(t *testing.T) {
	c := newTestCoordinator(t)
	ctx := context.Background()
	if err := c.Submit(ctx, "job", synthSpec(1000, 4, 100, 100), 2); err != nil {
		t.Fatal(err)
	}
	shrunk := func(_ context.Context, spec testbench.Spec) (*testbench.ShardRun, error) {
		spec.Params = map[string]any{"n": float64(500)}
		return synthCompile(ctx, spec)
	}
	c2 := NewCoordinator(Config{Store: storeOf(c), Compile: shrunk})
	err := c2.Resume(ctx, "job")
	if err == nil || !strings.Contains(err.Error(), "trials") {
		t.Fatalf("mismatched resume: %v", err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
}
