package fabric

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/testbench"
)

// DefaultPoll is how long a worker sleeps between Lease calls when the
// coordinator has nothing pending.
const DefaultPoll = 250 * time.Millisecond

// Worker pulls shard leases from a Backend and executes them: it
// compiles the lease's spec into its sharded form, runs the remaining
// span from the lease's restored checkpoint, heartbeats while the span
// runs (piggybacking every checkpoint blob so an expiry later resumes
// from it), and reports the span's accumulator. A heartbeat answered
// with ErrLeaseRevoked or ErrUnknownLease cancels the span's context —
// that is how a coordinator-side cancel or expiry reaches the trial
// loop. Worker methods are not safe for concurrent use; run one
// goroutine per Worker.
type Worker struct {
	// Backend is the coordinator surface; required.
	Backend Backend
	// ID names the worker inside lease tokens; required.
	ID string
	// Compile resolves lease specs to their sharded form; nil selects
	// testbench.Sharder.
	Compile CompileFunc
	// Poll is the idle sleep between Lease calls; <= 0 selects
	// DefaultPoll.
	Poll time.Duration

	compiled map[string]*testbench.ShardRun // job id -> compiled form
}

// Run leases and executes shards until ctx is cancelled, polling when
// nothing is pending. Cancellation returns nil: a stopping worker is
// not an error, its leases expire and requeue.
func (w *Worker) Run(ctx context.Context) error {
	for {
		worked, err := w.RunOne(ctx)
		switch {
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return nil
		case err != nil:
			return err
		case worked:
			continue
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(w.poll()):
		}
	}
}

// RunOne leases at most one shard and runs it to completion (report,
// failure, or abandonment). It returns false when nothing was pending.
func (w *Worker) RunOne(ctx context.Context) (bool, error) {
	ls, ok, err := w.Backend.Lease(ctx, w.ID)
	if err != nil || !ok {
		return false, err
	}
	return true, w.runLease(ctx, ls)
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return DefaultPoll
}

// sharded resolves the lease's spec, caching per job so repeated leases
// of one job (requeues, many shards) compile once per worker.
func (w *Worker) sharded(ctx context.Context, ls *Lease) (*testbench.ShardRun, error) {
	if run, ok := w.compiled[ls.Job]; ok {
		return run, nil
	}
	compile := w.Compile
	if compile == nil {
		compile = defaultCompile
	}
	run, err := compile(ctx, ls.Spec)
	if err != nil {
		return nil, err
	}
	if w.compiled == nil {
		w.compiled = map[string]*testbench.ShardRun{}
	}
	w.compiled[ls.Job] = run
	return run, nil
}

// runLease executes one leased span: resume from the lease's checkpoint,
// heartbeat at TTL/3, piggyback checkpoints, report the blob.
func (w *Worker) runLease(ctx context.Context, ls *Lease) error {
	run, err := w.sharded(ctx, ls)
	if err != nil {
		// A spec the worker cannot compile is deterministic — surface it
		// as the shard's failure rather than leasing it forever.
		return w.failShard(ctx, ls, "compile: "+err.Error())
	}

	spanCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var mu sync.Mutex
	var lost error
	abandon := func(err error) {
		mu.Lock()
		if lost == nil {
			lost = err
		}
		mu.Unlock()
		cancel()
	}

	interval := ls.TTL / 3
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		for {
			select {
			case <-spanCtx.Done():
				return
			case <-ticker.C:
				if err := w.Backend.Heartbeat(ctx, ls, 0, nil); err != nil {
					abandon(err)
					return
				}
			}
		}
	}()

	// Every engine checkpoint rides a heartbeat to the coordinator, so
	// the durable store is never further behind than one cadence.
	sink := func(acc []byte, through int) error {
		if err := w.Backend.Heartbeat(ctx, ls, through, acc); err != nil {
			abandon(err)
			return err
		}
		return nil
	}

	acc, runErr := run.Run(spanCtx, campaign.Span{Lo: ls.Through, Hi: ls.Span.Hi}, ls.Acc, sink)
	cancel()
	<-hbDone

	mu.Lock()
	err = lost
	mu.Unlock()
	switch {
	case err != nil:
		// The lease is gone (revoked, superseded, or the coordinator is
		// unreachable). Abandon quietly: the shard requeues from its last
		// persisted checkpoint, and revocation is the cancellation path
		// working as designed.
		if errors.Is(err, ErrLeaseRevoked) || errors.Is(err, ErrUnknownLease) {
			return nil
		}
		return err
	case runErr != nil:
		if ctx.Err() != nil {
			// The worker itself is shutting down; the lease expires and
			// requeues on its own.
			return ctx.Err()
		}
		return w.failShard(ctx, ls, runErr.Error())
	}
	return w.report(ctx, ls, acc)
}

// report delivers the span's blob; a lease that died in the last
// instant is not the worker's problem.
func (w *Worker) report(ctx context.Context, ls *Lease, acc []byte) error {
	err := w.Backend.Report(ctx, ls, acc)
	if errors.Is(err, ErrLeaseRevoked) || errors.Is(err, ErrUnknownLease) {
		return nil
	}
	return err
}

// failShard reports a deterministic span failure. The job fails as a
// whole on the coordinator side; the worker keeps serving other jobs,
// so a successfully delivered failure is not the worker's error.
func (w *Worker) failShard(ctx context.Context, ls *Lease, msg string) error {
	err := w.Backend.Fail(ctx, ls, msg)
	if errors.Is(err, ErrLeaseRevoked) || errors.Is(err, ErrUnknownLease) {
		return nil
	}
	return err
}
