package fabric

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/campaign"
	"repro/internal/testbench"
)

// Store is the durable half of the fabric: a directory of job
// directories, each holding
//
//	jobs/<id>/job.json      immutable: spec, trial count, shard plan
//	jobs/<id>/log.jsonl     append-only: checkpoints, completions, phase
//	jobs/<id>/snapshot.json compacted state the log replays on top of
//	jobs/<id>/result.json   the finalized Result, once the job is done
//
// Appends go to the log; every compactEvery appends the state is
// written to snapshot.json (atomically, via rename) and the log
// truncated, so replay cost stays bounded however long a campaign runs.
// A process killed mid-append leaves at most one unterminated final
// line, which replay ignores; any other malformation is an error — a
// corrupt store must fail loudly, not resume from fabricated state.
type Store struct {
	dir          string
	sync         bool
	compactEvery int
}

// StoreOption customizes OpenStore.
type StoreOption func(*Store)

// WithSync makes every log append and snapshot fsync before returning.
// The default is off: surviving a killed process only needs the data to
// have reached the page cache, and the checkpoint-overhead budget
// (BenchmarkCheckpointOverhead) is measured at the default. Turn it on
// when the failure model includes the whole machine losing power.
func WithSync(on bool) StoreOption { return func(s *Store) { s.sync = on } }

// WithCompactEvery sets how many log appends accumulate before the
// state is compacted into snapshot.json; n < 1 resets the default.
func WithCompactEvery(n int) StoreOption {
	return func(s *Store) {
		if n < 1 {
			n = defaultCompactEvery
		}
		s.compactEvery = n
	}
}

const defaultCompactEvery = 256

// OpenStore opens (creating if needed) a job store rooted at dir.
func OpenStore(dir string, opts ...StoreOption) (*Store, error) {
	s := &Store{dir: dir, compactEvery: defaultCompactEvery}
	for _, opt := range opts {
		opt(s)
	}
	if err := os.MkdirAll(s.jobsDir(), 0o755); err != nil {
		return nil, fmt.Errorf("fabric: open store: %w", err)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) jobsDir() string         { return filepath.Join(s.dir, "jobs") }
func (s *Store) jobDir(id string) string { return filepath.Join(s.jobsDir(), id) }

// Jobs lists the ids of every job in the store, sorted.
func (s *Store) Jobs() ([]string, error) {
	entries, err := os.ReadDir(s.jobsDir())
	if err != nil {
		return nil, fmt.Errorf("fabric: list jobs: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// jobMeta is the immutable half of a job, written once at creation.
type jobMeta struct {
	ID     string          `json:"id"`
	Spec   testbench.Spec  `json:"spec"`
	Trials int             `json:"trials"`
	Plan   []campaign.Span `json:"plan"`
}

// ShardState is the durable progress of one planned span: the
// accumulator blob covering [Span.Lo, Through), and whether the span
// has completed.
type ShardState struct {
	Span    campaign.Span `json:"span"`
	Through int           `json:"through"`
	Acc     []byte        `json:"acc,omitempty"`
	Done    bool          `json:"done"`
}

// Phase is a job's lifecycle state.
type Phase string

// The job phases. Running jobs accept leases; the other three are
// terminal.
const (
	PhaseRunning   Phase = "running"
	PhaseDone      Phase = "done"
	PhaseFailed    Phase = "failed"
	PhaseCancelled Phase = "cancelled"
)

// JobState is the replayable state of a job: per-shard progress plus
// the lifecycle phase.
type JobState struct {
	Shards  []ShardState `json:"shards"`
	Phase   Phase        `json:"phase"`
	Failure string       `json:"failure,omitempty"`
}

// clone deep-copies the state so callers can never alias the store's.
func (st *JobState) clone() JobState {
	out := JobState{Phase: st.Phase, Failure: st.Failure, Shards: make([]ShardState, len(st.Shards))}
	copy(out.Shards, st.Shards)
	for i := range out.Shards {
		out.Shards[i].Acc = bytes.Clone(out.Shards[i].Acc)
	}
	return out
}

// logRecord is one line of the append-only job log.
type logRecord struct {
	Kind    string `json:"kind"`
	Shard   int    `json:"shard,omitempty"`
	Through int    `json:"through,omitempty"`
	Acc     []byte `json:"acc,omitempty"`
	Msg     string `json:"msg,omitempty"`
}

// Log record kinds.
const (
	recCheckpoint = "checkpoint"
	recShardDone  = "shard_done"
	recDone       = "done"
	recFailed     = "failed"
	recCancelled  = "cancelled"
)

// Job is an open handle on one durable job: the immutable meta plus the
// mutable, log-backed state. Append methods are safe for concurrent
// use; every append that cannot be persisted returns its error and
// leaves the in-memory state unchanged.
type Job struct {
	store *Store
	meta  jobMeta

	mu        sync.Mutex
	state     JobState
	log       *os.File
	sinceSnap int
}

// CreateJob creates a new durable job: the plan must partition
// [0, trials) into contiguous ascending spans.
func (s *Store) CreateJob(id string, spec testbench.Spec, trials int, plan []campaign.Span) (*Job, error) {
	if id == "" || id != filepath.Base(id) || id[0] == '.' {
		return nil, fmt.Errorf("fabric: bad job id %q", id)
	}
	if err := validatePlan(trials, plan); err != nil {
		return nil, fmt.Errorf("fabric: job %s: %w", id, err)
	}
	dir := s.jobDir(id)
	if _, err := os.Stat(dir); err == nil {
		return nil, fmt.Errorf("fabric: job %s already exists", id)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("fabric: job %s: %w", id, err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fabric: job %s: %w", id, err)
	}
	meta := jobMeta{ID: id, Spec: spec, Trials: trials, Plan: plan}
	if err := s.writeFileAtomic(filepath.Join(dir, "job.json"), meta); err != nil {
		return nil, fmt.Errorf("fabric: job %s: %w", id, err)
	}
	j := &Job{store: s, meta: meta, state: freshState(plan)}
	if err := j.openLog(); err != nil {
		return nil, err
	}
	return j, nil
}

// OpenJob reopens an existing job, replaying snapshot and log into the
// in-memory state — the resume path after a kill or restart.
func (s *Store) OpenJob(id string) (*Job, error) {
	dir := s.jobDir(id)
	metaBytes, err := os.ReadFile(filepath.Join(dir, "job.json"))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
		}
		return nil, fmt.Errorf("fabric: job %s: %w", id, err)
	}
	var meta jobMeta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return nil, fmt.Errorf("fabric: job %s: corrupt job.json: %w", id, err)
	}
	if err := validatePlan(meta.Trials, meta.Plan); err != nil {
		return nil, fmt.Errorf("fabric: job %s: corrupt job.json: %w", id, err)
	}
	state := freshState(meta.Plan)
	snapBytes, err := os.ReadFile(filepath.Join(dir, "snapshot.json"))
	switch {
	case err == nil:
		var snap JobState
		if err := json.Unmarshal(snapBytes, &snap); err != nil {
			return nil, fmt.Errorf("fabric: job %s: corrupt snapshot: %w", id, err)
		}
		if err := checkStateAgainstPlan(&snap, meta.Plan); err != nil {
			return nil, fmt.Errorf("fabric: job %s: corrupt snapshot: %w", id, err)
		}
		state = snap
	case !errors.Is(err, os.ErrNotExist):
		return nil, fmt.Errorf("fabric: job %s: %w", id, err)
	}
	logBytes, err := os.ReadFile(filepath.Join(dir, "log.jsonl"))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("fabric: job %s: %w", id, err)
	}
	if err := replayLog(&state, logBytes); err != nil {
		return nil, fmt.Errorf("fabric: job %s: corrupt log: %w", id, err)
	}
	j := &Job{store: s, meta: meta, state: state}
	if err := j.openLog(); err != nil {
		return nil, err
	}
	return j, nil
}

// freshState is the state of a job with no progress.
func freshState(plan []campaign.Span) JobState {
	st := JobState{Phase: PhaseRunning, Shards: make([]ShardState, len(plan))}
	for i, sp := range plan {
		st.Shards[i] = ShardState{Span: sp, Through: sp.Lo}
	}
	return st
}

// validatePlan checks that plan partitions [0, trials) into contiguous
// ascending non-empty spans.
func validatePlan(trials int, plan []campaign.Span) error {
	if trials < 1 {
		return fmt.Errorf("trial count %d", trials)
	}
	if len(plan) == 0 {
		return errors.New("empty shard plan")
	}
	at := 0
	for i, sp := range plan {
		if sp.Lo != at || sp.Hi <= sp.Lo {
			return fmt.Errorf("shard %d span [%d, %d) breaks the partition at %d", i, sp.Lo, sp.Hi, at)
		}
		at = sp.Hi
	}
	if at != trials {
		return fmt.Errorf("plan covers %d of %d trials", at, trials)
	}
	return nil
}

// checkStateAgainstPlan validates a decoded snapshot against the
// immutable plan.
func checkStateAgainstPlan(st *JobState, plan []campaign.Span) error {
	switch st.Phase {
	case PhaseRunning, PhaseDone, PhaseFailed, PhaseCancelled:
	default:
		return fmt.Errorf("unknown phase %q", st.Phase)
	}
	if len(st.Shards) != len(plan) {
		return fmt.Errorf("%d shards, plan has %d", len(st.Shards), len(plan))
	}
	for i, sh := range st.Shards {
		if sh.Span != plan[i] {
			return fmt.Errorf("shard %d span [%d, %d) does not match plan [%d, %d)",
				i, sh.Span.Lo, sh.Span.Hi, plan[i].Lo, plan[i].Hi)
		}
		if sh.Through < sh.Span.Lo || sh.Through > sh.Span.Hi {
			return fmt.Errorf("shard %d progress %d outside [%d, %d]", i, sh.Through, sh.Span.Lo, sh.Span.Hi)
		}
		if sh.Done && sh.Through != sh.Span.Hi {
			return fmt.Errorf("shard %d done at %d of %d", i, sh.Through, sh.Span.Hi)
		}
		if sh.Through > sh.Span.Lo && len(sh.Acc) == 0 {
			return fmt.Errorf("shard %d has progress %d but no accumulator", i, sh.Through)
		}
	}
	return nil
}

// replayLog applies an append-only log to the state. A final line
// without a terminating newline is a write the kill interrupted and is
// ignored; everything else must apply cleanly.
func replayLog(st *JobState, data []byte) error {
	line := 0
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			return nil // unterminated final line: interrupted append
		}
		raw := data[:nl]
		data = data[nl+1:]
		line++
		var rec logRecord
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		if dec.More() {
			return fmt.Errorf("line %d: trailing data", line)
		}
		if err := applyRecord(st, rec); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
	}
	return nil
}

// applyRecord folds one log record into the state, rejecting records a
// correct writer could never have produced.
func applyRecord(st *JobState, rec logRecord) error {
	switch rec.Kind {
	case recCheckpoint, recShardDone:
		if rec.Shard < 0 || rec.Shard >= len(st.Shards) {
			return fmt.Errorf("%s for shard %d of %d", rec.Kind, rec.Shard, len(st.Shards))
		}
		sh := &st.Shards[rec.Shard]
		if rec.Kind == recShardDone {
			rec.Through = sh.Span.Hi
		}
		if rec.Through <= sh.Span.Lo || rec.Through > sh.Span.Hi {
			return fmt.Errorf("checkpoint at %d outside shard %d span (%d, %d]", rec.Through, rec.Shard, sh.Span.Lo, sh.Span.Hi)
		}
		if len(rec.Acc) == 0 {
			return fmt.Errorf("%s for shard %d without accumulator", rec.Kind, rec.Shard)
		}
		// Progress may only advance; a checkpoint below the high-water
		// mark would mean the fabric resumed from the wrong blob.
		if rec.Through < sh.Through || (sh.Done && rec.Kind == recCheckpoint) {
			return fmt.Errorf("shard %d progress moved backwards (%d after %d)", rec.Shard, rec.Through, sh.Through)
		}
		sh.Through = rec.Through
		sh.Acc = rec.Acc
		sh.Done = sh.Done || rec.Kind == recShardDone
	case recDone:
		st.Phase = PhaseDone
	case recFailed:
		st.Phase = PhaseFailed
		st.Failure = rec.Msg
	case recCancelled:
		st.Phase = PhaseCancelled
	default:
		return fmt.Errorf("unknown record kind %q", rec.Kind)
	}
	return nil
}

// openLog opens the job's log for appending.
func (j *Job) openLog() error {
	f, err := os.OpenFile(filepath.Join(j.dir(), "log.jsonl"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("fabric: job %s: %w", j.meta.ID, err)
	}
	j.log = f
	return nil
}

func (j *Job) dir() string { return j.store.jobDir(j.meta.ID) }

// ID returns the job's id.
func (j *Job) ID() string { return j.meta.ID }

// Spec returns the job's campaign spec as recorded at creation.
func (j *Job) Spec() testbench.Spec { return j.meta.Spec }

// Trials returns the job's total trial count.
func (j *Job) Trials() int { return j.meta.Trials }

// Plan returns the job's shard plan.
func (j *Job) Plan() []campaign.Span {
	out := make([]campaign.Span, len(j.meta.Plan))
	copy(out, j.meta.Plan)
	return out
}

// State returns a deep copy of the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.clone()
}

// append validates a record against the current state, persists it, and
// only then applies it in memory — so the in-memory state never gets
// ahead of the disk, and a failed write surfaces without corrupting
// either.
func (j *Job) append(rec logRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.log == nil {
		return fmt.Errorf("fabric: job %s: store closed", j.meta.ID)
	}
	// Dry-run on a copy first: an invalid append must not reach the log.
	trial := j.state.clone()
	if err := applyRecord(&trial, rec); err != nil {
		return fmt.Errorf("fabric: job %s: %w", j.meta.ID, err)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fabric: job %s: %w", j.meta.ID, err)
	}
	if _, err := j.log.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("fabric: job %s: append: %w", j.meta.ID, err)
	}
	if j.store.sync {
		if err := j.log.Sync(); err != nil {
			return fmt.Errorf("fabric: job %s: sync: %w", j.meta.ID, err)
		}
	}
	j.state = trial
	j.sinceSnap++
	if j.sinceSnap >= j.store.compactEvery {
		if err := j.compactLocked(); err != nil {
			return err
		}
	}
	return nil
}

// compactLocked writes the state to snapshot.json and truncates the
// log. Called with j.mu held.
func (j *Job) compactLocked() error {
	if err := j.store.writeFileAtomic(filepath.Join(j.dir(), "snapshot.json"), j.state); err != nil {
		return fmt.Errorf("fabric: job %s: snapshot: %w", j.meta.ID, err)
	}
	if err := j.log.Truncate(0); err != nil {
		return fmt.Errorf("fabric: job %s: truncate log: %w", j.meta.ID, err)
	}
	if _, err := j.log.Seek(0, 0); err != nil {
		return fmt.Errorf("fabric: job %s: rewind log: %w", j.meta.ID, err)
	}
	j.sinceSnap = 0
	return nil
}

// AppendCheckpoint records a durable checkpoint: acc covers
// [shard.Span.Lo, through).
func (j *Job) AppendCheckpoint(shard, through int, acc []byte) error {
	return j.append(logRecord{Kind: recCheckpoint, Shard: shard, Through: through, Acc: acc})
}

// AppendShardDone records a completed span with its final accumulator.
func (j *Job) AppendShardDone(shard int, acc []byte) error {
	return j.append(logRecord{Kind: recShardDone, Shard: shard, Acc: acc})
}

// AppendCancelled moves the job to its cancelled terminal phase.
func (j *Job) AppendCancelled() error { return j.append(logRecord{Kind: recCancelled}) }

// AppendFailed moves the job to its failed terminal phase.
func (j *Job) AppendFailed(msg string) error {
	return j.append(logRecord{Kind: recFailed, Msg: msg})
}

// AppendDone persists the finalized result and moves the job to done.
func (j *Job) AppendDone(res *testbench.Result) error {
	j.mu.Lock()
	err := j.store.writeFileAtomic(filepath.Join(j.dir(), "result.json"), res)
	j.mu.Unlock()
	if err != nil {
		return fmt.Errorf("fabric: job %s: result: %w", j.meta.ID, err)
	}
	return j.append(logRecord{Kind: recDone})
}

// Result reads back the finalized result of a done job.
func (j *Job) Result() (*testbench.Result, error) {
	data, err := os.ReadFile(filepath.Join(j.dir(), "result.json"))
	if err != nil {
		return nil, fmt.Errorf("fabric: job %s: %w", j.meta.ID, err)
	}
	res, err := testbench.DecodeResult(data)
	if err != nil {
		return nil, fmt.Errorf("fabric: job %s: %w", j.meta.ID, err)
	}
	return res, nil
}

// Close releases the log handle. Appends after Close fail.
func (j *Job) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.log == nil {
		return nil
	}
	err := j.log.Close()
	j.log = nil
	if err != nil {
		return fmt.Errorf("fabric: job %s: close: %w", j.meta.ID, err)
	}
	return nil
}

// writeFileAtomic writes JSON via a temp file and rename, so readers
// never observe a torn file; with WithSync the data is fsynced before
// the rename commits it.
func (s *Store) writeFileAtomic(path string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close() // the write error is the one worth reporting
		return errors.Join(err, os.Remove(tmp.Name()))
	}
	if s.sync {
		if err := tmp.Sync(); err != nil {
			_ = tmp.Close()
			return errors.Join(err, os.Remove(tmp.Name()))
		}
	}
	if err := tmp.Close(); err != nil {
		return errors.Join(err, os.Remove(tmp.Name()))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return errors.Join(err, os.Remove(tmp.Name()))
	}
	return nil
}
