package fabric

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/testbench"
)

func testSpec() testbench.Spec {
	return testbench.Spec{Campaign: "yield", Seed: 7, Chunk: 64, Checkpoint: 128}
}

func testPlan(t *testing.T, trials, shards, chunk int) []campaign.Span {
	t.Helper()
	plan, err := PlanShards(trials, shards, chunk)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func openTestStore(t *testing.T, opts ...StoreOption) *Store {
	t.Helper()
	s, err := OpenStore(t.TempDir(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPlanShards(t *testing.T) {
	cases := []struct {
		trials, shards, chunk int
		want                  []campaign.Span
	}{
		{1000, 4, 100, []campaign.Span{{Lo: 0, Hi: 300}, {Lo: 300, Hi: 600}, {Lo: 600, Hi: 800}, {Lo: 800, Hi: 1000}}},
		{250, 2, 100, []campaign.Span{{Lo: 0, Hi: 200}, {Lo: 200, Hi: 250}}},
		{50, 8, 100, []campaign.Span{{Lo: 0, Hi: 50}}},
		{300, 3, 100, []campaign.Span{{Lo: 0, Hi: 100}, {Lo: 100, Hi: 200}, {Lo: 200, Hi: 300}}},
	}
	for _, c := range cases {
		got, err := PlanShards(c.trials, c.shards, c.chunk)
		if err != nil {
			t.Fatalf("PlanShards(%d, %d, %d): %v", c.trials, c.shards, c.chunk, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("PlanShards(%d, %d, %d) = %v, want %v", c.trials, c.shards, c.chunk, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("PlanShards(%d, %d, %d) = %v, want %v", c.trials, c.shards, c.chunk, got, c.want)
			}
		}
		// Every plan must satisfy the store's partition contract.
		if err := validatePlan(c.trials, got); err != nil {
			t.Fatalf("PlanShards(%d, %d, %d) fails validatePlan: %v", c.trials, c.shards, c.chunk, err)
		}
	}
	for _, c := range []struct{ trials, shards int }{{0, 2}, {-5, 2}, {100, 0}} {
		if _, err := PlanShards(c.trials, c.shards, 100); err == nil {
			t.Fatalf("PlanShards(%d, %d) accepted", c.trials, c.shards)
		}
	}
}

func TestStoreCreateReopenRoundTrip(t *testing.T) {
	s := openTestStore(t)
	plan := testPlan(t, 1000, 3, 100)
	job, err := s.CreateJob("j1", testSpec(), 1000, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.AppendCheckpoint(0, 200, []byte("acc-0-200")); err != nil {
		t.Fatal(err)
	}
	if err := job.AppendCheckpoint(0, 300, []byte("acc-0-300")); err != nil {
		t.Fatal(err)
	}
	if err := job.AppendShardDone(1, []byte("acc-1")); err != nil {
		t.Fatal(err)
	}
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := s.OpenJob("j1")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if re.Trials() != 1000 || re.Spec().Campaign != "yield" || len(re.Plan()) != 3 {
		t.Fatalf("meta did not round-trip: %d trials, %q, %d shards", re.Trials(), re.Spec().Campaign, len(re.Plan()))
	}
	st := re.State()
	if st.Phase != PhaseRunning {
		t.Fatalf("phase %s after reopen", st.Phase)
	}
	if st.Shards[0].Through != 300 || !bytes.Equal(st.Shards[0].Acc, []byte("acc-0-300")) || st.Shards[0].Done {
		t.Fatalf("shard 0 state %+v", st.Shards[0])
	}
	if !st.Shards[1].Done || st.Shards[1].Through != 700 || !bytes.Equal(st.Shards[1].Acc, []byte("acc-1")) {
		t.Fatalf("shard 1 state %+v", st.Shards[1])
	}
	if st.Shards[2].Through != 700 || st.Shards[2].Done {
		t.Fatalf("shard 2 state %+v", st.Shards[2])
	}

	ids, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "j1" {
		t.Fatalf("Jobs() = %v", ids)
	}
}

func TestStoreResultRoundTrip(t *testing.T) {
	s := openTestStore(t)
	job, err := s.CreateJob("j1", testSpec(), 100, testPlan(t, 100, 1, 100))
	if err != nil {
		t.Fatal(err)
	}
	if err := job.AppendShardDone(0, []byte("acc")); err != nil {
		t.Fatal(err)
	}
	res := &testbench.Result{Spec: testSpec(), Text: "the rendering", Workers: 2}
	if err := job.AppendDone(res); err != nil {
		t.Fatal(err)
	}
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := s.OpenJob("j1")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if got := re.State().Phase; got != PhaseDone {
		t.Fatalf("phase %s after done", got)
	}
	back, err := re.Result()
	if err != nil {
		t.Fatal(err)
	}
	if back.Text != res.Text || back.Workers != res.Workers || back.Spec.Campaign != "yield" {
		t.Fatalf("result did not round-trip: %+v", back)
	}
}

func TestStoreCompaction(t *testing.T) {
	s := openTestStore(t, WithCompactEvery(2), WithSync(true))
	plan := testPlan(t, 1000, 2, 100)
	job, err := s.CreateJob("j1", testSpec(), 1000, plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, through := range []int{100, 200, 300, 400, 500} {
		if err := job.AppendCheckpoint(0, through, []byte{byte(through / 100)}); err != nil {
			t.Fatal(err)
		}
	}
	dir := filepath.Join(s.Dir(), "jobs", "j1")
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil {
		t.Fatalf("no snapshot after %d appends: %v", 5, err)
	}
	logBytes, err := os.ReadFile(filepath.Join(dir, "log.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	// 5 appends at compactEvery=2: compactions after 2 and 4, one record since.
	if n := bytes.Count(logBytes, []byte("\n")); n != 1 {
		t.Fatalf("log holds %d records after compaction, want 1", n)
	}
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := s.OpenJob("j1")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	st := re.State()
	if st.Shards[0].Through != 500 || !bytes.Equal(st.Shards[0].Acc, []byte{5}) {
		t.Fatalf("state after compacted reopen: %+v", st.Shards[0])
	}
}

func TestStoreIgnoresUnterminatedFinalLine(t *testing.T) {
	s := openTestStore(t)
	job, err := s.CreateJob("j1", testSpec(), 1000, testPlan(t, 1000, 2, 100))
	if err != nil {
		t.Fatal(err)
	}
	if err := job.AppendCheckpoint(0, 200, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill mid-append: a torn record with no newline.
	logPath := filepath.Join(s.Dir(), "jobs", "j1", "log.jsonl")
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"checkpoint","shard":0,"thr`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := s.OpenJob("j1")
	if err != nil {
		t.Fatalf("torn final line rejected: %v", err)
	}
	defer func() {
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if got := re.State().Shards[0].Through; got != 200 {
		t.Fatalf("through %d after torn tail, want the last complete checkpoint at 200", got)
	}
}

func TestStoreRejectsCorruptStores(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string)
		want    string
	}{
		{"garbage log line", func(t *testing.T, dir string) {
			t.Helper()
			appendFile(t, filepath.Join(dir, "log.jsonl"), "not json\n")
		}, "corrupt log"},
		{"unknown record kind", func(t *testing.T, dir string) {
			t.Helper()
			appendFile(t, filepath.Join(dir, "log.jsonl"), `{"kind":"promote"}`+"\n")
		}, "corrupt log"},
		{"checkpoint outside span", func(t *testing.T, dir string) {
			t.Helper()
			appendFile(t, filepath.Join(dir, "log.jsonl"), `{"kind":"checkpoint","shard":0,"through":999,"acc":"YQ=="}`+"\n")
		}, "corrupt log"},
		{"regressing checkpoint", func(t *testing.T, dir string) {
			t.Helper()
			appendFile(t, filepath.Join(dir, "log.jsonl"),
				`{"kind":"checkpoint","shard":0,"through":400,"acc":"YQ=="}`+"\n"+
					`{"kind":"checkpoint","shard":0,"through":200,"acc":"YQ=="}`+"\n")
		}, "backwards"},
		{"corrupt snapshot", func(t *testing.T, dir string) {
			t.Helper()
			writeFile(t, filepath.Join(dir, "snapshot.json"), "{")
		}, "corrupt snapshot"},
		{"snapshot breaking the plan", func(t *testing.T, dir string) {
			t.Helper()
			writeFile(t, filepath.Join(dir, "snapshot.json"), `{"shards":[],"phase":"running"}`)
		}, "corrupt snapshot"},
		{"corrupt meta", func(t *testing.T, dir string) {
			t.Helper()
			writeFile(t, filepath.Join(dir, "job.json"), "nope")
		}, "corrupt job.json"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := openTestStore(t)
			job, err := s.CreateJob("j1", testSpec(), 500, testPlan(t, 500, 1, 100))
			if err != nil {
				t.Fatal(err)
			}
			if err := job.Close(); err != nil {
				t.Fatal(err)
			}
			dir := filepath.Join(s.Dir(), "jobs", "j1")
			c.corrupt(t, dir)
			_, err = s.OpenJob("j1")
			if err == nil {
				t.Fatal("corrupt store opened cleanly")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestStoreRejectsBadCreates(t *testing.T) {
	s := openTestStore(t)
	plan := testPlan(t, 100, 1, 100)
	for _, id := range []string{"", ".", "..", "a/b", ".hidden"} {
		if _, err := s.CreateJob(id, testSpec(), 100, plan); err == nil {
			t.Fatalf("job id %q accepted", id)
		}
	}
	badPlans := [][]campaign.Span{
		nil,
		{{Lo: 0, Hi: 50}},                      // short of the trial count
		{{Lo: 10, Hi: 100}},                    // gap at the start
		{{Lo: 0, Hi: 60}, {Lo: 50, Hi: 100}},   // overlap
		{{Lo: 0, Hi: 100}, {Lo: 100, Hi: 100}}, // empty span
	}
	for i, p := range badPlans {
		if _, err := s.CreateJob("jx", testSpec(), 100, p); err == nil {
			t.Fatalf("bad plan %d accepted", i)
		}
	}
	if _, err := s.CreateJob("dup", testSpec(), 100, plan); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateJob("dup", testSpec(), 100, plan); err == nil {
		t.Fatal("duplicate job id accepted")
	}
}

func TestStoreRejectsBadAppends(t *testing.T) {
	s := openTestStore(t)
	job, err := s.CreateJob("j1", testSpec(), 1000, testPlan(t, 1000, 2, 100))
	if err != nil {
		t.Fatal(err)
	}
	if err := job.AppendCheckpoint(0, 300, []byte("a")); err != nil {
		t.Fatal(err)
	}
	bad := []error{
		job.AppendCheckpoint(5, 100, []byte("a")), // no such shard
		job.AppendCheckpoint(0, 200, []byte("a")), // regresses
		job.AppendCheckpoint(0, 600, []byte("a")), // beyond the span
		job.AppendCheckpoint(1, 700, nil),         // no accumulator
		job.AppendCheckpoint(0, 0, []byte("a")),   // no progress
		job.AppendShardDone(-1, []byte("a")),      // no such shard
		job.AppendShardDone(0, nil),               // no accumulator
	}
	for i, err := range bad {
		if err == nil {
			t.Fatalf("bad append %d accepted", i)
		}
	}
	// None of the rejected appends may have moved the state.
	st := job.State()
	if st.Shards[0].Through != 300 || st.Shards[1].Through != 500 || st.Shards[0].Done {
		t.Fatalf("rejected appends mutated state: %+v", st.Shards)
	}
	// A checkpoint after shard completion must be rejected too.
	if err := job.AppendShardDone(0, []byte("final")); err != nil {
		t.Fatal(err)
	}
	if err := job.AppendCheckpoint(0, 500, []byte("late")); err == nil {
		t.Fatal("checkpoint after shard_done accepted")
	}
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}
	if err := job.AppendCheckpoint(1, 600, []byte("a")); err == nil {
		t.Fatal("append after Close accepted")
	}
}

func appendFile(t *testing.T, path, text string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(text); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func writeFile(t *testing.T, path, text string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
}
