package fabric

import (
	"testing"

	"repro/internal/campaign"
)

// FuzzJobLogReplay feeds arbitrary bytes through the job-log replay
// path. The invariants: replay never panics, and whenever it accepts a
// log the resulting state still satisfies every plan constraint the
// store would enforce on a reopen — spans matching the plan, progress
// inside its span, monotone, never past a completed shard. A log the
// appender could not have produced must be rejected, not folded into
// fabricated resume state.
func FuzzJobLogReplay(f *testing.F) {
	plan := []campaign.Span{{Lo: 0, Hi: 400}, {Lo: 400, Hi: 700}, {Lo: 700, Hi: 1000}}
	f.Add([]byte(`{"kind":"checkpoint","shard":0,"through":200,"acc":"YQ=="}` + "\n"))
	f.Add([]byte(`{"kind":"checkpoint","shard":0,"through":200,"acc":"YQ=="}` + "\n" +
		`{"kind":"shard_done","shard":0,"acc":"Yg=="}` + "\n" +
		`{"kind":"shard_done","shard":1,"acc":"Yw=="}` + "\n" +
		`{"kind":"shard_done","shard":2,"acc":"ZA=="}` + "\n" +
		`{"kind":"done"}` + "\n"))
	f.Add([]byte(`{"kind":"failed","msg":"trial 512: solver diverged"}` + "\n"))
	f.Add([]byte(`{"kind":"cancelled"}` + "\n"))
	f.Add([]byte(`{"kind":"checkpoint","shard":0,"through":200,"acc":"YQ=="}` + "\n" +
		`{"kind":"checkpoint","shard":0,"thr`)) // torn tail: must be ignored
	f.Add([]byte(`{"kind":"promote"}` + "\n"))
	f.Add([]byte("not json\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		st := freshState(plan)
		if err := replayLog(&st, data); err != nil {
			return
		}
		if err := checkStateAgainstPlan(&st, plan); err != nil {
			t.Fatalf("replay accepted a log that breaks the plan contract: %v", err)
		}
	})
}
