package fabric

import (
	"context"
	"errors"
	"time"

	"repro/internal/testbench"
)

// CompileFunc resolves a campaign spec into its sharded executable
// form. The default is testbench.Sharder; tests inject synthetic
// campaigns through it.
type CompileFunc func(ctx context.Context, spec testbench.Spec) (*testbench.ShardRun, error)

// defaultCompile adapts testbench.Sharder to CompileFunc.
func defaultCompile(ctx context.Context, spec testbench.Spec) (*testbench.ShardRun, error) {
	return testbench.Sharder(ctx, spec)
}

// Config assembles a Coordinator.
type Config struct {
	// Store persists jobs; required.
	Store *Store
	// Compile resolves specs to their sharded form; nil selects
	// testbench.Sharder.
	Compile CompileFunc
	// LeaseTTL is how long a leased shard stays assigned without a
	// heartbeat before it is requeued; <= 0 selects DefaultLeaseTTL.
	LeaseTTL time.Duration
	// Now is the clock, injectable so lease-expiry tests need no real
	// waiting; nil selects time.Now.
	Now func() time.Time
	// Metrics, when non-nil, instruments the coordinator (lease traffic,
	// checkpoint volume, merge latency, heartbeat staleness); nil runs
	// uninstrumented. See NewMetrics.
	Metrics *Metrics
}

// DefaultLeaseTTL is the lease lifetime when Config.LeaseTTL is unset:
// long enough that a loaded worker heartbeating at TTL/3 never loses a
// live shard, short enough that a crashed worker's span requeues
// promptly.
const DefaultLeaseTTL = 30 * time.Second

// Errors the coordinator surfaces to workers and callers. A worker
// treats ErrLeaseRevoked and ErrUnknownLease as a signal to stop its
// span immediately — that is the cancellation path coordinator → lease
// → worker ctx.
var (
	ErrUnknownJob   = errors.New("fabric: unknown job")
	ErrUnknownLease = errors.New("fabric: unknown or superseded lease")
	ErrLeaseRevoked = errors.New("fabric: lease revoked")
	ErrJobDone      = errors.New("fabric: job already terminal")
)
