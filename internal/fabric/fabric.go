// Package fabric is the distributed campaign fabric: durable jobs,
// checkpoint/resume, and sharded execution across mcserved instances.
//
// It layers three pieces on the streaming campaign engine:
//
//   - a durable job Store (store.go): every job lives in its own
//     directory as an immutable job.json, an append-only JSON log of
//     checkpoints and shard completions, and a compacted snapshot, so a
//     killed process reopens the store and resumes from the last
//     checkpoint instead of trial 0. Every write error surfaces — a
//     checkpoint that cannot be persisted fails the run.
//   - a Coordinator (coordinator.go): splits a campaign spec into
//     contiguous chunk-aligned trial spans, leases them to workers with
//     a TTL, requeues expired leases from their last reported
//     checkpoint, and merges per-shard accumulator blobs in shard-index
//     order once all spans complete.
//   - a Worker (worker.go): pulls leases from a Backend — the
//     Coordinator directly in-process, or an HTTP client against a
//     remote coordinator — runs each span through the campaign's
//     sharded form, heartbeats while it works, and reports the span's
//     accumulator blob.
//
// Bit-identity is the design invariant: trials derive their randomness
// as pure functions of (seed, trial index), checkpoints land only on
// chunk boundaries, and shard accumulators merge with the exactly
// associative merges the shardable campaigns use — so a resumed,
// sharded, or twice-interrupted run finalizes to the same bits as an
// uninterrupted single-node one.
package fabric

import (
	"context"
	"errors"
	"time"

	"repro/internal/testbench"
)

// CompileFunc resolves a campaign spec into its sharded executable
// form. The default is testbench.Sharder; tests inject synthetic
// campaigns through it.
type CompileFunc func(ctx context.Context, spec testbench.Spec) (*testbench.ShardRun, error)

// defaultCompile adapts testbench.Sharder to CompileFunc.
func defaultCompile(ctx context.Context, spec testbench.Spec) (*testbench.ShardRun, error) {
	return testbench.Sharder(ctx, spec)
}

// Config assembles a Coordinator.
type Config struct {
	// Store persists jobs; required.
	Store *Store
	// Compile resolves specs to their sharded form; nil selects
	// testbench.Sharder.
	Compile CompileFunc
	// LeaseTTL is how long a leased shard stays assigned without a
	// heartbeat before it is requeued; <= 0 selects DefaultLeaseTTL.
	LeaseTTL time.Duration
	// Now is the clock, injectable so lease-expiry tests need no real
	// waiting; nil selects time.Now.
	Now func() time.Time
}

// DefaultLeaseTTL is the lease lifetime when Config.LeaseTTL is unset:
// long enough that a loaded worker heartbeating at TTL/3 never loses a
// live shard, short enough that a crashed worker's span requeues
// promptly.
const DefaultLeaseTTL = 30 * time.Second

// Errors the coordinator surfaces to workers and callers. A worker
// treats ErrLeaseRevoked and ErrUnknownLease as a signal to stop its
// span immediately — that is the cancellation path coordinator → lease
// → worker ctx.
var (
	ErrUnknownJob   = errors.New("fabric: unknown job")
	ErrUnknownLease = errors.New("fabric: unknown or superseded lease")
	ErrLeaseRevoked = errors.New("fabric: lease revoked")
	ErrJobDone      = errors.New("fabric: job already terminal")
)
