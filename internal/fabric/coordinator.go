package fabric

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/testbench"
)

// Lease is one shard assignment: the job and span to run, the restored
// progress to resume from, and the token that authenticates heartbeats
// and the final report. Tokens are single-holder: requeuing a shard
// issues a new token and every message carrying the old one fails with
// ErrUnknownLease, so a worker that lost its lease (TTL expiry, job
// cancel) learns it on its next heartbeat and stops.
type Lease struct {
	Job     string         `json:"job"`
	Shard   int            `json:"shard"`
	Span    campaign.Span  `json:"span"`
	Through int            `json:"through"`
	Acc     []byte         `json:"acc,omitempty"`
	Spec    testbench.Spec `json:"spec"`
	Token   string         `json:"token"`
	// TTL is how long the lease stays valid without a heartbeat; the
	// worker heartbeats at a fraction of it.
	TTL time.Duration `json:"ttl_ns"`
}

// Backend is the coordinator surface a Worker drives: lease a shard,
// heartbeat it (optionally carrying a checkpoint), report it complete.
// The Coordinator implements it directly for in-process workers; the
// serve package's HTTP client implements it for remote ones.
type Backend interface {
	// Lease returns the next pending shard, or ok == false when nothing
	// is pending right now (the worker polls again later).
	Lease(ctx context.Context, workerID string) (lease *Lease, ok bool, err error)
	// Heartbeat extends the lease. A non-nil acc persists a checkpoint
	// covering [lease.Span.Lo, through) along the way. ErrLeaseRevoked
	// and ErrUnknownLease order the worker to abandon the span.
	Heartbeat(ctx context.Context, lease *Lease, through int, acc []byte) error
	// Report delivers the span's final accumulator blob.
	Report(ctx context.Context, lease *Lease, acc []byte) error
	// Fail reports that the span's trials errored; the coordinator fails
	// the whole job (a trial error is deterministic — retrying the span
	// would fail the same way).
	Fail(ctx context.Context, lease *Lease, msg string) error
}

// jobRun is the coordinator's in-memory view of one running job.
type jobRun struct {
	job     *Job
	sharded *testbench.ShardRun
	pending []int             // shard indices awaiting a lease, ascending
	leases  map[string]*lease // token -> active lease
	start   time.Time
	done    chan struct{}     // closed on any terminal phase
	res     *testbench.Result // finalized in this process, for Wait
	err     error             // terminal error (failed phase), for Wait
}

// lease is the coordinator-side record of an issued Lease.
type lease struct {
	shard    int
	deadline time.Time
	lastBeat time.Time // grant or latest heartbeat; feeds the staleness gauge
}

// Coordinator owns the fabric's control plane: it plans jobs, issues
// and expires leases, persists every checkpoint and completion to the
// durable store, merges finished shards in shard-index order, and
// finalizes the result. All methods are safe for concurrent use.
type Coordinator struct {
	store    *Store
	compile  CompileFunc
	leaseTTL time.Duration
	now      func() time.Time
	metrics  *Metrics // nil-safe; see Metrics

	mu   sync.Mutex
	jobs map[string]*jobRun
	seq  int // lease token counter
}

// NewCoordinator assembles a coordinator over a durable store.
func NewCoordinator(cfg Config) *Coordinator {
	c := &Coordinator{
		store:    cfg.Store,
		compile:  cfg.Compile,
		leaseTTL: cfg.LeaseTTL,
		now:      cfg.Now,
		metrics:  cfg.Metrics,
		jobs:     map[string]*jobRun{},
	}
	if c.compile == nil {
		c.compile = defaultCompile
	}
	if c.leaseTTL <= 0 {
		c.leaseTTL = DefaultLeaseTTL
	}
	if c.now == nil {
		c.now = time.Now
	}
	c.metrics.observeCoordinator(c)
	return c
}

// Submit plans a new job over the spec's sharded form, persists it, and
// queues its shards for leasing. shards bounds the partition width (the
// planner may use fewer; see PlanShards).
func (c *Coordinator) Submit(ctx context.Context, id string, spec testbench.Spec, shards int) error {
	sharded, err := c.compile(ctx, spec)
	if err != nil {
		return err
	}
	plan, err := PlanShards(sharded.Trials, shards, spec.Chunk)
	if err != nil {
		return err
	}
	job, err := c.store.CreateJob(id, sharded.Spec, sharded.Trials, plan)
	if err != nil {
		return err
	}
	c.adopt(job, sharded)
	return nil
}

// Resume reopens a stored job after a restart and requeues every
// incomplete shard from its last checkpoint. Terminal jobs are adopted
// without queueing (their results stay readable). Already-open jobs are
// left untouched.
func (c *Coordinator) Resume(ctx context.Context, id string) error {
	c.mu.Lock()
	_, open := c.jobs[id]
	c.mu.Unlock()
	if open {
		return nil
	}
	job, err := c.store.OpenJob(id)
	if err != nil {
		return err
	}
	sharded, err := c.compile(ctx, job.Spec())
	if err != nil {
		return fmt.Errorf("fabric: job %s: recompile: %w", id, err)
	}
	if sharded.Trials != job.Trials() {
		return fmt.Errorf("fabric: job %s: spec resolves to %d trials, store says %d", id, sharded.Trials, job.Trials())
	}
	c.adopt(job, sharded)
	return nil
}

// RecoverAll resumes every job in the store — the one call a restarted
// coordinator process makes.
func (c *Coordinator) RecoverAll(ctx context.Context) error {
	ids, err := c.store.Jobs()
	if err != nil {
		return err
	}
	for _, id := range ids {
		if err := c.Resume(ctx, id); err != nil {
			return err
		}
	}
	return nil
}

// adopt installs an opened job into the control plane, queueing its
// incomplete shards.
func (c *Coordinator) adopt(job *Job, sharded *testbench.ShardRun) {
	r := &jobRun{
		job:     job,
		sharded: sharded,
		leases:  map[string]*lease{},
		start:   c.now(),
		done:    make(chan struct{}),
	}
	st := job.State()
	if st.Phase == PhaseRunning {
		for i, sh := range st.Shards {
			if !sh.Done {
				r.pending = append(r.pending, i)
			}
		}
	} else {
		if st.Phase == PhaseFailed {
			r.err = fmt.Errorf("fabric: job %s failed: %s", job.ID(), st.Failure)
		}
		close(r.done)
	}
	c.mu.Lock()
	c.jobs[job.ID()] = r
	c.mu.Unlock()
	// A recovered job whose shards had all completed may still lack its
	// merged result (killed between last report and finalize).
	if st.Phase == PhaseRunning && len(r.pending) == 0 {
		c.finalize(r)
	}
}

// run looks up a job's control record.
func (c *Coordinator) run(id string) (*jobRun, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return r, nil
}

// Lease implements Backend: hand out the next pending shard across all
// running jobs, lowest job id and shard index first. Expired leases are
// requeued lazily here — their shards come back resumable from the last
// persisted checkpoint.
func (c *Coordinator) Lease(ctx context.Context, workerID string) (*Lease, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	ids := make([]string, 0, len(c.jobs))
	for id := range c.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		r := c.jobs[id]
		c.expireLocked(r, now)
		if len(r.pending) == 0 {
			continue
		}
		shard := r.pending[0]
		r.pending = r.pending[1:]
		c.seq++
		token := fmt.Sprintf("%s.%d.%d", workerID, shard, c.seq)
		r.leases[token] = &lease{shard: shard, deadline: now.Add(c.leaseTTL), lastBeat: now}
		c.metrics.leaseGranted()
		st := r.job.State()
		sh := st.Shards[shard]
		return &Lease{
			Job:     id,
			Shard:   shard,
			Span:    sh.Span,
			Through: sh.Through,
			Acc:     sh.Acc,
			Spec:    r.job.Spec(),
			Token:   token,
			TTL:     c.leaseTTL,
		}, true, nil
	}
	return nil, false, nil
}

// expireLocked requeues every lease of r whose deadline has passed.
// Called with c.mu held. Expired tokens are processed in sorted order
// so the requeue sequence is deterministic.
func (c *Coordinator) expireLocked(r *jobRun, now time.Time) {
	var dead []string
	for token, l := range r.leases {
		if now.After(l.deadline) {
			dead = append(dead, token)
		}
	}
	sort.Strings(dead)
	for _, token := range dead {
		r.pending = insertSorted(r.pending, r.leases[token].shard)
		delete(r.leases, token)
		c.metrics.leaseExpired()
	}
}

// checkLease resolves a token to its active lease record.
func (c *Coordinator) checkLease(r *jobRun, token string) (*lease, error) {
	st := r.job.State()
	if st.Phase != PhaseRunning {
		return nil, fmt.Errorf("%w: job %s is %s", ErrLeaseRevoked, r.job.ID(), st.Phase)
	}
	l, ok := r.leases[token]
	if !ok {
		return nil, ErrUnknownLease
	}
	return l, nil
}

// Heartbeat implements Backend: extend the lease and, when the worker
// piggybacks a checkpoint, persist it so an expiry later resumes from
// here rather than the span start.
func (c *Coordinator) Heartbeat(ctx context.Context, ls *Lease, through int, acc []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	r, err := c.run(ls.Job)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.expireLocked(r, now)
	l, err := c.checkLease(r, ls.Token)
	if err != nil {
		return err
	}
	if len(acc) > 0 {
		if err := r.job.AppendCheckpoint(l.shard, through, acc); err != nil {
			return err
		}
		c.metrics.checkpoint(len(acc))
	}
	l.deadline = now.Add(c.leaseTTL)
	l.lastBeat = now
	return nil
}

// Report implements Backend: record the span's final accumulator,
// release the lease, and — when it was the last — merge and finalize.
func (c *Coordinator) Report(ctx context.Context, ls *Lease, acc []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	r, err := c.run(ls.Job)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.expireLocked(r, c.now())
	l, err := c.checkLease(r, ls.Token)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	if err := r.job.AppendShardDone(l.shard, acc); err != nil {
		c.mu.Unlock()
		return err
	}
	c.metrics.shardDone()
	delete(r.leases, ls.Token)
	last := len(r.pending) == 0 && len(r.leases) == 0
	c.mu.Unlock()
	if last {
		c.finalize(r)
	}
	return nil
}

// Fail implements Backend: a shard's trials errored, which is
// deterministic, so the job fails as a whole and every other lease is
// revoked.
func (c *Coordinator) Fail(ctx context.Context, ls *Lease, msg string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	r, err := c.run(ls.Job)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.checkLease(r, ls.Token); err != nil {
		return err
	}
	return c.terminateLocked(r, PhaseFailed, msg)
}

// Cancel revokes every lease of the job and moves it to its cancelled
// phase: in-flight workers learn on their next heartbeat and cancel
// their span contexts — the coordinator → lease → worker ctx flow.
func (c *Coordinator) Cancel(id string) error {
	r, err := c.run(id)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.job.State().Phase != PhaseRunning {
		return fmt.Errorf("%w: %s", ErrJobDone, id)
	}
	return c.terminateLocked(r, PhaseCancelled, "")
}

// terminateLocked persists a terminal phase, drops all leases and
// pending work, and wakes waiters. Called with c.mu held.
func (c *Coordinator) terminateLocked(r *jobRun, phase Phase, msg string) error {
	var err error
	if phase == PhaseFailed {
		err = r.job.AppendFailed(msg)
	} else {
		err = r.job.AppendCancelled()
	}
	if err != nil {
		return err
	}
	r.leases = map[string]*lease{}
	r.pending = nil
	if phase == PhaseFailed {
		r.err = fmt.Errorf("fabric: job %s failed: %s", r.job.ID(), msg)
	}
	close(r.done)
	return nil
}

// finalize merges the shard blobs in shard-index order, finalizes the
// result, and persists it. Merge order is the partition order, so the
// distributed accumulator equals the single-node chunk chain bit for
// bit.
func (c *Coordinator) finalize(r *jobRun) {
	st := r.job.State()
	var merged []byte
	var err error
	mergeStart := c.now()
	for i, sh := range st.Shards {
		if i == 0 {
			merged = sh.Acc
			continue
		}
		if merged, err = r.sharded.Merge(merged, sh.Acc); err != nil {
			break
		}
	}
	c.metrics.mergeObserved(c.now().Sub(mergeStart).Seconds())
	var res *testbench.Result
	if err == nil {
		if res, err = r.sharded.Finalize(merged); err == nil {
			res.Elapsed = c.now().Sub(r.start)
			err = r.job.AppendDone(res)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		// Failing to merge or persist the result is terminal; surface it
		// through Wait and the durable phase rather than dropping it.
		if ferr := c.terminateLocked(r, PhaseFailed, err.Error()); ferr != nil {
			r.err = fmt.Errorf("%w (and persisting the failure also failed: %v)", err, ferr)
			close(r.done)
		}
		return
	}
	r.res = res
	close(r.done)
}

// Status returns the job's durable state.
func (c *Coordinator) Status(id string) (JobState, error) {
	r, err := c.run(id)
	if err != nil {
		return JobState{}, err
	}
	return r.job.State(), nil
}

// Wait blocks until the job reaches a terminal phase and returns its
// finalized result (or the failure/cancellation).
func (c *Coordinator) Wait(ctx context.Context, id string) (*testbench.Result, error) {
	r, err := c.run(id)
	if err != nil {
		return nil, err
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-r.done:
	}
	if r.err != nil {
		return nil, r.err
	}
	st := r.job.State()
	switch st.Phase {
	case PhaseDone:
		// The in-process finalize kept the Result; jobs adopted already
		// done (a restart after completion) decode it from the store.
		if r.res != nil {
			return r.res, nil
		}
		return r.job.Result()
	case PhaseCancelled:
		return nil, fmt.Errorf("fabric: job %s cancelled", id)
	case PhaseFailed:
		return nil, fmt.Errorf("fabric: job %s failed: %s", id, st.Failure)
	}
	return nil, fmt.Errorf("fabric: job %s woke in phase %s", id, st.Phase)
}

// Jobs lists the ids the coordinator currently has open, sorted.
func (c *Coordinator) Jobs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.jobs))
	for id := range c.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Close closes every open job handle, in job-id order so the surfaced
// first error is deterministic.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.jobs))
	for id := range c.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var first error
	for _, id := range ids {
		if err := c.jobs[id].job.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// insertSorted inserts v into ascending-sorted s, keeping it sorted so
// requeued shards lease back out in span order.
func insertSorted(s []int, v int) []int {
	at := len(s)
	for i, x := range s {
		if v < x {
			at = i
			break
		}
	}
	s = append(s, 0)
	copy(s[at+1:], s[at:])
	s[at] = v
	return s
}
