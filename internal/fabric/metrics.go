package fabric

import (
	"repro/internal/metrics"
)

// Metrics is the fabric coordinator's instrument set. Create one with
// NewMetrics over the process registry (in mcserved, the serve
// registry, so one /metrics scrape covers both layers) and hand it to
// Config.Metrics; a nil *Metrics disables instrumentation — every
// method is nil-receiver safe, so the coordinator never branches on it.
//
// One Metrics instruments one coordinator: registering the same
// instance twice would double-register the heartbeat-age gauge.
type Metrics struct {
	reg *metrics.Registry

	leasesGranted   *metrics.Counter
	leasesExpired   *metrics.Counter
	leasesRequeued  *metrics.Counter
	checkpointBytes *metrics.Counter
	shardsCompleted *metrics.Counter
	mergeSeconds    *metrics.Histogram
}

// NewMetrics registers the fabric families on reg.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		reg: reg,
		leasesGranted: reg.Counter("mcfabric_leases_granted_total",
			"Shard leases handed to workers.", ""),
		leasesExpired: reg.Counter("mcfabric_leases_expired_total",
			"Leases invalidated by TTL expiry (missed heartbeats).", ""),
		leasesRequeued: reg.Counter("mcfabric_leases_requeued_total",
			"Shards put back on the pending queue after their lease expired.", ""),
		checkpointBytes: reg.Counter("mcfabric_checkpoint_bytes_total",
			"Accumulator bytes persisted by heartbeat checkpoints.", "bytes"),
		shardsCompleted: reg.Counter("mcfabric_shards_completed_total",
			"Shards reported complete with their final accumulator.", ""),
		mergeSeconds: reg.Histogram("mcfabric_shard_merge_seconds",
			"Latency of merging all shard accumulators at finalize.", "seconds", nil),
	}
}

// observeCoordinator registers the scrape-time gauges that read live
// coordinator state: the age of the stalest active lease heartbeat and
// the number of active leases. Called once from NewCoordinator.
func (m *Metrics) observeCoordinator(c *Coordinator) {
	if m == nil {
		return
	}
	m.reg.GaugeFunc("mcfabric_worker_heartbeat_age_seconds",
		"Age of the least recently renewed active lease (0 when none).", "seconds",
		c.oldestHeartbeatAge)
	m.reg.GaugeFunc("mcfabric_leases_active",
		"Leases currently held by workers.", "",
		c.activeLeases)
}

func (m *Metrics) leaseGranted() {
	if m != nil {
		m.leasesGranted.Inc()
	}
}

func (m *Metrics) leaseExpired() {
	if m != nil {
		m.leasesExpired.Inc()
		m.leasesRequeued.Inc()
	}
}

func (m *Metrics) checkpoint(bytes int) {
	if m != nil {
		m.checkpointBytes.Add(uint64(bytes))
	}
}

func (m *Metrics) shardDone() {
	if m != nil {
		m.shardsCompleted.Inc()
	}
}

func (m *Metrics) mergeObserved(seconds float64) {
	if m != nil {
		m.mergeSeconds.Observe(seconds)
	}
}

// oldestHeartbeatAge scans every active lease for the one longest since
// its last heartbeat — the staleness a dashboard alerts on before the
// TTL requeues the shard.
func (c *Coordinator) oldestHeartbeatAge() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	var oldest float64
	//mclint:maporder commutative max over jobs; the result is order-independent
	for _, r := range c.jobs {
		//mclint:maporder commutative max over leases; the result is order-independent
		for _, l := range r.leases {
			if age := now.Sub(l.lastBeat).Seconds(); age > oldest {
				oldest = age
			}
		}
	}
	return oldest
}

// activeLeases counts leases currently held across all jobs.
func (c *Coordinator) activeLeases() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int
	//mclint:maporder commutative integer sum; the total is order-independent
	for _, r := range c.jobs {
		n += len(r.leases)
	}
	return float64(n)
}
