package fabric

import (
	"fmt"

	"repro/internal/campaign"
)

// PlanShards partitions [0, trials) into at most shards contiguous
// spans with every boundary on a chunk multiple (chunk <= 0 selects
// campaign.DefaultChunk). Chunk alignment is what makes the partition
// invisible to the reduction: each shard folds exactly the chunks the
// single-node run would, so shard accumulators merge bit-identically to
// the single-node chunk chain. Chunks are dealt out as evenly as
// possible, earlier shards taking the remainder; fewer chunks than
// shards yields fewer shards.
func PlanShards(trials, shards, chunk int) ([]campaign.Span, error) {
	if trials < 1 {
		return nil, fmt.Errorf("fabric: plan over %d trials", trials)
	}
	if shards < 1 {
		return nil, fmt.Errorf("fabric: plan with %d shards", shards)
	}
	if chunk <= 0 {
		chunk = campaign.DefaultChunk
	}
	nChunks := (trials + chunk - 1) / chunk
	if shards > nChunks {
		shards = nChunks
	}
	per, extra := nChunks/shards, nChunks%shards
	plan := make([]campaign.Span, 0, shards)
	at := 0
	for s := 0; s < shards; s++ {
		n := per
		if s < extra {
			n++
		}
		hi := min(at+n*chunk, trials)
		plan = append(plan, campaign.Span{Lo: at, Hi: hi})
		at = hi
	}
	return plan, nil
}
