// Package fabric is the distributed campaign fabric: durable jobs,
// checkpoint/resume, and sharded execution across mcserved instances.
//
// It layers three pieces on the streaming campaign engine:
//
//   - a durable job Store (store.go): every job lives in its own
//     directory as an immutable job.json, an append-only JSON log of
//     checkpoints and shard completions, and a compacted snapshot, so a
//     killed process reopens the store and resumes from the last
//     checkpoint instead of trial 0. Every write error surfaces — a
//     checkpoint that cannot be persisted fails the run.
//   - a Coordinator (coordinator.go): splits a campaign spec into
//     contiguous chunk-aligned trial spans, leases them to workers with
//     a TTL, requeues expired leases from their last reported
//     checkpoint, and merges per-shard accumulator blobs in shard-index
//     order once all spans complete.
//   - a Worker (worker.go): pulls leases from a Backend — the
//     Coordinator directly in-process, or an HTTP client against a
//     remote coordinator — runs each span through the campaign's
//     sharded form, heartbeats while it works, and reports the span's
//     accumulator blob.
//
// # Bit-identity
//
// Bit-identity is the design invariant: trials derive their randomness
// as pure functions of (seed, trial index), checkpoints land only on
// chunk boundaries, and shard accumulators merge with the exactly
// associative merges the shardable campaigns use — so a resumed,
// sharded, or twice-interrupted run finalizes to the same bits as an
// uninterrupted single-node one.
//
// # Lease lifecycle
//
// A shard is exactly one of: pending, leased, or done. Lease tokens are
// single-holder — requeuing a shard (TTL expiry, job cancel) issues a
// new token, and every message carrying the old one fails with
// ErrUnknownLease, which a worker treats as an order to abandon the
// span. Expiry is lazy: stale leases are requeued at the next lease,
// heartbeat or report that inspects the job, always from the shard's
// last persisted checkpoint, never from trial 0.
//
// # Observability
//
// Config.Metrics attaches an instrument set (see Metrics and
// docs/METRICS.md): lease grant/expiry counters, checkpoint byte
// volume, shard completions, finalize merge latency, and scrape-time
// gauges for active leases and heartbeat staleness. All timing uses the
// coordinator's injectable clock, and instruments only observe the
// control plane — an instrumented job finalizes to the same bits as an
// uninstrumented one.
package fabric
