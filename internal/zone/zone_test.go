package zone

import (
	"strings"
	"testing"

	"repro/internal/monitor"
)

func buildMap(t *testing.T, n int) *Map {
	t.Helper()
	m, err := Build(monitor.NewAnalyticTableI(), 0, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildValidation(t *testing.T) {
	b := monitor.NewAnalyticTableI()
	if _, err := Build(b, 0, 1, 1); err == nil {
		t.Fatal("1x1 grid accepted")
	}
	if _, err := Build(b, 1, 0, 10); err == nil {
		t.Fatal("empty range accepted")
	}
}

func TestZoneCountMatchesPaperScale(t *testing.T) {
	m := buildMap(t, 141)
	// Fig. 6 labels 16 zones; six curves can cut the square into a few
	// more cells depending on exact geometry. Require the same order of
	// magnitude partition, not fewer than 10 nor an explosion.
	if n := m.NumZones(); n < 10 || n > 30 {
		t.Fatalf("zones = %d, want 10..30 (paper shows 16)", n)
	}
}

func TestOriginZoneAllZeros(t *testing.T) {
	m := buildMap(t, 81)
	if c := m.Lookup(0.02, 0.0); c != 0 {
		t.Fatalf("origin zone code = %d, want 0", c)
	}
	// The all-zeros zone must exist in the inventory.
	found := false
	for _, z := range m.Zones() {
		if z.Code == 0 {
			found = true
			if z.Cells == 0 {
				t.Fatal("zone 0 empty")
			}
		}
	}
	if !found {
		t.Fatal("zone 0 missing from inventory")
	}
}

func TestZonesSortedAndCellsSumToGrid(t *testing.T) {
	m := buildMap(t, 61)
	zones := m.Zones()
	bank := monitor.NewAnalyticTableI()
	total := 0
	prev := -1
	for _, z := range zones {
		d := bank.Decimal(z.Code)
		if d < prev {
			t.Fatal("zones not sorted by decimal code")
		}
		prev = d
		total += z.Cells
		if z.MinX > z.MaxX || z.MinY > z.MaxY {
			t.Fatalf("invalid bbox in %+v", z)
		}
		if z.RepX < z.MinX-1e-9 || z.RepX > z.MaxX+1e-9 {
			t.Fatalf("representative outside bbox: %+v", z)
		}
	}
	if total != 61*61 {
		t.Fatalf("cells sum to %d, want %d", total, 61*61)
	}
}

func TestGrayPropertyHolds(t *testing.T) {
	m := buildMap(t, 141)
	viol := m.GrayViolations()
	pairs := m.AdjacentPairs()
	if pairs < 10 {
		t.Fatalf("only %d adjacent pairs; grid too coarse", pairs)
	}
	// Genuine violations only occur where two boundaries intersect
	// within one grid cell; they must be a small minority.
	if len(viol) > pairs/4 {
		t.Fatalf("%d/%d adjacent pairs violate the Gray property", len(viol), pairs)
	}
	for _, v := range viol {
		if v.Dist <= 1 {
			t.Fatalf("non-violation reported: %+v", v)
		}
	}
}

func TestGrayViolationsShrinkWithResolution(t *testing.T) {
	coarse := buildMap(t, 41)
	fine := buildMap(t, 161)
	// With a finer grid, fewer cell crossings straddle two boundaries,
	// so the violating *fraction* must not grow.
	cf := float64(len(coarse.GrayViolations())) / float64(coarse.AdjacentPairs()+1)
	ff := float64(len(fine.GrayViolations())) / float64(fine.AdjacentPairs()+1)
	if ff > cf+0.05 {
		t.Fatalf("violation fraction grew with resolution: %v -> %v", cf, ff)
	}
}

func TestTableRendering(t *testing.T) {
	m := buildMap(t, 41)
	tab := m.Table()
	if !strings.Contains(tab, "000000 (0)") {
		t.Fatalf("table missing origin zone:\n%s", tab)
	}
	if len(strings.Split(strings.TrimSpace(tab), "\n")) != m.NumZones()+1 {
		t.Fatal("table row count mismatch")
	}
}

func TestLookupConsistentWithGridMajority(t *testing.T) {
	m := buildMap(t, 61)
	for _, z := range m.Zones() {
		// The representative point must map back to its own zone for
		// convex-ish zones; allow occasional mismatch for crescent zones
		// but the origin zone must always round-trip.
		if z.Code == 0 {
			if got := m.Lookup(z.RepX, z.RepY); got != 0 {
				t.Fatalf("origin zone representative misclassified as %d", got)
			}
		}
	}
}

func TestASCIIArt(t *testing.T) {
	m := buildMap(t, 41)
	art := m.ASCIIArt(40, 20)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 20 {
		t.Fatalf("rows = %d, want 20", len(lines))
	}
	for _, l := range lines {
		if len(l) != 40 {
			t.Fatalf("row width = %d, want 40", len(l))
		}
		if strings.Contains(l, "?") {
			t.Fatal("unmapped zone glyph in art")
		}
	}
	// Just inside the lower-left corner is the origin zone (glyph '0' by
	// decimal order); the exact corner itself sits on curve 6's y = x
	// boundary and is sign-degenerate.
	if lines[19][2] != '0' {
		t.Fatalf("origin-region glyph = %q, want '0'", lines[19][2])
	}
	// Degenerate sizes fall back to defaults.
	if len(m.ASCIIArt(0, 0)) == 0 {
		t.Fatal("fallback sizes failed")
	}
}

func TestComponentsCountsRegions(t *testing.T) {
	m := buildMap(t, 101)
	comps := m.Components()
	// Every discovered zone has at least one region and the total
	// number of codes matches the inventory.
	if len(comps) != m.NumZones() {
		t.Fatalf("component codes = %d, zones = %d", len(comps), m.NumZones())
	}
	for code, n := range comps {
		if n < 1 {
			t.Fatalf("code %d has %d regions", code, n)
		}
	}
	// The Table I partition should be overwhelmingly single-region.
	multi := m.MultiRegionCodes()
	if len(multi) > m.NumZones()/3 {
		t.Fatalf("%d of %d codes are multi-region: %v", len(multi), m.NumZones(), multi)
	}
	// The origin zone is a single region.
	if comps[0] != 1 {
		t.Fatalf("origin zone split into %d regions", comps[0])
	}
}
