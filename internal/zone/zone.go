// Package zone enumerates and analyzes the plane partition induced by a
// monitor bank: which zone codes exist inside the unit square, where they
// sit, and whether the codification satisfies the paper's neighbouring
// property ("According to the zone codification criterion, neighbouring
// zones only differ in one bit"), which is what makes the Hamming
// distance a meaningful discrepancy measure.
package zone

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/monitor"
)

// Info describes one zone discovered in the partition.
type Info struct {
	Code  monitor.Code
	Cells int     // number of grid cells carrying the code
	MinX  float64 // bounding box
	MaxX  float64
	MinY  float64
	MaxY  float64
	RepX  float64 // centroid of the zone's cells (a representative point)
	RepY  float64
}

// Map is the grid-sampled partition of [lo,hi]² by a monitor bank.
type Map struct {
	bank   *monitor.Bank
	lo, hi float64
	n      int
	grid   []monitor.Code // n×n row-major
	zones  map[monitor.Code]*Info
	adj    map[monitor.Code]map[monitor.Code]bool
}

// Build samples the bank on an n×n grid over [lo,hi]² and constructs the
// zone map with 4-neighbour adjacency.
func Build(b *monitor.Bank, lo, hi float64, n int) (*Map, error) {
	if n < 2 {
		return nil, fmt.Errorf("zone: grid must be at least 2x2")
	}
	if hi <= lo {
		return nil, fmt.Errorf("zone: empty range [%g,%g]", lo, hi)
	}
	m := &Map{
		bank:  b,
		lo:    lo,
		hi:    hi,
		n:     n,
		grid:  make([]monitor.Code, n*n),
		zones: make(map[monitor.Code]*Info),
		adj:   make(map[monitor.Code]map[monitor.Code]bool),
	}
	step := (hi - lo) / float64(n-1)
	for iy := 0; iy < n; iy++ {
		y := lo + float64(iy)*step
		for ix := 0; ix < n; ix++ {
			x := lo + float64(ix)*step
			c := b.Classify(x, y)
			m.grid[iy*n+ix] = c
			z, ok := m.zones[c]
			if !ok {
				z = &Info{Code: c, MinX: x, MaxX: x, MinY: y, MaxY: y}
				m.zones[c] = z
			}
			z.Cells++
			if x < z.MinX {
				z.MinX = x
			}
			if x > z.MaxX {
				z.MaxX = x
			}
			if y < z.MinY {
				z.MinY = y
			}
			if y > z.MaxY {
				z.MaxY = y
			}
			z.RepX += x
			z.RepY += y
		}
	}
	//mclint:maporder independent per-zone normalization; no order-sensitive state leaves the loop
	for _, z := range m.zones {
		z.RepX /= float64(z.Cells)
		z.RepY /= float64(z.Cells)
	}
	// 4-neighbour adjacency.
	link := func(a, b monitor.Code) {
		if a == b {
			return
		}
		if m.adj[a] == nil {
			m.adj[a] = make(map[monitor.Code]bool)
		}
		if m.adj[b] == nil {
			m.adj[b] = make(map[monitor.Code]bool)
		}
		m.adj[a][b] = true
		m.adj[b][a] = true
	}
	for iy := 0; iy < n; iy++ {
		for ix := 0; ix < n; ix++ {
			c := m.grid[iy*n+ix]
			if ix+1 < n {
				link(c, m.grid[iy*n+ix+1])
			}
			if iy+1 < n {
				link(c, m.grid[(iy+1)*n+ix])
			}
		}
	}
	return m, nil
}

// Lookup returns the zone code at (x, y) (direct bank classification,
// not grid interpolation).
func (m *Map) Lookup(x, y float64) monitor.Code { return m.bank.Classify(x, y) }

// Zones returns the discovered zones sorted by decimal code value.
func (m *Map) Zones() []Info {
	out := make([]Info, 0, len(m.zones))
	for _, z := range m.zones {
		out = append(out, *z)
	}
	sort.Slice(out, func(i, j int) bool {
		return m.bank.Decimal(out[i].Code) < m.bank.Decimal(out[j].Code)
	})
	return out
}

// NumZones returns the number of distinct codes observed.
func (m *Map) NumZones() int { return len(m.zones) }

// Violation is a pair of adjacent zones whose codes differ in more than
// one bit.
type Violation struct {
	A, B monitor.Code
	Dist int
}

// GrayViolations lists adjacent zone pairs with Hamming distance > 1.
// A small number can appear where more than one boundary crosses a grid
// cell (boundary intersections); a large number indicates a broken
// codification.
func (m *Map) GrayViolations() []Violation {
	var out []Violation
	// Walk pairs in sorted code order, visiting each undirected edge once
	// (a < b), so the result is ordered by construction.
	for _, a := range sortedCodes(m.adj) {
		for _, b := range sortedCodes(m.adj[a]) {
			if b <= a {
				continue
			}
			if d := a.HammingDistance(b); d > 1 {
				out = append(out, Violation{A: a, B: b, Dist: d})
			}
		}
	}
	return out
}

// sortedCodes returns a code-keyed map's keys in ascending order — the
// deterministic iteration every output-feeding walk in this package
// uses.
func sortedCodes[V any](m map[monitor.Code]V) []monitor.Code {
	out := make([]monitor.Code, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AdjacentPairs returns the total number of distinct adjacent zone pairs.
func (m *Map) AdjacentPairs() int {
	n := 0
	//mclint:maporder commutative integer sum; the total is order-independent
	for _, nbrs := range m.adj {
		n += len(nbrs)
	}
	return n / 2
}

// Components returns, for each zone code, the number of 4-connected
// grid regions carrying that code. A code split across disconnected
// regions is legal but weakens the signature (two distant plane areas
// become indistinguishable); the Table I partition is expected to be
// almost entirely single-region.
func (m *Map) Components() map[monitor.Code]int {
	seen := make([]bool, len(m.grid))
	out := make(map[monitor.Code]int)
	var stack []int
	for start := range m.grid {
		if seen[start] {
			continue
		}
		code := m.grid[start]
		out[code]++
		// Flood fill this region.
		stack = append(stack[:0], start)
		seen[start] = true
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cy, cx := cur/m.n, cur%m.n
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				ny, nx := cy+d[0], cx+d[1]
				if ny < 0 || ny >= m.n || nx < 0 || nx >= m.n {
					continue
				}
				ni := ny*m.n + nx
				if !seen[ni] && m.grid[ni] == code {
					seen[ni] = true
					stack = append(stack, ni)
				}
			}
		}
	}
	return out
}

// MultiRegionCodes lists codes split across more than one region.
func (m *Map) MultiRegionCodes() []monitor.Code {
	var out []monitor.Code
	for code, n := range m.Components() {
		if n > 1 {
			out = append(out, code)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ASCIIArt renders the partition as a character grid (one glyph per
// zone, origin at the lower left) — a terminal rendition of Fig. 6's
// plane. Zones are assigned glyphs in decimal-code order.
func (m *Map) ASCIIArt(cols, rows int) string {
	if cols < 2 {
		cols = 41
	}
	if rows < 2 {
		rows = 21
	}
	const glyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ*"
	glyph := make(map[monitor.Code]byte)
	for i, z := range m.Zones() {
		glyph[z.Code] = glyphs[i%len(glyphs)]
	}
	var b strings.Builder
	for r := rows - 1; r >= 0; r-- {
		y := m.lo + (m.hi-m.lo)*float64(r)/float64(rows-1)
		for c := 0; c < cols; c++ {
			x := m.lo + (m.hi-m.lo)*float64(c)/float64(cols-1)
			g, ok := glyph[m.Lookup(x, y)]
			if !ok {
				g = '?'
			}
			b.WriteByte(g)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table renders the zone inventory like the Fig. 6 labels.
func (m *Map) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-8s %-22s %s\n", "code", "cells", "bbox", "representative")
	for _, z := range m.Zones() {
		fmt.Fprintf(&b, "%-10s %-8d [%.2f,%.2f]x[%.2f,%.2f]  (%.3f, %.3f)\n",
			m.bank.FormatCode(z.Code), z.Cells, z.MinX, z.MaxX, z.MinY, z.MaxY, z.RepX, z.RepY)
	}
	return b.String()
}
