package spice

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/mos"
)

func TestACRCLowpass(t *testing.T) {
	c := New()
	in, out := c.Node("in"), c.Node("out")
	c.Add(NewVSource("V1", in, Ground, 0))
	c.Add(NewResistor("R1", in, out, 1e3))
	c.Add(NewCapacitor("C1", out, Ground, 1e-6))
	fc := 1 / (2 * math.Pi * 1e3 * 1e-6) // ~159 Hz
	freqs := []float64{1, fc, 100 * fc}
	res, err := AC(c, Options{}, "V1", freqs)
	if err != nil {
		t.Fatal(err)
	}
	// Far below cutoff: |H| ~ 1; at cutoff: 1/sqrt(2); far above: ~fc/f.
	v0, _ := res.Voltage("out", 0)
	if math.Abs(cmplx.Abs(v0)-1) > 1e-3 {
		t.Fatalf("|H(1 Hz)| = %v, want ~1", cmplx.Abs(v0))
	}
	v1, _ := res.Voltage("out", 1)
	if math.Abs(cmplx.Abs(v1)-1/math.Sqrt2) > 1e-3 {
		t.Fatalf("|H(fc)| = %v, want 0.707", cmplx.Abs(v1))
	}
	if ph := cmplx.Phase(v1); math.Abs(ph+math.Pi/4) > 1e-3 {
		t.Fatalf("arg H(fc) = %v, want -45°", ph)
	}
	v2, _ := res.Voltage("out", 2)
	if got, want := cmplx.Abs(v2), 0.01; math.Abs(got-want) > 0.001 {
		t.Fatalf("|H(100 fc)| = %v, want ~%v", got, want)
	}
}

func TestACUnknownSource(t *testing.T) {
	c := New()
	n := c.Node("a")
	c.Add(NewVSource("V1", n, Ground, 1))
	c.Add(NewResistor("R1", n, Ground, 1e3))
	if _, err := AC(c, Options{}, "nope", []float64{1}); err == nil {
		t.Fatal("unknown AC source accepted")
	}
}

func TestACGroundVoltage(t *testing.T) {
	c := New()
	n := c.Node("a")
	c.Add(NewVSource("V1", n, Ground, 0))
	c.Add(NewResistor("R1", n, Ground, 1e3))
	res, err := AC(c, Options{}, "V1", []float64{10})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := res.Voltage("0", 0); err != nil || v != 0 {
		t.Fatal("ground must be 0 in AC")
	}
	if _, err := res.Voltage("missing", 0); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestACVCVSGain(t *testing.T) {
	c := New()
	in, out := c.Node("in"), c.Node("out")
	c.Add(NewVSource("V1", in, Ground, 0))
	c.Add(NewVCVS("E1", out, Ground, in, Ground, 42))
	c.Add(NewResistor("RL", out, Ground, 1e3))
	res, err := AC(c, Options{}, "V1", []float64{1e3})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Voltage("out", 0)
	if math.Abs(cmplx.Abs(v)-42) > 1e-3 {
		t.Fatalf("VCVS AC gain = %v, want 42", cmplx.Abs(v))
	}
}

func TestACCommonSourceGain(t *testing.T) {
	// NMOS common-source amp: |Av| ~ gm*(RD || 1/gds) at low frequency.
	c := New()
	vddN, d, g := c.Node("vdd"), c.Node("d"), c.Node("g")
	dev := mos.NewDevice("M1", 1800, 180, mos.Default65nmNMOS())
	c.Add(NewVSource("VDD", vddN, Ground, 1.2))
	c.Add(NewVSource("VG", g, Ground, 0.7))
	c.Add(NewResistor("RD", vddN, d, 10e3))
	m := NewMOSFET("M1", d, g, Ground, dev)
	c.Add(m)
	op, err := DCOperatingPoint(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pt := m.Op(op)
	want := pt.Gm / (1.0/10e3 + pt.Gds)
	res, err := AC(c, Options{}, "VG", []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Voltage("d", 0)
	if math.Abs(cmplx.Abs(v)-want) > 1e-3*want {
		t.Fatalf("CS gain = %v, want %v", cmplx.Abs(v), want)
	}
	// Inverting stage: phase ~180°.
	if ph := math.Abs(cmplx.Phase(v)); math.Abs(ph-math.Pi) > 1e-3 {
		t.Fatalf("CS phase = %v, want π", ph)
	}
}

func TestACPMOSCommonSource(t *testing.T) {
	// PMOS common-source: same magnitude law with the pMOS stamps.
	c := New()
	vddN, d, g := c.Node("vdd"), c.Node("d"), c.Node("g")
	dev := mos.NewDevice("M1", 3600, 180, mos.Default65nmPMOS())
	c.Add(NewVSource("VDD", vddN, Ground, 1.2))
	c.Add(NewVSource("VG", g, Ground, 0.3))
	m := NewMOSFET("M1", d, g, vddN, dev)
	c.Add(m)
	c.Add(NewResistor("RL", d, Ground, 10e3))
	op, err := DCOperatingPoint(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pt := m.Op(op)
	want := pt.Gm / (1.0/10e3 + pt.Gds)
	res, err := AC(c, Options{}, "VG", []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Voltage("d", 0)
	if math.Abs(cmplx.Abs(v)-want) > 1e-3*want {
		t.Fatalf("PMOS CS gain = %v, want %v", cmplx.Abs(v), want)
	}
}
