package spice

import (
	"fmt"
	"math"

	"repro/internal/mos"
	"repro/internal/num"
)

// ACResult holds a small-signal frequency sweep: node phasors per
// frequency for a unit AC excitation at the designated source.
type ACResult struct {
	circuit *Circuit
	Freqs   []float64
	X       [][]complex128 // per frequency: node voltages + branch currents
}

// Voltage returns the phasor of the named node at frequency index k.
func (r *ACResult) Voltage(name string, k int) (complex128, error) {
	if name == "0" || name == "gnd" || name == "GND" {
		return 0, nil
	}
	id, ok := r.circuit.nodeIdx[name]
	if !ok {
		return 0, fmt.Errorf("spice: unknown node %q", name)
	}
	return r.X[k][id], nil
}

// AC performs a small-signal analysis: the circuit is linearized at its
// DC operating point (MOSFETs become gm/gds stamps), the source named
// acSource is driven with a unit phasor, and the complex MNA system is
// solved at every frequency. This is how the Tow-Thomas realization's
// transfer function is verified against the behavioural biquad.
func AC(c *Circuit, opt Options, acSource string, freqs []float64) (*ACResult, error) {
	src, ok := c.FindElement(acSource).(*VSource)
	if !ok {
		return nil, fmt.Errorf("spice: AC source %q not found or not a VSource", acSource)
	}
	op, err := DCOperatingPoint(c, opt)
	if err != nil {
		return nil, fmt.Errorf("spice: AC needs a DC operating point: %w", err)
	}
	o := opt.withDefaults()
	n := c.Size()
	res := &ACResult{circuit: c, Freqs: freqs}
	a := num.NewCMatrix(n, n)
	b := make([]complex128, n)
	for _, f := range freqs {
		omega := 2 * math.Pi * f
		a.Zero()
		for i := range b {
			b[i] = 0
		}
		for _, e := range c.elements {
			stampAC(a, b, e, op, omega, src)
		}
		for i := 0; i < c.NumNodes(); i++ {
			a.Add(i, i, complex(o.Gmin, 0))
		}
		x, err := num.CSolve(a, b)
		if err != nil {
			return nil, fmt.Errorf("spice: AC solve at %g Hz: %w", f, err)
		}
		res.X = append(res.X, x)
	}
	return res, nil
}

// stampAC adds one element's small-signal contribution.
func stampAC(a *num.CMatrix, b []complex128, e Element, op *Solution, omega float64, acSrc *VSource) {
	addG := func(p, m NodeID, g complex128) {
		if p != Ground {
			a.Add(int(p), int(p), g)
		}
		if m != Ground {
			a.Add(int(m), int(m), g)
		}
		if p != Ground && m != Ground {
			a.Add(int(p), int(m), -g)
			a.Add(int(m), int(p), -g)
		}
	}
	entry := func(r, c int, v complex128) {
		if r >= 0 && c >= 0 {
			a.Add(r, c, v)
		}
	}
	switch el := e.(type) {
	case *Resistor:
		addG(el.P, el.M, complex(1/el.Ohms, 0))
	case *Capacitor:
		addG(el.P, el.M, complex(0, omega*el.Farads))
	case *VSource:
		entry(int(el.P), el.branch, 1)
		entry(int(el.M), el.branch, -1)
		entry(el.branch, int(el.P), 1)
		entry(el.branch, int(el.M), -1)
		if el == acSrc {
			b[el.branch] += 1 // unit AC excitation
		}
	case *ISource:
		// Independent current sources are open in AC (no AC component).
	case *VCCS:
		gm := complex(el.Gm, 0)
		entry(int(el.P), int(el.CP), gm)
		entry(int(el.P), int(el.CM), -gm)
		entry(int(el.M), int(el.CP), -gm)
		entry(int(el.M), int(el.CM), gm)
	case *VCVS:
		entry(int(el.P), el.branch, 1)
		entry(int(el.M), el.branch, -1)
		entry(el.branch, int(el.P), 1)
		entry(el.branch, int(el.M), -1)
		entry(el.branch, int(el.CP), complex(-el.Gain, 0))
		entry(el.branch, int(el.CM), complex(el.Gain, 0))
	case *MOSFET:
		pt := el.Op(op)
		gm, gds := complex(pt.Gm, 0), complex(pt.Gds, 0)
		d, g, s := el.D, el.G, el.S
		if el.Dev.P.Kind == mos.PMOS {
			// In magnitude space the pMOS current flows S->D; its
			// small-signal stamps mirror the nMOS with S and D exchanged
			// and the gate transconductance referenced to VSG.
			row := func(r NodeID, sgn complex128) {
				if r == Ground {
					return
				}
				entry(int(r), int(s), sgn*(gm+gds))
				entry(int(r), int(g), -sgn*gm)
				entry(int(r), int(d), -sgn*gds)
			}
			row(s, 1)
			row(d, -1)
			return
		}
		row := func(r NodeID, sgn complex128) {
			if r == Ground {
				return
			}
			entry(int(r), int(g), sgn*gm)
			entry(int(r), int(d), sgn*gds)
			entry(int(r), int(s), -sgn*(gm+gds))
		}
		row(d, 1)
		row(s, -1)
	}
}
