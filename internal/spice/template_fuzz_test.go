package spice

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/wave"
)

// FuzzTemplateMutation pins the trial-template engine's central claim
// under adversarial values: mutating a live CircuitTemplate in place
// must produce bit-identical samples to parsing a fresh netlist with
// the same values and running the generic TransientSolver. Values the
// setters reject (non-positive, non-finite) must be rejected without
// corrupting the template.
func FuzzTemplateMutation(f *testing.F) {
	f.Add(1e3, 100e-9, 2e3, 47e-9, uint8(16), true, true)
	f.Add(680.0, 150e-9, 3.3e3, 33e-9, uint8(40), false, false)
	f.Add(1e9, 82e-9, 1.8e3, 56e-9, uint8(7), true, false) // "open" R1
	f.Add(1e-3, 1e-15, 1e12, 1.0, uint8(1), false, true)   // extreme spread
	f.Add(-1.0, 100e-9, 2e3, 47e-9, uint8(16), true, true) // rejected value
	f.Fuzz(func(t *testing.T, r1, c1, r2, c2 float64, stepsRaw uint8, trapezoid, useWave bool) {
		const baseline = "V1 in 0 1\nR1 in a 1k\nC1 a 0 100n\nR2 a out 2k\nC2 out 0 47n\n"
		ckt, err := Parse(baseline)
		if err != nil {
			t.Fatalf("baseline netlist: %v", err)
		}
		opt := Options{Trapezoid: trapezoid}
		tmpl, err := NewCircuitTemplate(ckt, opt)
		if err != nil {
			t.Fatalf("baseline template: %v", err)
		}
		// In-place mutation. A rejected value must leave the template on
		// its previous (valid) circuit, so later trials still run.
		ok := tmpl.SetResistance("R1", r1) == nil &&
			tmpl.SetCapacitance("C1", c1) == nil &&
			tmpl.SetResistance("R2", r2) == nil &&
			tmpl.SetCapacitance("C2", c2) == nil
		stim := wave.Sine{Amp: 0.4, Freq: 5e3, Offset: 0.5}
		if useWave {
			if err := tmpl.SetVSourceWaveform("V1", stim); err != nil {
				t.Fatalf("set waveform: %v", err)
			}
		}
		steps := 1 + int(stepsRaw)%64
		dur := 4e-4
		out := make([]float64, steps+1)
		rec := tmpl.Circuit().Node("out")
		if err := tmpl.RunTrial(Trial{Dur: dur, Steps: steps, Record: rec, Start: 0, Out: out}); err != nil {
			// Both paths must agree on failure too, but a template that
			// cannot solve (e.g. singular after mutation) has nothing to
			// compare; the rebuild check below only runs on success.
			return
		}
		if !ok {
			// Rejected mutations: the trial above ran on the last valid
			// values; nothing further to compare against the fuzzed ones.
			return
		}
		fv := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
		src := fmt.Sprintf("V1 in 0 1\nR1 in a %s\nC1 a 0 %s\nR2 a out %s\nC2 out 0 %s\n",
			fv(r1), fv(c1), fv(r2), fv(c2))
		fresh, err := Parse(src)
		if err != nil {
			t.Fatalf("fresh netlist for accepted values (%s): %v", src, err)
		}
		if useWave {
			fresh.FindElement("V1").(*VSource).SetWaveform(stim)
		}
		want := make([]float64, steps+1)
		node := fresh.Node("out")
		err = NewTransientSolver(fresh, opt).Run(dur, steps, func(k int, _ float64, sol *Solution) {
			want[k] = sol.VoltageAt(node)
		})
		if err != nil {
			t.Fatalf("rebuild run failed where template succeeded: %v", err)
		}
		for k := range want {
			if out[k] != want[k] {
				t.Fatalf("step %d: template %v, rebuild %v (r1=%v c1=%v r2=%v c2=%v steps=%d trap=%v wave=%v)",
					k, out[k], want[k], r1, c1, r2, c2, steps, trapezoid, useWave)
			}
		}
	})
}
