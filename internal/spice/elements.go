package spice

import (
	"fmt"
	"math"

	"repro/internal/mos"
	"repro/internal/wave"
)

// Resistor is a linear two-terminal resistor.
type Resistor struct {
	name string
	P, M NodeID
	Ohms float64
}

// NewResistor creates a resistor between nodes p and m. Ohms must be
// positive and finite; a bad value never panics — Circuit.Add records it
// and every analysis on that circuit returns the error.
func NewResistor(name string, p, m NodeID, ohms float64) *Resistor {
	return &Resistor{name: name, P: p, M: m, Ohms: ohms}
}

// validate implements the Add-time element check.
func (r *Resistor) validate() error {
	if r.Ohms <= 0 || math.IsInf(r.Ohms, 0) || math.IsNaN(r.Ohms) {
		return fmt.Errorf("spice: resistor %s value %g must be positive and finite", r.name, r.Ohms)
	}
	return nil
}

// Name implements Element.
func (r *Resistor) Name() string { return r.name }

// Stamp implements Element.
func (r *Resistor) Stamp(s *Stamper) { s.AddConductance(r.P, r.M, 1/r.Ohms) }

// Capacitor is a linear capacitor. In DC analyses it is an open circuit;
// in transient analyses it stamps a backward-Euler or trapezoidal
// companion model.
type Capacitor struct {
	name    string
	P, M    NodeID
	Farads  float64
	prevCur float64 // previous capacitor current, for trapezoidal
}

// NewCapacitor creates a capacitor between nodes p and m. Farads must be
// positive and finite; like NewResistor, misuse surfaces as an analysis
// error recorded by Circuit.Add, not a panic.
func NewCapacitor(name string, p, m NodeID, farads float64) *Capacitor {
	return &Capacitor{name: name, P: p, M: m, Farads: farads}
}

// validate implements the Add-time element check.
func (c *Capacitor) validate() error {
	if c.Farads <= 0 || math.IsInf(c.Farads, 0) || math.IsNaN(c.Farads) {
		return fmt.Errorf("spice: capacitor %s value %g must be positive and finite", c.name, c.Farads)
	}
	return nil
}

// Name implements Element.
func (c *Capacitor) Name() string { return c.name }

// Stamp implements Element.
func (c *Capacitor) Stamp(s *Stamper) {
	if s.DC || s.Dt <= 0 {
		return // open circuit at DC
	}
	vPrev := s.PrevV(c.P) - s.PrevV(c.M)
	if s.Trapezoidal {
		// Trapezoidal: i = (2C/h)(v - vPrev) - iPrev
		geq := 2 * c.Farads / s.Dt
		ieq := geq*vPrev + c.prevCur
		s.AddConductance(c.P, c.M, geq)
		s.AddCurrent(c.P, c.M, ieq)
		return
	}
	// Backward Euler: i = (C/h)(v - vPrev)
	geq := c.Farads / s.Dt
	s.AddConductance(c.P, c.M, geq)
	s.AddCurrent(c.P, c.M, geq*vPrev)
}

// commitStep records the capacitor current after an accepted timestep so
// the trapezoidal companion can use it next step.
func (c *Capacitor) commitStep(x, prev []float64, dt float64, trapezoidal bool) {
	vAt := func(n NodeID, vec []float64) float64 {
		if n == Ground {
			return 0
		}
		return vec[n]
	}
	v := vAt(c.P, x) - vAt(c.M, x)
	vPrev := vAt(c.P, prev) - vAt(c.M, prev)
	if trapezoidal {
		c.prevCur = 2*c.Farads/dt*(v-vPrev) - c.prevCur
	} else {
		c.prevCur = c.Farads / dt * (v - vPrev)
	}
}

// VSource is an independent voltage source, DC or waveform-driven.
type VSource struct {
	name   string
	P, M   NodeID
	src    sourceWaveform
	branch int
}

// NewVSource creates a DC voltage source.
func NewVSource(name string, p, m NodeID, volts float64) *VSource {
	return &VSource{name: name, P: p, M: m, src: sourceWaveform{dc: volts}}
}

// NewVSourceWave creates a waveform-driven voltage source. Its DC value
// (used for operating-point analyses) is the waveform at t = 0.
func NewVSourceWave(name string, p, m NodeID, w wave.Waveform) *VSource {
	return &VSource{name: name, P: p, M: m, src: sourceWaveform{dc: w.Eval(0), w: w}}
}

// Name implements Element.
func (v *VSource) Name() string { return v.name }

// SetDC changes the DC value (used by sweeps).
func (v *VSource) SetDC(volts float64) { v.src.dc = volts; v.src.w = nil }

// SetWaveform drives the source with w; the DC value used by
// operating-point analyses becomes w.Eval(0). This is how a netlist
// built for DC/AC analysis (e.g. biquad.Components.Netlist) is excited
// with the multitone stimulus for a transient run.
func (v *VSource) SetWaveform(w wave.Waveform) {
	v.src = sourceWaveform{dc: w.Eval(0), w: w}
}

// DC returns the current DC value.
func (v *VSource) DC() float64 { return v.src.dc }

func (v *VSource) setBranch(row int) { v.branch = row }
func (v *VSource) branchRow() int    { return v.branch }

// Stamp implements Element.
func (v *VSource) Stamp(s *Stamper) {
	val := v.src.at(s.Time, s.DC) * s.SrcScale
	s.AddEntry(int(v.P), v.branch, 1)
	s.AddEntry(int(v.M), v.branch, -1)
	s.AddEntry(v.branch, int(v.P), 1)
	s.AddEntry(v.branch, int(v.M), -1)
	s.AddRHS(v.branch, val)
}

// ISource is an independent current source; current flows from node P
// through the source to node M (i.e. it injects into M... conventional
// SPICE: positive current flows from P to M through the source, so it
// *removes* current from P and injects into M).
type ISource struct {
	name string
	P, M NodeID
	src  sourceWaveform
}

// NewISource creates a DC current source.
func NewISource(name string, p, m NodeID, amps float64) *ISource {
	return &ISource{name: name, P: p, M: m, src: sourceWaveform{dc: amps}}
}

// NewISourceWave creates a waveform-driven current source.
func NewISourceWave(name string, p, m NodeID, w wave.Waveform) *ISource {
	return &ISource{name: name, P: p, M: m, src: sourceWaveform{dc: w.Eval(0), w: w}}
}

// Name implements Element.
func (i *ISource) Name() string { return i.name }

// Stamp implements Element.
func (i *ISource) Stamp(s *Stamper) {
	val := i.src.at(s.Time, s.DC) * s.SrcScale
	s.AddCurrent(i.M, i.P, val)
}

// VCVS is a voltage-controlled voltage source: V(P,M) = Gain · V(CP,CM).
// It is used to model ideal high-gain stages.
type VCVS struct {
	name   string
	P, M   NodeID
	CP, CM NodeID
	Gain   float64
	branch int
}

// NewVCVS creates a voltage-controlled voltage source.
func NewVCVS(name string, p, m, cp, cm NodeID, gain float64) *VCVS {
	return &VCVS{name: name, P: p, M: m, CP: cp, CM: cm, Gain: gain}
}

// Name implements Element.
func (e *VCVS) Name() string { return e.name }

func (e *VCVS) setBranch(row int) { e.branch = row }
func (e *VCVS) branchRow() int    { return e.branch }

// Stamp implements Element.
func (e *VCVS) Stamp(s *Stamper) {
	s.AddEntry(int(e.P), e.branch, 1)
	s.AddEntry(int(e.M), e.branch, -1)
	s.AddEntry(e.branch, int(e.P), 1)
	s.AddEntry(e.branch, int(e.M), -1)
	s.AddEntry(e.branch, int(e.CP), -e.Gain)
	s.AddEntry(e.branch, int(e.CM), e.Gain)
}

// VCCS is a voltage-controlled current source: I(P→M) = Gm · V(CP,CM),
// the transconductor element gm-C filter structures are built from.
type VCCS struct {
	name   string
	P, M   NodeID
	CP, CM NodeID
	Gm     float64
}

// NewVCCS creates a voltage-controlled current source.
func NewVCCS(name string, p, m, cp, cm NodeID, gm float64) *VCCS {
	return &VCCS{name: name, P: p, M: m, CP: cp, CM: cm, Gm: gm}
}

// Name implements Element.
func (g *VCCS) Name() string { return g.name }

// Stamp implements Element. The controlled current Gm·V(CP,CM) flows
// from P through the source to M (leaving node P).
func (g *VCCS) Stamp(s *Stamper) {
	s.AddEntry(int(g.P), int(g.CP), g.Gm)
	s.AddEntry(int(g.P), int(g.CM), -g.Gm)
	s.AddEntry(int(g.M), int(g.CP), -g.Gm)
	s.AddEntry(int(g.M), int(g.CM), g.Gm)
}

// MOSFET is a three-terminal (bulk tied to source) transistor using the
// internal/mos behavioural model.
type MOSFET struct {
	name    string
	D, G, S NodeID
	Dev     mos.Device
}

// NewMOSFET creates a MOSFET element. For PMOS devices the model is
// evaluated with source/gate/drain voltage differences reversed, so the
// same Device works for both polarities.
func NewMOSFET(name string, d, g, s NodeID, dev mos.Device) *MOSFET {
	return &MOSFET{name: name, D: d, G: g, S: s, Dev: dev}
}

// Name implements Element.
func (m *MOSFET) Name() string { return m.name }

// nonlinearStamp marks the MOSFET as the (only) element whose companion
// model depends on the Newton iterate, disqualifying circuits that
// contain one from the linear transient fast path.
func (m *MOSFET) nonlinearStamp() {}

// Op evaluates the device at a solved operating point.
func (m *MOSFET) Op(sol *Solution) mos.OpPoint {
	vd, vg, vs := sol.VoltageAt(m.D), sol.VoltageAt(m.G), sol.VoltageAt(m.S)
	if m.Dev.P.Kind == mos.PMOS {
		return m.Dev.Eval(vs-vg, vs-vd)
	}
	return m.Dev.Eval(vg-vs, vd-vs)
}

// Stamp implements Element.
func (m *MOSFET) Stamp(s *Stamper) {
	vd, vg, vs := s.V(m.D), s.V(m.G), s.V(m.S)
	if m.Dev.P.Kind == mos.PMOS {
		// Evaluate in magnitude space: vgs' = vs-vg, vds' = vs-vd.
		op := m.Dev.Eval(vs-vg, vs-vd)
		// Channel current flows S -> D externally (into S terminal).
		// I = f(vs-vg, vs-vd):
		//   dI/dvs = gm + gds, dI/dvg = -gm, dI/dvd = -gds
		gm, gds := op.Gm, op.Gds
		ieq := op.ID - (gm+gds)*vs + gm*vg + gds*vd
		// KCL row S: +I ; row D: -I (current leaves D into the circuit).
		m.stampCurrentRow(s, m.S, gm+gds, -gm, -gds, ieq)
		m.stampCurrentRow(s, m.D, -(gm + gds), gm, gds, -ieq)
		return
	}
	op := m.Dev.Eval(vg-vs, vd-vs)
	gm, gds := op.Gm, op.Gds
	// I_D flows into drain, out of source.
	// I = f(vg-vs, vd-vs): dI/dvg = gm, dI/dvd = gds, dI/dvs = -(gm+gds)
	ieq := op.ID - gm*vg - gds*vd + (gm+gds)*vs
	m.stampCurrentRow(s, m.D, -(gm + gds), gm, gds, ieq)
	m.stampCurrentRow(s, m.S, gm+gds, -gm, -gds, -ieq)
}

// stampCurrentRow stamps the row for node `row` of a current that depends
// linearly on (vs, vg, vd) with the given partials plus constant ieq:
// the KCL contribution is I = dvs·vs + dvg·vg + dvd·vd + ieq flowing OUT
// of the node, i.e. A[row]·x = -ieq.
func (m *MOSFET) stampCurrentRow(s *Stamper, row NodeID, dvs, dvg, dvd, ieq float64) {
	if row == Ground {
		return
	}
	s.AddEntry(int(row), int(m.S), dvs)
	s.AddEntry(int(row), int(m.G), dvg)
	s.AddEntry(int(row), int(m.D), dvd)
	s.AddRHS(int(row), -ieq)
}
