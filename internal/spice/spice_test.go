package spice

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mos"
	"repro/internal/num"
	"repro/internal/wave"
)

func TestVoltageDivider(t *testing.T) {
	c := New()
	in, mid := c.Node("in"), c.Node("mid")
	c.Add(NewVSource("V1", in, Ground, 1.0))
	c.Add(NewResistor("R1", in, mid, 1e3))
	c.Add(NewResistor("R2", mid, Ground, 1e3))
	sol, err := DCOperatingPoint(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := sol.Voltage("mid")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.5) > 1e-9 {
		t.Fatalf("divider = %v, want 0.5", v)
	}
}

func TestBranchCurrent(t *testing.T) {
	c := New()
	in := c.Node("in")
	c.Add(NewVSource("V1", in, Ground, 2.0))
	c.Add(NewResistor("R1", in, Ground, 1e3))
	sol, err := DCOperatingPoint(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	i, err := sol.BranchCurrent("V1")
	if err != nil {
		t.Fatal(err)
	}
	// 2 mA flows out of the source's + terminal into R1, so the branch
	// current (flowing + -> - through the source) is -2 mA.
	if math.Abs(i+2e-3) > 1e-9 {
		t.Fatalf("branch current = %v, want -2mA", i)
	}
}

func TestCurrentSource(t *testing.T) {
	c := New()
	n1 := c.Node("n1")
	c.Add(NewISource("I1", Ground, n1, 1e-3))
	c.Add(NewResistor("R1", n1, Ground, 1e3))
	sol, err := DCOperatingPoint(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := sol.Voltage("n1")
	if math.Abs(v-1.0) > 1e-9 {
		t.Fatalf("V(n1) = %v, want 1.0", v)
	}
}

func TestVCVS(t *testing.T) {
	c := New()
	in, out := c.Node("in"), c.Node("out")
	c.Add(NewVSource("V1", in, Ground, 0.1))
	c.Add(NewVCVS("E1", out, Ground, in, Ground, 10))
	c.Add(NewResistor("RL", out, Ground, 1e3))
	sol, err := DCOperatingPoint(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := sol.Voltage("out")
	if math.Abs(v-1.0) > 1e-9 {
		t.Fatalf("VCVS out = %v, want 1.0", v)
	}
}

func TestUnknownNodeVoltage(t *testing.T) {
	c := New()
	n := c.Node("a")
	c.Add(NewVSource("V1", n, Ground, 1))
	c.Add(NewResistor("R1", n, Ground, 1))
	sol, err := DCOperatingPoint(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sol.Voltage("nope"); err == nil {
		t.Fatal("expected error for unknown node")
	}
	if v, err := sol.Voltage("0"); err != nil || v != 0 {
		t.Fatal("ground voltage must be 0")
	}
}

// nmosTestCircuit builds VDD --R--> drain, gate at vg, source grounded.
func nmosTestCircuit(vg, vdd, r float64) (*Circuit, mos.Device) {
	c := New()
	d := c.Node("d")
	g := c.Node("g")
	vddN := c.Node("vdd")
	dev := mos.NewDevice("M1", 1800, 180, mos.Default65nmNMOS())
	c.Add(NewVSource("VDD", vddN, Ground, vdd))
	c.Add(NewVSource("VG", g, Ground, vg))
	c.Add(NewResistor("RD", vddN, d, r))
	c.Add(NewMOSFET("M1", d, g, Ground, dev))
	return c, dev
}

func TestNMOSCommonSourceMatchesModel(t *testing.T) {
	vg, vdd, r := 0.7, 1.2, 10e3
	c, dev := nmosTestCircuit(vg, vdd, r)
	sol, err := DCOperatingPoint(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vd, _ := sol.Voltage("d")
	// Independent solution of (vdd - vd)/r = ID(vg, vd) by bisection.
	want, err := num.Bisect(func(v float64) float64 {
		return (vdd-v)/r - dev.Eval(vg, v).ID
	}, 0, vdd, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vd-want) > 1e-6 {
		t.Fatalf("drain voltage = %v, want %v", vd, want)
	}
}

func TestNMOSCutoffPullsDrainHigh(t *testing.T) {
	c, _ := nmosTestCircuit(0.0, 1.2, 10e3)
	sol, err := DCOperatingPoint(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vd, _ := sol.Voltage("d")
	if vd < 1.19 {
		t.Fatalf("cutoff drain = %v, want ~1.2", vd)
	}
}

func TestPMOSCommonSource(t *testing.T) {
	// VDD at source, gate low -> PMOS on, pulls drain toward VDD through
	// the channel against a grounding resistor.
	c := New()
	vddN := c.Node("vdd")
	d := c.Node("d")
	g := c.Node("g")
	dev := mos.NewDevice("M1", 3600, 180, mos.Default65nmPMOS())
	c.Add(NewVSource("VDD", vddN, Ground, 1.2))
	c.Add(NewVSource("VG", g, Ground, 0.0))
	c.Add(NewMOSFET("M1", d, g, vddN, dev))
	c.Add(NewResistor("RL", d, Ground, 20e3))
	sol, err := DCOperatingPoint(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vd, _ := sol.Voltage("d")
	// Cross-check against the model: vd/RL = ID(vsg=1.2, vsd=1.2-vd).
	want, err := num.Bisect(func(v float64) float64 {
		return v/20e3 - dev.Eval(1.2, 1.2-v).ID
	}, 0, 1.2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vd-want) > 1e-6 {
		t.Fatalf("PMOS drain = %v, want %v", vd, want)
	}
	if vd < 0.6 {
		t.Fatalf("PMOS with full drive should pull drain above mid-rail, got %v", vd)
	}
}

func TestDiodeConnectedNMOS(t *testing.T) {
	// Diode-connected device biased by a current source: VGS settles where
	// ID equals the forced current.
	c := New()
	d := c.Node("d")
	dev := mos.NewDevice("M1", 1800, 180, mos.Default65nmNMOS())
	c.Add(NewMOSFET("M1", d, d, Ground, dev))
	c.Add(NewISource("IB", Ground, d, 50e-6))
	sol, err := DCOperatingPoint(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vd, _ := sol.Voltage("d")
	if math.Abs(dev.Eval(vd, vd).ID-50e-6) > 1e-9 {
		t.Fatalf("diode-connected bias inconsistent: V=%v I=%v", vd, dev.Eval(vd, vd).ID)
	}
}

func TestDCSweepMonotoneTransfer(t *testing.T) {
	c, _ := nmosTestCircuit(0.0, 1.2, 10e3)
	sweep, err := DCSweep(c, Options{}, "VG", num.Linspace(0, 1.2, 25))
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for i, sol := range sweep.Solutions {
		vd, _ := sol.Voltage("d")
		if vd > prev+1e-9 {
			t.Fatalf("common-source transfer not monotone at point %d", i)
		}
		prev = vd
	}
	first, _ := sweep.Solutions[0].Voltage("d")
	last, _ := sweep.Solutions[len(sweep.Solutions)-1].Voltage("d")
	if first < 1.1 || last > 0.4 {
		t.Fatalf("transfer range wrong: %v .. %v", first, last)
	}
	// Sweep must restore the source's original DC value.
	vs := c.FindElement("VG").(*VSource)
	if vs.DC() != 0 {
		t.Fatalf("sweep did not restore source, DC=%v", vs.DC())
	}
}

func TestTransientRCCharge(t *testing.T) {
	for _, trap := range []bool{false, true} {
		c := New()
		in, out := c.Node("in"), c.Node("out")
		c.Add(NewVSource("V1", in, Ground, 1.0))
		c.Add(NewResistor("R1", in, out, 1e3))
		c.Add(NewCapacitor("C1", out, Ground, 1e-6))
		// τ = 1 ms. NOTE: the DC operating point pre-charges the cap to
		// 1 V (steady state), so force the interesting case with a step:
		// start the source at 0 via a waveform that jumps at t=0+.
		vs := c.FindElement("V1").(*VSource)
		*vs = *NewVSourceWave("V1", in, Ground, stepWave{at: 0, lo: 0, hi: 1})
		res, err := Transient(c, Options{Trapezoid: trap}, 5e-3, 2000)
		if err != nil {
			t.Fatal(err)
		}
		vout, err := res.VoltageSeries("out")
		if err != nil {
			t.Fatal(err)
		}
		// Compare to analytic 1-exp(-t/τ) at a few points.
		for _, idx := range []int{400, 1000, 2000} {
			tt := res.Time[idx]
			want := 1 - math.Exp(-tt/1e-3)
			if math.Abs(vout[idx]-want) > 5e-3 {
				t.Fatalf("trap=%v RC charge at t=%v: %v, want %v", trap, tt, vout[idx], want)
			}
		}
	}
}

// stepWave is 0 before `at`, hi after (used to exercise transients).
type stepWave struct{ at, lo, hi float64 }

func (s stepWave) Eval(t float64) float64 {
	if t > s.at {
		return s.hi
	}
	return s.lo
}
func (s stepWave) Period() float64 { return 0 }

func TestTransientRCLowpassSine(t *testing.T) {
	// 1 kHz sine through RC with f_c = 1/(2πRC) ≈ 159 Hz: expect strong
	// attenuation matching |H| = 1/sqrt(1+(ωRC)^2).
	c := New()
	in, out := c.Node("in"), c.Node("out")
	c.Add(NewVSourceWave("V1", in, Ground, wave.Sine{Amp: 1, Freq: 1000}))
	c.Add(NewResistor("R1", in, out, 1e3))
	c.Add(NewCapacitor("C1", out, Ground, 1e-6))
	res, err := Transient(c, Options{Trapezoid: true}, 10e-3, 4000)
	if err != nil {
		t.Fatal(err)
	}
	vout, _ := res.VoltageSeries("out")
	// Measure amplitude over the last 2 periods (steady state).
	tail := vout[2000:]
	amp := 0.0
	for _, v := range tail {
		if math.Abs(v) > amp {
			amp = math.Abs(v)
		}
	}
	wrc := 2 * math.Pi * 1000 * 1e-3
	want := 1 / math.Sqrt(1+wrc*wrc)
	if math.Abs(amp-want) > 0.03*want+0.005 {
		t.Fatalf("lowpass amplitude = %v, want %v", amp, want)
	}
}

func TestTransientRejectsBadSteps(t *testing.T) {
	c := New()
	n := c.Node("a")
	c.Add(NewVSource("V1", n, Ground, 1))
	c.Add(NewResistor("R1", n, Ground, 1))
	if _, err := Transient(c, Options{}, 1e-3, 0); err == nil {
		t.Fatal("expected error for zero steps")
	}
}

func TestFloatingNodeHandledByGmin(t *testing.T) {
	// A node connected only through a capacitor is floating at DC; gmin
	// must keep the matrix solvable.
	c := New()
	a, b := c.Node("a"), c.Node("b")
	c.Add(NewVSource("V1", a, Ground, 1))
	c.Add(NewCapacitor("C1", a, b, 1e-9))
	c.Add(NewResistor("R1", a, Ground, 1e3))
	if _, err := DCOperatingPoint(c, Options{}); err != nil {
		t.Fatalf("floating node broke DC solve: %v", err)
	}
	_ = b
}

// Property: N-stage equal-resistor ladder divides linearly.
func TestResistorLadderProperty(t *testing.T) {
	prop := func(stagesRaw uint8) bool {
		stages := 2 + int(stagesRaw%8)
		c := New()
		top := c.Node("n0")
		c.Add(NewVSource("V1", top, Ground, 1.0))
		prev := top
		for i := 1; i <= stages; i++ {
			var next NodeID = Ground
			if i < stages {
				next = c.Node(nodeName(i))
			}
			c.Add(NewResistor(nodeName(100+i), prev, next, 1e3))
			prev = next
		}
		sol, err := DCOperatingPoint(c, Options{})
		if err != nil {
			return false
		}
		for i := 1; i < stages; i++ {
			v, err := sol.Voltage(nodeName(i))
			if err != nil {
				return false
			}
			want := 1 - float64(i)/float64(stages)
			if math.Abs(v-want) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func nodeName(i int) string {
	return "n" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestTransientNMOSInverterDischarge(t *testing.T) {
	// Capacitive load on a common-source stage: when the gate steps
	// high the NMOS discharges the load toward its resistive-divider
	// operating point; the trajectory must be monotone and settle to
	// the DC solution.
	c := New()
	d := c.Node("d")
	g := c.Node("g")
	vddN := c.Node("vdd")
	dev := mos.NewDevice("M1", 3600, 180, mos.Default65nmNMOS())
	c.Add(NewVSource("VDD", vddN, Ground, 1.2))
	c.Add(NewVSourceWave("VG", g, Ground, stepWave{at: 1e-9, lo: 0, hi: 1.0}))
	c.Add(NewResistor("RD", vddN, d, 20e3))
	c.Add(NewCapacitor("CL", d, Ground, 1e-12))
	c.Add(NewMOSFET("M1", d, g, Ground, dev))
	res, err := Transient(c, Options{Trapezoid: true}, 2e-7, 4000)
	if err != nil {
		t.Fatal(err)
	}
	vd, err := res.VoltageSeries("d")
	if err != nil {
		t.Fatal(err)
	}
	// Initial OP: gate low -> drain at VDD.
	if vd[0] < 1.19 {
		t.Fatalf("initial drain = %v, want ~1.2", vd[0])
	}
	// Final value matches an independent root solve of the same device:
	// (1.2 − v)/R = I_D(1.0, v).
	want, err := num.Bisect(func(v float64) float64 {
		return (1.2-v)/20e3 - dev.Eval(1.0, v).ID
	}, 0, 1.2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	got := vd[len(vd)-1]
	if math.Abs(got-want) > 2e-3 {
		t.Fatalf("transient settles at %v, DC says %v", got, want)
	}
	// Monotone discharge after the step.
	for i := 200; i < len(vd)-1; i++ {
		if vd[i+1] > vd[i]+1e-6 {
			t.Fatalf("discharge not monotone at step %d", i)
		}
	}
}

func TestDCOperatingPointUsesFallbacks(t *testing.T) {
	// A cross-coupled NMOS latch with no helpful initial guess exercises
	// the gmin/source stepping paths; any self-consistent solution is
	// acceptable, the solver just must not fail.
	c := New()
	a, b := c.Node("a"), c.Node("b")
	vddN := c.Node("vdd")
	dev := mos.NewDevice("M", 1800, 180, mos.Default65nmNMOS())
	c.Add(NewVSource("VDD", vddN, Ground, 1.2))
	c.Add(NewResistor("RA", vddN, a, 20e3))
	c.Add(NewResistor("RB", vddN, b, 20e3))
	c.Add(NewMOSFET("MA", a, b, Ground, dev))
	c.Add(NewMOSFET("MB", b, a, Ground, dev))
	sol, err := DCOperatingPoint(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	va, _ := sol.Voltage("a")
	vb, _ := sol.Voltage("b")
	for _, v := range []float64{va, vb} {
		if v < -0.01 || v > 1.21 {
			t.Fatalf("latch node out of rails: a=%v b=%v", va, vb)
		}
	}
	// KCL check at node a: resistor current equals MA drain current.
	ir := (1.2 - va) / 20e3
	id := dev.Eval(vb, va).ID
	if math.Abs(ir-id) > 1e-8 {
		t.Fatalf("KCL violated at a: iR=%v iD=%v", ir, id)
	}
}

func TestVCCS(t *testing.T) {
	// gm of 1 mS driving 1 kΩ from a 0.5 V control: out = -gm*R*vin
	// with the chosen current direction (current leaves P).
	c := New()
	in, out := c.Node("in"), c.Node("out")
	c.Add(NewVSource("V1", in, Ground, 0.5))
	c.Add(NewVCCS("G1", out, Ground, in, Ground, 1e-3))
	c.Add(NewResistor("RL", out, Ground, 1e3))
	sol, err := DCOperatingPoint(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := sol.Voltage("out")
	if math.Abs(v+0.5) > 1e-9 {
		t.Fatalf("VCCS out = %v, want -0.5", v)
	}
}

func TestGmCIntegratorAC(t *testing.T) {
	// gm-C integrator: |H(f)| = gm/(2πfC).
	c := New()
	in, out := c.Node("in"), c.Node("out")
	c.Add(NewVSource("V1", in, Ground, 0))
	c.Add(NewVCCS("G1", out, Ground, in, Ground, 100e-6))
	c.Add(NewCapacitor("C1", out, Ground, 1e-9))
	res, err := AC(c, Options{}, "V1", []float64{1e3, 10e3})
	if err != nil {
		t.Fatal(err)
	}
	for k, f := range res.Freqs {
		v, _ := res.Voltage("out", k)
		want := 100e-6 / (2 * math.Pi * f * 1e-9)
		got := math.Hypot(real(v), imag(v))
		if math.Abs(got-want) > 1e-3*want {
			t.Fatalf("integrator |H(%v)| = %v, want %v", f, got, want)
		}
	}
}

func TestParseVCCS(t *testing.T) {
	c, err := Parse(`
V1 in 0 1
G1 out 0 in 0 2m
RL out 0 1k
`)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := DCOperatingPoint(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := sol.Voltage("out")
	if math.Abs(v+2.0) > 1e-6 {
		t.Fatalf("parsed VCCS out = %v, want -2", v)
	}
}
