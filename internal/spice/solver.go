package spice

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/num"
)

// ErrNoConvergence is returned when all convergence aids are exhausted.
var ErrNoConvergence = errors.New("spice: Newton iteration did not converge")

// Options tunes the nonlinear solver. Zero value fields fall back to the
// documented defaults.
type Options struct {
	MaxIter   int     // Newton iterations per attempt (default 150)
	AbsTol    float64 // absolute voltage tolerance, V (default 1e-9)
	RelTol    float64 // relative voltage tolerance (default 1e-6)
	Gmin      float64 // minimum conductance to ground on every node (default 1e-12)
	MaxStep   float64 // max voltage update per Newton iteration, V (default 0.3)
	Trapezoid bool    // use trapezoidal integration in Transient
	// ForceNewton disables the linear transient fast path, running the
	// per-step Newton loop even for linear circuits. It exists for the
	// fast-path-vs-Newton equivalence tests and benchmarks.
	ForceNewton bool
}

func (o Options) withDefaults() Options {
	if o.MaxIter == 0 {
		o.MaxIter = 150
	}
	if o.AbsTol == 0 {
		o.AbsTol = 1e-9
	}
	if o.RelTol == 0 {
		o.RelTol = 1e-6
	}
	if o.Gmin == 0 {
		o.Gmin = 1e-12
	}
	if o.MaxStep == 0 {
		o.MaxStep = 0.3
	}
	return o
}

// Workspace holds the matrix, RHS, iterate, LU and state buffers one
// analysis needs. A campaign trial loop allocates one Workspace per
// worker and threads it through every solve (mirroring the
// signature.CaptureBuffer pattern), so repeated trials on same-sized
// circuits — e.g. perturbed Tow-Thomas netlists in a Monte-Carlo fault
// or yield study — reuse all heavy allocations. Buffers are (re)sized
// and cleared on first use by each analysis; stale contents never affect
// results. Like rng.Stream it is not safe for concurrent use.
type Workspace struct {
	a                *num.Matrix
	b, x, xNew, prev []float64
	lu               *num.LU
}

// NewWorkspace returns an empty workspace; buffers are allocated lazily
// to the size of the first circuit solved with it.
func NewWorkspace() *Workspace { return &Workspace{} }

// ensure sizes the buffers for an n-dimensional MNA system and clears
// the vectors so a fresh analysis never observes a previous trial.
func (w *Workspace) ensure(n int) {
	if w.a == nil || w.a.Rows != n {
		w.a = num.NewMatrix(n, n)
		w.b = make([]float64, n)
		w.x = make([]float64, n)
		w.xNew = make([]float64, n)
		w.prev = make([]float64, n)
		w.lu = nil
		return
	}
	w.a.Zero()
	for i := 0; i < n; i++ {
		w.b[i] = 0
		w.x[i] = 0
		w.xNew[i] = 0
		w.prev[i] = 0
	}
}

// factor (re)factors the workspace matrix into the reusable LU.
func (w *Workspace) factor() error {
	if w.lu == nil || w.lu.Dim() != w.a.Rows {
		lu, err := num.Factor(w.a)
		if err != nil {
			return err
		}
		w.lu = lu
		return nil
	}
	return w.lu.FactorInto(w.a)
}

// solver carries reusable workspaces across Newton iterations and sweeps.
type solver struct {
	c   *Circuit
	opt Options
	ws  *Workspace
	// st is the scratch Stamper handed to Element.Stamp. Stamp takes a
	// *Stamper through an interface, so a stack-local would escape and
	// heap-allocate on every Newton iteration; a solver field keeps the
	// warm trial loop allocation-free.
	st Stamper
}

func newSolver(c *Circuit, opt Options) *solver {
	return newSolverWS(c, opt, nil)
}

// newSolverWS builds a solver over a caller-owned workspace (nil for a
// private one).
func newSolverWS(c *Circuit, opt Options, ws *Workspace) *solver {
	c.assignBranches()
	if ws == nil {
		ws = NewWorkspace()
	}
	ws.ensure(c.Size())
	opt = opt.withDefaults()
	// Linear circuits need no Newton damping: the first iteration lands
	// on the exact solution, so the per-iteration voltage clamp only
	// slows (or, for operating points far from zero — e.g. a shorted
	// gain resistor driving a node to 10⁵ V — prevents) convergence.
	if c.Linear() {
		opt.MaxStep = math.Inf(1)
	}
	return &solver{c: c, opt: opt, ws: ws}
}

// newton runs damped Newton-Raphson from the current iterate with the
// given stamper template (time/dt/prev/DC/srcScale) and gmin. On success
// the workspace x holds the solution.
func (s *solver) newton(tmpl Stamper, gmin float64) error {
	n := s.c.Size()
	nNodes := s.c.NumNodes()
	ws := s.ws
	for iter := 0; iter < s.opt.MaxIter; iter++ {
		ws.a.Zero()
		for i := range ws.b {
			ws.b[i] = 0
		}
		s.st = tmpl
		s.st.A = ws.a
		s.st.B = ws.b
		s.st.X = ws.x
		for _, e := range s.c.elements {
			e.Stamp(&s.st)
		}
		// gmin from every node to ground keeps the matrix nonsingular in
		// the presence of floating or source-follower nodes.
		for i := 0; i < nNodes; i++ {
			ws.a.Add(i, i, gmin)
		}
		if err := ws.factor(); err != nil {
			return fmt.Errorf("spice: singular MNA matrix: %w", err)
		}
		ws.lu.Solve(ws.b, ws.xNew)
		// Damped update with per-variable step clamp on node voltages.
		maxDelta := 0.0
		for i := 0; i < n; i++ {
			d := ws.xNew[i] - ws.x[i]
			if i < nNodes {
				d = num.Clamp(d, -s.opt.MaxStep, s.opt.MaxStep)
			}
			if ad := math.Abs(d); ad > maxDelta && i < nNodes {
				maxDelta = ad
			}
			ws.x[i] += d
		}
		if math.IsNaN(maxDelta) {
			return ErrNoConvergence
		}
		if maxDelta < s.opt.AbsTol+s.opt.RelTol*num.NormInf(ws.x[:nNodes]) {
			return nil
		}
	}
	return ErrNoConvergence
}

// DCOperatingPoint solves the nonlinear DC operating point. It first
// tries plain Newton from a zero (or provided) initial guess, then gmin
// stepping, then source stepping.
func DCOperatingPoint(c *Circuit, opt Options) (*Solution, error) {
	s := newSolver(c, opt)
	return s.dcop(nil)
}

// DCOperatingPointFrom solves the DC operating point starting from a
// previous solution (continuation), which sweep drivers use for speed and
// for hysteresis-free tracking.
func DCOperatingPointFrom(c *Circuit, opt Options, prev *Solution) (*Solution, error) {
	s := newSolver(c, opt)
	return s.dcop(prev)
}

// DCOperatingPointWS is DCOperatingPointFrom with a caller-owned
// workspace, for hot loops that solve the same circuit at many bias
// points (the transistor-level monitor's per-sample Bit evaluation).
func DCOperatingPointWS(c *Circuit, opt Options, prev *Solution, ws *Workspace) (*Solution, error) {
	s := newSolverWS(c, opt, ws)
	return s.dcop(prev)
}

func (s *solver) dcop(init *Solution) (*Solution, error) {
	if err := s.dcopWS(init); err != nil {
		return nil, err
	}
	return s.solution(), nil
}

// dcopWS is dcop leaving the operating point in the workspace iterate
// (ws.x) instead of materializing a Solution — the allocation-free form
// the trial-template engine calls once per trial.
func (s *solver) dcopWS(init *Solution) error {
	if err := s.c.Validate(); err != nil {
		return err
	}
	ws := s.ws
	tmpl := Stamper{DC: true, SrcScale: 1}
	if init != nil && len(init.X) == len(ws.x) {
		copy(ws.x, init.X)
	}
	if err := s.newton(tmpl, s.opt.Gmin); err == nil {
		return nil
	}
	// gmin stepping: solve with a large gmin, then relax it decade by
	// decade, reusing each solution as the next starting point.
	for i := range ws.x {
		ws.x[i] = 0
	}
	converged := true
	for g := 1e-3; g >= s.opt.Gmin; g /= 10 {
		if err := s.newton(tmpl, g); err != nil {
			converged = false
			break
		}
	}
	if converged {
		if err := s.newton(tmpl, s.opt.Gmin); err == nil {
			return nil
		}
	}
	// Source stepping: ramp all independent sources from 10% to 100%.
	for i := range ws.x {
		ws.x[i] = 0
	}
	for scale := 0.1; ; scale += 0.1 {
		if scale > 1 {
			scale = 1
		}
		st := tmpl
		st.SrcScale = scale
		if err := s.newton(st, s.opt.Gmin); err != nil {
			return fmt.Errorf("%w (source stepping failed at %.0f%%)", ErrNoConvergence, scale*100)
		}
		if scale == 1 {
			return nil
		}
	}
}

func (s *solver) solution() *Solution {
	x := make([]float64, len(s.ws.x))
	copy(x, s.ws.x)
	return &Solution{circuit: s.c, X: x}
}

// SweepResult holds a 1-D DC sweep.
type SweepResult struct {
	Values    []float64
	Solutions []*Solution
}

// DCSweep sweeps the DC value of the named VSource over values, solving
// the operating point at each step with continuation.
func DCSweep(c *Circuit, opt Options, sourceName string, values []float64) (*SweepResult, error) {
	e := c.FindElement(sourceName)
	vs, ok := e.(*VSource)
	if !ok {
		return nil, fmt.Errorf("spice: DCSweep source %q not found or not a VSource", sourceName)
	}
	orig := vs.DC()
	defer vs.SetDC(orig)
	s := newSolver(c, opt)
	res := &SweepResult{}
	var prev *Solution
	for _, v := range values {
		vs.SetDC(v)
		sol, err := s.dcop(prev)
		if err != nil {
			return nil, fmt.Errorf("spice: sweep point %s=%g: %w", sourceName, v, err)
		}
		res.Values = append(res.Values, v)
		res.Solutions = append(res.Solutions, sol)
		prev = sol
	}
	return res, nil
}
