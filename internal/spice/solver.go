package spice

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/num"
)

// ErrNoConvergence is returned when all convergence aids are exhausted.
var ErrNoConvergence = errors.New("spice: Newton iteration did not converge")

// Options tunes the nonlinear solver. Zero value fields fall back to the
// documented defaults.
type Options struct {
	MaxIter   int     // Newton iterations per attempt (default 150)
	AbsTol    float64 // absolute voltage tolerance, V (default 1e-9)
	RelTol    float64 // relative voltage tolerance (default 1e-6)
	Gmin      float64 // minimum conductance to ground on every node (default 1e-12)
	MaxStep   float64 // max voltage update per Newton iteration, V (default 0.3)
	Trapezoid bool    // use trapezoidal integration in Transient
}

func (o Options) withDefaults() Options {
	if o.MaxIter == 0 {
		o.MaxIter = 150
	}
	if o.AbsTol == 0 {
		o.AbsTol = 1e-9
	}
	if o.RelTol == 0 {
		o.RelTol = 1e-6
	}
	if o.Gmin == 0 {
		o.Gmin = 1e-12
	}
	if o.MaxStep == 0 {
		o.MaxStep = 0.3
	}
	return o
}

// solver carries reusable workspaces across Newton iterations and sweeps.
type solver struct {
	c    *Circuit
	opt  Options
	a    *num.Matrix
	b    []float64
	x    []float64
	xNew []float64
	lu   *num.LU
}

func newSolver(c *Circuit, opt Options) *solver {
	c.assignBranches()
	n := c.Size()
	s := &solver{
		c:    c,
		opt:  opt.withDefaults(),
		a:    num.NewMatrix(n, n),
		b:    make([]float64, n),
		x:    make([]float64, n),
		xNew: make([]float64, n),
	}
	return s
}

// newton runs damped Newton-Raphson from the current s.x with the given
// stamper template (time/dt/prev/DC/srcScale) and gmin. On success s.x
// holds the solution.
func (s *solver) newton(tmpl Stamper, gmin float64) error {
	n := s.c.Size()
	nNodes := s.c.NumNodes()
	for iter := 0; iter < s.opt.MaxIter; iter++ {
		s.a.Zero()
		for i := range s.b {
			s.b[i] = 0
		}
		st := tmpl
		st.A = s.a
		st.B = s.b
		st.X = s.x
		for _, e := range s.c.elements {
			e.Stamp(&st)
		}
		// gmin from every node to ground keeps the matrix nonsingular in
		// the presence of floating or source-follower nodes.
		for i := 0; i < nNodes; i++ {
			s.a.Add(i, i, gmin)
		}
		if s.lu == nil {
			lu, err := num.Factor(s.a)
			if err != nil {
				return fmt.Errorf("spice: singular MNA matrix: %w", err)
			}
			s.lu = lu
		} else if err := s.lu.FactorInto(s.a); err != nil {
			return fmt.Errorf("spice: singular MNA matrix: %w", err)
		}
		s.lu.Solve(s.b, s.xNew)
		// Damped update with per-variable step clamp on node voltages.
		maxDelta := 0.0
		for i := 0; i < n; i++ {
			d := s.xNew[i] - s.x[i]
			if i < nNodes {
				d = num.Clamp(d, -s.opt.MaxStep, s.opt.MaxStep)
			}
			if ad := math.Abs(d); ad > maxDelta && i < nNodes {
				maxDelta = ad
			}
			s.x[i] += d
		}
		if math.IsNaN(maxDelta) {
			return ErrNoConvergence
		}
		if maxDelta < s.opt.AbsTol+s.opt.RelTol*num.NormInf(s.x[:nNodes]) {
			return nil
		}
	}
	return ErrNoConvergence
}

// DCOperatingPoint solves the nonlinear DC operating point. It first
// tries plain Newton from a zero (or provided) initial guess, then gmin
// stepping, then source stepping.
func DCOperatingPoint(c *Circuit, opt Options) (*Solution, error) {
	s := newSolver(c, opt)
	return s.dcop(nil)
}

// DCOperatingPointFrom solves the DC operating point starting from a
// previous solution (continuation), which sweep drivers use for speed and
// for hysteresis-free tracking.
func DCOperatingPointFrom(c *Circuit, opt Options, prev *Solution) (*Solution, error) {
	s := newSolver(c, opt)
	return s.dcop(prev)
}

func (s *solver) dcop(init *Solution) (*Solution, error) {
	tmpl := Stamper{DC: true, SrcScale: 1}
	if init != nil && len(init.X) == len(s.x) {
		copy(s.x, init.X)
	}
	if err := s.newton(tmpl, s.opt.Gmin); err == nil {
		return s.solution(), nil
	}
	// gmin stepping: solve with a large gmin, then relax it decade by
	// decade, reusing each solution as the next starting point.
	for i := range s.x {
		s.x[i] = 0
	}
	converged := true
	for g := 1e-3; g >= s.opt.Gmin; g /= 10 {
		if err := s.newton(tmpl, g); err != nil {
			converged = false
			break
		}
	}
	if converged {
		if err := s.newton(tmpl, s.opt.Gmin); err == nil {
			return s.solution(), nil
		}
	}
	// Source stepping: ramp all independent sources from 10% to 100%.
	for i := range s.x {
		s.x[i] = 0
	}
	for scale := 0.1; ; scale += 0.1 {
		if scale > 1 {
			scale = 1
		}
		st := tmpl
		st.SrcScale = scale
		if err := s.newton(st, s.opt.Gmin); err != nil {
			return nil, fmt.Errorf("%w (source stepping failed at %.0f%%)", ErrNoConvergence, scale*100)
		}
		if scale == 1 {
			return s.solution(), nil
		}
	}
}

func (s *solver) solution() *Solution {
	x := make([]float64, len(s.x))
	copy(x, s.x)
	return &Solution{circuit: s.c, X: x}
}

// SweepResult holds a 1-D DC sweep.
type SweepResult struct {
	Values    []float64
	Solutions []*Solution
}

// DCSweep sweeps the DC value of the named VSource over values, solving
// the operating point at each step with continuation.
func DCSweep(c *Circuit, opt Options, sourceName string, values []float64) (*SweepResult, error) {
	e := c.FindElement(sourceName)
	vs, ok := e.(*VSource)
	if !ok {
		return nil, fmt.Errorf("spice: DCSweep source %q not found or not a VSource", sourceName)
	}
	orig := vs.DC()
	defer vs.SetDC(orig)
	s := newSolver(c, opt)
	res := &SweepResult{}
	var prev *Solution
	for _, v := range values {
		vs.SetDC(v)
		sol, err := s.dcop(prev)
		if err != nil {
			return nil, fmt.Errorf("spice: sweep point %s=%g: %w", sourceName, v, err)
		}
		res.Values = append(res.Values, v)
		res.Solutions = append(res.Solutions, sol)
		prev = sol
	}
	return res, nil
}

// TransientResult holds a fixed-step transient analysis.
type TransientResult struct {
	Time      []float64
	Solutions []*Solution
}

// VoltageSeries extracts one node's waveform from the result.
func (tr *TransientResult) VoltageSeries(node string) ([]float64, error) {
	out := make([]float64, len(tr.Solutions))
	for i, s := range tr.Solutions {
		v, err := s.Voltage(node)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Transient runs a fixed-timestep transient analysis over [0, dur] with
// the given number of steps. The initial condition is the DC operating
// point at t = 0.
func Transient(c *Circuit, opt Options, dur float64, steps int) (*TransientResult, error) {
	if steps < 1 {
		return nil, fmt.Errorf("spice: transient needs at least 1 step")
	}
	s := newSolver(c, opt)
	op, err := s.dcop(nil)
	if err != nil {
		return nil, fmt.Errorf("spice: transient initial OP: %w", err)
	}
	dt := dur / float64(steps)
	res := &TransientResult{
		Time:      []float64{0},
		Solutions: []*Solution{op},
	}
	prev := make([]float64, len(op.X))
	copy(prev, op.X)
	copy(s.x, op.X)
	for k := 1; k <= steps; k++ {
		t := float64(k) * dt
		tmpl := Stamper{
			Time:        t,
			Dt:          dt,
			Prev:        prev,
			SrcScale:    1,
			Trapezoidal: s.opt.Trapezoid,
		}
		if err := s.newton(tmpl, s.opt.Gmin); err != nil {
			return nil, fmt.Errorf("spice: transient step %d (t=%g): %w", k, t, err)
		}
		sol := s.solution()
		for _, e := range s.c.elements {
			if cap, ok := e.(*Capacitor); ok {
				cap.commitStep(sol.X, prev, dt, s.opt.Trapezoid)
			}
		}
		copy(prev, sol.X)
		res.Time = append(res.Time, t)
		res.Solutions = append(res.Solutions, sol)
	}
	return res, nil
}
