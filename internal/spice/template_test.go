package spice_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/spice"
	"repro/internal/wave"
)

// benchValues is one value assignment for the two-stage RC test circuit.
type benchValues struct {
	r1, c1, r2, c2, gain float64
}

// buildTestCircuit assembles a two-stage filter exercising every element
// kind the template compiles: a waveform-driven VSource, resistors,
// capacitors, a VCVS and a DC ISource.
func buildTestCircuit(v benchValues, stim wave.Waveform) (*spice.Circuit, spice.NodeID) {
	c := spice.New()
	in := c.Node("in")
	a := c.Node("a")
	b := c.Node("b")
	out := c.Node("out")
	c.Add(spice.NewVSourceWave("VIN", in, spice.Ground, stim))
	c.Add(spice.NewResistor("R1", in, a, v.r1))
	c.Add(spice.NewCapacitor("C1", a, spice.Ground, v.c1))
	c.Add(spice.NewVCVS("E1", b, spice.Ground, a, spice.Ground, v.gain))
	c.Add(spice.NewResistor("R2", b, out, v.r2))
	c.Add(spice.NewCapacitor("C2", out, spice.Ground, v.c2))
	c.Add(spice.NewISource("I1", spice.Ground, out, 1e-6))
	return c, out
}

// rebuildRun is the reference path: fresh circuit, generic
// TransientSolver.Run, samples collected through the callback.
func rebuildRun(t *testing.T, v benchValues, stim wave.Waveform, opt spice.Options, dur float64, steps int) []float64 {
	t.Helper()
	ckt, out := buildTestCircuit(v, stim)
	ts := spice.NewTransientSolver(ckt, opt)
	samples := make([]float64, steps+1)
	err := ts.Run(dur, steps, func(k int, _ float64, sol *spice.Solution) {
		samples[k] = sol.VoltageAt(out)
	})
	if err != nil {
		t.Fatalf("rebuild run: %v", err)
	}
	return samples
}

// applyValues mutates a live template to the given value set in place.
func applyValues(t *testing.T, tmpl *spice.CircuitTemplate, v benchValues) {
	t.Helper()
	if err := tmpl.SetResistance("R1", v.r1); err != nil {
		t.Fatal(err)
	}
	if err := tmpl.SetResistance("R2", v.r2); err != nil {
		t.Fatal(err)
	}
	if err := tmpl.SetCapacitance("C1", v.c1); err != nil {
		t.Fatal(err)
	}
	if err := tmpl.SetCapacitance("C2", v.c2); err != nil {
		t.Fatal(err)
	}
}

func testStimulus(t *testing.T) *wave.Multitone {
	t.Helper()
	stim, err := wave.NewMultitone(0.5, 5e3, []int{1, 2, 3},
		[]float64{0.22, 0.13, 0.08}, []float64{0, 0.4, 1.1})
	if err != nil {
		t.Fatal(err)
	}
	return stim
}

// TestCircuitTemplateMatchesRebuild pins the template engine's core
// contract: a trial on a value-mutated template produces bit-identical
// samples to rebuilding the circuit and running the generic
// TransientSolver, for both integration methods and across trials with
// different durations (distinct dt / tick tables).
func TestCircuitTemplateMatchesRebuild(t *testing.T) {
	stim := testStimulus(t)
	T := stim.Period()
	valueSets := []benchValues{
		{r1: 1e3, c1: 100e-9, r2: 2e3, c2: 47e-9, gain: 2},
		{r1: 1.21e3, c1: 82e-9, r2: 1.8e3, c2: 56e-9, gain: 2},
		{r1: 680, c1: 150e-9, r2: 3.3e3, c2: 33e-9, gain: 2},
		{r1: 1e9, c1: 100e-9, r2: 2e3, c2: 47e-9, gain: 2}, // "open" R1
	}
	for _, trapezoid := range []bool{true, false} {
		opt := spice.Options{Trapezoid: trapezoid}
		ckt, out := buildTestCircuit(valueSets[0], stim)
		tmpl, err := spice.NewCircuitTemplate(ckt, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range valueSets {
			applyValues(t, tmpl, v)
			// Vary the span so consecutive trials exercise tick-table
			// extension and distinct dt keys.
			periods := 2 + i%3
			steps := periods * 128
			dur := T * float64(periods)
			got := make([]float64, steps+1)
			err := tmpl.RunTrial(spice.Trial{Dur: dur, Steps: steps, Record: out, Start: 0, Out: got})
			if err != nil {
				t.Fatalf("trapezoid=%v set %d: %v", trapezoid, i, err)
			}
			want := rebuildRun(t, v, stim, opt, dur, steps)
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("trapezoid=%v set %d: step %d: template %v, rebuild %v",
						trapezoid, i, k, got[k], want[k])
				}
			}
		}
	}
}

// TestCircuitTemplateWindowRecording checks the Start/Out windowing
// against a full recording and validates the bounds checks.
func TestCircuitTemplateWindowRecording(t *testing.T) {
	stim := testStimulus(t)
	v := benchValues{r1: 1e3, c1: 100e-9, r2: 2e3, c2: 47e-9, gain: 2}
	steps := 256
	dur := stim.Period() * 2
	full := rebuildRun(t, v, stim, spice.Options{Trapezoid: true}, dur, steps)

	ckt, out := buildTestCircuit(v, stim)
	tmpl, err := spice.NewCircuitTemplate(ckt, spice.Options{Trapezoid: true})
	if err != nil {
		t.Fatal(err)
	}
	window := make([]float64, 128)
	start := 129
	if err := tmpl.RunTrial(spice.Trial{Dur: dur, Steps: steps, Record: out, Start: start, Out: window}); err != nil {
		t.Fatal(err)
	}
	for i, w := range window {
		if w != full[start+i] {
			t.Fatalf("window[%d] = %v, want %v", i, w, full[start+i])
		}
	}
	if err := tmpl.RunTrial(spice.Trial{Dur: dur, Steps: 10, Record: out, Start: 8, Out: window}); err == nil {
		t.Fatal("out-of-range recording window accepted")
	}
	if err := tmpl.RunTrial(spice.Trial{Dur: dur, Steps: 0, Record: out}); err == nil {
		t.Fatal("zero-step trial accepted")
	}
}

// TestCircuitTemplateRunTrialsBlock drives the block API and checks the
// per-trial mutation lands in order.
func TestCircuitTemplateRunTrialsBlock(t *testing.T) {
	stim := testStimulus(t)
	T := stim.Period()
	opt := spice.Options{Trapezoid: true}
	sets := []benchValues{
		{r1: 1e3, c1: 100e-9, r2: 2e3, c2: 47e-9, gain: 2},
		{r1: 1.5e3, c1: 68e-9, r2: 2.2e3, c2: 39e-9, gain: 2},
	}
	ckt, out := buildTestCircuit(sets[0], stim)
	tmpl, err := spice.NewCircuitTemplate(ckt, opt)
	if err != nil {
		t.Fatal(err)
	}
	steps := 256
	results := make([][]float64, len(sets))
	err = spice.RunTrials(tmpl, len(sets), func(i int) (spice.Trial, error) {
		applyValues(t, tmpl, sets[i])
		results[i] = make([]float64, steps+1)
		return spice.Trial{Dur: 2 * T, Steps: steps, Record: out, Start: 0, Out: results[i]}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range sets {
		want := rebuildRun(t, v, stim, opt, 2*T, steps)
		for k := range want {
			if results[i][k] != want[k] {
				t.Fatalf("trial %d step %d: %v != %v", i, k, results[i][k], want[k])
			}
		}
	}
	wantErr := fmt.Errorf("boom")
	err = spice.RunTrials(tmpl, 3, func(i int) (spice.Trial, error) {
		if i == 1 {
			return spice.Trial{}, wantErr
		}
		return spice.Trial{Dur: 2 * T, Steps: steps, Record: out}, nil
	})
	if err == nil {
		t.Fatal("RunTrials swallowed the prepare error")
	}
}

// TestCircuitTemplateRejectsUnsupported checks the construction guards.
func TestCircuitTemplateRejectsUnsupported(t *testing.T) {
	c := spice.New()
	c.Add(spice.NewResistor("R1", c.Node("a"), spice.Ground, -5))
	if _, err := spice.NewCircuitTemplate(c, spice.Options{}); err == nil {
		t.Fatal("invalid circuit accepted")
	}
	src := `* mosfet stage
V1 d 0 1.0
M1 d g 0 nmos W=1u L=65n
V2 g 0 0.8
.end`
	ckt, err := spice.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spice.NewCircuitTemplate(ckt, spice.Options{}); err == nil {
		t.Fatal("nonlinear circuit accepted")
	}
	c2 := spice.New()
	c2.Add(spice.NewResistor("R1", c2.Node("a"), spice.Ground, 1e3))
	tmpl, err := spice.NewCircuitTemplate(c2, spice.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tmpl.SetResistance("R1", -1); err == nil {
		t.Fatal("negative resistance accepted by setter")
	}
	if err := tmpl.SetResistance("nope", 1); err == nil {
		t.Fatal("unknown resistor accepted by setter")
	}
	if err := tmpl.SetCapacitance("R1", 1e-9); err == nil {
		t.Fatal("resistor accepted as capacitor")
	}
	if err := tmpl.SetVSourceWaveform("nope", wave.DC(1)); err == nil {
		t.Fatal("unknown source accepted by setter")
	}
}

// TestCircuitTemplateStatefulWaveform pins bit-identity when the source
// waveform is stateful (wave.Noisy): the template must re-evaluate it
// every trial in step order instead of caching a tick table.
func TestCircuitTemplateStatefulWaveform(t *testing.T) {
	v := benchValues{r1: 1e3, c1: 100e-9, r2: 2e3, c2: 47e-9, gain: 2}
	steps := 200
	dur := 4e-4
	opt := spice.Options{Trapezoid: true}
	mkNoisy := func() wave.Waveform {
		return &noisyCounter{}
	}
	want := rebuildRun(t, v, mkNoisy(), opt, dur, steps)
	ckt, out := buildTestCircuit(v, mkNoisy())
	tmpl, err := spice.NewCircuitTemplate(ckt, opt)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, steps+1)
	if err := tmpl.RunTrial(spice.Trial{Dur: dur, Steps: steps, Record: out, Start: 0, Out: got}); err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("step %d: template %v, rebuild %v", k, got[k], want[k])
		}
	}
}

// noisyCounter is a deterministic stateful waveform: each Eval call
// advances a counter, so caching evaluations across trials (or calling
// in a different order) changes the output.
type noisyCounter struct{ calls int }

func (n *noisyCounter) Eval(t float64) float64 {
	n.calls++
	return 0.5 + 0.01*float64(n.calls%7) + 0.1*t
}
func (n *noisyCounter) Period() float64 { return 2e-4 }

// TestSpiceTemplateTrialAllocationFree pins the hot-path allocation
// contract: a warm template trial — workspace sized, tick tables built,
// solve program compiled — allocates nothing.
func TestSpiceTemplateTrialAllocationFree(t *testing.T) {
	stim := testStimulus(t)
	v := benchValues{r1: 1e3, c1: 100e-9, r2: 2e3, c2: 47e-9, gain: 2}
	ckt, out := buildTestCircuit(v, stim)
	tmpl, err := spice.NewCircuitTemplate(ckt, spice.Options{Trapezoid: true})
	if err != nil {
		t.Fatal(err)
	}
	steps := 256
	tr := spice.Trial{Dur: 2 * stim.Period(), Steps: steps, Record: out, Start: 0, Out: make([]float64, steps+1)}
	if err := tmpl.RunTrial(tr); err != nil {
		t.Fatal(err)
	}
	var trialErr error
	allocs := testing.AllocsPerRun(20, func() {
		if err := tmpl.RunTrial(tr); err != nil {
			trialErr = err
		}
	})
	if trialErr != nil {
		t.Fatal(trialErr)
	}
	if allocs != 0 {
		t.Fatalf("warm template trial allocates %.1f times per run, want 0", allocs)
	}
}

// TestRunTrialsBatchMatchesRunTrial pins the cross-trial batched runner
// to the rebuild reference path: a block of trials with mixed value
// sets, durations and step counts — more trials than lanes, so the
// work-conserving refill, the fused-kernel recompile and the
// partial-occupancy tail all execute — must produce bit-identical
// samples to rebuilding and rerunning each trial alone.
func TestRunTrialsBatchMatchesRunTrial(t *testing.T) {
	stim := testStimulus(t)
	T := stim.Period()
	opt := spice.Options{Trapezoid: true}
	sets := []benchValues{
		{r1: 1e3, c1: 100e-9, r2: 2e3, c2: 47e-9, gain: 2},
		{r1: 1.21e3, c1: 82e-9, r2: 1.8e3, c2: 56e-9, gain: 2},
		{r1: 680, c1: 150e-9, r2: 3.3e3, c2: 33e-9, gain: 2},
		{r1: 1e9, c1: 100e-9, r2: 2e3, c2: 47e-9, gain: 2},
	}
	const trials = 11
	type spec struct {
		v     benchValues
		steps int
		dur   float64
	}
	specs := make([]spec, trials)
	for i := range specs {
		periods := 1 + i%3
		specs[i] = spec{v: sets[i%len(sets)], steps: periods * 128, dur: T * float64(periods)}
	}
	ts := make([]*spice.CircuitTemplate, spice.BatchLanes)
	var out spice.NodeID
	for l := range ts {
		ckt, o := buildTestCircuit(sets[0], stim)
		tmpl, err := spice.NewCircuitTemplate(ckt, opt)
		if err != nil {
			t.Fatal(err)
		}
		ts[l], out = tmpl, o
	}
	results := make([][]float64, trials)
	finished := make([]bool, trials)
	err := spice.RunTrialsBatch(ts, trials,
		func(i, lane int) (spice.Trial, error) {
			applyValues(t, ts[lane], specs[i].v)
			results[i] = make([]float64, specs[i].steps+1)
			return spice.Trial{Dur: specs[i].dur, Steps: specs[i].steps, Record: out, Start: 0, Out: results[i]}, nil
		},
		func(i, lane int) error {
			finished[i] = true
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range specs {
		if !finished[i] {
			t.Fatalf("trial %d never finished", i)
		}
		want := rebuildRun(t, sp.v, stim, opt, sp.dur, sp.steps)
		for k := range want {
			if results[i][k] != want[k] {
				t.Fatalf("trial %d step %d: batch %v, rebuild %v", i, k, results[i][k], want[k])
			}
		}
	}
}

// TestRunTrialsBatchRejectsBadPools checks the batch runner's pool
// validation and error propagation.
func TestRunTrialsBatchRejectsBadPools(t *testing.T) {
	stim := testStimulus(t)
	v := benchValues{r1: 1e3, c1: 100e-9, r2: 2e3, c2: 47e-9, gain: 2}
	opt := spice.Options{Trapezoid: true}
	mk := func() (*spice.CircuitTemplate, spice.NodeID) {
		ckt, out := buildTestCircuit(v, stim)
		tmpl, err := spice.NewCircuitTemplate(ckt, opt)
		if err != nil {
			t.Fatal(err)
		}
		return tmpl, out
	}
	prep := func(out spice.NodeID, buf []float64) func(i, lane int) (spice.Trial, error) {
		return func(i, lane int) (spice.Trial, error) {
			return spice.Trial{Dur: 2 * stim.Period(), Steps: 128, Record: out, Start: 0, Out: buf}, nil
		}
	}
	done := func(i, lane int) error { return nil }
	buf := make([]float64, 129)
	if err := spice.RunTrialsBatch(nil, 1, nil, nil); err == nil {
		t.Fatal("empty template pool accepted")
	}
	a, out := mk()
	if err := spice.RunTrialsBatch([]*spice.CircuitTemplate{a, a}, 2, prep(out, buf), done); err == nil {
		t.Fatal("duplicate template accepted")
	}
	small := spice.New()
	small.Add(spice.NewResistor("R1", small.Node("x"), spice.Ground, 1e3))
	small.Add(spice.NewVSourceWave("V1", small.Node("x"), spice.Ground, stim))
	tiny, err := spice.NewCircuitTemplate(small, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := spice.RunTrialsBatch([]*spice.CircuitTemplate{a, tiny}, 2, prep(out, buf), done); err == nil {
		t.Fatal("mixed-dimension pool accepted")
	}
	b, _ := mk()
	wantErr := fmt.Errorf("boom")
	err = spice.RunTrialsBatch([]*spice.CircuitTemplate{a, b}, 3,
		func(i, lane int) (spice.Trial, error) {
			if i == 2 {
				return spice.Trial{}, wantErr
			}
			return prep(out, buf)(i, lane)
		}, done)
	if err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("prepare error not propagated: %v", err)
	}
	err = spice.RunTrialsBatch([]*spice.CircuitTemplate{a, b}, 2, prep(out, buf),
		func(i, lane int) error { return wantErr })
	if err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("finish error not propagated: %v", err)
	}
}
