package spice

import "fmt"

// TransientResult holds a fixed-step transient analysis.
type TransientResult struct {
	Time      []float64
	Solutions []*Solution
}

// VoltageSeries extracts one node's waveform from the result.
func (tr *TransientResult) VoltageSeries(node string) ([]float64, error) {
	out := make([]float64, len(tr.Solutions))
	for i, s := range tr.Solutions {
		v, err := s.Voltage(node)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// TransientSolver is a reusable fixed-timestep transient engine for one
// circuit. It exists to make SPICE-backed Monte-Carlo campaigns viable:
//
//   - Linear circuits (Circuit.Linear, i.e. no MOSFETs) skip the
//     per-step Newton loop entirely. With a fixed timestep their MNA
//     matrix is constant, so the solver factors the LU once and only
//     refreshes the RHS and re-solves each step — the per-step cost
//     drops from O(iterations·n³) to O(n²). The result is bit-identical
//     to the Newton path (the Newton iteration on a linear system lands
//     on the same LU solution), which the equivalence test pins down.
//   - All matrix/RHS/iterate/state buffers live in a Workspace that can
//     be shared across trials (one per campaign worker), so repeated
//     runs allocate nothing but the caller's own samples.
//   - Run streams each accepted step through a callback instead of
//     materializing the full waveform; signature capture keeps only the
//     steady-state samples it needs.
//
// A TransientSolver is not safe for concurrent use (it owns mutable
// element state and a workspace).
type TransientSolver struct {
	c      *Circuit
	opt    Options
	sv     *solver
	linear bool
}

// NewTransientSolver builds a transient engine with a private workspace.
func NewTransientSolver(c *Circuit, opt Options) *TransientSolver {
	return NewTransientSolverWS(c, opt, nil)
}

// NewTransientSolverWS builds a transient engine over a caller-owned
// workspace so campaign trial loops can reuse allocations across
// circuits (nil ws allocates a private one).
func NewTransientSolverWS(c *Circuit, opt Options, ws *Workspace) *TransientSolver {
	sv := newSolverWS(c, opt, ws)
	return &TransientSolver{
		c:      c,
		opt:    sv.opt,
		sv:     sv,
		linear: c.Linear() && !sv.opt.ForceNewton,
	}
}

// Linear reports whether the single-factorization fast path is active.
func (ts *TransientSolver) Linear() bool { return ts.linear }

// resetDynamicState clears per-run element history (capacitor companion
// currents) so repeated Runs on one solver start from rest.
func (ts *TransientSolver) resetDynamicState() {
	for _, e := range ts.c.elements {
		if cap, ok := e.(*Capacitor); ok {
			cap.prevCur = 0
		}
	}
}

// Run integrates the circuit over [0, dur] in the given number of fixed
// steps, starting from the DC operating point at t = 0. onStep is called
// for every accepted point — step 0 is the operating point, step k the
// solution at t = k·dur/steps. The solution passed to onStep reuses the
// solver's buffers: clone it (Solution.Clone) to keep it beyond the
// callback.
func (ts *TransientSolver) Run(dur float64, steps int, onStep func(step int, t float64, sol *Solution)) error {
	if steps < 1 {
		return fmt.Errorf("spice: transient needs at least 1 step")
	}
	ts.resetDynamicState()
	sv := ts.sv
	ws := sv.ws
	for i := range ws.x {
		ws.x[i] = 0
	}
	op, err := sv.dcop(nil)
	if err != nil {
		return fmt.Errorf("spice: transient initial OP: %w", err)
	}
	copy(ws.prev, op.X)
	copy(ws.x, op.X)
	if onStep != nil {
		onStep(0, 0, op)
	}
	dt := dur / float64(steps)
	live := &Solution{circuit: ts.c, X: ws.x}
	var caps []*Capacitor
	for _, e := range ts.c.elements {
		if cap, ok := e.(*Capacitor); ok {
			caps = append(caps, cap)
		}
	}
	commit := func() {
		for _, cap := range caps {
			cap.commitStep(ws.x, ws.prev, dt, ts.opt.Trapezoid)
		}
		copy(ws.prev, ws.x)
	}
	if !ts.linear {
		for k := 1; k <= steps; k++ {
			t := float64(k) * dt
			tmpl := Stamper{
				Time:        t,
				Dt:          dt,
				Prev:        ws.prev,
				SrcScale:    1,
				Trapezoidal: ts.opt.Trapezoid,
			}
			if err := sv.newton(tmpl, ts.opt.Gmin); err != nil {
				return fmt.Errorf("spice: transient step %d (t=%g): %w", k, t, err)
			}
			commit()
			if onStep != nil {
				onStep(k, t, live)
			}
		}
		return nil
	}
	// Linear fast path: the matrix is constant for a fixed dt, so stamp
	// and factor it once; per step only the RHS is rebuilt (matrix writes
	// land in a discard view) and the factored system re-solved.
	nNodes := ts.c.NumNodes()
	ws.a.Zero()
	for i := range ws.b {
		ws.b[i] = 0
	}
	st := Stamper{
		A: ws.a, B: ws.b, X: ws.x,
		Time: dt, Dt: dt, Prev: ws.prev,
		SrcScale: 1, Trapezoidal: ts.opt.Trapezoid,
	}
	for _, e := range ts.c.elements {
		e.Stamp(&st)
	}
	for i := 0; i < nNodes; i++ {
		ws.a.Add(i, i, ts.opt.Gmin)
	}
	if err := ws.factor(); err != nil {
		return fmt.Errorf("spice: singular MNA matrix: %w", err)
	}
	// Only elements that contribute to the RHS need restamping per step;
	// purely matrix-stamping elements (resistors, controlled sources) are
	// skipped. Unknown element kinds are conservatively kept. Skipping
	// preserves bit-identity: the surviving RHS writes keep their
	// relative order and the skipped elements never wrote to it.
	rhs := make([]Element, 0, len(ts.c.elements))
	for _, e := range ts.c.elements {
		switch e.(type) {
		case *Resistor, *VCVS, *VCCS:
		default:
			rhs = append(rhs, e)
		}
	}
	for k := 1; k <= steps; k++ {
		t := float64(k) * dt
		for i := range ws.b {
			ws.b[i] = 0
		}
		st := Stamper{
			A: nullMatrix{}, B: ws.b, X: ws.x,
			Time: t, Dt: dt, Prev: ws.prev,
			SrcScale: 1, Trapezoidal: ts.opt.Trapezoid,
		}
		for _, e := range rhs {
			e.Stamp(&st)
		}
		ws.lu.Solve(ws.b, ws.x)
		commit()
		if onStep != nil {
			onStep(k, t, live)
		}
	}
	return nil
}

// Transient runs a fixed-timestep transient analysis over [0, dur] with
// the given number of steps, materializing every solution. The initial
// condition is the DC operating point at t = 0. Campaign code that only
// needs a node waveform should prefer TransientSolver.Run, which streams
// steps without retaining them.
func Transient(c *Circuit, opt Options, dur float64, steps int) (*TransientResult, error) {
	ts := NewTransientSolver(c, opt)
	res := &TransientResult{
		Time:      make([]float64, 0, steps+1),
		Solutions: make([]*Solution, 0, steps+1),
	}
	err := ts.Run(dur, steps, func(k int, t float64, sol *Solution) {
		res.Time = append(res.Time, t)
		res.Solutions = append(res.Solutions, sol.Clone())
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
