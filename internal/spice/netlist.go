package spice

import (
	"bufio"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/mos"
)

// ParseValue parses a SPICE-style number with an optional engineering
// suffix: f p n u m k meg g t (case-insensitive). "2.2k" -> 2200.
func ParseValue(s string) (float64, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" {
		return 0, fmt.Errorf("spice: empty value")
	}
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "meg"):
		mult, s = 1e6, s[:len(s)-3]
	case strings.HasSuffix(s, "f"):
		mult, s = 1e-15, s[:len(s)-1]
	case strings.HasSuffix(s, "p"):
		mult, s = 1e-12, s[:len(s)-1]
	case strings.HasSuffix(s, "n"):
		mult, s = 1e-9, s[:len(s)-1]
	case strings.HasSuffix(s, "u"):
		mult, s = 1e-6, s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		mult, s = 1e-3, s[:len(s)-1]
	case strings.HasSuffix(s, "k"):
		mult, s = 1e3, s[:len(s)-1]
	case strings.HasSuffix(s, "g"):
		mult, s = 1e9, s[:len(s)-1]
	case strings.HasSuffix(s, "t"):
		mult, s = 1e12, s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("spice: bad numeric value %q: %w", s, err)
	}
	return v * mult, nil
}

// FormatValue renders v with an engineering suffix, for netlist echoing.
func FormatValue(v float64) string {
	av := math.Abs(v)
	switch {
	case av == 0:
		return "0"
	case av >= 1e9:
		return trimZeros(v/1e9) + "g"
	case av >= 1e6:
		return trimZeros(v/1e6) + "meg"
	case av >= 1e3:
		return trimZeros(v/1e3) + "k"
	case av >= 1:
		return trimZeros(v)
	case av >= 1e-3:
		return trimZeros(v*1e3) + "m"
	case av >= 1e-6:
		return trimZeros(v*1e6) + "u"
	case av >= 1e-9:
		return trimZeros(v*1e9) + "n"
	case av >= 1e-12:
		return trimZeros(v*1e12) + "p"
	default:
		return trimZeros(v*1e15) + "f"
	}
}

func trimZeros(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// ModelSet maps model names referenced by M lines to device parameters.
// Parse seeds it with "nmos" and "pmos" defaults.
type ModelSet map[string]mos.Params

// subcktDef is a parsed .subckt template.
type subcktDef struct {
	name  string
	ports []string
	lines []string
}

// Parse reads a SPICE-like netlist. Supported cards:
//
//	R<name> n+ n- value
//	C<name> n+ n- value
//	V<name> n+ n- [DC] value
//	I<name> n+ n- [DC] value
//	E<name> n+ n- nc+ nc- gain        (VCVS)
//	M<name> nd ng ns model W=... L=...
//	X<name> n1 n2 ... subcktname      (subcircuit instance)
//	.model <name> nmos|pmos [VTO=] [KP=] [LAMBDA=] [N=]
//	.subckt <name> port1 port2 ...  /  .ends
//	* comment, blank lines, .end
//
// Node "0" is ground. Subcircuit-internal nodes and element names are
// prefixed with "<instance>." on expansion; instances may nest up to a
// small depth. Returns the populated circuit.
func Parse(src string) (*Circuit, error) {
	c := New()
	models := ModelSet{
		"nmos": mos.Default65nmNMOS(),
		"pmos": mos.Default65nmPMOS(),
	}
	sc := bufio.NewScanner(strings.NewReader(src))
	var lines []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		if i := strings.Index(line, ";"); i >= 0 {
			line = strings.TrimSpace(line[:i])
			if line == "" {
				continue
			}
		}
		lines = append(lines, line)
	}
	// First pass: collect .model cards and .subckt blocks.
	subckts := map[string]*subcktDef{}
	var topLines []string
	var cur *subcktDef
	for ln, line := range lines {
		low := strings.ToLower(line)
		switch {
		case strings.HasPrefix(low, ".model"):
			if cur != nil {
				return nil, fmt.Errorf("spice: line %d: .model inside .subckt", ln+1)
			}
			if err := parseModel(line, models); err != nil {
				return nil, err
			}
		case strings.HasPrefix(low, ".subckt"):
			if cur != nil {
				return nil, fmt.Errorf("spice: line %d: nested .subckt definition", ln+1)
			}
			f := strings.Fields(line)
			if len(f) < 3 {
				return nil, fmt.Errorf("spice: line %d: .subckt needs a name and ports", ln+1)
			}
			cur = &subcktDef{name: strings.ToLower(f[1]), ports: f[2:]}
		case strings.HasPrefix(low, ".ends"):
			if cur == nil {
				return nil, fmt.Errorf("spice: line %d: .ends without .subckt", ln+1)
			}
			subckts[cur.name] = cur
			cur = nil
		case cur != nil:
			cur.lines = append(cur.lines, line)
		default:
			topLines = append(topLines, line)
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("spice: unterminated .subckt %s", cur.name)
	}
	for ln, line := range topLines {
		low := strings.ToLower(line)
		if low == ".end" {
			continue
		}
		if strings.HasPrefix(low, ".") {
			return nil, fmt.Errorf("spice: line %d: unsupported directive %q", ln+1, line)
		}
		if err := parseTopOrInstance(c, line, models, subckts, 0); err != nil {
			return nil, fmt.Errorf("spice: line %d: %w", ln+1, err)
		}
	}
	return c, nil
}

// maxSubcktDepth bounds recursive subcircuit expansion.
const maxSubcktDepth = 8

func parseTopOrInstance(c *Circuit, line string, models ModelSet, subckts map[string]*subcktDef, depth int) error {
	f := strings.Fields(line)
	if strings.ToUpper(f[0][:1]) != "X" {
		return parseElement(c, line, models)
	}
	if depth >= maxSubcktDepth {
		return fmt.Errorf("subcircuit nesting deeper than %d", maxSubcktDepth)
	}
	if len(f) < 2 {
		return fmt.Errorf("%s needs nodes and a subcircuit name", f[0])
	}
	def, ok := subckts[strings.ToLower(f[len(f)-1])]
	if !ok {
		return fmt.Errorf("unknown subcircuit %q", f[len(f)-1])
	}
	nodes := f[1 : len(f)-1]
	if len(nodes) != len(def.ports) {
		return fmt.Errorf("%s connects %d nodes, subcircuit %s has %d ports",
			f[0], len(nodes), def.name, len(def.ports))
	}
	portMap := map[string]string{}
	for i, p := range def.ports {
		portMap[p] = nodes[i]
	}
	prefix := f[0] + "."
	for _, raw := range def.lines {
		mapped, err := remapSubcktLine(raw, portMap, prefix)
		if err != nil {
			return fmt.Errorf("in subcircuit %s: %w", def.name, err)
		}
		if err := parseTopOrInstance(c, mapped, models, subckts, depth+1); err != nil {
			return fmt.Errorf("in subcircuit %s: %w", def.name, err)
		}
	}
	return nil
}

// remapSubcktLine renames the element and substitutes port/internal node
// names for one line of a subcircuit body.
func remapSubcktLine(line string, portMap map[string]string, prefix string) (string, error) {
	f := strings.Fields(line)
	kind := strings.ToUpper(f[0][:1])
	var nodeCount int
	switch kind {
	case "R", "C", "V", "I":
		nodeCount = 2
	case "M":
		nodeCount = 3
	case "E", "G":
		nodeCount = 4
	case "X":
		nodeCount = len(f) - 2 // all operands but the subckt name
	default:
		return "", fmt.Errorf("unsupported element %q inside subcircuit", f[0])
	}
	if len(f) < 1+nodeCount {
		return "", fmt.Errorf("element %q has too few operands", f[0])
	}
	out := make([]string, len(f))
	copy(out, f)
	// Keep the kind letter first (dispatch relies on it): R1 inside
	// instance Xa becomes "RXa.R1".
	out[0] = f[0][:1] + prefix + f[0]
	mapNode := func(n string) string {
		if n == "0" || n == "gnd" || n == "GND" {
			return "0"
		}
		if ext, ok := portMap[n]; ok {
			return ext
		}
		return prefix + n
	}
	for i := 1; i <= nodeCount; i++ {
		out[i] = mapNode(f[i])
	}
	return strings.Join(out, " "), nil
}

func parseModel(line string, models ModelSet) error {
	f := strings.Fields(line)
	if len(f) < 3 {
		return fmt.Errorf("spice: malformed .model line %q", line)
	}
	name := strings.ToLower(f[1])
	var p mos.Params
	switch strings.ToLower(f[2]) {
	case "nmos":
		p = mos.Default65nmNMOS()
	case "pmos":
		p = mos.Default65nmPMOS()
	default:
		return fmt.Errorf("spice: unknown model kind %q", f[2])
	}
	for _, kv := range f[3:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("spice: malformed model parameter %q", kv)
		}
		x, err := ParseValue(val)
		if err != nil {
			return err
		}
		switch strings.ToLower(key) {
		case "vto", "vth":
			p.VTH0 = math.Abs(x)
		case "kp":
			p.KP = x
		case "lambda":
			p.Lambda = x
		case "n":
			p.N = x
		default:
			return fmt.Errorf("spice: unknown model parameter %q", key)
		}
	}
	models[name] = p
	return nil
}

func parseElement(c *Circuit, line string, models ModelSet) error {
	f := strings.Fields(line)
	name := f[0]
	kind := strings.ToUpper(name[:1])
	switch kind {
	case "R", "C":
		if len(f) != 4 {
			return fmt.Errorf("%s needs 3 operands", name)
		}
		v, err := ParseValue(f[3])
		if err != nil {
			return err
		}
		if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			return fmt.Errorf("%s value %g must be positive and finite", name, v)
		}
		p, m := c.Node(f[1]), c.Node(f[2])
		if kind == "R" {
			c.Add(NewResistor(name, p, m, v))
		} else {
			c.Add(NewCapacitor(name, p, m, v))
		}
	case "V", "I":
		args := f[1:]
		if len(args) == 4 && strings.EqualFold(args[2], "dc") {
			args = []string{args[0], args[1], args[3]}
		}
		if len(args) != 3 {
			return fmt.Errorf("%s needs n+ n- value", name)
		}
		v, err := ParseValue(args[2])
		if err != nil {
			return err
		}
		p, m := c.Node(args[0]), c.Node(args[1])
		if kind == "V" {
			c.Add(NewVSource(name, p, m, v))
		} else {
			c.Add(NewISource(name, p, m, v))
		}
	case "E", "G":
		if len(f) != 6 {
			return fmt.Errorf("%s needs n+ n- nc+ nc- gain", name)
		}
		g, err := ParseValue(f[5])
		if err != nil {
			return err
		}
		if kind == "E" {
			c.Add(NewVCVS(name, c.Node(f[1]), c.Node(f[2]), c.Node(f[3]), c.Node(f[4]), g))
		} else {
			c.Add(NewVCCS(name, c.Node(f[1]), c.Node(f[2]), c.Node(f[3]), c.Node(f[4]), g))
		}
	case "M":
		if len(f) < 5 {
			return fmt.Errorf("%s needs nd ng ns model [W= L=]", name)
		}
		model, ok := models[strings.ToLower(f[4])]
		if !ok {
			return fmt.Errorf("unknown model %q", f[4])
		}
		w, l := 1e-6, 180e-9
		for _, kv := range f[5:] {
			key, val, found := strings.Cut(kv, "=")
			if !found {
				return fmt.Errorf("malformed parameter %q", kv)
			}
			x, err := ParseValue(val)
			if err != nil {
				return err
			}
			switch strings.ToUpper(key) {
			case "W":
				w = x
			case "L":
				l = x
			default:
				return fmt.Errorf("unknown MOSFET parameter %q", key)
			}
		}
		if w <= 0 || l <= 0 || math.IsInf(w, 0) || math.IsInf(l, 0) {
			return fmt.Errorf("%s needs positive finite W and L, got W=%g L=%g", name, w, l)
		}
		dev := mos.Device{Name: name, W: w, L: l, P: model}
		c.Add(NewMOSFET(name, c.Node(f[1]), c.Node(f[2]), c.Node(f[3]), dev))
	default:
		return fmt.Errorf("unknown element kind %q", name)
	}
	return nil
}
