package spice

import (
	"math"
	"testing"

	"repro/internal/mos"
	"repro/internal/wave"
)

func mosDevice() mos.Device {
	return mos.NewDevice("M1", 1800, 180, mos.Default65nmNMOS())
}

// rcNetlist builds a driven RC low-pass: V1 -> R1 -> out -> C1 -> gnd.
func rcNetlist(w wave.Waveform) *Circuit {
	c := New()
	in, out := c.Node("in"), c.Node("out")
	if w != nil {
		c.Add(NewVSourceWave("V1", in, Ground, w))
	} else {
		c.Add(NewVSource("V1", in, Ground, 1))
	}
	c.Add(NewResistor("R1", in, out, 1e3))
	c.Add(NewCapacitor("C1", out, Ground, 1e-6))
	return c
}

// TestNonPhysicalElementFailsLoudly pins the panic-free misuse
// contract: a programmatically constructed circuit with a non-positive
// resistance is registered without panicking, and every analysis on it
// reports the recorded element error instead of solving garbage.
func TestNonPhysicalElementFailsLoudly(t *testing.T) {
	c := New()
	in := c.Node("in")
	c.Add(NewVSource("V1", in, Ground, 1))
	c.Add(NewResistor("R1", in, Ground, -1e3))
	if err := c.Validate(); err == nil {
		t.Fatal("negative resistance not recorded")
	}
	if _, err := DCOperatingPoint(c, Options{}); err == nil {
		t.Fatal("DC analysis solved a circuit with a negative resistance")
	}
	if err := NewTransientSolver(c, Options{}).Run(1e-3, 10, nil); err == nil {
		t.Fatal("transient solved a circuit with a negative resistance")
	}
	c2 := New()
	n := c2.Node("n")
	c2.Add(NewISource("I1", Ground, n, 1e-3))
	c2.Add(NewCapacitor("C1", n, Ground, math.NaN()))
	if _, err := DCOperatingPoint(c2, Options{}); err == nil {
		t.Fatal("NaN capacitance accepted")
	}
}

func TestCircuitLinearDetection(t *testing.T) {
	if !rcNetlist(nil).Linear() {
		t.Fatal("RC netlist not detected as linear")
	}
	c := rcNetlist(nil)
	d := c.Node("d")
	c.Add(NewMOSFET("M1", d, c.Node("in"), Ground, mosDevice()))
	if c.Linear() {
		t.Fatal("MOSFET circuit detected as linear")
	}
	if !NewTransientSolver(rcNetlist(nil), Options{}).Linear() {
		t.Fatal("fast path inactive on a linear circuit")
	}
	if NewTransientSolver(rcNetlist(nil), Options{ForceNewton: true}).Linear() {
		t.Fatal("ForceNewton did not disable the fast path")
	}
}

// TestLinearFastPathBitIdenticalToNewton pins the fast path's contract:
// on a linear circuit the single-factorization path reproduces the
// per-step Newton baseline bit for bit (the Newton iteration on a linear
// system converges onto exactly the same LU solution).
func TestLinearFastPathBitIdenticalToNewton(t *testing.T) {
	stim := wave.Sine{Amp: 0.5, Freq: 1e3, Offset: 0.2}
	for _, trap := range []bool{false, true} {
		run := func(force bool) []float64 {
			c := rcNetlist(stim)
			ts := NewTransientSolver(c, Options{Trapezoid: trap, ForceNewton: force})
			if ts.Linear() == force {
				t.Fatalf("fast path state wrong (force=%v)", force)
			}
			out := c.Node("out")
			var vs []float64
			if err := ts.Run(5e-3, 2000, func(k int, tt float64, sol *Solution) {
				vs = append(vs, sol.VoltageAt(out))
			}); err != nil {
				t.Fatal(err)
			}
			return vs
		}
		fast, newton := run(false), run(true)
		if len(fast) != 2001 || len(newton) != 2001 {
			t.Fatalf("step counts: fast %d, newton %d", len(fast), len(newton))
		}
		for i := range fast {
			if fast[i] != newton[i] {
				t.Fatalf("trap=%v: step %d diverges: fast %v != newton %v",
					trap, i, fast[i], newton[i])
			}
		}
	}
}

// TestTransientSolverWorkspaceReuse runs the same analysis twice through
// one shared workspace (the campaign trial pattern) and once through a
// fresh solver; all three must agree bit for bit, proving stale buffer
// contents never leak into results.
func TestTransientSolverWorkspaceReuse(t *testing.T) {
	stim := wave.Sine{Amp: 1, Freq: 2e3}
	ws := NewWorkspace()
	run := func(ws *Workspace, rOhms float64) []float64 {
		c := New()
		in, out := c.Node("in"), c.Node("out")
		c.Add(NewVSourceWave("V1", in, Ground, stim))
		c.Add(NewResistor("R1", in, out, rOhms))
		c.Add(NewCapacitor("C1", out, Ground, 1e-7))
		ts := NewTransientSolverWS(c, Options{Trapezoid: true}, ws)
		var vs []float64
		if err := ts.Run(2e-3, 500, func(k int, tt float64, sol *Solution) {
			vs = append(vs, sol.VoltageAt(out))
		}); err != nil {
			t.Fatal(err)
		}
		return vs
	}
	first := run(ws, 1e3)
	run(ws, 22e3) // pollute the workspace with a different circuit
	again := run(ws, 1e3)
	fresh := run(nil, 1e3)
	for i := range first {
		if first[i] != again[i] || first[i] != fresh[i] {
			t.Fatalf("step %d: workspace reuse changed the result: %v / %v / %v",
				i, first[i], again[i], fresh[i])
		}
	}
}

// TestTransientSolverRepeatedRunsStartFromRest pins resetDynamicState:
// back-to-back Runs on one solver must be identical (capacitor companion
// state from the previous run cleared).
func TestTransientSolverRepeatedRunsStartFromRest(t *testing.T) {
	stim := wave.Sine{Amp: 1, Freq: 2e3}
	c := rcNetlist(stim)
	ts := NewTransientSolver(c, Options{Trapezoid: true})
	out := c.Node("out")
	capture := func() []float64 {
		var vs []float64
		if err := ts.Run(1e-3, 400, func(k int, tt float64, sol *Solution) {
			vs = append(vs, sol.VoltageAt(out))
		}); err != nil {
			t.Fatal(err)
		}
		return vs
	}
	a, b := capture(), capture()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: repeated Run diverges: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestTransientMatchesAnalyticRC checks the streamed fast-path solution
// against the closed-form RC step response (the source steps at t=0+ so
// the DC operating point starts the capacitor discharged).
func TestTransientMatchesAnalyticRC(t *testing.T) {
	c := New()
	in, out := c.Node("in"), c.Node("out")
	c.Add(NewVSourceWave("V1", in, Ground, stepWave{at: 0, lo: 0, hi: 1}))
	c.Add(NewResistor("R1", in, out, 1e3))
	c.Add(NewCapacitor("C1", out, Ground, 1e-6))
	ts := NewTransientSolver(c, Options{Trapezoid: true})
	if !ts.Linear() {
		t.Fatal("expected fast path")
	}
	worst := 0.0
	err := ts.Run(5e-3, 5000, func(k int, tt float64, sol *Solution) {
		want := 1 - math.Exp(-tt/1e-3)
		if d := math.Abs(sol.VoltageAt(out) - want); d > worst {
			worst = d
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if worst > 2e-3 {
		t.Fatalf("worst error vs analytic RC charge = %v", worst)
	}
}

// TestDCOperatingPointWSReuse solves the same nonlinear circuit twice
// through a shared workspace with continuation and checks both
// solutions agree with the cold solve.
func TestDCOperatingPointWSReuse(t *testing.T) {
	build := func() *Circuit {
		c := New()
		vdd, d := c.Node("vdd"), c.Node("d")
		c.Add(NewVSource("VDD", vdd, Ground, 1.2))
		c.Add(NewResistor("RD", vdd, d, 20e3))
		g := c.Node("g")
		c.Add(NewVSource("VG", g, Ground, 0.8))
		c.Add(NewMOSFET("M1", d, g, Ground, mosDevice()))
		return c
	}
	cold, err := DCOperatingPoint(build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace()
	var prev *Solution
	for i := 0; i < 3; i++ {
		sol, err := DCOperatingPointWS(build(), Options{}, prev, ws)
		if err != nil {
			t.Fatal(err)
		}
		vCold, _ := cold.Voltage("d")
		vWS, _ := sol.Voltage("d")
		if math.Abs(vCold-vWS) > 1e-9 {
			t.Fatalf("iteration %d: WS solve %v != cold solve %v", i, vWS, vCold)
		}
		prev = sol
	}
}
