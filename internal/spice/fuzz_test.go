package spice

import (
	"strings"
	"testing"
)

// FuzzParseValue: the value parser must never panic and must round-trip
// everything it accepts through FormatValue within precision.
func FuzzParseValue(f *testing.F) {
	for _, seed := range []string{"1k", "2.2k", "1meg", "-4.7u", "180n", "", "xyz", "1e-3", "NaN", "Inf", "1kk"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseValue(s)
		if err != nil {
			return
		}
		if v != v { // NaN parses via strconv; formatting it must not panic
			_ = FormatValue(v)
			return
		}
		_ = FormatValue(v)
	})
}

// FuzzParse: arbitrary netlist text must never panic the parser. The
// non-positive and non-finite R/C/W/L seeds pin the validation path that
// guards the element constructors (which themselves no longer panic).
func FuzzParse(f *testing.F) {
	f.Add("V1 a 0 1\nR1 a 0 1k\n")
	f.Add(".subckt s a\nR1 a 0 1k\n.ends\nX1 b s\nV1 b 0 1\n")
	f.Add(".model m nmos VTO=0.4\nM1 d g 0 m W=1u L=180n\n")
	f.Add("* comment\n.end\n")
	f.Add("R1 a 0 0\n")
	f.Add("R1 a 0 -1k\n")
	f.Add("C1 a 0 -1n\n")
	f.Add("C1 a 0 NaN\n")
	f.Add("R1 a 0 Inf\n")
	f.Add(".subckt s a\nC1 a 0 0\n.ends\nX1 b s\n")
	f.Add("M1 d g 0 nmos W=-1u L=0\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		// Guard against pathological subckt blowup by rejecting sources
		// with very many X lines (the depth limit handles recursion).
		if strings.Count(src, "X") > 64 {
			return
		}
		_, _ = Parse(src)
	})
}
