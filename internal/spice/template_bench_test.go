package spice_test

import (
	"testing"

	"repro/internal/spice"
	"repro/internal/wave"
)

// The sequential/batch benchmark pair quantifies what lockstep
// interleaving buys: identical trials, identical per-trial math, the
// only difference is whether the step loops run one at a time
// (latency-bound triangular solves) or interleaved across lanes.

const benchTrialSteps = 4096

func benchTemplates(b *testing.B, lanes int) []*spice.CircuitTemplate {
	b.Helper()
	stim, err := wave.NewMultitone(0.5, 5e3, []int{1, 2, 3},
		[]float64{0.22, 0.13, 0.08}, []float64{0, 0.4, 1.1})
	if err != nil {
		b.Fatal(err)
	}
	v := benchValues{r1: 1e3, c1: 100e-9, r2: 2e3, c2: 47e-9, gain: 2}
	ts := make([]*spice.CircuitTemplate, lanes)
	for i := range ts {
		ckt, _ := buildTestCircuit(v, stim)
		tmpl, err := spice.NewCircuitTemplate(ckt, spice.Options{Trapezoid: true})
		if err != nil {
			b.Fatal(err)
		}
		ts[i] = tmpl
	}
	return ts
}

func BenchmarkTemplateTrialSequential(b *testing.B) {
	ts := benchTemplates(b, 4)
	out := make([]float64, 64)
	trial := spice.Trial{Dur: 8e-4, Steps: benchTrialSteps, Record: ts[0].Circuit().Node("out"), Start: benchTrialSteps - len(out), Out: out}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmpl := ts[i%len(ts)]
		trial.Record = tmpl.Circuit().Node("out")
		if err := tmpl.RunTrial(trial); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTemplateTrialBatch(b *testing.B) {
	ts := benchTemplates(b, 4)
	outs := make([][]float64, len(ts))
	for i := range outs {
		outs[i] = make([]float64, 64)
	}
	b.ResetTimer()
	var err error
	for done := 0; done < b.N; done += len(ts) {
		n := b.N - done
		if n > len(ts) {
			n = len(ts)
		}
		err = spice.RunTrialsBatch(ts, n,
			func(i, lane int) (spice.Trial, error) {
				return spice.Trial{
					Dur: 8e-4, Steps: benchTrialSteps,
					Record: ts[lane].Circuit().Node("out"),
					Start:  benchTrialSteps - len(outs[lane]), Out: outs[lane],
				}, nil
			},
			func(i, lane int) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
	}
}
