package spice

import (
	"math"
	"strings"
	"testing"
)

func TestSubcktDivider(t *testing.T) {
	c, err := Parse(`
.subckt div top out
R1 top out 1k
R2 out 0 1k
.ends
V1 in 0 2.0
Xa in mid div
Xb mid low div
`)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := DCOperatingPoint(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Xa: divider from 2 V. Its bottom leg is loaded by Xb (2k to
	// ground), so mid = 2 * (1k||2k + ... ) — compute directly:
	// mid node sees 1k to in, and to ground: 1k (Xa.R2) || (Xb: 2k).
	// Req = 1k*2k/3k = 666.67; mid = 2 * 666.67/1666.67 = 0.8.
	vm, err := sol.Voltage("mid")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vm-0.8) > 1e-9 {
		t.Fatalf("mid = %v, want 0.8", vm)
	}
	vl, _ := sol.Voltage("low")
	if math.Abs(vl-0.4) > 1e-9 {
		t.Fatalf("low = %v, want 0.4", vl)
	}
	// Internal nodes are namespaced: Xa's out is the external "mid", but
	// no top-level node named "out" exists.
	if _, err := sol.Voltage("out"); err == nil {
		t.Fatal("subcircuit port name leaked into top level")
	}
}

func TestSubcktNested(t *testing.T) {
	c, err := Parse(`
.subckt leg a b
R1 a b 2k
.ends
.subckt div top out
Xup top out leg
Xdown out 0 leg
.ends
V1 in 0 1.0
X1 in mid div
`)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := DCOperatingPoint(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vm, _ := sol.Voltage("mid")
	if math.Abs(vm-0.5) > 1e-9 {
		t.Fatalf("nested divider mid = %v, want 0.5", vm)
	}
}

func TestSubcktWithMOSFET(t *testing.T) {
	// The Fig. 2 monitor packaged as a subcircuit and instantiated.
	src := `
.subckt moncore vdd o1 o2 g1 g2 g3 g4
M1 o1 g1 0 nmos W=3u   L=180n
M2 o1 g2 0 nmos W=600n L=180n
M3 o2 g3 0 nmos W=600n L=180n
M4 o2 g4 0 nmos W=3u   L=180n
M5 o1 o1 vdd pmos W=2u L=180n
M6 o1 o2 vdd pmos W=1.6u L=180n
M7 o2 o1 vdd pmos W=1.6u L=180n
M8 o2 o2 vdd pmos W=2u L=180n
.ends
VDD vdd 0 1.2
V1 a 0 0.5
V2 b 0 0.2
V3 c 0 0.5
V4 d 0 0.6
Xmon vdd out1 out2 a b c d moncore
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := DCOperatingPoint(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := sol.Voltage("out1")
	v2, _ := sol.Voltage("out2")
	if v1 <= 0 || v1 >= 1.2 || v2 <= 0 || v2 >= 1.2 {
		t.Fatalf("monitor outputs out of rails: %v, %v", v1, v2)
	}
	// The asymmetric drive (left branch sinks more) must separate them.
	if math.Abs(v1-v2) < 1e-3 {
		t.Fatalf("outputs not separated: %v vs %v", v1, v2)
	}
}

func TestSubcktErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"unknown subckt", "X1 a b nosuch\nR1 a 0 1k\nV1 a 0 1"},
		{"port mismatch", ".subckt s a b\nR1 a b 1k\n.ends\nV1 in 0 1\nX1 in s"},
		{"unterminated", ".subckt s a b\nR1 a b 1k\nV1 x 0 1"},
		{"nested def", ".subckt s a\n.subckt t b\n.ends\n.ends"},
		{"ends without subckt", ".ends\nV1 a 0 1\nR1 a 0 1"},
		{"model inside subckt", ".subckt s a\n.model m nmos\n.ends"},
		{"bad element in body", ".subckt s a\nQ1 a 0 0\n.ends\nV1 in 0 1\nX1 in s\nR1 in 0 1k"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Fatalf("%s: expected parse error", c.name)
		}
	}
}

func TestSubcktDepthLimit(t *testing.T) {
	// A subcircuit that instantiates itself must hit the depth limit.
	src := `
.subckt loop a
Xself a loop
.ends
V1 in 0 1
R1 in 0 1k
X1 in loop
`
	_, err := Parse(src)
	if err == nil || !strings.Contains(err.Error(), "nesting") {
		t.Fatalf("expected depth-limit error, got %v", err)
	}
}
