package spice

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/num"
	"repro/internal/wave"
)

// CircuitTemplate is the trial-template engine behind SPICE-backed
// Monte-Carlo campaigns: one linear circuit, analyzed once, then reused
// across trials that differ only in element values and source
// waveforms. Construction pays the per-circuit setup exactly once —
// branch assignment, element classification, the RHS refresh program,
// the workspace — so a trial is just "refresh values → one stamp +
// LU factorization → per-step RHS solves":
//
//   - element values are mutated in place (SetResistance/SetCapacitance
//     /SetVSourceWaveform, or directly through the element pointers for
//     callers that built the netlist), preserving node numbering and
//     the symbolic stamp layout;
//   - the per-step RHS rebuild is compiled to a flat op list (capacitor
//     companions with a precomputed geq, source rows fed from cached
//     stimulus tick tables) instead of interface-dispatched restamps;
//   - the factored matrix is compiled to a num.SolveProgram, so the
//     per-step triangular solves skip the factors' structural zeros;
//   - stimulus tick tables (w.Eval at every step time) are cached per
//     (waveform, dt) across trials — and, via ShareTickCache, across
//     every worker template of a circuit family — amortizing the
//     transcendental calls a campaign re-evaluates thousands of times.
//
// Results are bit-identical to rebuilding the circuit and running
// TransientSolver.Run per trial (the regression-pinned rebuild path):
// every floating-point expression of that path is replicated with the
// same operand order. A template owns its circuit and workspace and is
// not safe for concurrent use — campaigns hold one per worker.
type CircuitTemplate struct {
	c    *Circuit
	opt  Options
	sv   *solver
	prog num.SolveProgram

	byName  map[string]Element
	caps    []capOp
	rhs     []rhsOp
	touched []int32 // RHS rows any op writes, zeroed per step
	ticks   *TickCache
}

// capOp is the per-trial companion state of one capacitor: its node
// rows and the geq = 2C/dt (trapezoidal) or C/dt (backward Euler)
// refreshed when dt or the capacitance changes.
type capOp struct {
	cap  *Capacitor
	p, m int32
	geq  float64
}

// rhsOp kinds. Capacitor kinds are fixed at construction; source kinds
// are refreshed per trial (a waveform can be attached or removed
// between trials).
const (
	opCapTrap = iota
	opCapBE
	opVSrcTick
	opVSrcDC
	opISrcTick
	opISrcDC
)

// rhsOp is one entry of the compiled per-step RHS refresh program, in
// netlist element order (the same order TransientSolver.Run restamps,
// so accumulation into shared rows stays bit-identical).
type rhsOp struct {
	kind int
	p, m int32 // node rows (m unused for V sources; p is the branch row)
	cap  *capOp
	vs   *VSource
	is   *ISource
	tick []float64
	dc   float64
	// scratch holds the per-trial tick table of a stateful (non-pure)
	// waveform, which must be re-evaluated every trial in step order.
	scratch []float64
}

// tickTable caches w.Eval(k·dt) for k = 0..len(vals)-1. Tables are
// keyed by (waveform, exact dt bits): trials with different settling
// spans can produce dt values that differ in the last bit, and the
// replayed Eval argument must be bit-equal to the rebuild path's.
type tickTable struct {
	w      wave.Waveform
	dtBits uint64
	vals   []float64
}

// maxTickTables bounds the cached tables (each is one float64 per
// step). Campaign blocks cycle through a handful of settling classes,
// so a short LRU covers every real hit pattern.
const maxTickTables = 4

// TickCache holds pure-waveform tick tables, shareable across templates
// and goroutines. Sharing is what makes the tick amortization stick:
// campaign workers rebuild their per-worker templates on every campaign
// invocation, but a cache hung off the long-lived circuit family keeps
// each settling class's transcendental grid — tens of thousands of
// stimulus Eval calls — computed once per process instead of once per
// worker per campaign. Lookups are mutex-guarded and cached tables are
// immutable (extending a table installs a fresh copy), so a table handed
// to one worker stays valid while others extend or evict the cache.
// Cache state never affects trial results, only who pays for the fill.
type TickCache struct {
	mu   sync.Mutex
	tabs []tickTable
}

// NewTickCache returns an empty shareable tick cache.
func NewTickCache() *TickCache { return &TickCache{} }

// ticksFor returns vals with vals[k] = w.Eval(k·dt) for k = 1..steps
// (vals[0] is unused and keeps the indexing aligned with step numbers).
// The returned slice may be longer than steps+1 when a longer trial of
// the same class filled it first; callers index only [1, steps].
func (tc *TickCache) ticksFor(w wave.Waveform, dt float64, steps int) []float64 {
	bits := math.Float64bits(dt)
	tc.mu.Lock()
	defer tc.mu.Unlock()
	for i := range tc.tabs {
		tb := tc.tabs[i]
		if tb.w == w && tb.dtBits == bits {
			if len(tb.vals) <= steps {
				// Extend into a fresh array: a worker holding the shorter
				// table must keep a stable view. The copied prefix is
				// bit-identical — Eval of a pure waveform is deterministic.
				vals := make([]float64, steps+1)
				copy(vals, tb.vals)
				for k := len(tb.vals); k <= steps; k++ {
					vals[k] = w.Eval(float64(k) * dt)
				}
				tb.vals = vals
			}
			if i != 0 { // move-to-front LRU
				copy(tc.tabs[1:i+1], tc.tabs[:i])
			}
			tc.tabs[0] = tb
			return tb.vals
		}
	}
	vals := make([]float64, steps+1)
	for k := 1; k <= steps; k++ {
		vals[k] = w.Eval(float64(k) * dt)
	}
	if len(tc.tabs) < maxTickTables {
		tc.tabs = append(tc.tabs, tickTable{})
	}
	copy(tc.tabs[1:], tc.tabs)
	tc.tabs[0] = tickTable{w: w, dtBits: bits, vals: vals}
	return vals
}

// NewCircuitTemplate builds a trial template over c. The circuit must
// be linear (no MOSFETs) and composed of the element kinds the RHS
// program understands (R, C, V/I sources, VCVS, VCCS); the template
// takes ownership — running other analyses on c while the template is
// live, or re-registering elements, invalidates it.
func NewCircuitTemplate(c *Circuit, opt Options) (*CircuitTemplate, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if !c.Linear() {
		return nil, fmt.Errorf("spice: circuit template requires a linear circuit")
	}
	t := &CircuitTemplate{
		c:      c,
		byName: make(map[string]Element, len(c.elements)),
		ticks:  NewTickCache(),
	}
	t.sv = newSolverWS(c, opt, nil) // assigns branches, sizes the workspace
	t.opt = t.sv.opt
	touched := map[int32]bool{}
	for _, e := range c.elements {
		if _, dup := t.byName[e.Name()]; !dup {
			t.byName[e.Name()] = e
		}
		switch el := e.(type) {
		case *Resistor, *VCVS, *VCCS:
			// Matrix-only elements: no per-step RHS contribution (the
			// same skip list as TransientSolver.Run's linear path).
		case *Capacitor:
			kind := opCapBE
			if t.opt.Trapezoid {
				kind = opCapTrap
			}
			t.caps = append(t.caps, capOp{cap: el, p: int32(el.P), m: int32(el.M)})
			t.rhs = append(t.rhs, rhsOp{kind: kind})
			markTouched(touched, int32(el.P), int32(el.M))
		case *VSource:
			t.rhs = append(t.rhs, rhsOp{kind: opVSrcDC, vs: el})
			markTouched(touched, int32(el.branch))
		case *ISource:
			t.rhs = append(t.rhs, rhsOp{kind: opISrcDC, is: el, p: int32(el.P), m: int32(el.M)})
			markTouched(touched, int32(el.P), int32(el.M))
		default:
			return nil, fmt.Errorf("spice: circuit template cannot compile element %s (%T)", e.Name(), e)
		}
	}
	// Link the capacitor ops only now that t.caps has its final backing
	// array (append may have moved earlier entries).
	ci := 0
	for i := range t.rhs {
		if t.rhs[i].kind == opCapTrap || t.rhs[i].kind == opCapBE {
			t.rhs[i].cap = &t.caps[ci]
			ci++
		}
	}
	//mclint:maporder collect-then-sort; sortInt32 below fixes the order before use
	for row := range touched {
		t.touched = append(t.touched, row)
	}
	sortInt32(t.touched)
	return t, nil
}

func markTouched(set map[int32]bool, rows ...int32) {
	for _, r := range rows {
		if r >= 0 {
			set[r] = true
		}
	}
}

func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Circuit returns the template's circuit (element lookups, node IDs).
// Mutate element values only between trials.
func (t *CircuitTemplate) Circuit() *Circuit { return t.c }

// ShareTickCache makes t serve pure-waveform tick tables from tc instead
// of its private cache. Campaigns point every worker's template at one
// cache owned by the circuit family, so a settling class's tick grid is
// filled once and reused by all workers and all later campaigns. A nil
// tc is ignored.
func (t *CircuitTemplate) ShareTickCache(tc *TickCache) {
	if tc != nil {
		t.ticks = tc
	}
}

// SetResistance updates a resistor's value in place, with the same
// validation Circuit.Add would apply.
func (t *CircuitTemplate) SetResistance(name string, ohms float64) error {
	r, ok := t.byName[name].(*Resistor)
	if !ok {
		return fmt.Errorf("spice: template has no resistor %q", name)
	}
	old := r.Ohms
	r.Ohms = ohms
	if err := r.validate(); err != nil {
		r.Ohms = old
		return err
	}
	return nil
}

// SetCapacitance updates a capacitor's value in place, with the same
// validation Circuit.Add would apply.
func (t *CircuitTemplate) SetCapacitance(name string, farads float64) error {
	c, ok := t.byName[name].(*Capacitor)
	if !ok {
		return fmt.Errorf("spice: template has no capacitor %q", name)
	}
	old := c.Farads
	c.Farads = farads
	if err := c.validate(); err != nil {
		c.Farads = old
		return err
	}
	return nil
}

// SetVSourceWaveform re-drives a voltage source with w (its DC value
// becomes w.Eval(0), as VSource.SetWaveform documents).
func (t *CircuitTemplate) SetVSourceWaveform(name string, w wave.Waveform) error {
	v, ok := t.byName[name].(*VSource)
	if !ok {
		return fmt.Errorf("spice: template has no voltage source %q", name)
	}
	v.SetWaveform(w)
	return nil
}

// Trial describes one transient run on a template: integrate over
// [0, Dur] in Steps fixed steps from the DC operating point, recording
// the voltage of node Record at steps Start..Start+len(Out)-1 into Out
// (step 0 is the operating point, step k the solution at t = k·Dur/Steps
// — the same step indexing as TransientSolver.Run).
type Trial struct {
	Dur    float64
	Steps  int
	Record NodeID
	Start  int
	Out    []float64
}

// RunTrial executes one trial: refresh the compiled per-trial state
// from the current element values, solve the DC operating point, stamp
// and factor the (constant) MNA matrix once, then run the per-step
// RHS-refresh/solve loop. A warm trial — same circuit size, settling
// class already seen — allocates nothing.
func (t *CircuitTemplate) RunTrial(tr Trial) error {
	if err := t.beginTrial(tr); err != nil {
		return err
	}
	t.runSteps(tr)
	return nil
}

// beginTrial is everything in a trial before the step loop: reset,
// operating point, stamp, factor, compile, per-trial refresh.
func (t *CircuitTemplate) beginTrial(tr Trial) error {
	if tr.Steps < 1 {
		return fmt.Errorf("spice: transient needs at least 1 step")
	}
	if tr.Start < 0 || tr.Start+len(tr.Out) > tr.Steps+1 {
		return fmt.Errorf("spice: trial records steps [%d, %d) of %d", tr.Start, tr.Start+len(tr.Out), tr.Steps+1)
	}
	// Same per-run reset sequence as TransientSolver.Run.
	for i := range t.caps {
		t.caps[i].cap.prevCur = 0
	}
	sv := t.sv
	ws := sv.ws
	for i := range ws.x {
		ws.x[i] = 0
	}
	if err := sv.dcopWS(nil); err != nil {
		return fmt.Errorf("spice: transient initial OP: %w", err)
	}
	copy(ws.prev, ws.x)
	if tr.Start == 0 && len(tr.Out) > 0 {
		tr.Out[0] = rowVoltage(ws.x, int32(tr.Record))
	}
	dt := tr.Dur / float64(tr.Steps)
	// Stamp and factor the constant matrix exactly as the rebuild path's
	// linear fast path does.
	nNodes := t.c.NumNodes()
	ws.a.Zero()
	for i := range ws.b {
		ws.b[i] = 0
	}
	sv.st = Stamper{
		A: ws.a, B: ws.b, X: ws.x,
		Time: dt, Dt: dt, Prev: ws.prev,
		SrcScale: 1, Trapezoidal: t.opt.Trapezoid,
	}
	for _, e := range t.c.elements {
		e.Stamp(&sv.st)
	}
	for i := 0; i < nNodes; i++ {
		ws.a.Add(i, i, t.opt.Gmin)
	}
	if err := ws.factor(); err != nil {
		return fmt.Errorf("spice: singular MNA matrix: %w", err)
	}
	ws.lu.Compile(&t.prog)
	t.refresh(dt, tr.Steps)
	// The step loop zeroes only the rows the RHS program writes; clear
	// the full-stamp leftovers once so untouched rows stay exactly 0,
	// as the rebuild path's per-step full zeroing guarantees.
	for i := range ws.b {
		ws.b[i] = 0
	}
	return nil
}

// refresh recomputes the per-trial op state: capacitor geq for this dt,
// source kinds/levels, and the stimulus tick tables.
func (t *CircuitTemplate) refresh(dt float64, steps int) {
	for i := range t.caps {
		c := &t.caps[i]
		if t.opt.Trapezoid {
			c.geq = 2 * c.cap.Farads / dt
		} else {
			c.geq = c.cap.Farads / dt
		}
	}
	for i := range t.rhs {
		op := &t.rhs[i]
		switch {
		case op.vs != nil:
			op.p = int32(op.vs.branch)
			if w := op.vs.src.w; w != nil {
				op.kind = opVSrcTick
				op.tick = t.tickFor(w, dt, steps, op)
			} else {
				op.kind = opVSrcDC
				op.dc = op.vs.src.dc
			}
		case op.is != nil:
			if w := op.is.src.w; w != nil {
				op.kind = opISrcTick
				op.tick = t.tickFor(w, dt, steps, op)
			} else {
				op.kind = opISrcDC
				op.dc = op.is.src.dc
			}
		}
	}
}

// tickFor returns a table holding w.Eval(k·dt) for k = 1..steps. Pure
// waveforms come from the (possibly shared) tick cache; stateful
// waveforms (measurement noise) get the op's private table re-evaluated
// every trial, which preserves the rebuild path's one-Eval-per-step call
// sequence exactly.
func (t *CircuitTemplate) tickFor(w wave.Waveform, dt float64, steps int, op *rhsOp) []float64 {
	if !pureWaveform(w) {
		op.scratch = growTicks(op.scratch, steps+1)
		for k := 1; k <= steps; k++ {
			op.scratch[k] = w.Eval(float64(k) * dt)
		}
		return op.scratch
	}
	return t.ticks.ticksFor(w, dt, steps)
}

// growTicks resizes a tick buffer to n, reusing capacity and keeping
// existing entries.
func growTicks(vals []float64, n int) []float64 {
	if cap(vals) >= n {
		return vals[:n]
	}
	out := make([]float64, n)
	copy(out, vals)
	return out
}

// pureWaveform reports whether w's Eval is a pure function of t, making
// its tick table reusable across trials. Unknown and stateful types
// (wave.Noisy draws a fresh variate per Eval) are conservatively
// re-evaluated every trial.
func pureWaveform(w wave.Waveform) bool {
	switch v := w.(type) {
	case *wave.Multitone, wave.Sine, wave.DC, wave.Square, *wave.PWL, *wave.Sampled:
		return true
	case wave.Clamped:
		return pureWaveform(v.Base)
	default:
		return false
	}
}

// rowVoltage is Solution.VoltageAt on a raw solution vector.
func rowVoltage(x []float64, row int32) float64 {
	if row < 0 {
		return 0
	}
	return x[row]
}

// stepState is the rotating buffer view of one in-flight trial: b, x
// and prev alias the template workspace, with x/prev swapped by pointer
// after every step instead of the rebuild path's copy(prev, x) — the
// values are identical, only the memmove is saved.
type stepState struct {
	b, x, prev []float64
}

// runSteps is the single-trial step loop; RunTrialsBatch drives the
// same stepOnce over several templates in lockstep.
//
//mclint:hotpath
func (t *CircuitTemplate) runSteps(tr Trial) {
	ws := t.sv.ws
	st := stepState{b: ws.b, x: ws.x, prev: ws.prev}
	for k := 1; k <= tr.Steps; k++ {
		t.stepOnce(k, &st, &tr)
	}
	// st.prev holds the final solution; mirror the rebuild path's
	// prev == x post-state regardless of the swap parity.
	copy(st.x, st.prev)
}

// stepOnce is the compiled solve/sample body of step k: zero the touched
// RHS rows, replay the RHS program, solve through the compiled factors,
// commit capacitor companions, record the window sample, rotate buffers.
//
//mclint:hotpath
func (t *CircuitTemplate) stepOnce(k int, st *stepState, tr *Trial) {
	t.stepPre(k, st)
	t.prog.Solve(st.b, st.x)
	t.stepPost(k, st, tr)
}

// stepPre builds step k's RHS: zero the touched rows and replay the
// compiled RHS program into st.b.
//
//mclint:hotpath
func (t *CircuitTemplate) stepPre(k int, st *stepState) {
	b, prev := st.b, st.prev
	rhs := t.rhs
	for _, r := range t.touched {
		b[r] = 0
	}
	for i := range rhs {
		op := &rhs[i]
		switch op.kind {
		case opCapTrap:
			c := op.cap
			vPrev := rowVoltage(prev, c.p) - rowVoltage(prev, c.m)
			ieq := c.geq*vPrev + c.cap.prevCur
			if c.p >= 0 {
				b[c.p] += ieq
			}
			if c.m >= 0 {
				b[c.m] -= ieq
			}
		case opCapBE:
			c := op.cap
			vPrev := rowVoltage(prev, c.p) - rowVoltage(prev, c.m)
			ieq := c.geq * vPrev
			if c.p >= 0 {
				b[c.p] += ieq
			}
			if c.m >= 0 {
				b[c.m] -= ieq
			}
		case opVSrcTick:
			b[op.p] += op.tick[k]
		case opVSrcDC:
			b[op.p] += op.dc
		case opISrcTick:
			v := op.tick[k]
			if op.m >= 0 {
				b[op.m] += v
			}
			if op.p >= 0 {
				b[op.p] -= v
			}
		case opISrcDC:
			if op.m >= 0 {
				b[op.m] += op.dc
			}
			if op.p >= 0 {
				b[op.p] -= op.dc
			}
		}
	}
}

// stepPost finishes step k after the solve landed in st.x: commit the
// capacitor companion currents, rotate the buffers, record the window
// sample.
//
//mclint:hotpath
func (t *CircuitTemplate) stepPost(k int, st *stepState, tr *Trial) {
	x, prev := st.x, st.prev
	caps := t.caps
	trap := t.opt.Trapezoid
	for i := range caps {
		c := &caps[i]
		v := rowVoltage(x, c.p) - rowVoltage(x, c.m)
		vPrev := rowVoltage(prev, c.p) - rowVoltage(prev, c.m)
		if trap {
			c.cap.prevCur = c.geq*(v-vPrev) - c.cap.prevCur
		} else {
			c.cap.prevCur = c.geq * (v - vPrev)
		}
	}
	st.prev, st.x = x, prev
	if idx := k - tr.Start; idx >= 0 && idx < len(tr.Out) {
		tr.Out[idx] = rowVoltage(x, int32(tr.Record))
	}
}

// RunTrials runs a block of n trials back-to-back on one template.
// prepare(i) mutates the template's element values for trial i (the
// campaign's Deviation) and returns its Trial spec; the template
// amortizes the settling-grid and stimulus-tick computation across the
// block. Trials run in index order; the first error aborts the block.
func RunTrials(t *CircuitTemplate, n int, prepare func(i int) (Trial, error)) error {
	for i := 0; i < n; i++ {
		tr, err := prepare(i)
		if err != nil {
			return fmt.Errorf("spice: trial %d: %w", i, err)
		}
		if err := t.RunTrial(tr); err != nil {
			return fmt.Errorf("spice: trial %d: %w", i, err)
		}
	}
	return nil
}

// BatchLanes is the lane width of RunTrialsBatch's fused solve kernel
// (num.BatchLanes trials stepped in lockstep at full occupancy).
const BatchLanes = num.BatchLanes

// batchLane is one in-flight trial of RunTrialsBatch.
type batchLane struct {
	t      *CircuitTemplate
	tr     Trial
	st     stepState
	k      int
	idx    int
	active bool
}

// RunTrialsBatch runs n trials through a pool of templates — one lane
// per template — stepping every in-flight trial in lockstep. The step
// loops of distinct trials are data-independent, so interleaving them
// feeds the CPU several independent solve dependency chains at once;
// the serial per-step latency wall (a triangular solve is one long
// multiply–subtract–divide chain) becomes a throughput problem, which
// is where the batch engine's speedup over RunTrials comes from. Every
// trial still executes exactly the floating-point sequence RunTrial
// would, so results are bit-identical to running the trials one at a
// time.
//
// Trials are assigned to lanes in index order, work-conservingly: when
// a lane's trial completes, finish(i, lane) is called (samples for
// trial i are in its Trial.Out, which the next trial on that lane may
// reuse — consume them inside finish) and the lane immediately begins
// the next pending trial. prepare(i, lane) mutates lane's template to
// trial i's element values and returns its Trial spec. The templates
// must be distinct. The first error aborts the batch.
func RunTrialsBatch(ts []*CircuitTemplate, n int, prepare func(i, lane int) (Trial, error), finish func(i, lane int) error) error {
	if len(ts) == 0 {
		return fmt.Errorf("spice: trial batch needs at least one template")
	}
	for i, t := range ts {
		if len(t.sv.ws.x) != len(ts[0].sv.ws.x) {
			return fmt.Errorf("spice: trial batch templates must share a circuit dimension")
		}
		for _, u := range ts[:i] {
			if t == u {
				return fmt.Errorf("spice: trial batch templates must be distinct")
			}
		}
	}
	lanes := make([]batchLane, len(ts))
	start := func(l, i int) error {
		ln := &lanes[l]
		tr, err := prepare(i, l)
		if err != nil {
			return fmt.Errorf("spice: trial %d: %w", i, err)
		}
		if err := ln.t.beginTrial(tr); err != nil {
			return fmt.Errorf("spice: trial %d: %w", i, err)
		}
		ws := ln.t.sv.ws
		ln.tr = tr
		ln.st = stepState{b: ws.b, x: ws.x, prev: ws.prev}
		ln.k = 1
		ln.idx = i
		ln.active = true
		return nil
	}
	next := 0
	inFlight := 0
	for l := range lanes {
		lanes[l].t = ts[l]
		if next < n {
			if err := start(l, next); err != nil {
				return err
			}
			next++
			inFlight++
		}
	}
	// retire completes lanes whose trial just finished its last step and
	// refills them from the pending queue. A refill refactors that
	// lane's program, so the fused kernel must recompile.
	recompile := true
	retire := func() error {
		for l := range lanes {
			ln := &lanes[l]
			if !ln.active || ln.k <= ln.tr.Steps {
				continue
			}
			copy(ln.st.x, ln.st.prev)
			if err := finish(ln.idx, l); err != nil {
				return fmt.Errorf("spice: trial %d: %w", ln.idx, err)
			}
			if next < n {
				if err := start(l, next); err != nil {
					return err
				}
				next++
				recompile = true
			} else {
				ln.active = false
				inFlight--
			}
		}
		return nil
	}
	var fused num.SolveBatch
	var progs [num.BatchLanes]*num.SolveProgram
	var bs, xs [num.BatchLanes][]float64
	for inFlight > 0 {
		if inFlight == num.BatchLanes && len(lanes) == num.BatchLanes {
			// Full occupancy: lockstep sweeps through the fused kernel.
			// Sweep until the earliest-finishing lane retires, then refill
			// and recompile.
			if recompile {
				for l := range lanes {
					progs[l] = &lanes[l].t.prog
				}
				fused.Compile(&progs)
				recompile = false
			}
			span := lanes[0].tr.Steps - lanes[0].k
			for l := 1; l < len(lanes); l++ {
				if s := lanes[l].tr.Steps - lanes[l].k; s < span {
					span = s
				}
			}
			for sweep := 0; sweep <= span; sweep++ {
				for l := range lanes {
					ln := &lanes[l]
					ln.t.stepPre(ln.k, &ln.st)
					bs[l] = ln.st.b
					xs[l] = ln.st.x
				}
				fused.Solve(&bs, &xs)
				for l := range lanes {
					ln := &lanes[l]
					ln.t.stepPost(ln.k, &ln.st, &ln.tr)
					ln.k++
				}
			}
		} else {
			// Partial occupancy (tail of the batch, or fewer templates than
			// lanes): single-lane stepping, same per-trial math.
			for l := range lanes {
				ln := &lanes[l]
				if !ln.active || ln.k > ln.tr.Steps {
					continue
				}
				ln.t.stepOnce(ln.k, &ln.st, &ln.tr)
				ln.k++
			}
		}
		if err := retire(); err != nil {
			return err
		}
	}
	return nil
}
