// Package spice is a compact nonlinear circuit simulator built on
// modified nodal analysis (MNA). It exists so the monitor of Fig. 2 can be
// simulated at transistor level — the paper's "experimental" boundary
// curves come from fabricated silicon, which we substitute with DC
// operating-point extraction over the (x, y) input grid.
//
// Feature set (deliberately scoped to what the reproduction needs, but
// complete within that scope):
//
//   - elements: resistor, capacitor, independent V/I sources (DC or
//     waveform-driven), VCVS, and MOSFETs using the internal/mos model
//   - nonlinear DC operating point: Newton-Raphson with per-iteration
//     voltage damping, gmin stepping and source stepping fallbacks
//   - DC sweeps with solution continuation
//   - transient analysis with backward-Euler or trapezoidal companions
//   - a small SPICE-like text netlist parser
package spice

import (
	"fmt"

	"repro/internal/wave"
)

// NodeID identifies a circuit node. Ground is the constant Ground (-1)
// and is not represented in the MNA system.
type NodeID int

// Ground is the reference node "0".
const Ground NodeID = -1

// Circuit is a netlist: a set of named nodes and elements.
type Circuit struct {
	nodeIdx  map[string]NodeID
	nodeName []string
	elements []Element
	nBranch  int // number of extra MNA branch-current unknowns
	// invalid records the first non-physical element registered via Add
	// (e.g. a non-positive resistance). Construction stays panic-free;
	// every analysis reports the deferred error instead of solving a
	// garbage system.
	invalid error
}

// New returns an empty circuit.
func New() *Circuit {
	return &Circuit{nodeIdx: make(map[string]NodeID)}
}

// Node returns the NodeID for name, creating the node on first use.
// The names "0", "gnd" and "GND" map to Ground.
func (c *Circuit) Node(name string) NodeID {
	if name == "0" || name == "gnd" || name == "GND" {
		return Ground
	}
	if id, ok := c.nodeIdx[name]; ok {
		return id
	}
	id := NodeID(len(c.nodeName))
	c.nodeIdx[name] = id
	c.nodeName = append(c.nodeName, name)
	return id
}

// NodeName returns the name of a node (for reporting).
func (c *Circuit) NodeName(id NodeID) string {
	if id == Ground {
		return "0"
	}
	return c.nodeName[id]
}

// NumNodes returns the number of non-ground nodes.
func (c *Circuit) NumNodes() int { return len(c.nodeName) }

// Size returns the dimension of the MNA system (nodes + branch currents).
func (c *Circuit) Size() int { return len(c.nodeName) + c.nBranch }

// Add registers an element. Elements that need a branch-current unknown
// (voltage sources, VCVS) are assigned one here. Elements carrying
// non-physical values are still registered, but the defect is recorded
// and every subsequent analysis fails with it (see Validate).
func (c *Circuit) Add(e Element) {
	if v, ok := e.(validatedElement); ok && c.invalid == nil {
		if err := v.validate(); err != nil {
			c.invalid = err
		}
	}
	if b, ok := e.(branchUser); ok {
		b.setBranch(len(c.nodeName)) // placeholder; finalized in assignBranches
		c.nBranch++
	}
	c.elements = append(c.elements, e)
}

// Validate returns the first non-physical element error recorded by Add
// (nil for a healthy netlist). Analyses call it before solving.
func (c *Circuit) Validate() error { return c.invalid }

// assignBranches gives every branch-using element its final row index
// (after all nodes are known). Called once per analysis.
func (c *Circuit) assignBranches() {
	next := len(c.nodeName)
	for _, e := range c.elements {
		if b, ok := e.(branchUser); ok {
			b.setBranch(next)
			next++
		}
	}
}

// Elements returns the registered elements (read-only use).
func (c *Circuit) Elements() []Element { return c.elements }

// Linear reports whether every element stamps a solution-independent
// (linear) companion model. Linear circuits need no Newton iteration:
// with a fixed timestep the MNA matrix is constant, so a transient can
// factor it once and only re-solve per step (the fast path in
// TransientSolver). Elements mark themselves nonlinear by implementing
// the nonlinearElement capability (the MOSFET does).
func (c *Circuit) Linear() bool {
	for _, e := range c.elements {
		if _, ok := e.(nonlinearElement); ok {
			return false
		}
	}
	return true
}

// FindElement returns the first element with the given name, or nil.
func (c *Circuit) FindElement(name string) Element {
	for _, e := range c.elements {
		if e.Name() == name {
			return e
		}
	}
	return nil
}

// Stamper is handed to each element during matrix assembly. Elements add
// their linearized companion-model contributions through it.
type Stamper struct {
	A    matrixView
	B    []float64
	X    []float64 // current Newton iterate (node voltages + branch currents)
	Time float64   // current simulation time (s); 0 for DC
	Dt   float64   // current timestep; 0 for DC
	Prev []float64 // previous timestep solution; nil for DC
	DC   bool      // true during DC analyses (capacitors open)
	// SrcScale scales independent sources during source stepping (0..1].
	SrcScale float64
	// Trapezoidal selects trapezoidal integration for capacitors; the
	// element keeps its own previous-current state.
	Trapezoidal bool
}

type matrixView interface {
	Add(i, j int, v float64)
}

// V returns the voltage of node n under the current iterate.
func (s *Stamper) V(n NodeID) float64 {
	if n == Ground {
		return 0
	}
	return s.X[n]
}

// PrevV returns the previous-timestep voltage of node n (0 for Ground or
// when there is no previous solution).
func (s *Stamper) PrevV(n NodeID) float64 {
	if n == Ground || s.Prev == nil {
		return 0
	}
	return s.Prev[n]
}

// AddConductance stamps a conductance g between nodes p and m.
func (s *Stamper) AddConductance(p, m NodeID, g float64) {
	if p != Ground {
		s.A.Add(int(p), int(p), g)
	}
	if m != Ground {
		s.A.Add(int(m), int(m), g)
	}
	if p != Ground && m != Ground {
		s.A.Add(int(p), int(m), -g)
		s.A.Add(int(m), int(p), -g)
	}
}

// AddCurrent stamps a current i flowing *into* node p and out of node m
// (i.e. a current source m -> p through the element).
func (s *Stamper) AddCurrent(p, m NodeID, i float64) {
	if p != Ground {
		s.B[p] += i
	}
	if m != Ground {
		s.B[m] -= i
	}
}

// AddEntry stamps an arbitrary matrix entry (rows/cols may be branch
// indices). Ground rows/cols (negative) are skipped.
func (s *Stamper) AddEntry(row, col int, v float64) {
	if row < 0 || col < 0 {
		return
	}
	s.A.Add(row, col, v)
}

// AddRHS adds v to an arbitrary RHS row, skipping ground.
func (s *Stamper) AddRHS(row int, v float64) {
	if row < 0 {
		return
	}
	s.B[row] += v
}

// Element is a circuit element that can stamp its (linearized)
// contribution into the MNA system.
type Element interface {
	Name() string
	Stamp(s *Stamper)
}

// branchUser is implemented by elements that need an MNA branch-current
// unknown (voltage-defined elements).
type branchUser interface {
	setBranch(row int)
}

// validatedElement is the capability interface for elements that can
// check their own values; Add records the first failure on the circuit.
type validatedElement interface {
	validate() error
}

// nonlinearElement is the capability marker for elements whose Stamp
// depends on the current Newton iterate (Stamper.X). Circuits without
// any such element qualify for the single-factorization transient fast
// path.
type nonlinearElement interface {
	nonlinearStamp()
}

// nullMatrix discards matrix writes. The linear transient fast path
// stamps every element per step only to refresh the RHS; the (constant)
// matrix contributions land here.
type nullMatrix struct{}

func (nullMatrix) Add(i, j int, v float64) {}

// Solution holds the result of an analysis at one bias/time point.
type Solution struct {
	circuit *Circuit
	X       []float64
}

// Clone returns a deep copy of the solution. Streaming transient
// callbacks receive a solution whose X aliases solver scratch; callers
// that keep a step beyond the callback clone it.
func (s *Solution) Clone() *Solution {
	x := make([]float64, len(s.X))
	copy(x, s.X)
	return &Solution{circuit: s.circuit, X: x}
}

// Voltage returns the solved voltage at the named node.
func (s *Solution) Voltage(name string) (float64, error) {
	if name == "0" || name == "gnd" || name == "GND" {
		return 0, nil
	}
	id, ok := s.circuit.nodeIdx[name]
	if !ok {
		return 0, fmt.Errorf("spice: unknown node %q", name)
	}
	return s.X[id], nil
}

// VoltageAt returns the voltage of a NodeID.
func (s *Solution) VoltageAt(n NodeID) float64 {
	if n == Ground {
		return 0
	}
	return s.X[n]
}

// BranchCurrent returns the branch current of a voltage-defined element
// (positive current flows from the + node through the source to −).
func (s *Solution) BranchCurrent(name string) (float64, error) {
	e := s.circuit.FindElement(name)
	if e == nil {
		return 0, fmt.Errorf("spice: unknown element %q", name)
	}
	type currentReader interface{ branchRow() int }
	cr, ok := e.(currentReader)
	if !ok {
		return 0, fmt.Errorf("spice: element %q has no branch current", name)
	}
	return s.X[cr.branchRow()], nil
}

// sourceWaveform adapts wave.Waveform for source elements; nil means DC 0.
type sourceWaveform struct {
	dc float64
	w  wave.Waveform
}

func (sw sourceWaveform) at(t float64, dcOnly bool) float64 {
	if sw.w == nil || dcOnly {
		return sw.dc
	}
	return sw.w.Eval(t)
}
