package spice

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"1k", 1e3}, {"2.2k", 2.2e3}, {"1meg", 1e6}, {"100n", 1e-7},
		{"180n", 180e-9}, {"3u", 3e-6}, {"1.5m", 1.5e-3}, {"2p", 2e-12},
		{"5f", 5e-15}, {"0.5", 0.5}, {"1e-3", 1e-3}, {"2g", 2e9}, {"1t", 1e12},
		{"-4.7u", -4.7e-6},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Fatalf("ParseValue(%q): %v", c.in, err)
		}
		if math.Abs(got-c.want) > 1e-9*math.Abs(c.want) {
			t.Fatalf("ParseValue(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "xyz", "1kk", "=3"} {
		if _, err := ParseValue(bad); err == nil {
			t.Fatalf("ParseValue(%q) should fail", bad)
		}
	}
}

func TestFormatValueRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1e3, 2.2e-6, 180e-9, 1.5, 3e6, 4e9, 7e-13, 2e-15} {
		s := FormatValue(v)
		back, err := ParseValue(s)
		if err != nil {
			t.Fatalf("round trip of %v via %q: %v", v, s, err)
		}
		if v == 0 {
			if back != 0 {
				t.Fatal("zero round trip failed")
			}
			continue
		}
		if math.Abs(back-v) > 1e-5*math.Abs(v) {
			t.Fatalf("round trip %v -> %q -> %v", v, s, back)
		}
	}
}

func TestParseDivider(t *testing.T) {
	c, err := Parse(`
* simple divider
V1 in 0 DC 1.0
R1 in mid 1k
R2 mid 0 1k ; bottom leg
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := DCOperatingPoint(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := sol.Voltage("mid")
	if math.Abs(v-0.5) > 1e-9 {
		t.Fatalf("parsed divider mid = %v, want 0.5", v)
	}
}

func TestParseMOSFETWithModel(t *testing.T) {
	c, err := Parse(`
.model mynmos nmos VTO=0.35 KP=250u LAMBDA=0.1 N=1.25
VDD vdd 0 1.2
VG g 0 0.8
RD vdd d 10k
M1 d g 0 mynmos W=1.8u L=180n
`)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := c.FindElement("M1").(*MOSFET)
	if !ok {
		t.Fatal("M1 not found")
	}
	if math.Abs(m.Dev.P.VTH0-0.35) > 1e-12 || math.Abs(m.Dev.P.KP-250e-6) > 1e-12 {
		t.Fatalf("model params wrong: %+v", m.Dev.P)
	}
	if math.Abs(m.Dev.W-1.8e-6) > 1e-15 {
		t.Fatalf("W = %v, want 1.8u", m.Dev.W)
	}
	sol, err := DCOperatingPoint(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vd, _ := sol.Voltage("d")
	if vd <= 0 || vd >= 1.2 {
		t.Fatalf("drain voltage out of range: %v", vd)
	}
}

func TestParseVCVSAndISource(t *testing.T) {
	c, err := Parse(`
I1 0 a 1m
R1 a 0 1k
E1 out 0 a 0 5
RL out 0 1k
`)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := DCOperatingPoint(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := sol.Voltage("out")
	if math.Abs(v-5.0) > 1e-6 {
		t.Fatalf("VCVS out = %v, want 5", v)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"R1 a 0",                    // missing value
		"Q1 a b c",                  // unknown element
		"M1 d g 0 nosuchmodel W=1u", // unknown model
		".tran 1n 1u",               // unsupported directive
		"M1 d g 0 nmos W1u",         // malformed parameter
		"V1 a 0 abc",                // bad value
		".model m1 bjt",             // unknown model kind
		".model m1 nmos VTO",        // malformed model parameter
		".model m1 nmos FOO=1",      // unknown model parameter
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Fatalf("Parse(%q) should fail", src)
		}
	}
}

// TestParseRejectsNonPositiveRC pins the parser-side validation that
// keeps non-physical element values out of the circuit: non-positive or
// non-finite R/C values are a parse error (never a panic), including
// inside subcircuit bodies.
func TestParseRejectsNonPositiveRC(t *testing.T) {
	bad := []string{
		"R1 a 0 0",
		"R1 a 0 -1k",
		"C1 a 0 0",
		"C1 a 0 -4.7u",
		"R1 a 0 Inf",
		"C1 a 0 NaN",
		"M1 d g 0 nmos W=-1u",
		"M1 d g 0 nmos L=0",
		".subckt s a\nR1 a 0 -1\n.ends\nX1 b s",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Fatalf("Parse(%q) should reject the non-physical value", src)
		}
	}
}

func TestParseSkipsCommentsAndBlank(t *testing.T) {
	c, err := Parse("* a comment\n\nV1 a 0 1\nR1 a 0 1k\n; full-line comment via semicolon is not stripped at start\n")
	if err == nil {
		_ = c
	}
	// A leading semicolon line has empty content after strip -> must not error.
	c2, err2 := Parse("V1 a 0 1\nR1 a 0 1k\n;\n")
	if err2 != nil {
		t.Fatalf("semicolon-only line broke parse: %v", err2)
	}
	if c2.NumNodes() != 1 {
		t.Fatalf("nodes = %d, want 1", c2.NumNodes())
	}
}

func TestMonitorNetlistText(t *testing.T) {
	// The Fig. 2 monitor expressed as a text netlist parses and solves.
	src := `
* Fig. 2 monitor: pseudo-differential current comparator
VDD vdd 0 1.2
V1 g1 0 0.5
V2 g2 0 0.2
V3 g3 0 0.5
V4 g4 0 0.6
M1 out1 g1 0 nmos W=3u   L=180n
M2 out1 g2 0 nmos W=600n L=180n
M3 out2 g3 0 nmos W=600n L=180n
M4 out2 g4 0 nmos W=3u   L=180n
M5 out1 out1 vdd pmos W=2u L=180n
M6 out1 out2 vdd pmos W=2u L=180n
M7 out2 out1 vdd pmos W=2u L=180n
M8 out2 out2 vdd pmos W=2u L=180n
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := DCOperatingPoint(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := sol.Voltage("out1")
	v2, _ := sol.Voltage("out2")
	for _, v := range []float64{v1, v2} {
		if v < 0 || v > 1.2 {
			t.Fatalf("monitor output rail violation: out1=%v out2=%v", v1, v2)
		}
	}
	if strings.Contains(src, "\t") {
		t.Fatal("netlist formatting sanity")
	}
}

// Property: the parser never panics on random token soup — it either
// errors or returns a circuit.
func TestParseNeverPanicsProperty(t *testing.T) {
	tokens := []string{
		"R1", "V1", "M1", "X1", "E1", "G1", "C1", "Q9", ".model", ".subckt",
		".ends", ".end", "a", "b", "0", "1k", "nmos", "pmos", "W=1u", "L=",
		"=", "div", "*", ";", "-3", "meg", "1kk",
	}
	prop := func(seed uint64, lineCount uint8) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("parser panicked: %v", r)
			}
		}()
		s := seed | 1
		next := func(n int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return int(s % uint64(n))
		}
		var b strings.Builder
		lines := 1 + int(lineCount%12)
		for i := 0; i < lines; i++ {
			width := 1 + next(6)
			for j := 0; j < width; j++ {
				if j > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(tokens[next(len(tokens))])
			}
			b.WriteByte('\n')
		}
		_, _ = Parse(b.String())
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
