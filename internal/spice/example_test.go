package spice_test

import (
	"fmt"

	"repro/internal/spice"
)

// A netlist in the SPICE-like text format: parse, solve the DC operating
// point, read a node voltage.
func ExampleParse() {
	ckt, err := spice.Parse(`
* resistive divider with a loading subcircuit
.subckt leg top
R1 top 0 2k
.ends
V1 in 0 1.2
R1 in mid 1k
Xload mid leg
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	sol, err := spice.DCOperatingPoint(ckt, spice.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	v, _ := sol.Voltage("mid")
	fmt.Printf("V(mid) = %.3f V\n", v)
	// Output:
	// V(mid) = 0.800 V
}

// Engineering-notation values round-trip through the netlist format.
func ExampleParseValue() {
	v, _ := spice.ParseValue("2.2k")
	fmt.Println(v, spice.FormatValue(180e-9))
	// Output:
	// 2200 180n
}
