package ndf

import (
	"fmt"
	"math"

	"repro/internal/signature"
)

// Aligned computes the NDF after compensating an unknown acquisition
// phase: a real capture starts at an arbitrary point of the stimulus
// period, so the observed signature is a cyclic rotation of the golden
// one. Aligned evaluates the Eq. 2 integral at nShifts uniformly spaced
// cyclic offsets of the observed signature and returns the minimum (the
// best alignment) together with the offset that achieved it.
//
// A correctly triggered tester does not need this; it models the
// trigger-free acquisition mode where only the stimulus period is known.
func Aligned(observed, golden *signature.Signature, nShifts int) (best float64, offset float64, err error) {
	if nShifts < 1 {
		return 0, 0, fmt.Errorf("ndf: need at least 1 shift")
	}
	if err := observed.Validate(); err != nil {
		return 0, 0, fmt.Errorf("ndf: observed: %w", err)
	}
	if err := golden.Validate(); err != nil {
		return 0, 0, fmt.Errorf("ndf: golden: %w", err)
	}
	T := golden.Period
	if math.Abs(observed.Period-T) > 1e-9*T {
		return 0, 0, ErrPeriodMismatch
	}
	best = math.Inf(1)
	for k := 0; k < nShifts; k++ {
		off := T * float64(k) / float64(nShifts)
		v, err := NDF(Rotate(observed, off), golden)
		if err != nil {
			return 0, 0, err
		}
		if v < best {
			best, offset = v, off
		}
	}
	return best, offset, nil
}

// Rotate returns the signature advanced by dt: the rotated signature's
// code at time t equals the original's at time t+dt. dt may be any real
// number; it is wrapped into [0, Period).
func Rotate(s *signature.Signature, dt float64) *signature.Signature {
	T := s.Period
	dt = math.Mod(dt, T)
	if dt < 0 {
		dt += T
	}
	if dt == 0 || len(s.Entries) == 0 {
		out := &signature.Signature{Period: T}
		out.Entries = append(out.Entries, s.Entries...)
		return out
	}
	// Locate the entry active at dt and split there.
	acc := 0.0
	idx := 0
	var within float64
	for i, e := range s.Entries {
		if dt < acc+e.Dur {
			idx = i
			within = dt - acc
			break
		}
		acc += e.Dur
		idx = i
	}
	out := &signature.Signature{Period: T}
	// Remainder of the split entry first.
	first := s.Entries[idx]
	if rem := first.Dur - within; rem > 0 {
		out.Entries = append(out.Entries, signature.Entry{Code: first.Code, Dur: rem})
	}
	for i := idx + 1; i < len(s.Entries); i++ {
		out.Entries = append(out.Entries, s.Entries[i])
	}
	for i := 0; i < idx; i++ {
		out.Entries = append(out.Entries, s.Entries[i])
	}
	if within > 0 {
		out.Entries = append(out.Entries, signature.Entry{Code: first.Code, Dur: within})
	}
	return out.Canonical()
}
