package ndf

import (
	"repro/internal/signature"
)

// EditDistance returns the Levenshtein distance between the zone-code
// *sequences* of two signatures, ignoring dwell times. This is the
// comparison style of the earlier digital-signature proposal (ref [12]
// of the paper): two circuits differ by how many zone insertions,
// deletions or substitutions separate their traversal orders. It is
// coarser than the NDF — a defect that only changes dwell durations is
// invisible to it — which is exactly what the edit-distance ablation
// quantifies.
func EditDistance(a, b *signature.Signature) int {
	sa := codesOf(a)
	sb := codesOf(b)
	n, m := len(sa), len(sb)
	if n == 0 {
		return m
	}
	if m == 0 {
		return n
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			cost := 1
			if sa[i-1] == sb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// NormalizedEditDistance divides the edit distance by the longer
// sequence length, giving a [0, 1] discrepancy comparable across CUTs.
func NormalizedEditDistance(a, b *signature.Signature) float64 {
	sa, sb := codesOf(a), codesOf(b)
	longer := len(sa)
	if len(sb) > longer {
		longer = len(sb)
	}
	if longer == 0 {
		return 0
	}
	return float64(EditDistance(a, b)) / float64(longer)
}

func codesOf(s *signature.Signature) []uint32 {
	out := make([]uint32, 0, len(s.Entries))
	for _, e := range s.Entries {
		out = append(out, uint32(e.Code))
	}
	return out
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
