package ndf

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/biquad"
	"repro/internal/monitor"
	"repro/internal/signature"
	"repro/internal/stat"
	"repro/internal/wave"
)

func sig(period float64, entries ...signature.Entry) *signature.Signature {
	return &signature.Signature{Period: period, Entries: entries}
}

func TestNDFIdenticalIsZero(t *testing.T) {
	a := sig(1, signature.Entry{Code: 0, Dur: 0.5}, signature.Entry{Code: 1, Dur: 0.5})
	v, err := NDF(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("NDF(a,a) = %v, want 0", v)
	}
}

func TestNDFHandComputed(t *testing.T) {
	// Golden: code 0 on [0, 0.5), code 1 on [0.5, 1).
	// Observed: code 0 on [0, 0.6), code 1 on [0.6, 1).
	// They differ on [0.5, 0.6) with Hamming distance 1 -> NDF = 0.1.
	g := sig(1, signature.Entry{Code: 0, Dur: 0.5}, signature.Entry{Code: 1, Dur: 0.5})
	o := sig(1, signature.Entry{Code: 0, Dur: 0.6}, signature.Entry{Code: 1, Dur: 0.4})
	v, err := NDF(o, g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.1) > 1e-12 {
		t.Fatalf("NDF = %v, want 0.1", v)
	}
}

func TestNDFMultiBitDistance(t *testing.T) {
	// Codes 0b00 vs 0b11 differ in 2 bits over the whole period -> NDF 2.
	g := sig(1, signature.Entry{Code: 0b00, Dur: 1})
	o := sig(1, signature.Entry{Code: 0b11, Dur: 1})
	v, err := NDF(o, g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-2) > 1e-12 {
		t.Fatalf("NDF = %v, want 2", v)
	}
}

func TestNDFSymmetric(t *testing.T) {
	g := sig(1, signature.Entry{Code: 0, Dur: 0.3}, signature.Entry{Code: 2, Dur: 0.7})
	o := sig(1, signature.Entry{Code: 1, Dur: 0.55}, signature.Entry{Code: 2, Dur: 0.45})
	a, err := NDF(o, g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NDF(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("NDF not symmetric: %v vs %v", a, b)
	}
}

func TestNDFPeriodMismatch(t *testing.T) {
	g := sig(1, signature.Entry{Code: 0, Dur: 1})
	o := sig(2, signature.Entry{Code: 0, Dur: 2})
	if _, err := NDF(o, g); err == nil {
		t.Fatal("period mismatch accepted")
	}
}

func TestNDFRejectsInvalid(t *testing.T) {
	g := sig(1, signature.Entry{Code: 0, Dur: 1})
	bad := sig(1) // empty
	if _, err := NDF(bad, g); err == nil {
		t.Fatal("invalid observed accepted")
	}
	if _, err := NDF(g, bad); err == nil {
		t.Fatal("invalid golden accepted")
	}
}

func TestSampledConvergesToExact(t *testing.T) {
	g := sig(1,
		signature.Entry{Code: 0, Dur: 0.25},
		signature.Entry{Code: 1, Dur: 0.25},
		signature.Entry{Code: 3, Dur: 0.5})
	o := sig(1,
		signature.Entry{Code: 0, Dur: 0.3},
		signature.Entry{Code: 1, Dur: 0.3},
		signature.Entry{Code: 7, Dur: 0.4})
	exact, err := NDF(o, g)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Sampled(o, g, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-approx) > 1e-3 {
		t.Fatalf("sampled %v vs exact %v", approx, exact)
	}
	if _, err := Sampled(o, g, 0); err == nil {
		t.Fatal("zero samples accepted")
	}
}

func TestHammingChronogram(t *testing.T) {
	g := sig(1, signature.Entry{Code: 0, Dur: 0.5}, signature.Entry{Code: 1, Dur: 0.5})
	o := sig(1, signature.Entry{Code: 0, Dur: 0.75}, signature.Entry{Code: 1, Dur: 0.25})
	times, dist := HammingChronogram(o, g, 100)
	if len(times) != 100 || len(dist) != 100 {
		t.Fatal("chronogram size wrong")
	}
	// Distance must be 1 exactly on [0.5, 0.75).
	for i, tt := range times {
		want := 0
		if tt >= 0.5 && tt < 0.75 {
			want = 1
		}
		if dist[i] != want {
			t.Fatalf("d_H at t=%v = %d, want %d", tt, dist[i], want)
		}
	}
}

func TestDecisionAndCalibration(t *testing.T) {
	devs := []float64{-0.2, -0.1, -0.05, 0, 0.05, 0.1, 0.2}
	ndfs := []float64{0.20, 0.10, 0.05, 0.0, 0.048, 0.11, 0.19}
	d, err := CalibrateThreshold(devs, ndfs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Threshold-0.05) > 1e-12 {
		t.Fatalf("threshold = %v, want 0.05 (band edge)", d.Threshold)
	}
	if !d.Pass(0.04) || d.Pass(0.06) {
		t.Fatal("Pass decision wrong")
	}
	// Interpolated tolerance between sweep points.
	d2, err := CalibrateThreshold(devs, ndfs, 0.075)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Threshold <= 0.05 || d2.Threshold >= 0.11 {
		t.Fatalf("interpolated threshold = %v, want between edge values", d2.Threshold)
	}
}

func TestCalibrateValidation(t *testing.T) {
	if _, err := CalibrateThreshold([]float64{0}, []float64{0}, 0.1); err == nil {
		t.Fatal("single-point sweep accepted")
	}
	if _, err := CalibrateThreshold([]float64{0, 1}, []float64{0}, 0.1); err == nil {
		t.Fatal("mismatched sweep accepted")
	}
	if _, err := CalibrateThreshold([]float64{0, 1}, []float64{0, 1}, 0); err == nil {
		t.Fatal("zero tolerance accepted")
	}
}

func TestEvaluateRates(t *testing.T) {
	d := Decision{Threshold: 0.05}
	good := []float64{0.01, 0.02, 0.06, 0.03} // one above threshold
	bad := []float64{0.10, 0.04, 0.2, 0.3}    // one below threshold
	st := Evaluate(d, good, bad)
	if math.Abs(st.FalsePositiveRate-0.25) > 1e-12 {
		t.Fatalf("FPR = %v, want 0.25", st.FalsePositiveRate)
	}
	if math.Abs(st.DetectionRate-0.75) > 1e-12 {
		t.Fatalf("detection = %v, want 0.75", st.DetectionRate)
	}
}

func TestThresholdFromNull(t *testing.T) {
	null := []float64{0.01, 0.02, 0.03, 0.04, 0.05}
	d, err := ThresholdFromNull(null, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Threshold != 0.05 {
		t.Fatalf("max-quantile threshold = %v, want 0.05", d.Threshold)
	}
	dm, _ := ThresholdFromNull(null, 0.5)
	if dm.Threshold != 0.03 {
		t.Fatalf("median threshold = %v, want 0.03", dm.Threshold)
	}
	if _, err := ThresholdFromNull(nil, 0.5); err == nil {
		t.Fatal("empty null accepted")
	}
	if _, err := ThresholdFromNull(null, 1.5); err == nil {
		t.Fatal("bad quantile accepted")
	}
}

// Regression: a NaN (or Inf) null value used to sort unpredictably and
// silently poison the calibrated threshold; it must now be rejected
// with a descriptive error.
func TestThresholdFromNullRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		null := []float64{0.01, bad, 0.03}
		if _, err := ThresholdFromNull(null, 1.0); err == nil {
			t.Fatalf("null sample containing %v accepted", bad)
		} else if !strings.Contains(err.Error(), "finite") {
			t.Fatalf("error %q does not name the non-finite value", err)
		}
	}
}

func TestThresholdFromSketch(t *testing.T) {
	null := []float64{0.01, 0.02, 0.03, 0.04, 0.05}
	s := stat.NewQuantileSketch(stat.DefaultSketchPrecision)
	for _, v := range null {
		s.Push(v)
	}
	// Quantile 1 is the tracked exact maximum: bit-identical to the
	// materializing path, which is what keeps campaign thresholds exact
	// above the streaming cutoff.
	d, err := ThresholdFromSketch(s, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := ThresholdFromNull(null, 1.0)
	if d.Threshold != exact.Threshold {
		t.Fatalf("sketch max-quantile threshold = %v, exact path = %v", d.Threshold, exact.Threshold)
	}
	// Interior quantiles agree within the sketch's documented relative
	// error bound.
	dm, err := ThresholdFromSketch(s, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	em, _ := ThresholdFromNull(null, 0.5)
	if math.Abs(dm.Threshold-em.Threshold) > s.RelativeError()*em.Threshold {
		t.Fatalf("sketch median %v vs exact %v exceeds relative error %v",
			dm.Threshold, em.Threshold, s.RelativeError())
	}
	if _, err := ThresholdFromSketch(nil, 0.5); err == nil {
		t.Fatal("nil sketch accepted")
	}
	if _, err := ThresholdFromSketch(stat.NewQuantileSketch(4), 0.5); err == nil {
		t.Fatal("empty sketch accepted")
	}
	if _, err := ThresholdFromSketch(s, 1.5); err == nil {
		t.Fatal("bad quantile accepted")
	}
	poisoned := stat.NewQuantileSketch(4)
	poisoned.Push(0.1)
	poisoned.Push(math.NaN())
	if _, err := ThresholdFromSketch(poisoned, 1.0); err == nil {
		t.Fatal("NaN-poisoned sketch accepted")
	}
}

// Property: NDF is bounded by the code width (max Hamming distance) and
// non-negative, for random two-segment signatures.
func TestNDFBoundsProperty(t *testing.T) {
	prop := func(c1, c2 uint8, splitRaw uint8) bool {
		split := 0.1 + 0.8*float64(splitRaw)/255
		g := sig(1,
			signature.Entry{Code: monitor.Code(c1 % 64), Dur: 0.5},
			signature.Entry{Code: monitor.Code((c1 + 1) % 64), Dur: 0.5})
		o := sig(1,
			signature.Entry{Code: monitor.Code(c2 % 64), Dur: split},
			signature.Entry{Code: monitor.Code((c2 + 7) % 64), Dur: 1 - split})
		v, err := NDF(o, g)
		if err != nil {
			return false
		}
		return v >= 0 && v <= 6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// End-to-end: the paper's +10% f0 experiment yields an NDF of the same
// order as the published 0.1021, rising with deviation.
func TestPaperNDFOrderOfMagnitude(t *testing.T) {
	bank := monitor.NewAnalyticTableI()
	in, err := wave.NewMultitone(0.5, 5e3, []int{1, 2, 3},
		[]float64{0.22, 0.13, 0.08}, []float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(shift float64) *signature.Signature {
		f, err := biquad.New(biquad.Params{F0: 10e3, Q: 0.9, Gain: 1}.WithF0Shift(shift))
		if err != nil {
			t.Fatal(err)
		}
		out := f.SteadyState(in)
		s, err := signature.Exact(func(tt float64) monitor.Code {
			return bank.Classify(in.Eval(tt), out.Eval(tt))
		}, in.Period(), 8192, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	golden := mk(0)
	v10, err := NDF(mk(0.10), golden)
	if err != nil {
		t.Fatal(err)
	}
	if v10 < 0.02 || v10 > 0.3 {
		t.Fatalf("NDF(+10%%) = %v, want same order as paper's 0.1021", v10)
	}
	v5, err := NDF(mk(0.05), golden)
	if err != nil {
		t.Fatal(err)
	}
	v20, err := NDF(mk(0.20), golden)
	if err != nil {
		t.Fatal(err)
	}
	if !(v5 < v10 && v10 < v20) {
		t.Fatalf("NDF not increasing with deviation: %v, %v, %v", v5, v10, v20)
	}
}
