package ndf

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/monitor"
	"repro/internal/signature"
)

func seqSig(codes ...int) *signature.Signature {
	s := &signature.Signature{Period: 1}
	for _, c := range codes {
		s.Entries = append(s.Entries, signature.Entry{
			Code: monitor.Code(c), Dur: 1 / float64(len(codes)),
		})
	}
	return s
}

func TestEditDistanceIdentical(t *testing.T) {
	a := seqSig(1, 2, 3, 4)
	if d := EditDistance(a, a); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
}

func TestEditDistanceKnownCases(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{[]int{1, 2, 3}, []int{1, 2, 3, 4}, 1},    // insertion
		{[]int{1, 2, 3}, []int{1, 3}, 1},          // deletion
		{[]int{1, 2, 3}, []int{1, 7, 3}, 1},       // substitution
		{[]int{1, 2, 3}, []int{4, 5, 6}, 3},       // all different
		{[]int{}, []int{1, 2}, 2},                 // from empty
		{[]int{1, 2, 3, 4}, []int{2, 3, 4, 5}, 2}, // shift
	}
	for _, c := range cases {
		got := EditDistance(seqSig(c.a...), seqSig(c.b...))
		if got != c.want {
			t.Fatalf("EditDistance(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditDistanceSymmetry(t *testing.T) {
	a := seqSig(1, 2, 3, 2, 1)
	b := seqSig(1, 3, 3, 2)
	if EditDistance(a, b) != EditDistance(b, a) {
		t.Fatal("edit distance not symmetric")
	}
}

func TestNormalizedEditDistance(t *testing.T) {
	a := seqSig(1, 2, 3, 4)
	b := seqSig(5, 6, 7, 8)
	if v := NormalizedEditDistance(a, b); v != 1 {
		t.Fatalf("fully different sequences = %v, want 1", v)
	}
	if v := NormalizedEditDistance(a, a); v != 0 {
		t.Fatalf("self = %v, want 0", v)
	}
	empty := &signature.Signature{Period: 1}
	if v := NormalizedEditDistance(empty, empty); v != 0 {
		t.Fatalf("empty vs empty = %v", v)
	}
}

func TestEditDistanceBlindToDwellChanges(t *testing.T) {
	// Same traversal order, very different dwell times: the edit
	// distance sees nothing — the weakness the NDF fixes.
	a := &signature.Signature{Period: 1, Entries: []signature.Entry{
		{Code: 1, Dur: 0.5}, {Code: 2, Dur: 0.5},
	}}
	b := &signature.Signature{Period: 1, Entries: []signature.Entry{
		{Code: 1, Dur: 0.05}, {Code: 2, Dur: 0.95},
	}}
	if d := EditDistance(a, b); d != 0 {
		t.Fatalf("edit distance = %d, should ignore durations", d)
	}
	v, err := NDF(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Fatal("NDF must see the dwell shift")
	}
}

// Property: triangle inequality on random short sequences.
func TestEditDistanceTriangleProperty(t *testing.T) {
	prop := func(ra, rb, rc [5]uint8) bool {
		mk := func(r [5]uint8) *signature.Signature {
			codes := make([]int, 5)
			for i, v := range r {
				codes[i] = int(v % 8)
			}
			return seqSig(codes...)
		}
		a, b, c := mk(ra), mk(rb), mk(rc)
		ab := EditDistance(a, b)
		bc := EditDistance(b, c)
		ac := EditDistance(a, c)
		return ac <= ab+bc
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestROCPerfectSeparation(t *testing.T) {
	good := []float64{0.01, 0.02, 0.03}
	bad := []float64{0.10, 0.20, 0.30}
	curve, err := ROC(good, bad)
	if err != nil {
		t.Fatal(err)
	}
	if a := AUC(curve); a != 1 {
		t.Fatalf("AUC of separable populations = %v, want 1", a)
	}
	// Curve endpoints: (0,·) exists and (1,1) exists.
	first, last := curve[0], curve[len(curve)-1]
	if first.FPR != 0 {
		t.Fatalf("curve must start at FPR 0, got %v", first.FPR)
	}
	if last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("curve must end at (1,1), got (%v,%v)", last.FPR, last.TPR)
	}
}

func TestROCChanceLevel(t *testing.T) {
	same := []float64{0.1, 0.2, 0.3, 0.4}
	curve, err := ROC(same, same)
	if err != nil {
		t.Fatal(err)
	}
	if a := AUC(curve); math.Abs(a-0.5) > 1e-12 {
		t.Fatalf("AUC of identical populations = %v, want 0.5", a)
	}
}

func TestROCValidation(t *testing.T) {
	if _, err := ROC(nil, []float64{1}); err == nil {
		t.Fatal("empty good accepted")
	}
	if AUC(nil) != 0 {
		t.Fatal("degenerate AUC must be 0")
	}
}

func TestROCMonotone(t *testing.T) {
	good := []float64{0.01, 0.05, 0.03, 0.08, 0.02}
	bad := []float64{0.04, 0.12, 0.09, 0.06}
	curve, err := ROC(good, bad)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR {
			t.Fatal("FPR not sorted")
		}
	}
	a := AUC(curve)
	if a <= 0.5 || a > 1 {
		t.Fatalf("AUC = %v for overlapping-but-shifted populations", a)
	}
}
