// Package ndf implements the paper's test metric (Eq. 2): the Normalized
// Discrepancy Factor
//
//	NDF = (1/T) ∫₀ᵀ d_H(S_O(t), S_G(t)) dt,
//
// the time-average of the Hamming distance between the observed and
// golden instantaneous zone codes, plus the pass/fail decision machinery
// of Section IV.C (acceptance bands, threshold calibration from a
// tolerance specification, and detection statistics under noise).
package ndf

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/signature"
	"repro/internal/stat"
)

// ErrPeriodMismatch is returned when the two signatures do not share a
// common period (the capture must observe both over the same stimulus).
var ErrPeriodMismatch = errors.New("ndf: signatures have different periods")

// NDF computes the exact Eq. 2 integral between an observed and a golden
// signature by sweeping the merged breakpoints of both piecewise-constant
// code functions — no sampling error.
func NDF(observed, golden *signature.Signature) (float64, error) {
	if err := observed.Validate(); err != nil {
		return 0, fmt.Errorf("ndf: observed: %w", err)
	}
	if err := golden.Validate(); err != nil {
		return 0, fmt.Errorf("ndf: golden: %w", err)
	}
	T := golden.Period
	if math.Abs(observed.Period-T) > 1e-9*T {
		return 0, fmt.Errorf("%w: %g vs %g", ErrPeriodMismatch, observed.Period, T)
	}
	// Merged breakpoint sweep.
	type cursor struct {
		entries []signature.Entry
		idx     int
		end     float64 // end time of current entry
	}
	co := &cursor{entries: observed.Entries, end: observed.Entries[0].Dur}
	cg := &cursor{entries: golden.Entries, end: golden.Entries[0].Dur}
	t := 0.0
	integral := 0.0
	for t < T-1e-15*T {
		next := math.Min(co.end, cg.end)
		if next > T {
			next = T
		}
		d := co.entries[co.idx].Code.HammingDistance(cg.entries[cg.idx].Code)
		integral += float64(d) * (next - t)
		t = next
		for co.idx < len(co.entries)-1 && co.end <= t+1e-15*T {
			co.idx++
			co.end += co.entries[co.idx].Dur
		}
		for cg.idx < len(cg.entries)-1 && cg.end <= t+1e-15*T {
			cg.idx++
			cg.end += cg.entries[cg.idx].Dur
		}
		if t >= co.end && co.idx == len(co.entries)-1 && t >= cg.end && cg.idx == len(cg.entries)-1 {
			break
		}
	}
	return integral / T, nil
}

// Sampled approximates Eq. 2 with n uniform samples — the form a simple
// software post-processor would use; tests verify convergence to NDF.
func Sampled(observed, golden *signature.Signature, n int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("ndf: need at least 1 sample")
	}
	T := golden.Period
	if math.Abs(observed.Period-T) > 1e-9*T {
		return 0, ErrPeriodMismatch
	}
	sum := 0
	// Sample times are increasing: cumulative cursors answer each lookup
	// in amortized O(1) instead of At's per-call entry scan.
	co, cg := observed.Cursor(), golden.Cursor()
	for i := 0; i < n; i++ {
		t := T * (float64(i) + 0.5) / float64(n)
		sum += co.At(t).HammingDistance(cg.At(t))
	}
	return float64(sum) / float64(n), nil
}

// HammingChronogram samples d_H(S_O(t), S_G(t)) at n uniform instants —
// the lower plot of Fig. 7.
func HammingChronogram(observed, golden *signature.Signature, n int) (times []float64, dist []int) {
	T := golden.Period
	times = make([]float64, n)
	dist = make([]int, n)
	co, cg := observed.Cursor(), golden.Cursor()
	for i := 0; i < n; i++ {
		t := T * float64(i) / float64(n)
		times[i] = t
		dist[i] = co.At(t).HammingDistance(cg.At(t))
	}
	return times, dist
}

// Decision is a calibrated pass/fail test: circuits whose NDF stays at or
// below Threshold are accepted.
type Decision struct {
	Threshold float64
}

// Pass reports whether the measured NDF falls in the acceptance band.
func (d Decision) Pass(ndf float64) bool { return ndf <= d.Threshold }

// CalibrateThreshold derives the acceptance threshold from a measured
// NDF-vs-deviation characteristic (the Fig. 8 curve) and a tolerance
// specification: the threshold is the largest NDF observed inside the
// tolerance band |dev| <= tol, linearly interpolating the characteristic
// at the band edges.
func CalibrateThreshold(devs, ndfs []float64, tol float64) (Decision, error) {
	if len(devs) != len(ndfs) || len(devs) < 2 {
		return Decision{}, fmt.Errorf("ndf: calibration needs matched sweep data")
	}
	if tol <= 0 {
		return Decision{}, fmt.Errorf("ndf: tolerance must be positive")
	}
	idx := make([]int, len(devs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return devs[idx[a]] < devs[idx[b]] })
	interp := func(x float64) float64 {
		// Piecewise-linear interpolation over the sorted sweep.
		lo, hi := idx[0], idx[len(idx)-1]
		if x <= devs[lo] {
			return ndfs[lo]
		}
		if x >= devs[hi] {
			return ndfs[hi]
		}
		for k := 1; k < len(idx); k++ {
			a, b := idx[k-1], idx[k]
			if x <= devs[b] {
				if devs[b] == devs[a] {
					return ndfs[a]
				}
				f := (x - devs[a]) / (devs[b] - devs[a])
				return ndfs[a]*(1-f) + ndfs[b]*f
			}
		}
		return ndfs[hi]
	}
	thr := math.Max(interp(-tol), interp(tol))
	// The threshold must also cover every sweep point inside the band
	// (non-monotone noise floors).
	for i, d := range devs {
		if d >= -tol && d <= tol && ndfs[i] > thr {
			thr = ndfs[i]
		}
	}
	return Decision{Threshold: thr}, nil
}

// DetectionStats summarizes a two-population detection experiment.
type DetectionStats struct {
	Threshold         float64
	FalsePositiveRate float64 // fraction of good circuits rejected
	DetectionRate     float64 // fraction of deviated circuits rejected
}

// Evaluate computes detection statistics of a threshold against NDF
// samples from nominal (good) and deviated circuits.
func Evaluate(d Decision, goodNDFs, badNDFs []float64) DetectionStats {
	fp, det := 0, 0
	for _, v := range goodNDFs {
		if !d.Pass(v) {
			fp++
		}
	}
	for _, v := range badNDFs {
		if !d.Pass(v) {
			det++
		}
	}
	st := DetectionStats{Threshold: d.Threshold}
	if len(goodNDFs) > 0 {
		st.FalsePositiveRate = float64(fp) / float64(len(goodNDFs))
	}
	if len(badNDFs) > 0 {
		st.DetectionRate = float64(det) / float64(len(badNDFs))
	}
	return st
}

// ThresholdFromNull sets the acceptance threshold at the given quantile
// of the null (fault-free, noise-only) NDF distribution — the standard
// way to fix the false-alarm rate before asking which deviation becomes
// detectable (the paper's 1%-at-3σ=0.015V claim). A NaN or infinite
// null value is rejected with a descriptive error: it would otherwise
// silently poison the sorted quantile (NaN sorts unpredictably) and
// calibrate a meaningless threshold.
func ThresholdFromNull(nullNDFs []float64, quantile float64) (Decision, error) {
	if len(nullNDFs) == 0 {
		return Decision{}, fmt.Errorf("ndf: empty null sample")
	}
	if quantile <= 0 || quantile > 1 {
		return Decision{}, fmt.Errorf("ndf: quantile %g out of (0,1]", quantile)
	}
	for i, v := range nullNDFs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Decision{}, fmt.Errorf("ndf: null sample %d of %d is %v, not a finite NDF", i, len(nullNDFs), v)
		}
	}
	sorted := append([]float64(nil), nullNDFs...)
	sort.Float64s(sorted)
	pos := quantile * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return Decision{Threshold: sorted[len(sorted)-1]}, nil
	}
	f := pos - float64(i)
	return Decision{Threshold: sorted[i]*(1-f) + sorted[i+1]*f}, nil
}

// ThresholdFromSketch is ThresholdFromNull for a null distribution held
// as a streaming quantile sketch instead of a materialized sample — the
// form million-trial calibrations arrive in (per-worker sketches merged
// by campaign.Reduce). The threshold carries the sketch's relative
// error bound, except at quantile 1 where the sketch tracks the exact
// maximum and the decision is bit-identical to the materializing path.
// A sketch that absorbed NaN/Inf observations is rejected, matching
// ThresholdFromNull's validation.
func ThresholdFromSketch(s *stat.QuantileSketch, quantile float64) (Decision, error) {
	if s == nil || s.N() == 0 {
		return Decision{}, fmt.Errorf("ndf: empty null sample")
	}
	if quantile <= 0 || quantile > 1 {
		return Decision{}, fmt.Errorf("ndf: quantile %g out of (0,1]", quantile)
	}
	if inv := s.Invalid(); inv > 0 {
		return Decision{}, fmt.Errorf("ndf: %d of %d null samples are non-finite NDFs", inv, s.N())
	}
	thr, err := s.Quantile(quantile)
	if err != nil {
		return Decision{}, fmt.Errorf("ndf: null sketch quantile: %w", err)
	}
	return Decision{Threshold: thr}, nil
}
