package ndf

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/signature"
)

func TestRotateIdentity(t *testing.T) {
	s := sig(1, signature.Entry{Code: 0, Dur: 0.3}, signature.Entry{Code: 1, Dur: 0.7})
	r := Rotate(s, 0)
	if len(r.Entries) != 2 || r.Entries[0] != s.Entries[0] {
		t.Fatalf("zero rotation changed signature: %v", r)
	}
	full := Rotate(s, 1.0) // full period = identity
	if v, _ := NDF(full, s); v != 0 {
		t.Fatalf("full-period rotation NDF = %v", v)
	}
}

func TestRotateKnownOffset(t *testing.T) {
	// Codes: 0 on [0,0.5), 1 on [0.5,1). Rotated by 0.25: code at t=0 is
	// original at 0.25 -> 0; transition at t=0.25.
	s := sig(1, signature.Entry{Code: 0, Dur: 0.5}, signature.Entry{Code: 1, Dur: 0.5})
	r := Rotate(s, 0.25)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.At(0.1) != 0 || r.At(0.3) != 1 || r.At(0.8) != 0 {
		t.Fatalf("rotation wrong: %v", r)
	}
}

func TestRotateWrapsNegative(t *testing.T) {
	s := sig(1, signature.Entry{Code: 0, Dur: 0.5}, signature.Entry{Code: 1, Dur: 0.5})
	a := Rotate(s, -0.25)
	b := Rotate(s, 0.75)
	for _, tt := range []float64{0.1, 0.4, 0.6, 0.9} {
		if a.At(tt) != b.At(tt) {
			t.Fatal("negative rotation != equivalent positive rotation")
		}
	}
}

func TestRotateDurationInvariant(t *testing.T) {
	s := sig(1,
		signature.Entry{Code: 0, Dur: 0.2},
		signature.Entry{Code: 1, Dur: 0.3},
		signature.Entry{Code: 3, Dur: 0.5})
	for _, dt := range []float64{0.1, 0.2, 0.35, 0.77} {
		r := Rotate(s, dt)
		sum := 0.0
		for _, e := range r.Entries {
			sum += e.Dur
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("rotation by %v broke total duration: %v", dt, sum)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("rotation by %v: %v", dt, err)
		}
	}
}

func TestAlignedValidation(t *testing.T) {
	g := sig(1, signature.Entry{Code: 0, Dur: 1})
	if _, _, err := Aligned(g, g, 0); err == nil {
		t.Fatal("zero shifts accepted")
	}
	o := sig(2, signature.Entry{Code: 0, Dur: 2})
	if _, _, err := Aligned(o, g, 4); err == nil {
		t.Fatal("period mismatch accepted")
	}
}

// Property: rotation never changes the NDF against an equally rotated
// golden (simultaneous rotation invariance of Eq. 2).
func TestSimultaneousRotationInvariantProperty(t *testing.T) {
	g := sig(1,
		signature.Entry{Code: 0, Dur: 0.25},
		signature.Entry{Code: 1, Dur: 0.25},
		signature.Entry{Code: 3, Dur: 0.5})
	o := sig(1,
		signature.Entry{Code: 0, Dur: 0.30},
		signature.Entry{Code: 1, Dur: 0.30},
		signature.Entry{Code: 2, Dur: 0.40})
	ref, err := NDF(o, g)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(raw uint16) bool {
		dt := float64(raw) / 65535
		a, err := NDF(Rotate(o, dt), Rotate(g, dt))
		if err != nil {
			return false
		}
		return math.Abs(a-ref) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
