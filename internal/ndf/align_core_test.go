package ndf_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/ndf"
)

func TestAlignedRecoversShiftedGolden(t *testing.T) {
	sys := core.Default()
	g, err := sys.GoldenSignature()
	if err != nil {
		t.Fatal(err)
	}
	// An observed signature that is just the golden one captured with a
	// 37 µs trigger offset.
	shifted := ndf.Rotate(g, 37e-6)
	raw, err := ndf.NDF(shifted, g)
	if err != nil {
		t.Fatal(err)
	}
	if raw < 0.1 {
		t.Fatalf("unaligned NDF = %v; shift should look like a gross defect", raw)
	}
	best, off, err := ndf.Aligned(shifted, g, 400)
	if err != nil {
		t.Fatal(err)
	}
	if best > 0.005 {
		t.Fatalf("aligned NDF = %v, want ~0", best)
	}
	// The recovered offset undoes the rotation: rotating by off again
	// must reproduce the golden alignment, i.e. off ≈ T − 37 µs
	// (mod the search grid spacing).
	wantOff := g.Period - 37e-6
	if math.Abs(off-wantOff) > g.Period/400+1e-9 {
		t.Fatalf("recovered offset %v, want ~%v", off, wantOff)
	}
}

func TestAlignedStillSeparatesDefects(t *testing.T) {
	sys := core.Default()
	g, err := sys.GoldenSignature()
	if err != nil {
		t.Fatal(err)
	}
	cut, err := sys.Shifted(0.10)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sys.ExactSignature(cut)
	if err != nil {
		t.Fatal(err)
	}
	// Even after searching all alignments, a +10% CUT keeps a large NDF.
	best, _, err := ndf.Aligned(ndf.Rotate(d, 51e-6), g, 200)
	if err != nil {
		t.Fatal(err)
	}
	if best < 0.05 {
		t.Fatalf("alignment search washed out a real defect: %v", best)
	}
}
