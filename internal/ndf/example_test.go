package ndf_test

import (
	"fmt"

	"repro/internal/ndf"
	"repro/internal/signature"
)

// Eq. 2 of the paper: the NDF is the time-weighted average Hamming
// distance between the observed and golden zone codes. Here the observed
// signature lingers 10% of the period in a neighbouring (1-bit) zone.
func ExampleNDF() {
	golden := &signature.Signature{Period: 200e-6, Entries: []signature.Entry{
		{Code: 0b000100, Dur: 100e-6},
		{Code: 0b000101, Dur: 100e-6},
	}}
	observed := &signature.Signature{Period: 200e-6, Entries: []signature.Entry{
		{Code: 0b000100, Dur: 120e-6},
		{Code: 0b000101, Dur: 80e-6},
	}}
	v, err := ndf.NDF(observed, golden)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("NDF = %.2f\n", v)
	// Output:
	// NDF = 0.10
}

// A trigger-free acquisition sees the golden signature rotated by an
// unknown phase; Aligned searches cyclic offsets and recovers NDF ≈ 0.
func ExampleAligned() {
	golden := &signature.Signature{Period: 1e-3, Entries: []signature.Entry{
		{Code: 1, Dur: 0.25e-3},
		{Code: 3, Dur: 0.5e-3},
		{Code: 2, Dur: 0.25e-3},
	}}
	observed := ndf.Rotate(golden, 0.4e-3)
	raw, _ := ndf.NDF(observed, golden)
	aligned, _, _ := ndf.Aligned(observed, golden, 100)
	fmt.Printf("unaligned %.2f, aligned %.2f\n", raw, aligned)
	// Output:
	// unaligned 1.00, aligned 0.00
}
