package ndf

import (
	"fmt"
	"sort"
)

// ROCPoint is one operating point of a threshold sweep.
type ROCPoint struct {
	Threshold float64
	FPR       float64 // false-positive rate: good circuits rejected
	TPR       float64 // true-positive rate: bad circuits rejected
}

// ROC sweeps the decision threshold over every distinct observed NDF and
// returns the operating curve, sorted by increasing FPR. goodNDFs are
// measurements from in-spec circuits, badNDFs from out-of-spec ones.
func ROC(goodNDFs, badNDFs []float64) ([]ROCPoint, error) {
	if len(goodNDFs) == 0 || len(badNDFs) == 0 {
		return nil, fmt.Errorf("ndf: ROC needs both populations")
	}
	thresholds := make([]float64, 0, len(goodNDFs)+len(badNDFs)+1)
	thresholds = append(thresholds, goodNDFs...)
	thresholds = append(thresholds, badNDFs...)
	sort.Float64s(thresholds)
	out := make([]ROCPoint, 0, len(thresholds)+1)
	rate := func(xs []float64, thr float64) float64 {
		n := 0
		for _, v := range xs {
			if v > thr { // rejected
				n++
			}
		}
		return float64(n) / float64(len(xs))
	}
	// Include a threshold below everything (reject all) implicitly via
	// thr = min-epsilon and above everything via the largest value.
	prev := thresholds[0] - 1
	for _, thr := range append([]float64{prev}, thresholds...) {
		out = append(out, ROCPoint{
			Threshold: thr,
			FPR:       rate(goodNDFs, thr),
			TPR:       rate(badNDFs, thr),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FPR != out[j].FPR {
			return out[i].FPR < out[j].FPR
		}
		return out[i].TPR < out[j].TPR
	})
	return out, nil
}

// AUC integrates the ROC curve with the trapezoidal rule; 1.0 is a
// perfect separator, 0.5 is chance.
func AUC(curve []ROCPoint) float64 {
	if len(curve) < 2 {
		return 0
	}
	area := 0.0
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area
}
