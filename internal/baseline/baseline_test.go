package baseline

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/signature"
	"repro/internal/wave"
)

func TestLinearMonitorBitConvention(t *testing.T) {
	cfg := monitor.TableI()[5]
	lm, err := NewLinearMonitor(Line{Nx: -1, Ny: 1, C: 0}, cfg) // y = x
	if err != nil {
		t.Fatal(err)
	}
	if lm.Bit(cfg.RefX, cfg.RefY) != 0 {
		t.Fatal("reference point must code 0")
	}
	if lm.Bit(0.1, 0.9) == lm.Bit(0.9, 0.1) {
		t.Fatal("line must separate the two half-planes")
	}
}

func TestLinearMonitorRejectsDegenerate(t *testing.T) {
	if _, err := NewLinearMonitor(Line{}, monitor.TableI()[0]); err == nil {
		t.Fatal("degenerate line accepted")
	}
}

func TestFitLineToDiagonal(t *testing.T) {
	a := monitor.MustAnalytic(monitor.TableI()[5])
	line, err := FitLineToBoundary(a, 60)
	if err != nil {
		t.Fatal(err)
	}
	// The diagonal boundary y = x has normal ∝ (1, -1) and c ≈ 0; check
	// via evaluation instead of normal orientation.
	for _, p := range []struct{ x, y float64 }{{0.5, 0.5}, {0.8, 0.8}} {
		if d := math.Abs(line.Eval(p.x, p.y)); d > 0.05 {
			t.Fatalf("fitted line misses diagonal at (%v,%v): %v", p.x, p.y, d)
		}
	}
	if d := math.Abs(line.Eval(0.9, 0.1)); d < 0.2 {
		t.Fatal("fitted line should separate off-diagonal points")
	}
}

func TestFitLineToArcHasResidual(t *testing.T) {
	// Curve 3 is genuinely nonlinear: a straight fit must leave visible
	// residual somewhere on the arc (that residual is what the paper's
	// nonlinear monitor removes).
	a := monitor.MustAnalytic(monitor.TableI()[2])
	line, err := FitLineToBoundary(a, 80)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for _, p := range a.TraceBoundary(0, 1, 80) {
		if d := math.Abs(line.Eval(p.X, p.Y)); d > worst {
			worst = d
		}
	}
	if worst < 1e-3 {
		t.Fatalf("arc fit residual %v suspiciously small — boundary not curved?", worst)
	}
}

func TestLinearBankEndToEnd(t *testing.T) {
	lin, err := NewLinearTableI()
	if err != nil {
		t.Fatal(err)
	}
	if lin.Size() != 6 {
		t.Fatalf("linear bank size = %d", lin.Size())
	}
	s := core.Default()
	sys, err := core.NewSystem(s.Stimulus, s.CUT, lin, s.Capture)
	if err != nil {
		t.Fatal(err)
	}
	v10, err := sys.NDFOfShift(0.10)
	if err != nil {
		t.Fatal(err)
	}
	v5, err := sys.NDFOfShift(0.05)
	if err != nil {
		t.Fatal(err)
	}
	// The straight-line baseline remains a working test method: NDF
	// must still grow with deviation (refs [12][13] demonstrated this).
	if !(v10 > v5 && v5 > 0) {
		t.Fatalf("linear zoning lost sensitivity: NDF(5%%)=%v NDF(10%%)=%v", v5, v10)
	}
}

func TestLinearAreaConstant(t *testing.T) {
	if LinearMonitorAreaUm2 <= monitor.RefCoreAreaUm2 {
		t.Fatal("linear monitor must cost more than the nonlinear core")
	}
}

func TestToleranceBand(t *testing.T) {
	golden := wave.Sample(wave.Sine{Amp: 0.3, Freq: 5e3, Offset: 0.5}, 200e-6, 10e6)
	tb, err := NewToleranceBandTest(golden, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	// Identical record passes.
	res, err := tb.Run(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass || res.OutFraction != 0 || res.MaxDeviation != 0 {
		t.Fatalf("identical record should pass cleanly: %+v", res)
	}
	// Shifted record fails.
	shifted := wave.Sample(wave.Sine{Amp: 0.3, Freq: 5.5e3, Offset: 0.5}, 200e-6, 10e6)
	res, err = tb.Run(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass || res.OutFraction == 0 {
		t.Fatalf("10%% frequency shift escaped the band: %+v", res)
	}
}

func TestToleranceBandValidation(t *testing.T) {
	golden := wave.Sample(wave.DC(0.5), 1e-3, 1e6)
	if _, err := NewToleranceBandTest(wave.Record{}, 0.1); err == nil {
		t.Fatal("empty golden accepted")
	}
	if _, err := NewToleranceBandTest(golden, 0); err == nil {
		t.Fatal("zero epsilon accepted")
	}
	tb, _ := NewToleranceBandTest(golden, 0.1)
	if _, err := tb.Run(wave.Record{V: []float64{1}}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestCalibrateEpsilon(t *testing.T) {
	golden := wave.Sample(wave.DC(0.5), 1e-4, 1e6)
	goods := []wave.Record{
		wave.Sample(wave.DC(0.51), 1e-4, 1e6),
		wave.Sample(wave.DC(0.49), 1e-4, 1e6),
	}
	eps, err := CalibrateEpsilon(golden, goods, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eps-0.01) > 1e-9 {
		t.Fatalf("epsilon = %v, want 0.01", eps)
	}
	if _, err := CalibrateEpsilon(golden, nil, 0.9); err == nil {
		t.Fatal("no goods accepted")
	}
}

func trainSet(t *testing.T, devs []float64) []*signature.Signature {
	t.Helper()
	s := core.Default()
	sigs := make([]*signature.Signature, len(devs))
	for i, d := range devs {
		cut, err := s.Shifted(d)
		if err != nil {
			t.Fatal(err)
		}
		sig, err := s.ExactSignature(cut)
		if err != nil {
			t.Fatal(err)
		}
		sigs[i] = sig
	}
	return sigs
}

func TestAlternateTestRegression(t *testing.T) {
	train := []float64{-0.20, -0.15, -0.10, -0.06, -0.03, 0, 0.03, 0.06, 0.10, 0.15, 0.20}
	sigs := trainSet(t, train)
	reg, err := TrainRegressor(sigs, train)
	if err != nil {
		t.Fatal(err)
	}
	// In-sample fit must be decent.
	rmseIn, err := EvaluateRegressor(reg, sigs, train)
	if err != nil {
		t.Fatal(err)
	}
	if rmseIn > 0.05 {
		t.Fatalf("in-sample RMSE = %v, regression useless", rmseIn)
	}
	// Held-out points: predictions correlate with truth.
	test := []float64{-0.12, -0.04, 0.07, 0.12}
	testSigs := trainSet(t, test)
	rmseOut, err := EvaluateRegressor(reg, testSigs, test)
	if err != nil {
		t.Fatal(err)
	}
	if rmseOut > 0.10 {
		t.Fatalf("held-out RMSE = %v, want < 0.10 (10%% of range)", rmseOut)
	}
}

func TestRegressorValidation(t *testing.T) {
	if _, err := TrainRegressor(nil, nil); err == nil {
		t.Fatal("empty training set accepted")
	}
	s := core.Default()
	sig, _ := s.ExactSignature(s.CUT)
	if _, err := TrainRegressor([]*signature.Signature{sig}, []float64{0, 1}); err == nil {
		t.Fatal("mismatched labels accepted")
	}
	reg, err := TrainRegressor(trainSet(t, []float64{-0.1, 0, 0.1}), []float64{-0.1, 0, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateRegressor(reg, nil, nil); err == nil {
		t.Fatal("empty eval set accepted")
	}
}

func TestFeaturesVector(t *testing.T) {
	sig := &signature.Signature{Period: 1, Entries: []signature.Entry{
		{Code: 2, Dur: 0.25}, {Code: 5, Dur: 0.75},
	}}
	f := NewFeatures(sig)
	v := f.Vector(sig)
	if len(v) != 3 || v[0] != 1 {
		t.Fatalf("vector = %v", v)
	}
	if math.Abs(v[1]-0.25) > 1e-12 || math.Abs(v[2]-0.75) > 1e-12 {
		t.Fatalf("dwell fractions = %v", v[1:])
	}
	// Unknown codes are ignored.
	other := &signature.Signature{Period: 1, Entries: []signature.Entry{{Code: 63, Dur: 1}}}
	vo := f.Vector(other)
	if vo[1] != 0 || vo[2] != 0 {
		t.Fatalf("unknown code leaked into features: %v", vo)
	}
}

func TestLinearVsNonlinearSensitivity(t *testing.T) {
	// The ablation claim: nonlinear zoning with the same number of
	// monitors gives at least comparable NDF sensitivity at small
	// deviations. (Both remain usable; the nonlinear monitor's win in
	// the paper is hardware cost, checked by TestLinearAreaConstant.)
	s := core.Default()
	lin, err := NewLinearTableI()
	if err != nil {
		t.Fatal(err)
	}
	linSys, err := core.NewSystem(s.Stimulus, s.CUT, lin, s.Capture)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := s.NDFOfShift(0.03)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := linSys.NDFOfShift(0.03)
	if err != nil {
		t.Fatal(err)
	}
	if nl <= 0 || ll <= 0 {
		t.Fatalf("sensitivity vanished: nonlinear %v, linear %v", nl, ll)
	}
}

func TestLinearMonitorAccessors(t *testing.T) {
	cfg := monitor.TableI()[5]
	lm, err := NewLinearMonitor(Line{Nx: -1, Ny: 1, C: 0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lm.Config().Name != cfg.Name {
		t.Fatal("Config accessor wrong")
	}
	l := lm.Line()
	if l.Nx != -1 || l.Ny != 1 || l.C != 0 {
		t.Fatalf("Line accessor = %+v", l)
	}
}
