// Package baseline implements the comparison methods the paper positions
// itself against:
//
//   - straight-line X-Y zoning (refs [12][13]): boundaries implemented
//     with weighted adders and comparators instead of the nonlinear
//     current-balance monitor;
//   - tolerance-band transient testing (ref [7]): sample-wise comparison
//     of the CUT response against a golden envelope;
//   - alternate test by regression (refs [10][11]): mapping
//     easy-to-measure signature features to the circuit parameter.
//
// These let the benchmarks quantify what the nonlinear zoning buys.
package baseline

import (
	"fmt"
	"math"

	"repro/internal/monitor"
)

// Line is a straight boundary n_x·x + n_y·y = c in the monitored plane,
// realized in hardware as a weighted adder driving a comparator.
type Line struct {
	Nx, Ny, C float64
}

// Eval returns the signed distance-like residual n·p − c.
func (l Line) Eval(x, y float64) float64 { return l.Nx*x + l.Ny*y - l.C }

// LinearMonitor is a one-bit zone monitor with a straight boundary,
// implementing the same Monitor interface as the nonlinear design so the
// two zoning styles are interchangeable in the signature pipeline.
type LinearMonitor struct {
	line    Line
	cfg     monitor.Config
	refSign int
}

// NewLinearMonitor builds a linear monitor with the reference ("origin")
// side taken from cfg.RefX/RefY, like the nonlinear design.
func NewLinearMonitor(line Line, cfg monitor.Config) (*LinearMonitor, error) {
	if line.Nx == 0 && line.Ny == 0 {
		return nil, fmt.Errorf("baseline: degenerate line")
	}
	m := &LinearMonitor{line: line, cfg: cfg}
	s := sign(line.Eval(cfg.RefX, cfg.RefY))
	if s == 0 {
		s = sign(line.Eval(cfg.RefX+1e-3, cfg.RefY))
		if s == 0 {
			s = 1
		}
	}
	m.refSign = s
	return m, nil
}

func sign(v float64) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// Bit implements monitor.Monitor.
func (m *LinearMonitor) Bit(x, y float64) int {
	if sign(m.line.Eval(x, y)) == m.refSign {
		return 0
	}
	return 1
}

// Config implements monitor.Monitor (the configuration of the nonlinear
// monitor this line approximates, kept for reporting).
func (m *LinearMonitor) Config() monitor.Config { return m.cfg }

// Line returns the boundary.
func (m *LinearMonitor) Line() Line { return m.line }

// FitLineToBoundary approximates a nonlinear monitor's boundary with a
// straight line by total least squares over traced boundary points —
// how a designer following refs [12][13] would place the partition.
func FitLineToBoundary(a *monitor.Analytic, n int) (Line, error) {
	pts := a.TraceBoundary(0, 1, n)
	if len(pts) < 2 {
		return Line{}, fmt.Errorf("baseline: monitor %s boundary has %d points, need >= 2",
			a.Config().Name, len(pts))
	}
	// Total least squares: the line through the centroid along the
	// principal component of the point cloud.
	var mx, my float64
	for _, p := range pts {
		mx += p.X
		my += p.Y
	}
	mx /= float64(len(pts))
	my /= float64(len(pts))
	var sxx, sxy, syy float64
	for _, p := range pts {
		dx, dy := p.X-mx, p.Y-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	// Normal direction = eigenvector of the smaller eigenvalue of the
	// 2x2 scatter matrix.
	tr := sxx + syy
	det := sxx*syy - sxy*sxy
	lam := tr/2 - math.Sqrt(tr*tr/4-det) // smaller eigenvalue
	var nx, ny float64
	if math.Abs(sxy) > 1e-18 {
		nx, ny = lam-syy, sxy
	} else if sxx < syy {
		nx, ny = 1, 0
	} else {
		nx, ny = 0, 1
	}
	norm := math.Hypot(nx, ny)
	nx, ny = nx/norm, ny/norm
	return Line{Nx: nx, Ny: ny, C: nx*mx + ny*my}, nil
}

// NewLinearTableI builds the straight-line approximation of the paper's
// six-monitor bank: each nonlinear boundary is replaced by its total
// least squares line. This is the refs [12][13] baseline bank.
func NewLinearTableI() (*monitor.Bank, error) {
	cfgs := monitor.TableI()
	ms := make([]monitor.Monitor, len(cfgs))
	for i, cfg := range cfgs {
		a := monitor.MustAnalytic(cfg)
		line, err := FitLineToBoundary(a, 60)
		if err != nil {
			return nil, err
		}
		lm, err := NewLinearMonitor(line, cfg)
		if err != nil {
			return nil, err
		}
		ms[i] = lm
	}
	return monitor.NewBank(ms...), nil
}

// LinearMonitorAreaUm2 is the documentation-grade cost of one
// straight-line monitor from refs [12][13]: a two-input weighted adder
// (resistive network plus buffer) and a comparator. Published zoning
// monitors of that generation occupy several times the current-comparator
// core; we carry 3× the nonlinear core as the accounting constant used by
// the hardware-cost ablation.
const LinearMonitorAreaUm2 = 3 * monitor.RefCoreAreaUm2
