package baseline

import (
	"fmt"
	"math"

	"repro/internal/stat"
	"repro/internal/wave"
)

// ToleranceBandTest is the classic transient-test baseline (ref [7]): the
// CUT's sampled response must stay within ±Epsilon of the golden response
// at every sample instant.
type ToleranceBandTest struct {
	Golden  wave.Record
	Epsilon float64
}

// NewToleranceBandTest builds the test from a golden record and a band
// half-width.
func NewToleranceBandTest(golden wave.Record, eps float64) (*ToleranceBandTest, error) {
	if len(golden.V) == 0 {
		return nil, fmt.Errorf("baseline: empty golden record")
	}
	if eps <= 0 {
		return nil, fmt.Errorf("baseline: tolerance band %g must be positive", eps)
	}
	return &ToleranceBandTest{Golden: golden, Epsilon: eps}, nil
}

// Result summarizes one tolerance-band comparison.
type Result struct {
	Pass         bool
	OutFraction  float64 // fraction of samples outside the band
	MaxDeviation float64 // largest |CUT − golden|
}

// Run compares a CUT record (same sampling grid) against the band.
func (t *ToleranceBandTest) Run(cut wave.Record) (Result, error) {
	if len(cut.V) != len(t.Golden.V) {
		return Result{}, fmt.Errorf("baseline: record length %d != golden %d", len(cut.V), len(t.Golden.V))
	}
	out := 0
	worst := 0.0
	for i := range cut.V {
		d := math.Abs(cut.V[i] - t.Golden.V[i])
		if d > worst {
			worst = d
		}
		if d > t.Epsilon {
			out++
		}
	}
	frac := float64(out) / float64(len(cut.V))
	return Result{Pass: out == 0, OutFraction: frac, MaxDeviation: worst}, nil
}

// CalibrateEpsilon chooses the band half-width as the given quantile of
// |good − golden| deviations across a set of known-good records — the
// standard way the transient-test threshold is set in practice.
func CalibrateEpsilon(golden wave.Record, goods []wave.Record, quantile float64) (float64, error) {
	if len(goods) == 0 {
		return 0, fmt.Errorf("baseline: no good records")
	}
	var devs []float64
	for _, g := range goods {
		if len(g.V) != len(golden.V) {
			return 0, fmt.Errorf("baseline: record length mismatch")
		}
		for i := range g.V {
			devs = append(devs, math.Abs(g.V[i]-golden.V[i]))
		}
	}
	return stat.Quantile(devs, quantile), nil
}
