package baseline

import (
	"fmt"
	"sort"

	"repro/internal/monitor"
	"repro/internal/signature"
	"repro/internal/stat"
)

// Features extracts the alternate-test feature vector from a signature:
// the fraction of the period spent in each zone of a fixed code
// vocabulary, plus a leading intercept term. Zones absent from the
// signature contribute zero — the standard dwell-time histogram feature
// used by signature-test regression flows (ref [11]).
type Features struct {
	Vocabulary []monitor.Code // fixed zone ordering shared by train/test
}

// NewFeatures builds the vocabulary from a set of reference signatures
// (typically the training sweep), sorted by code value.
func NewFeatures(sigs ...*signature.Signature) Features {
	seen := make(map[monitor.Code]bool)
	for _, s := range sigs {
		for _, e := range s.Entries {
			seen[e.Code] = true
		}
	}
	vocab := make([]monitor.Code, 0, len(seen))
	for c := range seen {
		vocab = append(vocab, c)
	}
	sort.Slice(vocab, func(i, j int) bool { return vocab[i] < vocab[j] })
	return Features{Vocabulary: vocab}
}

// Vector returns [1, dwellFrac(zone_1), …, dwellFrac(zone_k)].
func (f Features) Vector(s *signature.Signature) []float64 {
	idx := make(map[monitor.Code]int, len(f.Vocabulary))
	for i, c := range f.Vocabulary {
		idx[c] = i
	}
	v := make([]float64, len(f.Vocabulary)+1)
	v[0] = 1
	for _, e := range s.Entries {
		if i, ok := idx[e.Code]; ok {
			v[i+1] += e.Dur / s.Period
		}
	}
	return v
}

// Regressor is a trained alternate-test model predicting a circuit
// parameter (here: fractional f0 deviation) from signature features.
type Regressor struct {
	feats Features
	beta  []float64
}

// TrainRegressor fits the model on signatures with known deviations.
func TrainRegressor(sigs []*signature.Signature, devs []float64) (*Regressor, error) {
	if len(sigs) != len(devs) || len(sigs) == 0 {
		return nil, fmt.Errorf("baseline: training needs matched signatures and labels")
	}
	feats := NewFeatures(sigs...)
	X := make([][]float64, len(sigs))
	for i, s := range sigs {
		X[i] = feats.Vector(s)
	}
	beta, err := stat.MultiFit(X, devs)
	if err != nil {
		return nil, fmt.Errorf("baseline: regression fit: %w", err)
	}
	return &Regressor{feats: feats, beta: beta}, nil
}

// Predict estimates the deviation of a CUT from its signature.
func (r *Regressor) Predict(s *signature.Signature) float64 {
	v := r.feats.Vector(s)
	out := 0.0
	for i, b := range r.beta {
		out += b * v[i]
	}
	return out
}

// EvaluateRegressor returns the RMSE of predictions over a labelled
// evaluation set.
func EvaluateRegressor(r *Regressor, sigs []*signature.Signature, devs []float64) (float64, error) {
	if len(sigs) != len(devs) || len(sigs) == 0 {
		return 0, fmt.Errorf("baseline: evaluation needs matched signatures and labels")
	}
	pred := make([]float64, len(sigs))
	for i, s := range sigs {
		pred[i] = r.Predict(s)
	}
	return stat.RMSE(pred, devs), nil
}
