package mos

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func dev(wNm float64) Device {
	return NewDevice("M", wNm, 180, Default65nmNMOS())
}

func TestSquareLawAboveThreshold(t *testing.T) {
	d := dev(1800)
	// Well above threshold, saturation current should track (VGS-VTH)^2.
	i1 := d.IDSat(0.8)
	i2 := d.IDSat(1.2)
	ratio := i2 / i1
	want := math.Pow((1.2-0.4)/(0.8-0.4), 2)
	if math.Abs(ratio-want) > 0.03*want {
		t.Fatalf("square-law ratio = %v, want ~%v", ratio, want)
	}
}

func TestSubthresholdExponential(t *testing.T) {
	d := dev(1800)
	// Deep subthreshold: current scales ~exp(VGS/(n·VT)) — the squared
	// softplus overdrive approaches that slope from below as VGS drops.
	i1 := d.IDSat(0.10)
	i2 := d.IDSat(0.15)
	if i1 <= 0 || i2 <= 0 {
		t.Fatal("subthreshold current must be positive")
	}
	gotRatio := i2 / i1
	wantRatio := math.Exp(0.05 / (Default65nmNMOS().N * VThermal))
	if gotRatio < 0.95*wantRatio || gotRatio > 1.001*wantRatio {
		t.Fatalf("subthreshold ratio = %v, want ~%v", gotRatio, wantRatio)
	}
	// Current far below threshold is negligible vs strong inversion.
	if d.IDSat(0.1)/d.IDSat(1.0) > 1e-4 {
		t.Fatal("subthreshold leakage too large relative to on-current")
	}
}

func TestWidthScaling(t *testing.T) {
	// ID is proportional to W at fixed L and bias (Table I relies on this).
	i3000 := dev(3000).IDSat(0.8)
	i600 := dev(600).IDSat(0.8)
	if math.Abs(i3000/i600-5) > 1e-9 {
		t.Fatalf("width scaling = %v, want 5", i3000/i600)
	}
}

func TestTriodeSaturationContinuity(t *testing.T) {
	d := dev(1800)
	vgs := 0.9
	ve, _ := d.P.veff(vgs)
	below := d.Eval(vgs, ve-1e-9)
	above := d.Eval(vgs, ve+1e-9)
	if math.Abs(below.ID-above.ID) > 1e-8*math.Abs(above.ID) {
		t.Fatalf("current discontinuous at vds=veff: %v vs %v", below.ID, above.ID)
	}
	if below.Sat || !above.Sat {
		t.Fatal("saturation flag wrong around the corner")
	}
}

func TestEvalDerivativesMatchFiniteDifference(t *testing.T) {
	d := dev(2400)
	const h = 1e-7
	for _, pt := range []struct{ vgs, vds float64 }{
		{0.8, 1.0},  // saturation
		{0.9, 0.2},  // triode
		{0.3, 0.5},  // subthreshold
		{0.7, 0.05}, // deep triode
	} {
		op := d.Eval(pt.vgs, pt.vds)
		gmFD := (d.Eval(pt.vgs+h, pt.vds).ID - d.Eval(pt.vgs-h, pt.vds).ID) / (2 * h)
		gdsFD := (d.Eval(pt.vgs, pt.vds+h).ID - d.Eval(pt.vgs, pt.vds-h).ID) / (2 * h)
		if !close(op.Gm, gmFD, 1e-4) {
			t.Fatalf("gm at %+v: analytic %v vs FD %v", pt, op.Gm, gmFD)
		}
		if !close(op.Gds, gdsFD, 1e-4) {
			t.Fatalf("gds at %+v: analytic %v vs FD %v", pt, op.Gds, gdsFD)
		}
	}
}

func close(a, b, rtol float64) bool {
	d := math.Abs(a - b)
	return d <= rtol*math.Max(math.Abs(a), math.Abs(b))+1e-12
}

func TestNegativeVdsAntisymmetry(t *testing.T) {
	d := dev(1800)
	// With source/drain exchange: I(vgs, -vds) = -I(vgs+vds, vds).
	got := d.Eval(0.8, -0.3)
	ref := d.Eval(1.1, 0.3)
	if math.Abs(got.ID+ref.ID) > 1e-15+1e-9*math.Abs(ref.ID) {
		t.Fatalf("S/D exchange broken: %v vs %v", got.ID, -ref.ID)
	}
}

func TestNegativeVdsDerivatives(t *testing.T) {
	d := dev(1800)
	const h = 1e-7
	op := d.Eval(0.8, -0.3)
	gmFD := (d.Eval(0.8+h, -0.3).ID - d.Eval(0.8-h, -0.3).ID) / (2 * h)
	gdsFD := (d.Eval(0.8, -0.3+h).ID - d.Eval(0.8, -0.3-h).ID) / (2 * h)
	if !close(op.Gm, gmFD, 1e-4) || !close(op.Gds, gdsFD, 1e-4) {
		t.Fatalf("reverse-region derivatives: gm %v/%v gds %v/%v", op.Gm, gmFD, op.Gds, gdsFD)
	}
}

func TestZeroVdsZeroCurrent(t *testing.T) {
	d := dev(1800)
	if op := d.Eval(1.0, 0); op.ID != 0 {
		t.Fatalf("ID at VDS=0 should be 0, got %v", op.ID)
	}
}

func TestNewDeviceUnits(t *testing.T) {
	d := NewDevice("M1", 3000, 180, Default65nmNMOS())
	if math.Abs(d.W-3e-6) > 1e-18 || math.Abs(d.L-180e-9) > 1e-18 {
		t.Fatalf("unit conversion wrong: W=%v L=%v", d.W, d.L)
	}
	if math.Abs(d.AspectRatio()-3000.0/180.0) > 1e-12 {
		t.Fatalf("aspect ratio = %v", d.AspectRatio())
	}
	if math.Abs(d.GateAreaUm2()-0.54) > 1e-12 {
		t.Fatalf("gate area = %v µm², want 0.54", d.GateAreaUm2())
	}
}

func TestMonotoneInVgs(t *testing.T) {
	d := dev(1800)
	prev := -1.0
	for vgs := 0.0; vgs <= 1.2; vgs += 0.01 {
		id := d.IDSat(vgs)
		if id <= prev {
			t.Fatalf("IDSat not strictly increasing at VGS=%v", vgs)
		}
		prev = id
	}
}

func TestMismatchScalesWithArea(t *testing.T) {
	v := Default65nmVariation()
	small := NewDevice("s", 600, 180, Default65nmNMOS())
	large := NewDevice("l", 2400, 180, Default65nmNMOS())
	sSmall := v.MismatchSigmaVth(small)
	sLarge := v.MismatchSigmaVth(large)
	if sLarge >= sSmall {
		t.Fatal("larger device must have smaller mismatch")
	}
	if math.Abs(sSmall/sLarge-2) > 1e-9 { // 4x area -> 2x sigma
		t.Fatalf("Pelgrom scaling = %v, want 2", sSmall/sLarge)
	}
}

func TestDiePerturbationStatistics(t *testing.T) {
	v := Default65nmVariation()
	base := NewDevice("m", 1800, 180, Default65nmNMOS())
	src := rng.New(7)
	nDies := 3000
	var vthShifts []float64
	for i := 0; i < nDies; i++ {
		die := v.SampleDie(src.Split(uint64(i)))
		p := die.Perturb(base)
		vthShifts = append(vthShifts, p.P.VTH0-base.P.VTH0)
	}
	mean, std := meanStd(vthShifts)
	if math.Abs(mean) > 3e-3 {
		t.Fatalf("VTH shift mean = %v, want ~0", mean)
	}
	// Total sigma = sqrt(global^2 + local^2).
	local := v.MismatchSigmaVth(base)
	want := math.Sqrt(v.GlobalVTH*v.GlobalVTH + local*local)
	if math.Abs(std-want) > 0.1*want {
		t.Fatalf("VTH shift std = %v, want ~%v", std, want)
	}
}

func TestPerturbSharesGlobalShift(t *testing.T) {
	v := Variation{GlobalVTH: 0.05} // no local mismatch
	die := v.SampleDie(rng.New(3))
	a := die.Perturb(dev(600))
	b := die.Perturb(dev(3000))
	if a.P.VTH0 != b.P.VTH0 {
		t.Fatal("global-only variation must shift all devices identically")
	}
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)-1))
	return
}

func TestKindString(t *testing.T) {
	if NMOS.String() != "nmos" || PMOS.String() != "pmos" {
		t.Fatal("Kind.String wrong")
	}
	d := NewDevice("M1", 600, 180, Default65nmNMOS())
	if s := d.String(); s == "" {
		t.Fatal("empty device description")
	}
}

// Property: Eval returns finite values and non-negative current for
// vds >= 0 across the whole bias plane.
func TestEvalFiniteProperty(t *testing.T) {
	d := dev(1800)
	prop := func(gRaw, dRaw uint16) bool {
		vgs := float64(gRaw) / 65535 * 1.2
		vds := float64(dRaw) / 65535 * 1.2
		op := d.Eval(vgs, vds)
		if math.IsNaN(op.ID) || math.IsInf(op.ID, 0) || op.ID < 0 {
			return false
		}
		return op.Gm >= 0 && !math.IsNaN(op.Gds)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAtTemperature(t *testing.T) {
	p := Default65nmNMOS()
	hot := p.AtTemperature(400)
	if hot.VTH0 >= p.VTH0 {
		t.Fatal("VTH must drop with temperature")
	}
	if math.Abs((p.VTH0-hot.VTH0)-0.1) > 1e-12 {
		t.Fatalf("VTH shift = %v, want 100 mV at +100 K", p.VTH0-hot.VTH0)
	}
	if hot.KP >= p.KP {
		t.Fatal("mobility must degrade with temperature")
	}
	want := p.KP * math.Pow(400.0/300.0, -1.5)
	if math.Abs(hot.KP-want) > 1e-12 {
		t.Fatalf("KP = %v, want %v", hot.KP, want)
	}
	// Reference temperature is the identity.
	same := p.AtTemperature(300)
	if same != p {
		t.Fatal("300 K must be the identity")
	}
	// Non-positive temperature falls back to 300 K.
	if p.AtTemperature(-5) != p {
		t.Fatal("invalid temperature should fall back to reference")
	}
}

func TestTemperatureMovesBoundaryCurrent(t *testing.T) {
	d := dev(1800)
	hot := d
	hot.P = d.P.AtTemperature(380)
	// Near threshold the VTH drop dominates: more current when hot.
	if hot.IDSat(0.45) <= d.IDSat(0.45) {
		t.Fatal("near-threshold current should rise when hot")
	}
	// Far above threshold the mobility loss dominates: less current.
	if hot.IDSat(1.2) >= d.IDSat(1.2) {
		t.Fatal("strong-inversion current should drop when hot")
	}
}

func TestCornerShifts(t *testing.T) {
	n := Default65nmNMOS()
	p := Default65nmPMOS()
	// TT is identity.
	if n.AtCorner(TT) != n || p.AtCorner(TT) != p {
		t.Fatal("TT corner must be the identity")
	}
	// SS slows both; FF speeds both.
	if n.AtCorner(SS).VTH0 <= n.VTH0 || p.AtCorner(SS).VTH0 <= p.VTH0 {
		t.Fatal("SS must raise both thresholds")
	}
	if n.AtCorner(FF).KP <= n.KP || p.AtCorner(FF).KP <= p.KP {
		t.Fatal("FF must raise both mobilities")
	}
	// SF: slow n, fast p.
	if n.AtCorner(SF).VTH0 <= n.VTH0 {
		t.Fatal("SF must slow the nMOS")
	}
	if p.AtCorner(SF).VTH0 >= p.VTH0 {
		t.Fatal("SF must speed the pMOS")
	}
	// FS mirrors SF.
	if n.AtCorner(FS).VTH0 >= n.VTH0 || p.AtCorner(FS).VTH0 <= p.VTH0 {
		t.Fatal("FS polarity wrong")
	}
	// String names.
	names := map[Corner]string{TT: "TT", SS: "SS", FF: "FF", SF: "SF", FS: "FS"}
	for c, want := range names {
		if c.String() != want {
			t.Fatalf("corner %d name %q, want %q", c, c.String(), want)
		}
	}
	if len(Corners()) != 5 {
		t.Fatal("corner list wrong")
	}
}
