// Package mos implements the MOSFET behavioural model that generates the
// monitor's nonlinear zone boundaries.
//
// The paper's monitor exploits the quasi-quadratic I_D(V_GS) law of nMOS
// devices in saturation, including the subthreshold tail (Section III.B:
// "Boundary curves become a straight line for input voltages below the
// threshold voltage because the input transistors do not deliver current").
// We model this with an EKV-style smooth interpolation: the effective
// overdrive
//
//	v_eff = 2·n·V_T · ln(1 + exp((V_GS − V_TH)/(2·n·V_T)))
//
// tends to (V_GS − V_TH) far above threshold and to an exponential far
// below it, giving a single continuous expression with continuous
// derivatives — exactly what a Newton-Raphson circuit solver wants.
// Triode/saturation use the level-1 square law with channel-length
// modulation, continuous at the triode/saturation corner.
//
// Process variability follows the standard two-component picture used for
// foundry Monte Carlo: a global (per-die) corner shift shared by all
// devices plus local Pelgrom mismatch with σ(ΔV_TH) = A_VT/√(W·L).
package mos

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// VThermal is the thermal voltage kT/q at 300 K, in volts.
const VThermal = 0.02585

// Kind distinguishes n-channel from p-channel devices.
type Kind int

// Device polarities.
const (
	NMOS Kind = iota
	PMOS
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == PMOS {
		return "pmos"
	}
	return "nmos"
}

// Params holds the technology parameters of one device flavour.
type Params struct {
	Kind   Kind
	VTH0   float64 // zero-bias threshold voltage, V (positive for both kinds)
	KP     float64 // transconductance parameter µCox, A/V²
	Lambda float64 // channel-length modulation, 1/V
	N      float64 // subthreshold slope factor (dimensionless, ~1.2-1.5)
}

// AtTemperature returns the parameters shifted from the 300 K reference
// to the given junction temperature using the standard first-order
// dependences: threshold voltage drops ~1 mV/K and mobility follows a
// (T/300)^−1.5 power law. The subthreshold slope's kT/q dependence is a
// second-order effect for the monitor's boundaries and is not modelled
// (VThermal stays at its 300 K value).
func (p Params) AtTemperature(tempK float64) Params {
	if tempK <= 0 {
		tempK = 300
	}
	const vthTempco = 1e-3 // V/K
	out := p
	out.VTH0 -= vthTempco * (tempK - 300)
	out.KP *= math.Pow(tempK/300, -1.5)
	return out
}

// Default65nmNMOS returns nMOS parameters representative of a 65 nm bulk
// CMOS process (simulated substitute for the STMicroelectronics PDK).
func Default65nmNMOS() Params {
	return Params{Kind: NMOS, VTH0: 0.40, KP: 300e-6, Lambda: 0.15, N: 1.3}
}

// Default65nmPMOS returns matching pMOS parameters.
func Default65nmPMOS() Params {
	return Params{Kind: PMOS, VTH0: 0.42, KP: 90e-6, Lambda: 0.20, N: 1.35}
}

// Device is a sized transistor with its (possibly variation-perturbed)
// parameters.
type Device struct {
	Name string
	W, L float64 // channel width/length in meters
	P    Params
}

// NewDevice builds a device from W and L given in nanometers, which is how
// Table I of the paper specifies the monitor input transistors.
func NewDevice(name string, wNm, lNm float64, p Params) Device {
	return Device{Name: name, W: wNm * 1e-9, L: lNm * 1e-9, P: p}
}

// AspectRatio returns W/L.
func (d Device) AspectRatio() float64 { return d.W / d.L }

// GateAreaUm2 returns W·L in µm².
func (d Device) GateAreaUm2() float64 { return d.W * d.L * 1e12 }

// veff returns the EKV-smoothed effective overdrive and its derivative
// with respect to VGS.
func (p Params) veff(vgs float64) (v, dv float64) {
	a := 2 * p.N * VThermal
	x := (vgs - p.VTH0) / a
	// Numerically safe softplus.
	switch {
	case x > 40:
		v = a * x
		dv = 1
	case x < -40:
		v = a * math.Exp(x)
		dv = math.Exp(x)
	default:
		e := math.Exp(x)
		v = a * math.Log1p(e)
		dv = e / (1 + e)
	}
	return v, dv
}

// OpPoint holds a DC operating point evaluation of a device.
type OpPoint struct {
	ID  float64 // drain current, A (flows D->S for NMOS with VDS>0)
	Gm  float64 // dID/dVGS, S
	Gds float64 // dID/dVDS, S
	Sat bool    // true when the device is in saturation
}

// Eval computes the drain current and small-signal derivatives of an nMOS
// device at the given terminal voltages (relative to the source). For
// pMOS devices pass vgs = VSG and vds = VSD (i.e. magnitudes); Current
// conventions are handled by the caller (the circuit stamps).
//
// VDS < 0 is handled by source/drain exchange (the device is symmetric),
// so Eval is well-defined over the whole plane.
func (d Device) Eval(vgs, vds float64) OpPoint {
	if vds < 0 {
		// Exchange source and drain: ID(vgs, vds) = -ID(vgs - vds, -vds).
		op := d.Eval(vgs-vds, -vds)
		// Chain rule for swapped terminals (vgs' = vgs−vds, vds' = −vds):
		// dI/dvgs = −dI'/dvgs',  dI/dvds = dI'/dvgs' + dI'/dvds'.
		return OpPoint{
			ID:  -op.ID,
			Gm:  -op.Gm,
			Gds: op.Gm + op.Gds,
			Sat: op.Sat,
		}
	}
	beta := d.P.KP * d.W / d.L
	ve, dve := d.P.veff(vgs)
	clm := 1 + d.P.Lambda*vds
	if vds >= ve {
		// Saturation.
		id := 0.5 * beta * ve * ve * clm
		return OpPoint{
			ID:  id,
			Gm:  beta * ve * clm * dve,
			Gds: 0.5 * beta * ve * ve * d.P.Lambda,
			Sat: true,
		}
	}
	// Triode.
	id := beta * (ve - 0.5*vds) * vds * clm
	gm := beta * vds * clm * dve
	gds := beta * ((ve-vds)*clm + (ve-0.5*vds)*vds*d.P.Lambda)
	return OpPoint{ID: id, Gm: gm, Gds: gds, Sat: false}
}

// IDSat returns the saturation-region current at the given gate-source
// voltage, ignoring channel-length modulation. This is the quantity whose
// balance defines the monitor's zone boundaries (the differential pair
// keeps both summing nodes near the same potential, so CLM contributes
// only a second-order shift).
func (d Device) IDSat(vgs float64) float64 {
	ve, _ := d.P.veff(vgs)
	return 0.5 * d.P.KP * d.W / d.L * ve * ve
}

// String implements fmt.Stringer.
func (d Device) String() string {
	return fmt.Sprintf("%s %s W=%gnm L=%gnm", d.Name, d.P.Kind, d.W*1e9, d.L*1e9)
}

// Corner identifies a foundry process corner: the first letter is the
// nMOS speed, the second the pMOS speed (slow devices have higher VTH
// and lower mobility).
type Corner int

// The five classic sign-off corners.
const (
	TT Corner = iota // typical/typical
	SS               // slow/slow
	FF               // fast/fast
	SF               // slow n / fast p
	FS               // fast n / slow p
)

// String implements fmt.Stringer.
func (c Corner) String() string {
	switch c {
	case SS:
		return "SS"
	case FF:
		return "FF"
	case SF:
		return "SF"
	case FS:
		return "FS"
	default:
		return "TT"
	}
}

// Corners lists all five sign-off corners.
func Corners() []Corner { return []Corner{TT, SS, FF, SF, FS} }

// cornerShift is the deterministic corner offset: ±3σ of the global
// spread in Default65nmVariation (±90 mV VTH, ∓15% KP).
const (
	cornerVth = 0.090
	cornerKp  = 0.15
)

// AtCorner returns the parameters shifted to the given process corner.
// Slow means higher threshold and lower transconductance.
func (p Params) AtCorner(c Corner) Params {
	slowN := c == SS || c == SF
	fastN := c == FF || c == FS
	slowP := c == SS || c == FS
	fastP := c == FF || c == SF
	out := p
	var slow, fast bool
	if p.Kind == PMOS {
		slow, fast = slowP, fastP
	} else {
		slow, fast = slowN, fastN
	}
	switch {
	case slow:
		out.VTH0 += cornerVth
		out.KP *= 1 - cornerKp
	case fast:
		out.VTH0 -= cornerVth
		out.KP *= 1 + cornerKp
	}
	return out
}

// Variation describes the statistical variability of a process in the
// two-component global+local decomposition used by foundry Monte Carlo
// decks.
type Variation struct {
	// Global (die-to-die) 1σ spreads, shared by every device in a sample.
	GlobalVTH float64 // V
	GlobalKP  float64 // relative (fraction of nominal)
	// Local (within-die) Pelgrom mismatch coefficients.
	AVT   float64 // V·m (σ(ΔVTH) = AVT/sqrt(W·L))
	ABeta float64 // ·m (σ(Δβ/β) = ABeta/sqrt(W·L))
}

// Default65nmVariation returns variability numbers representative of a
// 65 nm process: ±30 mV global VTH (1σ), 5% global KP, A_VT = 3.5 mV·µm,
// A_β = 1 %·µm.
func Default65nmVariation() Variation {
	return Variation{
		GlobalVTH: 0.030,
		GlobalKP:  0.05,
		AVT:       3.5e-3 * 1e-6,
		ABeta:     0.01 * 1e-6,
	}
}

// Die holds one Monte Carlo sample of the global process shift.
type Die struct {
	DVth float64 // additive VTH shift, V
	DKp  float64 // relative KP shift
	v    Variation
	str  *rng.Stream
}

// SampleDie draws one die's global corner from the variation model.
func (v Variation) SampleDie(src *rng.Stream) *Die {
	return &Die{
		DVth: src.Gauss(0, v.GlobalVTH),
		DKp:  src.Gauss(0, v.GlobalKP),
		v:    v,
		str:  src,
	}
}

// Perturb returns a copy of d with this die's global shift plus a fresh
// local mismatch draw applied. Each call models a distinct physical device.
func (die *Die) Perturb(d Device) Device {
	area := d.W * d.L
	sVth := die.v.AVT / math.Sqrt(area)
	sBeta := die.v.ABeta / math.Sqrt(area)
	out := d
	out.P.VTH0 += die.DVth + die.str.Gauss(0, sVth)
	out.P.KP *= (1 + die.DKp) * (1 + die.str.Gauss(0, sBeta))
	if out.P.KP < 1e-9 {
		out.P.KP = 1e-9 // keep the model physical under extreme draws
	}
	return out
}

// MismatchSigmaVth returns the 1σ local threshold mismatch of a device
// with the given gate area, for reporting.
func (v Variation) MismatchSigmaVth(d Device) float64 {
	return v.AVT / math.Sqrt(d.W*d.L)
}
