// Package lint is the repository's static-analysis suite: a stdlib-only
// driver (go list -json for the package graph, go/parser + go/types for
// typed ASTs — no golang.org/x/tools) running repo-specific analyzers
// that enforce the engine's core contracts at the source level:
//
//   - detrand:  determinism — no wall clock or global randomness in the
//     campaign/core/monitor/ndf packages or in worker/fold closures;
//     every per-trial stream must derive from rng.NewSub(seed, index).
//   - maporder: no unordered map iteration feeding accumulators,
//     signatures, or serialized output — collect keys and sort, or
//     justify the loop with a //mclint:maporder directive.
//   - ctxflow:  cancellation — no context.Background()/TODO() outside
//     package main, and exported entry points that fan out through
//     campaign.Run/Reduce must accept a context.Context.
//   - hotalloc: functions marked //mclint:hotpath (the Classify/
//     Capture/fold loops pinned by AllocsPerRun) may not allocate:
//     no fmt calls, no escaping composite literals, no make/new, no
//     capacity-growing append.
//   - errdrop:  no silently discarded error returns in non-test code.
//
// The bit-identical signature-test method only works because every
// campaign is reproducible at any worker count; these analyzers catch
// the source patterns that silently break that invariant long before a
// long-running regression test would.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer report, position-resolved and JSON-ready for
// mclint -json.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Package is one type-checked package under analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// directives maps file name -> line -> directives on that line
	// (either a full-line comment or a trailing comment).
	directives map[string]map[int][]directive
}

// directive is one parsed //mclint:<name> [justification] comment.
type directive struct {
	name   string
	reason string
	pos    token.Position
}

// Analyzer is one source-contract check.
type Analyzer interface {
	Name() string
	Doc() string
	Check(p *Package) []Finding
}

// Analyzers returns the full suite in report order.
func Analyzers() []Analyzer {
	return []Analyzer{detrand{}, maporder{}, ctxflow{}, hotalloc{}, errdrop{}}
}

// Run executes the analyzers over the packages, drops findings carrying
// a justified //mclint:<analyzer> directive on their own or preceding
// line, audits the directives themselves (a suppression without a
// justification, or with an unknown analyzer name, is a finding), and
// returns the remainder sorted by position.
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	known := map[string]bool{"hotpath": true}
	for _, a := range analyzers {
		known[a.Name()] = true
	}
	var out []Finding
	seen := map[Finding]bool{}
	for _, p := range pkgs {
		for _, a := range analyzers {
			for _, f := range a.Check(p) {
				if p.suppressed(a.Name(), f) || seen[f] {
					continue
				}
				seen[f] = true
				out = append(out, f)
			}
		}
		// Audit the escape hatches: every suppression must name a real
		// analyzer and carry a justification, so `grep mclint:` reads as
		// a reviewed list of known exceptions, not a mute button.
		for _, d := range p.allDirectives() {
			switch {
			case !known[d.name]:
				out = append(out, Finding{
					Analyzer: "directive", File: d.pos.Filename, Line: d.pos.Line, Col: d.pos.Column,
					Message: fmt.Sprintf("unknown directive //mclint:%s", d.name),
				})
			case d.name != "hotpath" && strings.TrimSpace(d.reason) == "":
				out = append(out, Finding{
					Analyzer: "directive", File: d.pos.Filename, Line: d.pos.Line, Col: d.pos.Column,
					Message: fmt.Sprintf("//mclint:%s needs a justification (why is this occurrence safe?)", d.name),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// finding builds a position-resolved Finding for a node.
func (p *Package) finding(analyzer string, pos token.Pos, format string, args ...any) Finding {
	at := p.Fset.Position(pos)
	return Finding{
		Analyzer: analyzer,
		File:     at.Filename,
		Line:     at.Line,
		Col:      at.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// suppressed reports whether a justified //mclint:<analyzer> directive
// covers the finding's line (same line or the line directly above).
func (p *Package) suppressed(analyzer string, f Finding) bool {
	lines := p.directives[f.File]
	for _, line := range []int{f.Line, f.Line - 1} {
		for _, d := range lines[line] {
			if d.name == analyzer && strings.TrimSpace(d.reason) != "" {
				return true
			}
		}
	}
	return false
}

// allDirectives returns every directive in the package in position
// order — the deterministic traversal of the per-file line maps that
// maporder itself demands of map-keyed state feeding output.
func (p *Package) allDirectives() []directive {
	var out []directive
	for _, byLine := range p.directives { //mclint:maporder result is position-sorted below before it feeds any output
		for _, ds := range byLine {
			out = append(out, ds...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].pos, out[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

// scanDirectives indexes every //mclint: comment in the package files.
func (p *Package) scanDirectives() {
	p.directives = map[string]map[int][]directive{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				byLine := p.directives[pos.Filename]
				if byLine == nil {
					byLine = map[int][]directive{}
					p.directives[pos.Filename] = byLine
				}
				d.pos = pos
				byLine[pos.Line] = append(byLine[pos.Line], d)
			}
		}
	}
}

// parseDirective recognises "//mclint:<name> [justification]".
func parseDirective(c *ast.Comment) (directive, bool) {
	text, ok := strings.CutPrefix(c.Text, "//mclint:")
	if !ok {
		return directive{}, false
	}
	name, reason, _ := strings.Cut(text, " ")
	name = strings.TrimSpace(name)
	if name == "" {
		return directive{}, false
	}
	return directive{name: name, reason: reason}, true
}

// hasDirective reports whether a declaration's doc comment carries the
// named directive (used for //mclint:hotpath markers).
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if d, ok := parseDirective(c); ok && d.name == name {
			return true
		}
	}
	return false
}

// pathHasSuffix reports whether an import path ends in the given
// slash-separated suffix (so "repro/internal/core" and the fixture
// module's "fixture/internal/core" both match "internal/core").
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// qualifiedCall resolves a call of the form pkg.Fn where pkg is an
// imported package name, returning the package path and function name.
func qualifiedCall(p *Package, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	return qualifiedSelector(p, sel)
}

// qualifiedSelector resolves pkg.Name selectors (package-level funcs,
// vars, and types referenced through an import).
func qualifiedSelector(p *Package, sel *ast.SelectorExpr) (pkgPath, name string, ok bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// calleePkgPath returns the defining package path of a call's callee
// (function or method), or "" when unresolvable (builtins, func values).
func calleePkgPath(p *Package, call *ast.CallExpr) (path, name string) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			obj = p.Info.Uses[id]
		} else if s, ok := fun.X.(*ast.SelectorExpr); ok {
			obj = p.Info.Uses[s.Sel]
		}
	}
	if obj == nil || obj.Pkg() == nil {
		return "", ""
	}
	return obj.Pkg().Path(), obj.Name()
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// returnsError reports whether the call's result tuple contains error.
func returnsError(p *Package, call *ast.CallExpr) bool {
	t := p.Info.TypeOf(call)
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	switch rt := t.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if types.Identical(rt.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(rt, errType)
	}
}
