package lint

import (
	"go/ast"
	"go/types"
)

// detrand enforces the determinism contract behind the bit-identical
// campaign guarantee: inside the engine packages (internal/campaign,
// internal/core, internal/monitor, internal/ndf) — and inside any
// closure handed to the campaign engine from anywhere — nothing may
// read the wall clock or a global randomness source. Every per-trial
// stream must be a pure function of (seed, trial index) via
// rng.NewSub, or the same campaign stops reproducing across worker
// counts, schedulers, and machines.
type detrand struct{}

func (detrand) Name() string { return "detrand" }
func (detrand) Doc() string {
	return "no wall clock or global randomness in engine packages or worker/fold closures"
}

// detrandScope lists the package-path suffixes whose whole source is in
// scope (matched by suffix so the fixture module participates too).
var detrandScope = []string{
	"internal/campaign",
	"internal/core",
	"internal/monitor",
	"internal/ndf",
}

// bannedTimeFuncs are the nondeterministic entry points of package
// time; durations and constants remain fine.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

func (d detrand) Check(p *Package) []Finding {
	var out []Finding
	inScope := false
	for _, s := range detrandScope {
		if pathHasSuffix(p.Path, s) {
			inScope = true
			break
		}
	}
	flag := func(n ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		path, name, ok := qualifiedSelector(p, sel)
		if !ok {
			return
		}
		switch {
		case path == "time" && bannedTimeFuncs[name]:
			out = append(out, p.finding(d.Name(), sel.Pos(),
				"time.%s is nondeterministic; campaign results must be a pure function of (seed, trial index)", name))
		case path == "math/rand" || path == "math/rand/v2":
			out = append(out, p.finding(d.Name(), sel.Pos(),
				"global %s.%s breaks worker-count bit-identity; derive streams from rng.NewSub(seed, index)", path, name))
		case path == "crypto/rand":
			out = append(out, p.finding(d.Name(), sel.Pos(),
				"crypto/rand.%s is irreproducible by design; derive streams from rng.NewSub(seed, index)", name))
		}
	}
	for _, f := range p.Files {
		if inScope {
			ast.Inspect(f, func(n ast.Node) bool {
				flag(n)
				return true
			})
			continue
		}
		// Out-of-scope packages still may not smuggle nondeterminism
		// into the engine through trial/fold/merge closures: inspect
		// every func literal that flows into a call or composite
		// literal belonging to the campaign package.
		ast.Inspect(f, func(n ast.Node) bool {
			var lits []*ast.FuncLit
			switch expr := n.(type) {
			case *ast.CallExpr:
				if path, _ := calleePkgPath(p, expr); !pathHasSuffix(path, "internal/campaign") {
					return true
				}
				for _, arg := range expr.Args {
					if fl, ok := arg.(*ast.FuncLit); ok {
						lits = append(lits, fl)
					}
				}
			case *ast.CompositeLit:
				// campaign.Reducer{New: ..., Fold: ..., Merge: ...}
				if !pathHasSuffix(typePkgPath(p.Info.TypeOf(expr)), "internal/campaign") {
					return true
				}
				for _, el := range expr.Elts {
					v := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if fl, ok := v.(*ast.FuncLit); ok {
						lits = append(lits, fl)
					}
				}
			default:
				return true
			}
			for _, fl := range lits {
				ast.Inspect(fl.Body, func(n ast.Node) bool {
					flag(n)
					return true
				})
			}
			return true
		})
	}
	return out
}

// typePkgPath returns the defining package path of a (possibly pointer)
// named type, or "" for unnamed and universe types.
func typePkgPath(t types.Type) string {
	for t != nil {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			if o := tt.Obj(); o != nil && o.Pkg() != nil {
				return o.Pkg().Path()
			}
			return ""
		default:
			return ""
		}
	}
	return ""
}
