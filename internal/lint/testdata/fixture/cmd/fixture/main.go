// The fixture module's one binary: package main may mint the root
// context that ctxflow bans everywhere else.
package main

import (
	"context"
	"fmt"

	"fixture/internal/report"
)

func main() {
	ctx := context.Background() // no finding: root contexts belong to main
	vs, err := report.Gather(ctx, 3)
	if err != nil {
		fmt.Println("gather:", err)
		return
	}
	fmt.Println(vs)
}
