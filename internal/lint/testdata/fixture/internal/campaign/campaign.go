// Package campaign is a miniature stand-in for the real reduction
// engine: just enough surface (Engine, Reducer, Run, Reduce) for the
// fixture packages to exercise mclint's closure and cancellation rules.
// Its import path ends in internal/campaign, which is what puts it — and
// every closure handed to it — inside analyzer scope.
package campaign

import "context"

// Engine mirrors the real engine's option struct.
type Engine struct {
	Workers int
	Seed    uint64
}

// Reducer mirrors the real fold/merge triple.
type Reducer[T, A any] struct {
	New   func() A
	Fold  func(acc A, i int, v T) A
	Merge func(into, next A) A
}

// Run executes trial serially and collects the results. The fixtures
// only need it to type-check, never to run fast.
func Run(ctx context.Context, eng Engine, n int, trial func(i int) (int, error)) ([]int, error) {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		v, err := trial(i)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// Reduce folds trial results into the reducer's accumulator.
func Reduce[T, A any](ctx context.Context, eng Engine, n int, r Reducer[T, A], trial func(i int) (T, error)) (A, error) {
	acc := r.New()
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return acc, err
		}
		v, err := trial(i)
		if err != nil {
			return acc, err
		}
		acc = r.Fold(acc, i, v)
	}
	return acc, nil
}

// Span mirrors the real engine's half-open trial range.
type Span struct {
	Lo, Hi int
}

// CheckpointFunc mirrors the real engine's durable-checkpoint sink.
type CheckpointFunc[A any] func(acc A, through int) error

// ReduceSpan mirrors the fabric's worker entry point: the span
// reduction with an optional checkpoint sink. Like Run and Reduce it
// only needs to type-check.
func ReduceSpan[T, A any](ctx context.Context, eng Engine, span Span, init *A, ckpt CheckpointFunc[A], r Reducer[T, A], trial func(i int) (T, error)) (A, error) {
	acc := r.New()
	if init != nil {
		acc = *init
	}
	for i := span.Lo; i < span.Hi; i++ {
		if err := ctx.Err(); err != nil {
			return acc, err
		}
		v, err := trial(i)
		if err != nil {
			return acc, err
		}
		acc = r.Fold(acc, i, v)
		if ckpt != nil {
			if err := ckpt(acc, i+1); err != nil {
				return acc, err
			}
		}
	}
	return acc, nil
}
