// Package core carries the in-scope detrand fixtures: its import path
// ends in internal/core, so every statement is checked, not just the
// closures handed to the engine.
package core

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

// Stamp reads the wall clock inside an engine package.
func Stamp() int64 {
	return time.Now().UnixNano() // want:detrand
}

// Jitter draws from the global math/rand stream.
func Jitter() float64 {
	return rand.Float64() // want:detrand
}

// Fill draws irreproducible bytes.
func Fill(b []byte) {
	_, _ = crand.Read(b) // want:detrand
}

// Backoff only names a time constant, which is fine: the contract bans
// reading the clock, not talking about durations.
func Backoff() time.Duration {
	return 3 * time.Second
}
