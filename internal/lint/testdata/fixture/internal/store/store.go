// Package store carries the distributed-fabric fixtures: durable-store
// writes whose errors must surface (a dropped append is a checkpoint
// that silently never happened), and lease loops that must stay
// cancellable all the way into the span reduction.
package store

import (
	"context"
	"os"

	"fixture/internal/campaign"
)

// Append drops both failure signals of a durable job-log append: the
// write and the sync. A fabric that loses either resumes from state it
// never persisted.
func Append(f *os.File, rec []byte) {
	f.Write(rec) // want:errdrop
	f.Sync()     // want:errdrop
}

// AppendDurable is the compliant shape: every byte is either on disk or
// an error in the caller's hands.
func AppendDurable(f *os.File, rec []byte) error {
	if _, err := f.Write(rec); err != nil {
		return err
	}
	return f.Sync()
}

// Watch fires a lease heartbeat and walks away from the verdict — the
// one error that tells a worker its shard was revoked.
func Watch(heartbeat func() error) {
	go heartbeat() // want:errdrop
}

// LeaseLoop runs a leased shard on a root context it minted itself, so
// a lease revocation can never stop the trials.
func LeaseLoop(n int) (int, error) { // want:ctxflow
	ctx := context.Background() // want:ctxflow
	return campaign.ReduceSpan(ctx, campaign.Engine{}, campaign.Span{Hi: n}, nil, nil,
		campaign.Reducer[int, int]{
			New:   func() int { return 0 },
			Fold:  func(acc, _, v int) int { return acc + v },
			Merge: func(into, next int) int { return into + next },
		},
		func(i int) (int, error) { return i, nil })
}

// RunLease is the compliant worker shape: the coordinator's context
// reaches the span reduction, so revoking the lease cancels the shard
// within a chunk.
func RunLease(ctx context.Context, span campaign.Span, ckpt campaign.CheckpointFunc[int]) (int, error) {
	return campaign.ReduceSpan(ctx, campaign.Engine{}, span, nil, ckpt,
		campaign.Reducer[int, int]{
			New:   func() int { return 0 },
			Fold:  func(acc, _, v int) int { return acc + v },
			Merge: func(into, next int) int { return into + next },
		},
		func(i int) (int, error) { return i, nil })
}
