// Package report sits outside the engine scope: its own statements may
// read the clock, but the closures it hands to the campaign engine may
// not, and its exported fan-out entry points must carry a context.
package report

import (
	"context"
	"math/rand"
	"time"

	"fixture/internal/campaign"
)

// GeneratedAt may read the clock freely — report is not an engine
// package and this value never enters a trial closure.
func GeneratedAt() time.Time {
	return time.Now()
}

// Jittered smuggles the wall clock into a trial closure.
func Jittered(ctx context.Context, n int) ([]int, error) {
	return campaign.Run(ctx, campaign.Engine{}, n, func(i int) (int, error) {
		return int(time.Now().UnixNano()), nil // want:detrand
	})
}

// Noisy smuggles the global rand stream into a fold.
func Noisy(ctx context.Context, n int) (int, error) {
	return campaign.Reduce(ctx, campaign.Engine{}, n, campaign.Reducer[int, int]{
		New:   func() int { return 0 },
		Fold:  func(acc, i, v int) int { return acc + v + rand.Intn(2) }, // want:detrand
		Merge: func(into, next int) int { return into + next },
	}, func(i int) (int, error) { return i, nil })
}

// Collect fans out through the engine with no way to cancel it.
func Collect(n int) ([]int, error) { // want:ctxflow
	return campaign.Run(nil, campaign.Engine{}, n, func(i int) (int, error) { return i, nil })
}

// Gather is the compliant shape of Collect: the caller's context
// reaches every trial.
func Gather(ctx context.Context, n int) ([]int, error) {
	return campaign.Run(ctx, campaign.Engine{}, n, func(i int) (int, error) { return i, nil })
}
