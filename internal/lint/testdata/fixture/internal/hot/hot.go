// Package hot carries the hotalloc fixtures: a //mclint:hotpath function
// hitting every allocation pattern the analyzer names, and the compliant
// scratch-reusing shapes.
package hot

import "fmt"

type point struct{ x, y float64 }

// Render allocates in every way the analyzer flags.
//
//mclint:hotpath
func Render(xs []float64) string {
	label := fmt.Sprintf("%d pts", len(xs)) // want:hotalloc
	buf := make([]float64, len(xs))         // want:hotalloc
	buf = append(buf, 1)                    // want:hotalloc
	p := &point{x: buf[0]}                  // want:hotalloc
	ws := []float64{p.x}                    // want:hotalloc
	return label + fmt.Sprint(ws[0])        // want:hotalloc
}

// Dot is the compliant hot loop: no allocation sites at all.
//
//mclint:hotpath
func Dot(xs, ys []float64) float64 {
	s := 0.0
	for i := range xs {
		s += xs[i] * ys[i]
	}
	return s
}

// Reuse refills caller scratch without growing it: the explicit reslice
// is the one append shape the analyzer trusts.
//
//mclint:hotpath
func Reuse(xs, scratch []float64) []float64 {
	return append(scratch[:0], xs...)
}

// Sketch is not marked hotpath, so it may allocate.
func Sketch(n int) []float64 {
	return make([]float64, n)
}
