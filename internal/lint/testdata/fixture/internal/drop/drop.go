// Package drop carries the errdrop fixtures: discarded errors in every
// statement position, the infallible-sink exemptions, the explicit
// discard, the justified suppression, and the directive-audit cases.
package drop

import (
	"fmt"
	"os"
	"strings"
)

// Flush drops errors in every statement position the analyzer checks.
func Flush(f *os.File) {
	f.Sync()        // want:errdrop
	go f.Sync()     // want:errdrop
	defer f.Close() // want:errdrop
}

// Report writes through sinks whose failure cannot or need not be
// handled, and discards one error explicitly — none of it is flagged.
func Report(f *os.File) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d", 1)
	sb.WriteString("!")
	fmt.Println("done")
	fmt.Fprintln(os.Stderr, "warn")
	_ = f.Close()
	return sb.String()
}

// BestEffort drops an error the package has judged and documented.
func BestEffort(f *os.File) {
	//mclint:errdrop fixture: close on a read-only handle; nothing to recover
	f.Close()
}

// Mute shows a bare suppression: it does not silence the finding and is
// itself flagged by the directive audit.
func Mute(f *os.File) {
	// want-below:directive want-below:errdrop
	f.Close() //mclint:errdrop
}

// Shiny shows a directive naming an analyzer that does not exist.
func Shiny(f *os.File) {
	// want-below:directive
	//mclint:shiny the analyzer does not exist
	_ = f.Close()
}
