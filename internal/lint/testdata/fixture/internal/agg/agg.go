// Package agg carries the maporder fixtures: map iteration feeding an
// accumulator, the sanctioned collect-then-sort idiom, and the
// justified-directive escape hatch.
package agg

import "sort"

// Total folds map values in iteration order into an accumulator the
// analyzer cannot prove commutative.
func Total(m map[string]float64) float64 {
	var t float64
	for _, v := range m { // want:maporder
		t += v
	}
	return t
}

// Keys is the sanctioned collect-then-sort idiom.
func Keys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Positive collects behind a filter, which the idiom also covers.
func Positive(m map[string]float64) []string {
	var ks []string
	for k, v := range m {
		if v > 0 {
			ks = append(ks, k)
		}
	}
	sort.Strings(ks)
	return ks
}

// Count is order-independent and says so.
func Count(m map[string]float64) int {
	n := 0
	//mclint:maporder pure element count; no per-key state leaves the loop
	for range m {
		n++
	}
	return n
}
