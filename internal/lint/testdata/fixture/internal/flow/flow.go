// Package flow carries the context-discipline fixtures: root contexts
// minted in library code, and the compliant derive-from-caller shape.
package flow

import "context"

// Detached mints a root context in library code.
func Detached() context.Context {
	return context.Background() // want:ctxflow
}

// Stalled parks work on a context no caller can cancel.
func Stalled() error {
	return context.TODO().Err() // want:ctxflow
}

// Plumbed derives from the caller's context, as library code must.
func Plumbed(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}
