package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// errdrop flags error returns that are silently discarded: a call whose
// result tuple contains an error, used as a bare statement (or behind
// go/defer) with no assignment. An explicit `_ = f()` is allowed — it
// is greppable and visibly deliberate. Sinks that cannot fail, or whose
// failure has no handler by design, are exempt:
//
//   - methods on strings.Builder / bytes.Buffer (documented to never
//     return an error), and fmt.Fprint* writing into one of them — the
//     only error fmt.Fprint* can return is the writer's;
//   - the fmt.Print* stdout family and fmt.Fprint* to os.Stdout /
//     os.Stderr, the CLI report/diagnostic path.
//
// fmt.Fprint* to any other writer (files, HTTP responses, pipes) is NOT
// exempt: those fail in practice and the caller must see it.
type errdrop struct{}

func (errdrop) Name() string { return "errdrop" }
func (errdrop) Doc() string {
	return "no silently discarded error returns in non-test code"
}

// stdoutPrinters is the fmt stdout family tolerated in CLI report
// paths.
var stdoutPrinters = map[string]bool{"Print": true, "Printf": true, "Println": true}

func (e errdrop) Check(p *Package) []Finding {
	var out []Finding
	flag := func(call *ast.CallExpr, how string) {
		if !returnsError(p, call) || e.exempt(p, call) {
			return
		}
		out = append(out, p.finding(e.Name(), call.Pos(),
			"%s discards an error return; handle it or assign it explicitly (_ = …)", how))
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					flag(call, "call statement")
				}
			case *ast.GoStmt:
				flag(stmt.Call, "go statement")
			case *ast.DeferStmt:
				flag(stmt.Call, "defer statement")
			}
			return true
		})
	}
	return out
}

// exempt reports calls whose dropped error is acceptable by policy.
func (e errdrop) exempt(p *Package, call *ast.CallExpr) bool {
	if path, name, ok := qualifiedCall(p, call); ok && path == "fmt" {
		if stdoutPrinters[name] {
			return true
		}
		if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
			return e.infallibleWriter(p, call.Args[0])
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return isBuilderType(p.Info.TypeOf(sel.X))
}

// infallibleWriter reports whether a writer expression is one whose
// Write cannot fail (in-memory builders) or whose failure has no
// handler by policy (the process's own stdout/stderr).
func (errdrop) infallibleWriter(p *Package, arg ast.Expr) bool {
	if un, ok := arg.(*ast.UnaryExpr); ok && un.Op == token.AND {
		arg = un.X
	}
	if sel, ok := arg.(*ast.SelectorExpr); ok {
		if path, name, ok := qualifiedSelector(p, sel); ok && path == "os" && (name == "Stdout" || name == "Stderr") {
			return true
		}
	}
	return isBuilderType(p.Info.TypeOf(arg))
}

// isBuilderType matches strings.Builder / bytes.Buffer (possibly behind
// a pointer).
func isBuilderType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	switch typeFullName(t) {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// typeFullName renders a named type as "pkgpath.Name", or "".
func typeFullName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
