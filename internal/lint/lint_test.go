package lint

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches expectation markers in the fixture sources:
// `want:<analyzer>` expects a finding of that analyzer on the marker's
// own line, and `want-below:<analyzer>` on the line directly after —
// for lines whose trailing-comment space is taken by the very mclint
// directive under audit.
var wantRe = regexp.MustCompile(`want(-below)?:([a-z]+)`)

// fixtureWants scans every .go file under root and returns the expected
// finding multiset keyed "file:line:analyzer".
func fixtureWants(t *testing.T, root string) map[string]int {
	t.Helper()
	want := map[string]int{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				target := i + 1 // lines are 1-based
				if m[1] == "-below" {
					target++
				}
				want[fmt.Sprintf("%s:%d:%s", path, target, m[2])]++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning fixture markers: %v", err)
	}
	return want
}

// TestAnalyzersOnFixtureModule runs the full driver — go list, parse,
// type-check, analyze, suppress, audit — over the self-contained module
// in testdata/fixture and compares the surviving findings against the
// inline want markers. Every analyzer (and the directive audit) must
// fire at least once, proving each rule is live.
func TestAnalyzersOnFixtureModule(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	findings := Run(pkgs, Analyzers())

	got := map[string]int{}
	fired := map[string]bool{}
	for _, f := range findings {
		got[fmt.Sprintf("%s:%d:%s", f.File, f.Line, f.Analyzer)]++
		fired[f.Analyzer] = true
	}
	want := fixtureWants(t, root)
	for k, n := range want {
		if got[k] != n {
			t.Errorf("want %d finding(s) at %s, got %d", n, k, got[k])
		}
	}
	for k, n := range got {
		if want[k] != n {
			t.Errorf("unexpected finding(s) at %s (%d)", k, n)
		}
	}
	if t.Failed() {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
	}
	for _, a := range Analyzers() {
		if !fired[a.Name()] {
			t.Errorf("analyzer %s never fired on the fixture module", a.Name())
		}
	}
	if !fired["directive"] {
		t.Errorf("directive audit never fired on the fixture module")
	}
}

// TestRepositoryIsLintClean runs the suite over the real repository and
// asserts the zero-findings invariant that make lint enforces in CI.
func TestRepositoryIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type check; skipped in -short runs")
	}
	pkgs, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	for _, f := range Run(pkgs, Analyzers()) {
		t.Errorf("repository not lint-clean: %s", f)
	}
}
