package lint

import (
	"go/ast"
)

// ctxflow enforces the cancellation contract from PR 4: every campaign
// started anywhere in the library must be abortable from the outside.
// Two rules:
//
//  1. context.Background() / context.TODO() are reserved for package
//     main (and tests, which the loader never sees). A library helper
//     that mints its own root context detaches the work under it from
//     the caller's cancellation — an mcserved job using that helper
//     could never be cancelled mid-flight.
//  2. An exported function that fans work out through the campaign
//     engine (campaign.Run / RunScratch / Reduce / ReduceScratch /
//     ReduceSpan / ReduceSpanScratch) must accept a context.Context
//     parameter, so cancellation reaches every trial. The span variants
//     matter most: they are the fabric's worker path, and a lease
//     revocation can only stop a shard if the worker's context reaches
//     the span reduction.
type ctxflow struct{}

func (ctxflow) Name() string { return "ctxflow" }
func (ctxflow) Doc() string {
	return "no context.Background()/TODO() outside main; campaign entry points take ctx"
}

// campaignFanout names the engine entry points whose callers must hold
// a context.
var campaignFanout = map[string]bool{
	"Run": true, "RunScratch": true, "Reduce": true, "ReduceScratch": true,
	"ReduceSpan": true, "ReduceSpanScratch": true,
}

func (c ctxflow) Check(p *Package) []Finding {
	if p.Types.Name() == "main" {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if path, name, ok := qualifiedCall(p, call); ok && path == "context" && (name == "Background" || name == "TODO") {
				out = append(out, p.finding(c.Name(), call.Pos(),
					"context.%s() in library code detaches campaigns from caller cancellation; accept and propagate a ctx parameter", name))
			}
			return true
		})
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if c.hasCtxParam(p, fn) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false // nested closures judged at their capture site
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				path, name := calleePkgPath(p, call)
				if pathHasSuffix(path, "internal/campaign") && campaignFanout[name] {
					out = append(out, p.finding(c.Name(), fn.Name.Pos(),
						"exported %s fans out through campaign.%s but has no context.Context parameter; cancellation cannot reach the trials", fn.Name.Name, name))
					return false
				}
				return true
			})
		}
	}
	return out
}

// hasCtxParam reports whether the function declares a context.Context
// parameter.
func (ctxflow) hasCtxParam(p *Package, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if isContextType(p.Info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}
