package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
}

// LoadModule lists, parses, and type-checks every non-test package of
// the module rooted at root, using only the standard library: the
// package graph comes from `go list -json ./...`, in-module imports are
// type-checked recursively from source, and out-of-module (standard
// library) imports resolve through go/importer's source importer.
// Test files are deliberately excluded — the contracts apply to library
// and command code; tests may use wall clocks and background contexts.
func LoadModule(root string) ([]*Package, error) {
	cmd := exec.Command("go", "list", "-json", "./...")
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list -json ./... in %s: %v\n%s", root, err, stderr.String())
	}
	var listed []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		p := new(listPackage)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %v", err)
		}
		if len(p.GoFiles) > 0 {
			listed = append(listed, p)
		}
	}
	sort.Slice(listed, func(i, j int) bool { return listed[i].ImportPath < listed[j].ImportPath })

	fset := token.NewFileSet()
	ld := &loader{
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		byPath: map[string]*listPackage{},
		done:   map[string]*Package{},
	}
	for _, p := range listed {
		ld.byPath[p.ImportPath] = p
	}
	var pkgs []*Package
	for _, p := range listed {
		cp, err := ld.check(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, cp)
	}
	return pkgs, nil
}

// loader type-checks module packages in dependency order, memoising
// results so shared imports are checked once.
type loader struct {
	fset   *token.FileSet
	std    types.Importer
	byPath map[string]*listPackage
	done   map[string]*Package
}

// Import implements types.Importer over the module graph with a
// standard-library fallback.
func (ld *loader) Import(path string) (*types.Package, error) {
	if mp, ok := ld.byPath[path]; ok {
		cp, err := ld.check(mp)
		if err != nil {
			return nil, err
		}
		return cp.Types, nil
	}
	return ld.std.Import(path)
}

// check parses and type-checks one listed package (memoised).
func (ld *loader) check(p *listPackage) (*Package, error) {
	if cp, ok := ld.done[p.ImportPath]; ok {
		return cp, nil
	}
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: ld}
	tp, err := conf.Check(p.ImportPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %v", p.ImportPath, err)
	}
	cp := &Package{
		Path:  p.ImportPath,
		Dir:   p.Dir,
		Fset:  ld.fset,
		Files: files,
		Types: tp,
		Info:  info,
	}
	cp.scanDirectives()
	ld.done[p.ImportPath] = cp
	return cp, nil
}
