package lint

import (
	"go/ast"
	"go/types"
)

// hotalloc guards the allocation-free hot loops. Functions whose doc
// comment carries //mclint:hotpath — the Classify/Capture/fold loops
// already pinned by testing.AllocsPerRun — may not contain the source
// patterns that allocate on every call:
//
//   - any call into package fmt (Sprintf and friends allocate their
//     result and box every operand),
//   - composite literals that escape: slice/map literals, and &T{…},
//   - make/new (fresh heap state per call — scratch must come in from
//     the caller),
//   - append that can grow: appending to anything that is not an
//     explicit reslice (buf[:0] style capacity reuse).
//
// The AllocsPerRun pins catch a regression at test time; this analyzer
// names the exact line at review time.
type hotalloc struct{}

func (hotalloc) Name() string { return "hotalloc" }
func (hotalloc) Doc() string {
	return "//mclint:hotpath functions may not allocate (fmt, escaping literals, make/new, growing append)"
}

func (h hotalloc) Check(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasDirective(fn.Doc, "hotpath") {
				continue
			}
			// Track composite literals already reported as part of an
			// enclosing &T{…} so they are not flagged twice.
			claimed := map[*ast.CompositeLit]bool{}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch expr := n.(type) {
				case *ast.CallExpr:
					if path, name, ok := qualifiedCall(p, expr); ok && path == "fmt" {
						out = append(out, p.finding(h.Name(), expr.Pos(),
							"fmt.%s allocates on a hot path; format outside the loop or return raw values", name))
						return true
					}
					if id, ok := expr.Fun.(*ast.Ident); ok && p.Info.Uses[id] == types.Universe.Lookup(id.Name) {
						switch id.Name {
						case "make", "new":
							out = append(out, p.finding(h.Name(), expr.Pos(),
								"%s allocates per call on a hot path; take scratch from the caller", id.Name))
						case "append":
							if len(expr.Args) > 0 {
								if _, resliced := expr.Args[0].(*ast.SliceExpr); !resliced {
									out = append(out, p.finding(h.Name(), expr.Pos(),
										"append may grow its backing array on a hot path; reuse capacity (buf[:0]) or preallocate in the caller"))
								}
							}
						}
					}
				case *ast.UnaryExpr:
					if cl, ok := expr.X.(*ast.CompositeLit); ok && expr.Op.String() == "&" {
						claimed[cl] = true
						out = append(out, p.finding(h.Name(), expr.Pos(),
							"&composite literal escapes to the heap on a hot path"))
					}
				case *ast.CompositeLit:
					if claimed[expr] {
						return true
					}
					t := p.Info.TypeOf(expr)
					if t == nil {
						return true
					}
					switch t.Underlying().(type) {
					case *types.Slice, *types.Map:
						out = append(out, p.finding(h.Name(), expr.Pos(),
							"slice/map literal allocates on a hot path; hoist it to a package var or caller scratch"))
					}
				}
				return true
			})
		}
	}
	return out
}
