package lint

import (
	"go/ast"
	"go/types"
)

// maporder enforces iteration-order determinism: a `for range` over a
// map runs in a different order on every execution, so any map loop
// whose effects feed an accumulator, a signature, or serialized output
// silently breaks bit-identity. The analyzer flags every map-range
// loop in non-test code unless
//
//   - the loop is the collect-then-sort idiom — its body only appends
//     keys/values (possibly behind a filter condition) to a slice that
//     a later sort.* call in the same function orders — or
//   - the loop carries a justified //mclint:maporder directive stating
//     why order cannot leak into results.
type maporder struct{}

func (maporder) Name() string { return "maporder" }
func (maporder) Doc() string {
	return "no unordered map iteration outside the collect-then-sort idiom"
}

func (m maporder) Check(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.Info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if m.collectThenSort(p, fn, rs) {
					return true
				}
				out = append(out, p.finding(m.Name(), rs.Pos(),
					"map iteration order is nondeterministic; collect and sort keys first, or justify with //mclint:maporder"))
				return true
			})
		}
	}
	return out
}

// collectThenSort recognises the sanctioned idiom: the loop body is a
// single `s = append(s, …)` — optionally wrapped in a filter `if` with
// no else — and a statement after the loop (in the same function)
// passes s to a sort.* call.
func (m maporder) collectThenSort(p *Package, fn *ast.FuncDecl, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	stmt := rs.Body.List[0]
	if ifStmt, ok := stmt.(*ast.IfStmt); ok && ifStmt.Else == nil && len(ifStmt.Body.List) == 1 {
		stmt = ifStmt.Body.List[0]
	}
	asg, ok := stmt.(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	lhs, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" || len(call.Args) < 2 {
		return false
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || first.Name != lhs.Name {
		return false
	}
	slice := p.Info.Uses[lhs]
	if slice == nil {
		slice = p.Info.Defs[lhs]
	}
	if slice == nil {
		return false
	}
	// Look for sort.X(… slice …) after the loop anywhere in the function.
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if path, _, ok := qualifiedCall(p, call); !ok || path != "sort" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && p.Info.Uses[id] == slice {
				sorted = true
			}
		}
		return true
	})
	return sorted
}
