// Package prof wires the standard -cpuprofile/-memprofile flags into
// the repository's CLIs, so campaign hot spots can be profiled with
// `go tool pprof` without editing code:
//
//	mcmon -backend=analytic -cpuprofile=cpu.out
//	sigcap -shift 0.10 -memprofile=mem.out
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiler holds the flag values and the live CPU-profile file.
type Profiler struct {
	cpu, mem string
	cpuFile  *os.File
}

// FlagVars registers -cpuprofile and -memprofile on the flag set
// (flag.CommandLine when nil) and returns the profiler to start after
// parsing.
func FlagVars(fs *flag.FlagSet) *Profiler {
	if fs == nil {
		fs = flag.CommandLine
	}
	p := &Profiler{}
	fs.StringVar(&p.cpu, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.mem, "memprofile", "", "write a heap profile to this file on exit")
	return p
}

// Around runs fn between Start and Stop — the whole CLI wrapping in one
// call. fn's error wins; a profile-teardown error surfaces only when fn
// itself succeeded.
func (p *Profiler) Around(fn func() error) error {
	err := p.Start()
	if err == nil {
		err = fn()
	}
	if perr := p.Stop(); perr != nil && err == nil {
		err = perr
	}
	return err
}

// Start begins CPU profiling when requested. Call after flag parsing and
// pair with a deferred Stop.
func (p *Profiler) Start() error {
	if p.cpu == "" {
		return nil
	}
	f, err := os.Create(p.cpu)
	if err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		_ = f.Close() // the pprof failure is the error worth reporting
		return fmt.Errorf("prof: %w", err)
	}
	p.cpuFile = f
	return nil
}

// Stop finishes the CPU profile and writes the heap profile (after a GC,
// so the steady-state live set is what lands in the file). Safe to call
// when profiling was never requested.
func (p *Profiler) Stop() error {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		err := p.cpuFile.Close()
		p.cpuFile = nil
		if err != nil {
			return fmt.Errorf("prof: %w", err)
		}
	}
	if p.mem != "" {
		f, err := os.Create(p.mem)
		if err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			_ = f.Close()
			return fmt.Errorf("prof: %w", err)
		}
		// Close errors matter here: they are the last chance to learn the
		// profile never reached the disk.
		if err := f.Close(); err != nil {
			return fmt.Errorf("prof: %w", err)
		}
	}
	return nil
}
