package prof

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestProfilerWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	p := FlagVars(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// A little work so the CPU profile has something to sample.
	s := 0.0
	for i := 0; i < 1e6; i++ {
		s += float64(i)
	}
	_ = s
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{cpu, mem} {
		if st, err := os.Stat(f); err != nil || st.Size() == 0 {
			t.Fatalf("profile %s missing or empty (err %v)", f, err)
		}
	}
}

func TestProfilerNoopWithoutFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	p := FlagVars(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
}
