// Package signature implements the paper's digital signature (Eq. 1):
// the sequence of (zone code Z_i, dwell time Δ_i) pairs produced while
// the CUT's Lissajous composition traverses the monitored plane, plus the
// asynchronous capture hardware of Fig. 5 (transition detector, master
// clock, m-bit time counter) and serialization for off-chip readout.
package signature

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/monitor"
)

// Entry is one signature element: a zone code and its dwell time.
type Entry struct {
	Code monitor.Code
	Dur  float64 // seconds
}

// Signature is the full periodic signature {(Z_1, Δ_1) … (Z_k, Δ_k)}.
type Signature struct {
	Entries []Entry
	Period  float64 // the Lissajous period T the entries cover
}

// Classifier maps a time instant to a zone code — in the real system the
// monitor bank observing (x(t), y(t)).
type Classifier func(t float64) monitor.Code

// ErrEmpty is returned for operations on empty signatures.
var ErrEmpty = errors.New("signature: empty signature")

// Validate checks structural invariants: positive durations summing to
// the period and no adjacent duplicate codes.
func (s *Signature) Validate() error {
	if len(s.Entries) == 0 {
		return ErrEmpty
	}
	if s.Period <= 0 {
		return fmt.Errorf("signature: period %g must be positive", s.Period)
	}
	sum := 0.0
	for i, e := range s.Entries {
		if e.Dur <= 0 {
			return fmt.Errorf("signature: entry %d has non-positive duration %g", i, e.Dur)
		}
		if i > 0 && e.Code == s.Entries[i-1].Code {
			return fmt.Errorf("signature: entries %d and %d share code %d", i-1, i, e.Code)
		}
		sum += e.Dur
	}
	if math.Abs(sum-s.Period) > 1e-6*s.Period {
		return fmt.Errorf("signature: durations sum to %g, period is %g", sum, s.Period)
	}
	return nil
}

// At returns the zone code at time t (t is wrapped into [0, Period)).
func (s *Signature) At(t float64) monitor.Code {
	if len(s.Entries) == 0 {
		return 0
	}
	t = math.Mod(t, s.Period)
	if t < 0 {
		t += s.Period
	}
	acc := 0.0
	for _, e := range s.Entries {
		acc += e.Dur
		if t < acc {
			return e.Code
		}
	}
	return s.Entries[len(s.Entries)-1].Code
}

// Cursor resolves At-style code lookups against a signature with a
// cumulative-time position, answering nondecreasing query sequences —
// the chronogram and sampled-NDF loops — in amortized O(1) instead of
// At's O(entries) scan per call. Queries that move backwards in time
// rewind the cursor and stay correct, just slower. Results are identical
// to Signature.At for every t (the cumulative sums are accumulated in
// the same order). A Cursor must not outlive mutations of the signature
// and is not safe for concurrent use.
type Cursor struct {
	sig        *Signature
	idx        int
	begin, end float64 // current entry's [begin, end) window
}

// Cursor returns a lookup cursor positioned at the first entry.
func (s *Signature) Cursor() Cursor {
	c := Cursor{sig: s}
	c.rewind()
	return c
}

// rewind repositions the cursor at the first entry.
func (c *Cursor) rewind() {
	c.idx, c.begin, c.end = 0, 0, 0
	if len(c.sig.Entries) > 0 {
		c.end = c.sig.Entries[0].Dur
	}
}

// At returns the zone code at time t (wrapped into [0, Period)), exactly
// as Signature.At does.
func (c *Cursor) At(t float64) monitor.Code {
	s := c.sig
	if len(s.Entries) == 0 {
		return 0
	}
	t = math.Mod(t, s.Period)
	if t < 0 {
		t += s.Period
	}
	if t < c.begin {
		c.rewind()
	}
	for t >= c.end && c.idx < len(s.Entries)-1 {
		c.idx++
		c.begin = c.end
		c.end += s.Entries[c.idx].Dur
	}
	return s.Entries[c.idx].Code
}

// NumZones returns the number of entries (zones traversed, with
// revisits counted each time).
func (s *Signature) NumZones() int { return len(s.Entries) }

// DistinctCodes returns the set of distinct codes in traversal order of
// first appearance.
func (s *Signature) DistinctCodes() []monitor.Code {
	seen := make(map[monitor.Code]bool)
	var out []monitor.Code
	for _, e := range s.Entries {
		if !seen[e.Code] {
			seen[e.Code] = true
			out = append(out, e.Code)
		}
	}
	return out
}

// Canonical merges adjacent equal codes (which quantized capture can
// produce after counter wrap splitting) and rotates the entry list so it
// begins with the entry active at t = 0⁺. It returns a new signature.
func (s *Signature) Canonical() *Signature {
	out := &Signature{Period: s.Period}
	for _, e := range s.Entries {
		if n := len(out.Entries); n > 0 && out.Entries[n-1].Code == e.Code {
			out.Entries[n-1].Dur += e.Dur
		} else {
			out.Entries = append(out.Entries, e)
		}
	}
	// If first and last codes match, the traversal wrapped mid-zone;
	// keep them separate (period boundary is a legitimate cut point).
	return out
}

// String renders the signature like the paper's notation.
func (s *Signature) String() string {
	var b strings.Builder
	b.WriteString("{")
	for i, e := range s.Entries {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %.3gus)", e.Code, e.Dur*1e6)
	}
	b.WriteString("}")
	return b.String()
}

// Exact extracts the ideal (unquantized) signature of a classifier over
// one period T: it scans with nScan samples and refines every transition
// instant by bisection to tol seconds. It is the reference the clocked
// capture is tested against.
func Exact(classify Classifier, T float64, nScan int, tol float64) (*Signature, error) {
	if T <= 0 {
		return nil, fmt.Errorf("signature: period %g must be positive", T)
	}
	if nScan < 2 {
		return nil, fmt.Errorf("signature: need at least 2 scan points")
	}
	codes := make([]monitor.Code, nScan+1)
	for i := 0; i <= nScan; i++ {
		codes[i] = classify(T * float64(i) / float64(nScan))
	}
	return ExactFromCodes(codes, classify, T, tol)
}

// ExactFromCodes is Exact for the batched pipeline: the scan grid has
// already been classified (codes[i] = code at T·i/nScan for
// i = 0 … nScan, so len(codes) = nScan+1) and only the transition
// brackets found on the grid are refined by bisection with the exact
// scalar classifier. The result is bit-identical to Exact with a
// classifier returning the same grid codes.
func ExactFromCodes(codes []monitor.Code, classify Classifier, T float64, tol float64) (*Signature, error) {
	nScan := len(codes) - 1
	if T <= 0 {
		return nil, fmt.Errorf("signature: period %g must be positive", T)
	}
	if nScan < 2 {
		return nil, fmt.Errorf("signature: need at least 2 scan points")
	}
	if tol <= 0 {
		tol = T * 1e-9
	}
	type edge struct {
		t    float64
		code monitor.Code // code after the transition
	}
	var edges []edge
	prev := codes[0]
	first := prev
	tPrev := 0.0
	for i := 1; i <= nScan; i++ {
		t := T * float64(i) / float64(nScan)
		c := codes[i]
		if c != prev {
			// Refine transition in (tPrev, t]. Note multiple transitions
			// inside one scan step are merged — nScan must be chosen
			// fine enough (callers use ≥ 4096 for the paper's curves).
			lo, hi := tPrev, t
			for hi-lo > tol {
				mid := 0.5 * (lo + hi)
				if classify(mid) == prev {
					lo = mid
				} else {
					hi = mid
				}
			}
			edges = append(edges, edge{t: hi, code: classify(hi)})
			prev = c
		}
		tPrev = t
	}
	sig := &Signature{Period: T}
	if len(edges) == 0 {
		sig.Entries = []Entry{{Code: first, Dur: T}}
		return sig, nil
	}
	// Build entries: from t=0 to first edge is the first code, etc.
	tCur := 0.0
	codeCur := first
	for _, e := range edges {
		if e.t > tCur {
			sig.Entries = append(sig.Entries, Entry{Code: codeCur, Dur: e.t - tCur})
		}
		tCur = e.t
		codeCur = e.code
	}
	if T > tCur {
		sig.Entries = append(sig.Entries, Entry{Code: codeCur, Dur: T - tCur})
	}
	return sig.Canonical(), nil
}

const magic = 0x53494731 // "SIG1"

// MarshalBinary implements encoding.BinaryMarshaler: a compact readout
// format (magic, period, entry count, then code/duration pairs).
func (s *Signature) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	w := func(v any) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w(uint32(magic))
	w(s.Period)
	w(uint32(len(s.Entries)))
	for _, e := range s.Entries {
		w(uint32(e.Code))
		w(e.Dur)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *Signature) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	var m uint32
	rd := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	if err := rd(&m); err != nil {
		return fmt.Errorf("signature: truncated header: %w", err)
	}
	if m != magic {
		return fmt.Errorf("signature: bad magic %#x", m)
	}
	var period float64
	var n uint32
	if err := rd(&period); err != nil {
		return err
	}
	// Reject non-finite and non-positive periods: NaN in particular
	// would silently break the round-trip contract (NaN never compares
	// equal) and every downstream duration normalization.
	if !(period > 0) || math.IsInf(period, 0) {
		return fmt.Errorf("signature: invalid period %v", period)
	}
	if err := rd(&n); err != nil {
		return err
	}
	if n > 1<<20 {
		return fmt.Errorf("signature: implausible entry count %d", n)
	}
	entries := make([]Entry, n)
	for i := range entries {
		var code uint32
		var dur float64
		if err := rd(&code); err != nil {
			return err
		}
		if err := rd(&dur); err != nil {
			return err
		}
		if math.IsNaN(dur) || math.IsInf(dur, 0) || dur < 0 {
			return fmt.Errorf("signature: invalid duration %v at entry %d", dur, i)
		}
		entries[i] = Entry{Code: monitor.Code(code), Dur: dur}
	}
	s.Period = period
	s.Entries = entries
	return nil
}

// MarshalJSON renders the signature as a readable JSON document with
// durations in seconds — the interchange format for tooling that does
// not speak the binary readout.
func (s *Signature) MarshalJSON() ([]byte, error) {
	type entry struct {
		Code uint32  `json:"code"`
		Dur  float64 `json:"dur_s"`
	}
	doc := struct {
		Period  float64 `json:"period_s"`
		Entries []entry `json:"entries"`
	}{Period: s.Period}
	for _, e := range s.Entries {
		doc.Entries = append(doc.Entries, entry{Code: uint32(e.Code), Dur: e.Dur})
	}
	return json.Marshal(doc)
}

// UnmarshalJSON parses the MarshalJSON format.
func (s *Signature) UnmarshalJSON(data []byte) error {
	var doc struct {
		Period  float64 `json:"period_s"`
		Entries []struct {
			Code uint32  `json:"code"`
			Dur  float64 `json:"dur_s"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("signature: %w", err)
	}
	s.Period = doc.Period
	s.Entries = s.Entries[:0]
	for _, e := range doc.Entries {
		s.Entries = append(s.Entries, Entry{Code: monitor.Code(e.Code), Dur: e.Dur})
	}
	return nil
}
