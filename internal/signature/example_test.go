package signature_test

import (
	"fmt"
	"math"

	"repro/internal/monitor"
	"repro/internal/signature"
)

// Fig. 5's clocked capture: a classifier crossing two zones is sampled
// at the master clock, dwell times come from the m-bit counter.
func ExampleCapture() {
	T := 200e-6
	classify := func(t float64) monitor.Code {
		if math.Mod(t, T) < 80e-6 {
			return 0b000100
		}
		return 0b000101
	}
	sig, err := signature.Capture(classify, T, signature.DefaultCapture())
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, e := range sig.Entries {
		fmt.Printf("zone %06b for %.0f us\n", e.Code, e.Dur*1e6)
	}
	// Output:
	// zone 000100 for 80 us
	// zone 000101 for 120 us
}
