package signature

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/monitor"
	"repro/internal/rng"
)

// fillCodes samples a classifier on the capture tick grid.
func fillCodes(t *testing.T, cls Classifier, T float64, cfg CaptureConfig) []monitor.Code {
	t.Helper()
	n, err := cfg.Ticks(T)
	if err != nil {
		t.Fatal(err)
	}
	tick := 1 / cfg.ClockHz
	codes := make([]monitor.Code, n)
	codes[0] = cls(0)
	for k := 1; k < n; k++ {
		codes[k] = cls(float64(k) * tick)
	}
	return codes
}

func sameSignature(a, b *Signature) bool {
	if a.Period != b.Period || len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			return false
		}
	}
	return true
}

// TestCaptureCanonicalCodesMatchesScalar: walking a precomputed code
// slice must be bit-identical to the scalar per-tick capture, across
// deglitching depths and counter-wrap splits.
func TestCaptureCanonicalCodesMatchesScalar(t *testing.T) {
	T := 200e-6
	cfgs := []CaptureConfig{
		{ClockHz: 10e6, CounterBits: 16},
		{ClockHz: 10e6, CounterBits: 8}, // forces wraps
		{ClockHz: 10e6, CounterBits: 16, MinStableTicks: 4},
		{ClockHz: 2.5e6, CounterBits: 12},
	}
	for _, cfg := range cfgs {
		for seed := uint8(0); seed < 8; seed++ {
			k := 2 + int(seed%5)
			cls := func(t float64) monitor.Code {
				frac := math.Mod(t, T) / T
				return monitor.Code(int(frac*float64(k)) % k)
			}
			want, err := CaptureCanonical(cls, T, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := CaptureCanonicalCodes(fillCodes(t, cls, T, cfg), T, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !sameSignature(want, got) {
				t.Fatalf("cfg %+v seed %d: codes path %v, scalar path %v", cfg, seed, got, want)
			}
		}
	}
}

// TestCaptureCanonicalBufferReuse: repeated warm-buffer captures must be
// bit-identical to fresh one-shot captures — stale scratch contents must
// never leak into a result.
func TestCaptureCanonicalBufferReuse(t *testing.T) {
	T := 200e-6
	cfg := CaptureConfig{ClockHz: 10e6, CounterBits: 16}
	buf := &CaptureBuffer{}
	for seed := uint8(0); seed < 6; seed++ {
		k := 2 + int(seed%4)
		cls := func(t float64) monitor.Code {
			frac := math.Mod(t, T) / T
			return monitor.Code(int(frac*float64(k)) % k)
		}
		fresh, err := CaptureCanonical(cls, T, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := CaptureCanonical(cls, T, cfg, buf)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSignature(fresh, warm) {
			t.Fatalf("seed %d: warm buffer diverged: %v vs %v", seed, warm, fresh)
		}
	}
}

// TestCaptureCanonicalCodesRejectsWrongLength: the codes slice must
// cover exactly one tick grid.
func TestCaptureCanonicalCodesRejectsWrongLength(t *testing.T) {
	cfg := DefaultCapture()
	if _, err := CaptureCanonicalCodes(make([]monitor.Code, 7), 200e-6, cfg, nil); err == nil {
		t.Fatal("wrong-length code slice accepted")
	}
	if _, err := CaptureCanonicalCodes(nil, 0, cfg, nil); err == nil {
		t.Fatal("zero period accepted")
	}
}

// Allocation pin: a warm capture buffer makes the canonical capture loop
// allocation-free — one buffer per campaign worker absorbs every period.
func TestCaptureCanonicalAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	T := 200e-6
	cfg := DefaultCapture()
	cls := stepClassifier(T)
	buf := &CaptureBuffer{}
	if _, err := CaptureCanonical(cls, T, cfg, buf); err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(50, func() {
		if _, err := CaptureCanonical(cls, T, cfg, buf); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Fatalf("warm CaptureCanonical allocates %.1f per capture, want 0", a)
	}
	codes := buf.Codes(2000)
	if a := testing.AllocsPerRun(50, func() {
		if _, err := CaptureCanonicalCodes(codes, T, cfg, buf); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Fatalf("warm CaptureCanonicalCodes allocates %.1f per capture, want 0", a)
	}
}

// TestExactFromCodesMatchesExact: the grid-then-bisect split must equal
// the fused scalar Exact for deterministic classifiers.
func TestExactFromCodesMatchesExact(t *testing.T) {
	T := 1e-3
	cls := stepClassifier(T)
	const nScan = 4096
	want, err := Exact(cls, T, nScan, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	codes := make([]monitor.Code, nScan+1)
	for i := range codes {
		codes[i] = cls(T * float64(i) / float64(nScan))
	}
	got, err := ExactFromCodes(codes, cls, T, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSignature(want, got) {
		t.Fatalf("ExactFromCodes %v, Exact %v", got, want)
	}
	if _, err := ExactFromCodes(codes[:2], cls, T, 0); err == nil {
		t.Fatal("2-point code grid accepted (needs at least 2 scan intervals)")
	}
}

// TestCursorMatchesAt: property test — the cumulative cursor equals
// Signature.At for monotone, backwards and wrapping query sequences.
func TestCursorMatchesAt(t *testing.T) {
	prop := func(seed uint16) bool {
		src := rng.New(uint64(seed))
		n := 1 + int(src.Uint64()%12)
		sig := &Signature{Period: 1e-3}
		rem := sig.Period
		for i := 0; i < n; i++ {
			d := rem / float64(n-i)
			if i < n-1 {
				d *= 0.5 + src.Float64()
				if d > rem {
					d = rem
				}
			} else {
				d = rem
			}
			sig.Entries = append(sig.Entries, Entry{Code: monitor.Code(src.Uint64() % 8), Dur: d})
			rem -= d
		}
		cur := sig.Cursor()
		for q := 0; q < 200; q++ {
			var tq float64
			switch q % 3 {
			case 0: // forward ramp
				tq = sig.Period * float64(q) / 200
			case 1: // random, including out-of-period wraps
				tq = (src.Float64()*3 - 1) * sig.Period
			default: // exactly on cumulative boundaries
				idx := int(src.Uint64() % uint64(len(sig.Entries)))
				acc := 0.0
				for i := 0; i <= idx; i++ {
					acc += sig.Entries[i].Dur
				}
				tq = acc
			}
			if cur.At(tq) != sig.At(tq) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestChronogramCursorEquivalence: the cursor-backed Chronogram must
// equal a naive At-based scan.
func TestChronogramCursorEquivalence(t *testing.T) {
	sig, bank := paperSignature(t, 0.10)
	times, dec := Chronogram(sig, bank, 512)
	for i := range times {
		if want := bank.Decimal(sig.At(times[i])); dec[i] != want {
			t.Fatalf("sample %d: cursor %d, At %d", i, dec[i], want)
		}
	}
}
