package signature

import "testing"

// FuzzUnmarshalBinary: arbitrary bytes must never panic the decoder, and
// anything it accepts must re-marshal to an equivalent payload.
func FuzzUnmarshalBinary(f *testing.F) {
	good, _ := (&Signature{Period: 1e-3, Entries: []Entry{{Code: 3, Dur: 1e-3}}}).MarshalBinary()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Signature
		if err := s.UnmarshalBinary(data); err != nil {
			return
		}
		back, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted signature failed to re-marshal: %v", err)
		}
		var s2 Signature
		if err := s2.UnmarshalBinary(back); err != nil {
			t.Fatalf("re-marshalled payload rejected: %v", err)
		}
		if s2.Period != s.Period || len(s2.Entries) != len(s.Entries) {
			t.Fatal("round trip changed structure")
		}
	})
}
