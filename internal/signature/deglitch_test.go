package signature

import (
	"math"
	"testing"

	"repro/internal/monitor"
	"repro/internal/rng"
)

// chatterClassifier models a boundary with noise chatter: a clean
// transition at T/2 plus random single-tick flips near the boundary.
func chatterClassifier(T float64, src *rng.Stream) Classifier {
	return func(t float64) monitor.Code {
		frac := math.Mod(t, T) / T
		base := monitor.Code(0)
		if frac >= 0.5 {
			base = 1
		}
		// Within ±2% of the boundary, 30% of samples flip.
		if math.Abs(frac-0.5) < 0.02 && src.Float64() < 0.3 {
			return base ^ 1
		}
		return base
	}
}

func TestDeglitchSuppressesChatter(t *testing.T) {
	T := 200e-6
	raw, err := Capture(chatterClassifier(T, rng.New(5)), T,
		CaptureConfig{ClockHz: 10e6, CounterBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	deg, err := Capture(chatterClassifier(T, rng.New(5)), T,
		CaptureConfig{ClockHz: 10e6, CounterBits: 16, MinStableTicks: 4})
	if err != nil {
		t.Fatal(err)
	}
	rawN := len(raw.Canonical().Entries)
	degN := len(deg.Canonical().Entries)
	if rawN <= 3 {
		t.Fatalf("chatter model produced no spurious transitions (%d entries)", rawN)
	}
	if degN >= rawN {
		t.Fatalf("deglitch did not reduce transitions: %d -> %d", rawN, degN)
	}
	if degN > 4 {
		t.Fatalf("deglitched capture still has %d entries, want ~2", degN)
	}
}

func TestDeglitchPreservesCleanSignature(t *testing.T) {
	T := 200e-6
	cls := stepClassifier(T)
	plain, err := Capture(cls, T, CaptureConfig{ClockHz: 10e6, CounterBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	deg, err := Capture(cls, T, CaptureConfig{ClockHz: 10e6, CounterBits: 16, MinStableTicks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Entries) != len(deg.Entries) {
		t.Fatalf("deglitch changed clean structure: %d vs %d entries",
			len(plain.Entries), len(deg.Entries))
	}
	tick := 1e-7
	for i := range plain.Entries {
		if plain.Entries[i].Code != deg.Entries[i].Code {
			t.Fatalf("entry %d code changed", i)
		}
		// Retroactive attribution keeps dwell errors within the deglitch
		// depth.
		if math.Abs(plain.Entries[i].Dur-deg.Entries[i].Dur) > 4*tick {
			t.Fatalf("entry %d dwell moved: %v vs %v",
				i, plain.Entries[i].Dur, deg.Entries[i].Dur)
		}
	}
}

func TestDeglitchValidation(t *testing.T) {
	cfg := CaptureConfig{ClockHz: 1e6, CounterBits: 8, MinStableTicks: -1}
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative deglitch accepted")
	}
}

func TestDeglitchDurationsStillSumToPeriod(t *testing.T) {
	T := 200e-6
	sig, err := Capture(chatterClassifier(T, rng.New(9)), T,
		CaptureConfig{ClockHz: 10e6, CounterBits: 16, MinStableTicks: 5})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, e := range sig.Entries {
		sum += e.Dur
	}
	if math.Abs(sum-T) > 1e-12 {
		t.Fatalf("durations sum to %v, want %v", sum, T)
	}
	if err := sig.Canonical().Validate(); err != nil {
		t.Fatal(err)
	}
}
