package signature

import (
	"fmt"
	"math"

	"repro/internal/monitor"
)

// CaptureConfig models the asynchronous capture hardware of Fig. 5: the
// monitor outputs feed a transition detector; an m-bit counter running on
// the master clock measures the time spent in each zone and is reset on
// every code change.
type CaptureConfig struct {
	ClockHz     float64 // master clock frequency
	CounterBits int     // m, the time-register width
	// MinStableTicks makes the transition detector accept a new code
	// only after it has been observed for this many consecutive clock
	// ticks (0 or 1 = immediate). Hardware deglitching: noise chatter at
	// a zone boundary rarely holds a code for several ticks, so a small
	// value suppresses spurious transitions without moving genuine ones
	// (the stable run is attributed retroactively to the new zone).
	MinStableTicks int
}

// DefaultCapture is the configuration used throughout the reproduction:
// 10 MHz master clock and a 16-bit counter (2000 clocks per 200 µs
// Lissajous period, far from wrap).
func DefaultCapture() CaptureConfig {
	return CaptureConfig{ClockHz: 10e6, CounterBits: 16}
}

// Validate checks the configuration.
func (c CaptureConfig) Validate() error {
	if c.ClockHz <= 0 {
		return fmt.Errorf("signature: clock %g Hz must be positive", c.ClockHz)
	}
	if c.CounterBits < 1 || c.CounterBits > 32 {
		return fmt.Errorf("signature: counter bits %d out of [1,32]", c.CounterBits)
	}
	if c.MinStableTicks < 0 {
		return fmt.Errorf("signature: negative deglitch depth %d", c.MinStableTicks)
	}
	return nil
}

// MaxCount returns the largest counter value before wrap (2^m − 1).
func (c CaptureConfig) MaxCount() uint64 { return 1<<uint(c.CounterBits) - 1 }

// Capture runs the clocked acquisition over one period T: the classifier
// is sampled on every master-clock tick; a code change latches the
// counter into the time register and resets it. If a zone dwell exceeds
// the counter range, the counter wraps and the capture emits a split
// entry of the maximum measurable duration — the post-processing
// Canonical() merge restores the total dwell, which is how the readout
// software of such a monitor recovers long intervals.
func Capture(classify Classifier, T float64, cfg CaptureConfig) (*Signature, error) {
	entries, err := captureRaw(classify, T, cfg, nil)
	if err != nil {
		return nil, err
	}
	return &Signature{Period: T, Entries: entries}, nil
}

// CaptureBuffer holds reusable scratch for repeated captures, so a
// Monte-Carlo trial loop does not re-allocate the raw entry sequence on
// every period. One buffer per campaign worker; like rng.Stream it is
// not safe for concurrent use.
type CaptureBuffer struct {
	raw []Entry
}

// CaptureCanonical is Capture followed by Canonical: the raw (wrap-split)
// entry sequence accumulates in buf's scratch and only the merged
// canonical signature — which the caller keeps — is freshly allocated.
// A nil buf degrades to one-shot scratch. The result is bit-identical to
// Capture(...).Canonical().
func CaptureCanonical(classify Classifier, T float64, cfg CaptureConfig, buf *CaptureBuffer) (*Signature, error) {
	var scratch []Entry
	if buf != nil {
		scratch = buf.raw[:0]
	}
	raw, err := captureRaw(classify, T, cfg, scratch)
	if buf != nil && raw != nil {
		buf.raw = raw
	}
	if err != nil {
		return nil, err
	}
	return (&Signature{Period: T, Entries: raw}).Canonical(), nil
}

// captureRaw appends the raw clocked acquisition into scratch[:len] and
// returns the filled slice (the Capture hardware model shared by Capture
// and CaptureCanonical).
func captureRaw(classify Classifier, T float64, cfg CaptureConfig, scratch []Entry) ([]Entry, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if T <= 0 {
		return nil, fmt.Errorf("signature: period %g must be positive", T)
	}
	tick := 1 / cfg.ClockHz
	n := int(math.Round(T / tick))
	if n < 2 {
		return nil, fmt.Errorf("signature: period %g too short for clock %g", T, cfg.ClockHz)
	}
	maxCount := cfg.MaxCount()
	stable := cfg.MinStableTicks
	if stable < 1 {
		stable = 1
	}
	entries := scratch
	cur := classify(0)
	var count uint64
	var candidate monitor.Code
	var candidateRun uint64
	emit := func(code monitor.Code, counts uint64) {
		if counts == 0 {
			return
		}
		entries = append(entries, Entry{Code: code, Dur: float64(counts) * tick})
	}
	for k := 1; k < n; k++ {
		t := float64(k) * tick
		count++
		if count > maxCount {
			// Counter wrap: hardware latches the max value and restarts.
			emit(cur, maxCount)
			count -= maxCount
		}
		c := classify(t)
		switch {
		case c == cur:
			candidateRun = 0
		case c == candidate:
			candidateRun++
		default:
			candidate = c
			candidateRun = 1
		}
		if candidateRun >= uint64(stable) {
			// Accept: the stable run belongs to the new zone.
			run := candidateRun
			if run > count {
				run = count
			}
			emit(cur, count-run)
			cur = c
			count = run
			candidateRun = 0
		}
	}
	// Close the period: remaining counts belong to the final code.
	emit(cur, count+1)
	// Normalize total duration to exactly T (rounding of n·tick).
	total := 0.0
	for _, e := range entries {
		total += e.Dur
	}
	if total > 0 && math.Abs(total-T) > 1e-12 {
		scale := T / total
		for i := range entries {
			entries[i].Dur *= scale
		}
	}
	if len(entries) == 0 {
		return entries, ErrEmpty
	}
	return entries, nil
}

// Chronogram samples the signature's code at n uniform instants over the
// period, returning the decimal-coded series of Fig. 7's upper plot.
func Chronogram(s *Signature, bank *monitor.Bank, n int) (times []float64, decimal []int) {
	times = make([]float64, n)
	decimal = make([]int, n)
	for i := 0; i < n; i++ {
		t := s.Period * float64(i) / float64(n)
		times[i] = t
		decimal[i] = bank.Decimal(s.At(t))
	}
	return times, decimal
}
