package signature

import (
	"fmt"
	"math"

	"repro/internal/monitor"
)

// CaptureConfig models the asynchronous capture hardware of Fig. 5: the
// monitor outputs feed a transition detector; an m-bit counter running on
// the master clock measures the time spent in each zone and is reset on
// every code change.
type CaptureConfig struct {
	ClockHz     float64 // master clock frequency
	CounterBits int     // m, the time-register width
	// MinStableTicks makes the transition detector accept a new code
	// only after it has been observed for this many consecutive clock
	// ticks (0 or 1 = immediate). Hardware deglitching: noise chatter at
	// a zone boundary rarely holds a code for several ticks, so a small
	// value suppresses spurious transitions without moving genuine ones
	// (the stable run is attributed retroactively to the new zone).
	MinStableTicks int
}

// DefaultCapture is the configuration used throughout the reproduction:
// 10 MHz master clock and a 16-bit counter (2000 clocks per 200 µs
// Lissajous period, far from wrap).
func DefaultCapture() CaptureConfig {
	return CaptureConfig{ClockHz: 10e6, CounterBits: 16}
}

// Validate checks the configuration.
func (c CaptureConfig) Validate() error {
	if c.ClockHz <= 0 {
		return fmt.Errorf("signature: clock %g Hz must be positive", c.ClockHz)
	}
	if c.CounterBits < 1 || c.CounterBits > 32 {
		return fmt.Errorf("signature: counter bits %d out of [1,32]", c.CounterBits)
	}
	if c.MinStableTicks < 0 {
		return fmt.Errorf("signature: negative deglitch depth %d", c.MinStableTicks)
	}
	return nil
}

// MaxCount returns the largest counter value before wrap (2^m − 1).
func (c CaptureConfig) MaxCount() uint64 { return 1<<uint(c.CounterBits) - 1 }

// Ticks returns the number of master-clock samples one capture takes
// over period T — the length of the per-tick code slice the batched
// pipeline supplies (tick k samples t = k/ClockHz, k = 0 … n−1).
func (c CaptureConfig) Ticks(T float64) (int, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if T <= 0 {
		return 0, fmt.Errorf("signature: period %g must be positive", T)
	}
	tick := 1 / c.ClockHz
	n := int(math.Round(T / tick))
	if n < 2 {
		return 0, fmt.Errorf("signature: period %g too short for clock %g", T, c.ClockHz)
	}
	return n, nil
}

// Capture runs the clocked acquisition over one period T: the classifier
// is sampled on every master-clock tick; a code change latches the
// counter into the time register and resets it. If a zone dwell exceeds
// the counter range, the counter wraps and the capture emits a split
// entry of the maximum measurable duration — the post-processing
// Canonical() merge restores the total dwell, which is how the readout
// software of such a monitor recovers long intervals.
func Capture(classify Classifier, T float64, cfg CaptureConfig) (*Signature, error) {
	entries, err := captureRaw(classify, T, cfg, nil)
	if err != nil {
		return nil, err
	}
	return &Signature{Period: T, Entries: entries}, nil
}

// CaptureBuffer holds reusable scratch for repeated captures, so a
// Monte-Carlo trial loop does not re-allocate the raw entry sequence,
// the per-tick code grid, or the canonical result on every period. One
// buffer per campaign worker; like rng.Stream it is not safe for
// concurrent use.
type CaptureBuffer struct {
	raw   []Entry
	canon []Entry
	codes []monitor.Code
	sig   Signature
}

// Codes returns the buffer's per-tick code scratch resized to n slots
// (contents undefined). The batched pipeline fills it and hands it to
// CaptureCanonicalCodes; reusing the buffer's scratch keeps the steady
// state allocation-free.
func (b *CaptureBuffer) Codes(n int) []monitor.Code {
	if cap(b.codes) < n {
		b.codes = make([]monitor.Code, n)
	}
	b.codes = b.codes[:n]
	return b.codes
}

// CaptureCanonical is Capture followed by Canonical. With a nil buf both
// the scratch and the result are freshly allocated and the caller owns
// the signature. With a non-nil buf the raw (wrap-split) sequence, the
// canonical merge and the returned Signature header all live in the
// buffer: zero steady-state allocations, but the result is only valid
// until the buffer's next capture — campaign workers consume the NDF and
// discard the signature before the next trial, which is exactly that
// contract. Either way the result is bit-identical to
// Capture(...).Canonical().
//
//mclint:hotpath
func CaptureCanonical(classify Classifier, T float64, cfg CaptureConfig, buf *CaptureBuffer) (*Signature, error) {
	raw, err := captureRaw(classify, T, cfg, buf)
	if err != nil {
		return nil, err
	}
	return canonicalFromRaw(raw, T, buf), nil
}

// CaptureCanonicalCodes is CaptureCanonical for the batched pipeline:
// the caller has already classified every master-clock tick
// (codes[k] = code at t = k/ClockHz, len(codes) == cfg.Ticks(T)) and the
// capture hardware model just walks the slice. Buffer semantics match
// CaptureCanonical; codes may alias buf.Codes. The result is
// bit-identical to the scalar CaptureCanonical fed a classifier that
// returns the same per-tick codes.
//
//mclint:hotpath
func CaptureCanonicalCodes(codes []monitor.Code, T float64, cfg CaptureConfig, buf *CaptureBuffer) (*Signature, error) {
	n, err := cfg.Ticks(T)
	if err != nil {
		return nil, err
	}
	if len(codes) != n {
		//mclint:hotalloc cold misuse path; runs once per bad call, never in the trial loop
		return nil, fmt.Errorf("signature: got %d tick codes, capture needs %d", len(codes), n)
	}
	raw, err := walkIntoBuf(codes, T, cfg, buf)
	if err != nil {
		return nil, err
	}
	return canonicalFromRaw(raw, T, buf), nil
}

// walkIntoBuf runs walkCodes with the buffer's raw scratch (writing the
// grown slice back) and maps an empty result to ErrEmpty — the buffer
// bookkeeping shared by the scalar and codes-slice capture paths.
func walkIntoBuf(codes []monitor.Code, T float64, cfg CaptureConfig, buf *CaptureBuffer) ([]Entry, error) {
	var scratch []Entry
	if buf != nil {
		scratch = buf.raw[:0]
	}
	entries := walkCodes(codes, T, cfg, scratch)
	if buf != nil {
		buf.raw = entries
	}
	if len(entries) == 0 {
		return entries, ErrEmpty
	}
	return entries, nil
}

// captureRaw samples the classifier on every master-clock tick into the
// buffer's code scratch and walks the resulting sequence — the capture
// hardware model shared by Capture and CaptureCanonical. The classifier
// is invoked in tick order (k = 0 … n−1), so stateful classifiers (the
// measurement-noise path) draw exactly as they did when the acquisition
// loop was fused.
//
//mclint:hotpath
func captureRaw(classify Classifier, T float64, cfg CaptureConfig, buf *CaptureBuffer) ([]Entry, error) {
	n, err := cfg.Ticks(T)
	if err != nil {
		return nil, err
	}
	var codes []monitor.Code
	if buf != nil {
		codes = buf.Codes(n)
	} else {
		//mclint:hotalloc nil-buf convenience path; the steady-state trial loop always passes a CaptureBuffer
		codes = make([]monitor.Code, n)
	}
	tick := 1 / cfg.ClockHz
	codes[0] = classify(0)
	for k := 1; k < n; k++ {
		codes[k] = classify(float64(k) * tick)
	}
	return walkIntoBuf(codes, T, cfg, buf)
}

// walkCodes runs the Fig. 5 transition detector + m-bit counter over the
// per-tick code sequence, appending raw (wrap-split) entries to scratch.
func walkCodes(codes []monitor.Code, T float64, cfg CaptureConfig, scratch []Entry) []Entry {
	tick := 1 / cfg.ClockHz
	maxCount := cfg.MaxCount()
	stable := cfg.MinStableTicks
	if stable < 1 {
		stable = 1
	}
	entries := scratch
	cur := codes[0]
	var count uint64
	var candidate monitor.Code
	var candidateRun uint64
	emit := func(code monitor.Code, counts uint64) {
		if counts == 0 {
			return
		}
		entries = append(entries, Entry{Code: code, Dur: float64(counts) * tick})
	}
	for k := 1; k < len(codes); k++ {
		count++
		if count > maxCount {
			// Counter wrap: hardware latches the max value and restarts.
			emit(cur, maxCount)
			count -= maxCount
		}
		c := codes[k]
		switch {
		case c == cur:
			candidateRun = 0
		case c == candidate:
			candidateRun++
		default:
			candidate = c
			candidateRun = 1
		}
		if candidateRun >= uint64(stable) {
			// Accept: the stable run belongs to the new zone.
			run := candidateRun
			if run > count {
				run = count
			}
			emit(cur, count-run)
			cur = c
			count = run
			candidateRun = 0
		}
	}
	// Close the period: remaining counts belong to the final code.
	emit(cur, count+1)
	// Normalize total duration to exactly T (rounding of n·tick).
	total := 0.0
	for _, e := range entries {
		total += e.Dur
	}
	if total > 0 && math.Abs(total-T) > 1e-12 {
		scale := T / total
		for i := range entries {
			entries[i].Dur *= scale
		}
	}
	return entries
}

// canonicalFromRaw merges adjacent equal codes of the raw sequence. With
// a nil buf the merge allocates a caller-owned signature (the historical
// Canonical() behaviour); with a buffer both the entries and the header
// are buffer-backed scratch.
func canonicalFromRaw(raw []Entry, T float64, buf *CaptureBuffer) *Signature {
	if buf == nil {
		return (&Signature{Period: T, Entries: raw}).Canonical()
	}
	out := buf.canon[:0]
	for _, e := range raw {
		if n := len(out); n > 0 && out[n-1].Code == e.Code {
			out[n-1].Dur += e.Dur
		} else {
			out = append(out, e)
		}
	}
	buf.canon = out
	buf.sig = Signature{Period: T, Entries: out}
	return &buf.sig
}

// Chronogram samples the signature's code at n uniform instants over the
// period, returning the decimal-coded series of Fig. 7's upper plot. The
// sample times are nondecreasing, so a cursor resolves each lookup in
// amortized O(1) instead of At's per-call entry scan.
func Chronogram(s *Signature, bank *monitor.Bank, n int) (times []float64, decimal []int) {
	times = make([]float64, n)
	decimal = make([]int, n)
	cur := s.Cursor()
	for i := 0; i < n; i++ {
		t := s.Period * float64(i) / float64(n)
		times[i] = t
		decimal[i] = bank.Decimal(cur.At(t))
	}
	return times, decimal
}
