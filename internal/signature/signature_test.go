package signature

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/biquad"
	"repro/internal/monitor"
	"repro/internal/wave"
)

// stepClassifier yields code changes at fixed fractions of the period.
func stepClassifier(T float64) Classifier {
	return func(t float64) monitor.Code {
		frac := math.Mod(t, T) / T
		switch {
		case frac < 0.25:
			return 0
		case frac < 0.5:
			return 1
		case frac < 0.9:
			return 3
		default:
			return 2
		}
	}
}

func TestExactKnownTransitions(t *testing.T) {
	T := 1e-3
	sig, err := Exact(stepClassifier(T), T, 4096, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if err := sig.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sig.Entries) != 4 {
		t.Fatalf("entries = %d, want 4: %v", len(sig.Entries), sig)
	}
	wantCodes := []monitor.Code{0, 1, 3, 2}
	wantDurs := []float64{0.25e-3, 0.25e-3, 0.4e-3, 0.1e-3}
	for i, e := range sig.Entries {
		if e.Code != wantCodes[i] {
			t.Fatalf("entry %d code = %d, want %d", i, e.Code, wantCodes[i])
		}
		if math.Abs(e.Dur-wantDurs[i]) > 1e-9 {
			t.Fatalf("entry %d dur = %v, want %v", i, e.Dur, wantDurs[i])
		}
	}
}

func TestExactConstantClassifier(t *testing.T) {
	sig, err := Exact(func(float64) monitor.Code { return 7 }, 1e-3, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig.Entries) != 1 || sig.Entries[0].Code != 7 {
		t.Fatalf("constant classifier signature = %v", sig)
	}
	if math.Abs(sig.Entries[0].Dur-1e-3) > 1e-15 {
		t.Fatal("constant dwell must equal the period")
	}
}

func TestExactValidation(t *testing.T) {
	if _, err := Exact(stepClassifier(1), 0, 100, 0); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := Exact(stepClassifier(1), 1, 1, 0); err == nil {
		t.Fatal("single scan point accepted")
	}
}

func TestAtLookup(t *testing.T) {
	T := 1e-3
	sig, _ := Exact(stepClassifier(T), T, 4096, 1e-12)
	cases := []struct {
		t    float64
		want monitor.Code
	}{
		{0.1e-3, 0}, {0.3e-3, 1}, {0.7e-3, 3}, {0.95e-3, 2},
		{1.1e-3, 0},   // wraps
		{-0.05e-3, 2}, // negative wraps to 0.95e-3
	}
	for _, c := range cases {
		if got := sig.At(c.t); got != c.want {
			t.Fatalf("At(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := &Signature{Period: 1, Entries: []Entry{{0, 0.5}, {1, 0.5}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Signature{Period: 1, Entries: []Entry{{0, 0.5}, {0, 0.5}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("adjacent duplicate accepted")
	}
	bad2 := &Signature{Period: 1, Entries: []Entry{{0, 0.4}, {1, 0.4}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("duration shortfall accepted")
	}
	bad3 := &Signature{Period: 1, Entries: []Entry{{0, -0.5}, {1, 1.5}}}
	if err := bad3.Validate(); err == nil {
		t.Fatal("negative duration accepted")
	}
	empty := &Signature{Period: 1}
	if err := empty.Validate(); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestCaptureMatchesExact(t *testing.T) {
	T := 200e-6
	cls := stepClassifier(T)
	exact, err := Exact(cls, T, 8192, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultCapture()
	cap, err := Capture(cls, T, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cap.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(cap.Entries) != len(exact.Entries) {
		t.Fatalf("captured %d entries vs exact %d", len(cap.Entries), len(exact.Entries))
	}
	tick := 1 / cfg.ClockHz
	for i := range cap.Entries {
		if cap.Entries[i].Code != exact.Entries[i].Code {
			t.Fatalf("entry %d code mismatch", i)
		}
		if math.Abs(cap.Entries[i].Dur-exact.Entries[i].Dur) > 2*tick {
			t.Fatalf("entry %d dur %v vs exact %v beyond clock quantization",
				i, cap.Entries[i].Dur, exact.Entries[i].Dur)
		}
	}
}

func TestCaptureCounterWrap(t *testing.T) {
	// 8-bit counter, 10 MHz clock: max dwell 25.5 µs. A 100 µs dwell in
	// one zone must be split and then merged by Canonical.
	T := 200e-6
	cls := func(t float64) monitor.Code {
		if math.Mod(t, T) < 100e-6 {
			return 0
		}
		return 1
	}
	cfg := CaptureConfig{ClockHz: 10e6, CounterBits: 8}
	cap, err := Capture(cls, T, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Raw capture has wrap splits -> more than 2 entries.
	if len(cap.Entries) <= 2 {
		t.Fatalf("expected wrap splits, got %d entries", len(cap.Entries))
	}
	merged := cap.Canonical()
	if len(merged.Entries) != 2 {
		t.Fatalf("canonical entries = %d, want 2", len(merged.Entries))
	}
	for _, e := range merged.Entries {
		if math.Abs(e.Dur-100e-6) > 1e-6 {
			t.Fatalf("merged dwell = %v, want ~100 µs", e.Dur)
		}
	}
}

func TestCaptureValidation(t *testing.T) {
	cls := stepClassifier(1)
	if _, err := Capture(cls, 1, CaptureConfig{ClockHz: 0, CounterBits: 8}); err == nil {
		t.Fatal("zero clock accepted")
	}
	if _, err := Capture(cls, 1, CaptureConfig{ClockHz: 1e6, CounterBits: 0}); err == nil {
		t.Fatal("zero-bit counter accepted")
	}
	if _, err := Capture(cls, 0, DefaultCapture()); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := Capture(cls, 1e-9, CaptureConfig{ClockHz: 1e6, CounterBits: 8}); err == nil {
		t.Fatal("sub-tick period accepted")
	}
}

func TestCaptureDurationsSumToPeriod(t *testing.T) {
	T := 200e-6
	cap, err := Capture(stepClassifier(T), T, DefaultCapture())
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, e := range cap.Entries {
		sum += e.Dur
	}
	if math.Abs(sum-T) > 1e-12 {
		t.Fatalf("durations sum to %v, want %v", sum, T)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	T := 1e-3
	sig, _ := Exact(stepClassifier(T), T, 4096, 1e-12)
	data, err := sig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Signature
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Period != sig.Period || len(back.Entries) != len(sig.Entries) {
		t.Fatal("round trip lost structure")
	}
	for i := range back.Entries {
		if back.Entries[i] != sig.Entries[i] {
			t.Fatalf("entry %d changed in round trip", i)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var s Signature
	if err := s.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated data accepted")
	}
	if err := s.UnmarshalBinary([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestDistinctCodes(t *testing.T) {
	sig := &Signature{Period: 1, Entries: []Entry{{0, 0.2}, {1, 0.2}, {0, 0.2}, {3, 0.4}}}
	d := sig.DistinctCodes()
	want := []monitor.Code{0, 1, 3}
	if len(d) != len(want) {
		t.Fatalf("distinct = %v", d)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("distinct[%d] = %d, want %d", i, d[i], want[i])
		}
	}
	if sig.NumZones() != 4 {
		t.Fatalf("NumZones = %d, want 4", sig.NumZones())
	}
}

func TestStringRendering(t *testing.T) {
	sig := &Signature{Period: 1e-3, Entries: []Entry{{4, 0.5e-3}, {5, 0.5e-3}}}
	if s := sig.String(); s == "" || s[0] != '{' {
		t.Fatalf("String = %q", s)
	}
}

// Paper pipeline: the golden biquad signature through the Table I bank.
func paperSignature(t *testing.T, f0Shift float64) (*Signature, *monitor.Bank) {
	t.Helper()
	in, err := wave.NewMultitone(0.5, 5e3, []int{1, 2, 3},
		[]float64{0.22, 0.13, 0.08}, []float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	f, err := biquad.New(biquad.Params{F0: 10e3, Q: 0.9, Gain: 1}.WithF0Shift(f0Shift))
	if err != nil {
		t.Fatal(err)
	}
	out := f.SteadyState(in)
	bank := monitor.NewAnalyticTableI()
	cls := func(tt float64) monitor.Code {
		return bank.Classify(in.Eval(tt), out.Eval(tt))
	}
	sig, err := Exact(cls, in.Period(), 8192, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	return sig, bank
}

func TestPaperGoldenSignatureShape(t *testing.T) {
	sig, _ := paperSignature(t, 0)
	if err := sig.Validate(); err != nil {
		t.Fatal(err)
	}
	// Fig. 6/7: the golden curve traverses on the order of 10-20 zone
	// intervals per period.
	if n := sig.NumZones(); n < 6 || n > 60 {
		t.Fatalf("golden signature has %d intervals, implausible vs paper", n)
	}
	if math.Abs(sig.Period-200e-6) > 1e-12 {
		t.Fatalf("period = %v, want 200 µs", sig.Period)
	}
}

func TestPaperDefectiveSignatureDiffers(t *testing.T) {
	golden, _ := paperSignature(t, 0)
	defective, _ := paperSignature(t, 0.10)
	// The +10% signature must differ somewhere.
	same := golden.NumZones() == defective.NumZones()
	if same {
		for i := range golden.Entries {
			if golden.Entries[i].Code != defective.Entries[i].Code ||
				math.Abs(golden.Entries[i].Dur-defective.Entries[i].Dur) > 1e-7 {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("defective signature identical to golden")
	}
}

func TestChronogramShape(t *testing.T) {
	sig, bank := paperSignature(t, 0)
	times, dec := Chronogram(sig, bank, 400)
	if len(times) != 400 || len(dec) != 400 {
		t.Fatal("chronogram size wrong")
	}
	changes := 0
	for i := 1; i < len(dec); i++ {
		if dec[i] != dec[i-1] {
			changes++
		}
		if dec[i] < 0 || dec[i] > 63 {
			t.Fatalf("decimal code %d out of 6-bit range", dec[i])
		}
	}
	if changes < 5 {
		t.Fatalf("chronogram nearly constant (%d changes)", changes)
	}
}

// Property: Capture + Canonical always yields durations summing to the
// period and never two adjacent equal codes, for random step patterns.
func TestCaptureInvariantProperty(t *testing.T) {
	prop := func(seed uint8) bool {
		T := 100e-6
		k := 2 + int(seed%5)
		cls := func(t float64) monitor.Code {
			frac := math.Mod(t, T) / T
			return monitor.Code(int(frac*float64(k)) % k)
		}
		cap, err := Capture(cls, T, CaptureConfig{ClockHz: 5e6, CounterBits: 12})
		if err != nil {
			return false
		}
		can := cap.Canonical()
		sum := 0.0
		for i, e := range can.Entries {
			sum += e.Dur
			if i > 0 && can.Entries[i-1].Code == e.Code {
				return false
			}
		}
		return math.Abs(sum-T) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	T := 1e-3
	sig, _ := Exact(stepClassifier(T), T, 4096, 1e-12)
	data, err := json.Marshal(sig)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "period_s") {
		t.Fatalf("JSON missing fields: %s", data)
	}
	var back Signature
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Period != sig.Period || len(back.Entries) != len(sig.Entries) {
		t.Fatal("JSON round trip lost structure")
	}
	for i := range back.Entries {
		if back.Entries[i] != sig.Entries[i] {
			t.Fatalf("entry %d changed", i)
		}
	}
	if err := (&Signature{}).UnmarshalJSON([]byte("{bad")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}
