package num

import (
	"errors"
	"math"
)

// ErrNoBracket is returned by Bisect when f(lo) and f(hi) have the same sign.
var ErrNoBracket = errors.New("num: root not bracketed")

// ErrNoConverge is returned when an iterative method exhausts its iteration
// budget without meeting its tolerance.
var ErrNoConverge = errors.New("num: iteration did not converge")

// Bisect finds a root of f in [lo, hi] by bisection. f(lo) and f(hi) must
// have opposite signs (an endpoint that is exactly zero is returned
// immediately). The result is accurate to within tol in x.
func Bisect(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, ErrNoBracket
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if hi-lo <= tol {
			return mid, nil
		}
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), ErrNoConverge
}

// Brent finds a root of f in [lo, hi] using Brent's method (inverse
// quadratic interpolation with bisection fallback). It converges much
// faster than Bisect on smooth functions and is used for boundary tracing.
func Brent(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	a, b := lo, hi
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, ErrNoBracket
	}
	c, fc := a, fa
	d, e := b-a, b-a
	for i := 0; i < 200; i++ {
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		tol1 := 2*math.SmallestNonzeroFloat64*math.Abs(b) + 0.5*tol
		xm := 0.5 * (c - b)
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			s := fb / fa
			var p, q float64
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			if 2*p < math.Min(3*xm*q-math.Abs(tol1*q), math.Abs(e*q)) {
				e, d = d, p/q
			} else {
				d, e = xm, xm
			}
		} else {
			d, e = xm, xm
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else if xm > 0 {
			b += tol1
		} else {
			b -= tol1
		}
		fb = f(b)
		if (fb > 0) == (fc > 0) {
			c, fc = a, fa
			d, e = b-a, b-a
		}
	}
	return b, ErrNoConverge
}
