package num

import (
	"testing"

	"repro/internal/rng"
)

// The solve benchmarks quantify why the batched trial engine exists: at
// circuit-matrix sizes (n≈11 for the Tow-Thomas MNA system) a
// triangular solve is latency-bound — the serial load→multiply→subtract
// dependency chain, not the flop count, sets the time, so the sparse
// program barely beats the dense solve. The fused four-lane kernel wins
// by giving the core four independent chains to overlap.

func benchSolveSystem(seed uint64, n int) (*LU, []float64) {
	src := rng.New(seed)
	a := randomSparseMatrix(src, n, 0.35)
	lu, err := Factor(a)
	if err != nil {
		panic(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = src.Float64()*2 - 1
	}
	return lu, b
}

func BenchmarkSolveDense11(b *testing.B) {
	lu, rhs := benchSolveSystem(1, 11)
	x := make([]float64, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lu.Solve(rhs, x)
	}
}

func BenchmarkSolveProgram11(b *testing.B) {
	lu, rhs := benchSolveSystem(1, 11)
	var p SolveProgram
	lu.Compile(&p)
	x := make([]float64, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Solve(rhs, x)
	}
}

func BenchmarkSolveBatch4x11(b *testing.B) {
	var ps [BatchLanes]*SolveProgram
	var bs, xs [BatchLanes][]float64
	for l := range ps {
		lu, rhs := benchSolveSystem(uint64(l+1), 11)
		ps[l] = new(SolveProgram)
		lu.Compile(ps[l])
		bs[l] = rhs
		xs[l] = make([]float64, 11)
	}
	var sb SolveBatch
	sb.Compile(&ps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb.Solve(&bs, &xs)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/BatchLanes, "ns/lane")
}
