package num

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestNorms(t *testing.T) {
	v := []float64{3, -4}
	if got := Norm2(v); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := NormInf(v); got != 4 {
		t.Fatalf("NormInf = %v, want 4", got)
	}
	if got := NormInf(nil); got != 0 {
		t.Fatalf("NormInf(nil) = %v, want 0", got)
	}
}

func TestAXPYAndScale(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("AXPY result = %v, want [7 9]", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Fatalf("Scale result = %v, want [3.5 4.5]", y)
	}
}

func TestLinspace(t *testing.T) {
	v := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-15 {
			t.Fatalf("Linspace[%d] = %v, want %v", i, v[i], want[i])
		}
	}
	if v[len(v)-1] != 1 {
		t.Fatal("Linspace endpoint must be exact")
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{-1, 0, 1, 0},
		{2, 0, 1, 1},
		{0.5, 0, 1, 0.5},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Fatalf("Clamp(%v,%v,%v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-13, 1e-12, 0) {
		t.Fatal("absolute tolerance failed")
	}
	if !ApproxEqual(1e6, 1e6*(1+1e-10), 0, 1e-9) {
		t.Fatal("relative tolerance failed")
	}
	if ApproxEqual(1, 2, 1e-12, 1e-12) {
		t.Fatal("distinct values compared equal")
	}
}

// Property: Cauchy-Schwarz |<a,b>| <= ||a|| ||b||.
func TestCauchySchwarzProperty(t *testing.T) {
	prop := func(a, b [6]float64) bool {
		av, bv := a[:], b[:]
		for i := range av {
			// testing/quick can generate huge values; keep them tame.
			if math.IsNaN(av[i]) || math.IsInf(av[i], 0) ||
				math.IsNaN(bv[i]) || math.IsInf(bv[i], 0) {
				return true
			}
			av[i] = math.Mod(av[i], 1e3)
			bv[i] = math.Mod(bv[i], 1e3)
		}
		lhs := math.Abs(Dot(av, bv))
		rhs := Norm2(av) * Norm2(bv)
		return lhs <= rhs*(1+1e-12)+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Fatalf("Bisect root = %v, want sqrt(2)", root)
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-9); err != ErrNoBracket {
		t.Fatalf("err = %v, want ErrNoBracket", err)
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x }, 0, 1, 1e-9)
	if err != nil || root != 0 {
		t.Fatalf("root = %v err = %v, want 0, nil", root, err)
	}
}

func TestBrentAgreesWithBisect(t *testing.T) {
	f := func(x float64) float64 { return math.Cos(x) - x }
	rb, err := Bisect(f, 0, 1, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Brent(f, 0, 1, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rb-rr) > 1e-9 {
		t.Fatalf("Brent %v vs Bisect %v disagree", rr, rb)
	}
}

func TestBrentNoBracket(t *testing.T) {
	if _, err := Brent(func(x float64) float64 { return 1 + x*x }, -1, 1, 1e-9); err != ErrNoBracket {
		t.Fatalf("err = %v, want ErrNoBracket", err)
	}
}

// Property: Brent always returns a point where |f| is small for smooth
// monotone cubics with a bracketed root.
func TestBrentRootProperty(t *testing.T) {
	prop := func(shiftRaw int8) bool {
		shift := float64(shiftRaw) / 100.0 // root in [-1.28, 1.27]
		f := func(x float64) float64 { return (x - shift) * (1 + (x-shift)*(x-shift)) }
		r, err := Brent(f, -3, 3, 1e-12)
		if err != nil {
			return false
		}
		return math.Abs(r-shift) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
