package num

import (
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestCSolveIdentity(t *testing.T) {
	n := 4
	a := NewCMatrix(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	b := []complex128{1, 2i, 3 + 1i, -4}
	x, err := CSolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if x[i] != b[i] {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], b[i])
		}
	}
}

func TestCSolveKnownComplexSystem(t *testing.T) {
	// (1+i)x = 2i  ->  x = 2i/(1+i) = 1+i
	a := NewCMatrix(1, 1)
	a.Set(0, 0, 1+1i)
	x, err := CSolve(a, []complex128{2i})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-(1+1i)) > 1e-14 {
		t.Fatalf("x = %v, want 1+i", x[0])
	}
}

func TestCSolvePivoting(t *testing.T) {
	a := NewCMatrix(2, 2)
	a.Set(0, 1, 1i)
	a.Set(1, 0, 2)
	x, err := CSolve(a, []complex128{3i, 4})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-2) > 1e-14 || cmplx.Abs(x[1]-3) > 1e-14 {
		t.Fatalf("x = %v, want [2 3]", x)
	}
}

func TestCSolveSingular(t *testing.T) {
	a := NewCMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(1, 0, 2)
	a.Set(1, 1, 2)
	if _, err := CSolve(a, []complex128{1, 2}); err == nil {
		t.Fatal("singular matrix accepted")
	}
}

func TestCSolveValidation(t *testing.T) {
	if _, err := CSolve(NewCMatrix(2, 3), make([]complex128, 2)); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, err := CSolve(NewCMatrix(2, 2), make([]complex128, 3)); err == nil {
		t.Fatal("wrong rhs length accepted")
	}
}

func TestCMatrixZeroAdd(t *testing.T) {
	m := NewCMatrix(2, 2)
	m.Add(0, 1, 2i)
	m.Add(0, 1, 3)
	if m.At(0, 1) != 3+2i {
		t.Fatalf("At = %v", m.At(0, 1))
	}
	m.Zero()
	if m.At(0, 1) != 0 {
		t.Fatal("Zero failed")
	}
}

// Property: CSolve inverts well-conditioned random complex systems.
func TestCSolveRoundTripProperty(t *testing.T) {
	prop := func(seedRaw uint32) bool {
		n := 3
		s := uint64(seedRaw) | 1
		next := func() float64 {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return float64(s%2000)/1000.0 - 1.0
		}
		a := NewCMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, complex(next(), next()))
			}
			a.Add(i, i, 5)
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(next(), next())
		}
		x, err := CSolve(a, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			var s complex128
			for j := 0; j < n; j++ {
				s += a.At(i, j) * x[j]
			}
			if cmplx.Abs(s-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
