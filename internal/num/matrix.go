// Package num provides the small dense linear-algebra and root-finding
// kernel used by the circuit simulator and the statistics substrate.
//
// The package is deliberately minimal: dense row-major matrices, LU
// factorization with partial pivoting, triangular solves, and a handful of
// vector helpers. Everything is float64 and allocation-conscious so the
// Newton-Raphson loop in internal/spice can reuse workspaces.
package num

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve meets a pivot that
// is exactly zero (or smaller than the configured tolerance).
var ErrSingular = errors.New("num: matrix is singular")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("num: negative matrix dimension")
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into the element at row i, column j.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Zero clears every element in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom copies src into m; dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("num: CopyFrom dimension mismatch")
	}
	copy(m.Data, src.Data)
}

// MulVec computes y = m·x. y must have length m.Rows and x length m.Cols.
func (m *Matrix) MulVec(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic("num: MulVec dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, xv := range x {
			s += row[j] * xv
		}
		y[i] = s
	}
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("% .6g\t", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// LU holds an in-place LU factorization with partial pivoting of a square
// matrix: PA = LU, with L unit lower triangular stored below the diagonal.
// The factorization owns a solve scratch vector, so repeated Solve calls
// (the per-step hot path of a linear transient analysis) are
// allocation-free; like the workspaces in internal/spice it is not safe
// for concurrent use.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
	tmp  []float64
}

// Dim returns the dimension of the factored system.
func (f *LU) Dim() int { return f.lu.Rows }

// pivotTol is the absolute pivot magnitude below which the factorization is
// declared singular. Circuit matrices carry a gmin on every diagonal, so a
// healthy system never approaches this.
const pivotTol = 1e-300

// Factor computes the LU factorization of a (square). a is not modified.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("num: Factor needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	f := &LU{lu: a.Clone(), piv: make([]int, a.Rows), sign: 1, tmp: make([]float64, a.Rows)}
	if err := f.refactor(); err != nil {
		return nil, err
	}
	return f, nil
}

// FactorInto re-factors a into the existing workspace, avoiding allocation.
// The receiver must have been created by Factor with the same dimensions.
func (f *LU) FactorInto(a *Matrix) error {
	f.lu.CopyFrom(a)
	f.sign = 1
	return f.refactor()
}

func (f *LU) refactor() error {
	n := f.lu.Rows
	m := f.lu
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot: largest magnitude in column k at/below diagonal.
		p, maxAbs := k, math.Abs(m.At(k, k))
		for i := k + 1; i < n; i++ {
			if ab := math.Abs(m.At(i, k)); ab > maxAbs {
				p, maxAbs = i, ab
			}
		}
		if maxAbs < pivotTol || math.IsNaN(maxAbs) {
			return fmt.Errorf("%w: pivot %d magnitude %g", ErrSingular, k, maxAbs)
		}
		if p != k {
			rk := m.Data[k*n : (k+1)*n]
			rp := m.Data[p*n : (p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivot := m.At(k, k)
		for i := k + 1; i < n; i++ {
			l := m.At(i, k) / pivot
			m.Set(i, k, l)
			if l == 0 {
				continue
			}
			ri := m.Data[i*n : (i+1)*n]
			rk := m.Data[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= l * rk[j]
			}
		}
	}
	return nil
}

// Solve solves A·x = b using the factorization, writing the result into x.
// b and x may alias. The factorization's internal scratch is reused, so
// Solve does not allocate.
func (f *LU) Solve(b, x []float64) {
	n := f.lu.Rows
	if len(b) != n || len(x) != n {
		panic("num: Solve dimension mismatch")
	}
	// Apply permutation.
	tmp := f.tmp
	for i, p := range f.piv {
		tmp[i] = b[p]
	}
	// Forward substitution (L unit diagonal).
	for i := 1; i < n; i++ {
		s := tmp[i]
		row := f.lu.Data[i*n : i*n+i]
		for j, l := range row {
			s -= l * tmp[j]
		}
		tmp[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := tmp[i]
		row := f.lu.Data[i*n : (i+1)*n]
		for j := i + 1; j < n; j++ {
			s -= row[j] * tmp[j]
		}
		tmp[i] = s / row[i]
	}
	copy(x, tmp)
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveSystem is a convenience wrapper: factor a and solve a·x = b.
func SolveSystem(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	x := make([]float64, len(b))
	f.Solve(b, x)
	return x, nil
}
