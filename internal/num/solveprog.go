package num

// SolveProgram is a compiled form of an LU factorization's triangular
// solves. Circuit MNA factors are sparse — the Tow-Thomas system is
// ~60% structural zeros even after fill-in — but LU.Solve walks the
// dense rows and multiplies the zeros anyway. Compile records the
// nonzero entries of L and U once per factorization as flat index/value
// programs; Solve then replays exactly the multiply–subtract sequence
// of LU.Solve restricted to those entries, in the same order.
//
// Skipping an entry only ever drops a term of the form s -= 0·v, so the
// result is identical to LU.Solve for finite inputs, up to the sign of
// an exact floating-point zero (dropping "-0 -= +0" keeps -0 where the
// dense solve produces +0; the two compare equal under ==). The
// trial-template engine in internal/spice recompiles after every
// refactorization — pivoting and fill-in move with the values — and its
// bit-identity tests pin this equivalence against the dense path.
//
// A SolveProgram reuses its slices across Compile calls, so a warm
// factor→compile→solve trial loop is allocation-free. Like LU it is not
// safe for concurrent use.
type SolveProgram struct {
	n   int
	piv []int32

	// Forward substitution: for row i, the nonzero L(i,j), j < i, in
	// ascending j, stored in fwdIdx/fwdVal[fwdStart[i]:fwdStart[i+1]].
	fwdStart []int32
	fwdIdx   []int32
	fwdVal   []float64

	// Back substitution: for row i, the nonzero U(i,j), j > i, in
	// ascending j, plus the diagonal divisor.
	bwdStart []int32
	bwdIdx   []int32
	bwdVal   []float64
	diag     []float64
}

// Dim returns the dimension of the compiled system (0 before Compile).
func (p *SolveProgram) Dim() int { return p.n }

// Compile records the current factors into p. It must be re-run after
// every Factor/FactorInto: partial pivoting reorders rows and fill-in
// moves with the element values, so a stale program solves the wrong
// system.
func (f *LU) Compile(p *SolveProgram) {
	n := f.lu.Rows
	p.n = n
	p.piv = growInt32(p.piv, n)
	for i, pv := range f.piv {
		p.piv[i] = int32(pv)
	}
	p.fwdStart = growInt32(p.fwdStart, n+1)
	p.bwdStart = growInt32(p.bwdStart, n+1)
	p.diag = growFloat64(p.diag, n)
	p.fwdIdx = p.fwdIdx[:0]
	p.fwdVal = p.fwdVal[:0]
	p.bwdIdx = p.bwdIdx[:0]
	p.bwdVal = p.bwdVal[:0]
	for i := 0; i < n; i++ {
		row := f.lu.Data[i*n : (i+1)*n]
		p.fwdStart[i] = int32(len(p.fwdIdx))
		for j := 0; j < i; j++ {
			if l := row[j]; l != 0 {
				p.fwdIdx = append(p.fwdIdx, int32(j))
				p.fwdVal = append(p.fwdVal, l)
			}
		}
		p.bwdStart[i] = int32(len(p.bwdIdx))
		for j := i + 1; j < n; j++ {
			if u := row[j]; u != 0 {
				p.bwdIdx = append(p.bwdIdx, int32(j))
				p.bwdVal = append(p.bwdVal, u)
			}
		}
		p.diag[i] = row[i]
	}
	p.fwdStart[n] = int32(len(p.fwdIdx))
	p.bwdStart[n] = int32(len(p.bwdIdx))
}

// Solve solves A·x = b using the compiled factors, writing the result
// into x. Unlike LU.Solve, b and x must not alias: the permutation
// gathers b directly into x to skip the dense path's scratch copy.
//
//mclint:hotpath
func (p *SolveProgram) Solve(b, x []float64) {
	n := p.n
	if len(b) != n || len(x) != n {
		panic("num: SolveProgram dimension mismatch")
	}
	for i, pv := range p.piv {
		x[i] = b[pv]
	}
	// Per-row subslices let the compiler drop the bounds checks inside
	// the inner multiply–subtract loops; the operation order is exactly
	// the dense solve's.
	fwdStart, fwdIdx, fwdVal := p.fwdStart, p.fwdIdx, p.fwdVal
	for i := 1; i < n; i++ {
		s := x[i]
		lo, hi := fwdStart[i], fwdStart[i+1]
		idxs := fwdIdx[lo:hi]
		vals := fwdVal[lo:hi][:len(idxs)]
		for e, j := range idxs {
			s -= vals[e] * x[j]
		}
		x[i] = s
	}
	bwdStart, bwdIdx, bwdVal, diag := p.bwdStart, p.bwdIdx, p.bwdVal, p.diag
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		lo, hi := bwdStart[i], bwdStart[i+1]
		idxs := bwdIdx[lo:hi]
		vals := bwdVal[lo:hi][:len(idxs)]
		for e, j := range idxs {
			s -= vals[e] * x[j]
		}
		x[i] = s / diag[i]
	}
}

// BatchLanes is the lane width of SolveBatch: four independent solves
// interleaved per instruction stream. Four ~12-cycle multiply–subtract
// chains in flight cover the pipeline the single-lane solve leaves idle
// without spilling the accumulators out of registers.
const BatchLanes = 4

// SolveBatch runs four compiled triangular solves as one fused kernel.
// A single SolveProgram.Solve is one long load–multiply–subtract–divide
// dependency chain, so its speed is bound by floating-point latency,
// not throughput. SolveBatch merges the four programs' sparsity
// patterns into one union index structure (Compile) and stores values
// entry-major across lanes, so the inner loops advance four data-
// independent chains per shared index — latency hiding with zero
// per-lane bookkeeping.
//
// Where one lane has no entry at a union position its value is stored
// as exact zero, adding a term of the form s -= 0·v to that lane. This
// is the same equivalence class as SolveProgram's zero skipping — each
// lane's result equals its own Solve under ==, diverging at most in the
// sign of an exact floating-point zero — and the spice trial-engine
// bit-identity tests pin it end to end.
type SolveBatch struct {
	n int

	fwdStart []int32
	fwdIdx   []int32
	fwdVal   []float64 // entry-major: fwdVal[e*BatchLanes+l]
	bwdStart []int32
	bwdIdx   []int32
	bwdVal   []float64
	diag     []float64 // diag[i*BatchLanes+l]

	ps [BatchLanes]*SolveProgram // for the permutation gathers
}

// Compile merges the lanes' compiled programs into the union-pattern
// batch kernel. All four programs must share one dimension. Like
// SolveProgram.Compile it must be re-run when any lane refactors, and
// it reuses the receiver's slices, so a warm recompile is
// allocation-free.
func (sb *SolveBatch) Compile(ps *[BatchLanes]*SolveProgram) {
	n := ps[0].n
	for _, p := range ps {
		if p.n != n {
			panic("num: SolveBatch dimension mismatch")
		}
	}
	sb.n = n
	sb.ps = *ps
	sb.diag = growFloat64(sb.diag, n*BatchLanes)
	for i := 0; i < n; i++ {
		for l, p := range ps {
			sb.diag[i*BatchLanes+l] = p.diag[i]
		}
	}
	sb.fwdStart = growInt32(sb.fwdStart, n+1)
	sb.bwdStart = growInt32(sb.bwdStart, n+1)
	sb.fwdIdx, sb.fwdVal = sb.fwdIdx[:0], sb.fwdVal[:0]
	sb.bwdIdx, sb.bwdVal = sb.bwdIdx[:0], sb.bwdVal[:0]
	var cur [BatchLanes]int32
	for i := 0; i < n; i++ {
		sb.fwdStart[i] = int32(len(sb.fwdIdx))
		sb.fwdIdx, sb.fwdVal = mergeRow(ps, &cur, fwdRow, i, sb.fwdIdx, sb.fwdVal)
	}
	sb.fwdStart[n] = int32(len(sb.fwdIdx))
	cur = [BatchLanes]int32{}
	for i := 0; i < n; i++ {
		sb.bwdStart[i] = int32(len(sb.bwdIdx))
		sb.bwdIdx, sb.bwdVal = mergeRow(ps, &cur, bwdRow, i, sb.bwdIdx, sb.bwdVal)
	}
	sb.bwdStart[n] = int32(len(sb.bwdIdx))
}

// rowOf selects one triangular half of a compiled program's row i.
type rowOf func(p *SolveProgram, i int) (idx []int32, val []float64)

func fwdRow(p *SolveProgram, i int) ([]int32, []float64) {
	lo, hi := p.fwdStart[i], p.fwdStart[i+1]
	return p.fwdIdx[lo:hi], p.fwdVal[lo:hi]
}

func bwdRow(p *SolveProgram, i int) ([]int32, []float64) {
	lo, hi := p.bwdStart[i], p.bwdStart[i+1]
	return p.bwdIdx[lo:hi], p.bwdVal[lo:hi]
}

// mergeRow appends row i's union pattern — the ascending merge of the
// four lanes' column sets, zero-filling lanes without an entry — to
// idx/val. cur tracks each lane's cursor into its own row across calls
// (rows are consumed in order).
func mergeRow(ps *[BatchLanes]*SolveProgram, cur *[BatchLanes]int32, row rowOf, i int, idx []int32, val []float64) ([]int32, []float64) {
	var rIdx [BatchLanes][]int32
	var rVal [BatchLanes][]float64
	var at [BatchLanes]int
	for l, p := range ps {
		rIdx[l], rVal[l] = row(p, i)
	}
	for {
		j := int32(-1)
		for l := range ps {
			if at[l] < len(rIdx[l]) {
				if c := rIdx[l][at[l]]; j < 0 || c < j {
					j = c
				}
			}
		}
		if j < 0 {
			return idx, val
		}
		idx = append(idx, j)
		for l := range ps {
			if at[l] < len(rIdx[l]) && rIdx[l][at[l]] == j {
				val = append(val, rVal[l][at[l]])
				at[l]++
			} else {
				val = append(val, 0)
			}
		}
	}
}

// Solve solves the four systems: lane l solves bs[l] into xs[l]. As for
// SolveProgram.Solve, b and x must not alias within a lane, and the
// lanes' x buffers must be distinct.
//
//mclint:hotpath
func (sb *SolveBatch) Solve(bs, xs *[BatchLanes][]float64) {
	n := sb.n
	for l, p := range &sb.ps {
		b, x := bs[l], xs[l]
		if len(b) != n || len(x) != n {
			panic("num: SolveBatch dimension mismatch")
		}
		for i, pv := range p.piv {
			x[i] = b[pv]
		}
	}
	x0, x1, x2, x3 := xs[0], xs[1], xs[2], xs[3]
	fwdStart, fwdIdx, fwdVal := sb.fwdStart, sb.fwdIdx, sb.fwdVal
	for i := 1; i < n; i++ {
		s0, s1, s2, s3 := x0[i], x1[i], x2[i], x3[i]
		lo, hi := fwdStart[i], fwdStart[i+1]
		for e := lo; e < hi; e++ {
			j := fwdIdx[e]
			v := e * BatchLanes
			s0 -= fwdVal[v] * x0[j]
			s1 -= fwdVal[v+1] * x1[j]
			s2 -= fwdVal[v+2] * x2[j]
			s3 -= fwdVal[v+3] * x3[j]
		}
		x0[i], x1[i], x2[i], x3[i] = s0, s1, s2, s3
	}
	bwdStart, bwdIdx, bwdVal, diag := sb.bwdStart, sb.bwdIdx, sb.bwdVal, sb.diag
	for i := n - 1; i >= 0; i-- {
		s0, s1, s2, s3 := x0[i], x1[i], x2[i], x3[i]
		lo, hi := bwdStart[i], bwdStart[i+1]
		for e := lo; e < hi; e++ {
			j := bwdIdx[e]
			v := e * BatchLanes
			s0 -= bwdVal[v] * x0[j]
			s1 -= bwdVal[v+1] * x1[j]
			s2 -= bwdVal[v+2] * x2[j]
			s3 -= bwdVal[v+3] * x3[j]
		}
		d := i * BatchLanes
		x0[i] = s0 / diag[d]
		x1[i] = s1 / diag[d+1]
		x2[i] = s2 / diag[d+2]
		x3[i] = s3 / diag[d+3]
	}
}

// growInt32 resizes s to n, reusing capacity (contents undefined).
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// growFloat64 resizes s to n, reusing capacity (contents undefined).
func growFloat64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
