package num

import (
	"fmt"
	"math/cmplx"
)

// CMatrix is a dense row-major complex matrix, used by the circuit
// simulator's AC (small-signal frequency domain) analysis.
type CMatrix struct {
	Rows, Cols int
	Data       []complex128
}

// NewCMatrix returns a zeroed r×c complex matrix.
func NewCMatrix(r, c int) *CMatrix {
	if r < 0 || c < 0 {
		panic("num: negative matrix dimension")
	}
	return &CMatrix{Rows: r, Cols: c, Data: make([]complex128, r*c)}
}

// At returns the element at row i, column j.
func (m *CMatrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *CMatrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into the element at row i, column j.
func (m *CMatrix) Add(i, j int, v complex128) { m.Data[i*m.Cols+j] += v }

// Zero clears every element in place.
func (m *CMatrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CSolve solves the complex system a·x = b in place via LU with partial
// pivoting, returning the solution. a and b are not modified.
func CSolve(a *CMatrix, b []complex128) ([]complex128, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("num: CSolve needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if len(b) != n {
		return nil, fmt.Errorf("num: CSolve rhs length %d != %d", len(b), n)
	}
	lu := make([]complex128, len(a.Data))
	copy(lu, a.Data)
	x := make([]complex128, n)
	copy(x, b)
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	for k := 0; k < n; k++ {
		p, maxAbs := k, cmplx.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if ab := cmplx.Abs(lu[i*n+k]); ab > maxAbs {
				p, maxAbs = i, ab
			}
		}
		if maxAbs < pivotTol {
			return nil, fmt.Errorf("%w: complex pivot %d magnitude %g", ErrSingular, k, maxAbs)
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[k*n+j], lu[p*n+j] = lu[p*n+j], lu[k*n+j]
			}
			x[k], x[p] = x[p], x[k]
		}
		pivot := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := lu[i*n+k] / pivot
			lu[i*n+k] = l
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu[i*n+j] -= l * lu[k*n+j]
			}
			x[i] -= l * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= lu[i*n+j] * x[j]
		}
		x[i] = s / lu[i*n+i]
	}
	return x, nil
}
