package num

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatrixAtSetAdd(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 4.5)
	m.Add(0, 1, 0.5)
	if got := m.At(0, 1); got != 5.0 {
		t.Fatalf("At(0,1) = %v, want 5.0", got)
	}
	if got := m.At(1, 2); got != 0 {
		t.Fatalf("untouched element = %v, want 0", got)
	}
}

func TestMatrixZeroAndClone(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(1, 1, 2)
	c := m.Clone()
	m.Zero()
	if m.At(0, 0) != 0 || m.At(1, 1) != 0 {
		t.Fatal("Zero did not clear matrix")
	}
	if c.At(0, 0) != 1 || c.At(1, 1) != 2 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	// [1 2 3; 4 5 6] * [1 1 1]^T = [6 15]^T
	for j := 0; j < 3; j++ {
		m.Set(0, j, float64(j+1))
		m.Set(1, j, float64(j+4))
	}
	y := make([]float64, 2)
	m.MulVec([]float64{1, 1, 1}, y)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v, want [6 15]", y)
	}
}

func TestSolveIdentity(t *testing.T) {
	n := 5
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	b := []float64{1, 2, 3, 4, 5}
	x, err := SolveSystem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if x[i] != b[i] {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], b[i])
		}
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5 ; x + 3y = 10  ->  x = 1, y = 3
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveSystem(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("solution = %v, want [1 3]", x)
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Zero on the (0,0) diagonal forces a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := SolveSystem(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("solution = %v, want [3 2]", x)
	}
}

func TestSingularDetected(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := SolveSystem(a, []float64{1, 1}); err == nil {
		t.Fatal("expected singular error, got nil")
	}
}

func TestDeterminant(t *testing.T) {
	a := NewMatrix(3, 3)
	vals := [][]float64{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-24) > 1e-12 {
		t.Fatalf("Det = %v, want 24", d)
	}
}

func TestFactorInto(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(1, 1, 2)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	b := NewMatrix(2, 2)
	b.Set(0, 0, 1)
	b.Set(0, 1, 1)
	b.Set(1, 0, 0)
	b.Set(1, 1, 1)
	if err := f.FactorInto(b); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	f.Solve([]float64{3, 1}, x)
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("solution = %v, want [2 1]", x)
	}
}

// Property: for random well-conditioned systems, A·x recovered from
// Solve(A, b) reproduces b.
func TestSolveRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	prop := func(seedRaw uint32) bool {
		// Small deterministic pseudo-random matrix built from the seed;
		// diagonal dominance guarantees conditioning.
		n := 4
		s := uint64(seedRaw) | 1
		next := func() float64 {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return float64(s%2000)/1000.0 - 1.0 // [-1, 1)
		}
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, next())
			}
			a.Add(i, i, 5) // dominance
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = next()
		}
		x, err := SolveSystem(a, b)
		if err != nil {
			return false
		}
		back := make([]float64, n)
		a.MulVec(x, back)
		for i := range b {
			if math.Abs(back[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	m := NewMatrix(2, 2)
	m.MulVec([]float64{1}, []float64{0, 0})
}
