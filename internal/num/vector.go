package num

import "math"

// Dot returns the inner product of a and b, which must be the same length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("num: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute element of v (0 for empty v).
func NormInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("num: AXPY length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Fill sets every element of v to x.
func Fill(v []float64, x float64) {
	for i := range v {
		v[i] = x
	}
}

// Linspace returns n points evenly spaced over [lo, hi] inclusive.
// n must be >= 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("num: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi // exact endpoint despite rounding
	return out
}

// Clamp restricts x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ApproxEqual reports whether a and b agree within absolute tolerance atol
// or relative tolerance rtol (whichever is looser).
func ApproxEqual(a, b, atol, rtol float64) bool {
	d := math.Abs(a - b)
	if d <= atol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= rtol*scale
}
