package num

import (
	"testing"

	"repro/internal/rng"
)

// randomSparseMatrix builds an n×n matrix with the given fill fraction,
// a dominant diagonal (so it factors), and deterministic entries.
func randomSparseMatrix(src *rng.Stream, n int, fill float64) *Matrix {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				a.Set(i, j, 2+src.Float64()*3)
				continue
			}
			if src.Float64() < fill {
				a.Set(i, j, src.Float64()*2-1)
			}
		}
	}
	return a
}

// TestSolveProgramMatchesDenseSolve pins the compiled sparse solve to
// the dense LU.Solve result, component by component, over many random
// sparse systems — the equivalence the SPICE trial-template engine's
// bit-identity rests on. Comparison is ==, which treats -0 and +0 as
// equal (the only divergence the zero-skipping can introduce).
func TestSolveProgramMatchesDenseSolve(t *testing.T) {
	src := rng.New(42)
	var prog SolveProgram
	for trial := 0; trial < 200; trial++ {
		n := 2 + int(src.Uint64()%14)
		fill := 0.1 + 0.8*src.Float64()
		a := randomSparseMatrix(src, n, fill)
		f, err := Factor(a)
		if err != nil {
			t.Fatalf("trial %d: factor: %v", trial, err)
		}
		f.Compile(&prog)
		if prog.Dim() != n {
			t.Fatalf("trial %d: compiled dim %d, want %d", trial, prog.Dim(), n)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = src.Float64()*4 - 2
		}
		dense := make([]float64, n)
		f.Solve(b, dense)
		sparse := make([]float64, n)
		prog.Solve(b, sparse)
		for i := range dense {
			if sparse[i] != dense[i] {
				t.Fatalf("trial %d (n=%d fill=%.2f): x[%d] = %v via program, %v via dense solve",
					trial, n, fill, i, sparse[i], dense[i])
			}
		}
	}
}

// TestSolveProgramReuseAcrossFactorizations checks that one program,
// recompiled after each FactorInto, tracks the new factors (the per-trial
// refresh pattern of the template engine) and that the warm
// factor→compile→solve loop allocates nothing.
func TestSolveProgramReuseAcrossFactorizations(t *testing.T) {
	src := rng.New(7)
	const n = 11
	a := randomSparseMatrix(src, n, 0.4)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	var prog SolveProgram
	b := make([]float64, n)
	x := make([]float64, n)
	dense := make([]float64, n)
	for trial := 0; trial < 20; trial++ {
		a = randomSparseMatrix(src, n, 0.2+0.6*src.Float64())
		if err := f.FactorInto(a); err != nil {
			t.Fatal(err)
		}
		f.Compile(&prog)
		for i := range b {
			b[i] = src.Float64()
		}
		f.Solve(b, dense)
		prog.Solve(b, x)
		for i := range x {
			if x[i] != dense[i] {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], dense[i])
			}
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := f.FactorInto(a); err != nil {
			t.Error(err)
		}
		f.Compile(&prog)
		prog.Solve(b, x)
	})
	if allocs != 0 {
		t.Fatalf("warm factor+compile+solve allocates %.1f times per run, want 0", allocs)
	}
}

// TestSolveBatchMatchesPerLaneSolve pins the fused four-lane kernel to
// the per-lane SolveProgram results, component by component, over many
// random lane quartets with deliberately different sparsity patterns
// (the union padding must contribute only exact-zero terms). Comparison
// is ==, the same equivalence the per-lane programs are pinned under.
func TestSolveBatchMatchesPerLaneSolve(t *testing.T) {
	src := rng.New(99)
	var sb SolveBatch
	for trial := 0; trial < 60; trial++ {
		n := 3 + int(src.Uint64()%12)
		var ps [BatchLanes]*SolveProgram
		var bs, got, want [BatchLanes][]float64
		for l := 0; l < BatchLanes; l++ {
			fill := 0.1 + 0.8*src.Float64()
			f, err := Factor(randomSparseMatrix(src, n, fill))
			if err != nil {
				t.Fatalf("trial %d lane %d: factor: %v", trial, l, err)
			}
			ps[l] = new(SolveProgram)
			f.Compile(ps[l])
			bs[l] = make([]float64, n)
			for i := range bs[l] {
				bs[l][i] = src.Float64()*4 - 2
			}
			got[l] = make([]float64, n)
			want[l] = make([]float64, n)
			ps[l].Solve(bs[l], want[l])
		}
		sb.Compile(&ps)
		sb.Solve(&bs, &got)
		for l := 0; l < BatchLanes; l++ {
			for i := range got[l] {
				if got[l][i] != want[l][i] {
					t.Fatalf("trial %d (n=%d) lane %d: x[%d] = %v fused, %v per-lane",
						trial, n, l, i, got[l][i], want[l][i])
				}
			}
		}
	}
}

// TestSolveBatchReuse checks that one batch, recompiled as lanes
// refactor (the work-conserving runner's refill pattern), tracks the
// new programs, that the warm recompile+solve loop allocates nothing,
// and that mixed-dimension lanes are rejected loudly.
func TestSolveBatchReuse(t *testing.T) {
	src := rng.New(3)
	const n = 11
	var ps [BatchLanes]*SolveProgram
	var bs, got, want [BatchLanes][]float64
	fs := make([]*LU, BatchLanes)
	for l := 0; l < BatchLanes; l++ {
		f, err := Factor(randomSparseMatrix(src, n, 0.35))
		if err != nil {
			t.Fatal(err)
		}
		fs[l] = f
		ps[l] = new(SolveProgram)
		f.Compile(ps[l])
		bs[l] = make([]float64, n)
		got[l] = make([]float64, n)
		want[l] = make([]float64, n)
	}
	var sb SolveBatch
	for trial := 0; trial < 20; trial++ {
		l := int(src.Uint64() % BatchLanes)
		if err := fs[l].FactorInto(randomSparseMatrix(src, n, 0.2+0.6*src.Float64())); err != nil {
			t.Fatal(err)
		}
		fs[l].Compile(ps[l])
		sb.Compile(&ps)
		for l := 0; l < BatchLanes; l++ {
			for i := range bs[l] {
				bs[l][i] = src.Float64()
			}
			ps[l].Solve(bs[l], want[l])
		}
		sb.Solve(&bs, &got)
		for l := 0; l < BatchLanes; l++ {
			for i := range got[l] {
				if got[l][i] != want[l][i] {
					t.Fatalf("trial %d lane %d: x[%d] = %v, want %v", trial, l, i, got[l][i], want[l][i])
				}
			}
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		sb.Compile(&ps)
		sb.Solve(&bs, &got)
	})
	if allocs != 0 {
		t.Fatalf("warm compile+solve allocates %.1f times per run, want 0", allocs)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mixed-dimension lanes accepted")
		}
	}()
	f, err := Factor(randomSparseMatrix(src, n+1, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	f.Compile(ps[2])
	sb.Compile(&ps)
}
