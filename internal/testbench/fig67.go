package testbench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/ndf"
	"repro/internal/signature"
	"repro/internal/zone"
)

// Fig6 is the zone codification picture: the zone inventory of the
// Table I partition plus the zone sequences traversed by the golden and
// deviated Lissajous curves.
type Fig6 struct {
	ZoneTable   string
	NumZones    int
	GoldenSeq   []string
	DefectSeq   []string
	Violations  int // Gray-property violations in the partition
	MultiRegion int // codes split across disconnected regions
}

// RunFig6 builds the zone map on a grid of gridN² and extracts both
// traversal sequences. It is a thin wrapper over the campaign registry
// ("fig6").
func RunFig6(sys *core.System, shift float64, gridN int) (*Fig6, error) {
	return runAs[Fig6](legacyCtx(), Spec{
		Campaign: "fig6",
		Params:   Fig6Params{Shift: shift, Grid: gridN},
	}, WithSystem(sys))
}

// runFig6 is the registry implementation behind RunFig6.
func runFig6(sys *core.System, shift float64, gridN int) (*Fig6, error) {
	zm, err := zone.Build(sys.Bank, 0, 1, gridN)
	if err != nil {
		return nil, err
	}
	g, err := sys.GoldenSignature()
	if err != nil {
		return nil, err
	}
	cut, err := sys.Shifted(shift)
	if err != nil {
		return nil, err
	}
	d, err := sys.ExactSignature(cut)
	if err != nil {
		return nil, err
	}
	seq := func(s *signature.Signature) []string {
		var out []string
		for _, e := range s.Entries {
			out = append(out, sys.Bank.FormatCode(e.Code))
		}
		return out
	}
	return &Fig6{
		ZoneTable:   zm.Table(),
		NumZones:    zm.NumZones(),
		GoldenSeq:   seq(g),
		DefectSeq:   seq(d),
		Violations:  len(zm.GrayViolations()),
		MultiRegion: len(zm.MultiRegionCodes()),
	}, nil
}

// Render prints the codification summary.
func (f *Fig6) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "zones discovered: %d (paper labels 16), Gray violations: %d, multi-region codes: %d\n\n",
		f.NumZones, f.Violations, f.MultiRegion)
	b.WriteString(f.ZoneTable)
	b.WriteString("\ngolden traversal:    " + strings.Join(f.GoldenSeq, " -> ") + "\n")
	b.WriteString("defective traversal: " + strings.Join(f.DefectSeq, " -> ") + "\n")
	return b.String()
}

// Fig7 is the chronogram figure: decimal-coded signatures of golden and
// deviated CUTs over one period plus their Hamming-distance trace and
// the resulting NDF (paper: 0.1021 for +10%).
type Fig7 struct {
	Shift     float64
	Times     []float64
	GoldenDec []int
	DefectDec []int
	Hamming   []int
	NDF       float64
}

// RunFig7 samples both chronograms at n points. It is a thin wrapper
// over the campaign registry ("fig7").
func RunFig7(sys *core.System, shift float64, n int) (*Fig7, error) {
	return runAs[Fig7](legacyCtx(), Spec{
		Campaign: "fig7",
		Params:   Fig7Params{Shift: shift, Points: n},
	}, WithSystem(sys))
}

// runFig7 is the registry implementation behind RunFig7.
func runFig7(sys *core.System, shift float64, n int) (*Fig7, error) {
	g, err := sys.GoldenSignature()
	if err != nil {
		return nil, err
	}
	cut, err := sys.Shifted(shift)
	if err != nil {
		return nil, err
	}
	d, err := sys.ExactSignature(cut)
	if err != nil {
		return nil, err
	}
	v, err := ndf.NDF(d, g)
	if err != nil {
		return nil, err
	}
	times, gDec := signature.Chronogram(g, sys.Bank, n)
	_, dDec := signature.Chronogram(d, sys.Bank, n)
	_, ham := ndf.HammingChronogram(d, g, n)
	return &Fig7{
		Shift: shift, Times: times,
		GoldenDec: gDec, DefectDec: dDec, Hamming: ham, NDF: v,
	}, nil
}

// CSV renders "t_us,golden,defect,hamming".
func (f *Fig7) CSV() string {
	var b strings.Builder
	b.WriteString("t_us,golden_code,defect_code,hamming\n")
	for i := range f.Times {
		fmt.Fprintf(&b, "%.3f,%d,%d,%d\n",
			f.Times[i]*1e6, f.GoldenDec[i], f.DefectDec[i], f.Hamming[i])
	}
	return b.String()
}

// Render summarizes the figure.
func (f *Fig7) Render() string {
	maxH := 0
	for _, h := range f.Hamming {
		if h > maxH {
			maxH = h
		}
	}
	return fmt.Sprintf(
		"chronogram over %d samples, %+.0f%% f0 shift\nNDF = %.4f (paper: 0.1021)\nmax Hamming distance = %d (paper shows 2)\n",
		len(f.Times), f.Shift*100, f.NDF, maxH)
}
