package testbench

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/campaign"
	"repro/internal/core"
)

// BackendAgreement is the SPICE-vs-analytic cross-validation study: the
// same deviation sweep is run end to end (stimulus → CUT → monitor bank
// → signature → NDF) on both CUT backends and the per-point NDF gap is
// recorded, together with the worst pointwise discrepancy between the
// two golden output waveforms. It is the campaign-level evidence that
// the SPICE netlist engine and the closed-form model describe the same
// circuit, so fault and yield campaigns may choose either backend on a
// pure speed/fidelity tradeoff.
type BackendAgreement struct {
	Shifts      []float64
	AnalyticNDF []float64
	SpiceNDF    []float64
	// MaxWaveDelta is max_t |y_spice(t) − y_analytic(t)| of the golden
	// low-pass outputs over one period.
	MaxWaveDelta float64
}

// RunBackendAgreement sweeps the given f0 shifts on a default analytic
// system and a default SPICE system sharing stimulus, bank and capture.
// It is a thin wrapper over the campaign registry ("backends", which
// builds both systems itself and ignores the spec backend).
func RunBackendAgreement(shifts []float64) (*BackendAgreement, error) {
	return runAs[BackendAgreement](legacyCtx(), Spec{
		Campaign: "backends",
		Params:   BackendsParams{Shifts: shifts},
	})
}

// runBackendAgreement is the registry implementation behind
// RunBackendAgreement.
func runBackendAgreement(ctx context.Context, shifts []float64, eng campaign.Engine) (*BackendAgreement, error) {
	ana := core.Default()
	spc, err := core.DefaultSpice()
	if err != nil {
		return nil, err
	}
	out := &BackendAgreement{Shifts: shifts}
	out.AnalyticNDF, err = ana.SweepF0Ctx(ctx, shifts, eng)
	if err != nil {
		return nil, err
	}
	out.SpiceNDF, err = spc.SweepF0Ctx(ctx, shifts, eng)
	if err != nil {
		return nil, err
	}
	aw, err := ana.CUT.Output(ana.Stimulus, 0)
	if err != nil {
		return nil, err
	}
	sw, err := spc.CUT.Output(spc.Stimulus, 0)
	if err != nil {
		return nil, err
	}
	T := ana.Period()
	const n = 4096
	for i := 0; i < n; i++ {
		t := T * float64(i) / n
		if d := math.Abs(aw.Eval(t) - sw.Eval(t)); d > out.MaxWaveDelta {
			out.MaxWaveDelta = d
		}
	}
	return out, nil
}

// MaxNDFGap returns the largest |NDF_spice − NDF_analytic| of the sweep.
func (b *BackendAgreement) MaxNDFGap() float64 {
	worst := 0.0
	for i := range b.Shifts {
		if d := math.Abs(b.SpiceNDF[i] - b.AnalyticNDF[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// Render prints the comparison table.
func (b *BackendAgreement) Render() string {
	var s strings.Builder
	fmt.Fprintf(&s, "CUT backend agreement (golden waveform max |Δy| = %.3g V)\n", b.MaxWaveDelta)
	s.WriteString("dev%    analytic  spice     |gap|\n")
	for i := range b.Shifts {
		fmt.Fprintf(&s, "%+5.1f   %.4f    %.4f    %.4f\n",
			b.Shifts[i]*100, b.AnalyticNDF[i], b.SpiceNDF[i],
			math.Abs(b.SpiceNDF[i]-b.AnalyticNDF[i]))
	}
	return s.String()
}
