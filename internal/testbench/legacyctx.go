package testbench

import "context"

// legacyCtx is the single audited root context behind the ctx-less
// legacy entry points (RunFig1, RunYield, …): they predate the Campaign
// API's cancellation plumbing and run to completion by design, exactly
// as a Background-rooted Run call would. New library code must accept a
// caller context and pass it to Run/runAs directly — mclint's ctxflow
// analyzer flags any other context.Background() in the library, so this
// helper is the one place the exception lives.
func legacyCtx() context.Context {
	return context.Background() //mclint:ctxflow single audited root for the ctx-less legacy wrappers; new code accepts a caller ctx
}
