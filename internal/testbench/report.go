package testbench

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/zone"
)

// reportPrinter latches the first write error so every report line can
// print without per-call error plumbing; WriteReport returns the latched
// error, so a truncated report (full disk, closed pipe) is never
// silently reported as success.
type reportPrinter struct {
	w   io.Writer
	err error
}

func (rp *reportPrinter) printf(format string, args ...any) {
	if rp.err == nil {
		_, rp.err = fmt.Fprintf(rp.w, format, args...)
	}
}

// WriteReport runs the complete experiment suite against sys and writes
// the paper-vs-measured summary (the data behind EXPERIMENTS.md) to w.
// All experiments are deterministic; runtime is a few seconds.
func WriteReport(w io.Writer, sys *core.System) error {
	rp := &reportPrinter{w: w}
	rp.printf("=== Reproduction report: Analog Circuit Test Based on a Digital Signature (DATE 2010) ===\n\n")

	// Fig. 1
	f1, err := RunFig1(sys, 0.10, 512)
	if err != nil {
		return err
	}
	worst := 0.0
	for i := range f1.Golden {
		d := math.Hypot(f1.Golden[i].X-f1.Defective[i].X, f1.Golden[i].Y-f1.Defective[i].Y)
		if d > worst {
			worst = d
		}
	}
	rp.printf("FIG1  Lissajous +10%% f0: max pointwise deviation %.4f V (visible, bounded)\n", worst)

	// Table I / Fig. 4
	f4, err := RunFig4(41)
	if err != nil {
		return err
	}
	tot := 0
	for _, c := range f4.Curves {
		tot += len(c)
	}
	rp.printf("TAB1  six monitor configurations valid; FIG4 traced %d boundary points across 6 curves\n", tot)

	env, err := RunFig4MC(2, 200, 21, 7)
	if err != nil {
		return err
	}
	rp.printf("FIG4  Monte Carlo: nominal boundary inside 95%% envelope at %.0f%% of columns (paper: measured in MC range)\n",
		100*env.NominalInsideEnvelope())

	// Fig. 6
	zm, err := zone.Build(sys.Bank, 0, 1, 141)
	if err != nil {
		return err
	}
	rp.printf("FIG6  partition: %d zones (paper labels 16), %d Gray violations at boundary intersections\n",
		zm.NumZones(), len(zm.GrayViolations()))

	// Fig. 7
	f7, err := RunFig7(sys, 0.10, 400)
	if err != nil {
		return err
	}
	maxH := 0
	for _, h := range f7.Hamming {
		if h > maxH {
			maxH = h
		}
	}
	rp.printf("FIG7  NDF(+10%%) = %.4f (paper: 0.1021); max Hamming distance %d (paper: 2)\n", f7.NDF, maxH)

	// Fig. 8
	f8, err := RunFig8(sys, 0.20, 17, 0.05)
	if err != nil {
		return err
	}
	rp.printf("FIG8  NDF sweep ±20%%: NDF(-20%%)=%.3f NDF(+20%%)=%.3f threshold(±5%%)=%.4f\n",
		f8.NDFs[0], f8.NDFs[len(f8.NDFs)-1], f8.Threshold)

	// Noise
	nd, err := RunNoiseDetection(sys, 0.005, []float64{0.005, 0.01, 0.02}, 20, 20, 2024)
	if err != nil {
		return err
	}
	rp.printf("NOISE 3σ=0.015 V: detect 0.5%%:%.2f  1%%:%.2f  2%%:%.2f  (false-alarm %.2f; paper: 1%% detectable)\n",
		nd.Detect[0], nd.Detect[1], nd.Detect[2], nd.FalseRate)

	// Ablations
	al, err := RunAblLinear(sys, []float64{-0.10, 0.10})
	if err != nil {
		return err
	}
	rp.printf("ABL   linear zoning: area ratio %.2fx, NDF(+10%%) linear %.3f vs nonlinear %.3f\n",
		al.LinearUm2/al.NonlinearUm2, al.LinearNDF[1], al.NonlinearNDF[1])

	ac, err := RunAblCounter(sys, 0.10, []int{8, 12, 16}, []float64{1e6, 10e6, 100e6})
	if err != nil {
		return err
	}
	worstQ := 0.0
	for _, row := range ac.AbsErr {
		for _, e := range row {
			if e > worstQ {
				worstQ = e
			}
		}
	}
	rp.printf("ABL   capture quantization: worst |ΔNDF| %.4f across {8,12,16}b x {1,10,100}MHz\n", worstQ)

	ar, err := RunAblRegression(sys,
		[]float64{-0.20, -0.15, -0.10, -0.06, -0.03, 0, 0.03, 0.06, 0.10, 0.15, 0.20},
		[]float64{-0.12, -0.04, 0.07, 0.12})
	if err != nil {
		return err
	}
	rp.printf("ABL   alternate-test regression: held-out RMSE %.5f (fractional f0)\n", ar.TestRMSE)

	// Extensions
	eq, err := RunExtQ(sys, []float64{0.20})
	if err != nil {
		return err
	}
	rp.printf("EXT   Q+20%%: NDF LP-observed %.4f, BP-observed %.4f\n", eq.LPNDF[0], eq.BPNDF[0])

	dec, err := sys.CalibrateFromTolerance(0.05, 9)
	if err != nil {
		return err
	}
	ft, err := RunFaultTable(sys, dec, DefaultFaultSet())
	if err != nil {
		return err
	}
	rp.printf("EXT   component fault campaign: %.0f%% coverage (%d faults)\n",
		100*ft.Coverage(), len(ft.Cases))

	// Area
	est := monitor.EstimateArea(monitor.TableI()[0])
	rp.printf("AREA  monitor core %.2f um2, total %.2f um2 (published 53.54 / 116.1)\n",
		est.CoreUm2, est.TotalUm2)
	return rp.err
}
