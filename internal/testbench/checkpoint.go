package testbench

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"repro/internal/campaign"
	"repro/internal/ndf"
)

// This file gives the package's streaming reducers their durable form:
// each campaign.CheckpointReducer couples the fold/merge logic with a
// canonical binary codec over its accumulator state, so the distributed
// fabric can checkpoint a reduction mid-run, ship per-shard accumulator
// blobs between mcserved instances, and restore them bit-exactly.
//
// Every codec frames its payload with a 4-byte magic so a job log can
// never replay one campaign's blob into another's accumulator, and every
// decoder rejects malformed input — truncation, trailing bytes, counts
// that cannot have come from a real run — instead of constructing an
// accumulator that misbehaves later (the contract the stat codecs set,
// exercised by FuzzShardBlobUnmarshal).

var (
	yieldBlobMagic  = [4]byte{'M', 'C', 'Y', '1'}
	faultBlobMagic  = [4]byte{'M', 'C', 'F', '1'}
	detectBlobMagic = [4]byte{'M', 'C', 'D', '1'}
)

// yieldReducer is the checkpointable reduction of the yield campaign:
// four exact integer counters, merged by addition, encoded as magic
// "MCY1" followed by four uvarints (trueGood, pass, escapes, overkill).
func yieldReducer() campaign.CheckpointReducer[yieldVerdict, yieldCounts] {
	return campaign.CheckpointReducer[yieldVerdict, yieldCounts]{
		Reducer: campaign.Reducer[yieldVerdict, yieldCounts]{
			Fold: func(acc yieldCounts, _ int, v yieldVerdict) yieldCounts {
				return acc.foldVerdict(v.truthGood, v.pass)
			},
			Merge: func(into, next yieldCounts) yieldCounts {
				into.trueGood += next.trueGood
				into.pass += next.pass
				into.escapes += next.escapes
				into.overkill += next.overkill
				return into
			},
		},
		Marshal: func(acc yieldCounts) ([]byte, error) {
			buf := append(make([]byte, 0, 24), yieldBlobMagic[:]...)
			for _, v := range []int{acc.trueGood, acc.pass, acc.escapes, acc.overkill} {
				buf = binary.AppendUvarint(buf, uint64(v))
			}
			return buf, nil
		},
		Unmarshal: func(data []byte) (yieldCounts, error) {
			var vals [4]int
			if err := decodeCounts(data, yieldBlobMagic, vals[:]); err != nil {
				return yieldCounts{}, fmt.Errorf("testbench: yield blob: %w", err)
			}
			acc := yieldCounts{trueGood: vals[0], pass: vals[1], escapes: vals[2], overkill: vals[3]}
			// Escapes come out of passing dies and overkill out of good
			// ones; counts violating that cannot be a reachable state.
			if acc.escapes > acc.pass || acc.overkill > acc.trueGood {
				return yieldCounts{}, errors.New("testbench: yield blob: inconsistent counts")
			}
			return acc, nil
		},
	}
}

// faultReducer is the checkpointable reduction of the component-fault
// campaign: an ordered slice of scored cases, merged by concatenation
// (chunk order is fault order), encoded as magic "MCF1" followed by the
// JSON array of cases — the cases carry floats whose JSON form
// round-trips exactly, and identical case slices marshal to identical
// bytes, so the encoding is canonical.
func faultReducer() campaign.CheckpointReducer[FaultCase, []FaultCase] {
	return campaign.CheckpointReducer[FaultCase, []FaultCase]{
		Reducer: campaign.Reducer[FaultCase, []FaultCase]{
			Fold:  func(acc []FaultCase, _ int, c FaultCase) []FaultCase { return append(acc, c) },
			Merge: func(into, next []FaultCase) []FaultCase { return append(into, next...) },
		},
		Marshal: func(acc []FaultCase) ([]byte, error) {
			payload, err := json.Marshal(acc)
			if err != nil {
				return nil, fmt.Errorf("testbench: fault blob: %w", err)
			}
			return append(append(make([]byte, 0, 4+len(payload)), faultBlobMagic[:]...), payload...), nil
		},
		Unmarshal: func(data []byte) ([]FaultCase, error) {
			payload, err := checkMagic(data, faultBlobMagic)
			if err != nil {
				return nil, fmt.Errorf("testbench: fault blob: %w", err)
			}
			dec := json.NewDecoder(bytes.NewReader(payload))
			dec.DisallowUnknownFields()
			var cases []FaultCase
			if err := dec.Decode(&cases); err != nil {
				return nil, fmt.Errorf("testbench: fault blob: %w", err)
			}
			if dec.More() {
				return nil, errors.New("testbench: fault blob: trailing data")
			}
			return cases, nil
		},
	}
}

// detectReducer counts trials whose averaged NDF fails the decision —
// the accumulator shape every detection-rate phase of the noise
// campaigns shares. Integer merges are exact, so the streamed count is
// bit-identical to the materialized one at any chunk size and worker
// count; the blob is magic "MCD1" plus one uvarint.
func detectReducer(dec ndf.Decision) campaign.CheckpointReducer[float64, int] {
	return campaign.CheckpointReducer[float64, int]{
		Reducer: campaign.Reducer[float64, int]{
			Fold: func(acc int, _ int, v float64) int {
				if !dec.Pass(v) {
					acc++
				}
				return acc
			},
			Merge: func(into, next int) int { return into + next },
		},
		Marshal: func(acc int) ([]byte, error) {
			return binary.AppendUvarint(append(make([]byte, 0, 12), detectBlobMagic[:]...), uint64(acc)), nil
		},
		Unmarshal: func(data []byte) (int, error) {
			var vals [1]int
			if err := decodeCounts(data, detectBlobMagic, vals[:]); err != nil {
				return 0, fmt.Errorf("testbench: detect blob: %w", err)
			}
			return vals[0], nil
		},
	}
}

// checkMagic strips a blob's 4-byte frame, rejecting short or
// mismatched input.
func checkMagic(data []byte, magic [4]byte) ([]byte, error) {
	if len(data) < 4 {
		return nil, errors.New("truncated magic")
	}
	if [4]byte(data[:4]) != magic {
		return nil, errors.New("bad magic")
	}
	return data[4:], nil
}

// decodeCounts decodes a fixed run of non-negative uvarint counters
// after the magic frame, rejecting truncation, trailing bytes, and
// values that do not fit an int.
func decodeCounts(data []byte, magic [4]byte, dst []int) error {
	rest, err := checkMagic(data, magic)
	if err != nil {
		return err
	}
	for i := range dst {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return errors.New("truncated counter")
		}
		if v > math.MaxInt64 {
			return errors.New("counter overflow")
		}
		// binary.Uvarint tolerates padded encodings; the canonical codec
		// must not (equal state, equal bytes — the checkpoint contract).
		if n != uvarintLen(v) {
			return errors.New("non-minimal counter encoding")
		}
		dst[i] = int(v)
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("%d trailing bytes", len(rest))
	}
	return nil
}

// uvarintLen is the length of v's minimal uvarint encoding.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
