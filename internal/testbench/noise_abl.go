package testbench

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/ndf"
	"repro/internal/rng"
	"repro/internal/signature"
)

// Noise is the detection experiment behind the paper's claim that with
// white noise of 3σ = 0.015 V, f0 deviations as small as 1% are
// detectable.
type Noise struct {
	Sigma     float64
	Periods   int     // Lissajous periods averaged per measurement
	Threshold float64 // null-calibrated acceptance threshold
	Devs      []float64
	Detect    []float64 // detection rate per deviation
	FalseRate float64   // false-alarm rate of the threshold on fresh nulls
}

// RunNoiseDetection calibrates the threshold on nullTrials noisy golden
// captures (max-quantile) and measures detection rates over the given
// deviations with trials captures each. Every measurement averages the
// NDF over 5 consecutive Lissajous periods (1 ms of observation), the
// variance-reduction step that makes the paper's 1% claim reachable.
// The Monte-Carlo trials fan out across the campaign pool; per-trial
// streams are derived serially from the seed, so the detection rates are
// bit-identical at any worker count. It is a thin wrapper over the
// campaign registry ("noise").
func RunNoiseDetection(sys *core.System, sigma float64, devs []float64, nullTrials, trials int, seed uint64) (*Noise, error) {
	return runAs[Noise](context.Background(), Spec{
		Campaign: "noise",
		Seed:     seed,
		Params:   NoiseParams{Sigma: sigma, Devs: devs, NullTrials: nullTrials, Trials: trials},
	}, WithSystem(sys))
}

// runNoiseDetection is the registry implementation behind RunNoiseDetection.
func runNoiseDetection(ctx context.Context, sys *core.System, sigma float64, devs []float64, nullTrials, trials int, seed uint64, eng campaign.Engine) (*Noise, error) {
	const periods = 5
	src := rng.New(seed)
	// measure runs one batch of averaged-NDF trials at a deviation, using
	// streams pre-derived (serially) with the given base offset.
	measure := func(shift float64, n int, base uint64) ([]float64, error) {
		cut, err := sys.Shifted(shift)
		if err != nil {
			return nil, err
		}
		streams := make([]*rng.Stream, n)
		for i := range streams {
			streams[i] = src.Split(base + uint64(i))
		}
		return campaign.RunScratch(ctx, eng, n, core.NewTrialScratch,
			func(i int, sc *core.TrialScratch) (float64, error) {
				// The outer pool owns the parallelism: periods run serially
				// on this worker's scratch.
				return sys.AveragedNDFScratch(cut, sigma, streams[i], periods, sc)
			})
	}
	nulls, err := measure(0, nullTrials, 0)
	if err != nil {
		return nil, err
	}
	dec, err := ndf.ThresholdFromNull(nulls, 1.0)
	if err != nil {
		return nil, err
	}
	out := &Noise{Sigma: sigma, Periods: periods, Threshold: dec.Threshold, Devs: devs}
	// Fresh nulls for the false-alarm estimate.
	fresh, err := measure(0, trials, uint64(1e6))
	if err != nil {
		return nil, err
	}
	fp := 0
	for _, v := range fresh {
		if !dec.Pass(v) {
			fp++
		}
	}
	out.FalseRate = float64(fp) / float64(trials)
	for di, d := range devs {
		vals, err := measure(d, trials, uint64(2e6)+uint64(di*trials))
		if err != nil {
			return nil, err
		}
		det := 0
		for _, v := range vals {
			if !dec.Pass(v) {
				det++
			}
		}
		out.Detect = append(out.Detect, float64(det)/float64(trials))
	}
	return out, nil
}

// Render summarizes the detection experiment.
func (n *Noise) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "noise sigma = %.4f V (3σ = %.4f V), %d periods/measurement, threshold = %.4f, false-alarm = %.2f\n",
		n.Sigma, 3*n.Sigma, n.Periods, n.Threshold, n.FalseRate)
	b.WriteString("dev%   detection\n")
	for i := range n.Devs {
		fmt.Fprintf(&b, "%+5.1f  %.2f\n", n.Devs[i]*100, n.Detect[i])
	}
	return b.String()
}

// AblLinear compares nonlinear vs straight-line zoning (refs [12][13]):
// sensitivity of the NDF curve and hardware-cost accounting.
type AblLinear struct {
	Devs         []float64
	NonlinearNDF []float64
	LinearNDF    []float64
	NonlinearUm2 float64
	LinearUm2    float64
}

// RunAblLinear sweeps both banks over the deviation grid. It is a thin
// wrapper over the campaign registry ("linear").
func RunAblLinear(sys *core.System, devs []float64) (*AblLinear, error) {
	return runAs[AblLinear](context.Background(), Spec{
		Campaign: "linear",
		Params:   LinearParams{Devs: devs},
	}, WithSystem(sys))
}

// runAblLinear is the registry implementation behind RunAblLinear.
func runAblLinear(ctx context.Context, sys *core.System, devs []float64, eng campaign.Engine) (*AblLinear, error) {
	lin, err := baseline.NewLinearTableI()
	if err != nil {
		return nil, err
	}
	linSys, err := core.NewSystem(sys.Stimulus, sys.CUT, lin, sys.Capture)
	if err != nil {
		return nil, err
	}
	nl, err := sys.SweepF0Ctx(ctx, devs, eng)
	if err != nil {
		return nil, err
	}
	ll, err := linSys.SweepF0Ctx(ctx, devs, eng)
	if err != nil {
		return nil, err
	}
	return &AblLinear{
		Devs:         devs,
		NonlinearNDF: nl,
		LinearNDF:    ll,
		NonlinearUm2: monitor.BankArea(sys.Bank),
		LinearUm2:    float64(lin.Size()) * baseline.LinearMonitorAreaUm2,
	}, nil
}

// Render prints the comparison.
func (a *AblLinear) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "zoning ablation: nonlinear bank %.1f µm² vs straight-line bank %.1f µm² (cores only for linear)\n",
		a.NonlinearUm2, a.LinearUm2)
	b.WriteString("dev%   nonlinear  linear\n")
	for i := range a.Devs {
		fmt.Fprintf(&b, "%+5.1f  %.4f     %.4f\n", a.Devs[i]*100, a.NonlinearNDF[i], a.LinearNDF[i])
	}
	return b.String()
}

// AblCounter quantifies capture quantization: NDF error of the clocked
// capture vs the exact signature across counter widths and clock rates.
type AblCounter struct {
	Shift  float64
	Bits   []int
	Clocks []float64
	// AbsErr[i][j] is |NDF_captured - NDF_exact| at Bits[i], Clocks[j].
	AbsErr   [][]float64
	ExactNDF float64
}

// RunAblCounter runs the ablation at one deviation. It is a thin wrapper
// over the campaign registry ("counter").
func RunAblCounter(sys *core.System, shift float64, bits []int, clocks []float64) (*AblCounter, error) {
	return runAs[AblCounter](context.Background(), Spec{
		Campaign: "counter",
		Params:   CounterParams{Shift: shift, Bits: bits, Clocks: clocks},
	}, WithSystem(sys))
}

// runAblCounter is the registry implementation behind RunAblCounter.
func runAblCounter(ctx context.Context, sys *core.System, shift float64, bits []int, clocks []float64) (*AblCounter, error) {
	g, err := sys.GoldenSignature()
	if err != nil {
		return nil, err
	}
	cut, err := sys.Shifted(shift)
	if err != nil {
		return nil, err
	}
	exactSig, err := sys.ExactSignature(cut)
	if err != nil {
		return nil, err
	}
	exact, err := ndf.NDF(exactSig, g)
	if err != nil {
		return nil, err
	}
	cls, err := sys.Classifier(cut, 0, nil)
	if err != nil {
		return nil, err
	}
	out := &AblCounter{Shift: shift, Bits: bits, Clocks: clocks, ExactNDF: exact}
	for _, m := range bits {
		row := make([]float64, len(clocks))
		for j, f := range clocks {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cfg := signature.CaptureConfig{ClockHz: f, CounterBits: m}
			sig, err := signature.Capture(cls, sys.Period(), cfg)
			if err != nil {
				return nil, err
			}
			v, err := ndf.NDF(sig.Canonical(), g)
			if err != nil {
				return nil, err
			}
			d := v - exact
			if d < 0 {
				d = -d
			}
			row[j] = d
		}
		out.AbsErr = append(out.AbsErr, row)
	}
	return out, nil
}

// Render prints the error matrix.
func (a *AblCounter) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "capture ablation at %+.0f%% shift (exact NDF %.4f)\nbits\\clock", a.Shift*100, a.ExactNDF)
	for _, c := range a.Clocks {
		fmt.Fprintf(&b, "  %8.0e", c)
	}
	b.WriteString("\n")
	for i, m := range a.Bits {
		fmt.Fprintf(&b, "%-9d", m)
		for _, e := range a.AbsErr[i] {
			fmt.Fprintf(&b, "  %.6f", e)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// AblRegression is the alternate-test baseline experiment: predict the
// f0 deviation from signature dwell features (refs [10][11]).
type AblRegression struct {
	TrainRMSE float64
	TestRMSE  float64
}

// RunAblRegression trains on trainDevs and evaluates on testDevs. It is
// a thin wrapper over the campaign registry ("regress").
func RunAblRegression(sys *core.System, trainDevs, testDevs []float64) (*AblRegression, error) {
	return runAs[AblRegression](context.Background(), Spec{
		Campaign: "regress",
		Params:   RegressParams{TrainDevs: trainDevs, TestDevs: testDevs},
	}, WithSystem(sys))
}

// runAblRegression is the registry implementation behind RunAblRegression.
func runAblRegression(ctx context.Context, sys *core.System, trainDevs, testDevs []float64) (*AblRegression, error) {
	mkSigs := func(devs []float64) ([]*signature.Signature, error) {
		out := make([]*signature.Signature, len(devs))
		for i, d := range devs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cut, err := sys.Shifted(d)
			if err != nil {
				return nil, err
			}
			s, err := sys.ExactSignature(cut)
			if err != nil {
				return nil, err
			}
			out[i] = s
		}
		return out, nil
	}
	trainSigs, err := mkSigs(trainDevs)
	if err != nil {
		return nil, err
	}
	reg, err := baseline.TrainRegressor(trainSigs, trainDevs)
	if err != nil {
		return nil, err
	}
	trainRMSE, err := baseline.EvaluateRegressor(reg, trainSigs, trainDevs)
	if err != nil {
		return nil, err
	}
	testSigs, err := mkSigs(testDevs)
	if err != nil {
		return nil, err
	}
	testRMSE, err := baseline.EvaluateRegressor(reg, testSigs, testDevs)
	if err != nil {
		return nil, err
	}
	return &AblRegression{TrainRMSE: trainRMSE, TestRMSE: testRMSE}, nil
}

// Render prints the regression quality.
func (a *AblRegression) Render() string {
	return fmt.Sprintf("alternate-test regression: train RMSE %.4f, held-out RMSE %.4f (fractional f0 deviation)\n",
		a.TrainRMSE, a.TestRMSE)
}
