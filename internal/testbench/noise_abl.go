package testbench

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/ndf"
	"repro/internal/rng"
	"repro/internal/signature"
	"repro/internal/stat"
)

// Noise is the detection experiment behind the paper's claim that with
// white noise of 3σ = 0.015 V, f0 deviations as small as 1% are
// detectable. Every rate carries a 95% Wilson score interval, so the
// headline detection claims are CI-robust, not point estimates — the
// same discipline the yield and fault campaigns already follow.
type Noise struct {
	Sigma     float64
	Periods   int     // Lissajous periods averaged per measurement
	Threshold float64 // null-calibrated acceptance threshold
	Devs      []float64
	Detect    []float64 // detection rate per deviation
	// DetectLo/DetectHi bound each detection rate with a 95% Wilson
	// score interval.
	DetectLo, DetectHi []float64
	FalseRate          float64 // false-alarm rate of the threshold on fresh nulls
	// FalseLo/FalseHi bound the false-alarm rate the same way.
	FalseLo, FalseHi float64
}

// RunNoiseDetection calibrates the threshold on nullTrials noisy golden
// captures (max-quantile) and measures detection rates over the given
// deviations with trials captures each. Every measurement averages the
// NDF over 5 consecutive Lissajous periods (1 ms of observation), the
// variance-reduction step that makes the paper's 1% claim reachable.
// The Monte-Carlo trials fan out across the campaign pool; each trial
// derives its stream in-worker as a pure function of the seed, so the
// detection rates are bit-identical at any worker count. It is a thin
// wrapper over the campaign registry ("noise").
func RunNoiseDetection(sys *core.System, sigma float64, devs []float64, nullTrials, trials int, seed uint64) (*Noise, error) {
	return runAs[Noise](legacyCtx(), Spec{
		Campaign: "noise",
		Seed:     seed,
		Params:   NoiseParams{Sigma: sigma, Devs: devs, NullTrials: nullTrials, Trials: trials},
	}, WithSystem(sys))
}

// runNoiseDetection is the registry implementation behind
// RunNoiseDetection. Every trial derives its private noise stream inside
// the worker as a pure function of (seed, phase base + trial index) via
// Engine.Stream — no serial stream pre-pass. Every phase streams
// through the reduction engine with O(workers + chunk) memory: the
// rate-estimation phases as pure counts, the null calibration via
// CalibrateNullThreshold (exact below ExactNullCutoff, pooled quantile
// sketches above — bit-identical either way because the threshold is
// the null maximum, which the sketch tracks exactly). Million-trial
// specs therefore run flat-heap end to end.
func runNoiseDetection(ctx context.Context, sys *core.System, sigma float64, devs []float64, nullTrials, trials, sketchPrec int, seed uint64, eng campaign.Engine) (*Noise, error) {
	const periods = 5
	eng.Seed = seed
	// trialAt builds the per-trial measurement for one deviation: the
	// shifted CUT is constructed once and shared read-only by the pool.
	trialAt := func(shift float64, base uint64) (func(i int, sc *core.TrialScratch) (float64, error), error) {
		cut, err := sys.Shifted(shift)
		if err != nil {
			return nil, err
		}
		return func(i int, sc *core.TrialScratch) (float64, error) {
			// The outer pool owns the parallelism: periods run serially
			// on this worker's scratch.
			return sys.AveragedNDFScratch(cut, sigma, streamAt(eng, base, i), periods, sc)
		}, nil
	}
	nullTrial, err := trialAt(0, phaseBase(0))
	if err != nil {
		return nil, err
	}
	dec, err := CalibrateNullThreshold(ctx, eng, nullTrials, sketchPrec, nullTrial)
	if err != nil {
		return nil, err
	}
	out := &Noise{Sigma: sigma, Periods: periods, Threshold: dec.Threshold, Devs: devs}
	// detectCount streams one phase's trials through the reducer,
	// counting threshold exceedances — the count feeds both the point
	// rate and its Wilson interval.
	detectCount := func(shift float64, base uint64) (int, error) {
		trial, err := trialAt(shift, base)
		if err != nil {
			return 0, err
		}
		return campaign.ReduceScratch(ctx, eng, trials,
			detectReducer(dec).Reducer, core.NewTrialScratch, trial)
	}
	// Fresh nulls for the false-alarm estimate.
	fa, err := detectCount(0, phaseBase(1))
	if err != nil {
		return nil, err
	}
	out.FalseRate = float64(fa) / float64(trials)
	out.FalseLo, out.FalseHi = stat.Wilson(fa, trials, 0.95)
	for di, d := range devs {
		det, err := detectCount(d, phaseBase(2+di))
		if err != nil {
			return nil, err
		}
		out.Detect = append(out.Detect, float64(det)/float64(trials))
		lo, hi := stat.Wilson(det, trials, 0.95)
		out.DetectLo = append(out.DetectLo, lo)
		out.DetectHi = append(out.DetectHi, hi)
	}
	return out, nil
}

// phaseBase gives measurement phase p its own disjoint stream-id space.
// Stream ids are pure functions of (seed, id) now — unlike the old
// stateful Split, where reused ids still produced distinct streams — so
// two phases sharing an id would reuse the exact same noise draws and
// silently correlate their estimates. A 2^32 stride keeps phases
// disjoint for any trial count up to MaxTrials (1e8 < 2^32).
func phaseBase(p int) uint64 { return uint64(p) << 32 }

// streamAt derives the trial stream for a phase with its own id base —
// a pure function of (engine seed, base + i), safe to call from inside
// any worker.
func streamAt(eng campaign.Engine, base uint64, i int) *rng.Stream {
	return rng.NewSub(eng.Seed, base+uint64(i))
}

// Render summarizes the detection experiment, rates with their 95%
// Wilson intervals.
func (n *Noise) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "noise sigma = %.4f V (3σ = %.4f V), %d periods/measurement, threshold = %.4f, false-alarm = %.2f [%.2f, %.2f]\n",
		n.Sigma, 3*n.Sigma, n.Periods, n.Threshold, n.FalseRate, n.FalseLo, n.FalseHi)
	b.WriteString("dev%   detection  95% CI\n")
	for i := range n.Devs {
		fmt.Fprintf(&b, "%+5.1f  %.2f       [%.2f, %.2f]\n",
			n.Devs[i]*100, n.Detect[i], n.DetectLo[i], n.DetectHi[i])
	}
	return b.String()
}

// AblLinear compares nonlinear vs straight-line zoning (refs [12][13]):
// sensitivity of the NDF curve and hardware-cost accounting.
type AblLinear struct {
	Devs         []float64
	NonlinearNDF []float64
	LinearNDF    []float64
	NonlinearUm2 float64
	LinearUm2    float64
}

// RunAblLinear sweeps both banks over the deviation grid. It is a thin
// wrapper over the campaign registry ("linear").
func RunAblLinear(sys *core.System, devs []float64) (*AblLinear, error) {
	return runAs[AblLinear](legacyCtx(), Spec{
		Campaign: "linear",
		Params:   LinearParams{Devs: devs},
	}, WithSystem(sys))
}

// runAblLinear is the registry implementation behind RunAblLinear.
func runAblLinear(ctx context.Context, sys *core.System, devs []float64, eng campaign.Engine) (*AblLinear, error) {
	lin, err := baseline.NewLinearTableI()
	if err != nil {
		return nil, err
	}
	linSys, err := core.NewSystem(sys.Stimulus, sys.CUT, lin, sys.Capture)
	if err != nil {
		return nil, err
	}
	nl, err := sys.SweepF0Ctx(ctx, devs, eng)
	if err != nil {
		return nil, err
	}
	ll, err := linSys.SweepF0Ctx(ctx, devs, eng)
	if err != nil {
		return nil, err
	}
	return &AblLinear{
		Devs:         devs,
		NonlinearNDF: nl,
		LinearNDF:    ll,
		NonlinearUm2: monitor.BankArea(sys.Bank),
		LinearUm2:    float64(lin.Size()) * baseline.LinearMonitorAreaUm2,
	}, nil
}

// Render prints the comparison.
func (a *AblLinear) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "zoning ablation: nonlinear bank %.1f µm² vs straight-line bank %.1f µm² (cores only for linear)\n",
		a.NonlinearUm2, a.LinearUm2)
	b.WriteString("dev%   nonlinear  linear\n")
	for i := range a.Devs {
		fmt.Fprintf(&b, "%+5.1f  %.4f     %.4f\n", a.Devs[i]*100, a.NonlinearNDF[i], a.LinearNDF[i])
	}
	return b.String()
}

// AblCounter quantifies capture quantization: NDF error of the clocked
// capture vs the exact signature across counter widths and clock rates.
type AblCounter struct {
	Shift  float64
	Bits   []int
	Clocks []float64
	// AbsErr[i][j] is |NDF_captured - NDF_exact| at Bits[i], Clocks[j].
	AbsErr   [][]float64
	ExactNDF float64
}

// RunAblCounter runs the ablation at one deviation. It is a thin wrapper
// over the campaign registry ("counter").
func RunAblCounter(sys *core.System, shift float64, bits []int, clocks []float64) (*AblCounter, error) {
	return runAs[AblCounter](legacyCtx(), Spec{
		Campaign: "counter",
		Params:   CounterParams{Shift: shift, Bits: bits, Clocks: clocks},
	}, WithSystem(sys))
}

// runAblCounter is the registry implementation behind RunAblCounter.
func runAblCounter(ctx context.Context, sys *core.System, shift float64, bits []int, clocks []float64) (*AblCounter, error) {
	g, err := sys.GoldenSignature()
	if err != nil {
		return nil, err
	}
	cut, err := sys.Shifted(shift)
	if err != nil {
		return nil, err
	}
	exactSig, err := sys.ExactSignature(cut)
	if err != nil {
		return nil, err
	}
	exact, err := ndf.NDF(exactSig, g)
	if err != nil {
		return nil, err
	}
	cls, err := sys.Classifier(cut, 0, nil)
	if err != nil {
		return nil, err
	}
	out := &AblCounter{Shift: shift, Bits: bits, Clocks: clocks, ExactNDF: exact}
	for _, m := range bits {
		row := make([]float64, len(clocks))
		for j, f := range clocks {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cfg := signature.CaptureConfig{ClockHz: f, CounterBits: m}
			sig, err := signature.Capture(cls, sys.Period(), cfg)
			if err != nil {
				return nil, err
			}
			v, err := ndf.NDF(sig.Canonical(), g)
			if err != nil {
				return nil, err
			}
			d := v - exact
			if d < 0 {
				d = -d
			}
			row[j] = d
		}
		out.AbsErr = append(out.AbsErr, row)
	}
	return out, nil
}

// Render prints the error matrix.
func (a *AblCounter) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "capture ablation at %+.0f%% shift (exact NDF %.4f)\nbits\\clock", a.Shift*100, a.ExactNDF)
	for _, c := range a.Clocks {
		fmt.Fprintf(&b, "  %8.0e", c)
	}
	b.WriteString("\n")
	for i, m := range a.Bits {
		fmt.Fprintf(&b, "%-9d", m)
		for _, e := range a.AbsErr[i] {
			fmt.Fprintf(&b, "  %.6f", e)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// AblRegression is the alternate-test baseline experiment: predict the
// f0 deviation from signature dwell features (refs [10][11]).
type AblRegression struct {
	TrainRMSE float64
	TestRMSE  float64
}

// RunAblRegression trains on trainDevs and evaluates on testDevs. It is
// a thin wrapper over the campaign registry ("regress").
func RunAblRegression(sys *core.System, trainDevs, testDevs []float64) (*AblRegression, error) {
	return runAs[AblRegression](legacyCtx(), Spec{
		Campaign: "regress",
		Params:   RegressParams{TrainDevs: trainDevs, TestDevs: testDevs},
	}, WithSystem(sys))
}

// runAblRegression is the registry implementation behind RunAblRegression.
func runAblRegression(ctx context.Context, sys *core.System, trainDevs, testDevs []float64) (*AblRegression, error) {
	mkSigs := func(devs []float64) ([]*signature.Signature, error) {
		out := make([]*signature.Signature, len(devs))
		for i, d := range devs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cut, err := sys.Shifted(d)
			if err != nil {
				return nil, err
			}
			s, err := sys.ExactSignature(cut)
			if err != nil {
				return nil, err
			}
			out[i] = s
		}
		return out, nil
	}
	trainSigs, err := mkSigs(trainDevs)
	if err != nil {
		return nil, err
	}
	reg, err := baseline.TrainRegressor(trainSigs, trainDevs)
	if err != nil {
		return nil, err
	}
	trainRMSE, err := baseline.EvaluateRegressor(reg, trainSigs, trainDevs)
	if err != nil {
		return nil, err
	}
	testSigs, err := mkSigs(testDevs)
	if err != nil {
		return nil, err
	}
	testRMSE, err := baseline.EvaluateRegressor(reg, testSigs, testDevs)
	if err != nil {
		return nil, err
	}
	return &AblRegression{TrainRMSE: trainRMSE, TestRMSE: testRMSE}, nil
}

// Render prints the regression quality.
func (a *AblRegression) Render() string {
	return fmt.Sprintf("alternate-test regression: train RMSE %.4f, held-out RMSE %.4f (fractional f0 deviation)\n",
		a.TrainRMSE, a.TestRMSE)
}
