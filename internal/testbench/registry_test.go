package testbench

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ndf"
)

// Every campaign of the package must be registered, with a schema the
// CLIs and the HTTP service can render.
func TestRegistryCatalogue(t *testing.T) {
	want := []string{
		"backends", "corners", "counter", "faults", "fig1", "fig4", "fig4mc",
		"fig4spice", "fig6", "fig7", "fig8", "linear", "metric", "noise",
		"noisesweep", "q", "regress", "selftest", "spectral", "stimopt",
		"table1", "temp", "yield",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %d campaigns %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("campaign[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	for _, info := range List() {
		if info.Summary == "" {
			t.Fatalf("campaign %s has no summary", info.Name)
		}
		for _, p := range info.Params {
			if p.Name == "" || p.Type == "" {
				t.Fatalf("campaign %s has a malformed param field: %+v", info.Name, p)
			}
		}
	}
	// Schema spot check: fig4mc documents its three knobs with defaults.
	var fig4mc *Info
	for i := range List() {
		if l := List()[i]; l.Name == "fig4mc" {
			fig4mc = &l
		}
	}
	if fig4mc == nil || len(fig4mc.Params) != 3 {
		t.Fatalf("fig4mc schema = %+v", fig4mc)
	}
	if fig4mc.Params[0].Name != "monitor" || fig4mc.Params[0].Default != 2 {
		t.Fatalf("fig4mc monitor field = %+v", fig4mc.Params[0])
	}
}

func TestRunUnknownCampaign(t *testing.T) {
	_, err := Run(context.Background(), Spec{Campaign: "nope"})
	if err == nil || !strings.Contains(err.Error(), "unknown campaign") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "fig4mc") {
		t.Fatalf("error does not list known campaigns: %v", err)
	}
}

// A typo'd param must fail loudly, not silently run defaults.
func TestRunRejectsUnknownParam(t *testing.T) {
	_, err := Run(context.Background(), Spec{
		Campaign: "fig4mc",
		Params:   map[string]any{"diez": 10},
	})
	if err == nil || !strings.Contains(err.Error(), "bad params") {
		t.Fatalf("err = %v", err)
	}
}

// The same campaign must be bit-identical whether it is reached through
// the typed legacy entry point, a typed spec, or a JSON-decoded spec (the
// HTTP body path), at any worker count, on both backends.
func TestRegistryMatchesLegacyBothBackends(t *testing.T) {
	for _, backend := range core.Backends() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			if backend == "spice" && testing.Short() {
				t.Skip("SPICE campaign skipped under -short")
			}
			sys, err := core.SystemForBackend(backend)
			if err != nil {
				t.Fatal(err)
			}
			dec := ndf.Decision{Threshold: 0.02}
			faults := DefaultFaultSet()[:4]
			legacy, err := RunFaultTable(sys, dec, faults)
			if err != nil {
				t.Fatal(err)
			}
			// JSON spec, exactly as an HTTP body would arrive.
			body := []byte(`{"campaign":"faults","backend":"` + backend +
				`","workers":3,"params":{"threshold":0.02,"faults":` + mustJSON(t, faults) + `}}`)
			var spec Spec
			if err := json.Unmarshal(body, &spec); err != nil {
				t.Fatal(err)
			}
			res, err := Run(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			got := res.Payload.(*FaultTable)
			if got.Render() != legacy.Render() {
				t.Fatalf("JSON spec table differs from legacy entry point:\n%s\nvs\n%s",
					got.Render(), legacy.Render())
			}
			if res.Text != legacy.Render() {
				t.Fatal("result Text does not match the payload rendering")
			}
		})
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// The Result envelope must survive a JSON round-trip with its payload
// typed, so stored campaign results stay machine-readable.
func TestResultJSONRoundTrip(t *testing.T) {
	res, err := Run(context.Background(), Spec{
		Campaign: "fig4mc",
		Seed:     7,
		Workers:  2,
		Params:   Fig4MCParams{Monitor: 2, Dies: 20, Cols: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	env, ok := back.Payload.(*Fig4MC)
	if !ok {
		t.Fatalf("decoded payload is %T", back.Payload)
	}
	if env.Render() != res.Payload.(*Fig4MC).Render() {
		t.Fatal("payload rendering changed across the JSON round-trip")
	}
	p, ok := back.Spec.Params.(*Fig4MCParams)
	if !ok || p.Dies != 20 || p.Cols != 11 {
		t.Fatalf("decoded params = %#v", back.Spec.Params)
	}
	if back.Workers != 2 || back.Spec.Seed != 7 {
		t.Fatalf("metadata lost: %+v", back)
	}
}

// Defaults fill in everything a spec omits, and the effective params are
// recorded on the returned envelope.
func TestRunDefaultsAndEffectiveSpec(t *testing.T) {
	res, err := Run(context.Background(), Spec{
		Campaign: "fig4mc",
		Params:   map[string]any{"dies": 15, "cols": 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Spec.Params.(*Fig4MCParams)
	if p.Monitor != 2 {
		t.Fatalf("default monitor = %d, want 2", p.Monitor)
	}
	if p.Dies != 15 || p.Cols != 9 {
		t.Fatalf("explicit params lost: %+v", p)
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
}

// WithProgress streams chunk-granular completion without changing the
// result: counts are monotone, the total is the die count, and the spec
// chunk knob sets the tick granularity.
func TestRunProgressStreaming(t *testing.T) {
	var mu sync.Mutex
	var last [2]int
	calls := 0
	res, err := Run(context.Background(), Spec{
		Campaign: "fig4mc",
		Seed:     7,
		Chunk:    10, // 30 dies -> 3 chunk ticks
		Params:   Fig4MCParams{Monitor: 2, Dies: 30, Cols: 9},
	}, WithProgress(func(done, total int) {
		mu.Lock()
		calls++
		if done < last[0] {
			t.Errorf("progress went backwards: %d after %d", done, last[0])
		}
		last = [2]int{done, total}
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	// One tick per 10-die chunk; late ticks that would not advance the
	// count are suppressed, so under parallelism fewer may be delivered.
	if calls < 1 || calls > 3 {
		t.Fatalf("progress calls = %d, want 1..3 (chunk-granular)", calls)
	}
	if last != [2]int{30, 30} {
		t.Fatalf("final progress = %v, want {30 30}", last)
	}
	plain, err := RunFig4MC(2, 30, 9, 7)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Render() != res.Payload.(*Fig4MC).Render() {
		t.Fatal("progress observation (and the chunk knob) changed the result")
	}
}

// A campaign cancelled mid-flight returns context.Canceled within one
// trial's latency and leaks no goroutines.
func TestRunCancellationPromptAndLeakFree(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	started := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		// A deliberately huge yield population: only cancellation ends it
		// in reasonable time.
		thr := 0.03
		_, err := Run(ctx, Spec{
			Campaign: "yield",
			Seed:     7,
			Params:   YieldParams{N: 1_000_000, ComponentSigma: 0.02, Tol: 0.05, Threshold: &thr},
		}, WithProgress(func(done, total int) {
			once.Do(func() { close(started) })
		}))
		errCh <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation not honoured within 10s")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("%d goroutines after cancel, started with %d", got, before)
	}
}

// The scalar-engine knob must not change any campaign result (the batched
// engine's bit-identity contract, reachable through the spec).
func TestSpecScalarEngineBitIdentical(t *testing.T) {
	batched, err := Run(context.Background(), Spec{Campaign: "fig8",
		Params: Fig8Params{MaxDev: 0.10, Points: 5, Tol: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := Run(context.Background(), Spec{Campaign: "fig8", Scalar: true,
		Params: Fig8Params{MaxDev: 0.10, Points: 5, Tol: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	if batched.Text != scalar.Text {
		t.Fatalf("scalar engine changed the fig8 sweep:\n%s\nvs\n%s", batched.Text, scalar.Text)
	}
}

// Cancellation must also cut the non-pool loop campaigns (per-iteration
// ctx checks), using the campaign engine's seed-free path.
func TestLoopCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Spec{Campaign: "stimopt", Params: StimOptParams{Shift: 0.05, Grid: 8}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	_, err = Run(ctx, Spec{Campaign: "metric", Params: MetricParams{Devs: []float64{0.05}}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Spec worker bounds and the WithWorkers override agree with the default
// full-pool run bit for bit (sanity of the option plumbing).
func TestWorkerOptionOverride(t *testing.T) {
	base, err := Run(context.Background(), Spec{Campaign: "fig4mc", Seed: 3,
		Params: Fig4MCParams{Monitor: 1, Dies: 24, Cols: 9}})
	if err != nil {
		t.Fatal(err)
	}
	over, err := Run(context.Background(), Spec{Campaign: "fig4mc", Seed: 3, Workers: 64,
		Params: Fig4MCParams{Monitor: 1, Dies: 24, Cols: 9}}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if over.Workers != 1 {
		t.Fatalf("effective workers = %d, want 1", over.Workers)
	}
	if base.Text != over.Text {
		t.Fatal("worker bound changed the envelope")
	}
}
