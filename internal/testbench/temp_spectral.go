package testbench

import (
	"context"
	"fmt"
	"math/cmplx"
	"strings"

	"repro/internal/biquad"
	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/monitor"
	"repro/internal/ndf"
	"repro/internal/stat"
	"repro/internal/wave"
)

// TempDrift quantifies a deployment hazard the paper leaves implicit:
// the golden signature is characterized at one temperature, but the
// monitor's boundaries move with the junction temperature (V_TH and
// mobility tempcos), so a perfectly good CUT read out at a different
// temperature shows a spurious NDF. The experiment measures that false
// discrepancy as a function of temperature — the calibration budget a
// deployment must engineer around (re-characterize per temperature, or
// back off the threshold).
type TempDrift struct {
	TempsK []float64
	NDFs   []float64 // NDF of a golden CUT read by a bank at TempsK[i]
}

// RunTempDrift evaluates a golden CUT against the 300 K golden signature
// with the monitor bank operated at each temperature. It is a thin
// wrapper over the campaign registry ("temp").
func RunTempDrift(sys *core.System, tempsK []float64) (*TempDrift, error) {
	return runAs[TempDrift](legacyCtx(), Spec{
		Campaign: "temp",
		Params:   TempParams{TempsK: tempsK},
	}, WithSystem(sys))
}

// runTempDrift is the registry implementation behind RunTempDrift.
func runTempDrift(ctx context.Context, sys *core.System, tempsK []float64) (*TempDrift, error) {
	golden, err := sys.GoldenSignature()
	if err != nil {
		return nil, err
	}
	out := &TempDrift{TempsK: tempsK}
	for _, tk := range tempsK {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bank, err := bankAtTemperature(tk)
		if err != nil {
			return nil, err
		}
		hotSys, err := core.NewSystem(sys.Stimulus, sys.CUT, bank, sys.Capture)
		if err != nil {
			return nil, err
		}
		hotSys.Observe = sys.Observe
		// One exact scan on a throwaway bank: the zone-LUT build would
		// cost more than it amortizes, so keep the scalar classifier
		// (results are bit-identical either way).
		hotSys.Scalar = true
		obs, err := hotSys.ExactSignature(sys.CUT)
		if err != nil {
			return nil, err
		}
		v, err := ndf.NDF(obs, golden)
		if err != nil {
			return nil, err
		}
		out.NDFs = append(out.NDFs, v)
	}
	return out, nil
}

// bankAtTemperature rebuilds the Table I bank with every input device's
// parameters shifted to the given junction temperature.
func bankAtTemperature(tempK float64) (*monitor.Bank, error) {
	cfgs := monitor.TableI()
	ms := make([]monitor.Monitor, len(cfgs))
	for i, cfg := range cfgs {
		a, err := monitor.NewAnalytic(cfg)
		if err != nil {
			return nil, err
		}
		devs := a.Devices()
		for j := range devs {
			devs[j].P = devs[j].P.AtTemperature(tempK)
		}
		ms[i] = a.WithDevices(devs)
	}
	return monitor.NewBank(ms...), nil
}

// Render prints the drift table.
func (td *TempDrift) Render() string {
	var b strings.Builder
	b.WriteString("monitor temperature drift (golden CUT, golden characterized at 300 K)\n")
	b.WriteString("T(K)    spurious NDF\n")
	for i := range td.TempsK {
		fmt.Fprintf(&b, "%5.0f   %.4f\n", td.TempsK[i], td.NDFs[i])
	}
	return b.String()
}

// AblSpectral compares two alternate-test feature families for f0
// regression: the signature dwell-time features (what the digital
// monitor provides for free) against classic spectral features (tone
// amplitudes measured with Goertzel on the sampled analog output, which
// needs an ADC). Both are trained and evaluated on the same deviation
// grids.
type AblSpectral struct {
	DwellRMSE    float64
	SpectralRMSE float64
}

// RunAblSpectral runs both regressions. It is a thin wrapper over the
// campaign registry ("spectral").
func RunAblSpectral(sys *core.System, trainDevs, testDevs []float64) (*AblSpectral, error) {
	return runAs[AblSpectral](legacyCtx(), Spec{
		Campaign: "spectral",
		Params:   SpectralParams{TrainDevs: trainDevs, TestDevs: testDevs},
	}, WithSystem(sys))
}

// runAblSpectral is the registry implementation behind RunAblSpectral.
func runAblSpectral(ctx context.Context, sys *core.System, trainDevs, testDevs []float64) (*AblSpectral, error) {
	dw, err := runAblRegression(ctx, sys, trainDevs, testDevs)
	if err != nil {
		return nil, err
	}
	// Spectral features: amplitudes of the three stimulus tones in the
	// CUT output, sampled over one period.
	feat := func(dev float64) ([]float64, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		f, err := biquad.New(sys.Golden().WithF0Shift(dev))
		if err != nil {
			return nil, err
		}
		out := f.SteadyState(sys.Stimulus)
		rec := wave.SamplePeriods(out, 1, 2000)
		v := []float64{1}
		for _, tone := range sys.Stimulus.Tones {
			g := dsp.Goertzel(rec.V, rec.Fs, tone.Freq)
			v = append(v, cmplx.Abs(g))
		}
		return v, nil
	}
	var X [][]float64
	for _, d := range trainDevs {
		x, err := feat(d)
		if err != nil {
			return nil, err
		}
		X = append(X, x)
	}
	beta, err := stat.MultiFit(X, trainDevs)
	if err != nil {
		return nil, err
	}
	var pred, truth []float64
	for _, d := range testDevs {
		x, err := feat(d)
		if err != nil {
			return nil, err
		}
		s := 0.0
		for i := range beta {
			s += beta[i] * x[i]
		}
		pred = append(pred, s)
		truth = append(truth, d)
	}
	return &AblSpectral{DwellRMSE: dw.TestRMSE, SpectralRMSE: stat.RMSE(pred, truth)}, nil
}

// Render prints the comparison.
func (a *AblSpectral) Render() string {
	return fmt.Sprintf("alternate-test features: dwell RMSE %.5f vs spectral (Goertzel) RMSE %.5f\n",
		a.DwellRMSE, a.SpectralRMSE)
}
