package testbench

import (
	"context"
	"fmt"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/ndf"
	"repro/internal/stat"
)

// ExactNullCutoff is the null-trial count up to which calibration
// materializes the sample and takes the exact quantile. Small
// calibrations (every published experiment uses tens of trials) stay
// bit-for-bit on the historical path; above the cutoff the sample
// would dominate the campaign's heap, so calibration streams through
// per-chunk quantile sketches instead. The noise thresholds sit at
// quantile 1.0, where the sketch tracks the exact maximum — so the
// calibrated decision is bit-identical across the cutoff too, and the
// cutoff is purely a memory/allocation trade.
const ExactNullCutoff = 4096

// CalibrateNullThreshold fixes the max-quantile acceptance threshold
// from nullTrials noisy golden measurements, streaming the trials
// across the campaign pool. Below ExactNullCutoff it materializes the
// sample and calls ndf.ThresholdFromNull; above, it folds per-chunk
// quantile sketches (precision sketchPrec, 0 = stat's default) through
// campaign.Reduce — pooled, so live heap and total allocation are
// O(workers + chunk + sketch) however many trials run — and derives
// the threshold via ndf.ThresholdFromSketch. Both paths reject
// non-finite null NDFs with a descriptive error, and both are
// bit-identical at any worker count: the exact path by the engine's
// fold/merge ordering, the sketch path because integer-count merges
// are exactly associative.
func CalibrateNullThreshold(ctx context.Context, eng campaign.Engine, nullTrials, sketchPrec int, trial func(i int, sc *core.TrialScratch) (float64, error)) (ndf.Decision, error) {
	if nullTrials <= ExactNullCutoff {
		nulls, err := campaign.RunScratch(ctx, eng, nullTrials, core.NewTrialScratch, trial)
		if err != nil {
			return ndf.Decision{}, err
		}
		return ndf.ThresholdFromNull(nulls, 1.0)
	}
	if sketchPrec == 0 {
		sketchPrec = stat.DefaultSketchPrecision
	}
	if sketchPrec < stat.MinSketchPrecision || sketchPrec > stat.MaxSketchPrecision {
		return ndf.Decision{}, fmt.Errorf("testbench: sketch precision %d out of [%d, %d]",
			sketchPrec, stat.MinSketchPrecision, stat.MaxSketchPrecision)
	}
	red := campaign.PooledReducer(campaign.Reducer[float64, *stat.QuantileSketch]{
		New: func() *stat.QuantileSketch { return stat.NewQuantileSketch(sketchPrec) },
		Fold: func(acc *stat.QuantileSketch, _ int, v float64) *stat.QuantileSketch {
			acc.Push(v)
			return acc
		},
		Merge: func(into, next *stat.QuantileSketch) *stat.QuantileSketch {
			into.Merge(next)
			return into
		},
	}, func(s *stat.QuantileSketch) { s.Reset() })
	sk, err := campaign.ReduceScratch(ctx, eng, nullTrials, red, core.NewTrialScratch, trial)
	if err != nil {
		return ndf.Decision{}, err
	}
	return ndf.ThresholdFromSketch(sk, 1.0)
}
