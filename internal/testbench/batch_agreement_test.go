package testbench

import (
	"context"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/ndf"
	"repro/internal/rng"
)

// scalarSystem returns the paper's system on the named backend with the
// batched signature engine disabled — the reference baseline.
func scalarSystem(t *testing.T, backend string) *core.System {
	t.Helper()
	sys, err := core.SystemForBackend(backend)
	if err != nil {
		t.Fatal(err)
	}
	sys.Scalar = true
	return sys
}

func batchedSystem(t *testing.T, backend string) *core.System {
	t.Helper()
	sys, err := core.SystemForBackend(backend)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestFaultTableScalarVsBatched: the component-fault campaign must
// produce identical NDFs and verdicts on both engines, at any worker
// count.
func TestFaultTableScalarVsBatched(t *testing.T) {
	dec := ndf.Decision{Threshold: 0.02}
	faults := DefaultFaultSet()
	want, err := runFaultTable(context.Background(), scalarSystem(t, "analytic"), dec, faults, campaign.Engine{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, err := runFaultTable(context.Background(), batchedSystem(t, "analytic"), dec, faults, campaign.Engine{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Cases) != len(want.Cases) {
			t.Fatalf("workers %d: %d cases vs %d", workers, len(got.Cases), len(want.Cases))
		}
		for i := range want.Cases {
			if got.Cases[i].NDF != want.Cases[i].NDF || got.Cases[i].Detected != want.Cases[i].Detected {
				t.Fatalf("workers %d, fault %s: batched (%v, %v), scalar (%v, %v)",
					workers, want.Cases[i].Fault,
					got.Cases[i].NDF, got.Cases[i].Detected,
					want.Cases[i].NDF, want.Cases[i].Detected)
			}
		}
	}
}

// TestYieldScalarVsBatched: the production-yield simulation must score
// identically on both engines.
func TestYieldScalarVsBatched(t *testing.T) {
	dec := ndf.Decision{Threshold: 0.03}
	want, err := RunYield(scalarSystem(t, "analytic"), dec, 40, 0.02, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunYield(batchedSystem(t, "analytic"), dec, 40, 0.02, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got.TrueGood != want.TrueGood || got.PassCount != want.PassCount ||
		got.Escapes != want.Escapes || got.Overkill != want.Overkill {
		t.Fatalf("batched %+v, scalar %+v", got, want)
	}
}

// TestNoiseDetectionScalarVsBatched: the noisy averaged-NDF campaign —
// the heaviest consumer of the capture path — must produce identical
// detection rates and thresholds.
func TestNoiseDetectionScalarVsBatched(t *testing.T) {
	want, err := RunNoiseDetection(scalarSystem(t, "analytic"), 0.005, []float64{0.02}, 4, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunNoiseDetection(batchedSystem(t, "analytic"), 0.005, []float64{0.02}, 4, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if got.Threshold != want.Threshold || got.FalseRate != want.FalseRate {
		t.Fatalf("threshold/false-rate: batched (%v, %v), scalar (%v, %v)",
			got.Threshold, got.FalseRate, want.Threshold, want.FalseRate)
	}
	for i := range want.Detect {
		if got.Detect[i] != want.Detect[i] {
			t.Fatalf("detect[%d]: batched %v, scalar %v", i, got.Detect[i], want.Detect[i])
		}
	}
}

// TestSpiceBackendScalarVsBatched: the same engine agreement on the
// SPICE netlist backend (reduced campaign — the transient dominates the
// runtime, so -short skips it like the other SPICE campaigns).
func TestSpiceBackendScalarVsBatched(t *testing.T) {
	if testing.Short() {
		t.Skip("SPICE campaign in -short mode")
	}
	shifts := []float64{-0.10, 0, 0.10}
	want, err := scalarSystem(t, "spice").SweepF0Ctx(context.Background(), shifts, campaign.Engine{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := batchedSystem(t, "spice").SweepF0Ctx(context.Background(), shifts, campaign.Engine{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shift %g: batched %v, scalar %v", shifts[i], got[i], want[i])
		}
	}
	// One noisy averaged capture on the netlist engine.
	sysB, sysS := batchedSystem(t, "spice"), scalarSystem(t, "spice")
	cb, err := sysB.Shifted(0.05)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := sysS.Shifted(0.05)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := sysB.AveragedNDF(cb, 0.005, rng.New(33), 2)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := sysS.AveragedNDF(cs, 0.005, rng.New(33), 2)
	if err != nil {
		t.Fatal(err)
	}
	if vb != vs {
		t.Fatalf("spice AveragedNDF: batched %v, scalar %v", vb, vs)
	}
}
