package testbench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
)

// Spec is the declarative description of one campaign run — the unit the
// registry executes, the CLIs build from flags, and the mcserved HTTP
// service accepts as JSON. A Spec is fully serializable: the same bytes
// produce the same Result on any machine at any worker count.
type Spec struct {
	// Campaign names the registered campaign (see List).
	Campaign string `json:"campaign"`
	// Backend selects the CUT backend ("analytic" or "spice"); empty
	// means analytic. Campaigns that build their own systems (fig4,
	// fig4spice, fig4mc, table1, backends) ignore it.
	Backend string `json:"backend,omitempty"`
	// Seed is the root seed of the campaign's random streams. Campaigns
	// without randomness ignore it.
	Seed uint64 `json:"seed,omitempty"`
	// Workers bounds the campaign worker pool (0 = all CPUs). Results
	// never depend on it.
	Workers int `json:"workers,omitempty"`
	// Chunk is the trial count per reduction chunk of the streaming
	// campaigns (0 = campaign.DefaultChunk). It is part of the spec — and
	// so of the reproducibility contract — because a non-associative
	// reduction groups floating-point folds by chunk; at any fixed chunk
	// the result is still bit-identical at every worker count.
	Chunk int `json:"chunk,omitempty"`
	// Checkpoint is the trial count between durable checkpoints when the
	// campaign runs under the fabric (0 = campaign.DefaultCheckpoint).
	// Checkpointing observes a run but never changes its result, so —
	// unlike Chunk — the cadence is not part of the reproducibility
	// contract; it only bounds how much work a killed run replays.
	Checkpoint int `json:"checkpoint,omitempty"`
	// Scalar disables the batched signature engine and runs the retained
	// per-tick scalar pipeline (bit-identical, slower) — the knob the
	// engine-agreement studies flip.
	Scalar bool `json:"scalar,omitempty"`
	// Params holds the campaign-specific parameters. Accepted forms: nil
	// (registry defaults), the campaign's typed params struct (or a
	// pointer to it), json.RawMessage/[]byte, or any JSON-shaped value
	// such as the map[string]any a decoded HTTP body carries.
	Params any `json:"params,omitempty"`
}

// Result is the uniform envelope every campaign run returns: the typed
// payload plus the effective spec (params normalized to their typed,
// fully-populated form), a human rendering, and timing metadata. It
// round-trips through JSON; DecodeResult restores the typed payload.
type Result struct {
	// Spec is the effective spec: the submitted one with Params replaced
	// by the typed, default-filled params struct the campaign actually ran
	// with, so persisting a Result records how to reproduce it.
	Spec Spec `json:"spec"`
	// Payload is the campaign's typed result struct (e.g. *Fig4MC).
	Payload any `json:"payload,omitempty"`
	// Text is the payload's human rendering (Render or CSV), when it has one.
	Text string `json:"text,omitempty"`
	// Elapsed is the wall-clock duration of the run, in nanoseconds.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Workers is the worker bound the run used (0 = all CPUs).
	Workers int `json:"workers"`
}

// runConfig collects the functional options of Run.
type runConfig struct {
	workers    int
	workersSet bool
	progress   func(done, total int)
	meter      campaign.Meter
	sys        *core.System
	scalar     bool
}

// Option customizes one Run call without touching the serializable Spec.
type Option func(*runConfig)

// WithWorkers overrides the spec's worker-pool bound (0 = all CPUs).
func WithWorkers(n int) Option {
	return func(c *runConfig) { c.workers = n; c.workersSet = true }
}

// WithProgress streams completion counts out of the run: fn is invoked
// after every finished trial of the campaign's current fan-out phase with
// (done, total). It may be called concurrently and must not block;
// progress observes a run but never changes its result.
func WithProgress(fn func(done, total int)) Option {
	return func(c *runConfig) { c.progress = fn }
}

// WithMeter attaches a campaign.Meter to every streaming reduction of
// the run — the hook the serve metrics layer uses to observe chunk
// latency and worker saturation. Like WithProgress it is an observer:
// it may be called concurrently, must not block, and never changes the
// run's result.
func WithMeter(m campaign.Meter) Option {
	return func(c *runConfig) { c.meter = m }
}

// WithSystem pins the system the campaign runs on, bypassing the spec's
// Backend/Scalar resolution — the hook custom-configured systems (and the
// legacy Run* wrappers) use.
func WithSystem(sys *core.System) Option {
	return func(c *runConfig) { c.sys = sys }
}

// WithScalarEngine forces the per-tick scalar signature pipeline, as if
// the spec had Scalar set.
func WithScalarEngine() Option {
	return func(c *runConfig) { c.scalar = true }
}

// Env is the execution environment a campaign implementation receives:
// lazy access to the resolved system plus the configured campaign engine.
type Env struct {
	spec     Spec
	override *core.System
	sys      *core.System
	sysErr   error
	resolved bool
	workers  int
	progress func(done, total int)
	meter    campaign.Meter
}

// System resolves (once) the core.System the spec describes — the pinned
// WithSystem value, or the paper's reference system on the spec backend
// with the scalar-engine knob applied.
func (ev *Env) System() (*core.System, error) {
	if ev.resolved {
		return ev.sys, ev.sysErr
	}
	ev.resolved = true
	if ev.override != nil {
		ev.sys = ev.override
		return ev.sys, nil
	}
	backend := ev.spec.Backend
	if backend == "" {
		backend = core.Backends()[0]
	}
	ev.sys, ev.sysErr = core.SystemForBackend(backend)
	if ev.sysErr == nil && ev.spec.Scalar {
		ev.sys.Scalar = true
	}
	return ev.sys, ev.sysErr
}

// Engine returns the campaign engine every fan-out of this run shares:
// the resolved worker bound, the spec seed, the chunk size, and the
// progress sink.
func (ev *Env) Engine() campaign.Engine {
	return campaign.Engine{
		Workers:    ev.workers,
		Seed:       ev.spec.Seed,
		Chunk:      ev.spec.Chunk,
		Checkpoint: ev.spec.Checkpoint,
		Progress:   ev.progress,
		Meter:      ev.meter,
	}
}

// Seed returns the spec's root seed.
func (ev *Env) Seed() uint64 { return ev.spec.Seed }

// compile resolves a spec against the registry into its definition, its
// execution environment, the effective spec (knobs resolved, Params
// replaced by the typed default-filled struct), and the typed params —
// the preparation Run and Sharder share, so the programmatic, HTTP and
// fabric paths cannot drift in what they accept.
func compile(spec Spec, opts ...Option) (*campaignDef, *Env, Spec, any, error) {
	def, err := lookup(spec.Campaign)
	if err != nil {
		return nil, nil, Spec{}, nil, err
	}
	params := def.newParams()
	if err := decodeParams(spec.Params, params); err != nil {
		return nil, nil, Spec{}, nil, fmt.Errorf("testbench: campaign %s: bad params: %w", spec.Campaign, err)
	}
	if err := validateParams(spec.Campaign, params); err != nil {
		return nil, nil, Spec{}, nil, err
	}
	// compile and Validate must agree: a spec the HTTP gate would reject
	// cannot slip through the programmatic path with the envelope
	// recording a chunk size the engine silently replaced.
	if spec.Chunk < 0 {
		return nil, nil, Spec{}, nil, fmt.Errorf("testbench: campaign %s: negative chunk %d", spec.Campaign, spec.Chunk)
	}
	if spec.Checkpoint < 0 {
		return nil, nil, Spec{}, nil, fmt.Errorf("testbench: campaign %s: negative checkpoint %d", spec.Campaign, spec.Checkpoint)
	}
	cfg := runConfig{}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.scalar {
		spec.Scalar = true
	}
	workers := spec.Workers
	if cfg.workersSet {
		workers = cfg.workers
		spec.Workers = workers
	}
	ev := &Env{spec: spec, override: cfg.sys, workers: workers, progress: cfg.progress, meter: cfg.meter}
	spec.Params = params
	return def, ev, spec, params, nil
}

// Run executes the campaign a spec names through the registry and wraps
// its payload in the uniform Result envelope. Cancelling ctx aborts the
// campaign within one trial's latency (the run returns ctx's error). All
// legacy Run* entry points are thin wrappers over this function.
func Run(ctx context.Context, spec Spec, opts ...Option) (*Result, error) {
	def, ev, eff, params, err := compile(spec, opts...)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	payload, err := def.run(ctx, ev, params)
	if err != nil {
		return nil, fmt.Errorf("testbench: campaign %s: %w", spec.Campaign, err)
	}
	return &Result{
		Spec:    eff,
		Payload: payload,
		Text:    renderText(payload),
		Elapsed: time.Since(start),
		Workers: ev.workers,
	}, nil
}

// runAs runs a spec and returns its payload as *R — the helper behind the
// typed legacy wrappers.
func runAs[R any](ctx context.Context, spec Spec, opts ...Option) (*R, error) {
	res, err := Run(ctx, spec, opts...)
	if err != nil {
		return nil, err
	}
	p, ok := res.Payload.(*R)
	if !ok {
		return nil, fmt.Errorf("testbench: campaign %s returned %T", spec.Campaign, res.Payload)
	}
	return p, nil
}

// renderText extracts the payload's human rendering when it has one.
func renderText(payload any) string {
	switch v := payload.(type) {
	case interface{ Render() string }:
		return v.Render()
	case interface{ CSV() string }:
		return v.CSV()
	}
	return ""
}
