package testbench

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/ndf"
)

// CheckpointSink receives one durable checkpoint of a sharded campaign
// run: the marshaled accumulator covering every trial of the run's span
// below through (always a chunk boundary). A non-nil error aborts the
// run — a checkpoint that cannot be persisted is a failure, not a
// warning.
type CheckpointSink func(acc []byte, through int) error

// ShardRun is the compiled, sharded form of one campaign spec — the
// surface the distributed fabric drives. Accumulator state crosses its
// boundary only as canonical blobs (the campaign's CheckpointReducer
// codec), so the same ShardRun serves three execution shapes: a durable
// single-node run (full span, checkpoints to the job store), a resumed
// run (init from the last checkpoint), and a leased shard on a worker
// (sub-span, blob reported back to the coordinator).
//
// Bit-identity: a span's blob depends only on (spec, span) — trials
// derive their randomness as pure functions of (seed, trial index) —
// and shard blobs Merge in span order with the exactly associative
// merges these campaigns use, so any chunk-aligned partition of
// [0, Trials) reproduces the single-node accumulator bit for bit.
type ShardRun struct {
	// Spec is the effective spec (knobs resolved, typed default-filled
	// params) — what a durable job records to reproduce the run.
	Spec Spec
	// Trials is the campaign's total trial count; shard plans partition
	// [0, Trials).
	Trials int
	// Run reduces one contiguous trial span, starting from the restored
	// accumulator blob init (nil or empty = fresh) and invoking sink, when
	// non-nil, at the engine's checkpoint cadence. It returns the span's
	// accumulator blob.
	Run func(ctx context.Context, span campaign.Span, init []byte, sink CheckpointSink) ([]byte, error)
	// Merge combines two adjacent accumulator blobs in span order.
	Merge func(into, next []byte) ([]byte, error)
	// Finalize turns the full-range accumulator blob into the campaign's
	// Result envelope (Elapsed is the caller's to fill in — the fabric
	// owns the wall clock of a distributed run).
	Finalize func(acc []byte) (*Result, error)
}

// shardBuilders maps campaign name to the builder of its sharded form.
// A campaign qualifies when it is a single trial fan-out whose
// accumulator merges exactly associatively — integer counts, ordered
// concatenation — so per-shard blobs merge bit-identically to the
// single-node chunk chain. Populated from init only, read-only after.
var shardBuilders = map[string]func(ctx context.Context, ev *Env, spec Spec, params any) (*ShardRun, error){}

func init() {
	shardBuilders["yield"] = buildYieldShard
	shardBuilders["faults"] = buildFaultShard
}

// Shardable reports whether the named campaign has a sharded form.
func Shardable(name string) bool {
	_, ok := shardBuilders[name]
	return ok
}

// ShardableNames lists the campaigns with a sharded form, sorted.
func ShardableNames() []string {
	names := make([]string, 0, len(shardBuilders))
	for name := range shardBuilders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Sharder compiles a spec into its sharded executable form. It shares
// Run's spec resolution — lookup, params decoding and validation, knob
// bounds — so the fabric accepts exactly the specs the in-process path
// does, then resolves the campaign's system and decision once; the
// returned ShardRun's closures are safe for repeated spans under one
// process. Cancelling ctx aborts the compilation's calibration phase.
func Sharder(ctx context.Context, spec Spec, opts ...Option) (*ShardRun, error) {
	build, ok := shardBuilders[spec.Campaign]
	if !ok {
		return nil, fmt.Errorf("testbench: campaign %q is not shardable (shardable: %s)",
			spec.Campaign, strings.Join(ShardableNames(), ", "))
	}
	_, ev, eff, params, err := compile(spec, opts...)
	if err != nil {
		return nil, err
	}
	run, err := build(ctx, ev, eff, params)
	if err != nil {
		return nil, fmt.Errorf("testbench: campaign %s: %w", spec.Campaign, err)
	}
	return run, nil
}

// buildYieldShard compiles the yield campaign: threshold calibration is
// deterministic (corner NDFs of the resolved system), so coordinator
// and every worker arrive at the same decision independently.
func buildYieldShard(ctx context.Context, ev *Env, spec Spec, params any) (*ShardRun, error) {
	p := params.(*YieldParams)
	sys, err := ev.System()
	if err != nil {
		return nil, err
	}
	var dec ndf.Decision
	if p.Threshold != nil {
		dec.Threshold = *p.Threshold
	} else if dec, err = calibrateMultiParam(ctx, sys, p.Tol); err != nil {
		return nil, err
	}
	trial, err := yieldTrial(sys, dec, p.ComponentSigma, p.Tol, ev.Engine())
	if err != nil {
		return nil, err
	}
	return shardExec(ev, spec, p.N, yieldReducer(), trial, func(c yieldCounts) any {
		return finalizeYield(c, p.N, p.ComponentSigma, p.Tol, dec.Threshold)
	}), nil
}

// buildFaultShard compiles the component-fault campaign; the trial space
// is the fault list, one case per index.
func buildFaultShard(ctx context.Context, ev *Env, spec Spec, params any) (*ShardRun, error) {
	p := params.(*FaultsParams)
	dec, err := decision(ctx, ev, p.Threshold, p.Tol)
	if err != nil {
		return nil, err
	}
	sys, err := ev.System()
	if err != nil {
		return nil, err
	}
	faults := p.Faults
	if len(faults) == 0 {
		faults = DefaultFaultSet()
	}
	trial, err := faultTrial(sys, dec, faults)
	if err != nil {
		return nil, err
	}
	return shardExec(ev, spec, len(faults), faultReducer(), trial, func(cases []FaultCase) any {
		return finalizeFaultTable(dec.Threshold, cases)
	}), nil
}

// shardExec bridges a typed CheckpointReducer to the blob-level ShardRun
// surface: spans run through campaign.ReduceSpanScratch with the codec
// applied at the boundary, merges and finalization unmarshal first and
// remarshal after.
func shardExec[T, A any](ev *Env, spec Spec, n int, red campaign.CheckpointReducer[T, A], trial func(i int, sc *core.TrialScratch) (T, error), finalize func(acc A) any) *ShardRun {
	eng := ev.Engine()
	return &ShardRun{
		Spec:   spec,
		Trials: n,
		Run: func(ctx context.Context, span campaign.Span, init []byte, sink CheckpointSink) ([]byte, error) {
			if span.Lo < 0 || span.Hi < span.Lo || span.Hi > n {
				return nil, fmt.Errorf("span [%d, %d) outside the %d-trial campaign", span.Lo, span.Hi, n)
			}
			var initAcc *A
			if len(init) > 0 {
				a, err := red.Unmarshal(init)
				if err != nil {
					return nil, err
				}
				initAcc = &a
			}
			var ckpt campaign.CheckpointFunc[A]
			if sink != nil {
				ckpt = func(acc A, through int) error {
					blob, err := red.Marshal(acc)
					if err != nil {
						return err
					}
					return sink(blob, through)
				}
			}
			acc, err := campaign.ReduceSpanScratch(ctx, eng, span, initAcc, ckpt, red.Reducer, core.NewTrialScratch, trial)
			if err != nil {
				return nil, err
			}
			return red.Marshal(acc)
		},
		Merge: func(into, next []byte) ([]byte, error) {
			a, err := red.Unmarshal(into)
			if err != nil {
				return nil, err
			}
			b, err := red.Unmarshal(next)
			if err != nil {
				return nil, err
			}
			return red.Marshal(red.Reducer.Merge(a, b))
		},
		Finalize: func(blob []byte) (*Result, error) {
			acc, err := red.Unmarshal(blob)
			if err != nil {
				return nil, err
			}
			payload := finalize(acc)
			return &Result{
				Spec:    spec,
				Payload: payload,
				Text:    renderText(payload),
				Workers: ev.workers,
			}, nil
		},
	}
}
