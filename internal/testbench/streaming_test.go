package testbench

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/biquad"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/ndf"
	"repro/internal/rng"
)

// Satellite regression for the yield.go stream fix: the streaming
// in-worker derivation must reproduce, bit for bit, the old seeding
// order — all per-die streams derived serially up front, all verdicts
// materialized in a slice and folded afterwards — at every worker count
// and chunk size. Engine.Stream is a pure function of (seed, die), so
// moving the derivation inside the pool must not move a single draw.
func TestYieldStreamingMatchesSerialPrepass(t *testing.T) {
	s := sys()
	dec := ndf.Decision{Threshold: 0.03}
	const (
		n     = 60
		sigma = 0.02
		tol   = 0.05
		seed  = 7
	)
	// Pin the seeding order itself: PR 5 moved yield from the stateful
	// rng.New(seed).Split(i) pre-pass to the pure Engine.Stream(i) ==
	// rng.NewSub(seed, i) derivation (the published numbers moved once,
	// deliberately, with the campaign re-baselined on it). These golden
	// draws freeze the new order — a future change to Engine.Stream or
	// NewSub would silently re-draw every campaign, and must fail here
	// instead.
	for i, want := range []uint64{0x417d92f18561f76e, 0xc231a6a1d266fe61, 0xc3b80e9da8ce88cc} {
		if got := (campaign.Engine{Seed: seed}).Stream(i).Uint64(); got != want {
			t.Fatalf("Engine.Stream(%d) first draw = %#x, want %#x — the campaign seeding order changed", i, got, want)
		}
	}
	// Serial reference: the pre-refactor shape of runYield — an O(n)
	// stream pre-pass in die order, one result slot per die.
	golden := s.Golden()
	if _, err := s.GoldenSignature(); err != nil {
		t.Fatal(err)
	}
	streams := make([]*rng.Stream, n)
	for i := range streams {
		streams[i] = (campaign.Engine{Seed: seed}).Stream(i)
	}
	want := &Yield{N: n}
	sc := core.NewTrialScratch()
	for i := 0; i < n; i++ {
		st := streams[i]
		cut, err := s.Deviated(core.Deviation{
			RDrift:  st.Gauss(0, sigma),
			RQDrift: st.Gauss(0, sigma),
			RGDrift: st.Gauss(0, sigma),
			CDrift:  st.Gauss(0, sigma),
		})
		if err != nil {
			t.Fatal(err)
		}
		p := cut.Params()
		inBand := func(val, nom, frac float64) bool {
			return val >= nom*(1-frac) && val <= nom*(1+frac)
		}
		truthGood := inBand(p.F0, golden.F0, tol) &&
			inBand(p.Q, golden.Q, 2*tol) &&
			inBand(p.Gain, golden.Gain, tol)
		v, err := s.NDFOfScratch(cut, sc)
		if err != nil {
			t.Fatal(err)
		}
		pass := dec.Pass(v)
		if truthGood {
			want.TrueGood++
		}
		if pass {
			want.PassCount++
		}
		switch {
		case pass && !truthGood:
			want.Escapes++
		case !pass && truthGood:
			want.Overkill++
		}
	}
	for _, w := range []int{1, 4, runtime.NumCPU()} {
		for _, chunk := range []int{0, 7, 64} {
			got, err := runAs[Yield](context.Background(), Spec{
				Campaign: "yield",
				Seed:     seed,
				Workers:  w,
				Chunk:    chunk,
				Params:   YieldParams{N: n, ComponentSigma: sigma, Tol: tol, Threshold: &dec.Threshold},
			}, WithSystem(sys()))
			if err != nil {
				t.Fatal(err)
			}
			if got.TrueGood != want.TrueGood || got.PassCount != want.PassCount ||
				got.Escapes != want.Escapes || got.Overkill != want.Overkill {
				t.Fatalf("workers=%d chunk=%d: streamed %+v, serial pre-pass reference %+v",
					w, chunk, got, want)
			}
		}
	}
}

// The streamed fault table must keep its rows in fault order and agree
// across worker counts and chunk sizes on both CUT backends — the merge
// order of the reduction is trial order, whatever the scheduling.
func TestFaultTableStreamingOrderAcrossBackends(t *testing.T) {
	for _, backend := range core.Backends() {
		if backend == "spice" && testing.Short() {
			continue // the netlist engine is too slow for -short
		}
		s, err := core.SystemForBackend(backend)
		if err != nil {
			t.Fatal(err)
		}
		faults := []biquad.Fault{
			{Kind: biquad.FaultParametric, Target: biquad.TargetR, Frac: 0.10},
			{Kind: biquad.FaultOpen, Target: biquad.TargetRQ},
			{Kind: biquad.FaultShort, Target: biquad.TargetC},
			{Kind: biquad.FaultParametric, Target: biquad.TargetC, Frac: -0.10},
		}
		dec := ndf.Decision{Threshold: 0.02}
		ref, err := runFaultTable(context.Background(), s, dec, faults, campaign.Engine{Workers: 1, Chunk: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(ref.Cases) != len(faults) {
			t.Fatalf("%s: %d cases for %d faults", backend, len(ref.Cases), len(faults))
		}
		for i := range ref.Cases {
			if ref.Cases[i].Fault != faults[i] {
				t.Fatalf("%s: row %d holds fault %s, want %s", backend, i, ref.Cases[i].Fault, faults[i])
			}
		}
		for _, w := range []int{2, runtime.NumCPU()} {
			got, err := runFaultTable(context.Background(), s, dec, faults, campaign.Engine{Workers: w, Chunk: 1})
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref.Cases {
				if got.Cases[i] != ref.Cases[i] {
					t.Fatalf("%s workers=%d: row %d differs from serial run", backend, w, i)
				}
			}
		}
		// Coverage interval brackets the point estimate.
		if c := ref.Coverage(); c < ref.CoverageLo || c > ref.CoverageHi {
			t.Fatalf("%s: coverage CI [%v, %v] excludes %v", backend, ref.CoverageLo, ref.CoverageHi, c)
		}
	}
}

// Cancellation and progress under the streaming engine, on both
// backends: cancelling mid-chunk returns context.Canceled promptly,
// leaks no goroutines, and the progress stream observed up to that
// point never decreased.
func TestStreamingCancelAndProgressBothBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("cancellation soak skipped in -short mode")
	}
	for _, backend := range core.Backends() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			before := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			var mu sync.Mutex
			last := 0
			var once sync.Once
			started := make(chan struct{})
			errCh := make(chan error, 1)
			go func() {
				// A population only cancellation ends in reasonable time;
				// chunk 1 makes progress tick (and cancellation points)
				// per-die.
				thr := 0.03
				_, err := Run(ctx, Spec{
					Campaign: "yield",
					Backend:  backend,
					Seed:     3,
					Chunk:    1,
					Params:   YieldParams{N: 1_000_000, ComponentSigma: 0.02, Tol: 0.05, Threshold: &thr},
				}, WithProgress(func(done, total int) {
					mu.Lock()
					if done < last {
						t.Errorf("progress went backwards: %d after %d", done, last)
					}
					last = done
					mu.Unlock()
					once.Do(func() { close(started) })
				}))
				errCh <- err
			}()
			<-started
			cancel()
			select {
			case err := <-errCh:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("err = %v, want context.Canceled", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("cancellation not honoured within 30s")
			}
			deadline := time.Now().Add(2 * time.Second)
			for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			if got := runtime.NumGoroutine(); got > before {
				t.Fatalf("%d goroutines after cancel, started with %d", got, before)
			}
		})
	}
}

// The registry's trial-count knob: production-scale specs validate,
// absurd ones fail loudly before any work starts.
func TestTrialsKnobValidation(t *testing.T) {
	ok := Spec{Campaign: "yield", Params: YieldParams{N: 10_000_000, ComponentSigma: 0.02, Tol: 0.05}}
	if err := Validate(ok); err != nil {
		t.Fatalf("10M-trial yield spec rejected: %v", err)
	}
	for _, bad := range []Spec{
		{Campaign: "yield", Params: YieldParams{N: 0, ComponentSigma: 0.02, Tol: 0.05}},
		{Campaign: "yield", Params: YieldParams{N: MaxTrials + 1, ComponentSigma: 0.02, Tol: 0.05}},
		{Campaign: "noise", Params: NoiseParams{Sigma: 0.005, Devs: []float64{0.01}, NullTrials: 4, Trials: -1}},
		{Campaign: "noise", Params: NoiseParams{Sigma: -1, Devs: []float64{0.01}, NullTrials: 4, Trials: 4}},
		{Campaign: "noisesweep", Params: NoiseSweepParams{Sigmas: []float64{0.005}, DevGrid: []float64{0.01}, Trials: MaxTrials * 2}},
		{Campaign: "fig4mc", Params: Fig4MCParams{Monitor: 2, Dies: 0, Cols: 5}},
		{Campaign: "yield", Chunk: -1},
	} {
		if err := Validate(bad); err == nil {
			t.Fatalf("spec %+v validated", bad)
		}
	}
	// Run applies the same gate: the bad spec never reaches the campaign.
	if _, err := Run(context.Background(), Spec{
		Campaign: "yield",
		Params:   YieldParams{N: -5, ComponentSigma: 0.02, Tol: 0.05},
	}); err == nil {
		t.Fatal("Run accepted a negative trial count")
	}
	if _, err := Run(context.Background(), Spec{Campaign: "table1", Chunk: -1}); err == nil {
		t.Fatal("Run accepted a negative chunk the HTTP gate rejects")
	}
}

// The noise detection campaign (null calibration + streamed detection
// counts) is bit-identical across worker counts — its render string is
// a full fingerprint of threshold, false-alarm and detection rates.
func TestNoiseDetectionStreamingDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("noise campaign too slow for -short")
	}
	run := func(w, chunk int) *Noise {
		t.Helper()
		nz, err := runAs[Noise](context.Background(), Spec{
			Campaign: "noise",
			Seed:     9,
			Workers:  w,
			Chunk:    chunk,
			Params:   NoiseParams{Sigma: 0.005, Devs: []float64{0.02}, NullTrials: 6, Trials: 6},
		}, WithSystem(sys()))
		if err != nil {
			t.Fatal(err)
		}
		return nz
	}
	ref := run(1, 0)
	for _, w := range []int{2, runtime.NumCPU()} {
		if got := run(w, 0); got.Render() != ref.Render() {
			t.Fatalf("workers=%d: render differs from workers=1", w)
		}
	}
	// Integer detection counts are exactly associative, so even the
	// chunk size cannot move them.
	if got := run(2, 2); got.Render() != ref.Render() {
		t.Fatal("chunk size changed the detection counts")
	}
}
