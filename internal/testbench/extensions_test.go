package testbench

import (
	"strings"
	"testing"

	"repro/internal/biquad"
	"repro/internal/core"
	"repro/internal/ndf"
)

func TestExtQBandpassSeesQ(t *testing.T) {
	e, err := RunExtQ(sys(), []float64{-0.30, -0.15, 0.15, 0.30})
	if err != nil {
		t.Fatal(err)
	}
	// Band-pass observation must react to Q deviations.
	for i, d := range e.Devs {
		if e.BPNDF[i] <= 0 {
			t.Fatalf("BP observation blind to Q deviation %v", d)
		}
	}
	if !strings.Contains(e.Render(), "Q-verification") {
		t.Fatal("render malformed")
	}
}

func TestDualObservationSeparatesQFromF0(t *testing.T) {
	// The point of adding the band-pass observation: a Q fault and an
	// f0 fault produce clearly different (LP, BP) NDF ratios, so the
	// pair diagnoses which parameter moved — single-output observation
	// cannot do that.
	s := sys()
	bpSys, err := core.NewSystem(s.Stimulus, s.CUT, s.Bank, s.Capture)
	if err != nil {
		t.Fatal(err)
	}
	bpSys.Observe = core.ObserveBP

	ratio := func(dev core.Deviation) float64 {
		lp, err := s.NDFOfDeviation(dev)
		if err != nil {
			t.Fatal(err)
		}
		bp, err := bpSys.NDFOfDeviation(dev)
		if err != nil {
			t.Fatal(err)
		}
		if lp == 0 {
			t.Fatal("LP NDF zero for a faulty CUT")
		}
		return bp / lp
	}
	rQ := ratio(core.Deviation{QShift: 0.3})
	rF0 := ratio(core.Deviation{F0Shift: 0.10})
	if rQ/rF0 < 1.3 && rF0/rQ < 1.3 {
		t.Fatalf("BP/LP ratios too similar to diagnose: Q fault %v vs f0 fault %v", rQ, rF0)
	}
}

func TestExtQMonotoneAwayFromZero(t *testing.T) {
	e, err := RunExtQ(sys(), []float64{0.10, 0.20, 0.40})
	if err != nil {
		t.Fatal(err)
	}
	if !(e.BPNDF[0] < e.BPNDF[1] && e.BPNDF[1] < e.BPNDF[2]) {
		t.Fatalf("BP NDF not increasing with Q deviation: %v", e.BPNDF)
	}
}

func TestDefaultFaultSet(t *testing.T) {
	fs := DefaultFaultSet()
	if len(fs) != 16 { // 4 targets × (2 parametric + open + short)
		t.Fatalf("fault set size = %d, want 16", len(fs))
	}
	para, cata := 0, 0
	for _, f := range fs {
		if f.Kind == biquad.FaultParametric {
			para++
		} else {
			cata++
		}
	}
	if para != 8 || cata != 8 {
		t.Fatalf("fault mix = %d parametric, %d catastrophic", para, cata)
	}
}

func TestFaultTableCampaign(t *testing.T) {
	s := sys()
	dec, err := s.CalibrateFromTolerance(0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := RunFaultTable(s, dec, DefaultFaultSet())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Cases) != 16 {
		t.Fatalf("cases = %d", len(tab.Cases))
	}
	// All catastrophic faults must be detected.
	for _, c := range tab.Cases {
		if c.Fault.Kind != biquad.FaultParametric && !c.Detected {
			t.Fatalf("catastrophic fault %s escaped (NDF %v)", c.Fault, c.NDF)
		}
	}
	// ±10% R and C faults move f0 by ~10% > 5% tolerance -> detected.
	for _, c := range tab.Cases {
		if c.Fault.Kind == biquad.FaultParametric &&
			(c.Fault.Target == biquad.TargetR || c.Fault.Target == biquad.TargetC) &&
			!c.Detected {
			t.Fatalf("f0-moving fault %s escaped (NDF %v)", c.Fault, c.NDF)
		}
	}
	if cov := tab.Coverage(); cov < 0.7 {
		t.Fatalf("coverage = %v, implausibly low", cov)
	}
	r := tab.Render()
	if !strings.Contains(r, "coverage") || !strings.Contains(r, "open(RQ)") {
		t.Fatalf("render malformed:\n%s", r)
	}
}

func TestFaultTableThresholdSensitivity(t *testing.T) {
	s := sys()
	// An absurdly high threshold detects nothing.
	tab, err := RunFaultTable(s, ndf.Decision{Threshold: 10}, DefaultFaultSet())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Coverage() != 0 {
		t.Fatalf("coverage with huge threshold = %v, want 0", tab.Coverage())
	}
	// A zero threshold detects everything (every fault moves something).
	tab0, err := RunFaultTable(s, ndf.Decision{Threshold: 0}, DefaultFaultSet())
	if err != nil {
		t.Fatal(err)
	}
	if tab0.Coverage() != 1 {
		t.Fatalf("coverage with zero threshold = %v, want 1", tab0.Coverage())
	}
}
