package testbench

import (
	"strings"
	"testing"
)

func TestTempDriftGrowsAwayFrom300K(t *testing.T) {
	td, err := RunTempDrift(sys(), []float64{250, 300, 350, 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(td.NDFs) != 4 {
		t.Fatalf("NDFs = %v", td.NDFs)
	}
	// At the characterization temperature the drift is exactly zero.
	if td.NDFs[1] != 0 {
		t.Fatalf("NDF at 300 K = %v, want 0", td.NDFs[1])
	}
	// Away from 300 K the spurious NDF is nonzero and grows with |ΔT|.
	if td.NDFs[0] <= 0 || td.NDFs[2] <= 0 {
		t.Fatalf("temperature drift invisible: %v", td.NDFs)
	}
	if td.NDFs[3] <= td.NDFs[2] {
		t.Fatalf("drift not growing with ΔT: %v", td.NDFs)
	}
	if !strings.Contains(td.Render(), "temperature drift") {
		t.Fatal("render malformed")
	}
}

func TestTempDriftComparableToToleranceBudget(t *testing.T) {
	// The engineering takeaway: a ±50 K excursion must cost less NDF
	// than the ±5% tolerance threshold, otherwise the test is unusable
	// without per-temperature goldens. Verify the drift at 350 K stays
	// below the Fig. 8 threshold.
	s := sys()
	dec, err := s.CalibrateFromTolerance(0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	td, err := RunTempDrift(s, []float64{350})
	if err != nil {
		t.Fatal(err)
	}
	if td.NDFs[0] >= dec.Threshold {
		t.Fatalf("50 K drift (%v) exceeds the tolerance threshold (%v); golden CUTs would fail",
			td.NDFs[0], dec.Threshold)
	}
}

func TestAblSpectral(t *testing.T) {
	train := []float64{-0.20, -0.15, -0.10, -0.06, -0.03, 0, 0.03, 0.06, 0.10, 0.15, 0.20}
	test := []float64{-0.12, -0.04, 0.07, 0.12}
	a, err := RunAblSpectral(sys(), train, test)
	if err != nil {
		t.Fatal(err)
	}
	// Both feature families must regress f0 deviation well.
	if a.DwellRMSE > 0.02 {
		t.Fatalf("dwell RMSE = %v", a.DwellRMSE)
	}
	if a.SpectralRMSE > 0.02 {
		t.Fatalf("spectral RMSE = %v", a.SpectralRMSE)
	}
	if !strings.Contains(a.Render(), "Goertzel") {
		t.Fatal("render malformed")
	}
}

func TestNoiseSweepResolutionDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("long Monte-Carlo campaign, skipped under -short")
	}
	ns, err := RunNoiseSweep(sys(), []float64{0.002, 0.005, 0.02},
		[]float64{0.005, 0.01, 0.02, 0.05}, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns.MinDetectable) != 3 {
		t.Fatalf("results = %v", ns.MinDetectable)
	}
	// The paper's operating point: 1% detectable at sigma 0.005.
	if ns.MinDetectable[1] > 0.01 {
		t.Fatalf("min detectable at sigma 0.005 = %v, want <= 1%%", ns.MinDetectable[1])
	}
	// Resolution must not improve as noise grows.
	for i := 1; i < len(ns.MinDetectable); i++ {
		if ns.MinDetectable[i] < ns.MinDetectable[i-1] {
			t.Fatalf("resolution improved with more noise: %v", ns.MinDetectable)
		}
	}
	if !strings.Contains(ns.Render(), "resolution sweep") {
		t.Fatal("render malformed")
	}
}

func TestCornerDrift(t *testing.T) {
	cd, err := RunCornerDrift(sys())
	if err != nil {
		t.Fatal(err)
	}
	if len(cd.NDFs) != 5 {
		t.Fatalf("corners = %d", len(cd.NDFs))
	}
	// TT is the characterization corner: zero drift.
	if cd.NDFs[0] != 0 {
		t.Fatalf("TT drift = %v, want 0", cd.NDFs[0])
	}
	// SS and FF move all boundaries and must show a substantial drift.
	if cd.NDFs[1] <= 0.01 || cd.NDFs[2] <= 0.01 {
		t.Fatalf("SS/FF drifts too small: %v", cd.NDFs)
	}
	// The monitor's zone boundaries are set by nMOS devices only, so SF
	// tracks SS and FS tracks FF.
	if cd.NDFs[3] != cd.NDFs[1] || cd.NDFs[4] != cd.NDFs[2] {
		t.Fatalf("nMOS-only boundary property violated: %v", cd.NDFs)
	}
	if !strings.Contains(cd.Render(), "corner") {
		t.Fatal("render malformed")
	}
}
