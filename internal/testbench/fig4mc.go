package testbench

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/campaign"
	"repro/internal/monitor"
	"repro/internal/mos"
	"repro/internal/stat"
)

// Fig4MC is the Monte Carlo envelope study backing the paper's statement
// that measured boundaries "lie in the predicted range for Monte Carlo
// simulations" of the 65 nm process.
type Fig4MC struct {
	MonitorName string
	Xs          []float64
	Nominal     []float64 // nominal boundary y per column (NaN-free: missing columns skipped)
	P2_5        []float64
	P97_5       []float64
	Cols        []int // indices into Xs that had MC crossings
}

// RunFig4MC builds the envelope for Table I monitor index mi (0-based),
// fanning the dies out across all CPUs. It is a thin wrapper over the
// campaign registry ("fig4mc"); spec-driven runs choose the worker bound
// and get the bit-identical envelope at any count.
func RunFig4MC(mi int, nDies, nCols int, seed uint64) (*Fig4MC, error) {
	return runAs[Fig4MC](legacyCtx(), Spec{
		Campaign: "fig4mc",
		Seed:     seed,
		Params:   Fig4MCParams{Monitor: mi, Dies: nDies, Cols: nCols},
	})
}

// runFig4MC is the registry implementation behind RunFig4MC.
func runFig4MC(ctx context.Context, mi, nDies, nCols int, seed uint64, eng campaign.Engine) (*Fig4MC, error) {
	cfgs := monitor.TableI()
	if mi < 0 || mi >= len(cfgs) {
		return nil, fmt.Errorf("testbench: monitor index %d out of range", mi)
	}
	if nDies < 1 || nCols < 2 {
		return nil, fmt.Errorf("testbench: need at least 1 die and 2 columns, got %d/%d", nDies, nCols)
	}
	bank := monitor.NewAnalyticTableI()
	xs, ys, err := bank.MCEnvelopeCtx(ctx, mi, mos.Default65nmVariation(), seed, nDies, nCols, eng)
	if err != nil {
		return nil, err
	}
	nominal := monitor.MustAnalytic(cfgs[mi])
	out := &Fig4MC{MonitorName: cfgs[mi].Name}
	for i, x := range xs {
		// Require most dies to cross this column; partial columns sit at
		// curve endpoints where the envelope is ill-defined.
		if len(ys[i]) < nDies*3/4 {
			continue
		}
		ny, ok := nominal.BoundaryY(x, 0, 1)
		if !ok {
			continue
		}
		out.Xs = append(out.Xs, x)
		out.Nominal = append(out.Nominal, ny)
		out.P2_5 = append(out.P2_5, stat.Quantile(ys[i], 0.025))
		out.P97_5 = append(out.P97_5, stat.Quantile(ys[i], 0.975))
		out.Cols = append(out.Cols, i)
	}
	if len(out.Xs) == 0 {
		return nil, fmt.Errorf("testbench: monitor %s produced no MC envelope columns", cfgs[mi].Name)
	}
	return out, nil
}

// NominalInsideEnvelope reports the fraction of columns where the
// nominal boundary lies within the MC envelope (should be ~1).
func (f *Fig4MC) NominalInsideEnvelope() float64 {
	in := 0
	for i := range f.Xs {
		if f.Nominal[i] >= f.P2_5[i]-1e-12 && f.Nominal[i] <= f.P97_5[i]+1e-12 {
			in++
		}
	}
	return float64(in) / float64(len(f.Xs))
}

// Render prints the envelope table.
func (f *Fig4MC) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Monte Carlo boundary envelope, monitor %s (95%% band)\n", f.MonitorName)
	b.WriteString("x       p2.5     nominal  p97.5\n")
	for i := range f.Xs {
		fmt.Fprintf(&b, "%.3f   %.4f   %.4f   %.4f\n", f.Xs[i], f.P2_5[i], f.Nominal[i], f.P97_5[i])
	}
	fmt.Fprintf(&b, "nominal inside envelope: %.0f%% of columns\n", 100*f.NominalInsideEnvelope())
	return b.String()
}

// CSV renders "x,p2.5,nominal,p97.5".
func (f *Fig4MC) CSV() string {
	var b strings.Builder
	b.WriteString("x,p2_5,nominal,p97_5\n")
	for i := range f.Xs {
		fmt.Fprintf(&b, "%.6f,%.6f,%.6f,%.6f\n", f.Xs[i], f.P2_5[i], f.Nominal[i], f.P97_5[i])
	}
	return b.String()
}
