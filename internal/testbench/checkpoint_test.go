package testbench

import (
	"bytes"
	"testing"

	"repro/internal/biquad"
	"repro/internal/ndf"
)

func TestYieldBlobRoundTrip(t *testing.T) {
	red := yieldReducer()
	for _, acc := range []yieldCounts{
		{},
		{trueGood: 5, pass: 7, escapes: 3, overkill: 1},
		{trueGood: 1 << 40, pass: 1 << 40, escapes: 9, overkill: 12},
	} {
		blob, err := red.Marshal(acc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := red.Unmarshal(blob)
		if err != nil {
			t.Fatal(err)
		}
		if got != acc {
			t.Fatalf("round trip %+v -> %+v", acc, got)
		}
		// Canonical: equal state re-marshals to equal bytes.
		blob2, err := red.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("non-canonical encoding for %+v", acc)
		}
	}
}

func TestYieldBlobRejectsMalformed(t *testing.T) {
	red := yieldReducer()
	good, err := red.Marshal(yieldCounts{trueGood: 4, pass: 5, escapes: 2, overkill: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		nil,
		[]byte("MC"),
		[]byte("XXXX\x01\x02\x03\x04"),
		good[:len(good)-1],          // truncated counter
		append(good[:4:4], 1, 2, 3), // too few counters
		append(bytes.Clone(good), 0),
		// escapes above pass: unreachable state.
		append([]byte("MCY1"), 0, 5, 6, 0),
	}
	for i, data := range bad {
		if _, err := red.Unmarshal(data); err == nil {
			t.Errorf("case %d: malformed blob accepted", i)
		}
	}
}

func TestDetectBlobRoundTrip(t *testing.T) {
	red := detectReducer(ndf.Decision{Threshold: 0.5})
	for _, acc := range []int{0, 1, 123456789} {
		blob, err := red.Marshal(acc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := red.Unmarshal(blob)
		if err != nil {
			t.Fatal(err)
		}
		if got != acc {
			t.Fatalf("round trip %d -> %d", acc, got)
		}
	}
	for i, data := range [][]byte{nil, []byte("MCD1"), []byte("MCY1\x05"), append([]byte("MCD1\x05"), 9)} {
		if _, err := red.Unmarshal(data); err == nil {
			t.Errorf("case %d: malformed blob accepted", i)
		}
	}
}

func TestFaultBlobRoundTrip(t *testing.T) {
	red := faultReducer()
	cases := []FaultCase{
		{
			Fault:    biquad.Fault{Kind: biquad.FaultParametric, Target: biquad.TargetR, Frac: -0.1},
			Params:   biquad.Params{F0: 1234.5, Q: 0.707, Gain: 1.5},
			NDF:      0.123456789,
			Detected: true,
		},
		{
			Fault:  biquad.Fault{Kind: biquad.FaultOpen, Target: biquad.TargetC},
			Params: biquad.Params{F0: 999.25, Q: 3.5, Gain: 0.25},
			NDF:    0.5,
		},
	}
	blob, err := red.Marshal(cases)
	if err != nil {
		t.Fatal(err)
	}
	got, err := red.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cases) {
		t.Fatalf("round trip %d cases -> %d", len(cases), len(got))
	}
	for i := range got {
		if got[i] != cases[i] {
			t.Fatalf("case %d: %+v -> %+v", i, cases[i], got[i])
		}
	}
	blob2, err := red.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("non-canonical fault encoding")
	}
}

func TestFaultBlobRejectsMalformed(t *testing.T) {
	red := faultReducer()
	bad := [][]byte{
		nil,
		[]byte("MCF1"),
		[]byte("MCF1{"),
		[]byte("MCF1[]extra"),
		[]byte(`MCF1[{"unknown_field": 1}]`),
		[]byte("MCY1[]"),
	}
	for i, data := range bad {
		if _, err := red.Unmarshal(data); err == nil {
			t.Errorf("case %d: malformed blob accepted", i)
		}
	}
}
