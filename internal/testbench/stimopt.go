package testbench

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/wave"
)

// StimOpt is the stimulus optimization study: the paper's predecessors
// "previously studied [Lissajous curves] to select the best X-Y
// partitions"; the dual problem is selecting the stimulus that, for a
// fixed partition, maximizes the NDF response to the target deviation.
// A coordinate search over the harmonic phases reshapes the Lissajous
// trace so it crosses more boundaries near its defect-sensitive regions.
type StimOpt struct {
	Shift      float64 // deviation the sensitivity is optimized for
	BasePhases []float64
	BestPhases []float64
	BaseNDF    float64
	BestNDF    float64
}

// RunStimOpt greedily searches the phases of the 2nd and 3rd harmonics
// over a gridN×gridN grid in [0, 2π). It is a thin wrapper over the
// campaign registry ("stimopt").
func RunStimOpt(sys *core.System, shift float64, gridN int) (*StimOpt, error) {
	return runAs[StimOpt](legacyCtx(), Spec{
		Campaign: "stimopt",
		Params:   StimOptParams{Shift: shift, Grid: gridN},
	}, WithSystem(sys))
}

// runStimOpt is the registry implementation behind RunStimOpt.
func runStimOpt(ctx context.Context, sys *core.System, shift float64, gridN int) (*StimOpt, error) {
	if gridN < 2 {
		gridN = 4
	}
	base := sys.Stimulus
	basePhases := make([]float64, len(base.Tones))
	amps := make([]float64, len(base.Tones))
	harmonics := make([]int, len(base.Tones))
	f0 := 1 / base.Period()
	for i, t := range base.Tones {
		basePhases[i] = t.Phase
		amps[i] = t.Amp
		harmonics[i] = int(math.Round(t.Freq / f0))
	}
	eval := func(phases []float64) (float64, error) {
		stim, err := wave.NewMultitone(base.Offset, f0, harmonics, amps, phases)
		if err != nil {
			return 0, err
		}
		trial, err := core.NewSystem(stim, sys.CUT, sys.Bank, sys.Capture)
		if err != nil {
			return 0, err
		}
		trial.Observe = sys.Observe
		return trial.NDFOfShift(shift)
	}
	baseNDF, err := eval(basePhases)
	if err != nil {
		return nil, err
	}
	out := &StimOpt{
		Shift:      shift,
		BasePhases: basePhases,
		BestPhases: append([]float64(nil), basePhases...),
		BaseNDF:    baseNDF,
		BestNDF:    baseNDF,
	}
	if len(basePhases) < 3 {
		return out, nil // nothing to search
	}
	for i := 0; i < gridN; i++ {
		p2 := 2 * math.Pi * float64(i) / float64(gridN)
		for j := 0; j < gridN; j++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			p3 := 2 * math.Pi * float64(j) / float64(gridN)
			trial := append([]float64(nil), basePhases...)
			trial[1], trial[2] = p2, p3
			v, err := eval(trial)
			if err != nil {
				return nil, err
			}
			if v > out.BestNDF {
				out.BestNDF = v
				out.BestPhases = trial
			}
		}
	}
	return out, nil
}

// Render prints the optimization outcome.
func (s *StimOpt) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stimulus phase optimization at %+.0f%% f0 shift\n", s.Shift*100)
	fmt.Fprintf(&b, "  base phases %v -> NDF %.4f\n", fmtPhases(s.BasePhases), s.BaseNDF)
	fmt.Fprintf(&b, "  best phases %v -> NDF %.4f (%.0f%% gain)\n",
		fmtPhases(s.BestPhases), s.BestNDF, 100*(s.BestNDF/s.BaseNDF-1))
	return b.String()
}

func fmtPhases(p []float64) string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = fmt.Sprintf("%.2f", v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
