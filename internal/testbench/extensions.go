package testbench

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/biquad"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/ndf"
	"repro/internal/stat"
)

// ExtQ is the Q-verification extension: NDF vs Q deviation under both
// low-pass (the paper's) and band-pass (ref [14]-style) observation.
// The paper verifies f0 only and lists multi-parameter verification as
// the natural generalization; the band-pass output makes Q visible to
// the same monitor bank.
type ExtQ struct {
	Devs  []float64
	LPNDF []float64
	BPNDF []float64
}

// RunExtQ sweeps fractional Q deviations. It is a thin wrapper over the
// campaign registry ("q").
func RunExtQ(sys *core.System, devs []float64) (*ExtQ, error) {
	return runAs[ExtQ](legacyCtx(), Spec{
		Campaign: "q",
		Params:   QParams{Devs: devs},
	}, WithSystem(sys))
}

// runExtQ is the registry implementation behind RunExtQ.
func runExtQ(ctx context.Context, sys *core.System, devs []float64) (*ExtQ, error) {
	bpSys, err := core.NewSystem(sys.Stimulus, sys.CUT, sys.Bank, sys.Capture)
	if err != nil {
		return nil, err
	}
	bpSys.Observe = core.ObserveBP
	out := &ExtQ{Devs: devs}
	for _, d := range devs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dev := core.Deviation{QShift: d}
		lp, err := sys.NDFOfDeviation(dev)
		if err != nil {
			return nil, err
		}
		bp, err := bpSys.NDFOfDeviation(dev)
		if err != nil {
			return nil, err
		}
		out.LPNDF = append(out.LPNDF, lp)
		out.BPNDF = append(out.BPNDF, bp)
	}
	return out, nil
}

// Render prints the comparison.
func (e *ExtQ) Render() string {
	var b strings.Builder
	b.WriteString("Q-verification extension: NDF vs Q deviation\n")
	b.WriteString("dev%    LP-observed  BP-observed\n")
	for i := range e.Devs {
		fmt.Fprintf(&b, "%+5.1f   %.4f       %.4f\n", e.Devs[i]*100, e.LPNDF[i], e.BPNDF[i])
	}
	return b.String()
}

// FaultCase is one entry of the component-fault campaign.
type FaultCase struct {
	Fault    biquad.Fault
	Params   biquad.Params
	NDF      float64
	Detected bool
}

// FaultTable is the component-level fault campaign: every parametric and
// catastrophic fault of the Tow-Thomas realization, its behavioural
// effect, its NDF, and the test verdict. CoverageLo/CoverageHi bound
// the detected fraction with an exact 95% Clopper-Pearson interval —
// fault lists are small, so the normal approximation behind Wilson is
// not defensible here.
type FaultTable struct {
	Threshold  float64
	Cases      []FaultCase
	CoverageLo float64
	CoverageHi float64
}

// DefaultFaultSet returns the campaign fault list: ±10% parametric
// drifts on every component plus the classic opens and shorts.
func DefaultFaultSet() []biquad.Fault {
	var out []biquad.Fault
	targets := []biquad.Target{biquad.TargetR, biquad.TargetRQ, biquad.TargetRG, biquad.TargetC}
	for _, tgt := range targets {
		for _, frac := range []float64{-0.10, 0.10} {
			out = append(out, biquad.Fault{Kind: biquad.FaultParametric, Target: tgt, Frac: frac})
		}
	}
	for _, tgt := range targets {
		out = append(out,
			biquad.Fault{Kind: biquad.FaultOpen, Target: tgt},
			biquad.Fault{Kind: biquad.FaultShort, Target: tgt},
		)
	}
	return out
}

// RunFaultTable injects every fault into the golden realization (via
// CUT.Perturb, so the injection happens at component level on whichever
// backend the system runs — analytic model or SPICE netlist) and tests
// the faulty circuit with the given decision threshold. It is a thin
// wrapper over the campaign registry ("faults"); the fault injections are
// independent, fan out across the campaign pool at any worker bound, and
// the table rows stay in fault order.
func RunFaultTable(sys *core.System, dec ndf.Decision, faults []biquad.Fault) (*FaultTable, error) {
	return runAs[FaultTable](legacyCtx(), Spec{
		Campaign: "faults",
		Params:   FaultsParams{Threshold: &dec.Threshold, Faults: faults},
	}, WithSystem(sys))
}

// faultTrial builds the per-fault trial function of the fault campaign:
// inject fault i, test the faulty circuit, record the scored case. The
// golden signature is materialized here, before fan-out, so the
// sync.Once does not serialize the workers; each case depends only on
// its fault index, so any contiguous range replays exactly.
func faultTrial(sys *core.System, dec ndf.Decision, faults []biquad.Fault) (func(i int, sc *core.TrialScratch) (FaultCase, error), error) {
	if _, err := sys.GoldenSignature(); err != nil {
		return nil, err
	}
	return func(i int, sc *core.TrialScratch) (FaultCase, error) {
		f := faults[i]
		cut, err := sys.Deviated(core.Deviation{Fault: &f})
		if err != nil {
			return FaultCase{}, fmt.Errorf("testbench: fault %s: %w", f, err)
		}
		v, err := sys.NDFOfScratch(cut, sc)
		if err != nil {
			return FaultCase{}, fmt.Errorf("testbench: fault %s: %w", f, err)
		}
		return FaultCase{Fault: f, Params: cut.Params(), NDF: v, Detected: !dec.Pass(v)}, nil
	}, nil
}

// finalizeFaultTable scores the ordered case list into the published
// table with its Clopper-Pearson coverage interval — shared by the
// in-process run and the fabric's merge-on-complete path.
func finalizeFaultTable(threshold float64, cases []FaultCase) *FaultTable {
	out := &FaultTable{Threshold: threshold, Cases: cases}
	if n := len(cases); n > 0 {
		detected := 0
		for _, c := range cases {
			if c.Detected {
				detected++
			}
		}
		out.CoverageLo, out.CoverageHi = stat.ClopperPearson(detected, n, 0.95)
	}
	return out
}

// runFaultTable is the registry implementation behind RunFaultTable. The
// fault injections stream through the campaign reduction engine: each
// chunk folds its cases into an ordered slice and chunks concatenate in
// index order, so the table rows stay in fault order at any worker
// count while the engine's memory stays O(workers + chunk).
func runFaultTable(ctx context.Context, sys *core.System, dec ndf.Decision, faults []biquad.Fault, eng campaign.Engine) (*FaultTable, error) {
	trial, err := faultTrial(sys, dec, faults)
	if err != nil {
		return nil, err
	}
	cases, err := campaign.ReduceScratch(ctx, eng, len(faults), faultReducer().Reducer, core.NewTrialScratch, trial)
	if err != nil {
		return nil, err
	}
	return finalizeFaultTable(dec.Threshold, cases), nil
}

// Coverage returns the fraction of faults detected.
func (t *FaultTable) Coverage() float64 {
	if len(t.Cases) == 0 {
		return 0
	}
	n := 0
	for _, c := range t.Cases {
		if c.Detected {
			n++
		}
	}
	return float64(n) / float64(len(t.Cases))
}

// Render prints the campaign table.
func (t *FaultTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "component fault campaign (threshold %.4f)\n", t.Threshold)
	b.WriteString("fault        f0(kHz)    Q          NDF      verdict\n")
	for _, c := range t.Cases {
		verdict := "PASS (escape)"
		if c.Detected {
			verdict = "FAIL (detected)"
		}
		fmt.Fprintf(&b, "%-12s %-10.3g %-10.3g %.4f   %s\n",
			c.Fault, c.Params.F0/1e3, c.Params.Q, c.NDF, verdict)
	}
	fmt.Fprintf(&b, "coverage: %.0f%% (95%% CI %.0f%%–%.0f%%)\n",
		100*t.Coverage(), 100*t.CoverageLo, 100*t.CoverageHi)
	return b.String()
}
