package testbench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ndf"
)

func TestYieldSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("long Monte-Carlo campaign, skipped under -short")
	}
	s := sys()
	dec, err := CalibrateMultiParam(s, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	y, err := RunYield(s, dec, 400, 0.02, 0.05, 11)
	if err != nil {
		t.Fatal(err)
	}
	if y.N != 400 {
		t.Fatalf("N = %d", y.N)
	}
	// 2% component sigma: f0 = 1/(2πRC) has ~2.8% sigma; the ±5% spec
	// keeps the large majority of circuits good.
	if frac := float64(y.TrueGood) / float64(y.N); frac < 0.75 || frac > 0.99 {
		t.Fatalf("true-good fraction = %v, implausible for 2%% components", frac)
	}
	// A single scalar metric cannot match the rectangular spec region
	// exactly; corner calibration bounds both error types at the ~10%
	// level (the f0-only Fig. 8 calibration instead gives ~0 escapes but
	// >30% overkill — the tradeoff TestYieldThresholdTradeoff maps).
	if y.DefectLevel() > 0.14 {
		t.Fatalf("defect level %v too high", y.DefectLevel())
	}
	if y.OverkillRate() > 0.10 {
		t.Fatalf("overkill %v too high", y.OverkillRate())
	}
	// Counting identity: pass + fail = N; escapes <= pass; overkill <= good.
	if y.PassCount > y.N || y.Escapes > y.PassCount || y.Overkill > y.TrueGood {
		t.Fatalf("inconsistent counts: %+v", y)
	}
	// The Wilson intervals bracket their point estimates and are
	// non-degenerate at this population size.
	if rate := y.YieldRate(); rate < y.YieldLo || rate > y.YieldHi || y.YieldLo >= y.YieldHi {
		t.Fatalf("yield CI [%v, %v] malformed around %v", y.YieldLo, y.YieldHi, rate)
	}
	if d := y.DefectLevel(); d < y.DefectLo || d > y.DefectHi {
		t.Fatalf("defect CI [%v, %v] excludes %v", y.DefectLo, y.DefectHi, d)
	}
	if !strings.Contains(y.Render(), "defect level") || !strings.Contains(y.Render(), "95% CI") {
		t.Fatal("render malformed")
	}
}

func TestYieldThresholdTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("long Monte-Carlo campaign, skipped under -short")
	}
	// Loosening the threshold must not decrease yield, and must not
	// decrease escapes; tightening trades the other way. This is the
	// Fig. 8 band picture expressed in production terms.
	s := sys()
	tight, err := RunYield(s, ndf.Decision{Threshold: 0.05}, 120, 0.02, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := RunYield(s, ndf.Decision{Threshold: 0.20}, 120, 0.02, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if loose.YieldRate() < tight.YieldRate() {
		t.Fatalf("loose threshold reduced yield: %v vs %v", loose.YieldRate(), tight.YieldRate())
	}
	if loose.Escapes < tight.Escapes {
		t.Fatalf("loose threshold reduced escapes: %d vs %d", loose.Escapes, tight.Escapes)
	}
	if tight.Overkill < loose.Overkill {
		t.Fatalf("tight threshold reduced overkill: %d vs %d", tight.Overkill, loose.Overkill)
	}
}

func TestYieldDegenerateRates(t *testing.T) {
	y := &Yield{N: 10}
	if y.DefectLevel() != 0 || y.OverkillRate() != 0 {
		t.Fatal("degenerate rates must be 0")
	}
}

func TestSelfTestDetectsStuckMonitors(t *testing.T) {
	s := sys()
	dec, err := s.CalibrateFromTolerance(0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunSelfTest(s, dec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 12 { // 6 monitors x stuck@0/1
		t.Fatalf("faults = %d", st.Total)
	}
	// Every stuck output changes the instantaneous codes for a large
	// fraction of the period: each monitor's bit spends substantial time
	// on both sides during the golden traversal. All must be caught.
	for i, pair := range st.NDFs {
		for v, ndfVal := range pair {
			if ndfVal <= 0 {
				t.Fatalf("monitor %d stuck@%d invisible", i+1, v)
			}
		}
	}
	if st.Coverage() < 0.75 {
		t.Fatalf("stuck-at coverage = %v", st.Coverage())
	}
	if !strings.Contains(st.Render(), "self-test") {
		t.Fatal("render malformed")
	}
}

func TestWriteReportContainsAllArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("long Monte-Carlo campaign, skipped under -short")
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, sys()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"FIG1", "TAB1", "FIG4", "FIG6", "FIG7", "FIG8",
		"NOISE", "ABL", "EXT", "AREA",
		"0.1021",   // paper's headline value cited
		"16 zones", // partition size
		"53.54",    // published area
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "\n") < 12 {
		t.Fatal("report suspiciously short")
	}
}
