package testbench

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/biquad"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/ndf"
)

// templateTestSystem builds a SPICE-backed reference system at reduced
// resolution (fast enough for exhaustive comparison) with the trial
// templates either active or forced off via SpiceConfig.Rebuild.
func templateTestSystem(t *testing.T, rebuild bool, obs core.Observation) *core.System {
	t.Helper()
	ref := core.Default()
	cfg := biquad.SpiceConfig{StepsPerPeriod: 256, Rebuild: rebuild}
	cut, err := biquad.NewSpiceCUTFromParams(ref.Golden(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(ref.Stimulus, cut, ref.Bank, ref.Capture)
	if err != nil {
		t.Fatal(err)
	}
	sys.ScanN = 1024
	sys.Observe = obs
	return sys
}

// TestSpiceTemplateCampaignBitIdentity is the end-to-end contract of the
// trial-template engine: full fault-table and yield campaigns on the
// SPICE backend produce byte-identical payloads with templates on and
// off (Rebuild), for both observations, at 1, 4 and 8 workers.
func TestSpiceTemplateCampaignBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("SPICE campaign comparison is slower")
	}
	ctx := context.Background()
	dec := ndf.Decision{Threshold: 0.02}
	faults := DefaultFaultSet()
	for _, obs := range []core.Observation{core.ObserveLP, core.ObserveBP} {
		var wantFaults *FaultTable
		var wantYield *Yield
		for _, workers := range []int{1, 4, 8} {
			eng := campaign.Engine{Workers: workers, Seed: 9001}
			tmplSys := templateTestSystem(t, false, obs)
			rbldSys := templateTestSystem(t, true, obs)

			ft, err := runFaultTable(ctx, tmplSys, dec, faults, eng)
			if err != nil {
				t.Fatalf("obs %v workers %d: template fault table: %v", obs, workers, err)
			}
			ftRef, err := runFaultTable(ctx, rbldSys, dec, faults, eng)
			if err != nil {
				t.Fatalf("obs %v workers %d: rebuild fault table: %v", obs, workers, err)
			}
			if !reflect.DeepEqual(ft, ftRef) {
				t.Fatalf("obs %v workers %d: fault table differs between template and rebuild paths\n template: %+v\n rebuild:  %+v",
					obs, workers, ft, ftRef)
			}
			if wantFaults == nil {
				wantFaults = ft
			} else if !reflect.DeepEqual(ft, wantFaults) {
				t.Fatalf("obs %v: fault table at %d workers differs from 1 worker", obs, workers)
			}

			yt, err := runYield(ctx, tmplSys, dec, 48, 0.02, 0.05, eng)
			if err != nil {
				t.Fatalf("obs %v workers %d: template yield: %v", obs, workers, err)
			}
			ytRef, err := runYield(ctx, rbldSys, dec, 48, 0.02, 0.05, eng)
			if err != nil {
				t.Fatalf("obs %v workers %d: rebuild yield: %v", obs, workers, err)
			}
			if !reflect.DeepEqual(yt, ytRef) {
				t.Fatalf("obs %v workers %d: yield differs between template and rebuild paths\n template: %+v\n rebuild:  %+v",
					obs, workers, yt, ytRef)
			}
			if wantYield == nil {
				wantYield = yt
			} else if !reflect.DeepEqual(yt, wantYield) {
				t.Fatalf("obs %v: yield at %d workers differs from 1 worker", obs, workers)
			}
		}
	}
}
