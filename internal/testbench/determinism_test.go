package testbench

import (
	"runtime"
	"testing"
)

// The campaign engine's contract: every parallelized study renders
// byte-identical output at workers=1 and workers=NumCPU (and any count
// between). These are regression tests for the paper's reproducibility
// claim — all figures and tables are bit-reproducible run to run.

func workerCounts() []int {
	n := runtime.NumCPU()
	if n < 2 {
		n = 8 // still exercises the concurrent pool path on one CPU
	}
	return []int{1, 2, n}
}

func TestSweepF0DeterministicAcrossWorkers(t *testing.T) {
	devs := []float64{-0.10, -0.05, 0, 0.05, 0.10}
	ref, err := sys().SweepF0Workers(devs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts()[1:] {
		got, err := sys().SweepF0Workers(devs, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: NDF[%d] = %v, want %v", w, i, got[i], ref[i])
			}
		}
	}
}

func TestFig4MCDeterministicAcrossWorkers(t *testing.T) {
	ref, err := RunFig4MCWorkers(2, 40, 15, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts()[1:] {
		got, err := RunFig4MCWorkers(2, 40, 15, 7, w)
		if err != nil {
			t.Fatal(err)
		}
		if got.Render() != ref.Render() {
			t.Fatalf("workers=%d: Render differs from workers=1", w)
		}
		if got.CSV() != ref.CSV() {
			t.Fatalf("workers=%d: CSV differs from workers=1", w)
		}
	}
}

func TestNoiseSweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("noise campaign too slow for -short")
	}
	sigmas := []float64{0.005}
	grid := []float64{0.01, 0.02}
	ref, err := RunNoiseSweepWorkers(sys(), sigmas, grid, 4, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts()[1:] {
		got, err := RunNoiseSweepWorkers(sys(), sigmas, grid, 4, 7, w)
		if err != nil {
			t.Fatal(err)
		}
		if got.Render() != ref.Render() {
			t.Fatalf("workers=%d: Render differs from workers=1", w)
		}
	}
}
