package testbench

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/campaign"
)

// The campaign engine's contract: every parallelized study renders
// byte-identical output at workers=1 and workers=NumCPU (and any count
// between). These are regression tests for the paper's reproducibility
// claim — all figures and tables are bit-reproducible run to run — now
// exercised through the declarative spec path, so the registry's worker
// knob is covered by the same contract the legacy entry points had.

func workerCounts() []int {
	n := runtime.NumCPU()
	if n < 2 {
		n = 8 // still exercises the concurrent pool path on one CPU
	}
	return []int{1, 2, n}
}

func TestSweepF0DeterministicAcrossWorkers(t *testing.T) {
	devs := []float64{-0.10, -0.05, 0, 0.05, 0.10}
	ctx := context.Background()
	ref, err := sys().SweepF0Ctx(ctx, devs, campaign.Engine{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts()[1:] {
		got, err := sys().SweepF0Ctx(ctx, devs, campaign.Engine{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: NDF[%d] = %v, want %v", w, i, got[i], ref[i])
			}
		}
	}
}

func TestFig4MCDeterministicAcrossWorkers(t *testing.T) {
	run := func(w int) *Fig4MC {
		t.Helper()
		env, err := runAs[Fig4MC](context.Background(), Spec{
			Campaign: "fig4mc",
			Seed:     7,
			Workers:  w,
			Params:   Fig4MCParams{Monitor: 2, Dies: 40, Cols: 15},
		})
		if err != nil {
			t.Fatal(err)
		}
		return env
	}
	ref := run(1)
	// The spec path must also agree with the legacy entry point exactly.
	legacy, err := RunFig4MC(2, 40, 15, 7)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Render() != ref.Render() {
		t.Fatal("legacy RunFig4MC differs from the spec path")
	}
	for _, w := range workerCounts()[1:] {
		got := run(w)
		if got.Render() != ref.Render() {
			t.Fatalf("workers=%d: Render differs from workers=1", w)
		}
		if got.CSV() != ref.CSV() {
			t.Fatalf("workers=%d: CSV differs from workers=1", w)
		}
	}
}

func TestNoiseSweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("noise campaign too slow for -short")
	}
	run := func(w int) *NoiseSweep {
		t.Helper()
		ns, err := runAs[NoiseSweep](context.Background(), Spec{
			Campaign: "noisesweep",
			Seed:     7,
			Workers:  w,
			Params:   NoiseSweepParams{Sigmas: []float64{0.005}, DevGrid: []float64{0.01, 0.02}, Trials: 4},
		}, WithSystem(sys()))
		if err != nil {
			t.Fatal(err)
		}
		return ns
	}
	ref := run(1)
	legacy, err := RunNoiseSweep(sys(), []float64{0.005}, []float64{0.01, 0.02}, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Render() != ref.Render() {
		t.Fatal("legacy RunNoiseSweep differs from the spec path")
	}
	for _, w := range workerCounts()[1:] {
		if got := run(w); got.Render() != ref.Render() {
			t.Fatalf("workers=%d: Render differs from workers=1", w)
		}
	}
}
