package testbench

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/ndf"
	"repro/internal/stat"
)

// Yield is a production-flow simulation: a population of CUTs with
// Gaussian component tolerances goes through the signature test, and the
// decision is scored against the true specification. This turns the
// paper's method into the numbers a test engineer actually signs off on:
// yield, defect level (escapes) and overkill — each with a 95% Wilson
// score interval, so a spec that asks for more trials visibly tightens
// the estimate.
//
// The specification covers all three behavioural parameters — |Δf0| ≤
// tol, |ΔQ| ≤ 2·tol, |Δgain| ≤ tol — because the NDF is a functional
// discrepancy measure: component drifts that move Q or gain while
// leaving f0 in band still deform the Lissajous trace and are rejected,
// which against an f0-only spec would be misread as overkill.
type Yield struct {
	N              int
	ComponentSigma float64 // relative 1σ of each component
	Tolerance      float64 // spec half-band on f0 and gain; 2x on Q
	Threshold      float64
	TrueGood       int // circuits meeting spec
	PassCount      int
	Escapes        int // defective circuits that passed (test escapes)
	Overkill       int // good circuits that failed (yield loss)
	// YieldLo/YieldHi bound the pass rate with a 95% Wilson score
	// interval; DefectLo/DefectHi bound the defect level (escapes over
	// shipped parts) the same way.
	YieldLo, YieldHi   float64
	DefectLo, DefectHi float64
}

// CalibrateMultiParam places the acceptance threshold at the worst NDF
// over the eight simultaneous spec corners (±tol on f0 and gain, ±2·tol
// on Q). Calibrating on single-parameter sweeps (Fig. 8) under-budgets
// multi-parameter in-spec drift and shows up as overkill; corner
// calibration is how a production deployment sets the band.
func CalibrateMultiParam(sys *core.System, tol float64) (ndf.Decision, error) {
	return calibrateMultiParam(legacyCtx(), sys, tol)
}

// calibrateMultiParam is CalibrateMultiParam with corner-granular
// cancellation for registry runs.
func calibrateMultiParam(ctx context.Context, sys *core.System, tol float64) (ndf.Decision, error) {
	worst := 0.0
	for _, sf := range []float64{-1, 1} {
		for _, sq := range []float64{-1, 1} {
			for _, sg := range []float64{-1, 1} {
				if err := ctx.Err(); err != nil {
					return ndf.Decision{}, err
				}
				v, err := sys.NDFOfDeviation(core.Deviation{
					F0Shift:   sf * tol,
					QShift:    sq * 2 * tol,
					GainShift: sg * tol,
				})
				if err != nil {
					return ndf.Decision{}, err
				}
				if v > worst {
					worst = v
				}
			}
		}
	}
	return ndf.Decision{Threshold: worst}, nil
}

// RunYield draws n CUTs with component sigma, tests each against the
// decision, and scores against the spec. It is a thin wrapper over the
// campaign registry ("yield"); the CUTs are independent dies streamed
// through the campaign reduction engine — peak memory is O(workers +
// chunk) whatever n is, and the scores are bit-identical at any worker
// count.
func RunYield(sys *core.System, dec ndf.Decision, n int, componentSigma, tol float64, seed uint64) (*Yield, error) {
	return runAs[Yield](legacyCtx(), Spec{
		Campaign: "yield",
		Seed:     seed,
		Params:   YieldParams{N: n, ComponentSigma: componentSigma, Tol: tol, Threshold: &dec.Threshold},
	}, WithSystem(sys))
}

// yieldCounts is the per-chunk accumulator of the yield reduction: four
// integers, merged by exact addition — so the streamed scores match the
// materialized ones bit for bit at any chunk size and worker count.
type yieldCounts struct {
	trueGood, pass, escapes, overkill int
}

// foldVerdict scores one die into the accumulator.
func (c yieldCounts) foldVerdict(truthGood, pass bool) yieldCounts {
	if truthGood {
		c.trueGood++
	}
	if pass {
		c.pass++
	}
	switch {
	case pass && !truthGood:
		c.escapes++
	case !pass && truthGood:
		c.overkill++
	}
	return c
}

// yieldVerdict is one die's scored outcome: whether the circuit truly
// meets the spec and whether the test passed it.
type yieldVerdict struct{ truthGood, pass bool }

// yieldTrial builds the per-die trial function of the yield campaign.
// Each die derives its private random stream inside the worker as a
// pure function of (seed, die index) via Engine.Stream — there is no
// O(n) serial stream pre-pass — so any contiguous die range (a resumed
// checkpoint suffix, a leased shard) replays the exact draws of the
// full-range run. The golden signature is materialized here, before
// fan-out, so the sync.Once does not serialize the workers.
func yieldTrial(sys *core.System, dec ndf.Decision, componentSigma, tol float64, eng campaign.Engine) (func(i int, sc *core.TrialScratch) (yieldVerdict, error), error) {
	if _, err := sys.GoldenSignature(); err != nil {
		return nil, err
	}
	golden := sys.Golden()
	return func(i int, sc *core.TrialScratch) (yieldVerdict, error) {
		s := eng.Stream(i)
		// Per-die component tolerances, injected at realization level
		// through the backend (the draw order is part of the
		// bit-reproducibility contract).
		cut, err := sys.Deviated(core.Deviation{
			RDrift:  s.Gauss(0, componentSigma),
			RQDrift: s.Gauss(0, componentSigma),
			RGDrift: s.Gauss(0, componentSigma),
			CDrift:  s.Gauss(0, componentSigma),
		})
		if err != nil {
			return yieldVerdict{}, err
		}
		p := cut.Params()
		inBand := func(val, nom, frac float64) bool {
			return val >= nom*(1-frac) && val <= nom*(1+frac)
		}
		truthGood := inBand(p.F0, golden.F0, tol) &&
			inBand(p.Q, golden.Q, 2*tol) &&
			inBand(p.Gain, golden.Gain, tol)
		v, err := sys.NDFOfScratch(cut, sc)
		if err != nil {
			return yieldVerdict{}, err
		}
		return yieldVerdict{truthGood: truthGood, pass: dec.Pass(v)}, nil
	}, nil
}

// finalizeYield scores the full-campaign counts into the published
// payload with its Wilson intervals — shared by the in-process run and
// the fabric's merge-on-complete path.
func finalizeYield(counts yieldCounts, n int, componentSigma, tol, threshold float64) *Yield {
	out := &Yield{
		N: n, ComponentSigma: componentSigma, Tolerance: tol, Threshold: threshold,
		TrueGood: counts.trueGood, PassCount: counts.pass,
		Escapes: counts.escapes, Overkill: counts.overkill,
	}
	out.YieldLo, out.YieldHi = stat.Wilson(out.PassCount, out.N, 0.95)
	if out.PassCount > 0 {
		out.DefectLo, out.DefectHi = stat.Wilson(out.Escapes, out.PassCount, 0.95)
	}
	return out
}

// runYield is the registry implementation behind RunYield: the yield
// trial streamed through the checkpointable reduction over the full die
// range.
func runYield(ctx context.Context, sys *core.System, dec ndf.Decision, n int, componentSigma, tol float64, eng campaign.Engine) (*Yield, error) {
	trial, err := yieldTrial(sys, dec, componentSigma, tol, eng)
	if err != nil {
		return nil, err
	}
	counts, err := campaign.ReduceScratch(ctx, eng, n, yieldReducer().Reducer, core.NewTrialScratch, trial)
	if err != nil {
		return nil, err
	}
	return finalizeYield(counts, n, componentSigma, tol, dec.Threshold), nil
}

// YieldRate returns the fraction of circuits passing the test.
func (y *Yield) YieldRate() float64 { return float64(y.PassCount) / float64(y.N) }

// DefectLevel returns the fraction of shipped (passing) circuits that
// violate the spec — the classic DPM numerator.
func (y *Yield) DefectLevel() float64 {
	if y.PassCount == 0 {
		return 0
	}
	return float64(y.Escapes) / float64(y.PassCount)
}

// OverkillRate returns the fraction of truly good circuits rejected.
func (y *Yield) OverkillRate() float64 {
	if y.TrueGood == 0 {
		return 0
	}
	return float64(y.Overkill) / float64(y.TrueGood)
}

// Render prints the production summary.
func (y *Yield) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "production yield simulation: %d CUTs, component σ %.1f%%, spec |Δf0| ≤ %.0f%%, threshold %.4f\n",
		y.N, y.ComponentSigma*100, y.Tolerance*100, y.Threshold)
	fmt.Fprintf(&b, "  true good:    %d (%.1f%%)\n", y.TrueGood, 100*float64(y.TrueGood)/float64(y.N))
	fmt.Fprintf(&b, "  test yield:   %.1f%% (95%% CI %.1f%%–%.1f%%)\n", 100*y.YieldRate(), 100*y.YieldLo, 100*y.YieldHi)
	fmt.Fprintf(&b, "  escapes:      %d (defect level %.2f%% of shipped, 95%% CI %.2f%%–%.2f%%)\n",
		y.Escapes, 100*y.DefectLevel(), 100*y.DefectLo, 100*y.DefectHi)
	fmt.Fprintf(&b, "  overkill:     %d (%.2f%% of good circuits)\n", y.Overkill, 100*y.OverkillRate())
	return b.String()
}
