package testbench

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/ndf"
	"repro/internal/rng"
)

// Yield is a production-flow simulation: a population of CUTs with
// Gaussian component tolerances goes through the signature test, and the
// decision is scored against the true specification. This turns the
// paper's method into the numbers a test engineer actually signs off on:
// yield, defect level (escapes) and overkill.
//
// The specification covers all three behavioural parameters — |Δf0| ≤
// tol, |ΔQ| ≤ 2·tol, |Δgain| ≤ tol — because the NDF is a functional
// discrepancy measure: component drifts that move Q or gain while
// leaving f0 in band still deform the Lissajous trace and are rejected,
// which against an f0-only spec would be misread as overkill.
type Yield struct {
	N              int
	ComponentSigma float64 // relative 1σ of each component
	Tolerance      float64 // spec half-band on f0 and gain; 2x on Q
	Threshold      float64
	TrueGood       int // circuits meeting spec
	PassCount      int
	Escapes        int // defective circuits that passed (test escapes)
	Overkill       int // good circuits that failed (yield loss)
}

// CalibrateMultiParam places the acceptance threshold at the worst NDF
// over the eight simultaneous spec corners (±tol on f0 and gain, ±2·tol
// on Q). Calibrating on single-parameter sweeps (Fig. 8) under-budgets
// multi-parameter in-spec drift and shows up as overkill; corner
// calibration is how a production deployment sets the band.
func CalibrateMultiParam(sys *core.System, tol float64) (ndf.Decision, error) {
	return calibrateMultiParam(context.Background(), sys, tol)
}

// calibrateMultiParam is CalibrateMultiParam with corner-granular
// cancellation for registry runs.
func calibrateMultiParam(ctx context.Context, sys *core.System, tol float64) (ndf.Decision, error) {
	worst := 0.0
	for _, sf := range []float64{-1, 1} {
		for _, sq := range []float64{-1, 1} {
			for _, sg := range []float64{-1, 1} {
				if err := ctx.Err(); err != nil {
					return ndf.Decision{}, err
				}
				v, err := sys.NDFOfDeviation(core.Deviation{
					F0Shift:   sf * tol,
					QShift:    sq * 2 * tol,
					GainShift: sg * tol,
				})
				if err != nil {
					return ndf.Decision{}, err
				}
				if v > worst {
					worst = v
				}
			}
		}
	}
	return ndf.Decision{Threshold: worst}, nil
}

// RunYield draws n CUTs with component sigma, tests each against the
// decision, and scores against the spec. It is a thin wrapper over the
// campaign registry ("yield"); the CUTs are independent dies and fan out
// across the campaign pool; per-die streams are derived serially from the
// seed, so the scores are bit-identical at any worker count.
func RunYield(sys *core.System, dec ndf.Decision, n int, componentSigma, tol float64, seed uint64) (*Yield, error) {
	return runAs[Yield](context.Background(), Spec{
		Campaign: "yield",
		Seed:     seed,
		Params:   YieldParams{N: n, ComponentSigma: componentSigma, Tol: tol, Threshold: &dec.Threshold},
	}, WithSystem(sys))
}

// runYield is the registry implementation behind RunYield.
func runYield(ctx context.Context, sys *core.System, dec ndf.Decision, n int, componentSigma, tol float64, seed uint64, eng campaign.Engine) (*Yield, error) {
	if _, err := sys.GoldenSignature(); err != nil {
		return nil, err
	}
	golden := sys.Golden()
	src := rng.New(seed)
	streams := make([]*rng.Stream, n)
	for i := range streams {
		streams[i] = src.Split(uint64(i))
	}
	type verdict struct{ truthGood, pass bool }
	verdicts, err := campaign.RunScratch(ctx, eng, n,
		core.NewTrialScratch,
		func(i int, sc *core.TrialScratch) (verdict, error) {
			s := streams[i]
			// Per-die component tolerances, injected at realization level
			// through the backend (the draw order is part of the
			// bit-reproducibility contract).
			cut, err := sys.Deviated(core.Deviation{
				RDrift:  s.Gauss(0, componentSigma),
				RQDrift: s.Gauss(0, componentSigma),
				RGDrift: s.Gauss(0, componentSigma),
				CDrift:  s.Gauss(0, componentSigma),
			})
			if err != nil {
				return verdict{}, err
			}
			p := cut.Params()
			inBand := func(val, nom, frac float64) bool {
				return val >= nom*(1-frac) && val <= nom*(1+frac)
			}
			truthGood := inBand(p.F0, golden.F0, tol) &&
				inBand(p.Q, golden.Q, 2*tol) &&
				inBand(p.Gain, golden.Gain, tol)
			v, err := sys.NDFOfScratch(cut, sc)
			if err != nil {
				return verdict{}, err
			}
			return verdict{truthGood: truthGood, pass: dec.Pass(v)}, nil
		})
	if err != nil {
		return nil, err
	}
	out := &Yield{N: n, ComponentSigma: componentSigma, Tolerance: tol, Threshold: dec.Threshold}
	for _, v := range verdicts {
		if v.truthGood {
			out.TrueGood++
		}
		if v.pass {
			out.PassCount++
		}
		switch {
		case v.pass && !v.truthGood:
			out.Escapes++
		case !v.pass && v.truthGood:
			out.Overkill++
		}
	}
	return out, nil
}

// YieldRate returns the fraction of circuits passing the test.
func (y *Yield) YieldRate() float64 { return float64(y.PassCount) / float64(y.N) }

// DefectLevel returns the fraction of shipped (passing) circuits that
// violate the spec — the classic DPM numerator.
func (y *Yield) DefectLevel() float64 {
	if y.PassCount == 0 {
		return 0
	}
	return float64(y.Escapes) / float64(y.PassCount)
}

// OverkillRate returns the fraction of truly good circuits rejected.
func (y *Yield) OverkillRate() float64 {
	if y.TrueGood == 0 {
		return 0
	}
	return float64(y.Overkill) / float64(y.TrueGood)
}

// Render prints the production summary.
func (y *Yield) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "production yield simulation: %d CUTs, component σ %.1f%%, spec |Δf0| ≤ %.0f%%, threshold %.4f\n",
		y.N, y.ComponentSigma*100, y.Tolerance*100, y.Threshold)
	fmt.Fprintf(&b, "  true good:    %d (%.1f%%)\n", y.TrueGood, 100*float64(y.TrueGood)/float64(y.N))
	fmt.Fprintf(&b, "  test yield:   %.1f%%\n", 100*y.YieldRate())
	fmt.Fprintf(&b, "  escapes:      %d (defect level %.2f%% of shipped)\n", y.Escapes, 100*y.DefectLevel())
	fmt.Fprintf(&b, "  overkill:     %d (%.2f%% of good circuits)\n", y.Overkill, 100*y.OverkillRate())
	return b.String()
}
