package testbench

import (
	"context"
	"math"
	"runtime"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/ndf"
	"repro/internal/stat"
)

// synthNullTrial is a deterministic, allocation-free stand-in for a
// noisy golden NDF measurement: a pure function of the trial index with
// enough spread to occupy many sketch buckets. Using it instead of a
// real simulator isolates the calibration engine's own memory and
// determinism properties from the trial cost.
func synthNullTrial(i int, _ *core.TrialScratch) (float64, error) {
	return 0.01 + float64(i%9973)*1.3e-5, nil
}

// The streamed (sketch) calibration is bit-identical to the exact
// materializing path: the threshold is the null maximum, which the
// sketch tracks exactly, so crossing ExactNullCutoff never moves a
// decision.
func TestCalibrateNullThresholdSketchMatchesExact(t *testing.T) {
	ctx := context.Background()
	const n = ExactNullCutoff + 1000 // force the sketch path
	eng := campaign.Engine{Workers: 2, Seed: 3}
	dec, err := CalibrateNullThreshold(ctx, eng, n, 0, synthNullTrial)
	if err != nil {
		t.Fatal(err)
	}
	nulls, err := campaign.RunScratch(ctx, eng, n, core.NewTrialScratch, synthNullTrial)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ndf.ThresholdFromNull(nulls, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Threshold != exact.Threshold {
		t.Fatalf("sketch threshold %v != exact threshold %v", dec.Threshold, exact.Threshold)
	}
	// The agreement guarantee for interior quantiles is the sketch's
	// documented relative error; pin it too so the bound stays honest.
	sk := stat.NewQuantileSketch(stat.DefaultSketchPrecision)
	for _, v := range nulls {
		sk.Push(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got, err := sk.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		want := stat.Quantile(nulls, q)
		if math.Abs(got-want) > sk.RelativeError()*math.Abs(want) {
			t.Fatalf("q %v: sketch %v vs exact %v exceeds documented bound %v",
				q, got, want, sk.RelativeError())
		}
	}
}

// Threshold decisions are bit-identical at 1, 4 and 8 workers, on both
// sides of the cutoff.
func TestCalibrateNullThresholdWorkerInvariant(t *testing.T) {
	ctx := context.Background()
	for _, n := range []int{ExactNullCutoff / 2, ExactNullCutoff + 1000} {
		ref, err := CalibrateNullThreshold(ctx, campaign.Engine{Workers: 1, Seed: 5}, n, 0, synthNullTrial)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{4, 8} {
			dec, err := CalibrateNullThreshold(ctx, campaign.Engine{Workers: w, Seed: 5}, n, 0, synthNullTrial)
			if err != nil {
				t.Fatal(err)
			}
			if dec.Threshold != ref.Threshold {
				t.Fatalf("n=%d workers=%d: threshold %v != 1-worker threshold %v", n, w, dec.Threshold, ref.Threshold)
			}
		}
	}
}

// A NaN measurement fails calibration with a descriptive error on both
// paths instead of silently poisoning the threshold.
func TestCalibrateNullThresholdRejectsNaN(t *testing.T) {
	ctx := context.Background()
	poison := func(i int, _ *core.TrialScratch) (float64, error) {
		if i == 17 {
			return math.NaN(), nil
		}
		return 0.01, nil
	}
	for _, n := range []int{100, ExactNullCutoff + 100} {
		if _, err := CalibrateNullThreshold(ctx, campaign.Engine{Workers: 2, Seed: 1}, n, 0, poison); err == nil {
			t.Fatalf("n=%d: NaN null measurement accepted", n)
		}
	}
}

// An out-of-range sketch precision is rejected up front.
func TestCalibrateNullThresholdBadPrecision(t *testing.T) {
	_, err := CalibrateNullThreshold(context.Background(), campaign.Engine{Workers: 1}, ExactNullCutoff+1, 99, synthNullTrial)
	if err == nil {
		t.Fatal("precision 99 accepted")
	}
}

// The memory pin of the streaming calibration, in the style of
// campaign.TestReduceFlatMemoryAt10kVs1M: total allocation at 1M null
// trials is a small multiple of 100k trials (O(workers+chunk+sketch),
// pooled chunk sketches), and an order of magnitude under what the
// materializing path allocates for the same million trials.
func TestNoiseCalibrationFlatMemory(t *testing.T) {
	ctx := context.Background()
	alloc := func(run func()) uint64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		run()
		runtime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc
	}
	calibBytes := func(n int) uint64 {
		return alloc(func() {
			if _, err := CalibrateNullThreshold(ctx, campaign.Engine{Workers: 4, Seed: 2}, n, 0, synthNullTrial); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := calibBytes(100_000)
	big := calibBytes(1_000_000)
	t.Logf("streamed calibration allocated %d B at 100k trials, %d B at 1M trials", small, big)
	if big > 10*small+1<<20 {
		t.Fatalf("streamed calibration memory scales with trials: %d B at 100k vs %d B at 1M", small, big)
	}
	materialized := alloc(func() {
		nulls, err := campaign.RunScratch(ctx, campaign.Engine{Workers: 4, Seed: 2}, 1_000_000, core.NewTrialScratch, synthNullTrial)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ndf.ThresholdFromNull(nulls, 1.0); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("materializing calibration allocated %d B at 1M trials", materialized)
	if materialized < 8*1_000_000 {
		t.Fatalf("materializing path allocated only %d B for 1M trials — accounting broken?", materialized)
	}
	if big >= materialized/10 {
		t.Fatalf("streamed calibration (%d B) not an order of magnitude under materializing (%d B) at 1M trials",
			big, materialized)
	}
}
