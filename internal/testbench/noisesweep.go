package testbench

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/stat"
)

// NoiseSweep generalizes the paper's single-point noise experiment: for
// each noise level it calibrates a null threshold and reports the
// smallest f0 deviation in the probe grid that is detected at ≥90%,
// mapping the method's resolution as a function of measurement noise.
// MinRobust is the CI-robust version of the same rule: the smallest
// deviation whose 95% Wilson lower bound clears 90%, so the resolution
// claim survives the trial count's sampling error instead of resting
// on a point estimate.
type NoiseSweep struct {
	Sigmas        []float64
	MinDetectable []float64 // fractional deviation; 1.0 = none in grid
	// MinRobust[i] is the smallest grid deviation at Sigmas[i] whose
	// Wilson 95% lower bound is >= 0.9; 1.0 = none (either no deviation
	// clears the bar, or the trial count is too small for any count to —
	// at trials < ~60 even a perfect detector cannot make the claim).
	MinRobust []float64
	Periods   int
	Trials    int
}

// RunNoiseSweep probes the deviation grid (ascending, positive) at every
// noise sigma, fanning the Monte-Carlo trials out across all CPUs. It is
// a thin wrapper over the campaign registry ("noisesweep"); each trial
// derives its stream in-worker as a pure function of the seed, so the
// sweep is bit-identical at any worker count.
func RunNoiseSweep(sys *core.System, sigmas, devGrid []float64, trials int, seed uint64) (*NoiseSweep, error) {
	return runAs[NoiseSweep](legacyCtx(), Spec{
		Campaign: "noisesweep",
		Seed:     seed,
		Params:   NoiseSweepParams{Sigmas: sigmas, DevGrid: devGrid, Trials: trials},
	}, WithSystem(sys))
}

// runNoiseSweep is the registry implementation behind RunNoiseSweep.
// As in runNoiseDetection, every phase streams: detection probes as
// pure counts, per-sigma null calibration through
// CalibrateNullThreshold (exact below ExactNullCutoff, pooled quantile
// sketches above), and all trial streams are derived inside the
// workers — the sweep holds O(workers + chunk + sketch) whatever the
// trial count.
func runNoiseSweep(ctx context.Context, sys *core.System, sigmas, devGrid []float64, trials, sketchPrec int, seed uint64, eng campaign.Engine) (*NoiseSweep, error) {
	const periods = 3
	out := &NoiseSweep{Sigmas: sigmas, Periods: periods, Trials: trials}
	eng.Seed = seed
	// The robust rule is only reachable when a perfect count's Wilson
	// lower bound clears 0.9; below that trial count, don't spend extra
	// probes chasing an unreachable bar.
	robustLo, _ := stat.Wilson(trials, trials, 0.95)
	robustPossible := robustLo >= 0.9
	for si, sigma := range sigmas {
		sigma := sigma
		// trialAt builds the per-trial measurement at one deviation; the
		// shifted CUT is built once and shared by the trials (backends
		// are safe for concurrent Output use).
		trialAt := func(shift float64, base uint64) (func(i int, sc *core.TrialScratch) (float64, error), error) {
			cut, err := sys.Shifted(shift)
			if err != nil {
				return nil, err
			}
			return func(i int, sc *core.TrialScratch) (float64, error) {
				// The outer pool owns the parallelism: periods run
				// serially on this worker's scratch.
				return sys.AveragedNDFScratch(cut, sigma, streamAt(eng, base, i), periods, sc)
			}, nil
		}
		// Phase p of sigma si gets stream-id base phaseBase(si*(len(devGrid)+1)+p):
		// every (sigma, phase) pair owns a disjoint 2^32-wide id space, so no
		// two measurements can reuse a noise stream at any trial count the
		// registry validates (see phaseBase).
		base := func(p int) uint64 { return phaseBase(si*(len(devGrid)+1) + p) }
		nullTrial, err := trialAt(0, base(0))
		if err != nil {
			return nil, err
		}
		dec, err := CalibrateNullThreshold(ctx, eng, trials, sketchPrec, nullTrial)
		if err != nil {
			return nil, err
		}
		minDet, minRobust := 1.0, 1.0
		for di, d := range devGrid {
			if minDet < 1 && (minRobust < 1 || !robustPossible) {
				break
			}
			trial, err := trialAt(d, base(1+di))
			if err != nil {
				return nil, err
			}
			det, err := campaign.ReduceScratch(ctx, eng, trials,
				detectReducer(dec).Reducer, core.NewTrialScratch, trial)
			if err != nil {
				return nil, err
			}
			if minDet >= 1 && float64(det) >= 0.9*float64(trials) {
				minDet = d
			}
			if minRobust >= 1 && robustPossible {
				if lo, _ := stat.Wilson(det, trials, 0.95); lo >= 0.9 {
					minRobust = d
				}
			}
		}
		out.MinDetectable = append(out.MinDetectable, minDet)
		out.MinRobust = append(out.MinRobust, minRobust)
	}
	return out, nil
}

// Render prints the resolution curve: the ≥90% point rule next to its
// CI-robust counterpart (Wilson 95% lower bound ≥ 90%).
func (n *NoiseSweep) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "noise resolution sweep (%d periods averaged per measurement, %d trials/point)\n", n.Periods, n.Trials)
	b.WriteString("sigma(V)  min detectable dev  CI-robust dev\n")
	cell := func(v float64) string {
		if v >= 1 {
			return "none in grid"
		}
		return fmt.Sprintf("%.1f%%", v*100)
	}
	for i := range n.Sigmas {
		robust := "needs more trials"
		if len(n.MinRobust) > i {
			if lo, _ := stat.Wilson(n.Trials, n.Trials, 0.95); lo >= 0.9 {
				robust = cell(n.MinRobust[i])
			}
		}
		fmt.Fprintf(&b, "%.4f    %-18s  %s\n", n.Sigmas[i], cell(n.MinDetectable[i]), robust)
	}
	return b.String()
}
