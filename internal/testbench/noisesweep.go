package testbench

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/ndf"
)

// NoiseSweep generalizes the paper's single-point noise experiment: for
// each noise level it calibrates a null threshold and reports the
// smallest f0 deviation in the probe grid that is detected at ≥90%,
// mapping the method's resolution as a function of measurement noise.
type NoiseSweep struct {
	Sigmas        []float64
	MinDetectable []float64 // fractional deviation; 1.0 = none in grid
	Periods       int
}

// RunNoiseSweep probes the deviation grid (ascending, positive) at every
// noise sigma, fanning the Monte-Carlo trials out across all CPUs. It is
// a thin wrapper over the campaign registry ("noisesweep"); each trial
// derives its stream in-worker as a pure function of the seed, so the
// sweep is bit-identical at any worker count.
func RunNoiseSweep(sys *core.System, sigmas, devGrid []float64, trials int, seed uint64) (*NoiseSweep, error) {
	return runAs[NoiseSweep](legacyCtx(), Spec{
		Campaign: "noisesweep",
		Seed:     seed,
		Params:   NoiseSweepParams{Sigmas: sigmas, DevGrid: devGrid, Trials: trials},
	}, WithSystem(sys))
}

// runNoiseSweep is the registry implementation behind RunNoiseSweep. As
// in runNoiseDetection, only the per-sigma null calibration materializes
// its sample (quantile threshold); every detection probe is a streamed
// count, and all trial streams are derived inside the workers — the
// sweep holds O(trials at one sigma) for calibration and O(workers)
// for everything else.
func runNoiseSweep(ctx context.Context, sys *core.System, sigmas, devGrid []float64, trials int, seed uint64, eng campaign.Engine) (*NoiseSweep, error) {
	const periods = 3
	out := &NoiseSweep{Sigmas: sigmas, Periods: periods}
	eng.Seed = seed
	for si, sigma := range sigmas {
		sigma := sigma
		// trialAt builds the per-trial measurement at one deviation; the
		// shifted CUT is built once and shared by the trials (backends
		// are safe for concurrent Output use).
		trialAt := func(shift float64, base uint64) (func(i int, sc *core.TrialScratch) (float64, error), error) {
			cut, err := sys.Shifted(shift)
			if err != nil {
				return nil, err
			}
			return func(i int, sc *core.TrialScratch) (float64, error) {
				// The outer pool owns the parallelism: periods run
				// serially on this worker's scratch.
				return sys.AveragedNDFScratch(cut, sigma, streamAt(eng, base, i), periods, sc)
			}, nil
		}
		// Phase p of sigma si gets stream-id base phaseBase(si*(len(devGrid)+1)+p):
		// every (sigma, phase) pair owns a disjoint 2^32-wide id space, so no
		// two measurements can reuse a noise stream at any trial count the
		// registry validates (see phaseBase).
		base := func(p int) uint64 { return phaseBase(si*(len(devGrid)+1) + p) }
		nullTrial, err := trialAt(0, base(0))
		if err != nil {
			return nil, err
		}
		nulls, err := campaign.RunScratch(ctx, eng, trials, core.NewTrialScratch, nullTrial)
		if err != nil {
			return nil, err
		}
		dec, err := ndf.ThresholdFromNull(nulls, 1.0)
		if err != nil {
			return nil, err
		}
		minDet := 1.0
		for di, d := range devGrid {
			trial, err := trialAt(d, base(1+di))
			if err != nil {
				return nil, err
			}
			det, err := campaign.ReduceScratch(ctx, eng, trials,
				detectReducer(dec), core.NewTrialScratch, trial)
			if err != nil {
				return nil, err
			}
			if float64(det) >= 0.9*float64(trials) {
				minDet = d
				break
			}
		}
		out.MinDetectable = append(out.MinDetectable, minDet)
	}
	return out, nil
}

// Render prints the resolution curve.
func (n *NoiseSweep) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "noise resolution sweep (%d periods averaged per measurement)\n", n.Periods)
	b.WriteString("sigma(V)  min detectable dev\n")
	for i := range n.Sigmas {
		if n.MinDetectable[i] >= 1 {
			fmt.Fprintf(&b, "%.4f    none in probe grid\n", n.Sigmas[i])
			continue
		}
		fmt.Fprintf(&b, "%.4f    %.1f%%\n", n.Sigmas[i], n.MinDetectable[i]*100)
	}
	return b.String()
}
