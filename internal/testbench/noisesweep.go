package testbench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/ndf"
	"repro/internal/rng"
)

// NoiseSweep generalizes the paper's single-point noise experiment: for
// each noise level it calibrates a null threshold and reports the
// smallest f0 deviation in the probe grid that is detected at ≥90%,
// mapping the method's resolution as a function of measurement noise.
type NoiseSweep struct {
	Sigmas        []float64
	MinDetectable []float64 // fractional deviation; 1.0 = none in grid
	Periods       int
}

// RunNoiseSweep probes the deviation grid (ascending, positive) at every
// noise sigma.
func RunNoiseSweep(sys *core.System, sigmas, devGrid []float64, trials int, seed uint64) (*NoiseSweep, error) {
	const periods = 3
	out := &NoiseSweep{Sigmas: sigmas, Periods: periods}
	src := rng.New(seed)
	for si, sigma := range sigmas {
		ndfOf := func(shift float64, stream *rng.Stream) (float64, error) {
			return sys.AveragedNDF(sys.Golden.WithF0Shift(shift), sigma, stream, periods)
		}
		nulls := make([]float64, trials)
		for i := range nulls {
			v, err := ndfOf(0, src.Split(uint64(si*100000+i)))
			if err != nil {
				return nil, err
			}
			nulls[i] = v
		}
		dec, err := ndf.ThresholdFromNull(nulls, 1.0)
		if err != nil {
			return nil, err
		}
		minDet := 1.0
		for di, d := range devGrid {
			det := 0
			for i := 0; i < trials; i++ {
				v, err := ndfOf(d, src.Split(uint64(si*100000+(di+1)*1000+i)))
				if err != nil {
					return nil, err
				}
				if !dec.Pass(v) {
					det++
				}
			}
			if float64(det) >= 0.9*float64(trials) {
				minDet = d
				break
			}
		}
		out.MinDetectable = append(out.MinDetectable, minDet)
	}
	return out, nil
}

// Render prints the resolution curve.
func (n *NoiseSweep) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "noise resolution sweep (%d periods averaged per measurement)\n", n.Periods)
	b.WriteString("sigma(V)  min detectable dev\n")
	for i := range n.Sigmas {
		if n.MinDetectable[i] >= 1 {
			fmt.Fprintf(&b, "%.4f    none in probe grid\n", n.Sigmas[i])
			continue
		}
		fmt.Fprintf(&b, "%.4f    %.1f%%\n", n.Sigmas[i], n.MinDetectable[i]*100)
	}
	return b.String()
}
