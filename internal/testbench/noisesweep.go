package testbench

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/ndf"
	"repro/internal/rng"
)

// NoiseSweep generalizes the paper's single-point noise experiment: for
// each noise level it calibrates a null threshold and reports the
// smallest f0 deviation in the probe grid that is detected at ≥90%,
// mapping the method's resolution as a function of measurement noise.
type NoiseSweep struct {
	Sigmas        []float64
	MinDetectable []float64 // fractional deviation; 1.0 = none in grid
	Periods       int
}

// RunNoiseSweep probes the deviation grid (ascending, positive) at every
// noise sigma, fanning the Monte-Carlo trials out across all CPUs. It is
// a thin wrapper over the campaign registry ("noisesweep"); trial streams
// are derived serially from the seed before each fan-out, so the sweep is
// bit-identical at any worker count.
func RunNoiseSweep(sys *core.System, sigmas, devGrid []float64, trials int, seed uint64) (*NoiseSweep, error) {
	return runAs[NoiseSweep](context.Background(), Spec{
		Campaign: "noisesweep",
		Seed:     seed,
		Params:   NoiseSweepParams{Sigmas: sigmas, DevGrid: devGrid, Trials: trials},
	}, WithSystem(sys))
}

// runNoiseSweep is the registry implementation behind RunNoiseSweep.
func runNoiseSweep(ctx context.Context, sys *core.System, sigmas, devGrid []float64, trials int, seed uint64, eng campaign.Engine) (*NoiseSweep, error) {
	const periods = 3
	out := &NoiseSweep{Sigmas: sigmas, Periods: periods}
	src := rng.New(seed)
	for si, sigma := range sigmas {
		sigma := sigma
		// measure runs the averaged-NDF trials at one deviation; the
		// per-trial streams are pre-derived serially so fan-out preserves
		// the Split order. The shifted CUT is built once and shared by
		// the trials (backends are safe for concurrent Output use).
		measure := func(shift float64, streams []*rng.Stream) ([]float64, error) {
			cut, err := sys.Shifted(shift)
			if err != nil {
				return nil, err
			}
			return campaign.RunScratch(ctx, eng, len(streams), core.NewTrialScratch,
				func(i int, sc *core.TrialScratch) (float64, error) {
					// The outer pool owns the parallelism: periods run
					// serially on this worker's scratch.
					return sys.AveragedNDFScratch(cut, sigma, streams[i], periods, sc)
				})
		}
		streams := make([]*rng.Stream, trials)
		for i := range streams {
			streams[i] = src.Split(uint64(si*100000 + i))
		}
		nulls, err := measure(0, streams)
		if err != nil {
			return nil, err
		}
		dec, err := ndf.ThresholdFromNull(nulls, 1.0)
		if err != nil {
			return nil, err
		}
		minDet := 1.0
		for di, d := range devGrid {
			for i := range streams {
				streams[i] = src.Split(uint64(si*100000 + (di+1)*1000 + i))
			}
			vals, err := measure(d, streams)
			if err != nil {
				return nil, err
			}
			det := 0
			for _, v := range vals {
				if !dec.Pass(v) {
					det++
				}
			}
			if float64(det) >= 0.9*float64(trials) {
				minDet = d
				break
			}
		}
		out.MinDetectable = append(out.MinDetectable, minDet)
	}
	return out, nil
}

// Render prints the resolution curve.
func (n *NoiseSweep) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "noise resolution sweep (%d periods averaged per measurement)\n", n.Periods)
	b.WriteString("sigma(V)  min detectable dev\n")
	for i := range n.Sigmas {
		if n.MinDetectable[i] >= 1 {
			fmt.Fprintf(&b, "%.4f    none in probe grid\n", n.Sigmas[i])
			continue
		}
		fmt.Fprintf(&b, "%.4f    %.1f%%\n", n.Sigmas[i], n.MinDetectable[i]*100)
	}
	return b.String()
}
