package testbench

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/ndf"
)

// AblMetric compares the paper's NDF against the earlier sequence-based
// signature comparison (ref [12]: zone traversal order, here scored with
// a normalized edit distance). The NDF weights code discrepancies by
// dwell time, so it responds continuously to deviations that only warp
// the dwell profile; the sequence metric only moves when the traversal
// order itself changes.
type AblMetric struct {
	Devs     []float64
	NDFs     []float64
	EditDist []float64 // normalized edit distance per deviation
}

// RunAblMetric sweeps both metrics over the f0 deviation grid. It is a
// thin wrapper over the campaign registry ("metric").
func RunAblMetric(sys *core.System, devs []float64) (*AblMetric, error) {
	return runAs[AblMetric](legacyCtx(), Spec{
		Campaign: "metric",
		Params:   MetricParams{Devs: devs},
	}, WithSystem(sys))
}

// runAblMetric is the registry implementation behind RunAblMetric.
func runAblMetric(ctx context.Context, sys *core.System, devs []float64) (*AblMetric, error) {
	g, err := sys.GoldenSignature()
	if err != nil {
		return nil, err
	}
	out := &AblMetric{Devs: devs}
	for _, d := range devs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cut, err := sys.Shifted(d)
		if err != nil {
			return nil, err
		}
		obs, err := sys.ExactSignature(cut)
		if err != nil {
			return nil, err
		}
		v, err := ndf.NDF(obs, g)
		if err != nil {
			return nil, err
		}
		out.NDFs = append(out.NDFs, v)
		out.EditDist = append(out.EditDist, ndf.NormalizedEditDistance(obs, g))
	}
	return out, nil
}

// SmallestMoved returns, for each metric, the smallest |deviation| in
// the sweep at which it becomes nonzero (resolution of the metric);
// +Inf-like sentinel 1.0 when it never moves.
func (a *AblMetric) SmallestMoved() (ndfRes, editRes float64) {
	ndfRes, editRes = 1.0, 1.0
	for i, d := range a.Devs {
		ad := d
		if ad < 0 {
			ad = -ad
		}
		if ad == 0 {
			continue
		}
		if a.NDFs[i] > 0 && ad < ndfRes {
			ndfRes = ad
		}
		if a.EditDist[i] > 0 && ad < editRes {
			editRes = ad
		}
	}
	return ndfRes, editRes
}

// Render prints the two sensitivity curves.
func (a *AblMetric) Render() string {
	var b strings.Builder
	b.WriteString("metric ablation: time-weighted NDF (Eq. 2) vs sequence edit distance (ref [12] style)\n")
	b.WriteString("dev%    NDF      edit(norm)\n")
	for i := range a.Devs {
		fmt.Fprintf(&b, "%+5.1f  %.4f   %.4f\n", a.Devs[i]*100, a.NDFs[i], a.EditDist[i])
	}
	nr, er := a.SmallestMoved()
	fmt.Fprintf(&b, "smallest deviation seen: NDF %.1f%%, edit distance %.1f%%\n", nr*100, er*100)
	return b.String()
}
